package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro
BenchmarkFigure1PropagationDelay-8   	       1	 712345678 ns/op	        41.00 median_ms	       390.0 p99_ms
BenchmarkTable1Infrastructure-8      	       1	      1234 ns/op
PASS
ok  	repro	145.2s
`
	entries, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries: %d", len(entries))
	}
	// Sorted by name; GOMAXPROCS suffix stripped.
	if entries[0].Name != "BenchmarkFigure1PropagationDelay" {
		t.Fatalf("name: %s", entries[0].Name)
	}
	if entries[0].Iterations != 1 {
		t.Fatalf("iterations: %d", entries[0].Iterations)
	}
	if entries[0].Metrics["ns/op"] != 712345678 || entries[0].Metrics["median_ms"] != 41 {
		t.Fatalf("metrics: %v", entries[0].Metrics)
	}
	if entries[1].Name != "BenchmarkTable1Infrastructure" || entries[1].Metrics["ns/op"] != 1234 {
		t.Fatalf("second entry: %+v", entries[1])
	}
}

func TestStripProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":              "BenchmarkFoo",
		"BenchmarkFoo-128":            "BenchmarkFoo",
		"BenchmarkFoo":                "BenchmarkFoo",
		"BenchmarkFanout/sqrt-push-8": "BenchmarkFanout/sqrt-push",
		"BenchmarkFanout/sqrt-push":   "BenchmarkFanout/sqrt-push",
		"BenchmarkTrailingDash-":      "BenchmarkTrailingDash-",
		"BenchmarkMixedSuffix-8x":     "BenchmarkMixedSuffix-8x",
	}
	for in, want := range cases {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("%q: got %q, want %q", in, got, want)
		}
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("no benchmark lines must fail")
	}
}

// writeSnapshot writes a snapshot file for compare-mode tests.
func writeSnapshot(t *testing.T, entries []Entry) string {
	t.Helper()
	data, err := json.Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareMode(t *testing.T) {
	old := writeSnapshot(t, []Entry{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 1000}},
		{Name: "BenchmarkB", Metrics: map[string]float64{"ns/op": 1000}},
		{Name: "BenchmarkGone", Metrics: map[string]float64{"ns/op": 50}},
	})

	// Improvement + small regression within threshold: passes.
	within := writeSnapshot(t, []Entry{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 300}},  // 3x faster
		{Name: "BenchmarkB", Metrics: map[string]float64{"ns/op": 1150}}, // +15%
		{Name: "BenchmarkNew", Metrics: map[string]float64{"ns/op": 9}},
	})
	var out strings.Builder
	ok, err := runCompare(&out, old, within, 0.20, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("within-threshold compare failed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkGone") {
		t.Error("missing benchmark not warned about")
	}

	// A >20% regression fails.
	regressed := writeSnapshot(t, []Entry{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 1300}}, // +30%
		{Name: "BenchmarkB", Metrics: map[string]float64{"ns/op": 900}},
	})
	out.Reset()
	ok, err = runCompare(&out, old, regressed, 0.20, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("regression not detected:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGR ") || !strings.Contains(out.String(), "BenchmarkA") {
		t.Errorf("regression report missing offender:\n%s", out.String())
	}

	// A wider threshold tolerates the same delta.
	out.Reset()
	ok, err = runCompare(&out, old, regressed, 0.50, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("50% threshold should tolerate a 30% regression")
	}
}

// TestCompareNoiseFloor: regressions on sub-floor baselines are
// reported as NOISE but never fail — a microsecond-scale benchmark at
// -benchtime=1x cannot be gated by a fixed percentage.
func TestCompareNoiseFloor(t *testing.T) {
	old := writeSnapshot(t, []Entry{
		{Name: "BenchmarkMicro", Metrics: map[string]float64{"ns/op": 20_000}},
		{Name: "BenchmarkMacro", Metrics: map[string]float64{"ns/op": 5e8}},
	})
	noisy := writeSnapshot(t, []Entry{
		{Name: "BenchmarkMicro", Metrics: map[string]float64{"ns/op": 45_000}}, // +125%, under floor
		{Name: "BenchmarkMacro", Metrics: map[string]float64{"ns/op": 5.5e8}},  // +10%, fine
	})
	var out strings.Builder
	ok, err := runCompare(&out, old, noisy, 0.20, 1e6, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("sub-floor regression must not fail the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "NOISE") {
		t.Errorf("sub-floor regression not flagged as NOISE:\n%s", out.String())
	}

	// The same delta above the floor still fails.
	slowMacro := writeSnapshot(t, []Entry{
		{Name: "BenchmarkMicro", Metrics: map[string]float64{"ns/op": 20_000}},
		{Name: "BenchmarkMacro", Metrics: map[string]float64{"ns/op": 7e8}}, // +40%
	})
	out.Reset()
	ok, err = runCompare(&out, old, slowMacro, 0.20, 1e6, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("above-floor regression slipped through:\n%s", out.String())
	}
}

// TestCompareAllocs: allocs/op is gated like ns/op, with its own noise
// floor, and a zero-alloc benchmark that starts allocating materially
// fails even though a percentage delta is undefined.
func TestCompareAllocs(t *testing.T) {
	old := writeSnapshot(t, []Entry{
		{Name: "BenchmarkHot", Metrics: map[string]float64{"ns/op": 5e8, "allocs/op": 10_000}},
		{Name: "BenchmarkZero", Metrics: map[string]float64{"ns/op": 5e8, "allocs/op": 0}},
		{Name: "BenchmarkTiny", Metrics: map[string]float64{"ns/op": 5e8, "allocs/op": 8}},
	})

	// Allocation regression on the hot path fails even with ns/op flat.
	moreAllocs := writeSnapshot(t, []Entry{
		{Name: "BenchmarkHot", Metrics: map[string]float64{"ns/op": 5e8, "allocs/op": 15_000}}, // +50%
		{Name: "BenchmarkZero", Metrics: map[string]float64{"ns/op": 5e8, "allocs/op": 0}},
		{Name: "BenchmarkTiny", Metrics: map[string]float64{"ns/op": 5e8, "allocs/op": 8}},
	})
	var out strings.Builder
	ok, err := runCompare(&out, old, moreAllocs, 0.20, 1e6, 100, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("allocs/op regression slipped through:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "allocs/op") {
		t.Errorf("report does not name allocs/op:\n%s", out.String())
	}

	// Sub-floor allocation counts are noise, and a formerly-zero-alloc
	// benchmark fails once it allocates at or above the floor.
	noisy := writeSnapshot(t, []Entry{
		{Name: "BenchmarkHot", Metrics: map[string]float64{"ns/op": 5e8, "allocs/op": 10_500}},
		{Name: "BenchmarkZero", Metrics: map[string]float64{"ns/op": 5e8, "allocs/op": 2}},
		{Name: "BenchmarkTiny", Metrics: map[string]float64{"ns/op": 5e8, "allocs/op": 20}}, // +150%, under floor
	})
	out.Reset()
	ok, err = runCompare(&out, old, noisy, 0.20, 1e6, 100, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("sub-floor alloc noise failed the gate:\n%s", out.String())
	}

	brokeZero := writeSnapshot(t, []Entry{
		{Name: "BenchmarkHot", Metrics: map[string]float64{"ns/op": 5e8, "allocs/op": 10_000}},
		{Name: "BenchmarkZero", Metrics: map[string]float64{"ns/op": 5e8, "allocs/op": 500}},
		{Name: "BenchmarkTiny", Metrics: map[string]float64{"ns/op": 5e8, "allocs/op": 8}},
	})
	out.Reset()
	ok, err = runCompare(&out, old, brokeZero, 0.20, 1e6, 100, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("zero-alloc benchmark started allocating and passed:\n%s", out.String())
	}
}

// TestCompareBytes: B/op is gated like allocs/op — its own noise
// floor, sub-floor churn is noise, and a zero-byte benchmark that
// starts allocating at or above the floor fails.
func TestCompareBytes(t *testing.T) {
	old := writeSnapshot(t, []Entry{
		{Name: "BenchmarkHot", Metrics: map[string]float64{"ns/op": 5e8, "B/op": 1 << 20}},
		{Name: "BenchmarkZero", Metrics: map[string]float64{"ns/op": 5e8, "B/op": 0}},
		{Name: "BenchmarkTiny", Metrics: map[string]float64{"ns/op": 5e8, "B/op": 2048}},
	})

	// Byte regression on the hot path fails even with ns/op flat.
	moreBytes := writeSnapshot(t, []Entry{
		{Name: "BenchmarkHot", Metrics: map[string]float64{"ns/op": 5e8, "B/op": 1 << 21}}, // 2x
		{Name: "BenchmarkZero", Metrics: map[string]float64{"ns/op": 5e8, "B/op": 0}},
		{Name: "BenchmarkTiny", Metrics: map[string]float64{"ns/op": 5e8, "B/op": 2048}},
	})
	var out strings.Builder
	ok, err := runCompare(&out, old, moreBytes, 0.20, 1e6, 100, 64*1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("B/op regression slipped through:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "B/op") {
		t.Errorf("report does not name B/op:\n%s", out.String())
	}

	// Sub-floor byte counts are noise; a formerly-zero-byte benchmark
	// fails once it allocates at or above the floor.
	noisy := writeSnapshot(t, []Entry{
		{Name: "BenchmarkHot", Metrics: map[string]float64{"ns/op": 5e8, "B/op": 1.1 * (1 << 20)}},
		{Name: "BenchmarkZero", Metrics: map[string]float64{"ns/op": 5e8, "B/op": 128}},
		{Name: "BenchmarkTiny", Metrics: map[string]float64{"ns/op": 5e8, "B/op": 8192}}, // +300%, under floor
	})
	out.Reset()
	ok, err = runCompare(&out, old, noisy, 0.20, 1e6, 100, 64*1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("sub-floor byte noise failed the gate:\n%s", out.String())
	}

	brokeZero := writeSnapshot(t, []Entry{
		{Name: "BenchmarkHot", Metrics: map[string]float64{"ns/op": 5e8, "B/op": 1 << 20}},
		{Name: "BenchmarkZero", Metrics: map[string]float64{"ns/op": 5e8, "B/op": 128 * 1024}},
		{Name: "BenchmarkTiny", Metrics: map[string]float64{"ns/op": 5e8, "B/op": 2048}},
	})
	out.Reset()
	ok, err = runCompare(&out, old, brokeZero, 0.20, 1e6, 100, 64*1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("zero-byte benchmark started allocating and passed:\n%s", out.String())
	}
}

// TestCompareStalledLaneWindows: the sharded scheduling-quality gate.
// stalled_lane_windows regressions fail like any other metric, the
// metric is simply absent from unsharded benchmarks, sub-floor counts
// are noise, and improvements pass.
func TestCompareStalledLaneWindows(t *testing.T) {
	old := writeSnapshot(t, []Entry{
		{Name: "BenchmarkStress100kSharded", Metrics: map[string]float64{"ns/op": 5e9, "stalled_lane_windows": 8000}},
		{Name: "BenchmarkStress100k", Metrics: map[string]float64{"ns/op": 5e9}},
		{Name: "BenchmarkNoStall", Metrics: map[string]float64{"ns/op": 5e9, "stalled_lane_windows": 0}},
		{Name: "BenchmarkQuiet", Metrics: map[string]float64{"ns/op": 5e9, "stalled_lane_windows": 10}},
	})

	// A stall regression fails even with ns/op flat: the run got no
	// slower yet, but the lookahead lost parallelism.
	regressed := writeSnapshot(t, []Entry{
		{Name: "BenchmarkStress100kSharded", Metrics: map[string]float64{"ns/op": 5e9, "stalled_lane_windows": 44000}},
		{Name: "BenchmarkStress100k", Metrics: map[string]float64{"ns/op": 5e9}},
		{Name: "BenchmarkNoStall", Metrics: map[string]float64{"ns/op": 5e9, "stalled_lane_windows": 0}},
		{Name: "BenchmarkQuiet", Metrics: map[string]float64{"ns/op": 5e9, "stalled_lane_windows": 10}},
	})
	var out strings.Builder
	ok, err := runCompare(&out, old, regressed, 0.20, 1e6, 100, 64*1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("stalled_lane_windows regression slipped through:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "stalled_lane_windows") {
		t.Errorf("report does not name stalled_lane_windows:\n%s", out.String())
	}

	// Improvements and sub-floor churn pass; the unsharded benchmark is
	// simply not gated on the metric it does not report.
	improved := writeSnapshot(t, []Entry{
		{Name: "BenchmarkStress100kSharded", Metrics: map[string]float64{"ns/op": 5e9, "stalled_lane_windows": 900}},
		{Name: "BenchmarkStress100k", Metrics: map[string]float64{"ns/op": 5e9}},
		{Name: "BenchmarkNoStall", Metrics: map[string]float64{"ns/op": 5e9, "stalled_lane_windows": 0}},
		{Name: "BenchmarkQuiet", Metrics: map[string]float64{"ns/op": 5e9, "stalled_lane_windows": 40}}, // 4x, under floor
	})
	out.Reset()
	ok, err = runCompare(&out, old, improved, 0.20, 1e6, 100, 64*1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("stall improvement or sub-floor churn failed the gate:\n%s", out.String())
	}

	// A formerly stall-free benchmark that starts stalling at or above
	// the floor fails.
	brokeZero := writeSnapshot(t, []Entry{
		{Name: "BenchmarkStress100kSharded", Metrics: map[string]float64{"ns/op": 5e9, "stalled_lane_windows": 8000}},
		{Name: "BenchmarkStress100k", Metrics: map[string]float64{"ns/op": 5e9}},
		{Name: "BenchmarkNoStall", Metrics: map[string]float64{"ns/op": 5e9, "stalled_lane_windows": 500}},
		{Name: "BenchmarkQuiet", Metrics: map[string]float64{"ns/op": 5e9, "stalled_lane_windows": 10}},
	})
	out.Reset()
	ok, err = runCompare(&out, old, brokeZero, 0.20, 1e6, 100, 64*1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("stall-free benchmark started stalling and passed:\n%s", out.String())
	}
}

// TestSnapshotFormats: the object snapshot with provenance loads, and
// so does the legacy bare-array format.
func TestSnapshotFormats(t *testing.T) {
	entries := []Entry{{Name: "BenchmarkA", Iterations: 1, Metrics: map[string]float64{"ns/op": 42}}}

	v2, err := json.Marshal(Snapshot{Generated: "2026-08-08", Note: "test snapshot", Entries: entries})
	if err != nil {
		t.Fatal(err)
	}
	v2Path := filepath.Join(t.TempDir(), "v2.json")
	if err := os.WriteFile(v2Path, v2, 0o644); err != nil {
		t.Fatal(err)
	}
	byName, err := loadSnapshot(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	if byName["BenchmarkA"].Metrics["ns/op"] != 42 {
		t.Fatalf("v2 snapshot: %+v", byName)
	}

	legacyPath := writeSnapshot(t, entries)
	byName, err = loadSnapshot(legacyPath)
	if err != nil {
		t.Fatal(err)
	}
	if byName["BenchmarkA"].Metrics["ns/op"] != 42 {
		t.Fatalf("legacy snapshot: %+v", byName)
	}
}

func TestEnvelopeBestOf(t *testing.T) {
	in := `BenchmarkA-8   1   300 ns/op   512 B/op   7 allocs/op
BenchmarkB-8   1   900 ns/op
BenchmarkA-8   2   100 ns/op   640 B/op   7 allocs/op
BenchmarkB-8   1   800 ns/op
BenchmarkA-8   1   200 ns/op   512 B/op   9 allocs/op
BenchmarkB-8   1   850 ns/op
`
	entries, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	out, err := envelope(entries, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("entries: %d", len(out))
	}
	a := out[0]
	if a.Name != "BenchmarkA" || a.Runs != 3 || a.Iterations != 2 {
		t.Fatalf("A header: %+v", a)
	}
	// Min per metric gates; max per metric records the envelope top.
	if a.Metrics["ns/op"] != 100 || a.Metrics["B/op"] != 512 || a.Metrics["allocs/op"] != 7 {
		t.Fatalf("A min metrics: %v", a.Metrics)
	}
	if a.MetricsMax["ns/op"] != 300 || a.MetricsMax["B/op"] != 640 || a.MetricsMax["allocs/op"] != 9 {
		t.Fatalf("A max metrics: %v", a.MetricsMax)
	}
	if out[1].Metrics["ns/op"] != 800 || out[1].MetricsMax["ns/op"] != 900 {
		t.Fatalf("B envelope: %v / %v", out[1].Metrics, out[1].MetricsMax)
	}
}

func TestEnvelopeRunCountMismatch(t *testing.T) {
	in := `BenchmarkA-8   1   300 ns/op
BenchmarkA-8   1   200 ns/op
BenchmarkB-8   1   900 ns/op
BenchmarkA-8   1   100 ns/op
`
	entries, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := envelope(entries, 3); err == nil || !strings.Contains(err.Error(), "BenchmarkB") {
		t.Fatalf("want run-count mismatch naming BenchmarkB, got %v", err)
	}
}

func TestEnvelopeSnapshotCompares(t *testing.T) {
	// A best-of snapshot must flow through -compare unchanged: the
	// gate reads the min metrics and ignores the envelope ceiling.
	dir := t.TempDir()
	write := func(name string, snap Snapshot) string {
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", Snapshot{Entries: []Entry{{
		Name: "BenchmarkA", Iterations: 1,
		Metrics:    map[string]float64{"ns/op": 2e6},
		MetricsMax: map[string]float64{"ns/op": 3e6},
		Runs:       3,
	}}})
	newPath := write("new.json", Snapshot{Entries: []Entry{{
		Name: "BenchmarkA", Iterations: 1,
		Metrics:    map[string]float64{"ns/op": 2.1e6},
		MetricsMax: map[string]float64{"ns/op": 9e6},
		Runs:       3,
	}}})
	var buf strings.Builder
	ok, err := runCompare(&buf, oldPath, newPath, 0.20, 1e6, 100, 64*1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("5%% min-envelope drift must pass despite max drift:\n%s", buf.String())
	}
}
