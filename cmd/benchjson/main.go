// Command benchjson converts `go test -bench` output on stdin into a
// JSON snapshot: one entry per benchmark with its iteration count and
// every reported metric (ns/op, B/op, allocs/op, custom ReportMetric
// values), wrapped with a generation date and an optional -note line.
// The Makefile's bench-baseline target uses it to (re)generate
// BENCH_baseline.json, a committed reference snapshot.
//
//	go test -bench=. -benchmem -benchtime=1x -run='^$' . | benchjson -note "..." > BENCH_baseline.json
//
// With -best-of N the input is expected to hold N runs of every
// benchmark (go test -count=N); each is collapsed to a min/max
// envelope — the per-metric minimum lands in metrics (what -compare
// gates on, being the least noise-contaminated run) and the maximum in
// metrics_max. The bench-compare target measures with -count=3 this
// way, so a single slow run cannot fail the gate:
//
//	go test -bench=. -benchmem -benchtime=1x -count=3 -run='^$' . | benchjson -best-of 3
//
// Compare mode diffs two snapshots and fails on ns/op, B/op,
// allocs/op or stalled_lane_windows regressions — the Makefile's
// bench-compare / bench-stress-compare targets and the CI perf gate.
// stalled_lane_windows is the sharded conductor's scheduling-quality
// metric (lane-windows lost to the conservative lookahead, reported
// by the stress benchmarks); being a deterministic event count it
// gets its own small noise floor (-stall-floor) rather than the
// allocation one:
//
//	benchjson -compare [-threshold 0.20] old.json new.json
//
// Exit status is non-zero when any benchmark present in both files
// regressed by more than the threshold (default 20%). Improvements
// and new benchmarks never fail; benchmarks missing from the new
// snapshot are reported as a warning. Three noise floors keep the
// gate stable: ns/op regressions on baselines under -floor
// nanoseconds (default 1 ms), B/op regressions on baselines under
// -bytes-floor bytes (default 64 KiB) and allocs/op regressions on
// baselines under -alloc-floor allocations (default 100) are reported
// but never fail — at -benchtime=1x a microsecond-, few-alloc- or
// few-KiB-scale measurement is dominated by scheduler and
// one-time-init noise, and a fixed percentage threshold on it only
// produces flaky gates. Legacy snapshots (a bare entry array, the
// pre-note format) still load.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Entry is one benchmark result. In -best-of mode Metrics holds the
// per-metric minimum over the N runs (the envelope floor the compare
// gate diffs against), MetricsMax the per-metric maximum (the noise
// envelope's ceiling, recorded for provenance) and Runs the N.
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	MetricsMax map[string]float64 `json:"metrics_max,omitempty"`
	Runs       int                `json:"runs,omitempty"`
}

// Snapshot is the on-disk format: the entries plus provenance — when
// the snapshot was generated and on what occasion.
type Snapshot struct {
	Generated string  `json:"generated,omitempty"`
	Note      string  `json:"note,omitempty"`
	Entries   []Entry `json:"entries"`
}

func main() {
	var (
		compare    = flag.Bool("compare", false, "compare two snapshots: benchjson -compare old.json new.json")
		threshold  = flag.Float64("threshold", 0.20, "maximum tolerated fractional ns/op or allocs/op regression in -compare mode")
		floor      = flag.Float64("floor", 1e6, "baseline ns/op below which regressions are reported but never fail (noise floor)")
		allocFloor = flag.Float64("alloc-floor", 100, "baseline allocs/op below which allocation regressions are reported but never fail")
		bytesFloor = flag.Float64("bytes-floor", 64*1024, "baseline B/op below which byte regressions are reported but never fail")
		stallFloor = flag.Float64("stall-floor", 64, "baseline stalled_lane_windows below which stall regressions are reported but never fail")
		note       = flag.String("note", "", "provenance note recorded in the snapshot")
		bestOf     = flag.Int("best-of", 1, "collapse N repeated runs per benchmark (go test -count=N) into a min/max envelope; the min is what -compare gates on")
	)
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two snapshot files (old.json new.json)")
			os.Exit(2)
		}
		ok, err := runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold, *floor, *allocFloor, *bytesFloor, *stallFloor)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}
	entries, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *bestOf > 1 {
		entries, err = envelope(entries, *bestOf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	snap := Snapshot{
		Generated: time.Now().UTC().Format("2006-01-02"),
		Note:      *note,
		Entries:   entries,
	}
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

// envelope collapses n repeated runs of each benchmark into one entry
// per name: the per-metric minimum in Metrics (the best run is the
// least noise-contaminated measurement, so it is the stable value to
// baseline and gate on) and the per-metric maximum in MetricsMax.
// Every benchmark must appear exactly n times — anything else means
// the -count flag and -best-of disagree, which would silently gate on
// a partial envelope.
func envelope(entries []Entry, n int) ([]Entry, error) {
	byName := make(map[string]*Entry)
	seen := make(map[string]int)
	var order []string
	for _, e := range entries {
		seen[e.Name]++
		acc, ok := byName[e.Name]
		if !ok {
			c := e
			c.Runs = n
			c.Metrics = make(map[string]float64, len(e.Metrics))
			c.MetricsMax = make(map[string]float64, len(e.Metrics))
			for k, v := range e.Metrics {
				c.Metrics[k] = v
				c.MetricsMax[k] = v
			}
			byName[e.Name] = &c
			order = append(order, e.Name)
			continue
		}
		if e.Iterations > acc.Iterations {
			acc.Iterations = e.Iterations
		}
		for k, v := range e.Metrics {
			if lo, ok := acc.Metrics[k]; !ok || v < lo {
				acc.Metrics[k] = v
			}
			if hi, ok := acc.MetricsMax[k]; !ok || v > hi {
				acc.MetricsMax[k] = v
			}
		}
	}
	out := make([]Entry, 0, len(order))
	for _, name := range order {
		if seen[name] != n {
			return nil, fmt.Errorf("-best-of %d: benchmark %s ran %d time(s); pass -count=%d to go test", n, name, seen[name], n)
		}
		out = append(out, *byName[name])
	}
	return out, nil
}

// loadSnapshot reads a snapshot file: the current object format, or a
// legacy bare entry array.
func loadSnapshot(path string) (map[string]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		var entries []Entry
		if err2 := json.Unmarshal(data, &entries); err2 != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		snap.Entries = entries
	}
	byName := make(map[string]Entry, len(snap.Entries))
	for _, e := range snap.Entries {
		byName[e.Name] = e
	}
	return byName, nil
}

// runCompare diffs new against old on ns/op, B/op, allocs/op and
// stalled_lane_windows, printing one line per shared benchmark and
// metric. It reports ok=false when any regression exceeds threshold
// on a benchmark whose baseline is at or above the metric's noise
// floor; sub-floor regressions are flagged NOISE and never fail.
func runCompare(w io.Writer, oldPath, newPath string, threshold, floor, allocFloor, bytesFloor, stallFloor float64) (bool, error) {
	oldBy, err := loadSnapshot(oldPath)
	if err != nil {
		return false, err
	}
	newBy, err := loadSnapshot(newPath)
	if err != nil {
		return false, err
	}
	names := make([]string, 0, len(oldBy))
	for name := range oldBy {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	diff := func(name, metric string, oldV, newV, noiseFloor float64) {
		delta := newV/oldV - 1
		status := "ok   "
		if delta > threshold {
			if oldV < noiseFloor {
				status = "NOISE"
			} else {
				status = "REGR "
				regressions++
			}
		}
		fmt.Fprintf(w, "%s %-36s %14.0f -> %14.0f %s  %+7.1f%%\n",
			status, name, oldV, newV, metric, delta*100)
	}
	for _, name := range names {
		oldE := oldBy[name]
		newE, ok := newBy[name]
		if !ok {
			fmt.Fprintf(w, "WARN  %-36s missing from %s\n", name, newPath)
			continue
		}
		oldNs, okOld := oldE.Metrics["ns/op"]
		newNs, okNew := newE.Metrics["ns/op"]
		if okOld && okNew && oldNs > 0 {
			diff(name, "ns/op", oldNs, newNs, floor)
		}
		oldBytes, okOld := oldE.Metrics["B/op"]
		newBytes, okNew := newE.Metrics["B/op"]
		switch {
		case !okOld || !okNew:
			// Legacy baseline without -benchmem: nothing to gate.
		case oldBytes > 0:
			diff(name, "B/op", oldBytes, newBytes, bytesFloor)
		case newBytes >= bytesFloor:
			// A zero-byte benchmark started allocating materially.
			regressions++
			fmt.Fprintf(w, "REGR  %-36s %14.0f -> %14.0f B/op\n", name, oldBytes, newBytes)
		}
		oldAllocs, okOld := oldE.Metrics["allocs/op"]
		newAllocs, okNew := newE.Metrics["allocs/op"]
		switch {
		case !okOld || !okNew:
			// Legacy baseline without -benchmem: nothing to gate.
		case oldAllocs > 0:
			diff(name, "allocs/op", oldAllocs, newAllocs, allocFloor)
		case newAllocs >= allocFloor:
			// A zero-alloc benchmark started allocating materially.
			regressions++
			fmt.Fprintf(w, "REGR  %-36s %14.0f -> %14.0f allocs/op\n", name, oldAllocs, newAllocs)
		}
		oldStall, okOld := oldE.Metrics["stalled_lane_windows"]
		newStall, okNew := newE.Metrics["stalled_lane_windows"]
		switch {
		case !okOld || !okNew:
			// Not a sharded stress benchmark: nothing to gate.
		case oldStall > 0:
			diff(name, "stalled_lane_windows", oldStall, newStall, stallFloor)
		case newStall >= stallFloor:
			// A stall-free benchmark started stalling materially — the
			// lookahead bounds (or the deadline computation) regressed.
			regressions++
			fmt.Fprintf(w, "REGR  %-36s %14.0f -> %14.0f stalled_lane_windows\n", name, oldStall, newStall)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(w, "\n%d benchmark(s) regressed more than %.0f%% vs %s\n",
			regressions, threshold*100, oldPath)
		return false, nil
	}
	fmt.Fprintf(w, "\nno ns/op, B/op, allocs/op or stalled_lane_windows regression beyond %.0f%% vs %s\n", threshold*100, oldPath)
	return true, nil
}

// stripProcSuffix removes a trailing -<digits> GOMAXPROCS suffix,
// leaving hyphens inside the benchmark name (sub-benchmarks like
// /sqrt-push) intact.
func stripProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// parse extracts benchmark lines ("BenchmarkX-8  1  123 ns/op ...")
// from mixed `go test` output.
func parse(r io.Reader) ([]Entry, error) {
	var entries []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{
			// Strip the -GOMAXPROCS suffix so snapshots diff cleanly
			// across machines.
			Name:       stripProcSuffix(fields[0]),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			e.Metrics[fields[i+1]] = v
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries, nil
}
