// Command benchjson converts `go test -bench` output on stdin into a
// JSON snapshot: one entry per benchmark with its iteration count and
// every reported metric (ns/op, B/op, custom ReportMetric values).
// The Makefile's bench-baseline target uses it to (re)generate
// BENCH_baseline.json, a committed human reference refreshed manually
// (CI's bench-smoke job only proves every target still executes; it
// does not compare against the baseline).
//
//	go test -bench=. -benchtime=1x -run='^$' . | benchjson > BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark result.
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	entries, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

// stripProcSuffix removes a trailing -<digits> GOMAXPROCS suffix,
// leaving hyphens inside the benchmark name (sub-benchmarks like
// /sqrt-push) intact.
func stripProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// parse extracts benchmark lines ("BenchmarkX-8  1  123 ns/op ...")
// from mixed `go test` output.
func parse(r io.Reader) ([]Entry, error) {
	var entries []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{
			// Strip the -GOMAXPROCS suffix so snapshots diff cleanly
			// across machines.
			Name:       stripProcSuffix(fields[0]),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			e.Metrics[fields[i+1]] = v
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries, nil
}
