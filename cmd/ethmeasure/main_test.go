package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/measure"
)

func TestRunWritesDataset(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-out", dir,
		"-seed", "7",
		"-nodes", "120",
		"-blocks", "40",
		"-peers", "30",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"NA", "EA", "WE", "CE"} {
		path := filepath.Join(dir, name+".jsonl")
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("missing %s: %v", path, err)
		}
		records, err := measure.ReadJSONL(f)
		f.Close()
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		if len(records) == 0 {
			t.Fatalf("%s is empty", path)
		}
		for _, r := range records {
			if r.Node != name {
				t.Fatalf("%s contains foreign record from %s", path, r.Node)
			}
		}
	}
}

func TestRunWithWorkloadAndTxLinks(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-out", dir,
		"-seed", "8",
		"-nodes", "100",
		"-blocks", "30",
		"-peers", "20",
		"-txlinks",
		"-txrate", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "WE.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := measure.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	sawTx, sawLinks := false, false
	for _, r := range records {
		if r.Kind == measure.KindTx {
			sawTx = true
		}
		if r.Kind == measure.KindBlock && len(r.TxHashes) > 0 {
			sawLinks = true
		}
	}
	if !sawTx {
		t.Fatal("no transaction records despite workload")
	}
	if !sawLinks {
		t.Fatal("no tx links despite -txlinks")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nodes", "notanumber"}); err == nil {
		t.Fatal("bad flag must fail")
	}
	if err := run([]string{"-out", "/dev/null/impossible", "-nodes", "100", "-blocks", "10"}); err == nil {
		t.Fatal("unwritable output must fail")
	}
}
