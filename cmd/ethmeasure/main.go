// Command ethmeasure runs a measurement campaign over the simulated
// Ethereum network and writes the collected logs as a JSONL dataset —
// the reproduction of the paper's data-collection phase (§II).
//
// Usage:
//
//	ethmeasure -out dataset/ [-seed 42] [-nodes 800] [-blocks 500]
//	           [-peers 100] [-degree 8] [-txlinks] [-txrate 0]
//	           [-relay sqrt-push|push-all|announce-only|compact|hybrid]
//
// One JSONL file is written per measurement node (NA, EA, WE, CE),
// mirroring the study's per-machine raw logs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/p2p/relay"
	"repro/internal/sim"
	"repro/internal/txgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ethmeasure:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ethmeasure", flag.ContinueOnError)
	var (
		out      = fs.String("out", "dataset", "output directory for JSONL logs")
		seed     = fs.Uint64("seed", 42, "simulation seed")
		nodes    = fs.Int("nodes", 800, "overlay size")
		blocks   = fs.Uint64("blocks", 500, "block heights to produce")
		peers    = fs.Int("peers", 100, "measurement-node peer count")
		degree   = fs.Int("degree", 8, "overlay dial-out degree")
		txlinks  = fs.Bool("txlinks", false, "record per-block tx hash lists (needed for commit analyses)")
		txrate   = fs.Float64("txrate", 0, "transaction workload rate in tx/s (0 disables)")
		relayArg = fs.String("relay", "", "block-relay protocol: sqrt-push (default)|push-all|announce-only|compact|hybrid")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, err := relay.ParseMode(*relayArg)
	if err != nil {
		return err
	}
	cfg := core.DefaultCampaignConfig(*seed)
	cfg.Relay = relay.Config{Mode: mode}
	cfg.NetworkNodes = *nodes
	cfg.Blocks = *blocks
	cfg.Degree = *degree
	cfg.Measurement = core.PaperMeasurementSpecs(*peers)
	cfg.CaptureTxLinks = *txlinks
	if *txrate > 0 {
		wl := txgen.DefaultConfig()
		wl.MeanInterArrival = sim.Time(1000 / *txrate)
		cfg.Workload = &wl
	}

	fmt.Printf("running campaign: %d nodes, %d blocks, seed %d\n", *nodes, *blocks, *seed)
	res, err := core.RunCampaign(cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	for _, node := range res.Nodes {
		path := filepath.Join(*out, node.Name()+".jsonl")
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		if err := measure.WriteJSONL(f, node.Records()); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close %s: %w", path, err)
		}
		fmt.Printf("  %s: %d records\n", path, len(node.Records()))
	}
	bw, err := analysis.RenderBandwidth(res.Bandwidth)
	if err != nil {
		return err
	}
	fmt.Print(bw)
	return nil
}
