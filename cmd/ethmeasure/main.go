// Command ethmeasure runs a measurement campaign over the simulated
// Ethereum network and writes the collected logs as a JSONL dataset —
// the reproduction of the paper's data-collection phase (§II).
//
// Usage:
//
//	ethmeasure -out dataset/ [-seed 42] [-nodes 800] [-blocks 500]
//	           [-peers 100] [-degree 8] [-txlinks] [-txrate 0]
//	           [-relay sqrt-push|push-all|announce-only|compact|hybrid]
//
// One JSONL file is written per measurement node (NA, EA, WE, CE),
// mirroring the study's per-machine raw logs. The dataset is sealed
// with a digest manifest, so `ethanalyze -verify dataset/` proves it
// unmodified offline.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/p2p/relay"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/txgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ethmeasure:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ethmeasure", flag.ContinueOnError)
	var (
		out      = fs.String("out", "dataset", "output directory for JSONL logs")
		seed     = fs.Uint64("seed", 42, "simulation seed")
		nodes    = fs.Int("nodes", 800, "overlay size")
		blocks   = fs.Uint64("blocks", 500, "block heights to produce")
		peers    = fs.Int("peers", 100, "measurement-node peer count")
		degree   = fs.Int("degree", 8, "overlay dial-out degree")
		txlinks  = fs.Bool("txlinks", false, "record per-block tx hash lists (needed for commit analyses)")
		txrate   = fs.Float64("txrate", 0, "transaction workload rate in tx/s (0 disables)")
		relayArg = fs.String("relay", "", "block-relay protocol: sqrt-push (default)|push-all|announce-only|compact|hybrid")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, err := relay.ParseMode(*relayArg)
	if err != nil {
		return err
	}
	cfg := core.DefaultCampaignConfig(*seed)
	cfg.Relay = relay.Config{Mode: mode}
	cfg.NetworkNodes = *nodes
	cfg.Blocks = *blocks
	cfg.Degree = *degree
	cfg.Measurement = core.PaperMeasurementSpecs(*peers)
	cfg.CaptureTxLinks = *txlinks
	if *txrate > 0 {
		wl := txgen.DefaultConfig()
		wl.MeanInterArrival = sim.Time(1000 / *txrate)
		cfg.Workload = &wl
	}

	fmt.Printf("running campaign: %d nodes, %d blocks, seed %d\n", *nodes, *blocks, *seed)
	res, err := core.RunCampaign(cfg)
	if err != nil {
		return err
	}
	st := store.NewFS(*out)
	for _, node := range res.Nodes {
		name := node.Name() + ".jsonl"
		var buf bytes.Buffer
		if err := measure.WriteJSONL(&buf, node.Records()); err != nil {
			return fmt.Errorf("encode %s: %w", name, err)
		}
		if err := st.Put(name, buf.Bytes()); err != nil {
			return fmt.Errorf("write %s: %w", name, err)
		}
		fmt.Printf("  %s/%s: %d records\n", *out, name, len(node.Records()))
	}
	if err := sealDataset(st, cfg); err != nil {
		return err
	}
	bw, err := analysis.RenderBandwidth(res.Bandwidth)
	if err != nil {
		return err
	}
	fmt.Print(bw)
	return nil
}

// datasetManifest is a measurement dataset's manifest.json: the
// campaign sizing joined with the store digest record. The digest
// fields mirror store.Manifest, so store.Verify (and therefore
// `ethanalyze -verify`) works on datasets and campaign runs alike.
type datasetManifest struct {
	SchemaVersion int          `json:"schema_version"`
	Seed          uint64       `json:"seed"`
	Nodes         int          `json:"nodes"`
	Blocks        uint64       `json:"blocks"`
	Relay         string       `json:"relay"`
	MerkleRoot    string       `json:"merkle_root"`
	Files         []store.File `json:"files"`
}

// sealDataset digests the written logs and writes the manifest. Last
// write into the store: blobs added afterwards would fail -verify.
func sealDataset(st store.Store, cfg core.CampaignConfig) error {
	m, err := st.Manifest()
	if err != nil {
		return fmt.Errorf("digest dataset: %w", err)
	}
	doc := datasetManifest{
		SchemaVersion: m.SchemaVersion,
		Seed:          cfg.Seed,
		Nodes:         cfg.NetworkNodes,
		Blocks:        cfg.Blocks,
		Relay:         cfg.Relay.Mode.String(),
		MerkleRoot:    m.MerkleRoot,
		Files:         m.Files,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal manifest: %w", err)
	}
	return st.Put(store.ManifestFile, append(data, '\n'))
}
