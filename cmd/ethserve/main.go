// Command ethserve runs the experiment campaign service: a resident
// HTTP server that accepts campaign submissions, streams per-run
// progress as server-sent events, and serves the digest-sealed
// artifacts — the same byte-identical run directories `ethrepro -out`
// writes, now available to anything that speaks HTTP.
//
//	POST   /campaigns                     submit a campaign (JSON body)
//	GET    /campaigns                     list campaigns
//	GET    /campaigns/{id}                campaign status
//	DELETE /campaigns/{id}                cancel (queued or running)
//	GET    /campaigns/{id}/events         SSE progress stream
//	GET    /campaigns/{id}/artifacts      artifact names
//	GET    /campaigns/{id}/artifacts/F    one artifact
//	GET    /metrics                       Prometheus text scrape
//	GET    /healthz                       liveness probe
//	GET    /version                       build info
//	GET    /debug/pprof/...               runtime profiles (-pprof only)
//
// Campaign artifacts land under -store as one subdirectory per
// campaign ID; `ethanalyze -verify <store>/<id>` checks any of them
// offline. See docs/SERVER.md for the API reference and
// docs/OBSERVABILITY.md for the metrics catalog.
//
// Usage:
//
//	ethserve [-addr :8080] [-store campaign_store] [-queue 16]
//	         [-campaigns 2] [-budget 0]
//	         [-telemetry] [-profile] [-pprof]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "ethserve:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until ctx is cancelled. When
// ready is non-nil it receives the bound address once the listener is
// up (the e2e test binds :0 and needs the resolved port).
func run(ctx context.Context, args []string, logw io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("ethserve", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		storeDir  = fs.String("store", "campaign_store", "root directory for campaign artifacts (one subdirectory per campaign)")
		queue     = fs.Int("queue", 16, "max queued campaigns before submissions get 503")
		campaigns = fs.Int("campaigns", 2, "concurrent campaign executors")
		budget    = fs.Int("budget", 0, "total experiment workers across campaigns (0 = GOMAXPROCS)")
		telemetry = fs.Bool("telemetry", false, "seal a telemetry.json performance record into each campaign (wall-clock content; not byte-reproducible across hosts)")
		profile   = fs.Bool("profile", false, "capture per-campaign CPU+heap pprof pairs as sealed artifacts")
		pprofFlag = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logf := func(format string, a ...any) { fmt.Fprintf(logw, format+"\n", a...) }
	srv := server.New(server.Config{
		Queue:        *queue,
		Campaigns:    *campaigns,
		WorkerBudget: *budget,
		OpenStore: func(id string) (store.Store, error) {
			return store.NewFS(filepath.Join(*storeDir, id)), nil
		},
		Logf:      logf,
		Telemetry: *telemetry,
		Profile:   *profile,
		PProf:     *pprofFlag,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	logf("ethserve: listening on %s, storing campaigns under %s", ln.Addr(), *storeDir)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful stop: close the listener and in-flight HTTP first, then
	// srv.Close (deferred) cancels running campaigns and drains them.
	logf("ethserve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
