package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

// startServe boots the full ethserve binary path (flag parsing,
// listener, HTTP server) on a random port against dir and returns the
// base URL plus a shutdown func that waits for a clean exit.
func startServe(t *testing.T, dir string, extraArgs ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-store", dir}, extraArgs...)
	go func() { done <- run(ctx, args, os.Stderr, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("ethserve exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("ethserve never became ready")
	}
	return "http://" + addr, func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("ethserve shutdown: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Error("ethserve did not shut down")
		}
	}
}

// TestEndToEndSubmitFetchVerify is the service smoke test the
// Makefile's test-server target runs: boot ethserve, submit a
// campaign over HTTP, follow it to completion, fetch an artifact, and
// digest-verify the on-disk run directory exactly like
// `ethanalyze -verify` does.
func TestEndToEndSubmitFetchVerify(t *testing.T) {
	root := t.TempDir()
	base, shutdown := startServe(t, root)
	defer shutdown()

	// T1 is the registry's static table — instant at any scale.
	body := `{"specs": ["T1"], "seed": 42, "repeats": 2}`
	resp, err := http.Post(base+"/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %+v", resp.StatusCode, st)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(base + "/campaigns/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != server.StateDone || st.Completed != 2 || st.MerkleRoot == "" {
		t.Fatalf("campaign: %+v", st)
	}

	// Fetch an artifact over HTTP and compare to the on-disk copy.
	r, err := http.Get(base + "/campaigns/" + st.ID + "/artifacts/outcomes.json")
	if err != nil {
		t.Fatal(err)
	}
	var served bytes.Buffer
	if _, err := served.ReadFrom(r.Body); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("artifact fetch: HTTP %d", r.StatusCode)
	}
	runDir := filepath.Join(root, st.ID)
	onDisk, err := os.ReadFile(filepath.Join(runDir, "outcomes.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served.Bytes(), onDisk) {
		t.Fatal("served artifact differs from the on-disk run directory")
	}

	// The run directory verifies offline against the reported root —
	// the `ethanalyze -verify` contract.
	fsStore := store.NewFS(runDir)
	if err := store.Verify(fsStore); err != nil {
		t.Fatalf("run directory fails verification: %v", err)
	}
	m, err := store.ReadManifest(fsStore)
	if err != nil {
		t.Fatal(err)
	}
	if m.MerkleRoot != st.MerkleRoot {
		t.Fatalf("status root %s != manifest root %s", st.MerkleRoot, m.MerkleRoot)
	}
}

func TestServeRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-badflag"}, os.Stderr, nil); err == nil {
		t.Fatal("bad flag must fail")
	}
}
