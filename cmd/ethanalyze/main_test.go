package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/txgen"
)

// writeDataset runs a small campaign and writes its logs like
// ethmeasure would.
func writeDataset(t *testing.T, dir string) {
	t.Helper()
	cfg := core.DefaultCampaignConfig(9)
	cfg.NetworkNodes = 120
	cfg.Blocks = 60
	cfg.Measurement = append(core.PaperMeasurementSpecs(30),
		core.MeasurementSpec{Name: "WE-default", Region: cfg.Measurement[2].Region, Peers: 25})
	cfg.CaptureTxLinks = true
	wl := txgen.DefaultConfig()
	wl.Senders = 50
	wl.MeanInterArrival = 1000
	cfg.Workload = &wl
	res, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range res.Nodes {
		f, err := os.Create(filepath.Join(dir, node.Name()+".jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		if err := measure.WriteJSONL(f, node.Records()); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAnalyzeDataset(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir)
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := run([]string{"-in", dir, "-redundancy-node", "WE-default"}, out); err != nil {
		t.Fatal(err)
	}
	if _, err := out.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	n, _ := out.Read(buf)
	text := string(buf[:n])
	for _, want := range []string{
		"Figure 1", "Figure 2", "Figure 3", "Table II",
		"Figure 4", "Figure 5", "Figure 6", "Table III",
		"One-miner forks", "Figure 7",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("analysis output missing %q:\n%s", want, text[:min(len(text), 2000)])
		}
	}
}

func TestAnalyzeRunDirectory(t *testing.T) {
	// Build a campaign run directory like ethrepro -out would (T1 is
	// static, so this is instant) and summarize it.
	specs, err := experiments.Select([]string{"T1"})
	if err != nil {
		t.Fatal(err)
	}
	report, err := experiments.Run(context.Background(), specs, experiments.RunnerConfig{
		Seed: 42, Scale: experiments.ScaleSmall, Repeats: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "run")
	st := store.NewFS(dir)
	if err := experiments.WriteArtifacts(st, report); err != nil {
		t.Fatal(err)
	}
	if err := experiments.WriteManifest(st, report); err != nil {
		t.Fatal(err)
	}

	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := run([]string{"-run", dir}, out); err != nil {
		t.Fatal(err)
	}
	if _, err := out.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	n, _ := out.Read(buf)
	text := string(buf[:n])
	for _, want := range []string{"2 runs, 0 failed", "Campaign summary", "machines"} {
		if !strings.Contains(text, want) {
			t.Fatalf("run summary missing %q:\n%s", want, text)
		}
	}
}

// TestAnalyzeRunWithTelemetry: a run directory carrying
// telemetry.json gets the throughput table appended.
func TestAnalyzeRunWithTelemetry(t *testing.T) {
	defer obs.Default.Disable()
	obs.Default.EnableTelemetry()
	specs, err := experiments.Select([]string{"T2"})
	if err != nil {
		t.Fatal(err)
	}
	report, err := experiments.Run(context.Background(), specs, experiments.RunnerConfig{
		Seed: 42, Scale: experiments.ScaleSmall,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "run")
	st := store.NewFS(dir)
	if err := experiments.WriteArtifacts(st, report); err != nil {
		t.Fatal(err)
	}
	tel := experiments.BuildTelemetry(report, obs.Default.Take(experiments.ReportSeeds(report)))
	if err := experiments.WriteTelemetry(st, tel); err != nil {
		t.Fatal(err)
	}
	if err := experiments.WriteManifest(st, report); err != nil {
		t.Fatal(err)
	}
	text, err := capture(t, []string{"-run", dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Run telemetry", "events/s", "T2"} {
		if !strings.Contains(text, want) {
			t.Fatalf("telemetry table missing %q:\n%s", want, text)
		}
	}
}

func TestAnalyzeRejectsMissingRunDir(t *testing.T) {
	if err := run([]string{"-run", filepath.Join(t.TempDir(), "nope")}, os.Stdout); err == nil {
		t.Fatal("missing run dir must fail")
	}
}

func TestAnalyzeRejectsEmptyDir(t *testing.T) {
	if err := run([]string{"-in", t.TempDir()}, os.Stdout); err == nil {
		t.Fatal("empty dir must fail")
	}
}

func TestAnalyzeRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-badflag"}, os.Stdout); err == nil {
		t.Fatal("bad flag must fail")
	}
}

// sealedRunDir writes a minimal sealed campaign directory (T1, two
// repeats) and returns its path.
func sealedRunDir(t *testing.T) string {
	t.Helper()
	specs, err := experiments.Select([]string{"T1"})
	if err != nil {
		t.Fatal(err)
	}
	report, err := experiments.Run(context.Background(), specs, experiments.RunnerConfig{
		Seed: 42, Scale: experiments.ScaleSmall, Repeats: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "run")
	st := store.NewFS(dir)
	if err := experiments.WriteArtifacts(st, report); err != nil {
		t.Fatal(err)
	}
	if err := experiments.WriteManifest(st, report); err != nil {
		t.Fatal(err)
	}
	return dir
}

func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	runErr := run(args, out)
	if _, err := out.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	n, _ := out.Read(buf)
	return string(buf[:n]), runErr
}

func TestVerifyRunDirectory(t *testing.T) {
	dir := sealedRunDir(t)
	text, err := capture(t, []string{"-verify", dir})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "ok") || !strings.Contains(text, "merkle root") {
		t.Fatalf("verify output:\n%s", text)
	}

	// Flip one artifact byte: verification must fail.
	path := filepath.Join(dir, "rendered.txt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, []string{"-verify", dir}); err == nil {
		t.Fatal("verify accepted a tampered artifact")
	}
}

func TestVerifyRejectsLegacyRunDirectory(t *testing.T) {
	dir := sealedRunDir(t)
	// Rewrite the manifest as the old v1 schema (metadata only).
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"),
		[]byte(`{"seed":42,"scale":"small","repeats":2,"specs":["T1"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, []string{"-verify", dir}); err == nil {
		t.Fatal("verify accepted an unversioned legacy manifest")
	}
	// But -run still summarizes it, with a warning.
	text, err := capture(t, []string{"-run", dir})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "legacy manifest") {
		t.Fatalf("missing legacy warning:\n%s", text)
	}
	if !strings.Contains(text, "Campaign summary") {
		t.Fatalf("legacy run not summarized:\n%s", text)
	}
}

// TestRunDirectoryNoLegacyWarning: current directories must summarize
// without the warning.
func TestRunDirectoryNoLegacyWarning(t *testing.T) {
	text, err := capture(t, []string{"-run", sealedRunDir(t)})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text, "legacy manifest") {
		t.Fatalf("spurious legacy warning:\n%s", text)
	}
}
