package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/measure"
	"repro/internal/txgen"
)

// writeDataset runs a small campaign and writes its logs like
// ethmeasure would.
func writeDataset(t *testing.T, dir string) {
	t.Helper()
	cfg := core.DefaultCampaignConfig(9)
	cfg.NetworkNodes = 120
	cfg.Blocks = 60
	cfg.Measurement = append(core.PaperMeasurementSpecs(30),
		core.MeasurementSpec{Name: "WE-default", Region: cfg.Measurement[2].Region, Peers: 25})
	cfg.CaptureTxLinks = true
	wl := txgen.DefaultConfig()
	wl.Senders = 50
	wl.MeanInterArrival = 1000
	cfg.Workload = &wl
	res, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range res.Nodes {
		f, err := os.Create(filepath.Join(dir, node.Name()+".jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		if err := measure.WriteJSONL(f, node.Records()); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAnalyzeDataset(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir)
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := run([]string{"-in", dir, "-redundancy-node", "WE-default"}, out); err != nil {
		t.Fatal(err)
	}
	if _, err := out.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	n, _ := out.Read(buf)
	text := string(buf[:n])
	for _, want := range []string{
		"Figure 1", "Figure 2", "Figure 3", "Table II",
		"Figure 4", "Figure 5", "Figure 6", "Table III",
		"One-miner forks", "Figure 7",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("analysis output missing %q:\n%s", want, text[:min(len(text), 2000)])
		}
	}
}

func TestAnalyzeRunDirectory(t *testing.T) {
	// Build a campaign run directory like ethrepro -out would (T1 is
	// static, so this is instant) and summarize it.
	specs, err := experiments.Select([]string{"T1"})
	if err != nil {
		t.Fatal(err)
	}
	report, err := experiments.Run(specs, experiments.RunnerConfig{
		Seed: 42, Scale: experiments.ScaleSmall, Repeats: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "run")
	if err := experiments.WriteArtifacts(dir, report); err != nil {
		t.Fatal(err)
	}

	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := run([]string{"-run", dir}, out); err != nil {
		t.Fatal(err)
	}
	if _, err := out.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	n, _ := out.Read(buf)
	text := string(buf[:n])
	for _, want := range []string{"2 runs, 0 failed", "Campaign summary", "machines"} {
		if !strings.Contains(text, want) {
			t.Fatalf("run summary missing %q:\n%s", want, text)
		}
	}
}

func TestAnalyzeRejectsMissingRunDir(t *testing.T) {
	if err := run([]string{"-run", filepath.Join(t.TempDir(), "nope")}, os.Stdout); err == nil {
		t.Fatal("missing run dir must fail")
	}
}

func TestAnalyzeRejectsEmptyDir(t *testing.T) {
	if err := run([]string{"-in", t.TempDir()}, os.Stdout); err == nil {
		t.Fatal("empty dir must fail")
	}
}

func TestAnalyzeRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-badflag"}, os.Stdout); err == nil {
		t.Fatal("bad flag must fail")
	}
}
