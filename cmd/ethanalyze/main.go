// Command ethanalyze post-processes a JSONL dataset produced by
// ethmeasure and prints the paper's tables and figures — the
// reproduction of the study's pandas/NumPy analysis phase (§III). It
// also reads experiment-campaign run directories written by
// ethrepro -out and prints their cross-repeat aggregation.
//
// Run directories written by current ethrepro/ethserve carry a
// versioned manifest with per-file SHA-256 digests batched into a
// Merkle root; -verify recomputes everything and fails on any
// tampered, missing or smuggled artifact, entirely offline.
//
// Usage:
//
//	ethanalyze -in dataset/ [-redundancy-node WE-default]
//	ethanalyze -run paper_runs/run1
//	ethanalyze -verify paper_runs/run1
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/experiments"
	"repro/internal/measure"
	"repro/internal/scenario"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ethanalyze:", err)
		os.Exit(1)
	}
}

func run(args []string, w *os.File) error {
	fs := flag.NewFlagSet("ethanalyze", flag.ContinueOnError)
	var (
		in        = fs.String("in", "dataset", "directory of JSONL logs")
		redNode   = fs.String("redundancy-node", "", "node name for Table II (default: skip)")
		runDir    = fs.String("run", "", "ethrepro run directory to summarize instead of JSONL logs")
		verifyDir = fs.String("verify", "", "artifact directory to digest-verify against its manifest, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *verifyDir != "" {
		return verifyArtifacts(*verifyDir, w)
	}
	if *runDir != "" {
		return analyzeRun(*runDir, w)
	}
	paths, err := filepath.Glob(filepath.Join(*in, "*.jsonl"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no .jsonl files under %s", *in)
	}
	var records []measure.Record
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("open %s: %w", path, err)
		}
		recs, err := measure.ReadJSONL(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		records = append(records, recs...)
		fmt.Fprintf(w, "loaded %s: %d records\n", path, len(recs))
	}
	ds, err := analysis.FromRecords(records)
	if err != nil {
		return err
	}
	idx, err := analysis.BuildIndex(ds)
	if err != nil {
		return err
	}

	// Network-level figures.
	if prop, err := analysis.PropagationDelays(idx); err == nil {
		fmt.Fprintln(w, analysis.RenderPropagation(prop))
	} else {
		fmt.Fprintf(w, "figure 1 unavailable: %v\n", err)
	}
	if first, err := analysis.FirstObservations(idx); err == nil {
		fmt.Fprintln(w, analysis.RenderFirstObservations(first))
	} else {
		fmt.Fprintf(w, "figure 2 unavailable: %v\n", err)
	}
	if pools, err := analysis.PoolFirstObservations(idx, 15); err == nil {
		fmt.Fprintln(w, analysis.RenderPoolObservations(pools, ds.NodeNames))
	} else {
		fmt.Fprintf(w, "figure 3 unavailable: %v\n", err)
	}
	if *redNode != "" {
		if red, err := analysis.Redundancy(idx, *redNode); err == nil {
			fmt.Fprintln(w, analysis.RenderRedundancy(red))
		} else {
			fmt.Fprintf(w, "table II unavailable: %v\n", err)
		}
	}

	// Chain-level figures from the reconstructed chain.
	view, err := analysis.ViewFromIndex(idx)
	if err != nil {
		return fmt.Errorf("reconstruct chain: %w", err)
	}
	if commit, err := analysis.CommitTimes(idx, view); err == nil {
		fmt.Fprintln(w, analysis.RenderCommit(commit))
	} else {
		fmt.Fprintf(w, "figure 4 unavailable: %v\n", err)
	}
	if reorder, err := analysis.Reordering(idx, view); err == nil {
		fmt.Fprintln(w, analysis.RenderReordering(reorder))
	} else {
		fmt.Fprintf(w, "figure 5 unavailable: %v\n", err)
	}
	if empty, err := analysis.EmptyBlocks(view); err == nil {
		fmt.Fprintln(w, analysis.RenderEmptyBlocks(empty, 16))
	}
	if forks, err := analysis.Forks(view); err == nil {
		fmt.Fprintln(w, analysis.RenderForks(forks))
	}
	if om, err := analysis.OneMinerForks(view); err == nil {
		fmt.Fprintln(w, analysis.RenderOneMinerForks(om))
	}
	if seq, err := analysis.Sequences(view); err == nil {
		fmt.Fprintln(w, analysis.RenderSequences(seq, 6, 9))
		if censor, err := analysis.CensorshipWindows(seq, 6, 13.3); err == nil {
			fmt.Fprintln(w, analysis.RenderCensorship(censor))
		}
	}
	return nil
}

// verifyArtifacts checks an artifact directory (a campaign run or an
// ethmeasure dataset) against its embedded manifest: every file
// digest plus the Merkle root. Verification is offline — only the
// directory is needed.
func verifyArtifacts(dir string, w *os.File) error {
	st := store.NewFS(dir)
	if err := store.Verify(st); err != nil {
		return err
	}
	m, err := store.ReadManifest(st)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: ok — %d file(s) verified, merkle root %s\n",
		dir, len(m.Files), m.MerkleRoot)
	return nil
}

// analyzeRun summarizes an ethrepro campaign directory: per-run status
// and the cross-repeat metric aggregation. Scenario campaigns embed
// their resolved scenarios; those runs are labeled by variant.
func analyzeRun(dir string, w *os.File) error {
	st := store.NewFS(dir)
	report, err := experiments.ReadArtifacts(st)
	if err != nil {
		return err
	}
	// Both manifest versions read fine, but only the versioned schema
	// carries digests — flag legacy directories so stale runs are
	// re-generated rather than trusted.
	if m, err := experiments.ReadManifest(st); err == nil && m.Legacy() {
		fmt.Fprintf(w, "warning: %s has an unversioned legacy manifest (no digests); re-run to enable -verify\n", dir)
	}
	sets, err := scenario.ReadArtifact(st)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Built-in campaign; nothing to label.
	case err != nil:
		return err
	default:
		// A partial -only run records the full scenario but executes a
		// subset of its variants; flag the ones without results.
		ran := map[string]bool{}
		for _, res := range report.Results {
			ran[res.Spec.ID] = true
		}
		for _, set := range sets {
			fmt.Fprintf(w, "scenario %s (%s mode, %d variant(s))\n",
				set.Base.Name, set.Base.RunMode(), len(set.Variants))
			for _, v := range set.Variants {
				note := ""
				if !ran[v.ID()] {
					note = "  (not run)"
				}
				fmt.Fprintf(w, "  %s%s\n", v.ID(), note)
			}
		}
		fmt.Fprintln(w)
	}
	failed := 0
	for _, res := range report.Results {
		if res.Err != nil {
			failed++
			fmt.Fprintf(w, "%-8s repeat %d (seed %d): FAILED: %v\n",
				res.Spec.ID, res.Repeat, res.Seed, res.Err)
		}
	}
	fmt.Fprintf(w, "campaign %s: %d runs, %d failed\n\n", dir, len(report.Results), failed)
	fmt.Fprint(w, report.RenderSummary())
	// Runs recorded with `ethrepro -telemetry` (the default with -out)
	// carry a performance record; surface it as a throughput table.
	if tel, err := experiments.ReadTelemetry(st); err == nil {
		fmt.Fprintln(w)
		fmt.Fprint(w, experiments.RenderTelemetry(tel))
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}
