package main

import (
	"testing"

	"repro/internal/experiments"
)

func TestParseScale(t *testing.T) {
	cases := map[string]experiments.Scale{
		"small":  experiments.ScaleSmall,
		"medium": experiments.ScaleMedium,
		"paper":  experiments.ScalePaper,
	}
	for in, want := range cases {
		got, err := parseScale(in)
		if err != nil || got != want {
			t.Errorf("%q: %v, %v", in, got, err)
		}
	}
	if _, err := parseScale("gigantic"); err == nil {
		t.Error("unknown scale must fail")
	}
}

func TestRunSelectedExperiments(t *testing.T) {
	// T1 is static and instant; F1-F3 run one small campaign.
	if err := run([]string{"-scale", "small", "-only", "T1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scale", "small", "-only", "F2", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-scale", "gigantic"}); err == nil {
		t.Fatal("bad scale must fail")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Fatal("bad flag must fail")
	}
}
