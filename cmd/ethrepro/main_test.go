package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListRegistry(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"network", "F1,F2,F3", "chain", "W1"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("registry listing missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSelectedExperiments(t *testing.T) {
	// T1 is static and instant.
	var out bytes.Buffer
	if err := run([]string{"-scale", "small", "-only", "T1"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table I") {
		t.Fatalf("missing Table I:\n%s", out.String())
	}
	if testing.Short() {
		return
	}
	// F2 resolves to the shared network spec and runs one campaign.
	out.Reset()
	if err := run([]string{"-scale", "small", "-only", "F2", "-seed", "3"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 1", "Figure 2", "Figure 3"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("network spec output missing %q", want)
		}
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run1")
	var out bytes.Buffer
	if err := run([]string{"-only", "T1", "-repeats", "2", "-out", dir}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"manifest.json", "outcomes.json", "rendered.txt",
		filepath.Join("csv", "outcomes.csv"), filepath.Join("csv", "summary.csv")} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing artifact %s: %v", f, err)
		}
	}
	if !strings.Contains(out.String(), "Campaign summary") {
		t.Fatalf("repeats > 1 must print the summary:\n%s", out.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-scale", "gigantic"}, io.Discard, io.Discard); err == nil {
		t.Fatal("bad scale must fail")
	}
	if err := run([]string{"-badflag"}, io.Discard, io.Discard); err == nil {
		t.Fatal("bad flag must fail")
	}
	if err := run([]string{"-only", "NOPE"}, io.Discard, io.Discard); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}
