package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListRegistry(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"network", "F1,F2,F3", "chain", "W1"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("registry listing missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSelectedExperiments(t *testing.T) {
	// T1 is static and instant.
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-scale", "small", "-only", "T1"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table I") {
		t.Fatalf("missing Table I:\n%s", out.String())
	}
	if testing.Short() {
		return
	}
	// F2 resolves to the shared network spec and runs one campaign.
	out.Reset()
	if err := run(context.Background(), []string{"-scale", "small", "-only", "F2", "-seed", "3"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 1", "Figure 2", "Figure 3"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("network spec output missing %q", want)
		}
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run1")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-only", "T1", "-repeats", "2", "-out", dir}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"manifest.json", "outcomes.json", "rendered.txt",
		filepath.Join("csv", "outcomes.csv"), filepath.Join("csv", "summary.csv")} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing artifact %s: %v", f, err)
		}
	}
	if !strings.Contains(out.String(), "Campaign summary") {
		t.Fatalf("repeats > 1 must print the summary:\n%s", out.String())
	}
}

func TestRunWritesTelemetryAndTrace(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	trace := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	// T2 runs a real campaign, so the trace and telemetry carry engine
	// data.
	if err := run(context.Background(), []string{"-only", "T2", "-out", dir, "-trace", trace}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	tel, err := os.ReadFile(filepath.Join(dir, "telemetry.json"))
	if err != nil {
		t.Fatalf("telemetry.json not written: %v", err)
	}
	for _, want := range []string{`"events_per_sec"`, `"peak_queue"`, `"kinds"`} {
		if !strings.Contains(string(tel), want) {
			t.Fatalf("telemetry.json missing %s:\n%s", want, tel)
		}
	}
	tr, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	if !strings.Contains(string(tr), `"traceEvents"`) || !strings.Contains(string(tr), "p2p.deliver") {
		t.Fatalf("trace missing expected content (%d bytes)", len(tr))
	}

	// -telemetry=false on a reused directory removes the stale file.
	out.Reset()
	if err := run(context.Background(), []string{"-only", "T1", "-out", dir, "-telemetry=false"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "telemetry.json")); err == nil {
		t.Fatal("stale telemetry.json survived a -telemetry=false rerun")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run(context.Background(), []string{"-scale", "gigantic"}, io.Discard, io.Discard); err == nil {
		t.Fatal("bad scale must fail")
	}
	if err := run(context.Background(), []string{"-badflag"}, io.Discard, io.Discard); err == nil {
		t.Fatal("bad flag must fail")
	}
	if err := run(context.Background(), []string{"-only", "NOPE"}, io.Discard, io.Discard); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

// writeScenario drops a scenario document into a temp file.
func writeScenario(t *testing.T, name, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name+".json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestScenarioListAndRun(t *testing.T) {
	path := writeScenario(t, "cli-sweep", `{
	  "name": "cli-sweep",
	  "mode": "chain",
	  "chain": {"blocks": 200, "inter_block_ms": 13300},
	  "outputs": ["forks"],
	  "repeats": 2,
	  "sweep": {"axes": [{"field": "chain.inter_block_ms", "values": [9000, 13300]}]}
	}`)

	// -list shows the compiled variants alongside the built-ins.
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-scenario", path, "-list"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"network", "cli-sweep@inter_block_ms=9000", "cli-sweep@inter_block_ms=13300"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("scenario listing missing %q:\n%s", want, out.String())
		}
	}

	// -scenario without -only runs only the variants; the scenario's
	// repeats suggestion applies; the run dir embeds the scenario.
	dir := filepath.Join(t.TempDir(), "run")
	out.Reset()
	if err := run(context.Background(), []string{"-scenario", path, "-scale", "small", "-out", dir}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "specs=2") {
		t.Fatalf("expected only the 2 variants selected:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "repeats=2") {
		t.Fatalf("scenario repeats suggestion not applied:\n%s", out.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "scenario.json")); err != nil {
		t.Fatalf("run dir missing scenario artifact: %v", err)
	}

	// Reusing the run directory without -scenario must not leave the
	// stale embedding behind to mislabel the new campaign.
	out.Reset()
	if err := run(context.Background(), []string{"-only", "T1", "-out", dir}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "scenario.json")); err == nil {
		t.Fatal("stale scenario.json survived a non-scenario rerun")
	}
}

// TestScenarioExcludedByOnly: when -only selects no scenario variant,
// the scenario must leave no trace on the run — no repeats suggestion,
// no embedded scenario.json.
func TestScenarioExcludedByOnly(t *testing.T) {
	path := writeScenario(t, "excluded", `{
	  "name": "excluded",
	  "mode": "chain",
	  "chain": {"blocks": 100},
	  "repeats": 3
	}`)
	dir := filepath.Join(t.TempDir(), "run")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-scenario", path, "-only", "T1", "-out", dir}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "repeats=1") {
		t.Fatalf("excluded scenario's repeats suggestion applied:\n%s", out.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "scenario.json")); err == nil {
		t.Fatal("run dir embeds a scenario that did not run")
	}
}

func TestScenarioRejectsBadFile(t *testing.T) {
	if err := run(context.Background(), []string{"-scenario", "no-such-file.json", "-list"}, io.Discard, io.Discard); err == nil {
		t.Fatal("missing scenario file must fail")
	}
	path := writeScenario(t, "bad", `{"name": "bad", "mode": "chain", "chain": {"blocks": 0}}`)
	if err := run(context.Background(), []string{"-scenario", path, "-list"}, io.Discard, io.Discard); err == nil {
		t.Fatal("invalid scenario must fail")
	}
	// A scenario name colliding with a built-in spec is rejected.
	path = writeScenario(t, "collide", `{"name": "network", "mode": "chain", "chain": {"blocks": 10}}`)
	if err := run(context.Background(), []string{"-scenario", path, "-list"}, io.Discard, io.Discard); err == nil {
		t.Fatal("registry collision must fail")
	}
}
