// Command ethrepro regenerates the paper's tables and figures by
// running the registered experiments as a parallel campaign: every
// (experiment, repeat) pair fans across a worker pool, outcomes are
// aggregated (mean/std across repeats), and CSV/JSON artifacts are
// written per run directory. Results are byte-identical at any
// -parallel setting: each run's seed derives only from the base seed,
// the experiment ID and the repeat index.
//
// Declarative scenario files (see EXPERIMENTS.md and
// examples/scenarios/) compile into additional registry specs at
// startup: -scenario loads one or more files, expands their parameter
// sweeps into variants, and registers each variant alongside the
// built-ins, so -list, -only, -repeats and -out all apply to them.
// Run directories for scenario campaigns embed the resolved scenario
// (scenario.json) for replay.
//
// Usage:
//
//	ethrepro [-seed 42] [-scale small|medium|paper|stress] [-only F1,chain,...]
//	         [-parallel N] [-repeats N] [-shards N] [-out paper_runs/run1]
//	         [-scenario file.json,...] [-list]
//	         [-telemetry=false] [-trace trace.json]
//
// -shards N (or the ETHREPRO_SHARDS environment variable) runs each
// campaign on the sharded conductor: one event lane per geographic
// region advanced concurrently by N workers under conservative
// lookahead. Artifacts are byte-identical across every -shards value
// >= 1 (and across -parallel, as always); they form a separate
// deterministic family from -shards 0, the single-engine default.
// See docs/PERFORMANCE.md, "Sharded execution".
//
// With -out, a telemetry.json performance record (events/sec, wall
// time per phase, peak queue depth, transport counters, GC stats) is
// written and sealed alongside the artifacts; -telemetry=false omits
// it. -trace additionally captures per-event dispatch spans and
// writes a Chrome trace-event file (load in chrome://tracing or
// Perfetto; use a .jsonl suffix for line-delimited JSON). Neither
// consumes simulation RNG: the science artifacts stay byte-identical
// with observability on or off.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/store"
)

func main() {
	// SIGINT cancels the campaign cleanly: dispatch stops, in-flight
	// runs drain, and -out still writes a complete, digest-sealed run
	// directory for whatever finished (no partial files).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ethrepro:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ethrepro", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed     = fs.Uint64("seed", 42, "campaign base seed")
		scaleStr = fs.String("scale", "small", "experiment scale: small|medium|paper|stress")
		only     = fs.String("only", "", "comma-separated experiment or outcome IDs (default: all)")
		parallel = fs.Int("parallel", 0, "concurrent experiments (0 = GOMAXPROCS)")
		shards   = fs.Int("shards", 0, "intra-run execution workers on the sharded conductor (0 = single engine; >=1 shards each run by region, byte-identical across values)")
		repeats  = fs.Int("repeats", 1, "independent repeats per experiment")
		outDir   = fs.String("out", "", "run directory for CSV/JSON artifacts (default: none)")
		scenFlag = fs.String("scenario", "", "comma-separated scenario files to compile into the registry")
		list     = fs.Bool("list", false, "list registered experiments and exit")
		telem    = fs.Bool("telemetry", true, "write telemetry.json (engine stats, throughput) into the -out run directory")
		traceOut = fs.String("trace", "", "write an engine dispatch trace to this file (Chrome trace-event JSON; .jsonl for JSONL)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sets, all, err := loadScenarios(*scenFlag)
	if err != nil {
		return err
	}
	if *list {
		fmt.Fprint(stdout, renderRegistry(all))
		return nil
	}
	scale, err := experiments.ParseScale(*scaleStr)
	if err != nil {
		return err
	}
	var ids []string
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	// -scenario without -only runs the scenario's variants, not the
	// whole registry: that is what pointing the tool at a file means.
	if len(ids) == 0 && len(sets) > 0 {
		for _, set := range sets {
			for _, v := range set.Variants {
				ids = append(ids, v.ID())
			}
		}
	}
	specs, err := experiments.SelectIn(all, ids)
	if err != nil {
		return err
	}
	// Scenario side effects (the repeats suggestion and the embedded
	// scenario.json) apply only to scenarios whose variants actually
	// run — -only may have excluded them.
	sets = activeSets(sets, specs)
	// A scenario's suggested repeat count applies unless -repeats was
	// given explicitly.
	repeatsSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "repeats" {
			repeatsSet = true
		}
	})
	if !repeatsSet {
		for _, set := range sets {
			if set.Base.Repeats > *repeats {
				*repeats = set.Base.Repeats
			}
		}
	}

	// The parallel setting must not appear on stdout: stdout is
	// byte-identical across -parallel values, which is the campaign's
	// determinism contract.
	fmt.Fprintf(stdout, "ethrepro: seed=%d scale=%s repeats=%d specs=%d\n\n",
		*seed, scale, max(*repeats, 1), len(specs))
	fmt.Fprintf(stderr, "ethrepro: parallel=%d\n",
		experiments.EffectiveParallel(*parallel, len(specs), *repeats, 0))
	// -shards rides the same environment knob campaigns already read,
	// so it reaches every spec builder without threading a parameter
	// through the registry. Like -parallel it never prints to stdout:
	// artifacts (and stdout) are byte-identical across shard counts.
	if *shards > 0 {
		if err := os.Setenv("ETHREPRO_SHARDS", fmt.Sprint(*shards)); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "ethrepro: shards=%d\n", *shards)
	}
	// Observability is opt-in per invocation. Tracing and telemetry
	// read only engine counters and wall clocks, never RNG, so the
	// artifact bytes (outcomes, CSVs, manifest) are identical either
	// way; telemetry.json is the one artifact carrying wall-clock
	// content, which is why -telemetry only matters alongside -out.
	collect := (*outDir != "" && *telem) || *traceOut != ""
	if *traceOut != "" {
		obs.Default.EnableTracing(0)
	} else if collect {
		obs.Default.EnableTelemetry()
	}
	if collect {
		defer obs.Default.Disable()
	}
	start := time.Now()
	report, runErr := experiments.Run(ctx, specs, experiments.RunnerConfig{
		Seed:     *seed,
		Scale:    scale,
		Repeats:  *repeats,
		Parallel: *parallel,
		// Progress (completion order, wall-clock) goes to stderr so
		// stdout stays deterministic across -parallel settings.
		OnResult: func(r experiments.Result) {
			status := "ok"
			if r.Err != nil {
				status = "FAILED: " + r.Err.Error()
			}
			fmt.Fprintf(stderr, "ethrepro: %-8s repeat %d  %8s  %s\n",
				r.Spec.ID, r.Repeat, r.Elapsed.Round(time.Millisecond), status)
		},
	})
	if report != nil {
		emitReport(stdout, report)
	}
	var taken map[uint64]obs.RunTelemetry
	if collect && report != nil {
		taken = obs.Default.Take(experiments.ReportSeeds(report))
	}
	if *traceOut != "" && report != nil {
		if err := writeTrace(*traceOut, report, taken); err != nil {
			return errors.Join(runErr, err)
		}
		fmt.Fprintf(stderr, "ethrepro: trace written to %s\n", *traceOut)
	}
	if *outDir != "" && report != nil {
		st := store.NewFS(*outDir)
		if err := experiments.WriteArtifacts(st, report); err != nil {
			// Keep the campaign failure visible alongside the write
			// failure.
			return errors.Join(runErr, err)
		}
		if len(sets) > 0 {
			// Embed the resolved scenarios so the run directory is
			// replayable without the original files.
			if err := scenario.WriteArtifact(st, sets); err != nil {
				return errors.Join(runErr, err)
			}
		} else {
			// A reused run directory must not keep a stale scenario
			// embedding from an earlier campaign.
			if err := st.Delete(scenario.ArtifactFile); err != nil {
				return errors.Join(runErr, err)
			}
		}
		if *telem {
			if err := experiments.WriteTelemetry(st, experiments.BuildTelemetry(report, taken)); err != nil {
				return errors.Join(runErr, err)
			}
		} else if err := st.Delete(experiments.TelemetryFile); err != nil {
			// A reused run directory must not keep stale telemetry from
			// an earlier campaign under the fresh manifest.
			return errors.Join(runErr, err)
		}
		// Seal last so the Merkle root covers every blob above.
		if err := experiments.WriteManifest(st, report); err != nil {
			return errors.Join(runErr, err)
		}
		fmt.Fprintf(stdout, "artifacts written to %s\n", *outDir)
	}
	fmt.Fprintf(stderr, "ethrepro: done in %s\n", time.Since(start).Round(time.Millisecond))
	return runErr
}

// emitReport prints the rendered outcomes (first repeat, registration
// order) and the cross-repeat summary.
func emitReport(w io.Writer, report *experiments.Report) {
	fmt.Fprint(w, report.RenderOutcomes())
	if report.Repeats > 1 {
		fmt.Fprint(w, report.RenderSummary())
	}
}

// writeTrace exports the campaign's engine dispatch spans, one trace
// process per (spec, repeat) run, to a Chrome trace-event file (or
// JSONL when the path ends in .jsonl).
func writeTrace(path string, report *experiments.Report, taken map[uint64]obs.RunTelemetry) error {
	var runs []obs.TraceRun
	for _, res := range report.Results {
		rt, ok := taken[res.Seed]
		if !ok || len(rt.Tracers) == 0 {
			continue
		}
		runs = append(runs, obs.TraceRun{
			Label: fmt.Sprintf("%s/%d seed=%d", res.Spec.ID, res.Repeat, res.Seed),
			Run:   rt,
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = obs.WriteTraceJSONL(f, runs)
	} else {
		err = obs.WriteChromeTrace(f, runs)
	}
	return errors.Join(err, f.Close())
}

// loadScenarios parses and compiles every scenario file named by the
// comma-separated flag value, merging the variants with the built-in
// registry under Register's collision rules (without mutating it, so
// run stays re-entrant).
func loadScenarios(flagValue string) ([]*scenario.Set, []experiments.Spec, error) {
	all := experiments.Specs()
	var sets []*scenario.Set
	for _, path := range strings.Split(flagValue, ",") {
		if path = strings.TrimSpace(path); path == "" {
			continue
		}
		set, err := scenario.Load(path)
		if err != nil {
			return nil, nil, err
		}
		specs, err := set.Compile()
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		if all, err = experiments.Merge(all, specs...); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		sets = append(sets, set)
	}
	return sets, all, nil
}

// activeSets filters scenario sets down to those with at least one
// variant among the selected specs.
func activeSets(sets []*scenario.Set, specs []experiments.Spec) []*scenario.Set {
	selected := make(map[string]bool, len(specs))
	for _, sp := range specs {
		selected[sp.ID] = true
	}
	var out []*scenario.Set
	for _, set := range sets {
		for _, v := range set.Variants {
			if selected[v.ID()] {
				out = append(out, set)
				break
			}
		}
	}
	return out
}

// renderRegistry prints the experiment registry table (-list),
// including any compiled scenario variants.
func renderRegistry(specs []experiments.Spec) string {
	out := fmt.Sprintf("%-10s %-22s %s\n", "id", "produces", "title")
	for _, s := range specs {
		out += fmt.Sprintf("%-10s %-22s %s\n", s.ID, strings.Join(s.Produces, ","), s.Title)
	}
	return out
}
