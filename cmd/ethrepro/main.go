// Command ethrepro regenerates the paper's tables and figures by
// running the registered experiments as a parallel campaign: every
// (experiment, repeat) pair fans across a worker pool, outcomes are
// aggregated (mean/std across repeats), and CSV/JSON artifacts are
// written per run directory. Results are byte-identical at any
// -parallel setting: each run's seed derives only from the base seed,
// the experiment ID and the repeat index.
//
// Usage:
//
//	ethrepro [-seed 42] [-scale small|medium|paper] [-only F1,chain,...]
//	         [-parallel N] [-repeats N] [-out paper_runs/run1] [-list]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ethrepro:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ethrepro", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed     = fs.Uint64("seed", 42, "campaign base seed")
		scaleStr = fs.String("scale", "small", "experiment scale: small|medium|paper")
		only     = fs.String("only", "", "comma-separated experiment or outcome IDs (default: all)")
		parallel = fs.Int("parallel", 0, "concurrent experiments (0 = GOMAXPROCS)")
		repeats  = fs.Int("repeats", 1, "independent repeats per experiment")
		outDir   = fs.String("out", "", "run directory for CSV/JSON artifacts (default: none)")
		list     = fs.Bool("list", false, "list registered experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprint(stdout, renderRegistry())
		return nil
	}
	scale, err := experiments.ParseScale(*scaleStr)
	if err != nil {
		return err
	}
	var ids []string
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	specs, err := experiments.Select(ids)
	if err != nil {
		return err
	}

	// The parallel setting must not appear on stdout: stdout is
	// byte-identical across -parallel values, which is the campaign's
	// determinism contract.
	fmt.Fprintf(stdout, "ethrepro: seed=%d scale=%s repeats=%d specs=%d\n\n",
		*seed, scale, max(*repeats, 1), len(specs))
	fmt.Fprintf(stderr, "ethrepro: parallel=%d\n",
		experiments.EffectiveParallel(*parallel, len(specs), *repeats))
	start := time.Now()
	report, runErr := experiments.Run(specs, experiments.RunnerConfig{
		Seed:     *seed,
		Scale:    scale,
		Repeats:  *repeats,
		Parallel: *parallel,
		// Progress (completion order, wall-clock) goes to stderr so
		// stdout stays deterministic across -parallel settings.
		OnResult: func(r experiments.Result) {
			status := "ok"
			if r.Err != nil {
				status = "FAILED: " + r.Err.Error()
			}
			fmt.Fprintf(stderr, "ethrepro: %-8s repeat %d  %8s  %s\n",
				r.Spec.ID, r.Repeat, r.Elapsed.Round(time.Millisecond), status)
		},
	})
	if report != nil {
		emitReport(stdout, report)
	}
	if *outDir != "" && report != nil {
		if err := experiments.WriteArtifacts(*outDir, report); err != nil {
			// Keep the campaign failure visible alongside the write
			// failure.
			return errors.Join(runErr, err)
		}
		fmt.Fprintf(stdout, "artifacts written to %s\n", *outDir)
	}
	fmt.Fprintf(stderr, "ethrepro: done in %s\n", time.Since(start).Round(time.Millisecond))
	return runErr
}

// emitReport prints the rendered outcomes (first repeat, registration
// order) and the cross-repeat summary.
func emitReport(w io.Writer, report *experiments.Report) {
	fmt.Fprint(w, report.RenderOutcomes())
	if report.Repeats > 1 {
		fmt.Fprint(w, report.RenderSummary())
	}
}

// renderRegistry prints the experiment registry table (-list).
func renderRegistry() string {
	out := fmt.Sprintf("%-10s %-22s %s\n", "id", "produces", "title")
	for _, s := range experiments.Specs() {
		out += fmt.Sprintf("%-10s %-22s %s\n", s.ID, strings.Join(s.Produces, ","), s.Title)
	}
	return out
}
