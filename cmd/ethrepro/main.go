// Command ethrepro regenerates every table and figure of the paper in
// one run, printing paper-vs-measured for each (the source of
// EXPERIMENTS.md).
//
// Usage:
//
//	ethrepro [-seed 42] [-scale small|medium|paper] [-only F1,F6,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ethrepro:", err)
		os.Exit(1)
	}
}

func parseScale(s string) (experiments.Scale, error) {
	switch s {
	case "small":
		return experiments.ScaleSmall, nil
	case "medium":
		return experiments.ScaleMedium, nil
	case "paper":
		return experiments.ScalePaper, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (small|medium|paper)", s)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ethrepro", flag.ContinueOnError)
	var (
		seed     = fs.Uint64("seed", 42, "simulation seed")
		scaleStr = fs.String("scale", "small", "experiment scale: small|medium|paper")
		only     = fs.String("only", "", "comma-separated experiment IDs (default: all)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale, err := parseScale(*scaleStr)
	if err != nil {
		return err
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	fmt.Printf("ethrepro: seed=%d scale=%s\n\n", *seed, scale)
	start := time.Now()
	emit := func(o *experiments.Outcome) {
		fmt.Printf("== %s: %s ==\n%s\n", o.ID, o.Title, o.Rendered)
	}

	if selected("T1") {
		emit(experiments.Table1())
	}
	if selected("F1") || selected("F2") || selected("F3") {
		outs, err := experiments.NetworkExperiments(*seed, scale)
		if err != nil {
			return fmt.Errorf("network experiments: %w", err)
		}
		for _, o := range outs {
			if selected(o.ID) {
				emit(o)
			}
		}
	}
	if selected("T2") {
		o, err := experiments.Table2(*seed, scale)
		if err != nil {
			return fmt.Errorf("table 2: %w", err)
		}
		emit(o)
	}
	if selected("F4") || selected("F5") {
		outs, err := experiments.CommitExperiments(*seed, scale)
		if err != nil {
			return fmt.Errorf("commit experiments: %w", err)
		}
		for _, o := range outs {
			if selected(o.ID) {
				emit(o)
			}
		}
	}
	if selected("F6") || selected("T3") || selected("S1") || selected("F7") {
		outs, err := experiments.ChainExperiments(*seed, scale)
		if err != nil {
			return fmt.Errorf("chain experiments: %w", err)
		}
		for _, o := range outs {
			if selected(o.ID) {
				emit(o)
			}
		}
	}
	if selected("S2") {
		o, err := experiments.WholeChainExperiment(*seed, scale)
		if err != nil {
			return fmt.Errorf("whole-chain experiment: %w", err)
		}
		emit(o)
	}
	if selected("L1") {
		o, err := experiments.Lesson1Experiment(*seed, scale)
		if err != nil {
			return fmt.Errorf("lesson 1: %w", err)
		}
		emit(o)
	}
	if selected("W1") {
		o, err := experiments.WithholdingExperiment(*seed, scale)
		if err != nil {
			return fmt.Errorf("withholding: %w", err)
		}
		emit(o)
	}
	if selected("C1") {
		o, err := experiments.ConstantinopleExperiment(*seed, scale)
		if err != nil {
			return fmt.Errorf("constantinople: %w", err)
		}
		emit(o)
	}
	if selected("R1") {
		o, err := experiments.RevenueExperiment(*seed, scale)
		if err != nil {
			return fmt.Errorf("revenue: %w", err)
		}
		emit(o)
	}
	if selected("E1") {
		o, err := experiments.EmptyBlockSpreadExperiment(*seed, scale)
		if err != nil {
			return fmt.Errorf("empty-block scenario: %w", err)
		}
		emit(o)
	}
	if selected("A1") {
		o, err := experiments.AblationFanout(*seed, scale)
		if err != nil {
			return fmt.Errorf("fanout ablation: %w", err)
		}
		emit(o)
	}
	if selected("A2") {
		o, err := experiments.AblationGateways(*seed, scale)
		if err != nil {
			return fmt.Errorf("gateway ablation: %w", err)
		}
		emit(o)
	}
	fmt.Printf("done in %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}
