// Finality: reproduce the paper's security analysis (§III-D, Fig. 7):
// how long a sequence of consecutive blocks a single pool can mine,
// observed versus theoretically expected, and what that means for the
// 12-block confirmation rule.
//
//	go run ./examples/finality [-short]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/stats"
)

// short downsizes the run for CI smoke runs (make examples).
var short = flag.Bool("short", false, "run a downscaled demo")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One paper-month of blocks, chain-level only (no network needed
	// for sequence statistics).
	blocks := uint64(201_086)
	if *short {
		blocks = 20_000
	}
	fmt.Printf("simulating one month of mining (%d blocks)...\n\n", blocks)
	res, err := core.RunChainOnly(123, blocks, nil)
	if err != nil {
		return err
	}
	seq, err := analysis.Sequences(res.View)
	if err != nil {
		return err
	}
	fmt.Println(analysis.RenderSequences(seq, 6, 9))

	censor, err := analysis.CensorshipWindows(seq, 6, 13.3)
	if err != nil {
		return err
	}
	fmt.Println(analysis.RenderCensorship(censor))

	// The paper's analytic argument: a pool with share p mines k
	// consecutive blocks with probability p^k; over a month that
	// makes long censorship windows routine for the top pools.
	fmt.Println("Analytic expectations over one month (stats.ExpectedSequences):")
	for _, pool := range seq.TopPools[:2] {
		share := float64(seq.BlockCounts[pool]) / float64(seq.TotalMain)
		for _, k := range []int{8, 9, 12} {
			expected, err := stats.ExpectedSequences(share, k, seq.TotalMain)
			if err != nil {
				return err
			}
			fmt.Printf("  %-12s share %.3f: expect %6.2f sequences of %2d blocks (censor %3.0f s)\n",
				pool, share, expected, k, float64(k)*13.3)
		}
	}
	fmt.Println()
	fmt.Println("A pool that mines 12 consecutive blocks can rewrite anything the")
	fmt.Println("12-confirmation rule considers final. The paper's point: with")
	fmt.Println("today's pool concentration these sequences are not astronomically")
	fmt.Println("rare — Ethermine managed 8 in a row four times in one month, and")
	fmt.Println("a 14-block sequence exists in the historical chain.")
	return nil
}
