// Geoimpact: reproduce the paper's core geographic finding (Figs. 2-3)
// and demonstrate its cause by re-running the same campaign with every
// pool's gateways dispersed across all regions.
//
//	go run ./examples/geoimpact [-short]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/geo"
)

// short downsizes both campaigns for CI smoke runs (make examples).
var short = flag.Bool("short", false, "run a downscaled demo")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func campaign(disperse bool) (*core.CampaignResult, error) {
	cfg := core.DefaultCampaignConfig(7)
	cfg.NetworkNodes = 300
	cfg.Blocks = 250
	if *short {
		cfg.NetworkNodes = 120
		cfg.Blocks = 80
	}
	if disperse {
		everywhere := geo.Regions()
		for i := range cfg.Mining.Pools {
			cfg.Mining.Pools[i].GatewayRegions = everywhere
		}
	}
	return core.RunCampaign(cfg)
}

func run() error {
	fmt.Println("=== Paper placement: Asian pools gateway in Eastern Asia ===")
	paper, err := campaign(false)
	if err != nil {
		return err
	}
	first, err := analysis.FirstObservations(paper.Index)
	if err != nil {
		return err
	}
	fmt.Println(analysis.RenderFirstObservations(first))

	pools, err := analysis.PoolFirstObservations(paper.Index, 8)
	if err != nil {
		return err
	}
	fmt.Println(analysis.RenderPoolObservations(pools, paper.Dataset.NodeNames))

	fmt.Println("=== Counterfactual: every pool gateways everywhere ===")
	dispersed, err := campaign(true)
	if err != nil {
		return err
	}
	firstD, err := analysis.FirstObservations(dispersed.Index)
	if err != nil {
		return err
	}
	fmt.Println(analysis.RenderFirstObservations(firstD))

	fmt.Printf("EA first-observation share: %.1f%% (paper placement) vs %.1f%% (dispersed)\n",
		first.Share["EA"]*100, firstD.Share["EA"]*100)
	fmt.Println("The EA advantage is a property of gateway concentration, not of")
	fmt.Println("the overlay itself — the paper's §III-B2 conclusion.")
	return nil
}
