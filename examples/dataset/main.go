// Dataset: demonstrate the open-data deliverable — run a campaign,
// write the per-node JSONL logs exactly as cmd/ethmeasure does, then
// re-load them from disk and run the analysis pipeline on the files
// alone, the way a third party would reuse the published dataset.
//
//	go run ./examples/dataset [-short]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/measure"
)

// short downsizes the campaign for CI smoke runs (make examples).
var short = flag.Bool("short", false, "run a downscaled demo")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "ethmeasure-dataset-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Collect.
	cfg := core.DefaultCampaignConfig(5)
	cfg.NetworkNodes = 250
	cfg.Blocks = 150
	if *short {
		cfg.NetworkNodes = 100
		cfg.Blocks = 50
	}
	result, err := core.RunCampaign(cfg)
	if err != nil {
		return err
	}
	for _, node := range result.Nodes {
		path := filepath.Join(dir, node.Name()+".jsonl")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := measure.WriteJSONL(f, node.Records()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		info, err := os.Stat(path)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d records, %d bytes\n", path, len(node.Records()), info.Size())
	}

	// Reload from disk only — no in-memory state reused.
	var records []measure.Record
	paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return err
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		recs, err := measure.ReadJSONL(f)
		f.Close()
		if err != nil {
			return err
		}
		records = append(records, recs...)
	}
	ds, err := analysis.FromRecords(records)
	if err != nil {
		return err
	}
	idx, err := analysis.BuildIndex(ds)
	if err != nil {
		return err
	}
	fmt.Println()
	prop, err := analysis.PropagationDelays(idx)
	if err != nil {
		return err
	}
	fmt.Printf("from the on-disk dataset alone: %d blocks, median propagation %.0f ms\n",
		len(idx.BlockFirst), prop.Summary.Median)
	first, err := analysis.FirstObservations(idx)
	if err != nil {
		return err
	}
	fmt.Println(analysis.RenderFirstObservations(first))
	return nil
}
