// Selfish: reproduce the paper's two previously undocumented selfish
// behaviors — empty-block mining (§III-C3, Fig. 6) and one-miner forks
// (§III-C5) — then apply the paper's proposed mitigation (§V: reject
// uncles whose miner already owns the main block at that height) and
// show it removes the one-miner reward.
//
//	go run ./examples/selfish [-short]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/mining"
)

// short downsizes both runs for CI smoke runs (make examples).
var short = flag.Bool("short", false, "run a downscaled demo")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func analyze(restrict bool) error {
	label := "standard protocol"
	if restrict {
		label = "restricted uncle rule (paper §V)"
	}
	blocks := uint64(40_000)
	if *short {
		blocks = 10_000
	}
	res, err := core.RunChainOnly(99, blocks, func(c *mining.Config) {
		c.Uncles.RestrictOneMinerUncles = restrict
	})
	if err != nil {
		return err
	}
	fmt.Printf("=== %s (%d blocks) ===\n", label, blocks)

	empty, err := analysis.EmptyBlocks(res.View)
	if err != nil {
		return err
	}
	fmt.Println(analysis.RenderEmptyBlocks(empty, 8))

	oneMiner, err := analysis.OneMinerForks(res.View)
	if err != nil {
		return err
	}
	fmt.Println(analysis.RenderOneMinerForks(oneMiner))
	return nil
}

func run() error {
	if err := analyze(false); err != nil {
		return err
	}
	if err := analyze(true); err != nil {
		return err
	}
	fmt.Println("Under the restricted rule, one-miner versions are no longer")
	fmt.Println("rewarded as uncles: mining several versions of one's own block")
	fmt.Println("stops paying, reclaiming the ~1% of network mining power the")
	fmt.Println("paper estimates is burned on these forks.")
	return nil
}
