// Quickstart: run the paper's geo-distribution experiments (Figs. 1-2
// territory) through the experiment registry and the parallel campaign
// runner — the same substrate behind cmd/ethrepro.
//
//	go run ./examples/quickstart [-short]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
)

// short downsizes the campaign for CI smoke runs (make examples).
var short = flag.Bool("short", false, "run a downscaled demo")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Select by outcome ID: "F1" resolves to the shared network
	// campaign (the paper derives Figs. 1-3 from one month of logs, so
	// the registry runs it once). Add "T2" for the redundancy table.
	specs, err := experiments.Select([]string{"F1", "T2"})
	if err != nil {
		return err
	}

	repeats := 2 // repeats feed the mean/std aggregation below
	if *short {
		repeats = 1
	}
	workers := experiments.EffectiveParallel(0, len(specs), repeats, 0)
	fmt.Printf("running %d experiments x%d repeats across %d workers...\n\n",
		len(specs), repeats, workers)
	report, err := experiments.Run(context.Background(), specs, experiments.RunnerConfig{
		Seed:     42,
		Scale:    experiments.ScaleSmall,
		Repeats:  repeats,
		Parallel: workers,
		OnResult: func(r experiments.Result) {
			fmt.Printf("  %-8s repeat %d done in %s\n", r.Spec.ID, r.Repeat, r.Elapsed.Round(1e6))
		},
	})
	if err != nil {
		return err
	}

	fmt.Println()
	fmt.Print(report.RenderOutcomes())
	fmt.Print(report.RenderSummary())
	return nil
}
