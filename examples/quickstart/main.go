// Quickstart: run a small geo-distributed measurement campaign and
// print the block propagation picture (the paper's Fig. 1 and Fig. 2).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A campaign = simulated Ethereum network + mining pools + four
	// instrumented measurement nodes (NA, EA, WE, CE), exactly the
	// study's setup scaled down.
	cfg := core.DefaultCampaignConfig(42)
	cfg.NetworkNodes = 300
	cfg.Blocks = 200

	fmt.Println("running measurement campaign (300 nodes, 200 blocks)...")
	result, err := core.RunCampaign(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("collected %d log records from %d measurement nodes\n\n",
		len(result.Dataset.Records), len(result.Nodes))

	prop, err := analysis.PropagationDelays(result.Index)
	if err != nil {
		return err
	}
	fmt.Println(analysis.RenderPropagation(prop))

	first, err := analysis.FirstObservations(result.Index)
	if err != nil {
		return err
	}
	fmt.Println(analysis.RenderFirstObservations(first))
	return nil
}
