// Stress100k: run the 100,000-node overlay scenario
// (examples/scenarios/stress-100k.json) end to end — the scale target
// of the struct-of-arrays node core. Full mode executes the complete
// 100k-node campaign in single-digit minutes; -short runs the
// scenario's downscaled small variant so `make examples` stays fast.
//
//	go run ./examples/stress100k [-short]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

// short runs the scenario's small-scale (50-node) variant.
var short = flag.Bool("short", false, "run the downscaled smoke variant")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	set, err := scenario.Load("examples/scenarios/stress-100k.json")
	if err != nil {
		return err
	}
	specs, err := set.Compile()
	if err != nil {
		return err
	}
	scale := experiments.ScaleMedium // the file's literal 100k sizing
	if *short {
		scale = experiments.ScaleSmall
	}
	fmt.Printf("running %s at scale %s...\n", set.Base.Name, scale)
	start := time.Now()
	report, err := experiments.Run(context.Background(), specs, experiments.RunnerConfig{
		Seed:  42,
		Scale: scale,
	})
	if err != nil {
		return err
	}
	fmt.Printf("completed in %s\n\n", time.Since(start).Round(time.Millisecond))
	fmt.Print(report.RenderOutcomes())
	fmt.Print(report.RenderSummary())
	return nil
}
