// Package repro's top-level benchmark harness: one testing.B target
// per table and figure in the paper's evaluation, plus the ablations
// called out in DESIGN.md §5. Each benchmark regenerates its artifact
// at small scale per iteration; run cmd/ethrepro -scale medium for the
// paper-scale numbers recorded in EXPERIMENTS.md.
//
//	go test -bench=. -benchmem
package repro

import (
	"testing"

	"repro/internal/experiments"
)

// benchSeed keeps benchmark runs deterministic across iterations while
// varying per iteration so caches cannot hide work.
func benchSeed(i int) uint64 { return 42 + uint64(i) }

func reportMetrics(b *testing.B, o *experiments.Outcome, keys ...string) {
	b.Helper()
	for _, k := range keys {
		if v, ok := o.Metrics[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

func findOutcome(b *testing.B, outs []*experiments.Outcome, id string) *experiments.Outcome {
	b.Helper()
	for _, o := range outs {
		if o.ID == id {
			return o
		}
	}
	b.Fatalf("missing outcome %s", id)
	return nil
}

// BenchmarkFigure1PropagationDelay regenerates Fig. 1 (block
// propagation delay distribution).
func BenchmarkFigure1PropagationDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outs, err := experiments.NetworkExperiments(benchSeed(i), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, findOutcome(b, outs, "F1"), "median_ms", "p99_ms")
		}
	}
}

// BenchmarkFigure2FirstObservation regenerates Fig. 2 (first
// observation share per region).
func BenchmarkFigure2FirstObservation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outs, err := experiments.NetworkExperiments(benchSeed(i), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, findOutcome(b, outs, "F2"), "EA_share", "NA_share")
		}
	}
}

// BenchmarkFigure3PoolInfluence regenerates Fig. 3 (first observation
// per mining pool and region).
func BenchmarkFigure3PoolInfluence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outs, err := experiments.NetworkExperiments(benchSeed(i), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, findOutcome(b, outs, "F3"), "sparkpool_EA_first")
		}
	}
}

// BenchmarkTable1Infrastructure renders Table I (static configuration).
func BenchmarkTable1Infrastructure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1().Rendered == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2Redundancy regenerates Table II (redundant block
// receptions at a default 25-peer node).
func BenchmarkTable2Redundancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o, err := experiments.Table2(benchSeed(i), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, o, "combined_mean", "announce_mean", "whole_mean")
		}
	}
}

// BenchmarkFigure4CommitTime regenerates Fig. 4 (transaction inclusion
// and k-confirmation commit times).
func BenchmarkFigure4CommitTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outs, err := experiments.CommitExperiments(benchSeed(i), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, findOutcome(b, outs, "F4"), "inclusion_median_s", "conf12_median_s")
		}
	}
}

// BenchmarkFigure5Reordering regenerates Fig. 5 (in-order vs
// out-of-order commit delay).
func BenchmarkFigure5Reordering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outs, err := experiments.CommitExperiments(benchSeed(i), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, findOutcome(b, outs, "F5"), "ooo_fraction")
		}
	}
}

// BenchmarkFigure6EmptyBlocks regenerates Fig. 6 (empty blocks per
// mining pool).
func BenchmarkFigure6EmptyBlocks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outs, err := experiments.ChainExperiments(benchSeed(i), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, findOutcome(b, outs, "F6"), "empty_fraction", "zhizhu_rate")
		}
	}
}

// BenchmarkTable3Forks regenerates Table III (fork lengths and
// recognition).
func BenchmarkTable3Forks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outs, err := experiments.ChainExperiments(benchSeed(i), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, findOutcome(b, outs, "T3"), "len1_total", "len2_total")
		}
	}
}

// BenchmarkOneMinerForks regenerates the §III-C5 one-miner fork
// analysis.
func BenchmarkOneMinerForks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outs, err := experiments.ChainExperiments(benchSeed(i), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, findOutcome(b, outs, "S1"), "pairs", "recognized_fraction", "same_tx_fraction")
		}
	}
}

// BenchmarkFigure7Sequences regenerates Fig. 7 (consecutive sequences
// per pool with the censorship comparison).
func BenchmarkFigure7Sequences(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outs, err := experiments.ChainExperiments(benchSeed(i), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, findOutcome(b, outs, "F7"), "max_run", "ethermine_max_run")
		}
	}
}

// BenchmarkSecurityWholeChain regenerates the §III-D long-horizon
// sequence census.
func BenchmarkSecurityWholeChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o, err := experiments.WholeChainExperiment(benchSeed(i), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, o, "blocks")
		}
	}
}

// BenchmarkLesson1UncleRule ablates the §V restricted uncle rule.
func BenchmarkLesson1UncleRule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o, err := experiments.Lesson1Experiment(benchSeed(i), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, o, "standard_recognized", "restricted_recognized")
		}
	}
}

// BenchmarkAblationFanout compares dissemination policies (DESIGN.md
// §5.1).
func BenchmarkAblationFanout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o, err := experiments.AblationFanout(benchSeed(i), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, o, "sqrt-push_receptions", "push-all_receptions")
		}
	}
}

// BenchmarkAblationGateways compares gateway placements (DESIGN.md
// §5.2).
func BenchmarkAblationGateways(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o, err := experiments.AblationGateways(benchSeed(i), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, o, "paper_EA", "dispersed_EA")
		}
	}
}

// BenchmarkWithholdingDetection regenerates the §III-D burst test on
// honest and attacked chains.
func BenchmarkWithholdingDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o, err := experiments.WithholdingExperiment(benchSeed(i), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, o, "honest_flagged", "attacker_flagged")
		}
	}
}

// BenchmarkConstantinopleBombDelay regenerates the §III-C1 bomb-delay
// ablation (pre- vs post-Constantinople inter-block time).
func BenchmarkConstantinopleBombDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o, err := experiments.ConstantinopleExperiment(benchSeed(i), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, o, "bombed_interblock_s", "delayed_interblock_s")
		}
	}
}

// BenchmarkEmptyBlockSpread regenerates the §III-C3 spread scenario
// (commit delay under widespread empty-block mining).
func BenchmarkEmptyBlockSpread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o, err := experiments.EmptyBlockSpreadExperiment(benchSeed(i), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, o, "today_p90_s", "spread_p90_s")
		}
	}
}

// BenchmarkRevenueAccounting regenerates the incentive accounting
// behind §III-C3 and §III-C5.
func BenchmarkRevenueAccounting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o, err := experiments.RevenueExperiment(benchSeed(i), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, o, "one_miner_eth", "empty_fee_fraction")
		}
	}
}
