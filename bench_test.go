// Package repro's top-level benchmark harness: one testing.B target
// per table and figure in the paper's evaluation, plus the ablations
// called out in DESIGN.md §5 and the parallel campaign runner itself.
// Benchmarks select their experiment from the registry — the same path
// cmd/ethrepro takes — and regenerate the artifact at small scale per
// iteration; run cmd/ethrepro -scale medium for the paper-scale
// numbers recorded in EXPERIMENTS.md.
//
//	go test -bench=. -benchmem
package repro

import (
	"context"
	"os"
	"testing"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// benchSeed keeps benchmark runs deterministic across iterations while
// varying per iteration so caches cannot hide work.
func benchSeed(i int) uint64 { return 42 + uint64(i) }

// runSpec resolves id in the experiment registry (by spec or outcome
// ID) and executes it, returning the outcomes keyed by ID.
func runSpec(b *testing.B, id string, seed uint64) map[string]*experiments.Outcome {
	b.Helper()
	spec, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	outs, err := spec.Run(seed, experiments.ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	m := make(map[string]*experiments.Outcome, len(outs))
	for _, o := range outs {
		m[o.ID] = o
	}
	return m
}

func reportMetrics(b *testing.B, o *experiments.Outcome, keys ...string) {
	b.Helper()
	if o == nil {
		b.Fatal("missing outcome")
	}
	for _, k := range keys {
		if v, ok := o.Metrics[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

// benchOutcome regenerates outcome id per iteration and reports the
// chosen headline metrics from the last one.
func benchOutcome(b *testing.B, id string, keys ...string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		m := runSpec(b, id, benchSeed(i))
		if i == b.N-1 {
			reportMetrics(b, m[id], keys...)
		}
	}
}

// BenchmarkFigure1PropagationDelay regenerates Fig. 1 (block
// propagation delay distribution).
func BenchmarkFigure1PropagationDelay(b *testing.B) {
	benchOutcome(b, "F1", "median_ms", "p99_ms")
}

// BenchmarkFigure2FirstObservation regenerates Fig. 2 (first
// observation share per region).
func BenchmarkFigure2FirstObservation(b *testing.B) {
	benchOutcome(b, "F2", "EA_share", "NA_share")
}

// BenchmarkFigure3PoolInfluence regenerates Fig. 3 (first observation
// per mining pool and region).
func BenchmarkFigure3PoolInfluence(b *testing.B) {
	benchOutcome(b, "F3", "sparkpool_EA_first")
}

// BenchmarkTable1Infrastructure renders Table I (static configuration).
func BenchmarkTable1Infrastructure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if runSpec(b, "T1", benchSeed(i))["T1"].Rendered == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2Redundancy regenerates Table II (redundant block
// receptions at a default 25-peer node).
func BenchmarkTable2Redundancy(b *testing.B) {
	benchOutcome(b, "T2", "combined_mean", "announce_mean", "whole_mean")
}

// BenchmarkFigure4CommitTime regenerates Fig. 4 (transaction inclusion
// and k-confirmation commit times).
func BenchmarkFigure4CommitTime(b *testing.B) {
	benchOutcome(b, "F4", "inclusion_median_s", "conf12_median_s")
}

// BenchmarkFigure5Reordering regenerates Fig. 5 (in-order vs
// out-of-order commit delay).
func BenchmarkFigure5Reordering(b *testing.B) {
	benchOutcome(b, "F5", "ooo_fraction")
}

// BenchmarkFigure6EmptyBlocks regenerates Fig. 6 (empty blocks per
// mining pool).
func BenchmarkFigure6EmptyBlocks(b *testing.B) {
	benchOutcome(b, "F6", "empty_fraction", "zhizhu_rate")
}

// BenchmarkTable3Forks regenerates Table III (fork lengths and
// recognition).
func BenchmarkTable3Forks(b *testing.B) {
	benchOutcome(b, "T3", "len1_total", "len2_total")
}

// BenchmarkOneMinerForks regenerates the §III-C5 one-miner fork
// analysis.
func BenchmarkOneMinerForks(b *testing.B) {
	benchOutcome(b, "S1", "pairs", "recognized_fraction", "same_tx_fraction")
}

// BenchmarkFigure7Sequences regenerates Fig. 7 (consecutive sequences
// per pool with the censorship comparison).
func BenchmarkFigure7Sequences(b *testing.B) {
	benchOutcome(b, "F7", "max_run", "ethermine_max_run")
}

// BenchmarkSecurityWholeChain regenerates the §III-D long-horizon
// sequence census.
func BenchmarkSecurityWholeChain(b *testing.B) {
	benchOutcome(b, "S2", "blocks")
}

// BenchmarkLesson1UncleRule ablates the §V restricted uncle rule.
func BenchmarkLesson1UncleRule(b *testing.B) {
	benchOutcome(b, "L1", "standard_recognized", "restricted_recognized")
}

// BenchmarkAblationFanout compares dissemination policies (DESIGN.md
// §5.1).
func BenchmarkAblationFanout(b *testing.B) {
	benchOutcome(b, "A1", "sqrt-push_receptions", "push-all_receptions")
}

// BenchmarkAblationGateways compares gateway placements (DESIGN.md
// §5.2).
func BenchmarkAblationGateways(b *testing.B) {
	benchOutcome(b, "A2", "paper_EA", "dispersed_EA")
}

// BenchmarkWithholdingDetection regenerates the §III-D burst test on
// honest and attacked chains.
func BenchmarkWithholdingDetection(b *testing.B) {
	benchOutcome(b, "W1", "honest_flagged", "attacker_flagged")
}

// BenchmarkConstantinopleBombDelay regenerates the §III-C1 bomb-delay
// ablation (pre- vs post-Constantinople inter-block time).
func BenchmarkConstantinopleBombDelay(b *testing.B) {
	benchOutcome(b, "C1", "bombed_interblock_s", "delayed_interblock_s")
}

// BenchmarkEmptyBlockSpread regenerates the §III-C3 spread scenario
// (commit delay under widespread empty-block mining).
func BenchmarkEmptyBlockSpread(b *testing.B) {
	benchOutcome(b, "E1", "today_p90_s", "spread_p90_s")
}

// BenchmarkRevenueAccounting regenerates the incentive accounting
// behind §III-C3 and §III-C5.
func BenchmarkRevenueAccounting(b *testing.B) {
	benchOutcome(b, "INC", "one_miner_eth", "empty_fee_fraction")
}

// dispatchHandler re-schedules itself until its budget is spent: a
// pure event-loop workload with no model on top, isolating the
// engine's per-event dispatch cost.
type dispatchHandler struct {
	eng  *sim.Engine
	left int
}

func (h *dispatchHandler) HandleEvent(now sim.Time, a, b uint64) {
	if h.left--; h.left > 0 {
		h.eng.ScheduleCall(1, h, a, b)
	}
}

func (h *dispatchHandler) EventName(op uint64) string { return "bench.dispatch" }

// benchEngineDispatch drains one self-rescheduling chain of `events`
// dispatches per iteration, optionally with a tracer probe attached.
// The untraced variant is the bench-compare guard that observability
// hooks cost nothing when disabled (a single nil check per event);
// the traced variant prices the ring-buffered tracer itself.
func benchEngineDispatch(b *testing.B, traced bool) {
	const events = 1 << 20
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		if traced {
			eng.SetProbe(obs.NewTracer(obs.DefaultSpanCap))
		}
		h := &dispatchHandler{eng: eng, left: events}
		eng.ScheduleCall(0, h, 0, 0)
		eng.Run()
		if got := eng.Stats().Processed; got != events {
			b.Fatalf("processed %d events, want %d", got, events)
		}
	}
	b.ReportMetric(float64(events), "events/op")
}

// BenchmarkEngineDispatch is the tracer-disabled engine hot path.
func BenchmarkEngineDispatch(b *testing.B) { benchEngineDispatch(b, false) }

// BenchmarkEngineDispatchTraced is the same workload with the ring
// tracer attached.
func BenchmarkEngineDispatchTraced(b *testing.B) { benchEngineDispatch(b, true) }

// BenchmarkCompactRelaySpread runs a compact-relay overlay campaign
// with 15% private order flow: sketch pushes, pool reconstruction,
// missing-tx round trips and per-class bandwidth accounting on the
// pooled hot path. The companion allocation ceiling lives in
// internal/p2p/relay (TestRelayAllocationCeiling, run by `make
// bench-compare`).
func BenchmarkCompactRelaySpread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.CompactRelaySpread(benchSeed(i), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Bandwidth.Reconstruction.HitRate(), "hit_rate")
			b.ReportMetric(res.Bandwidth.BytesPerBlock()/1e3, "kb_per_block")
		}
	}
}

// BenchmarkCrashRecoverSpread regenerates the D1 dependability spec:
// a healthy and a crash/recover campaign at the same seed, exercising
// the fault injector, the down-node drop paths and the availability
// analysis end to end.
func BenchmarkCrashRecoverSpread(b *testing.B) {
	benchOutcome(b, "D1", "healthy_median_ms", "faulted_median_ms", "availability")
}

// BenchmarkStress100k runs the full 100,000-node scenario
// (examples/scenarios/stress-100k.json) end to end and reports engine
// throughput and the peak-heap cost per node — the headline figures
// of the struct-of-arrays node core, committed in BENCH_stress.json
// (`make bench-stress` regenerates it). A full campaign costs minutes,
// so the benchmark is opt-in via STRESS100K, like the golden stress
// tier; `make bench` and bench-compare skip it.
func BenchmarkStress100k(b *testing.B) {
	if os.Getenv("STRESS100K") == "" {
		b.Skip("set STRESS100K=1 (make bench-stress) to run the 100k tier")
	}
	set, err := scenario.Load("examples/scenarios/stress-100k.json")
	if err != nil {
		b.Fatal(err)
	}
	specs, err := set.Compile()
	if err != nil {
		b.Fatal(err)
	}
	obs.Default.EnableTelemetry()
	defer obs.Default.Disable()
	for i := 0; i < b.N; i++ {
		report, err := experiments.Run(context.Background(), specs, experiments.RunnerConfig{
			Seed:  benchSeed(i),
			Scale: experiments.ScaleMedium, // the file's literal 100k sizing
		})
		if err != nil {
			b.Fatal(err)
		}
		taken := obs.Default.Take(experiments.ReportSeeds(report))
		if i == b.N-1 {
			var peak obs.RunTelemetry
			for _, rt := range taken {
				if rt.Nodes > peak.Nodes {
					peak = rt
				}
			}
			b.ReportMetric(peak.EventsPerSec(), "events/sec")
			b.ReportMetric(peak.BytesPerNode(), "bytes/node")
		}
	}
}

// BenchmarkStress100kSharded is BenchmarkStress100k with the sharded
// conductor at the full worker count (ETHREPRO_SHARDS=6): one region
// lane per geographic region advancing under conservative lookahead.
// The events/sec delta against the unsharded figure is the headline
// number for intra-run sharding, committed next to it in
// BENCH_stress.json. Opt-in via STRESS100K like the rest of the tier.
func BenchmarkStress100kSharded(b *testing.B) {
	if os.Getenv("STRESS100K") == "" {
		b.Skip("set STRESS100K=1 (make bench-stress) to run the 100k tier")
	}
	b.Setenv("ETHREPRO_SHARDS", "6")
	set, err := scenario.Load("examples/scenarios/stress-100k.json")
	if err != nil {
		b.Fatal(err)
	}
	specs, err := set.Compile()
	if err != nil {
		b.Fatal(err)
	}
	obs.Default.EnableTelemetry()
	defer obs.Default.Disable()
	for i := 0; i < b.N; i++ {
		report, err := experiments.Run(context.Background(), specs, experiments.RunnerConfig{
			Seed:  benchSeed(i),
			Scale: experiments.ScaleMedium, // the file's literal 100k sizing
		})
		if err != nil {
			b.Fatal(err)
		}
		taken := obs.Default.Take(experiments.ReportSeeds(report))
		if i == b.N-1 {
			var peak obs.RunTelemetry
			for _, rt := range taken {
				if rt.Nodes > peak.Nodes {
					peak = rt
				}
			}
			b.ReportMetric(peak.EventsPerSec(), "events/sec")
			b.ReportMetric(peak.BytesPerNode(), "bytes/node")
			b.ReportMetric(float64(peak.ShardStalled), "stalled_lane_windows")
		}
	}
}

// BenchmarkCampaignRunner measures the parallel campaign runner
// end-to-end: the network and redundancy campaigns, two repeats each,
// fanned across workers.
func BenchmarkCampaignRunner(b *testing.B) {
	specs, err := experiments.Select([]string{"network", "T2"})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_, err := experiments.Run(context.Background(), specs, experiments.RunnerConfig{
			Seed:    benchSeed(i),
			Scale:   experiments.ScaleSmall,
			Repeats: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
