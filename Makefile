# Make targets are the single entry points for humans and CI
# (.github/workflows/ci.yml calls exactly these).

GO ?= go

.PHONY: build test test-full test-faults test-relay test-server test-obs test-stress test-shard fuzz race bench bench-smoke bench-compare bench-baseline bench-stress bench-stress-compare fmt fmt-check vet examples examples-full validate-scenarios

build:
	$(GO) build ./...

# Fast tier: the CI gate. Heavy workload campaigns downshift or skip
# under -short; run test-full for the complete suite.
test:
	$(GO) test -short ./...

test-full:
	$(GO) test ./...

# Dependability gate: the full golden-artifact invariance harness
# (every built-in spec and shipped scenario byte-identical at
# -parallel 1 vs 8) plus a short D1 crash/recover campaign run through
# the real CLI.
test-faults:
	$(GO) test -run 'Golden' -v ./internal/experiments
	@set -e; dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/ethrepro -only D1 -scale small -repeats 2 -parallel 4 -out "$$dir/d1"

# Relay gate: the full protocol-conformance suite (liveness,
# duplicate-fetch, bandwidth-accounting and determinism invariants for
# every registered relay protocol), the R1/R2 + relay-compare golden
# invariance harness, a `go test -cover` summary for internal/p2p/...,
# and one R1 shoot-out campaign run through the real CLI.
test-relay:
	$(GO) test -v ./internal/p2p/relay/
	$(GO) test -run 'TestGoldenRelaySpecsParallelInvariance|TestGoldenScenarioArtifactsParallelInvariance/relay-compare.json' -v -timeout 30m ./internal/experiments
	$(GO) test -cover ./internal/p2p/...
	@set -e; dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/ethrepro -only R1 -scale small -repeats 2 -parallel 4 -out "$$dir/r1"

# Campaign-service gate: the store conformance suite and the HTTP
# handler/lifecycle suite under the race detector (SSE, queueing and
# cancellation are concurrency-heavy), the HTTP-vs-CLI byte-identity
# golden gate, and the cmd/ethserve end-to-end smoke test (boot the
# binary path, submit over HTTP, fetch artifacts, digest-verify the
# run directory with ethanalyze).
test-server:
	$(GO) test -race -short -v ./internal/store/ ./internal/server/ ./cmd/ethserve/
	@set -e; dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/ethrepro -only T1 -repeats 2 -out "$$dir/run"; \
	$(GO) run ./cmd/ethanalyze -verify "$$dir/run"

# Observability gate: the tracing-on-vs-off golden invariance harness
# (byte-identical artifacts and equal Merkle roots with the tracer
# attached), the obs instrument/tracer suites, and the server
# metrics/SSE/pprof handler tests — concurrency-heavy parts under the
# race detector.
test-obs:
	$(GO) test -run 'TestGoldenTracingInvariance|TestTelemetry' -v ./internal/experiments
	$(GO) test -race -v ./internal/obs/
	$(GO) test -race -run 'Metrics|SSE|Healthz|PProf|Profile|Telemetry|RetryAfter|Backpressure' -v ./internal/server/
	$(GO) test -run 'Telemetry|Trace' -v ./cmd/ethrepro/ ./cmd/ethanalyze/

# Scale gate for the struct-of-arrays node core. Short tier: the
# 10k-node bytes-per-node heap ceiling. Full tier: the 100k-node
# scenario at its full size, byte-identical at -parallel 1 vs 8
# (opt-in via STRESS100K, which this target sets), plus the committed
# BenchmarkStress100k figures (BENCH_stress.json provenance).
test-stress:
	$(GO) test -run TestBytesPerNodeCeiling -v ./internal/p2p/
	STRESS100K=1 $(GO) test -run 'TestGoldenStress100kParallelInvariance|TestGoldenShardStress100kInvariance' -v -timeout 90m ./internal/experiments

# Sharded-execution gate. The conductor's window-loop invariants and
# the campaign-level shard-count invariance suites run under the race
# detector — they drive the cross-shard merge, the phase barriers and
# the lane-local pools with real concurrency — then the shard-axis
# golden harness runs its exhaustive acceptance sweep (SHARDGOLDEN=full:
# every builtin spec and shipped scenario, shards {1,2,6} × -parallel
# {1,8} byte-identical run directories; the plain `go test` tiers
# check the grid corners on the short core instead, to stay inside
# the package timeout). The full-size 100k sharded golden lives in
# test-stress (STRESS100K).
test-shard:
	$(GO) test -race -run 'TestConductor' -v ./internal/sim/
	$(GO) test -race -run 'TestSharded' -v ./internal/p2p/ ./internal/core/
	SHARDGOLDEN=full $(GO) test -run 'TestGoldenShard' -v -timeout 90m ./internal/experiments

# Fuzz lane: run every fuzz target for a bounded burst on top of the
# committed seed corpora (which already execute as regular tests).
fuzz:
	$(GO) test -fuzz FuzzCompactReconstruct -fuzztime 30s ./internal/p2p/relay/
	$(GO) test -fuzz FuzzAdjacencyChurn -fuzztime 30s ./internal/p2p/
	$(GO) test -fuzz FuzzScenarioParse -fuzztime 30s ./internal/scenario/
	$(GO) test -fuzz FuzzSweepExpand -fuzztime 30s ./internal/scenario/

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# One iteration per benchmark: proves every target still executes.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Run every benchmark three times, keep the best-of-3 envelope and
# diff its floor against the committed baseline; fails on any >20%
# ns/op or allocs/op regression (improvements always pass). Gating on
# the minimum of three runs keeps one noisy scheduler hiccup from
# failing CI. BenchmarkEngineDispatch gates the observability
# tentpole: a tracer-disabled engine must show no dispatch regression.
# The relay and sharded allocation ceilings ride along for the hot
# paths.
bench-compare:
	@set -e; tmp=$$(mktemp); trap 'rm -f "$$tmp" "$$tmp.json"' EXIT; \
	$(GO) test -bench=. -benchmem -benchtime=1x -count=3 -run='^$$' . > "$$tmp"; \
	$(GO) run ./cmd/benchjson -best-of 3 < "$$tmp" > "$$tmp.json"; \
	$(GO) run ./cmd/benchjson -compare BENCH_baseline.json "$$tmp.json"
	$(GO) test -run TestRelayAllocationCeiling -v ./internal/p2p/relay/
	$(GO) test -run TestShardedAllocationCeiling -v ./internal/p2p/

# Regenerate the committed benchmark snapshot (set BENCH_NOTE to record
# the occasion). Two steps so a failing benchmark aborts instead of
# being laundered into a partial snapshot.
BENCH_NOTE ?= refreshed baseline
bench-baseline:
	@set -e; tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' . > "$$tmp"; \
	$(GO) run ./cmd/benchjson -note "$(BENCH_NOTE)" < "$$tmp" > BENCH_baseline.json; \
	echo "wrote BENCH_baseline.json"

# Regenerate the committed 100k-tier snapshot (BenchmarkStress100k /
# BenchmarkStress100kSharded: events/sec, bytes/node and
# stalled_lane_windows for the full stress-100k scenario). Run on a
# quiet machine; the figures are provenance for the scale tier — the
# gate against them is bench-stress-compare.
bench-stress:
	@set -e; tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	STRESS100K=1 $(GO) test -bench BenchmarkStress100k -benchmem -benchtime=1x -run='^$$' -timeout 30m . > "$$tmp"; \
	$(GO) run ./cmd/benchjson -note "$(BENCH_NOTE)" < "$$tmp" > BENCH_stress.json; \
	echo "wrote BENCH_stress.json"

# Diff a fresh 100k-tier run against the committed BENCH_stress.json.
# On top of the ns/op, B/op and allocs/op gates this is where
# stalled_lane_windows is enforced: the sharded conductor's
# scheduling-quality metric is a deterministic event count, so any
# >20% growth over the committed figure means the lookahead bounds or
# the deadline computation regressed, even if wall-clock stayed flat.
bench-stress-compare:
	@set -e; tmp=$$(mktemp); trap 'rm -f "$$tmp" "$$tmp.json"' EXIT; \
	STRESS100K=1 $(GO) test -bench BenchmarkStress100k -benchmem -benchtime=1x -run='^$$' -timeout 30m . > "$$tmp"; \
	$(GO) run ./cmd/benchjson < "$$tmp" > "$$tmp.json"; \
	$(GO) run ./cmd/benchjson -compare BENCH_stress.json "$$tmp.json"

# Build and execute every example program, downscaled (-short): each
# is a documented entry point, so CI proves they all still run.
examples:
	@set -e; for d in examples/*/; do \
		[ -f "$$d/main.go" ] || continue; \
		echo "== go run ./$$d -short"; \
		$(GO) run "./$$d" -short; \
	done

# Full-size examples: every example at its full (non -short) scale,
# including the complete 10,000-node stress scenario.
examples-full:
	@set -e; for d in examples/*/; do \
		[ -f "$$d/main.go" ] || continue; \
		echo "== go run ./$$d"; \
		$(GO) run "./$$d"; \
	done

# Parse, validate and compile every shipped scenario file (sweep
# expansion included) without running the campaigns.
validate-scenarios:
	@set -e; for f in examples/scenarios/*.json; do \
		echo "== validate $$f"; \
		$(GO) run ./cmd/ethrepro -scenario "$$f" -list >/dev/null; \
	done

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...
