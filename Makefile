# Make targets are the single entry points for humans and CI
# (.github/workflows/ci.yml calls exactly these).

GO ?= go

.PHONY: build test test-full race bench bench-smoke bench-baseline fmt fmt-check vet

build:
	$(GO) build ./...

# Fast tier: the CI gate. Heavy workload campaigns downshift or skip
# under -short; run test-full for the complete suite.
test:
	$(GO) test -short ./...

test-full:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# One iteration per benchmark: proves every target still executes.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Regenerate the committed benchmark snapshot. Two steps so a failing
# benchmark aborts instead of being laundered into a partial snapshot.
bench-baseline:
	@set -e; tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(GO) test -bench=. -benchtime=1x -run='^$$' . > "$$tmp"; \
	$(GO) run ./cmd/benchjson < "$$tmp" > BENCH_baseline.json; \
	echo "wrote BENCH_baseline.json"

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...
