package types

import (
	"errors"
	"fmt"

	"repro/internal/rlp"
)

// Transaction is a simplified Ethereum transaction: a value transfer
// with a per-sender monotonically increasing nonce, a gas price bid
// and a fixed gas cost. This is the exact surface the paper's
// transaction metrics need: nonce ordering (out-of-order commits,
// §III-C2), fee incentives (empty blocks, §III-C3) and block capacity
// (commit delay, §III-C1).
type Transaction struct {
	Sender   Address
	To       Address
	Nonce    uint64
	Value    uint64
	GasPrice uint64
	Gas      uint64

	// Cached derived values (same idiom as Block): a transaction is
	// immutable after construction, and the network layer asks for its
	// hash and size once per reception along the gossip hot path.
	hash    Hash
	hashed  bool
	sizeB   int
	sizeSet bool
}

// TxGas is the intrinsic gas cost of a plain value transfer, matching
// Ethereum's G_transaction = 21,000.
const TxGas = 21_000

// Decode errors for transactions.
var (
	errTxShape = errors.New("types: transaction RLP shape mismatch")
)

// Hash returns the content hash of the transaction's RLP encoding,
// computed and cached on first use.
func (tx *Transaction) Hash() Hash {
	if !tx.hashed {
		tx.hash = HashBytes(tx.encodeRLP())
		tx.hashed = true
	}
	return tx.hash
}

// EncodedSize returns the serialized size in bytes, used by the
// network model to derive transfer delays. The value is cached.
func (tx *Transaction) EncodedSize() int {
	if !tx.sizeSet {
		tx.sizeB = rlp.EncodedLen(tx.rlpItem())
		tx.sizeSet = true
	}
	return tx.sizeB
}

func (tx *Transaction) rlpItem() rlp.Item {
	return rlp.List(
		rlp.String(tx.Sender[:]),
		rlp.String(tx.To[:]),
		rlp.Uint(tx.Nonce),
		rlp.Uint(tx.Value),
		rlp.Uint(tx.GasPrice),
		rlp.Uint(tx.Gas),
	)
}

func (tx *Transaction) encodeRLP() []byte {
	return rlp.Encode(tx.rlpItem())
}

// EncodeTx serializes a transaction to RLP.
func EncodeTx(tx *Transaction) []byte { return tx.encodeRLP() }

// DecodeTx parses a transaction from its RLP encoding.
func DecodeTx(b []byte) (*Transaction, error) {
	it, err := rlp.Decode(b)
	if err != nil {
		return nil, fmt.Errorf("decode tx: %w", err)
	}
	return txFromItem(it)
}

func txFromItem(it rlp.Item) (*Transaction, error) {
	fields, err := it.AsList()
	if err != nil {
		return nil, fmt.Errorf("decode tx: %w", err)
	}
	if len(fields) != 6 {
		return nil, fmt.Errorf("%w: %d fields", errTxShape, len(fields))
	}
	var tx Transaction
	if err := copyAddress(&tx.Sender, fields[0]); err != nil {
		return nil, fmt.Errorf("decode tx sender: %w", err)
	}
	if err := copyAddress(&tx.To, fields[1]); err != nil {
		return nil, fmt.Errorf("decode tx to: %w", err)
	}
	uints := []*uint64{&tx.Nonce, &tx.Value, &tx.GasPrice, &tx.Gas}
	for i, dst := range uints {
		v, err := fields[2+i].AsUint()
		if err != nil {
			return nil, fmt.Errorf("decode tx field %d: %w", 2+i, err)
		}
		*dst = v
	}
	return &tx, nil
}

func copyAddress(dst *Address, it rlp.Item) error {
	b, err := it.AsBytes()
	if err != nil {
		return err
	}
	if len(b) != AddressLen {
		return fmt.Errorf("%w: address is %d bytes", errTxShape, len(b))
	}
	copy(dst[:], b)
	return nil
}

func copyHash(dst *Hash, it rlp.Item) error {
	b, err := it.AsBytes()
	if err != nil {
		return err
	}
	if len(b) != HashLen {
		return fmt.Errorf("%w: hash is %d bytes", errTxShape, len(b))
	}
	copy(dst[:], b)
	return nil
}
