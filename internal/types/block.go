package types

import (
	"errors"
	"fmt"

	"repro/internal/rlp"
)

// Header carries the consensus-relevant fields of a block. TimeMillis
// is the miner-stamped creation time in simulation milliseconds
// (Ethereum stamps seconds; the simulator needs millisecond resolution
// for propagation-delay work).
type Header struct {
	ParentHash Hash
	Number     uint64
	Miner      Address
	// MinerLabel is the human-readable pool name (e.g. "Ethermine").
	// The real chain carries only the coinbase address; explorers
	// reverse-map it to a pool. Carrying the label alongside saves the
	// reproduction that reverse-mapping step without changing any
	// finding.
	MinerLabel string
	TimeMillis uint64
	Difficulty uint64
	GasLimit   uint64
	GasUsed    uint64
	TxRoot     Hash
	UncleRoot  Hash
	// Extra disambiguates deliberately distinct block versions mined
	// by the same pool at the same height with the same transaction
	// set (the paper's one-miner forks, §III-C5).
	Extra uint64
}

// Block is a full block: header plus transaction body plus referenced
// uncle (ommer) headers.
type Block struct {
	Header Header
	Txs    []*Transaction
	Uncles []Header

	hash       Hash
	hashed     bool
	sizeB      int
	sizeSet    bool
	txsSizeB   int
	txsSizeSet bool
}

// MaxUnclesPerBlock is Ethereum's limit of uncle references per block.
const MaxUnclesPerBlock = 2

// MaxUncleDepth is the maximum height distance at which an uncle can
// still be referenced (Ethereum: 7 generations).
const MaxUncleDepth = 7

var errBlockShape = errors.New("types: block RLP shape mismatch")

// NewBlock assembles a block and pre-computes its hash.
func NewBlock(header Header, txs []*Transaction, uncles []Header) *Block {
	header.TxRoot = txRoot(txs)
	header.UncleRoot = uncleRoot(uncles)
	b := &Block{Header: header, Txs: txs, Uncles: uncles}
	b.Hash()
	return b
}

// TxRoot derives the commitment over a transaction list — the value
// a block header carries in Header.TxRoot. Exported for the relay
// layer, which verifies compact-block reconstructions against it.
func TxRoot(txs []*Transaction) Hash { return txRoot(txs) }

// txRoot derives a commitment over the transaction list. A flat hash
// over the concatenated tx hashes stands in for the Merkle-Patricia
// root; it provides the same property the study needs (same tx set =>
// same root), which drives the one-miner-fork same-content analysis.
func txRoot(txs []*Transaction) Hash {
	buf := make([]byte, 0, len(txs)*HashLen)
	for _, tx := range txs {
		h := tx.Hash()
		buf = append(buf, h[:]...)
	}
	return HashBytes(buf)
}

func uncleRoot(uncles []Header) Hash {
	buf := make([]byte, 0, len(uncles)*HashLen)
	for i := range uncles {
		h := uncles[i].Hash()
		buf = append(buf, h[:]...)
	}
	return HashBytes(buf)
}

// Hash returns the header hash, computing and caching it on first use.
func (b *Block) Hash() Hash {
	if !b.hashed {
		b.hash = b.Header.Hash()
		b.hashed = true
	}
	return b.hash
}

// Hash returns the content hash of the header's RLP encoding.
func (h *Header) Hash() Hash {
	return HashBytes(rlp.Encode(h.rlpItem()))
}

// EncodedSize returns the full serialized block size in bytes
// (header + body), which the network model converts into transfer
// time. The value is cached.
func (b *Block) EncodedSize() int {
	if !b.sizeSet {
		b.sizeB = rlp.EncodedLen(b.rlpItem())
		b.sizeSet = true
	}
	return b.sizeB
}

// TxsSize returns the total serialized size of the block's
// transaction list in bytes, cached after the first call. The network
// model uses it to size compact sketches (full size minus body
// transactions) without re-walking the list per send.
func (b *Block) TxsSize() int {
	if !b.txsSizeSet {
		for _, tx := range b.Txs {
			b.txsSizeB += tx.EncodedSize()
		}
		b.txsSizeSet = true
	}
	return b.txsSizeB
}

// IsEmpty reports whether the block carries no transactions (the
// paper's §III-C3 selfish-mining signal).
func (b *Block) IsEmpty() bool { return len(b.Txs) == 0 }

func (h *Header) rlpItem() rlp.Item {
	return rlp.List(
		rlp.String(h.ParentHash[:]),
		rlp.Uint(h.Number),
		rlp.String(h.Miner[:]),
		rlp.String([]byte(h.MinerLabel)),
		rlp.Uint(h.TimeMillis),
		rlp.Uint(h.Difficulty),
		rlp.Uint(h.GasLimit),
		rlp.Uint(h.GasUsed),
		rlp.String(h.TxRoot[:]),
		rlp.String(h.UncleRoot[:]),
		rlp.Uint(h.Extra),
	)
}

func (b *Block) rlpItem() rlp.Item {
	txItems := make([]rlp.Item, len(b.Txs))
	for i, tx := range b.Txs {
		txItems[i] = tx.rlpItem()
	}
	uncleItems := make([]rlp.Item, len(b.Uncles))
	for i := range b.Uncles {
		uncleItems[i] = b.Uncles[i].rlpItem()
	}
	return rlp.List(b.Header.rlpItem(), rlp.List(txItems...), rlp.List(uncleItems...))
}

// EncodeBlock serializes a block to RLP.
func EncodeBlock(b *Block) []byte { return rlp.Encode(b.rlpItem()) }

// DecodeBlock parses a block from its RLP encoding.
func DecodeBlock(raw []byte) (*Block, error) {
	it, err := rlp.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("decode block: %w", err)
	}
	parts, err := it.AsList()
	if err != nil {
		return nil, fmt.Errorf("decode block: %w", err)
	}
	if len(parts) != 3 {
		return nil, fmt.Errorf("%w: %d parts", errBlockShape, len(parts))
	}
	header, err := headerFromItem(parts[0])
	if err != nil {
		return nil, err
	}
	txItems, err := parts[1].AsList()
	if err != nil {
		return nil, fmt.Errorf("decode block txs: %w", err)
	}
	txs := make([]*Transaction, len(txItems))
	for i, ti := range txItems {
		tx, err := txFromItem(ti)
		if err != nil {
			return nil, fmt.Errorf("decode block tx %d: %w", i, err)
		}
		txs[i] = tx
	}
	uncleItems, err := parts[2].AsList()
	if err != nil {
		return nil, fmt.Errorf("decode block uncles: %w", err)
	}
	uncles := make([]Header, len(uncleItems))
	for i, ui := range uncleItems {
		u, err := headerFromItem(ui)
		if err != nil {
			return nil, fmt.Errorf("decode block uncle %d: %w", i, err)
		}
		uncles[i] = u
	}
	// Verify body integrity against the header commitments, like a
	// real client: a block whose body does not match its header roots
	// is malformed.
	if got := txRoot(txs); got != header.TxRoot {
		return nil, fmt.Errorf("%w: tx root mismatch", errBlockShape)
	}
	if got := uncleRoot(uncles); got != header.UncleRoot {
		return nil, fmt.Errorf("%w: uncle root mismatch", errBlockShape)
	}
	blk := &Block{Header: header, Txs: txs, Uncles: uncles}
	blk.Hash()
	return blk, nil
}

func headerFromItem(it rlp.Item) (Header, error) {
	fields, err := it.AsList()
	if err != nil {
		return Header{}, fmt.Errorf("decode header: %w", err)
	}
	if len(fields) != 11 {
		return Header{}, fmt.Errorf("%w: header has %d fields", errBlockShape, len(fields))
	}
	var h Header
	if err := copyHash(&h.ParentHash, fields[0]); err != nil {
		return Header{}, fmt.Errorf("decode header parent: %w", err)
	}
	if h.Number, err = fields[1].AsUint(); err != nil {
		return Header{}, fmt.Errorf("decode header number: %w", err)
	}
	if err := copyAddress(&h.Miner, fields[2]); err != nil {
		return Header{}, fmt.Errorf("decode header miner: %w", err)
	}
	label, err := fields[3].AsBytes()
	if err != nil {
		return Header{}, fmt.Errorf("decode header label: %w", err)
	}
	h.MinerLabel = string(label)
	uints := []*uint64{&h.TimeMillis, &h.Difficulty, &h.GasLimit, &h.GasUsed}
	for i, dst := range uints {
		v, err := fields[4+i].AsUint()
		if err != nil {
			return Header{}, fmt.Errorf("decode header field %d: %w", 4+i, err)
		}
		*dst = v
	}
	if err := copyHash(&h.TxRoot, fields[8]); err != nil {
		return Header{}, fmt.Errorf("decode header txroot: %w", err)
	}
	if err := copyHash(&h.UncleRoot, fields[9]); err != nil {
		return Header{}, fmt.Errorf("decode header uncleroot: %w", err)
	}
	if h.Extra, err = fields[10].AsUint(); err != nil {
		return Header{}, fmt.Errorf("decode header extra: %w", err)
	}
	return h, nil
}
