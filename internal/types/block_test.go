package types

import (
	"testing"
	"testing/quick"
)

func sampleTx(nonce uint64) *Transaction {
	return &Transaction{
		Sender:   AddressFromString("alice"),
		To:       AddressFromString("bob"),
		Nonce:    nonce,
		Value:    1_000_000,
		GasPrice: 3_000_000_000,
		Gas:      TxGas,
	}
}

func sampleBlock(n uint64, txs []*Transaction) *Block {
	return NewBlock(Header{
		ParentHash: HashBytes([]byte("parent")),
		Number:     n,
		Miner:      AddressFromString("Ethermine"),
		MinerLabel: "Ethermine",
		TimeMillis: 1_000_000,
		Difficulty: 2_000_000,
		GasLimit:   8_000_000,
		GasUsed:    uint64(len(txs)) * TxGas,
	}, txs, nil)
}

func TestTxRoundTrip(t *testing.T) {
	tx := sampleTx(7)
	back, err := DecodeTx(EncodeTx(tx))
	if err != nil {
		t.Fatal(err)
	}
	if *back != *tx {
		t.Fatalf("roundtrip: want %+v, got %+v", tx, back)
	}
	if back.Hash() != tx.Hash() {
		t.Fatal("hash changed across roundtrip")
	}
}

func TestTxRoundTripProperty(t *testing.T) {
	f := func(sender, to [AddressLen]byte, nonce, value, gasPrice, gas uint64) bool {
		tx := &Transaction{
			Sender: Address(sender), To: Address(to),
			Nonce: nonce, Value: value, GasPrice: gasPrice, Gas: gas,
		}
		back, err := DecodeTx(EncodeTx(tx))
		return err == nil && *back == *tx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTxHashDependsOnAllFields(t *testing.T) {
	base := sampleTx(1)
	variants := []*Transaction{
		func() *Transaction { v := *base; v.Nonce++; return &v }(),
		func() *Transaction { v := *base; v.Value++; return &v }(),
		func() *Transaction { v := *base; v.GasPrice++; return &v }(),
		func() *Transaction { v := *base; v.Gas++; return &v }(),
		func() *Transaction { v := *base; v.To = AddressFromString("carol"); return &v }(),
		func() *Transaction { v := *base; v.Sender = AddressFromString("carol"); return &v }(),
	}
	for i, v := range variants {
		if v.Hash() == base.Hash() {
			t.Errorf("variant %d hash collided with base", i)
		}
	}
}

func TestDecodeTxRejectsGarbage(t *testing.T) {
	if _, err := DecodeTx([]byte{0x01}); err == nil {
		t.Error("single byte should not decode")
	}
	if _, err := DecodeTx(nil); err == nil {
		t.Error("empty should not decode")
	}
	// A structurally valid RLP list with the wrong arity.
	enc := EncodeBlock(sampleBlock(1, nil))
	if _, err := DecodeTx(enc); err == nil {
		t.Error("block encoding should not decode as tx")
	}
}

func TestBlockRoundTrip(t *testing.T) {
	txs := []*Transaction{sampleTx(0), sampleTx(1)}
	uncle := sampleBlock(4, nil).Header
	blk := NewBlock(Header{
		ParentHash: HashBytes([]byte("p")),
		Number:     5,
		Miner:      AddressFromString("Sparkpool"),
		MinerLabel: "Sparkpool",
		TimeMillis: 42,
		Difficulty: 9,
		GasLimit:   8_000_000,
		GasUsed:    2 * TxGas,
	}, txs, []Header{uncle})

	back, err := DecodeBlock(EncodeBlock(blk))
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash() != blk.Hash() {
		t.Fatal("hash changed across roundtrip")
	}
	if len(back.Txs) != 2 || *back.Txs[0] != *txs[0] || *back.Txs[1] != *txs[1] {
		t.Fatal("txs corrupted")
	}
	if len(back.Uncles) != 1 || back.Uncles[0].Hash() != uncle.Hash() {
		t.Fatal("uncles corrupted")
	}
	if back.Header.MinerLabel != "Sparkpool" {
		t.Fatalf("miner label: %q", back.Header.MinerLabel)
	}
}

func TestBlockHashCommitsToContent(t *testing.T) {
	a := sampleBlock(1, []*Transaction{sampleTx(0)})
	b := sampleBlock(1, []*Transaction{sampleTx(1)})
	if a.Hash() == b.Hash() {
		t.Fatal("different tx sets must produce different block hashes")
	}
	// Same content, different Extra => different hash (one-miner fork
	// versions are distinguishable).
	h := a.Header
	h.Extra = 1
	c := NewBlock(h, []*Transaction{sampleTx(0)}, nil)
	if c.Hash() == a.Hash() {
		t.Fatal("Extra must change the hash")
	}
	// Same content, same Extra => identical root and hash.
	d := sampleBlock(1, []*Transaction{sampleTx(0)})
	if d.Hash() != a.Hash() {
		t.Fatal("identical blocks must hash equal")
	}
	if d.Header.TxRoot != a.Header.TxRoot {
		t.Fatal("identical tx sets must produce the same TxRoot")
	}
}

func TestBlockIsEmpty(t *testing.T) {
	if !sampleBlock(1, nil).IsEmpty() {
		t.Error("no txs => empty")
	}
	if sampleBlock(1, []*Transaction{sampleTx(0)}).IsEmpty() {
		t.Error("txs => not empty")
	}
}

func TestBlockEncodedSizeGrowsWithTxs(t *testing.T) {
	small := sampleBlock(1, nil)
	var txs []*Transaction
	for i := uint64(0); i < 100; i++ {
		txs = append(txs, sampleTx(i))
	}
	big := sampleBlock(1, txs)
	if big.EncodedSize() <= small.EncodedSize() {
		t.Fatalf("size: empty %d, full %d", small.EncodedSize(), big.EncodedSize())
	}
	if got := len(EncodeBlock(big)); got != big.EncodedSize() {
		t.Fatalf("EncodedSize %d != len(EncodeBlock) %d", big.EncodedSize(), got)
	}
}

func TestDecodeBlockRejectsGarbage(t *testing.T) {
	if _, err := DecodeBlock(nil); err == nil {
		t.Error("empty should not decode")
	}
	if _, err := DecodeBlock(EncodeTx(sampleTx(0))); err == nil {
		t.Error("tx encoding should not decode as block")
	}
	// Corrupt one byte in a valid encoding; it must either fail or
	// decode to a different hash, never panic.
	enc := EncodeBlock(sampleBlock(9, []*Transaction{sampleTx(3)}))
	orig := sampleBlock(9, []*Transaction{sampleTx(3)}).Hash()
	for i := range enc {
		mut := make([]byte, len(enc))
		copy(mut, enc)
		mut[i] ^= 0xff
		back, err := DecodeBlock(mut)
		if err == nil && back.Hash() == orig && mut[i] != enc[i] {
			t.Fatalf("byte %d flip produced identical block", i)
		}
	}
}

func TestUncleConstants(t *testing.T) {
	if MaxUnclesPerBlock != 2 || MaxUncleDepth != 7 {
		t.Fatal("Ethereum uncle constants changed")
	}
}
