// Package types defines the chain data model of the reproduction:
// hashes, addresses, transactions, headers and blocks, together with
// their canonical RLP encodings and content hashes.
//
// The real Ethereum uses Keccak-256; the module is stdlib-only, so
// SHA-256 stands in (documented in DESIGN.md §2). Nothing in the study
// depends on the hash function beyond collision-resistant 32-byte
// identifiers.
package types

import (
	"crypto/sha256"
	"encoding/hex"
)

// HashLen is the byte length of content hashes.
const HashLen = 32

// AddressLen is the byte length of account/miner addresses.
const AddressLen = 20

// Hash is a 32-byte content identifier.
type Hash [HashLen]byte

// Address identifies an account or a miner coinbase.
type Address [AddressLen]byte

// ZeroHash is the all-zero hash, used as the genesis parent.
var ZeroHash Hash

// HashBytes hashes an arbitrary byte string.
func HashBytes(b []byte) Hash {
	return Hash(sha256.Sum256(b))
}

// String renders the hash as 0x-prefixed hex (shortened would hide
// collisions in logs, so the full digest is printed).
func (h Hash) String() string {
	return "0x" + hex.EncodeToString(h[:])
}

// Short returns the first 4 bytes in hex, for compact displays.
func (h Hash) Short() string {
	return hex.EncodeToString(h[:4])
}

// IsZero reports whether the hash is all zeroes.
func (h Hash) IsZero() bool { return h == ZeroHash }

// String renders the address as 0x-prefixed hex.
func (a Address) String() string {
	return "0x" + hex.EncodeToString(a[:])
}

// AddressFromString deterministically derives an address from a label,
// e.g. a mining pool name or a synthetic account id.
func AddressFromString(label string) Address {
	sum := sha256.Sum256([]byte(label))
	var a Address
	copy(a[:], sum[:AddressLen])
	return a
}
