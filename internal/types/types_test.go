package types

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHashBytesDeterministic(t *testing.T) {
	a := HashBytes([]byte("hello"))
	b := HashBytes([]byte("hello"))
	if a != b {
		t.Fatal("same input must hash equal")
	}
	c := HashBytes([]byte("hellp"))
	if a == c {
		t.Fatal("different input must hash different")
	}
}

func TestHashString(t *testing.T) {
	h := HashBytes([]byte("x"))
	s := h.String()
	if !strings.HasPrefix(s, "0x") || len(s) != 2+2*HashLen {
		t.Fatalf("bad hash string %q", s)
	}
	if len(h.Short()) != 8 {
		t.Fatalf("short form: %q", h.Short())
	}
}

func TestZeroHash(t *testing.T) {
	if !ZeroHash.IsZero() {
		t.Fatal("zero hash must report zero")
	}
	if HashBytes(nil).IsZero() {
		t.Fatal("sha256(nil) must not be zero")
	}
}

func TestAddressFromString(t *testing.T) {
	a := AddressFromString("Ethermine")
	b := AddressFromString("Ethermine")
	c := AddressFromString("Sparkpool")
	if a != b {
		t.Fatal("address derivation must be deterministic")
	}
	if a == c {
		t.Fatal("different labels must map to different addresses")
	}
	if !strings.HasPrefix(a.String(), "0x") {
		t.Fatalf("bad address string %q", a.String())
	}
}

func TestAddressCollisionProperty(t *testing.T) {
	f := func(a, b string) bool {
		if a == b {
			return AddressFromString(a) == AddressFromString(b)
		}
		return AddressFromString(a) != AddressFromString(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
