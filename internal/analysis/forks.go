package analysis

import (
	"sort"

	"repro/internal/types"
)

// EmptyBlocksResult reproduces Fig. 6 and the §III-C3 headline: empty
// main-chain blocks overall and per mining pool.
type EmptyBlocksResult struct {
	// TotalMain is the number of main-chain blocks considered.
	TotalMain int
	// TotalEmpty counts empty main-chain blocks.
	TotalEmpty int
	// Fraction is TotalEmpty/TotalMain (paper: 1.45%).
	Fraction float64
	// PerPool maps pool -> (mined, empty) counts.
	PerPool map[string]PoolEmptyCount
	// Pools lists pools by descending mined count.
	Pools []string
}

// PoolEmptyCount pairs a pool's production with its empty-block count.
type PoolEmptyCount struct {
	Mined int
	Empty int
}

// Rate returns the pool's empty fraction (0 when it mined nothing).
func (c PoolEmptyCount) Rate() float64 {
	if c.Mined == 0 {
		return 0
	}
	return float64(c.Empty) / float64(c.Mined)
}

// EmptyBlocks computes Fig. 6 over a chain view.
func EmptyBlocks(view *ChainView) (*EmptyBlocksResult, error) {
	if view == nil || len(view.Main) == 0 {
		return nil, ErrNoBlocks
	}
	res := &EmptyBlocksResult{PerPool: make(map[string]PoolEmptyCount)}
	for _, meta := range view.Main {
		res.TotalMain++
		c := res.PerPool[meta.Miner]
		c.Mined++
		if meta.TxCount == 0 {
			res.TotalEmpty++
			c.Empty++
		}
		res.PerPool[meta.Miner] = c
	}
	res.Fraction = float64(res.TotalEmpty) / float64(res.TotalMain)
	for p := range res.PerPool {
		res.Pools = append(res.Pools, p)
	}
	sort.Slice(res.Pools, func(i, j int) bool {
		a, b := res.PerPool[res.Pools[i]], res.PerPool[res.Pools[j]]
		if a.Mined != b.Mined {
			return a.Mined > b.Mined
		}
		return res.Pools[i] < res.Pools[j]
	})
	return res, nil
}

// ForkBranch is one maximal off-main chain segment.
type ForkBranch struct {
	// Blocks lists the branch's block hashes from fork point outward.
	Blocks []types.Hash
	// Length is len(Blocks); the paper observed 1..3.
	Length int
	// Recognized reports whether every block of the branch was
	// referenced as an uncle by a main block. In the paper's data no
	// branch longer than 1 was ever recognized.
	Recognized bool
	// AnyRecognized reports whether at least one block of the branch
	// was referenced.
	AnyRecognized bool
}

// ForksResult reproduces Table III and the §III-C4 aggregates.
type ForksResult struct {
	Branches []ForkBranch
	// ByLength maps branch length -> (total, recognized) counts.
	ByLength map[int]ForkLengthCount
	// MainBlocks / UncleBlocks / UnrecognizedBlocks classify every
	// observed block as the paper does: 92.81% main, 6.97% recognized
	// uncles, 0.22% unrecognized.
	MainBlocks         int
	UncleBlocks        int
	UnrecognizedBlocks int
}

// ForkLengthCount is one Table III row.
type ForkLengthCount struct {
	Total        int
	Recognized   int
	Unrecognized int
}

// Forks computes Table III from a chain view: group off-main blocks
// into parent-linked branches rooted at a main-chain block.
func Forks(view *ChainView) (*ForksResult, error) {
	if view == nil || len(view.Main) == 0 {
		return nil, ErrNoBlocks
	}
	res := &ForksResult{ByLength: make(map[int]ForkLengthCount)}

	// children index over off-main blocks.
	children := make(map[types.Hash][]types.Hash)
	var roots []types.Hash
	for h, meta := range view.All {
		if view.MainSet[h] {
			res.MainBlocks++
			continue
		}
		if view.UncleRefs[h] {
			res.UncleBlocks++
		} else {
			res.UnrecognizedBlocks++
		}
		if view.MainSet[meta.Parent] {
			roots = append(roots, h)
		} else {
			children[meta.Parent] = append(children[meta.Parent], h)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return lessHash(roots[i], roots[j]) })
	for k := range children {
		hs := children[k]
		sort.Slice(hs, func(i, j int) bool { return lessHash(hs[i], hs[j]) })
	}

	// Each root starts a branch; branches follow the (rare) chains of
	// off-main children. A fork point with multiple off-main children
	// forms one branch per child path.
	var walk func(h types.Hash, acc []types.Hash)
	walk = func(h types.Hash, acc []types.Hash) {
		acc = append(acc, h)
		kids := children[h]
		if len(kids) == 0 {
			branch := ForkBranch{Blocks: append([]types.Hash(nil), acc...), Length: len(acc)}
			branch.Recognized = true
			for _, bh := range branch.Blocks {
				if view.UncleRefs[bh] {
					branch.AnyRecognized = true
				} else {
					branch.Recognized = false
				}
			}
			res.Branches = append(res.Branches, branch)
			c := res.ByLength[branch.Length]
			c.Total++
			if branch.Recognized {
				c.Recognized++
			} else {
				c.Unrecognized++
			}
			res.ByLength[branch.Length] = c
			return
		}
		for _, kid := range kids {
			walk(kid, acc)
		}
	}
	for _, root := range roots {
		walk(root, nil)
	}
	return res, nil
}

// OneMinerForkResult reproduces §III-C5: heights where one miner
// produced several blocks.
type OneMinerForkResult struct {
	// TupleCounts maps tuple size (2, 3, ...) -> number of heights
	// with that many same-miner blocks.
	TupleCounts map[int]int
	// RecognizedFraction is the share of extra versions (in 2- and
	// 3-tuples) that were referenced as uncles (paper: 98%).
	RecognizedFraction float64
	// SameTxSetFraction is the share of one-miner fork pairs whose
	// versions carry the same transaction set (paper: 56%).
	SameTxSetFraction float64
	// FractionOfForks is one-miner forks / all forked heights (paper:
	// >11% of forks).
	FractionOfForks float64
}

// OneMinerForks computes §III-C5 over a chain view. A one-miner fork
// is a height with >= 2 blocks from the same miner; versions off the
// main chain are the "extra" blocks.
func OneMinerForks(view *ChainView) (*OneMinerForkResult, error) {
	if view == nil || len(view.Main) == 0 {
		return nil, ErrNoBlocks
	}
	type heightKey struct {
		number uint64
		miner  string
	}
	byHeightMiner := map[heightKey][]BlockMeta{}
	forkHeights := map[uint64]bool{}
	for h, meta := range view.All {
		byHeightMiner[heightKey{meta.Number, meta.Miner}] = append(byHeightMiner[heightKey{meta.Number, meta.Miner}], meta)
		if !view.MainSet[h] {
			forkHeights[meta.Number] = true
		}
	}
	res := &OneMinerForkResult{TupleCounts: make(map[int]int)}
	extrasTotal, extrasRecognized := 0, 0
	pairsTotal, pairsSameTx := 0, 0
	oneMinerHeights := 0
	for _, metas := range byHeightMiner {
		if len(metas) < 2 {
			continue
		}
		oneMinerHeights++
		res.TupleCounts[len(metas)]++
		// Extra versions: the off-main ones.
		sort.Slice(metas, func(i, j int) bool { return lessHash(metas[i].Hash, metas[j].Hash) })
		var mainMeta *BlockMeta
		for i := range metas {
			if view.MainSet[metas[i].Hash] {
				mainMeta = &metas[i]
			}
		}
		for i := range metas {
			if view.MainSet[metas[i].Hash] {
				continue
			}
			if len(metas) <= 3 {
				extrasTotal++
				if view.UncleRefs[metas[i].Hash] {
					extrasRecognized++
				}
			}
			// Same-content comparison against the surviving version
			// (or the first version when none survived).
			ref := mainMeta
			if ref == nil {
				ref = &metas[0]
			}
			if ref.Hash != metas[i].Hash {
				pairsTotal++
				if sameTxSet(ref, &metas[i]) {
					pairsSameTx++
				}
			}
		}
	}
	if extrasTotal > 0 {
		res.RecognizedFraction = float64(extrasRecognized) / float64(extrasTotal)
	}
	if pairsTotal > 0 {
		res.SameTxSetFraction = float64(pairsSameTx) / float64(pairsTotal)
	}
	if len(forkHeights) > 0 {
		res.FractionOfForks = float64(oneMinerHeights) / float64(len(forkHeights))
	}
	return res, nil
}

// sameTxSet compares transaction sets, preferring explicit hash lists
// and falling back to counts when links were not captured.
func sameTxSet(a, b *BlockMeta) bool {
	if len(a.TxHashes) > 0 || len(b.TxHashes) > 0 {
		if len(a.TxHashes) != len(b.TxHashes) {
			return false
		}
		set := make(map[types.Hash]bool, len(a.TxHashes))
		for _, h := range a.TxHashes {
			set[h] = true
		}
		for _, h := range b.TxHashes {
			if !set[h] {
				return false
			}
		}
		return true
	}
	return a.TxCount == b.TxCount
}
