package analysis

import (
	"errors"
	"fmt"
	"strings"
)

// BandwidthClass is one wire-message class's transport totals.
type BandwidthClass struct {
	// Name is the message kind ("NewBlock", "CompactBlock", ...).
	Name string
	// Messages / Bytes are the class's send totals.
	Messages uint64
	Bytes    uint64
}

// VantageBandwidth is one measurement node's ingress/egress totals.
type VantageBandwidth struct {
	Name        string
	MessagesIn  uint64
	BytesIn     uint64
	MessagesOut uint64
	BytesOut    uint64
}

// Reconstruction is the compact-relay sketch accounting (all zero for
// disciplines without sketches).
type Reconstruction struct {
	SketchesSent     uint64
	SketchesReceived uint64
	// Full / Partial / Fallback classify reconstruction attempts:
	// rebuilt entirely from the pool, completed through a missing-tx
	// round trip, or abandoned for a full-body fetch.
	Full     uint64
	Partial  uint64
	Fallback uint64
	// MissingTxs / MissingTxBytes total the round-trip-fetched
	// transactions.
	MissingTxs     uint64
	MissingTxBytes uint64
}

// Attempts returns the number of sketches a receiver tried to
// reconstruct.
func (r Reconstruction) Attempts() uint64 { return r.Full + r.Partial + r.Fallback }

// HitRate is the fraction of attempts that avoided a full-body
// fallback. Zero when no sketches were processed.
func (r Reconstruction) HitRate() float64 {
	a := r.Attempts()
	if a == 0 {
		return 0
	}
	return float64(r.Full+r.Partial) / float64(a)
}

// Bandwidth is the per-protocol transport accounting of one campaign:
// class-level byte counters, per-vantage ingress/egress, and the
// compact-relay reconstruction profile. core.RunCampaign assembles it
// from the network's counters; the "bandwidth" scenario output
// renders it.
type Bandwidth struct {
	// Protocol names the relay discipline the campaign ran.
	Protocol string
	// TotalMessages / TotalBytes are the network-wide send totals
	// (equal to the sums over Classes by construction).
	TotalMessages uint64
	TotalBytes    uint64
	// DroppedMessages counts fault-discarded sends and deliveries.
	DroppedMessages uint64
	// Blocks is the campaign's produced block-height budget, the
	// normalizer for per-block costs.
	Blocks uint64
	// Classes lists per-message-class totals in wire-kind order.
	Classes []BandwidthClass
	// Vantages lists the measurement nodes' ingress/egress, in
	// attachment order.
	Vantages []VantageBandwidth
	// Reconstruction is the sketch accounting.
	Reconstruction Reconstruction
}

// BytesPerBlock normalizes the byte total by the block budget.
func (b *Bandwidth) BytesPerBlock() float64 {
	if b.Blocks == 0 {
		return 0
	}
	return float64(b.TotalBytes) / float64(b.Blocks)
}

// errNoBandwidth guards against rendering an unassembled report.
var errNoBandwidth = errors.New("analysis: nil bandwidth report")

// RenderBandwidth renders the paper-style bandwidth table: class
// breakdown, per-vantage ingress/egress and — when sketches ran — the
// reconstruction profile.
func RenderBandwidth(b *Bandwidth) (string, error) {
	if b == nil {
		return "", errNoBandwidth
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Bandwidth accounting — relay protocol %s\n", b.Protocol)
	fmt.Fprintf(&sb, "  totals: %d messages, %.2f MB (%.1f KB/block over %d blocks)",
		b.TotalMessages, float64(b.TotalBytes)/1e6, b.BytesPerBlock()/1e3, b.Blocks)
	if b.DroppedMessages > 0 {
		fmt.Fprintf(&sb, ", %d dropped", b.DroppedMessages)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "  %-16s %12s %14s %8s\n", "class", "messages", "bytes", "share")
	for _, c := range b.Classes {
		share := 0.0
		if b.TotalBytes > 0 {
			share = float64(c.Bytes) / float64(b.TotalBytes)
		}
		fmt.Fprintf(&sb, "  %-16s %12d %14d %7.1f%%\n", c.Name, c.Messages, c.Bytes, share*100)
	}
	if len(b.Vantages) > 0 {
		fmt.Fprintf(&sb, "  %-16s %12s %14s %12s %14s\n", "vantage", "msgs in", "bytes in", "msgs out", "bytes out")
		for _, v := range b.Vantages {
			fmt.Fprintf(&sb, "  %-16s %12d %14d %12d %14d\n", v.Name, v.MessagesIn, v.BytesIn, v.MessagesOut, v.BytesOut)
		}
	}
	if r := b.Reconstruction; r.Attempts() > 0 || r.SketchesSent > 0 {
		fmt.Fprintf(&sb, "  reconstruction: %d sketches sent, %d received; full %d, round-trip %d, fallback %d (hit rate %.1f%%)\n",
			r.SketchesSent, r.SketchesReceived, r.Full, r.Partial, r.Fallback, r.HitRate()*100)
		if r.Partial > 0 {
			fmt.Fprintf(&sb, "  missing txs fetched: %d (%.2f MB)\n", r.MissingTxs, float64(r.MissingTxBytes)/1e6)
		}
	}
	return sb.String(), nil
}
