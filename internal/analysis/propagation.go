package analysis

import (
	"fmt"
	"sort"

	"repro/internal/measure"
	"repro/internal/stats"
)

// PropagationResult reproduces Fig. 1: the distribution of block
// propagation delays, where a block's delay at a node is the gap
// between that node's first sighting and the block's earliest sighting
// anywhere (Decker et al.'s method, §II).
type PropagationResult struct {
	// DelaysMillis holds one sample per (block, trailing node).
	DelaysMillis []float64
	Summary      stats.Summary
	// Histogram covers [0, 500) ms like the paper's Fig. 1 x-axis.
	Histogram *stats.Histogram
}

// PropagationDelays computes Fig. 1 from an index. Blocks seen by
// fewer than two nodes contribute nothing (no trailing observation
// exists).
func PropagationDelays(idx *Index) (*PropagationResult, error) {
	if idx == nil {
		return nil, ErrNoBlocks
	}
	var samples []float64
	for _, perNode := range idx.BlockFirst {
		if len(perNode) < 2 {
			continue
		}
		first, ok := EarliestObservation(perNode)
		if !ok {
			continue
		}
		for node, obs := range perNode {
			if node == first.Node {
				continue
			}
			d := float64(obs.Local - first.Local)
			if d < 0 {
				// Clock skew can invert order between nodes; the
				// paper's method clamps these into the error bound.
				d = 0
			}
			samples = append(samples, d)
		}
	}
	if len(samples) == 0 {
		return nil, ErrNoBlocks
	}
	summary, err := stats.Summarize(samples)
	if err != nil {
		return nil, err
	}
	hist, err := stats.NewHistogram(0, 500, 50)
	if err != nil {
		return nil, err
	}
	hist.AddAll(samples)
	return &PropagationResult{DelaysMillis: samples, Summary: summary, Histogram: hist}, nil
}

// FirstObservationResult reproduces Fig. 2: the share of blocks each
// measurement node saw first, with NTP-error bars.
type FirstObservationResult struct {
	// Share maps node name -> fraction of blocks first seen there.
	Share map[string]float64
	// ErrLow / ErrHigh bound the share when observations within the
	// NTP 90th-percentile offset (10 ms) are ambiguous: ErrLow counts
	// only unambiguous wins, ErrHigh also grants all ambiguous ones.
	ErrLow  map[string]float64
	ErrHigh map[string]float64
	// Blocks is the number of blocks considered.
	Blocks int
}

// FirstObservations computes Fig. 2 over all blocks seen by at least
// two nodes.
func FirstObservations(idx *Index) (*FirstObservationResult, error) {
	if idx == nil {
		return nil, ErrNoBlocks
	}
	wins := map[string]int{}
	ambiguousWins := map[string]int{}
	total := 0
	for _, perNode := range idx.BlockFirst {
		if len(perNode) < 2 {
			continue
		}
		first, ok := EarliestObservation(perNode)
		if !ok {
			continue
		}
		total++
		wins[first.Node]++
		// Any node within the NTP bound of the winner could actually
		// have been first.
		for node, obs := range perNode {
			if node == first.Node {
				continue
			}
			if obs.Local-first.Local < 2*10 { // 2 * NTPOffsetP90Millis
				ambiguousWins[node]++
			}
		}
	}
	if total == 0 {
		return nil, ErrNoBlocks
	}
	res := &FirstObservationResult{
		Share:   make(map[string]float64),
		ErrLow:  make(map[string]float64),
		ErrHigh: make(map[string]float64),
		Blocks:  total,
	}
	for node, w := range wins {
		res.Share[node] = float64(w) / float64(total)
	}
	for node := range wins {
		res.ErrLow[node] = res.Share[node]
		res.ErrHigh[node] = float64(wins[node]+ambiguousWins[node]) / float64(total)
	}
	for node, amb := range ambiguousWins {
		if _, ok := wins[node]; !ok {
			res.ErrHigh[node] = float64(amb) / float64(total)
		}
	}
	return res, nil
}

// PoolObservationResult reproduces Fig. 3: for each mining pool, the
// distribution over measurement nodes of who saw that pool's blocks
// first.
type PoolObservationResult struct {
	// Pools lists pools by descending block count.
	Pools []string
	// BlockShare is each pool's fraction of all attributed blocks
	// (Fig. 3's parenthesized computational power proxy).
	BlockShare map[string]float64
	// FirstShare maps pool -> node -> fraction of the pool's blocks
	// first seen at that node.
	FirstShare map[string]map[string]float64
	// Blocks counts attributed blocks per pool.
	Blocks map[string]int
}

// PoolFirstObservations computes Fig. 3, keeping the topN most
// productive pools (the paper uses 15).
func PoolFirstObservations(idx *Index, topN int) (*PoolObservationResult, error) {
	if idx == nil {
		return nil, ErrNoBlocks
	}
	if topN < 1 {
		return nil, fmt.Errorf("analysis: topN %d < 1", topN)
	}
	wins := map[string]map[string]int{} // pool -> node -> wins
	counts := map[string]int{}
	total := 0
	for h, perNode := range idx.BlockFirst {
		meta, ok := idx.BlockMeta[h]
		if !ok || meta.Miner == "" || len(perNode) < 2 {
			continue
		}
		first, ok := EarliestObservation(perNode)
		if !ok {
			continue
		}
		if wins[meta.Miner] == nil {
			wins[meta.Miner] = make(map[string]int)
		}
		wins[meta.Miner][first.Node]++
		counts[meta.Miner]++
		total++
	}
	if total == 0 {
		return nil, ErrNoBlocks
	}
	pools := make([]string, 0, len(counts))
	for p := range counts {
		pools = append(pools, p)
	}
	sort.Slice(pools, func(i, j int) bool {
		if counts[pools[i]] != counts[pools[j]] {
			return counts[pools[i]] > counts[pools[j]]
		}
		return pools[i] < pools[j]
	})
	if len(pools) > topN {
		pools = pools[:topN]
	}
	res := &PoolObservationResult{
		Pools:      pools,
		BlockShare: make(map[string]float64),
		FirstShare: make(map[string]map[string]float64),
		Blocks:     make(map[string]int),
	}
	for _, p := range pools {
		res.Blocks[p] = counts[p]
		res.BlockShare[p] = float64(counts[p]) / float64(total)
		res.FirstShare[p] = make(map[string]float64)
		for node, w := range wins[p] {
			res.FirstShare[p][node] = float64(w) / float64(counts[p])
		}
	}
	return res, nil
}

// RedundancyResult reproduces Table II: how many times a default-
// configured node receives each block, split by message type.
type RedundancyResult struct {
	Announcements stats.Summary
	WholeBlocks   stats.Summary
	Combined      stats.Summary
}

// Redundancy computes Table II for one measurement node (the paper's
// subsidiary 25-peer node). Every block the node received at least
// once contributes a sample per category.
func Redundancy(idx *Index, node string) (*RedundancyResult, error) {
	if idx == nil {
		return nil, ErrNoBlocks
	}
	var ann, whole, both []float64
	for _, perNode := range idx.BlockReceptions {
		perKind, ok := perNode[node]
		if !ok {
			continue
		}
		a := float64(perKind[measure.KindAnnouncement])
		w := float64(perKind[measure.KindBlock])
		if a+w == 0 {
			continue
		}
		ann = append(ann, a)
		whole = append(whole, w)
		both = append(both, a+w)
	}
	if len(both) == 0 {
		return nil, fmt.Errorf("analysis: node %q observed no blocks: %w", node, ErrNoBlocks)
	}
	annS, err := stats.Summarize(ann)
	if err != nil {
		return nil, err
	}
	wholeS, err := stats.Summarize(whole)
	if err != nil {
		return nil, err
	}
	bothS, err := stats.Summarize(both)
	if err != nil {
		return nil, err
	}
	return &RedundancyResult{Announcements: annS, WholeBlocks: wholeS, Combined: bothS}, nil
}
