package analysis

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/types"
)

// ConfirmationDepths are the confirmation levels Fig. 4 plots; 12 is
// Ethereum's conventional finality rule.
var ConfirmationDepths = []int{3, 12, 15, 36}

// CommitResult reproduces Fig. 4: the distribution of the time from a
// transaction's first observation to its inclusion in a main-chain
// block, and onward to its k-block confirmations.
type CommitResult struct {
	// Inclusion is the ECDF of first-inclusion times (seconds).
	Inclusion *stats.ECDF
	// Confirmations maps depth -> ECDF of commit times (seconds).
	Confirmations map[int]*stats.ECDF
	// Txs is the number of transactions with a resolvable inclusion.
	Txs int
}

// txInclusion pairs a transaction with the main-chain index of its
// including block.
type txInclusion struct {
	txHash    types.Hash
	firstSeen sim.Time
	mainIdx   int
}

// blockObservationTimes returns, per main-chain index, the earliest
// observation time of that block across nodes. Blocks never observed
// (possible in log-truncated datasets) get -1.
func blockObservationTimes(idx *Index, view *ChainView) []sim.Time {
	out := make([]sim.Time, len(view.Main))
	for i, meta := range view.Main {
		out[i] = -1
		if perNode, ok := idx.BlockFirst[meta.Hash]; ok {
			if first, ok := EarliestObservation(perNode); ok {
				out[i] = first.Local
			}
		}
	}
	return out
}

// resolveInclusions maps every observed transaction to the main-chain
// block that first includes it. Requires tx hash lists (CaptureTxLinks
// or full block content).
func resolveInclusions(idx *Index, view *ChainView) ([]txInclusion, error) {
	txToMain := make(map[types.Hash]int)
	linked := false
	for i, meta := range view.Main {
		if len(meta.TxHashes) > 0 {
			linked = true
		}
		for _, th := range meta.TxHashes {
			if _, ok := txToMain[th]; !ok {
				txToMain[th] = i
			}
		}
	}
	if !linked {
		return nil, fmt.Errorf("analysis: dataset has no tx-to-block links (enable CaptureTxLinks)")
	}
	var out []txInclusion
	for th, perNode := range idx.TxFirst {
		mainIdx, ok := txToMain[th]
		if !ok {
			continue // never committed during the window
		}
		first, ok := EarliestObservation(perNode)
		if !ok {
			continue
		}
		out = append(out, txInclusion{txHash: th, firstSeen: first.Local, mainIdx: mainIdx})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: no committed transactions observed")
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].mainIdx != out[j].mainIdx {
			return out[i].mainIdx < out[j].mainIdx
		}
		return lessHash(out[i].txHash, out[j].txHash)
	})
	return out, nil
}

// CommitTimes computes Fig. 4. Transactions whose confirmation block
// lies beyond the observation window are excluded from that depth's
// ECDF (right-censoring, as in the paper's finite window).
func CommitTimes(idx *Index, view *ChainView) (*CommitResult, error) {
	if idx == nil || view == nil || len(view.Main) == 0 {
		return nil, ErrNoBlocks
	}
	inclusions, err := resolveInclusions(idx, view)
	if err != nil {
		return nil, err
	}
	obsTimes := blockObservationTimes(idx, view)

	var inclusionSecs []float64
	confSecs := make(map[int][]float64, len(ConfirmationDepths))
	for _, inc := range inclusions {
		incObs := obsTimes[inc.mainIdx]
		if incObs < 0 || incObs < inc.firstSeen {
			// The block was observed before the tx (possible under
			// clock skew); clamp at zero via skipping negative deltas.
			if incObs < 0 {
				continue
			}
		}
		d := float64(incObs-inc.firstSeen) / 1000
		if d < 0 {
			d = 0
		}
		inclusionSecs = append(inclusionSecs, d)
		for _, k := range ConfirmationDepths {
			confIdx := inc.mainIdx + k
			if confIdx >= len(obsTimes) || obsTimes[confIdx] < 0 {
				continue
			}
			cd := float64(obsTimes[confIdx]-inc.firstSeen) / 1000
			if cd < 0 {
				cd = 0
			}
			confSecs[k] = append(confSecs[k], cd)
		}
	}
	if len(inclusionSecs) == 0 {
		return nil, fmt.Errorf("analysis: no inclusion samples")
	}
	res := &CommitResult{
		Inclusion:     stats.NewECDF(inclusionSecs),
		Confirmations: make(map[int]*stats.ECDF, len(confSecs)),
		Txs:           len(inclusionSecs),
	}
	for k, samples := range confSecs {
		res.Confirmations[k] = stats.NewECDF(samples)
	}
	return res, nil
}

// ReorderingResult reproduces Fig. 5 and the §III-C2 headline number:
// the share of committed transactions first observed out of order, and
// the commit-delay distributions per class.
type ReorderingResult struct {
	// OutOfOrderFraction is the share of committed transactions whose
	// first observation happened after a higher-nonce transaction from
	// the same sender.
	OutOfOrderFraction float64
	// InOrder / OutOfOrder are 12-confirmation commit-time ECDFs
	// (seconds).
	InOrder    *stats.ECDF
	OutOfOrder *stats.ECDF
	// Counts per class.
	InOrderCount    int
	OutOfOrderCount int
}

// Reordering computes Fig. 5 with the paper's definition (§III-C2):
// a pair is out of order when the higher-nonce transaction is observed
// first; the flagged transaction is that higher-nonce one, because it
// cannot be mined until its delayed predecessor arrives — which is
// exactly the commit penalty Fig. 5 plots.
func Reordering(idx *Index, view *ChainView) (*ReorderingResult, error) {
	if idx == nil || view == nil || len(view.Main) == 0 {
		return nil, ErrNoBlocks
	}
	inclusions, err := resolveInclusions(idx, view)
	if err != nil {
		return nil, err
	}
	obsTimes := blockObservationTimes(idx, view)

	// Gather every observed transaction (committed or not — a
	// predecessor's arrival time matters even when the analysis window
	// truncates its own commit) per sender, ordered by nonce.
	type obsTx struct {
		hash  types.Hash
		nonce uint64
		seen  sim.Time
	}
	bySender := map[string][]obsTx{}
	for th, perNode := range idx.TxFirst {
		meta, ok := idx.TxMeta[th]
		if !ok {
			continue
		}
		first, ok := EarliestObservation(perNode)
		if !ok {
			continue
		}
		bySender[meta.Sender] = append(bySender[meta.Sender], obsTx{hash: th, nonce: meta.Nonce, seen: first.Local})
	}
	// A tx is out of order when some lower-nonce tx from the same
	// sender was observed later: seen(T) < max over predecessors of
	// seen(P).
	outOfOrder := map[types.Hash]bool{}
	for _, txs := range bySender {
		sort.Slice(txs, func(i, j int) bool {
			if txs[i].nonce != txs[j].nonce {
				return txs[i].nonce < txs[j].nonce
			}
			return txs[i].seen < txs[j].seen
		})
		var maxPredecessorSeen sim.Time = -1
		for _, t := range txs {
			if maxPredecessorSeen >= 0 && t.seen < maxPredecessorSeen {
				outOfOrder[t.hash] = true
			}
			if t.seen > maxPredecessorSeen {
				maxPredecessorSeen = t.seen
			}
		}
	}

	const depth = 12
	var inOrderSecs, oooSecs []float64
	total, ooo := 0, 0
	for _, inc := range inclusions {
		total++
		isOOO := outOfOrder[inc.txHash]
		if isOOO {
			ooo++
		}
		confIdx := inc.mainIdx + depth
		if confIdx >= len(obsTimes) || obsTimes[confIdx] < 0 {
			continue
		}
		d := float64(obsTimes[confIdx]-inc.firstSeen) / 1000
		if d < 0 {
			d = 0
		}
		if isOOO {
			oooSecs = append(oooSecs, d)
		} else {
			inOrderSecs = append(inOrderSecs, d)
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("analysis: no committed transactions")
	}
	return &ReorderingResult{
		OutOfOrderFraction: float64(ooo) / float64(total),
		InOrder:            stats.NewECDF(inOrderSecs),
		OutOfOrder:         stats.NewECDF(oooSecs),
		InOrderCount:       len(inOrderSecs),
		OutOfOrderCount:    len(oooSecs),
	}, nil
}
