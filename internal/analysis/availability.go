package analysis

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/faults"
	"repro/internal/sim"
)

// AvailabilityResult summarizes a faulted campaign's dependability
// ground truth (the injector's event accounting) together with the
// measurement-side partition signature (the vantage points' longest
// block-silence gaps).
type AvailabilityResult struct {
	// OverlayNodes is the campaign's initial overlay size.
	OverlayNodes int
	// HorizonS is the run's virtual duration in seconds.
	HorizonS float64
	// Crashes / Recoveries / Joins / Leaves are fault event counts.
	Crashes, Recoveries, Joins, Leaves int
	// CrashDowntimeS is the summed node-outage time in seconds.
	CrashDowntimeS float64
	// Availability is the node-time fraction the overlay was up:
	// 1 - downtime / (nodes * horizon).
	Availability float64
	// MeanOutageS is the mean single-outage duration (0 without
	// crashes).
	MeanOutageS float64
	// DroppedMessages counts transport sends and deliveries discarded
	// by any fault (down endpoints, partitions, loss).
	DroppedMessages uint64
	// PartitionS is the summed active-partition time in seconds.
	PartitionS float64
	// QuietGapS maps each measurement node to its longest observed
	// block-silence interval in seconds.
	QuietGapS map[string]float64
	// MaxQuietGapS is the largest entry of QuietGapS.
	MaxQuietGapS float64
}

// Availability folds the injector's stats, the transport drop counter
// and the vantage points' quiet gaps into the dependability summary.
// A nil stats means the campaign ran healthy, which is an error here:
// the availability analysis is only meaningful for fault campaigns.
func Availability(st *faults.Stats, overlayNodes int, horizon sim.Time, dropped uint64, quiet map[string]sim.Time) (*AvailabilityResult, error) {
	if st == nil {
		return nil, errors.New("analysis: availability needs a fault-injected campaign")
	}
	if overlayNodes <= 0 {
		return nil, fmt.Errorf("analysis: availability over %d overlay nodes", overlayNodes)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("analysis: availability over non-positive horizon %v", horizon)
	}
	r := &AvailabilityResult{
		OverlayNodes:    overlayNodes,
		HorizonS:        horizon.Seconds(),
		Crashes:         st.Crashes,
		Recoveries:      st.Recoveries,
		Joins:           st.Joins,
		Leaves:          st.Leaves,
		CrashDowntimeS:  st.CrashDowntime.Seconds(),
		DroppedMessages: dropped,
		PartitionS:      st.PartitionTime.Seconds(),
		QuietGapS:       make(map[string]float64, len(quiet)),
	}
	nodeTime := float64(overlayNodes) * horizon.Seconds()
	r.Availability = 1 - r.CrashDowntimeS/nodeTime
	if r.Availability < 0 {
		r.Availability = 0
	}
	if st.Crashes > 0 {
		r.MeanOutageS = r.CrashDowntimeS / float64(st.Crashes)
	}
	for name, gap := range quiet {
		g := gap.Seconds()
		r.QuietGapS[name] = g
		if g > r.MaxQuietGapS {
			r.MaxQuietGapS = g
		}
	}
	return r, nil
}

// RenderAvailability renders the dependability summary as a
// paper-style table. Node rows sort by name so the rendering is a
// pure function of the result.
func RenderAvailability(a *AvailabilityResult) string {
	out := "Availability under injected faults\n"
	out += fmt.Sprintf("  overlay %d nodes, horizon %.0f s\n", a.OverlayNodes, a.HorizonS)
	out += fmt.Sprintf("  crashes %d (recovered %d, mean outage %.1f s)  churn +%d/-%d\n",
		a.Crashes, a.Recoveries, a.MeanOutageS, a.Joins, a.Leaves)
	out += fmt.Sprintf("  node availability %.4f  partition time %.0f s  dropped msgs %d\n",
		a.Availability, a.PartitionS, a.DroppedMessages)
	if len(a.QuietGapS) > 0 {
		names := make([]string, 0, len(a.QuietGapS))
		for n := range a.QuietGapS {
			names = append(names, n)
		}
		sort.Strings(names)
		out += "  longest block silence per vantage point:\n"
		for _, n := range names {
			out += fmt.Sprintf("    %-12s %8.1f s\n", n, a.QuietGapS[n])
		}
	}
	return out
}
