// Package analysis is the reproduction's processing pipeline: the Go
// equivalent of the paper's pandas/NumPy layer. It consumes
// measurement logs (and, for chain-level experiments, block trees)
// and computes every figure and table of the evaluation:
//
//	Fig. 1  — block propagation delay distribution
//	Fig. 2  — first block observation share per region
//	Fig. 3  — first observation per mining pool and region
//	Table II — redundant block receptions
//	Fig. 4  — transaction inclusion and confirmation times
//	Fig. 5  — in-order vs out-of-order commit delay
//	Fig. 6  — empty blocks per mining pool
//	Table III — fork lengths and recognition
//	Fig. 7  — consecutive main-chain sequences per pool
//	§III-C5 — one-miner forks
//	§III-D  — sequence probability (security)
package analysis

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/chain"
	"repro/internal/measure"
	"repro/internal/sim"
	"repro/internal/types"
)

// Dataset is the merged input of an analysis run: the union of all
// measurement nodes' logs, plus (optionally) full block content.
type Dataset struct {
	// Records holds every log line from every node.
	Records []measure.Record
	// Blocks maps hashes to full content when available (in-memory
	// campaigns); log-only datasets reconstruct skeletons instead.
	Blocks map[types.Hash]*types.Block
	// NodeNames lists measurement nodes in a stable order.
	NodeNames []string
}

// Analysis errors.
var (
	ErrNoBlocks = errors.New("analysis: no block observations")
	ErrNoNodes  = errors.New("analysis: no measurement nodes")
)

// MergeNodes builds a Dataset from live measurement nodes.
func MergeNodes(nodes []*measure.Node) (*Dataset, error) {
	if len(nodes) == 0 {
		return nil, ErrNoNodes
	}
	ds := &Dataset{Blocks: make(map[types.Hash]*types.Block)}
	for _, n := range nodes {
		ds.NodeNames = append(ds.NodeNames, n.Name())
		ds.Records = append(ds.Records, n.Records()...)
		for h, b := range n.Blocks() {
			if _, ok := ds.Blocks[h]; !ok {
				ds.Blocks[h] = b
			}
		}
	}
	return ds, nil
}

// FromRecords builds a Dataset from parsed JSONL logs.
func FromRecords(records []measure.Record) (*Dataset, error) {
	if len(records) == 0 {
		return nil, measure.ErrEmptyLog
	}
	ds := &Dataset{Records: records, Blocks: make(map[types.Hash]*types.Block)}
	seen := map[string]bool{}
	for _, r := range records {
		if !seen[r.Node] {
			seen[r.Node] = true
			ds.NodeNames = append(ds.NodeNames, r.Node)
		}
	}
	sort.Strings(ds.NodeNames)
	return ds, nil
}

// Observation is one node's first sighting of an item.
type Observation struct {
	Node  string
	Local sim.Time
	Kind  measure.RecordKind
}

// Index holds per-item first-observation times, the backbone of the
// propagation-delay method (Decker et al., adapted in §II): the delay
// of a block is measured against its earliest sighting at any node.
type Index struct {
	// BlockFirst maps block hash -> node -> earliest sighting
	// (NewBlock or announcement).
	BlockFirst map[types.Hash]map[string]Observation
	// BlockReceptions counts every delivery per node and kind (for
	// Table II's redundancy).
	BlockReceptions map[types.Hash]map[string]map[measure.RecordKind]int
	// TxFirst maps tx hash -> node -> earliest sighting.
	TxFirst map[types.Hash]map[string]Observation
	// TxMeta keeps sender/nonce for reordering analysis.
	TxMeta map[types.Hash]TxMeta
	// BlockMeta keeps the skeleton data carried by block records.
	BlockMeta map[types.Hash]BlockMeta
}

// TxMeta is the transaction identity carried in tx records.
type TxMeta struct {
	Sender string
	Nonce  uint64
}

// BlockMeta is the block skeleton reconstructible from log records
// alone (no full content needed).
type BlockMeta struct {
	Hash     types.Hash
	Parent   types.Hash
	Number   uint64
	Miner    string
	TxCount  int
	Size     int
	Extra    uint64
	Uncles   []types.Hash
	TxHashes []types.Hash
}

// BuildIndex scans the dataset once and builds all observation maps.
func BuildIndex(ds *Dataset) (*Index, error) {
	if ds == nil || len(ds.Records) == 0 {
		return nil, measure.ErrEmptyLog
	}
	idx := &Index{
		BlockFirst:      make(map[types.Hash]map[string]Observation),
		BlockReceptions: make(map[types.Hash]map[string]map[measure.RecordKind]int),
		TxFirst:         make(map[types.Hash]map[string]Observation),
		TxMeta:          make(map[types.Hash]TxMeta),
		BlockMeta:       make(map[types.Hash]BlockMeta),
	}
	for _, r := range ds.Records {
		h, err := parseHash(r.Hash)
		if err != nil {
			return nil, fmt.Errorf("record from %s: %w", r.Node, err)
		}
		switch r.Kind {
		case measure.KindBlock, measure.KindAnnouncement:
			noteFirst(idx.BlockFirst, h, r)
			perNode := idx.BlockReceptions[h]
			if perNode == nil {
				perNode = make(map[string]map[measure.RecordKind]int)
				idx.BlockReceptions[h] = perNode
			}
			perKind := perNode[r.Node]
			if perKind == nil {
				perKind = make(map[measure.RecordKind]int)
				perNode[r.Node] = perKind
			}
			perKind[r.Kind]++
			if r.Kind == measure.KindBlock {
				if _, ok := idx.BlockMeta[h]; !ok {
					meta, err := blockMetaFromRecord(h, r)
					if err != nil {
						return nil, err
					}
					idx.BlockMeta[h] = meta
				}
			}
		case measure.KindTx:
			noteFirst(idx.TxFirst, h, r)
			if _, ok := idx.TxMeta[h]; !ok {
				idx.TxMeta[h] = TxMeta{Sender: r.Sender, Nonce: r.Nonce}
			}
		}
	}
	if len(idx.BlockFirst) == 0 {
		return nil, ErrNoBlocks
	}
	return idx, nil
}

func noteFirst(m map[types.Hash]map[string]Observation, h types.Hash, r measure.Record) {
	perNode := m[h]
	if perNode == nil {
		perNode = make(map[string]Observation)
		m[h] = perNode
	}
	prev, ok := perNode[r.Node]
	if !ok || r.LocalTime() < prev.Local {
		perNode[r.Node] = Observation{Node: r.Node, Local: r.LocalTime(), Kind: r.Kind}
	}
}

func blockMetaFromRecord(h types.Hash, r measure.Record) (BlockMeta, error) {
	parent, err := parseHash(r.ParentHash)
	if err != nil {
		return BlockMeta{}, fmt.Errorf("block %s parent: %w", r.Hash, err)
	}
	meta := BlockMeta{
		Hash:    h,
		Parent:  parent,
		Number:  r.Number,
		Miner:   r.Miner,
		TxCount: r.TxCount,
		Size:    r.SizeBytes,
		Extra:   r.Extra,
	}
	for _, u := range r.Uncles {
		uh, err := parseHash(u)
		if err != nil {
			return BlockMeta{}, fmt.Errorf("block %s uncle: %w", r.Hash, err)
		}
		meta.Uncles = append(meta.Uncles, uh)
	}
	for _, txh := range r.TxHashes {
		th, err := parseHash(txh)
		if err != nil {
			return BlockMeta{}, fmt.Errorf("block %s tx: %w", r.Hash, err)
		}
		meta.TxHashes = append(meta.TxHashes, th)
	}
	return meta, nil
}

// EarliestObservation returns the earliest sighting of an item across
// all nodes and, through the second return, every node's first
// sighting.
func EarliestObservation(perNode map[string]Observation) (Observation, bool) {
	var best Observation
	found := false
	for _, obs := range perNode {
		if !found || obs.Local < best.Local || (obs.Local == best.Local && obs.Node < best.Node) {
			best = obs
			found = true
		}
	}
	return best, found
}

// parseHash decodes the 0x-prefixed hex form produced by
// types.Hash.String.
func parseHash(s string) (types.Hash, error) {
	var h types.Hash
	if len(s) != 2+2*types.HashLen || s[0] != '0' || s[1] != 'x' {
		return h, fmt.Errorf("analysis: malformed hash %q", s)
	}
	for i := 0; i < types.HashLen; i++ {
		hi, ok1 := hexVal(s[2+2*i])
		lo, ok2 := hexVal(s[3+2*i])
		if !ok1 || !ok2 {
			return h, fmt.Errorf("analysis: malformed hash %q", s)
		}
		h[i] = hi<<4 | lo
	}
	return h, nil
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}

// ChainView is the analysis-facing view of the block DAG: the main
// chain in height order plus every observed block's skeleton and the
// set of uncle references.
type ChainView struct {
	// Main lists main-chain blocks from lowest to highest height.
	Main []BlockMeta
	// All maps every observed block.
	All map[types.Hash]BlockMeta
	// UncleRefs is the set of hashes referenced as uncles by
	// main-chain blocks.
	UncleRefs map[types.Hash]bool
	// MainSet is the set of main-chain hashes.
	MainSet map[types.Hash]bool
}

// ViewFromTree converts a simulation block tree into a ChainView
// (genesis excluded — the paper's counts are over real blocks).
func ViewFromTree(t *chain.BlockTree) (*ChainView, error) {
	if t == nil {
		return nil, errors.New("analysis: nil tree")
	}
	v := &ChainView{
		All:       make(map[types.Hash]BlockMeta),
		UncleRefs: make(map[types.Hash]bool),
		MainSet:   make(map[types.Hash]bool),
	}
	main := t.MainChain()
	for _, b := range main[1:] { // skip genesis
		meta := metaFromBlock(b)
		v.Main = append(v.Main, meta)
		v.MainSet[meta.Hash] = true
		for i := range b.Uncles {
			v.UncleRefs[b.Uncles[i].Hash()] = true
		}
	}
	maxHeight := t.MaxHeight()
	for n := uint64(1); n <= maxHeight; n++ {
		for _, h := range t.AtHeight(n) {
			b, ok := t.Block(h)
			if !ok {
				continue
			}
			v.All[h] = metaFromBlock(b)
		}
	}
	return v, nil
}

func metaFromBlock(b *types.Block) BlockMeta {
	meta := BlockMeta{
		Hash:    b.Hash(),
		Parent:  b.Header.ParentHash,
		Number:  b.Header.Number,
		Miner:   b.Header.MinerLabel,
		TxCount: len(b.Txs),
		Size:    b.EncodedSize(),
		Extra:   b.Header.Extra,
	}
	for i := range b.Uncles {
		meta.Uncles = append(meta.Uncles, b.Uncles[i].Hash())
	}
	for _, tx := range b.Txs {
		meta.TxHashes = append(meta.TxHashes, tx.Hash())
	}
	return meta
}

// ViewFromIndex reconstructs a ChainView from measurement logs alone,
// the way a blockchain explorer would: take the highest observed
// block, walk parent links back to the first observed height, and
// call that the main chain. Blocks whose parents were never observed
// terminate the walk.
func ViewFromIndex(idx *Index) (*ChainView, error) {
	if idx == nil || len(idx.BlockMeta) == 0 {
		return nil, ErrNoBlocks
	}
	v := &ChainView{
		All:       make(map[types.Hash]BlockMeta, len(idx.BlockMeta)),
		UncleRefs: make(map[types.Hash]bool),
		MainSet:   make(map[types.Hash]bool),
	}
	var tip BlockMeta
	haveTip := false
	for h, meta := range idx.BlockMeta {
		v.All[h] = meta
		if !haveTip || meta.Number > tip.Number ||
			(meta.Number == tip.Number && lessHash(meta.Hash, tip.Hash)) {
			tip = meta
			haveTip = true
		}
	}
	// Walk back from the tip.
	var rev []BlockMeta
	cur := tip
	for {
		rev = append(rev, cur)
		parent, ok := v.All[cur.Parent]
		if !ok {
			break
		}
		cur = parent
	}
	v.Main = make([]BlockMeta, len(rev))
	for i, meta := range rev {
		v.Main[len(rev)-1-i] = meta
	}
	for _, meta := range v.Main {
		v.MainSet[meta.Hash] = true
		for _, u := range meta.Uncles {
			v.UncleRefs[u] = true
		}
	}
	return v, nil
}

func lessHash(a, b types.Hash) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
