package analysis

import (
	"errors"
	"testing"

	"repro/internal/chain"
	"repro/internal/measure"
	"repro/internal/types"
)

// buildView constructs a ChainView by hand. mainMiners describes the
// main chain in height order; forks lists off-main blocks as
// (height, miner, parentOffset) where parentOffset is the main index
// of the parent.
type forkSpec struct {
	miner     string
	parentIdx int // index into main chain (parent height = idx)
	txCount   int
	recognize bool
}

func buildView(mainMiners []string, mainTxCounts []int, forks []forkSpec) *ChainView {
	v := &ChainView{
		All:       make(map[types.Hash]BlockMeta),
		UncleRefs: make(map[types.Hash]bool),
		MainSet:   make(map[types.Hash]bool),
	}
	parent := types.HashBytes([]byte("genesis"))
	hashes := []types.Hash{}
	for i, miner := range mainMiners {
		txc := 1
		if mainTxCounts != nil {
			txc = mainTxCounts[i]
		}
		hash := types.HashBytes([]byte("main" + string(rune('0'+i))))
		meta := BlockMeta{Hash: hash, Parent: parent, Number: uint64(i + 1), Miner: miner, TxCount: txc}
		v.Main = append(v.Main, meta)
		v.All[hash] = meta
		v.MainSet[hash] = true
		hashes = append(hashes, hash)
		parent = hash
	}
	for i, f := range forks {
		hash := types.HashBytes([]byte("fork" + string(rune('0'+i))))
		parentHash := types.HashBytes([]byte("genesis"))
		if f.parentIdx >= 0 {
			parentHash = hashes[f.parentIdx]
		}
		meta := BlockMeta{Hash: hash, Parent: parentHash, Number: uint64(f.parentIdx + 2), Miner: f.miner, TxCount: f.txCount}
		v.All[hash] = meta
		if f.recognize {
			v.UncleRefs[hash] = true
		}
	}
	return v
}

func TestEmptyBlocks(t *testing.T) {
	view := buildView(
		[]string{"A", "A", "B", "C", "B"},
		[]int{1, 0, 2, 0, 0},
		nil,
	)
	res, err := EmptyBlocks(view)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMain != 5 || res.TotalEmpty != 3 {
		t.Fatalf("totals: %d/%d", res.TotalEmpty, res.TotalMain)
	}
	if !almost(res.Fraction, 0.6) {
		t.Fatalf("fraction: %v", res.Fraction)
	}
	if res.PerPool["A"].Empty != 1 || res.PerPool["A"].Mined != 2 {
		t.Fatalf("pool A: %+v", res.PerPool["A"])
	}
	if !almost(res.PerPool["C"].Rate(), 1) {
		t.Fatalf("pool C rate: %v", res.PerPool["C"].Rate())
	}
	if (PoolEmptyCount{}).Rate() != 0 {
		t.Fatal("zero-mined rate")
	}
	// Sorted by production.
	if res.Pools[0] != "A" && res.Pools[0] != "B" {
		t.Fatalf("pool order: %v", res.Pools)
	}
	if _, err := EmptyBlocks(nil); !errors.Is(err, ErrNoBlocks) {
		t.Fatal("nil view must fail")
	}
}

func TestForksTableIII(t *testing.T) {
	// Main chain of 8; one recognized length-1 fork, one unrecognized
	// length-1 fork, one length-2 branch (parent at main[2]).
	view := buildView(
		[]string{"A", "B", "A", "C", "B", "A", "C", "B"},
		nil,
		[]forkSpec{
			{miner: "B", parentIdx: 0, txCount: 1, recognize: true},
			{miner: "C", parentIdx: 4, txCount: 1, recognize: false},
		},
	)
	// Hand-build the length-2 branch: f2 -> f3.
	f2 := BlockMeta{Hash: types.HashBytes([]byte("len2a")), Parent: view.Main[2].Hash, Number: 4, Miner: "D", TxCount: 1}
	f3 := BlockMeta{Hash: types.HashBytes([]byte("len2b")), Parent: f2.Hash, Number: 5, Miner: "D", TxCount: 1}
	view.All[f2.Hash] = f2
	view.All[f3.Hash] = f3

	res, err := Forks(view)
	if err != nil {
		t.Fatal(err)
	}
	if res.MainBlocks != 8 {
		t.Fatalf("main: %d", res.MainBlocks)
	}
	if res.UncleBlocks != 1 || res.UnrecognizedBlocks != 3 {
		t.Fatalf("uncles %d unrecognized %d", res.UncleBlocks, res.UnrecognizedBlocks)
	}
	if res.ByLength[1].Total != 2 || res.ByLength[1].Recognized != 1 {
		t.Fatalf("len1: %+v", res.ByLength[1])
	}
	if res.ByLength[2].Total != 1 || res.ByLength[2].Recognized != 0 {
		t.Fatalf("len2: %+v", res.ByLength[2])
	}
	if len(res.Branches) != 3 {
		t.Fatalf("branches: %d", len(res.Branches))
	}
	if _, err := Forks(nil); !errors.Is(err, ErrNoBlocks) {
		t.Fatal("nil view must fail")
	}
}

func TestOneMinerForks(t *testing.T) {
	// Height 2: miner A mined the main block AND a fork version with
	// the same tx count (same-set pair, recognized).
	// Height 5: miner B mined main + fork with different tx count.
	view := buildView(
		[]string{"A", "A", "B", "C", "B"},
		[]int{1, 2, 1, 1, 3},
		[]forkSpec{
			{miner: "A", parentIdx: 0, txCount: 2, recognize: true},
			{miner: "B", parentIdx: 3, txCount: 1, recognize: false},
		},
	)
	res, err := OneMinerForks(view)
	if err != nil {
		t.Fatal(err)
	}
	if res.TupleCounts[2] != 2 {
		t.Fatalf("pairs: %+v", res.TupleCounts)
	}
	// One of two extras recognized.
	if !almost(res.RecognizedFraction, 0.5) {
		t.Fatalf("recognized: %v", res.RecognizedFraction)
	}
	// A's pair has matching tx counts, B's differs.
	if !almost(res.SameTxSetFraction, 0.5) {
		t.Fatalf("same tx: %v", res.SameTxSetFraction)
	}
	// Both forked heights are one-miner forks here.
	if !almost(res.FractionOfForks, 1) {
		t.Fatalf("fraction of forks: %v", res.FractionOfForks)
	}
	if _, err := OneMinerForks(nil); !errors.Is(err, ErrNoBlocks) {
		t.Fatal("nil view must fail")
	}
}

func TestOneMinerForksTxHashComparison(t *testing.T) {
	view := buildView([]string{"A"}, []int{2}, nil)
	main := view.Main[0]
	main.TxHashes = []types.Hash{h("t1"), h("t2")}
	view.All[main.Hash] = main
	view.Main[0] = main
	// Same count, different hash set => different tx set.
	fork := BlockMeta{
		Hash: h("forkX"), Parent: main.Parent, Number: main.Number,
		Miner: "A", TxCount: 2, TxHashes: []types.Hash{h("t1"), h("t3")},
	}
	view.All[fork.Hash] = fork
	res, err := OneMinerForks(view)
	if err != nil {
		t.Fatal(err)
	}
	if res.SameTxSetFraction != 0 {
		t.Fatalf("hash comparison must beat count comparison: %v", res.SameTxSetFraction)
	}
}

func TestSequencesAndCDF(t *testing.T) {
	view := buildView([]string{"A", "A", "A", "B", "A", "B", "B"}, nil, nil)
	res, err := Sequences(view)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRun["A"] != 3 || res.MaxRun["B"] != 2 {
		t.Fatalf("max runs: %+v", res.MaxRun)
	}
	if res.TopPools[0] != "A" {
		t.Fatalf("top pools: %v", res.TopPools)
	}
	// A's runs: [3,1] => CDF(1)=0.5, CDF(3)=1.
	if !almost(res.CDF("A", 1), 0.5) || !almost(res.CDF("A", 3), 1) {
		t.Fatalf("cdf: %v %v", res.CDF("A", 1), res.CDF("A", 3))
	}
	if res.CDF("missing", 5) != 0 {
		t.Fatal("missing pool CDF must be 0")
	}
	if _, err := Sequences(nil); !errors.Is(err, ErrNoBlocks) {
		t.Fatal("nil view must fail")
	}
}

func TestCensorshipWindows(t *testing.T) {
	view := buildView([]string{"A", "A", "A", "B", "A", "B", "B"}, nil, nil)
	seq, err := Sequences(view)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CensorshipWindows(seq, 5, 13.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no censorship rows")
	}
	for _, row := range res {
		if row.Length < 2 || row.Observed < 1 || row.Expected <= 0 {
			t.Fatalf("bad row: %+v", row)
		}
		if !almost(row.CensorSeconds, float64(row.Length)*13.3) {
			t.Fatalf("censor window: %+v", row)
		}
	}
	if _, err := CensorshipWindows(nil, 5, 13.3); err == nil {
		t.Fatal("nil seq must fail")
	}
	if _, err := CensorshipWindows(seq, 0, 13.3); err == nil {
		t.Fatal("bad topN must fail")
	}
}

func TestWholeChainTail(t *testing.T) {
	view := buildView([]string{"A", "A", "A", "B", "A", "A"}, nil, nil)
	seq, err := Sequences(view)
	if err != nil {
		t.Fatal(err)
	}
	tail := WholeChainTail(seq, 2)
	if tail[3] != 1 || tail[2] != 1 {
		t.Fatalf("tail: %v", tail)
	}
	if len(WholeChainTail(seq, 10)) != 0 {
		t.Fatal("high threshold must be empty")
	}
}

func TestViewFromTree(t *testing.T) {
	g := chain.NewGenesis(1000, 8_000_000)
	tree := chain.NewBlockTree(g)
	b1 := types.NewBlock(types.Header{ParentHash: g.Hash(), Number: 1, MinerLabel: "A", Difficulty: 1000, GasLimit: 8_000_000}, nil, nil)
	if _, err := tree.Add(b1); err != nil {
		t.Fatal(err)
	}
	side := types.NewBlock(types.Header{ParentHash: g.Hash(), Number: 1, MinerLabel: "B", Difficulty: 900, GasLimit: 8_000_000}, nil, nil)
	if _, err := tree.Add(side); err != nil {
		t.Fatal(err)
	}
	b2 := types.NewBlock(types.Header{ParentHash: b1.Hash(), Number: 2, MinerLabel: "A", Difficulty: 1000, GasLimit: 8_000_000}, nil, []types.Header{side.Header})
	if _, err := tree.Add(b2); err != nil {
		t.Fatal(err)
	}
	view, err := ViewFromTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Main) != 2 {
		t.Fatalf("main: %d", len(view.Main))
	}
	if len(view.All) != 3 {
		t.Fatalf("all: %d", len(view.All))
	}
	if !view.UncleRefs[side.Hash()] {
		t.Fatal("uncle reference missing")
	}
	if !view.MainSet[b1.Hash()] || view.MainSet[side.Hash()] {
		t.Fatal("main set wrong")
	}
	if _, err := ViewFromTree(nil); err == nil {
		t.Fatal("nil tree must fail")
	}
}

func TestViewFromIndex(t *testing.T) {
	g := h("genesis")
	b1, b2, side := h("b1"), h("b2"), h("side")
	records := []measure.Record{
		blockRec("NA", b1, g, 1, "A", 10, 1),
		blockRec("NA", side, g, 1, "B", 12, 1),
		blockRec("NA", b2, b1, 2, "A", 20, 1),
		blockRec("EA", b2, b1, 2, "A", 25, 1),
	}
	// b2 references side as uncle.
	records[2].Uncles = []string{side.String()}
	ds, _ := FromRecords(records)
	idx, err := BuildIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	view, err := ViewFromIndex(idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Main) != 2 || view.Main[0].Hash != b1 || view.Main[1].Hash != b2 {
		t.Fatalf("main: %+v", view.Main)
	}
	if !view.UncleRefs[side] {
		t.Fatal("uncle refs missing")
	}
	if view.MainSet[side] {
		t.Fatal("side on main")
	}
	if _, err := ViewFromIndex(nil); !errors.Is(err, ErrNoBlocks) {
		t.Fatal("nil index must fail")
	}
}

func TestCommitTimes(t *testing.T) {
	g := h("genesis")
	// Chain b1..b15, tx t1 included in b1 observed at t=0s,
	// blocks observed at 10s, 20s, ... 150s.
	var records []measure.Record
	parent := g
	var blockHashes []types.Hash
	for i := 1; i <= 15; i++ {
		bh := h("blk" + string(rune('a'+i)))
		r := blockRec("NA", bh, parent, uint64(i), "A", int64(i*10_000), 1)
		if i == 1 {
			r.TxHashes = []string{h("t1").String()}
		} else {
			r.TxHashes = []string{h("tx-filler" + string(rune('a'+i))).String()}
		}
		records = append(records, r)
		blockHashes = append(blockHashes, bh)
		parent = bh
	}
	txr := rec("NA", measure.KindTx, h("t1"), 2_000)
	txr.Sender = "0xaa"
	txr.Nonce = 0
	records = append(records, txr)
	ds, _ := FromRecords(records)
	idx, err := BuildIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	view, err := ViewFromIndex(idx)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CommitTimes(idx, view)
	if err != nil {
		t.Fatal(err)
	}
	if res.Txs < 1 {
		t.Fatal("no txs resolved")
	}
	// t1: seen at 2s, included at 10s => inclusion 8s.
	v, err := res.Inclusion.Value(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if v != 8 {
		t.Fatalf("inclusion median: %v", v)
	}
	// 3-conf: b4 observed at 40s => 38s.
	conf3 := res.Confirmations[3]
	if conf3 == nil {
		t.Fatal("missing 3-conf")
	}
	v3, err := conf3.Value(1)
	if err != nil {
		t.Fatal(err)
	}
	if v3 != 38 {
		t.Fatalf("3-conf: %v", v3)
	}
	// 12-conf: b13 at 130s => 128s.
	v12, err := res.Confirmations[12].Value(1)
	if err != nil || v12 != 128 {
		t.Fatalf("12-conf: %v, %v", v12, err)
	}
	// 36-conf unreachable in a 15-block window.
	if _, ok := res.Confirmations[36]; ok {
		t.Fatal("36-conf should be censored out")
	}
	_ = blockHashes
}

func TestCommitTimesRequiresLinks(t *testing.T) {
	records := []measure.Record{
		blockRec("NA", h("b1"), h("g"), 1, "A", 10, 1),
		rec("NA", measure.KindTx, h("t1"), 2),
	}
	ds, _ := FromRecords(records)
	idx, err := BuildIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	view, err := ViewFromIndex(idx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CommitTimes(idx, view); err == nil {
		t.Fatal("missing tx links must fail")
	}
	if _, err := CommitTimes(nil, view); err == nil {
		t.Fatal("nil index must fail")
	}
}

func TestReordering(t *testing.T) {
	g := h("genesis")
	var records []measure.Record
	parent := g
	// 14 blocks at 10s intervals; block 1 contains t-late (nonce 0)
	// and t-early (nonce 1) from the same sender; t-early was
	// observed first.
	for i := 1; i <= 14; i++ {
		bh := h("rblk" + string(rune('a'+i)))
		r := blockRec("NA", bh, parent, uint64(i), "A", int64(i*10_000), 1)
		if i == 1 {
			r.TxHashes = []string{h("t-late").String(), h("t-early").String()}
		}
		records = append(records, r)
		parent = bh
	}
	early := rec("NA", measure.KindTx, h("t-early"), 1_000)
	early.Sender = "0xaa"
	early.Nonce = 1
	late := rec("NA", measure.KindTx, h("t-late"), 3_000)
	late.Sender = "0xaa"
	late.Nonce = 0
	records = append(records, early, late)

	ds, _ := FromRecords(records)
	idx, err := BuildIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	view, err := ViewFromIndex(idx)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reordering(idx, view)
	if err != nil {
		t.Fatal(err)
	}
	// The pair (nonce 1 observed before nonce 0) is out of order:
	// exactly one of the two committed txs gets flagged — the one
	// observed while a higher same-sender nonce was already known.
	if res.OutOfOrderCount+res.InOrderCount < 2 {
		t.Fatalf("counts: %d + %d", res.OutOfOrderCount, res.InOrderCount)
	}
	if res.OutOfOrderFraction <= 0 || res.OutOfOrderFraction >= 1 {
		t.Fatalf("fraction: %v", res.OutOfOrderFraction)
	}
	if _, err := Reordering(nil, view); err == nil {
		t.Fatal("nil index must fail")
	}
}
