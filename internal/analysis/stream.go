package analysis

import (
	"repro/internal/measure"
	"repro/internal/types"
)

// IndexFromStreams builds the observation Index directly from
// streaming measurement nodes, bypassing record materialization
// entirely: no Record structs, no hex round-trips, no O(receptions)
// log. It produces exactly the Index BuildIndex would compute from the
// same nodes' raw logs — the streaming aggregates are the per-node
// fixpoints of BuildIndex's scan — so every downstream analysis is
// unchanged, byte for byte.
func IndexFromStreams(nodes []*measure.Node) (*Index, error) {
	if len(nodes) == 0 {
		return nil, ErrNoNodes
	}
	idx := &Index{
		BlockFirst:      make(map[types.Hash]map[string]Observation),
		BlockReceptions: make(map[types.Hash]map[string]map[measure.RecordKind]int),
		TxFirst:         make(map[types.Hash]map[string]Observation),
		TxMeta:          make(map[types.Hash]TxMeta),
		BlockMeta:       make(map[types.Hash]BlockMeta),
	}
	observed := false
	for _, n := range nodes {
		name := n.Name()
		for h, o := range n.BlockObservations() {
			observed = true
			perNode := idx.BlockFirst[h]
			if perNode == nil {
				perNode = make(map[string]Observation)
				idx.BlockFirst[h] = perNode
			}
			perNode[name] = Observation{Node: name, Local: o.FirstLocal, Kind: o.FirstKind}
			perRecv := idx.BlockReceptions[h]
			if perRecv == nil {
				perRecv = make(map[string]map[measure.RecordKind]int)
				idx.BlockReceptions[h] = perRecv
			}
			perKind := make(map[measure.RecordKind]int, 2)
			if o.Blocks > 0 {
				perKind[measure.KindBlock] = o.Blocks
			}
			if o.Announces > 0 {
				perKind[measure.KindAnnouncement] = o.Announces
			}
			perRecv[name] = perKind
		}
		for h, o := range n.TxObservations() {
			observed = true
			perNode := idx.TxFirst[h]
			if perNode == nil {
				perNode = make(map[string]Observation)
				idx.TxFirst[h] = perNode
			}
			perNode[name] = Observation{Node: name, Local: o.FirstLocal, Kind: measure.KindTx}
			if _, ok := idx.TxMeta[h]; !ok {
				idx.TxMeta[h] = TxMeta{Sender: o.Sender, Nonce: o.Nonce}
			}
		}
	}
	// Block skeletons come straight from the retained bodies — the
	// same content a raw-log scan would reparse from the first full
	// reception's record (meta is a pure function of the block, so
	// which node supplies it is immaterial).
	for _, n := range nodes {
		links := n.CaptureTxLinks()
		for h, b := range n.Blocks() {
			if _, ok := idx.BlockMeta[h]; ok {
				continue
			}
			idx.BlockMeta[h] = metaFromBlockLinks(b, links)
		}
	}
	if !observed {
		return nil, measure.ErrEmptyLog
	}
	if len(idx.BlockFirst) == 0 {
		return nil, ErrNoBlocks
	}
	return idx, nil
}

// metaFromBlockLinks is metaFromBlock with the tx hash list gated on
// the node's capture setting, mirroring what the node's records would
// have carried.
func metaFromBlockLinks(b *types.Block, captureTxLinks bool) BlockMeta {
	meta := BlockMeta{
		Hash:    b.Hash(),
		Parent:  b.Header.ParentHash,
		Number:  b.Header.Number,
		Miner:   b.Header.MinerLabel,
		TxCount: len(b.Txs),
		Size:    b.EncodedSize(),
		Extra:   b.Header.Extra,
	}
	for i := range b.Uncles {
		meta.Uncles = append(meta.Uncles, b.Uncles[i].Hash())
	}
	if captureTxLinks {
		for _, tx := range b.Txs {
			meta.TxHashes = append(meta.TxHashes, tx.Hash())
		}
	}
	return meta
}

// MergeNodeMeta builds a record-free Dataset shell (node names and
// retained block bodies) for streaming campaigns, where the raw log
// was never materialized.
func MergeNodeMeta(nodes []*measure.Node) (*Dataset, error) {
	if len(nodes) == 0 {
		return nil, ErrNoNodes
	}
	ds := &Dataset{Blocks: make(map[types.Hash]*types.Block)}
	for _, n := range nodes {
		ds.NodeNames = append(ds.NodeNames, n.Name())
		for h, b := range n.Blocks() {
			if _, ok := ds.Blocks[h]; !ok {
				ds.Blocks[h] = b
			}
		}
	}
	return ds, nil
}
