package analysis

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/types"
)

// Withholding detection (§III-D). The paper exonerates Sparkpool's
// 9-block sequences by checking two signatures of a withholding
// release: the blocks of the run would be "announced all together"
// (bunched release times) instead of spaced at the mining rate. This
// file implements that test over any (block -> observation time)
// mapping — first observations from measurement logs in network mode,
// or publication times in chain-only mode.

// WithholdingVerdict reports one same-miner run's analysis.
type WithholdingVerdict struct {
	Pool        string
	StartHeight uint64
	Length      int
	// MeanIntraGapMillis is the mean observation gap between the
	// run's consecutive blocks.
	MeanIntraGapMillis float64
	// GlobalMeanGapMillis is the chain-wide mean gap (the expected
	// honest spacing).
	GlobalMeanGapMillis float64
	// BurstRatio is MeanIntraGap / GlobalMeanGap; honest runs sit
	// near 1, withheld releases near 0.
	BurstRatio float64
	// Flagged marks runs whose ratio fell below the threshold.
	Flagged bool
}

// Calibrated detector settings, shared by the registry's W1 spec and
// scenario-file withholding outputs. Runs of >= 4 with a 0.04 ratio
// keep the burst test's false-positive rate at zero while trivially
// catching real releases: honest same-miner runs bottom out near
// ratio 0.06 (quick follow-ups during blind windows), whereas a burst
// release has zero intra-run gaps.
const (
	// DefaultWithholdingMinRun is the minimum same-miner run length
	// the detector examines.
	DefaultWithholdingMinRun = 4
	// DefaultWithholdingBurstRatio is the flagging threshold on
	// MeanIntraGap / GlobalMeanGap.
	DefaultWithholdingBurstRatio = 0.04
)

// WithholdingResult aggregates all examined runs.
type WithholdingResult struct {
	Verdicts []WithholdingVerdict
	// FlaggedRuns counts verdicts with Flagged set.
	FlaggedRuns int
	// RunsExamined counts same-miner runs of at least the minimum
	// length.
	RunsExamined int
}

// DetectWithholding scans the main chain for same-miner runs of at
// least minRun blocks and classifies each by its burst ratio against
// burstThreshold (the paper's reasoning uses "average inter-block
// time" as the honest baseline; 0.3 is a conservative default).
func DetectWithholding(view *ChainView, times map[types.Hash]sim.Time, minRun int, burstThreshold float64) (*WithholdingResult, error) {
	if view == nil || len(view.Main) < 2 {
		return nil, ErrNoBlocks
	}
	if minRun < 2 {
		return nil, fmt.Errorf("analysis: minRun %d < 2", minRun)
	}
	if burstThreshold <= 0 || burstThreshold >= 1 {
		return nil, fmt.Errorf("analysis: burst threshold %v outside (0,1)", burstThreshold)
	}
	// Global mean gap over observed consecutive main blocks.
	var gaps []float64
	for i := 1; i < len(view.Main); i++ {
		a, okA := times[view.Main[i-1].Hash]
		b, okB := times[view.Main[i].Hash]
		if !okA || !okB {
			continue
		}
		g := float64(b - a)
		if g < 0 {
			g = 0
		}
		gaps = append(gaps, g)
	}
	if len(gaps) == 0 {
		return nil, fmt.Errorf("analysis: no timed consecutive blocks")
	}
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	globalMean := sum / float64(len(gaps))
	if globalMean <= 0 {
		return nil, fmt.Errorf("analysis: degenerate global gap %v", globalMean)
	}

	res := &WithholdingResult{}
	i := 0
	for i < len(view.Main) {
		j := i
		for j+1 < len(view.Main) && view.Main[j+1].Miner == view.Main[i].Miner {
			j++
		}
		runLen := j - i + 1
		if runLen >= minRun {
			verdict := WithholdingVerdict{
				Pool:                view.Main[i].Miner,
				StartHeight:         view.Main[i].Number,
				Length:              runLen,
				GlobalMeanGapMillis: globalMean,
			}
			var intra []float64
			for k := i + 1; k <= j; k++ {
				a, okA := times[view.Main[k-1].Hash]
				b, okB := times[view.Main[k].Hash]
				if !okA || !okB {
					continue
				}
				g := float64(b - a)
				if g < 0 {
					g = 0
				}
				intra = append(intra, g)
			}
			if len(intra) > 0 {
				var is float64
				for _, g := range intra {
					is += g
				}
				verdict.MeanIntraGapMillis = is / float64(len(intra))
				verdict.BurstRatio = verdict.MeanIntraGapMillis / globalMean
				verdict.Flagged = verdict.BurstRatio < burstThreshold
				res.Verdicts = append(res.Verdicts, verdict)
				res.RunsExamined++
				if verdict.Flagged {
					res.FlaggedRuns++
				}
			}
		}
		i = j + 1
	}
	sort.Slice(res.Verdicts, func(a, b int) bool {
		return res.Verdicts[a].StartHeight < res.Verdicts[b].StartHeight
	})
	return res, nil
}

// RenderWithholding prints the verdict table.
func RenderWithholding(r *WithholdingResult) string {
	out := "Withholding detection (§III-D burst test)\n"
	out += fmt.Sprintf("  runs examined: %d, flagged: %d\n", r.RunsExamined, r.FlaggedRuns)
	out += fmt.Sprintf("  %-16s %8s %6s %14s %12s %8s\n", "pool", "height", "len", "intra-gap(ms)", "ratio", "verdict")
	for _, v := range r.Verdicts {
		verdict := "honest"
		if v.Flagged {
			verdict = "WITHHELD"
		}
		out += fmt.Sprintf("  %-16s %8d %6d %14.0f %12.3f %8s\n",
			v.Pool, v.StartHeight, v.Length, v.MeanIntraGapMillis, v.BurstRatio, verdict)
	}
	return out
}

// ObservationTimes extracts each block's earliest observation time
// from an index — the network-mode input for DetectWithholding.
func ObservationTimes(idx *Index) map[types.Hash]sim.Time {
	out := make(map[types.Hash]sim.Time, len(idx.BlockFirst))
	for h, perNode := range idx.BlockFirst {
		if first, ok := EarliestObservation(perNode); ok {
			out[h] = first.Local
		}
	}
	return out
}
