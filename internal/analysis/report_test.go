package analysis

import (
	"strings"
	"testing"

	"repro/internal/measure"
	"repro/internal/stats"
)

// buildFullIndex fabricates a small but complete dataset that
// exercises every render path.
func buildFullIndex(t *testing.T) (*Index, *ChainView) {
	t.Helper()
	g := h("rg")
	var records []measure.Record
	parent := g
	for i := 1; i <= 16; i++ {
		miner := "Ethermine"
		if i%3 == 0 {
			miner = "Sparkpool"
		}
		bh := h("rblk" + string(rune('a'+i)))
		r := blockRec("EA", bh, parent, uint64(i), miner, int64(i)*13300, 1)
		r.TxHashes = []string{h("rtx" + string(rune('a'+i))).String()}
		records = append(records, r)
		r2 := blockRec("NA", bh, parent, uint64(i), miner, int64(i)*13300+80, 1)
		r2.TxHashes = r.TxHashes
		records = append(records, r2)
		txr := rec("EA", measure.KindTx, h("rtx"+string(rune('a'+i))), int64(i)*13300-4000)
		txr.Sender = "0xsender"
		txr.Nonce = uint64(i)
		records = append(records, txr)
		parent = bh
	}
	ds, err := FromRecords(records)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	view, err := ViewFromIndex(idx)
	if err != nil {
		t.Fatal(err)
	}
	return idx, view
}

func TestRenderersProduceCompleteOutput(t *testing.T) {
	idx, view := buildFullIndex(t)

	prop, err := PropagationDelays(idx)
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, RenderPropagation(prop), "Figure 1", "median")

	first, err := FirstObservations(idx)
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, RenderFirstObservations(first), "Figure 2", "EA")

	pools, err := PoolFirstObservations(idx, 5)
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, RenderPoolObservations(pools, []string{"EA", "NA"}), "Figure 3", "Ethermine")

	red, err := Redundancy(idx, "EA")
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, RenderRedundancy(red), "Table II", "Announcements", "Whole Blocks")

	commit, err := CommitTimes(idx, view)
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, RenderCommit(commit), "Figure 4", "inclusion", "3-confirmation")

	reorder, err := Reordering(idx, view)
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, RenderReordering(reorder), "Figure 5", "out-of-order")

	empty, err := EmptyBlocks(view)
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, RenderEmptyBlocks(empty, 5), "Figure 6", "Ethermine")

	forks, err := Forks(view)
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, RenderForks(forks), "Table III", "Fork Length")

	om, err := OneMinerForks(view)
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, RenderOneMinerForks(om), "One-miner", "recognized")

	seq, err := Sequences(view)
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, RenderSequences(seq, 5, 4), "Figure 7", "maxrun")

	censor, err := CensorshipWindows(seq, 5, 13.3)
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, RenderCensorship(censor), "Security", "expected")

	tail := WholeChainTail(seq, 1)
	mustContain(t, RenderWholeChainTail(tail, seq.TotalMain), "Whole-chain", "len")
}

func TestRenderReorderingEmptyClasses(t *testing.T) {
	r := &ReorderingResult{
		InOrder:    stats.NewECDF(nil),
		OutOfOrder: stats.NewECDF(nil),
	}
	out := RenderReordering(r)
	if !strings.Contains(out, "no samples") {
		t.Fatalf("empty classes must render gracefully: %s", out)
	}
}

func mustContain(t *testing.T, out string, wants ...string) {
	t.Helper()
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Fatalf("output missing %q:\n%s", w, out)
		}
	}
}
