package analysis

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// SequencesResult reproduces Fig. 7 and the §III-D security analysis:
// the distribution of consecutive main-chain blocks mined by the same
// pool, compared with the theoretical expectation from hashrate.
type SequencesResult struct {
	// Runs maps pool -> multiset of consecutive-run lengths.
	Runs map[string][]int
	// MaxRun maps pool -> longest observed sequence.
	MaxRun map[string]int
	// TopPools lists pools by total main-chain blocks, descending.
	TopPools []string
	// BlockCounts maps pool -> main blocks mined.
	BlockCounts map[string]int
	// TotalMain is the main-chain length considered.
	TotalMain int
}

// Sequences computes Fig. 7 over a chain view.
func Sequences(view *ChainView) (*SequencesResult, error) {
	if view == nil || len(view.Main) == 0 {
		return nil, ErrNoBlocks
	}
	labels := make([]string, len(view.Main))
	counts := map[string]int{}
	for i, meta := range view.Main {
		labels[i] = meta.Miner
		counts[meta.Miner]++
	}
	runs := stats.RunLengths(labels)
	res := &SequencesResult{
		Runs:        runs,
		MaxRun:      make(map[string]int, len(runs)),
		BlockCounts: counts,
		TotalMain:   len(view.Main),
	}
	for pool, rs := range runs {
		res.MaxRun[pool] = stats.MaxRun(rs)
	}
	for pool := range counts {
		res.TopPools = append(res.TopPools, pool)
	}
	sort.Slice(res.TopPools, func(i, j int) bool {
		if counts[res.TopPools[i]] != counts[res.TopPools[j]] {
			return counts[res.TopPools[i]] > counts[res.TopPools[j]]
		}
		return res.TopPools[i] < res.TopPools[j]
	})
	return res, nil
}

// CDF returns, for a pool, P(run length <= k) over its observed runs
// — Fig. 7's y-axis.
func (r *SequencesResult) CDF(pool string, k int) float64 {
	runs := r.Runs[pool]
	if len(runs) == 0 {
		return 0
	}
	n := 0
	for _, run := range runs {
		if run <= k {
			n++
		}
	}
	return float64(n) / float64(len(runs))
}

// CensorshipResult captures §III-D's comparison between the observed
// long sequences and their theoretical probability under the paper's
// independence model.
type CensorshipResult struct {
	Pool string
	// Share is the pool's observed main-chain share (the hashrate
	// proxy the paper uses).
	Share float64
	// Length is the sequence length under scrutiny.
	Length int
	// Observed counts sequences of at least Length.
	Observed int
	// Expected is the theoretical count n * share^Length.
	Expected float64
	// CensorSeconds is the censorship window such a sequence enables
	// (Length * mean inter-block time).
	CensorSeconds float64
}

// CensorshipWindows evaluates, for each of the topN pools, the longest
// sequence it achieved: observed vs expected counts and the implied
// temporary-censorship duration. interBlockSeconds is the mean
// inter-block time (13.3 s in the study window).
func CensorshipWindows(seq *SequencesResult, topN int, interBlockSeconds float64) ([]CensorshipResult, error) {
	if seq == nil || seq.TotalMain == 0 {
		return nil, ErrNoBlocks
	}
	if topN < 1 || interBlockSeconds <= 0 {
		return nil, fmt.Errorf("analysis: bad censorship params topN=%d inter=%v", topN, interBlockSeconds)
	}
	pools := seq.TopPools
	if len(pools) > topN {
		pools = pools[:topN]
	}
	var out []CensorshipResult
	for _, pool := range pools {
		share := float64(seq.BlockCounts[pool]) / float64(seq.TotalMain)
		k := seq.MaxRun[pool]
		if k < 2 {
			continue
		}
		expected, err := stats.ExpectedSequences(share, k, seq.TotalMain)
		if err != nil {
			return nil, err
		}
		out = append(out, CensorshipResult{
			Pool:          pool,
			Share:         share,
			Length:        k,
			Observed:      stats.CountRunsAtLeast(seq.Runs[pool], k),
			Expected:      expected,
			CensorSeconds: float64(k) * interBlockSeconds,
		})
	}
	return out, nil
}

// WholeChainTail summarizes the long-horizon Monte-Carlo (§III-D's
// "we looked beyond our one-month experiment"): counts of maximal
// same-miner sequences of each length at or above the threshold.
func WholeChainTail(seq *SequencesResult, minLength int) map[int]int {
	out := map[int]int{}
	for _, runs := range seq.Runs {
		for _, r := range runs {
			if r >= minLength {
				out[r]++
			}
		}
	}
	return out
}
