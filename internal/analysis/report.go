package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// This file renders each analysis result in the paper's presentation
// format, for cmd/ethrepro and EXPERIMENTS.md.

// RenderPropagation prints Fig. 1's headline numbers and histogram.
func RenderPropagation(r *PropagationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — Block propagation delay (ms)\n")
	fmt.Fprintf(&b, "  samples=%d median=%.0f mean=%.0f p95=%.0f p99=%.0f\n",
		r.Summary.Count, r.Summary.Median, r.Summary.Mean, r.Summary.P95, r.Summary.P99)
	fmt.Fprintf(&b, "  paper:            median=74  mean=109 p95=211  p99=317\n")
	b.WriteString(r.Histogram.Render(48))
	return b.String()
}

// RenderFirstObservations prints Fig. 2.
func RenderFirstObservations(r *FirstObservationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — First new-block observations per node (n=%d)\n", r.Blocks)
	nodes := make([]string, 0, len(r.Share))
	for n := range r.Share {
		nodes = append(nodes, n)
	}
	// Ties broken by name: equal shares must render in one canonical
	// order or the artifact byte-identity contract breaks across runs.
	sort.Slice(nodes, func(i, j int) bool {
		if r.Share[nodes[i]] != r.Share[nodes[j]] {
			return r.Share[nodes[i]] > r.Share[nodes[j]]
		}
		return nodes[i] < nodes[j]
	})
	for _, n := range nodes {
		fmt.Fprintf(&b, "  %-4s %6.2f%%  (err bars %.2f%%..%.2f%%)\n",
			n, r.Share[n]*100, r.ErrLow[n]*100, r.ErrHigh[n]*100)
	}
	b.WriteString("  paper: EA ~40%, NA ~10% (4x less likely than EA)\n")
	return b.String()
}

// RenderPoolObservations prints Fig. 3.
func RenderPoolObservations(r *PoolObservationResult, nodes []string) string {
	var b strings.Builder
	b.WriteString("Figure 3 — First observation per mining pool and node\n")
	fmt.Fprintf(&b, "  %-16s %7s", "pool", "share")
	for _, n := range nodes {
		fmt.Fprintf(&b, " %6s", n)
	}
	b.WriteString("\n")
	for _, p := range r.Pools {
		fmt.Fprintf(&b, "  %-16s %6.2f%%", p, r.BlockShare[p]*100)
		for _, n := range nodes {
			fmt.Fprintf(&b, " %5.1f%%", r.FirstShare[p][n]*100)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderRedundancy prints Table II.
func RenderRedundancy(r *RedundancyResult) string {
	var b strings.Builder
	b.WriteString("Table II — Redundant block receptions (25-peer node)\n")
	fmt.Fprintf(&b, "  %-16s %7s %6s %8s %8s\n", "Message Type", "Avg.", "Med.", "Top 10%", "Top 1%")
	fmt.Fprintf(&b, "  %-16s %7.3f %6.0f %8.0f %8.0f\n", "Announcements",
		r.Announcements.Mean, r.Announcements.Median, r.Announcements.P90, r.Announcements.P99)
	fmt.Fprintf(&b, "  %-16s %7.3f %6.0f %8.0f %8.0f\n", "Whole Blocks",
		r.WholeBlocks.Mean, r.WholeBlocks.Median, r.WholeBlocks.P90, r.WholeBlocks.P99)
	fmt.Fprintf(&b, "  %-16s %7.3f %6.0f %8.0f %8.0f\n", "Both combined",
		r.Combined.Mean, r.Combined.Median, r.Combined.P90, r.Combined.P99)
	b.WriteString("  paper: ann 2.585/2/5/7, whole 7.043/7/10/12, both 9.11/9/12/15\n")
	return b.String()
}

// RenderCommit prints Fig. 4's headline values.
func RenderCommit(r *CommitResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — Transaction inclusion and commit times (s), n=%d\n", r.Txs)
	med := func(e interface {
		Value(float64) (float64, error)
	}) float64 {
		v, err := e.Value(0.5)
		if err != nil {
			return -1
		}
		return v
	}
	fmt.Fprintf(&b, "  inclusion median: %.0f s\n", med(r.Inclusion))
	depths := make([]int, 0, len(r.Confirmations))
	for k := range r.Confirmations {
		depths = append(depths, k)
	}
	sort.Ints(depths)
	for _, k := range depths {
		fmt.Fprintf(&b, "  %2d-confirmation median: %.0f s\n", k, med(r.Confirmations[k]))
	}
	b.WriteString("  paper: 12-conf median 189 s (2017: 200 s)\n")
	return b.String()
}

// RenderReordering prints Fig. 5's headline values.
func RenderReordering(r *ReorderingResult) string {
	var b strings.Builder
	b.WriteString("Figure 5 — Commit delay by observed ordering\n")
	fmt.Fprintf(&b, "  out-of-order committed txs: %.2f%% (paper: 11.54%%)\n", r.OutOfOrderFraction*100)
	report := func(label string, e interface {
		Value(float64) (float64, error)
		Len() int
	}) {
		if e.Len() == 0 {
			fmt.Fprintf(&b, "  %-12s (no samples)\n", label)
			return
		}
		p50, _ := e.Value(0.5)
		p90, _ := e.Value(0.9)
		fmt.Fprintf(&b, "  %-12s median %.0f s, p90 %.0f s (n=%d)\n", label, p50, p90, e.Len())
	}
	report("in-order", r.InOrder)
	report("out-of-order", r.OutOfOrder)
	b.WriteString("  paper: in-order <189/292 s, out-of-order <192/325 s\n")
	return b.String()
}

// RenderEmptyBlocks prints Fig. 6.
func RenderEmptyBlocks(r *EmptyBlocksResult, topN int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — Empty blocks per pool (total %.2f%%, paper 1.45%%)\n", r.Fraction*100)
	pools := r.Pools
	if len(pools) > topN {
		pools = pools[:topN]
	}
	for _, p := range pools {
		c := r.PerPool[p]
		fmt.Fprintf(&b, "  %-16s mined %6d empty %5d (%.2f%%)\n", p, c.Mined, c.Empty, c.Rate()*100)
	}
	return b.String()
}

// RenderForks prints Table III.
func RenderForks(r *ForksResult) string {
	var b strings.Builder
	b.WriteString("Table III — Fork types and lengths\n")
	fmt.Fprintf(&b, "  %-12s %8s %12s %14s\n", "Fork Length", "Total", "Recognized", "Unrecognized")
	lengths := make([]int, 0, len(r.ByLength))
	for l := range r.ByLength {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	for _, l := range lengths {
		c := r.ByLength[l]
		fmt.Fprintf(&b, "  %-12d %8d %12d %14d\n", l, c.Total, c.Recognized, c.Unrecognized)
	}
	total := r.MainBlocks + r.UncleBlocks + r.UnrecognizedBlocks
	if total > 0 {
		fmt.Fprintf(&b, "  blocks: %.2f%% main, %.2f%% uncles, %.2f%% unrecognized (paper: 92.81/6.97/0.22)\n",
			100*float64(r.MainBlocks)/float64(total),
			100*float64(r.UncleBlocks)/float64(total),
			100*float64(r.UnrecognizedBlocks)/float64(total))
	}
	b.WriteString("  paper: len1 15,171 (15,100 recognized), len2 404 (0), len3 10 (0)\n")
	return b.String()
}

// RenderOneMinerForks prints the §III-C5 findings.
func RenderOneMinerForks(r *OneMinerForkResult) string {
	var b strings.Builder
	b.WriteString("One-miner forks (§III-C5)\n")
	sizes := make([]int, 0, len(r.TupleCounts))
	for s := range r.TupleCounts {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	for _, s := range sizes {
		fmt.Fprintf(&b, "  %d-tuples: %d\n", s, r.TupleCounts[s])
	}
	fmt.Fprintf(&b, "  recognized as uncles: %.0f%% (paper: 98%%)\n", r.RecognizedFraction*100)
	fmt.Fprintf(&b, "  same transaction set: %.0f%% (paper: 56%%)\n", r.SameTxSetFraction*100)
	fmt.Fprintf(&b, "  share of fork heights: %.0f%% (paper: >11%%)\n", r.FractionOfForks*100)
	b.WriteString("  paper: 1,750 pairs, 25 triples, one 4-tuple, one 7-tuple\n")
	return b.String()
}

// RenderSequences prints Fig. 7 as a per-pool sequence-length table.
func RenderSequences(r *SequencesResult, topN, maxLen int) string {
	var b strings.Builder
	b.WriteString("Figure 7 — Consecutive main-chain blocks per pool\n")
	pools := r.TopPools
	if len(pools) > topN {
		pools = pools[:topN]
	}
	fmt.Fprintf(&b, "  %-16s %6s %7s", "pool", "share", "maxrun")
	for k := 1; k <= maxLen; k++ {
		fmt.Fprintf(&b, " %7s", fmt.Sprintf("P<=%d", k))
	}
	b.WriteString("\n")
	for _, p := range pools {
		share := float64(r.BlockCounts[p]) / float64(r.TotalMain)
		fmt.Fprintf(&b, "  %-16s %5.1f%% %7d", p, share*100, r.MaxRun[p])
		for k := 1; k <= maxLen; k++ {
			fmt.Fprintf(&b, " %6.2f%%", r.CDF(p, k)*100)
		}
		b.WriteString("\n")
	}
	b.WriteString("  paper: Ethermine 4x 8-block runs, Sparkpool 2x 9-block runs in one month\n")
	return b.String()
}

// RenderCensorship prints the §III-D observed-vs-expected comparison.
func RenderCensorship(rows []CensorshipResult) string {
	var b strings.Builder
	b.WriteString("Security (§III-D) — longest sequences: observed vs expected\n")
	fmt.Fprintf(&b, "  %-16s %6s %4s %9s %10s %12s\n", "pool", "share", "len", "observed", "expected", "censor-window")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-16s %5.1f%% %4d %9d %10.2f %10.0f s\n",
			r.Pool, r.Share*100, r.Length, r.Observed, r.Expected, r.CensorSeconds)
	}
	return b.String()
}

// RenderWholeChainTail prints the long-horizon sequence census.
func RenderWholeChainTail(tail map[int]int, blocks int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Whole-chain sequence tail over %d blocks (paper: 102/41/4/1 of len 10/11/12/14)\n", blocks)
	lengths := make([]int, 0, len(tail))
	for l := range tail {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	for _, l := range lengths {
		fmt.Fprintf(&b, "  len %2d: %d\n", l, tail[l])
	}
	return b.String()
}
