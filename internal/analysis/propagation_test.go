package analysis

import (
	"errors"
	"math"
	"testing"

	"repro/internal/measure"
	"repro/internal/types"
)

// rec builds a block/announcement/tx record at a local time.
func rec(node string, kind measure.RecordKind, hash types.Hash, localMillis int64) measure.Record {
	return measure.Record{
		Node:        node,
		Region:      node,
		Kind:        kind,
		LocalMillis: localMillis,
		TrueMillis:  localMillis,
		Hash:        hash.String(),
	}
}

func blockRec(node string, hash, parent types.Hash, number uint64, miner string, localMillis int64, txCount int) measure.Record {
	r := rec(node, measure.KindBlock, hash, localMillis)
	r.ParentHash = parent.String()
	r.Number = number
	r.Miner = miner
	r.TxCount = txCount
	r.SizeBytes = 600
	return r
}

func h(label string) types.Hash { return types.HashBytes([]byte(label)) }

func TestBuildIndexBasics(t *testing.T) {
	b1 := h("b1")
	records := []measure.Record{
		blockRec("NA", b1, h("g"), 1, "Ethermine", 100, 2),
		rec("EA", measure.KindAnnouncement, b1, 50),
		blockRec("EA", b1, h("g"), 1, "Ethermine", 60, 2),
		rec("WE", measure.KindTx, h("t1"), 70),
	}
	ds, err := FromRecords(records)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	// EA's first sighting is the announcement at 50, not the block at
	// 60.
	if obs := idx.BlockFirst[b1]["EA"]; obs.Local != 50 || obs.Kind != measure.KindAnnouncement {
		t.Fatalf("EA first: %+v", obs)
	}
	if obs := idx.BlockFirst[b1]["NA"]; obs.Local != 100 {
		t.Fatalf("NA first: %+v", obs)
	}
	first, ok := EarliestObservation(idx.BlockFirst[b1])
	if !ok || first.Node != "EA" || first.Local != 50 {
		t.Fatalf("earliest: %+v", first)
	}
	if idx.BlockMeta[b1].Miner != "Ethermine" || idx.BlockMeta[b1].TxCount != 2 {
		t.Fatalf("meta: %+v", idx.BlockMeta[b1])
	}
	if _, ok := idx.TxMeta[h("t1")]; !ok {
		t.Fatal("tx meta missing")
	}
}

func TestBuildIndexErrors(t *testing.T) {
	if _, err := BuildIndex(nil); err == nil {
		t.Error("nil dataset must fail")
	}
	if _, err := BuildIndex(&Dataset{}); err == nil {
		t.Error("empty dataset must fail")
	}
	bad := []measure.Record{{Node: "NA", Kind: measure.KindBlock, Hash: "nope"}}
	if _, err := BuildIndex(&Dataset{Records: bad}); err == nil {
		t.Error("malformed hash must fail")
	}
	txOnly := []measure.Record{rec("NA", measure.KindTx, h("t"), 5)}
	if _, err := BuildIndex(&Dataset{Records: txOnly}); !errors.Is(err, ErrNoBlocks) {
		t.Errorf("tx-only dataset: %v", err)
	}
}

func TestMergeNodesRequiresNodes(t *testing.T) {
	if _, err := MergeNodes(nil); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("want ErrNoNodes, got %v", err)
	}
}

func TestFromRecordsRequiresRecords(t *testing.T) {
	if _, err := FromRecords(nil); err == nil {
		t.Fatal("empty must fail")
	}
	ds, err := FromRecords([]measure.Record{rec("B", measure.KindTx, h("t"), 1), rec("A", measure.KindTx, h("t"), 2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.NodeNames) != 2 || ds.NodeNames[0] != "A" {
		t.Fatalf("node names: %v", ds.NodeNames)
	}
}

func TestPropagationDelays(t *testing.T) {
	b1, b2 := h("b1"), h("b2")
	records := []measure.Record{
		blockRec("EA", b1, h("g"), 1, "Sparkpool", 1000, 1),
		blockRec("NA", b1, h("g"), 1, "Sparkpool", 1080, 1),
		blockRec("WE", b1, h("g"), 1, "Sparkpool", 1050, 1),
		blockRec("EA", b2, b1, 2, "Sparkpool", 5000, 1),
		blockRec("NA", b2, b1, 2, "Sparkpool", 5200, 1),
	}
	ds, err := FromRecords(records)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PropagationDelays(idx)
	if err != nil {
		t.Fatal(err)
	}
	// Samples: b1 -> {80, 50}, b2 -> {200}.
	if res.Summary.Count != 3 {
		t.Fatalf("count: %d", res.Summary.Count)
	}
	if !almost(res.Summary.Median, 80) || !almost(res.Summary.Max, 200) || !almost(res.Summary.Min, 50) {
		t.Fatalf("summary: %+v", res.Summary)
	}
	if res.Histogram.Total() != 3 {
		t.Fatalf("hist total: %d", res.Histogram.Total())
	}
}

func TestPropagationNegativeSkewClamped(t *testing.T) {
	// Two nodes observing "simultaneously" with skewed clocks can
	// produce inverted local orderings; the pipeline clamps at 0.
	b1 := h("b1")
	records := []measure.Record{
		blockRec("NA", b1, h("g"), 1, "X", 100, 0),
		blockRec("EA", b1, h("g"), 1, "X", 100, 0),
	}
	ds, _ := FromRecords(records)
	idx, err := BuildIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PropagationDelays(idx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Min < 0 {
		t.Fatal("negative delay leaked")
	}
}

func TestPropagationNeedsTwoNodes(t *testing.T) {
	records := []measure.Record{blockRec("NA", h("b"), h("g"), 1, "X", 1, 0)}
	ds, _ := FromRecords(records)
	idx, err := BuildIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PropagationDelays(idx); !errors.Is(err, ErrNoBlocks) {
		t.Fatalf("single-node dataset: %v", err)
	}
	if _, err := PropagationDelays(nil); err == nil {
		t.Fatal("nil index must fail")
	}
}

func TestFirstObservations(t *testing.T) {
	records := []measure.Record{}
	// 6 blocks first seen at EA, 2 at NA, 2 at WE; all margins wide.
	for i := 0; i < 10; i++ {
		bh := h(string(rune('a' + i)))
		base := int64(i * 20000)
		winner := "EA"
		if i >= 6 && i < 8 {
			winner = "NA"
		} else if i >= 8 {
			winner = "WE"
		}
		records = append(records, blockRec(winner, bh, h("g"), uint64(i+1), "X", base, 0))
		for _, other := range []string{"EA", "NA", "WE"} {
			if other != winner {
				records = append(records, blockRec(other, bh, h("g"), uint64(i+1), "X", base+100, 0))
			}
		}
	}
	ds, _ := FromRecords(records)
	idx, err := BuildIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FirstObservations(idx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 10 {
		t.Fatalf("blocks: %d", res.Blocks)
	}
	if !almost(res.Share["EA"], 0.6) || !almost(res.Share["NA"], 0.2) || !almost(res.Share["WE"], 0.2) {
		t.Fatalf("shares: %+v", res.Share)
	}
	// Wide margins: no ambiguity, error bars collapse.
	if !almost(res.ErrHigh["EA"], 0.6) || !almost(res.ErrLow["EA"], 0.6) {
		t.Fatalf("error bars: low %v high %v", res.ErrLow["EA"], res.ErrHigh["EA"])
	}
}

func TestFirstObservationsAmbiguity(t *testing.T) {
	// Margin below 2*10ms: the runner-up gets an ambiguous win.
	b := h("b")
	records := []measure.Record{
		blockRec("EA", b, h("g"), 1, "X", 1000, 0),
		blockRec("NA", b, h("g"), 1, "X", 1015, 0),
	}
	ds, _ := FromRecords(records)
	idx, err := BuildIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FirstObservations(idx)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Share["EA"], 1) {
		t.Fatalf("EA share: %v", res.Share["EA"])
	}
	if !almost(res.ErrHigh["NA"], 1) {
		t.Fatalf("NA high bar should include the ambiguous win: %v", res.ErrHigh["NA"])
	}
}

func TestPoolFirstObservations(t *testing.T) {
	records := []measure.Record{}
	// Sparkpool blocks always first at EA; Ethermine at WE.
	for i := 0; i < 4; i++ {
		bh := h("spark" + string(rune('0'+i)))
		base := int64(i * 20000)
		records = append(records,
			blockRec("EA", bh, h("g"), uint64(i+1), "Sparkpool", base, 0),
			blockRec("WE", bh, h("g"), uint64(i+1), "Sparkpool", base+90, 0),
		)
	}
	for i := 0; i < 2; i++ {
		bh := h("ether" + string(rune('0'+i)))
		base := int64(100000 + i*20000)
		records = append(records,
			blockRec("WE", bh, h("g"), uint64(i+10), "Ethermine", base, 0),
			blockRec("EA", bh, h("g"), uint64(i+10), "Ethermine", base+90, 0),
		)
	}
	ds, _ := FromRecords(records)
	idx, err := BuildIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PoolFirstObservations(idx, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pools) != 2 || res.Pools[0] != "Sparkpool" {
		t.Fatalf("pools: %v", res.Pools)
	}
	if !almost(res.FirstShare["Sparkpool"]["EA"], 1) {
		t.Fatalf("sparkpool EA share: %v", res.FirstShare["Sparkpool"]["EA"])
	}
	if !almost(res.FirstShare["Ethermine"]["WE"], 1) {
		t.Fatalf("ethermine WE share: %v", res.FirstShare["Ethermine"]["WE"])
	}
	if !almost(res.BlockShare["Sparkpool"], 4.0/6.0) {
		t.Fatalf("block share: %v", res.BlockShare["Sparkpool"])
	}
	// topN truncation.
	res1, err := PoolFirstObservations(idx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Pools) != 1 {
		t.Fatalf("topN: %v", res1.Pools)
	}
	if _, err := PoolFirstObservations(idx, 0); err == nil {
		t.Fatal("topN 0 must fail")
	}
}

func TestRedundancy(t *testing.T) {
	b1, b2 := h("b1"), h("b2")
	records := []measure.Record{
		// b1: 2 announcements + 3 whole blocks at node D.
		rec("D", measure.KindAnnouncement, b1, 10),
		rec("D", measure.KindAnnouncement, b1, 12),
		blockRec("D", b1, h("g"), 1, "X", 11, 0),
		blockRec("D", b1, h("g"), 1, "X", 13, 0),
		blockRec("D", b1, h("g"), 1, "X", 14, 0),
		// b2: 1 whole block.
		blockRec("D", b2, b1, 2, "X", 20, 0),
		// Another node's receptions must not pollute D's stats.
		blockRec("E", b1, h("g"), 1, "X", 9, 0),
	}
	ds, _ := FromRecords(records)
	idx, err := BuildIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Redundancy(idx, "D")
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Announcements.Mean, 1) { // (2+0)/2
		t.Fatalf("announce mean: %v", res.Announcements.Mean)
	}
	if !almost(res.WholeBlocks.Mean, 2) { // (3+1)/2
		t.Fatalf("whole mean: %v", res.WholeBlocks.Mean)
	}
	if !almost(res.Combined.Mean, 3) { // (5+1)/2
		t.Fatalf("combined mean: %v", res.Combined.Mean)
	}
	if _, err := Redundancy(idx, "nonexistent"); err == nil {
		t.Fatal("unknown node must fail")
	}
	if _, err := Redundancy(nil, "D"); err == nil {
		t.Fatal("nil index must fail")
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
