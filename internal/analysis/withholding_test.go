package analysis

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/types"
)

// timedView builds a main chain with one block per miner label and a
// times map spacing observations gapMillis apart, with overrides.
func timedView(miners []string, gapMillis int64, override map[int]int64) (*ChainView, map[types.Hash]sim.Time) {
	view := buildView(miners, nil, nil)
	times := make(map[types.Hash]sim.Time, len(view.Main))
	t := int64(0)
	for i, meta := range view.Main {
		if d, ok := override[i]; ok {
			t += d
		} else {
			t += gapMillis
		}
		times[meta.Hash] = sim.Time(t)
	}
	return view, times
}

func TestDetectWithholdingHonestRun(t *testing.T) {
	// A 5-block run spaced at the normal rate is honest.
	view, times := timedView(
		[]string{"A", "A", "A", "A", "A", "B", "C", "B", "C", "B"},
		13300, nil)
	res, err := DetectWithholding(view, times, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if res.RunsExamined != 1 {
		t.Fatalf("runs: %d", res.RunsExamined)
	}
	if res.FlaggedRuns != 0 {
		t.Fatalf("honest run flagged: %+v", res.Verdicts)
	}
	v := res.Verdicts[0]
	if v.Pool != "A" || v.Length != 5 {
		t.Fatalf("verdict: %+v", v)
	}
	if v.BurstRatio < 0.8 {
		t.Fatalf("honest ratio too low: %v", v.BurstRatio)
	}
}

func TestDetectWithholdingBurst(t *testing.T) {
	// A 4-block run released in a 10ms burst is a withholding
	// signature.
	view, times := timedView(
		[]string{"B", "C", "A", "A", "A", "A", "B", "C", "B", "C", "B", "C"},
		13300,
		map[int]int64{3: 10, 4: 10, 5: 10},
	)
	res, err := DetectWithholding(view, times, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlaggedRuns != 1 {
		t.Fatalf("burst not flagged: %+v", res.Verdicts)
	}
	if !res.Verdicts[0].Flagged || res.Verdicts[0].Pool != "A" {
		t.Fatalf("verdict: %+v", res.Verdicts[0])
	}
	out := RenderWithholding(res)
	if !strings.Contains(out, "WITHHELD") {
		t.Fatalf("render: %s", out)
	}
}

func TestDetectWithholdingValidation(t *testing.T) {
	view, times := timedView([]string{"A", "A", "A", "A"}, 13300, nil)
	if _, err := DetectWithholding(nil, times, 4, 0.3); err == nil {
		t.Error("nil view must fail")
	}
	if _, err := DetectWithholding(view, times, 1, 0.3); err == nil {
		t.Error("minRun 1 must fail")
	}
	if _, err := DetectWithholding(view, times, 4, 0); err == nil {
		t.Error("zero threshold must fail")
	}
	if _, err := DetectWithholding(view, times, 4, 1.5); err == nil {
		t.Error("threshold >1 must fail")
	}
	if _, err := DetectWithholding(view, map[types.Hash]sim.Time{}, 4, 0.3); err == nil {
		t.Error("no timed blocks must fail")
	}
}

func TestDetectWithholdingSkipsUntimedRuns(t *testing.T) {
	view, times := timedView([]string{"A", "A", "A", "A", "B"}, 13300, nil)
	// Remove the run's internal timestamps; the run cannot be judged
	// but the global gap still exists via the B transition.
	delete(times, view.Main[1].Hash)
	delete(times, view.Main[2].Hash)
	res, err := DetectWithholding(view, times, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Run has one timed pair left (0->3 missing middles means no
	// consecutive timed pair inside except 3-4? 3 is A,4 is B — the
	// run is 0..3 with only blocks 0,3 timed and not consecutive).
	if res.FlaggedRuns != 0 {
		t.Fatalf("untimed run should not be flagged: %+v", res.Verdicts)
	}
}

func TestObservationTimes(t *testing.T) {
	b1 := h("ot-b1")
	records := []struct {
		node  string
		local int64
	}{{"NA", 100}, {"EA", 60}, {"WE", 80}}
	idx := &Index{BlockFirst: map[types.Hash]map[string]Observation{
		b1: {},
	}}
	for _, r := range records {
		idx.BlockFirst[b1][r.node] = Observation{Node: r.node, Local: sim.Time(r.local)}
	}
	times := ObservationTimes(idx)
	if times[b1] != 60 {
		t.Fatalf("want earliest 60, got %v", times[b1])
	}
}
