package p2p

import (
	"fmt"
	"math/bits"
	"testing"

	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/types"
)

// cacheLen reports how many bodies node n can still serve.
func cacheLen(n *Node) int { return len(n.net.cacheQ[n.idx()]) }

// cacheHas reports whether node n can still serve the body for h.
func cacheHas(n *Node, h types.Hash) bool {
	_, ok := n.cachedBlock(h)
	return ok
}

// haveCount counts node n's dedup bits across all interned blocks.
func haveCount(n *Node) int {
	g := &n.net.haveBits
	i := n.idx()
	if i >= g.rows {
		return 0
	}
	c := 0
	for _, w := range g.words[i*g.stride : (i+1)*g.stride] {
		c += bits.OnesCount64(w)
	}
	return c
}

// TestBlockCacheBounded relays far more blocks than blockCacheCap and
// verifies the body cache stays bounded while the dedup ground truth
// (haveBlocks) keeps every hash.
func TestBlockCacheBounded(t *testing.T) {
	net := zeroLatencyNetwork(t, 3)
	a := addNode(t, net, geo.WesternEurope, 0)
	b := addNode(t, net, geo.WesternEurope, 0)
	if err := net.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	total := blockCacheCap + 200
	for i := 0; i < total; i++ {
		a.InjectBlock(sim.Time(i), testBlock(uint64(i+1), "Ethermine"))
		net.Engine().Run()
	}
	if cacheLen(a) > blockCacheCap {
		t.Fatalf("body cache grew to %d entries (cap %d)", cacheLen(a), blockCacheCap)
	}
	if haveCount(a) != total {
		t.Fatalf("dedup bits cover %d hashes, want %d", haveCount(a), total)
	}
	// Eviction is FIFO: the most recent blocks are still servable, the
	// oldest are not — but both still count as known (no re-relay).
	newest := testBlock(uint64(total), "Ethermine").Hash()
	if !cacheHas(a, newest) {
		t.Fatal("newest block evicted from body cache")
	}
	oldest := testBlock(1, "Ethermine").Hash()
	if cacheHas(a, oldest) {
		t.Fatal("oldest block survived past the cap")
	}
	if !a.KnowsBlock(oldest) {
		t.Fatal("evicted block must still be known (dedup)")
	}
}

// TestBlockCacheEvictionOrder pins the body cache's exact boundary
// and order semantics: inserting precisely blockCacheCap blocks evicts
// nothing (eviction is past-capacity, not on-insert), the cap+1-th
// insert evicts exactly the oldest entry, and continued inserts evict
// in strict FIFO insertion order.
func TestBlockCacheEvictionOrder(t *testing.T) {
	net := zeroLatencyNetwork(t, 7)
	a := addNode(t, net, geo.WesternEurope, 0)
	hashAt := func(i int) types.Hash { return testBlock(uint64(i+1), "Ethermine").Hash() }

	// Fill to exactly the cap: every body must still be servable.
	for i := 0; i < blockCacheCap; i++ {
		a.rememberBlock(hashAt(i), testBlock(uint64(i+1), "Ethermine"))
	}
	if cacheLen(a) != blockCacheCap {
		t.Fatalf("cache holds %d bodies at exactly cap inserts, want %d (on-insert eviction off-by-one)",
			cacheLen(a), blockCacheCap)
	}
	if !cacheHas(a, hashAt(0)) {
		t.Fatal("oldest body evicted at exactly cap inserts (on-insert eviction off-by-one)")
	}

	// One past the cap evicts exactly the first insert, nothing else.
	a.rememberBlock(hashAt(blockCacheCap), testBlock(uint64(blockCacheCap+1), "Ethermine"))
	if cacheLen(a) != blockCacheCap {
		t.Fatalf("cache holds %d bodies past cap, want %d", cacheLen(a), blockCacheCap)
	}
	if cacheHas(a, hashAt(0)) {
		t.Fatal("first insert survived the cap+1-th insert")
	}
	if !cacheHas(a, hashAt(1)) {
		t.Fatal("second insert evicted out of FIFO order")
	}

	// Continued inserts walk the eviction boundary in insertion order:
	// after cap+k inserts exactly the first k are gone.
	const extra = 37
	for i := 1; i < extra; i++ {
		a.rememberBlock(hashAt(blockCacheCap+i), testBlock(uint64(blockCacheCap+i+1), "Ethermine"))
	}
	for i := 0; i < extra; i++ {
		if cacheHas(a, hashAt(i)) {
			t.Fatalf("insert %d survived past its FIFO eviction point", i)
		}
		if !a.KnowsBlock(hashAt(i)) {
			t.Fatalf("evicted insert %d lost its dedup entry", i)
		}
	}
	for i := extra; i < extra+5; i++ {
		if !cacheHas(a, hashAt(i)) {
			t.Fatalf("insert %d evicted early (non-FIFO order)", i)
		}
	}
	// The queue mirrors the cache exactly.
	if cacheLen(a) != blockCacheCap {
		t.Fatalf("eviction queue length %d, want %d", cacheLen(a), blockCacheCap)
	}
	headIdx, ok := net.blockIdx.lookup(hashAt(extra))
	if !ok || net.cacheQ[a.idx()][0] != headIdx {
		t.Fatal("eviction queue head is not the oldest retained insert")
	}
}

// TestMessagePoolReuse drives repeated dissemination and checks the
// network recycles message structs instead of growing the pool per
// send.
func TestMessagePoolReuse(t *testing.T) {
	net := zeroLatencyNetwork(t, 4)
	nodes := make([]*Node, 8)
	for i := range nodes {
		nodes[i] = addNode(t, net, geo.WesternEurope, 0)
	}
	for i := 1; i < len(nodes); i++ {
		if err := net.Connect(nodes[0], nodes[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		nodes[0].InjectBlock(sim.Time(i*1000), testBlock(uint64(i+1), "F2Pool"))
		net.Engine().Run()
	}
	// All in-flight messages were delivered and released; the free
	// pool now holds every message ever allocated.
	allocated := len(net.msgFree)
	if allocated == 0 {
		t.Fatal("no pooled messages after 50 dissemination rounds")
	}
	if uint64(allocated) == net.MessagesSent {
		t.Fatalf("pool holds %d messages for %d sends: no reuse happened",
			allocated, net.MessagesSent)
	}
	if len(net.delivFree) != len(net.deliv) {
		t.Fatalf("delivery slab leak: %d slots, %d free", len(net.deliv), len(net.delivFree))
	}
	if len(net.annFree) != len(net.ann) {
		t.Fatalf("announce slab leak: %d slots, %d free", len(net.ann), len(net.annFree))
	}
}

// TestPooledMessagePayloadIntegrity checks that recycled announcement
// messages carry the right hash even when many are in flight at once
// (the inline hash1 buffer must be per-message, not shared).
func TestPooledMessagePayloadIntegrity(t *testing.T) {
	net := zeroLatencyNetwork(t, 5)
	hub := addNode(t, net, geo.WesternEurope, 0)
	var leaves []*Node
	for i := 0; i < 30; i++ {
		n := addNode(t, net, geo.WesternEurope, 0)
		if err := net.Connect(hub, n); err != nil {
			t.Fatal(err)
		}
		leaves = append(leaves, n)
	}
	want := map[types.Hash]bool{}
	seen := map[types.Hash]int{}
	for _, n := range leaves {
		n.SetObserver(func(_ sim.Time, _ NodeID, msg *Message) {
			if msg.Kind == MsgNewBlockHashes {
				for _, h := range msg.Hashes {
					seen[h]++
				}
			}
		})
	}
	for i := 0; i < 10; i++ {
		blk := testBlock(uint64(i+1), fmt.Sprintf("Pool%d", i))
		want[blk.Hash()] = true
		hub.InjectBlock(sim.Time(i), blk)
	}
	net.Engine().Run()
	for h, n := range seen {
		if !want[h] {
			t.Fatalf("announcement carried unknown hash %v (%d times) — pooled payload corrupted", h, n)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no announcements observed")
	}
}
