package p2p

import (
	"errors"
	"testing"

	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/types"
)

func newTestNetwork(t *testing.T, seed uint64) *Network {
	t.Helper()
	engine := sim.NewEngine()
	rng := sim.NewRNG(seed)
	return NewNetwork(engine, rng, geo.DefaultLatencyModel())
}

func addNode(t *testing.T, net *Network, r geo.Region, maxPeers int) *Node {
	t.Helper()
	n, err := net.AddNode(r, maxPeers)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func testBlock(n uint64, label string) *types.Block {
	return types.NewBlock(types.Header{
		ParentHash: types.HashBytes([]byte("parent")),
		Number:     n,
		Miner:      types.AddressFromString(label),
		MinerLabel: label,
		Difficulty: 1000,
		GasLimit:   8_000_000,
	}, nil, nil)
}

func testTx(nonce uint64) *types.Transaction {
	return &types.Transaction{
		Sender: types.AddressFromString("sender"),
		To:     types.AddressFromString("sink"),
		Nonce:  nonce, GasPrice: 1, Gas: types.TxGas,
	}
}

func TestAddNodeValidation(t *testing.T) {
	net := newTestNetwork(t, 1)
	if _, err := net.AddNode(geo.Region(0), 0); err == nil {
		t.Fatal("invalid region must error")
	}
	n := addNode(t, net, geo.NorthAmerica, 25)
	if n.Region() != geo.NorthAmerica || n.ID() == 0 {
		t.Fatal("node fields wrong")
	}
	if net.Len() != 1 {
		t.Fatal("len wrong")
	}
	if _, err := net.Node(n.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Node(999); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown node: %v", err)
	}
}

func TestConnectRules(t *testing.T) {
	net := newTestNetwork(t, 2)
	a := addNode(t, net, geo.NorthAmerica, 1)
	b := addNode(t, net, geo.EasternAsia, 0)
	c := addNode(t, net, geo.WesternEurope, 0)
	if err := net.Connect(a, a); !errors.Is(err, ErrSelfDial) {
		t.Fatalf("self dial: %v", err)
	}
	if err := net.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := net.Connect(b, a); err != nil {
		t.Fatal(err)
	}
	if a.PeerCount() != 1 || b.PeerCount() != 1 {
		t.Fatalf("peer counts: %d %d", a.PeerCount(), b.PeerCount())
	}
	// a is at its limit of 1.
	if err := net.Connect(a, c); err == nil {
		t.Fatal("over-limit connect must error")
	}
	if err := net.Connect(nil, c); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("nil connect: %v", err)
	}
}

func TestWireRandomDegree(t *testing.T) {
	net := newTestNetwork(t, 3)
	for i := 0; i < 200; i++ {
		addNode(t, net, geo.NorthAmerica, 0)
	}
	if err := net.WireRandom(8); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range net.Nodes() {
		if n.PeerCount() < 8 {
			t.Fatalf("node %d underconnected: %d", n.ID(), n.PeerCount())
		}
		total += n.PeerCount()
	}
	mean := float64(total) / 200
	if mean < 14 || mean > 18 {
		t.Fatalf("mean degree ~16 expected, got %v", mean)
	}
	if err := net.WireRandom(0); err == nil {
		t.Fatal("degree 0 must error")
	}
}

func TestWireRandomSmall(t *testing.T) {
	net := newTestNetwork(t, 4)
	addNode(t, net, geo.NorthAmerica, 0)
	if err := net.WireRandom(3); err != nil {
		t.Fatal("single node wiring should be a no-op")
	}
}

func TestConnectSample(t *testing.T) {
	net := newTestNetwork(t, 5)
	for i := 0; i < 50; i++ {
		addNode(t, net, geo.CentralEurope, 0)
	}
	m := addNode(t, net, geo.WesternEurope, 0)
	if err := net.ConnectSample(m, 25); err != nil {
		t.Fatal(err)
	}
	if m.PeerCount() != 25 {
		t.Fatalf("peer count: %d", m.PeerCount())
	}
	if err := net.ConnectSample(nil, 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("nil sample: %v", err)
	}
}

func TestBlockFloodsNetwork(t *testing.T) {
	net := newTestNetwork(t, 6)
	for i := 0; i < 100; i++ {
		addNode(t, net, geo.NorthAmerica, 0)
	}
	if err := net.WireRandom(6); err != nil {
		t.Fatal(err)
	}
	origin := net.Nodes()[0]
	b := testBlock(1, "Ethermine")
	origin.InjectBlock(0, b)
	net.Engine().Run()
	for _, n := range net.Nodes() {
		if !n.KnowsBlock(b.Hash()) {
			t.Fatalf("node %d never received the block", n.ID())
		}
	}
	if net.MessagesSent == 0 || net.BytesSent == 0 {
		t.Fatal("transport counters not advancing")
	}
}

func TestBlockPropagationDelayReasonable(t *testing.T) {
	// With realistic latencies a 500-node flood should complete well
	// under the 13.3 s inter-block time: the paper's core network
	//-efficiency finding (§III-A).
	net := newTestNetwork(t, 7)
	placement, err := geo.PlaceNodes(500, geo.DefaultNodeShare)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range placement {
		addNode(t, net, r, 0)
	}
	if err := net.WireRandom(8); err != nil {
		t.Fatal(err)
	}
	var last sim.Time
	count := 0
	b := testBlock(1, "Ethermine")
	for _, n := range net.Nodes() {
		n.SetObserver(func(now sim.Time, _ NodeID, msg *Message) {
			if msg.Kind == MsgNewBlock && msg.Block.Hash() == b.Hash() {
				if now > last {
					last = now
				}
				count++
			}
		})
	}
	net.Nodes()[0].InjectBlock(0, b)
	net.Engine().Run()
	if last == 0 {
		t.Fatal("no receptions observed")
	}
	if last > 5*sim.Second {
		t.Fatalf("network too slow: last reception at %v", last)
	}
}

func TestAnnouncementPullPath(t *testing.T) {
	// A node receiving only an announcement must fetch the block.
	net := newTestNetwork(t, 8)
	a := addNode(t, net, geo.NorthAmerica, 0)
	// Enough peers that sqrt(n) < n, guaranteeing some announcements.
	others := make([]*Node, 9)
	for i := range others {
		others[i] = addNode(t, net, geo.NorthAmerica, 0)
		if err := net.Connect(a, others[i]); err != nil {
			t.Fatal(err)
		}
	}
	sawAnnouncement := false
	sawGet := false
	for _, o := range others {
		o.SetObserver(func(_ sim.Time, _ NodeID, msg *Message) {
			if msg.Kind == MsgNewBlockHashes {
				sawAnnouncement = true
			}
		})
	}
	a.SetObserver(func(_ sim.Time, _ NodeID, msg *Message) {
		if msg.Kind == MsgGetBlock {
			sawGet = true
		}
	})
	b := testBlock(1, "Sparkpool")
	a.InjectBlock(0, b)
	net.Engine().Run()
	if !sawAnnouncement {
		t.Fatal("no announcements sent (sqrt rule broken)")
	}
	if !sawGet {
		t.Fatal("announcement never triggered a pull")
	}
	for _, o := range others {
		if !o.KnowsBlock(b.Hash()) {
			t.Fatalf("node %d missing block after pull", o.ID())
		}
	}
}

func TestDuplicateBlockNotReprocessed(t *testing.T) {
	net := newTestNetwork(t, 9)
	a := addNode(t, net, geo.NorthAmerica, 0)
	b := addNode(t, net, geo.NorthAmerica, 0)
	if err := net.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	blk := testBlock(1, "F2pool2")
	a.InjectBlock(0, blk)
	a.InjectBlock(0, blk) // second injection is a no-op
	net.Engine().Run()
	// b receives the block exactly once via push (a has one peer =>
	// sqrt(1)=1 push, no announcements).
	if !b.KnowsBlock(blk.Hash()) {
		t.Fatal("b missing block")
	}
}

func TestTxGossipReachesAll(t *testing.T) {
	net := newTestNetwork(t, 10)
	for i := 0; i < 60; i++ {
		addNode(t, net, geo.WesternEurope, 0)
	}
	if err := net.WireRandom(5); err != nil {
		t.Fatal(err)
	}
	tx := testTx(0)
	received := make(map[NodeID]bool)
	for _, n := range net.Nodes() {
		id := n.ID()
		n.SetObserver(func(_ sim.Time, _ NodeID, msg *Message) {
			if msg.Kind == MsgTransactions {
				received[id] = true
			}
		})
	}
	net.Nodes()[0].InjectTx(0, tx)
	net.Engine().Run()
	if len(received) < 59 {
		t.Fatalf("tx reached only %d nodes", len(received))
	}
}

func TestMessageSizes(t *testing.T) {
	blk := testBlock(1, "Ethermine")
	m := &Message{Kind: MsgNewBlock, Block: blk}
	if m.Size() <= blk.EncodedSize() {
		t.Fatal("block message must include overhead")
	}
	ann := &Message{Kind: MsgNewBlockHashes, Hashes: []types.Hash{blk.Hash()}}
	if ann.Size() >= m.Size() {
		t.Fatal("announcement must be smaller than full block")
	}
	get := &Message{Kind: MsgGetBlock, Want: blk.Hash()}
	if get.Size() <= 0 {
		t.Fatal("get size")
	}
	txm := &Message{Kind: MsgTransactions, Txs: []*types.Transaction{testTx(0), testTx(1)}}
	single := &Message{Kind: MsgTransactions, Txs: []*types.Transaction{testTx(0)}}
	if txm.Size() <= single.Size() {
		t.Fatal("tx batch size must grow")
	}
	if (&Message{Kind: MsgNewBlock}).Size() <= 0 {
		t.Fatal("nil block message still has frame size")
	}
	if (&Message{Kind: MsgKind(99)}).Size() <= 0 {
		t.Fatal("unknown kind still has frame size")
	}
}

func TestMsgKindString(t *testing.T) {
	kinds := map[MsgKind]string{
		MsgNewBlock:       "NewBlock",
		MsgNewBlockHashes: "NewBlockHashes",
		MsgGetBlock:       "GetBlock",
		MsgTransactions:   "Transactions",
		MsgKind(0):        "Unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d: %q", k, k.String())
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, uint64) {
		net := newTestNetwork(t, 42)
		placement, err := geo.PlaceNodes(120, geo.DefaultNodeShare)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range placement {
			addNode(t, net, r, 0)
		}
		if err := net.WireRandom(6); err != nil {
			t.Fatal(err)
		}
		net.Nodes()[3].InjectBlock(0, testBlock(1, "Nanopool"))
		net.Engine().Run()
		return net.MessagesSent, net.BytesSent
	}
	m1, b1 := run()
	m2, b2 := run()
	if m1 != m2 || b1 != b2 {
		t.Fatalf("replay diverged: (%d,%d) vs (%d,%d)", m1, b1, m2, b2)
	}
}
