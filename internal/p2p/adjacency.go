package p2p

// CSR-style adjacency for the struct-of-arrays node core.
//
// All peer lists live in one shared arena: node i owns the contiguous
// window adj[spans[i].off : spans[i].off+spans[i].len], in dial order
// (the exact order the old per-node []*Node peer slices kept, so every
// fan-out permutation and candidate scan draws identically). Two
// parallel arenas ride on the same edge indexing:
//
//   - revAdj[e] is the *position* (not offset) of the reverse edge in
//     the target's span. Positions survive span relocation, so only
//     in-span shifts (Disconnect, CrashNode) need fixups — and each
//     fixup is O(1) because the reverse edge tells us where to look.
//     Sends capture revAdj so the receiver can mark per-peer knowledge
//     without scanning its span (measurement nodes hold thousands of
//     peers).
//   - knowMask[e] is the per-directed-edge suppression word: bit s set
//     means the peer on this edge is known to have the block in window
//     slot s of the owning node's recent-block window (see know.go).
//
// Growth is the mutable overflow path churn and rewiring need: a full
// span relocates to the arena tail with doubled capacity. Relocation
// leaves the old window dead, bounding arena garbage at roughly the
// live edge count; campaigns wire once and churn lightly, so the arena
// stays compact in practice.

// span is one node's window into the adjacency arena.
type span struct {
	off, len, cap int32
}

// adjacency is the network-owned CSR peer table.
type adjacency struct {
	spans    []span
	adj      []int32  // peer node indices (NodeID-1)
	revAdj   []int32  // position of the reverse edge in the peer's span
	knowMask []uint64 // per-edge recent-window suppression bits
}

const adjInitialCap = 8

// addNode appends an empty span for a freshly registered node.
func (t *adjacency) addNode() {
	t.spans = append(t.spans, span{})
}

// degree returns node i's current connection count.
func (t *adjacency) degree(i int32) int { return int(t.spans[i].len) }

// peerAt returns the peer index at position p of node i's span.
func (t *adjacency) peerAt(i int32, p int32) int32 {
	return t.adj[t.spans[i].off+p]
}

// position scans node i's span for peer j, returning its position or
// -1. O(degree); hot paths avoid it by carrying positions (fromPos on
// deliveries, revAdj on sends).
func (t *adjacency) position(i, j int32) int32 {
	s := t.spans[i]
	base := t.adj[s.off : s.off+s.len : s.off+s.len]
	for p := range base {
		if base[p] == j {
			return int32(p)
		}
	}
	return -1
}

// connected reports whether i and j share an edge, scanning the
// shorter span so attaching a huge-degree node stays cheap.
func (t *adjacency) connected(i, j int32) bool {
	if t.spans[j].len < t.spans[i].len {
		i, j = j, i
	}
	return t.position(i, j) >= 0
}

// grow relocates node i's span to the arena tail with at least double
// the capacity, copying edges, reverse positions and suppression masks.
func (t *adjacency) grow(i int32) {
	s := t.spans[i]
	newCap := s.cap * 2
	if newCap < adjInitialCap {
		newCap = adjInitialCap
	}
	newOff := int32(len(t.adj))
	t.adj = append(t.adj, make([]int32, newCap)...)
	t.revAdj = append(t.revAdj, make([]int32, newCap)...)
	t.knowMask = append(t.knowMask, make([]uint64, newCap)...)
	copy(t.adj[newOff:newOff+s.len], t.adj[s.off:s.off+s.len])
	copy(t.revAdj[newOff:newOff+s.len], t.revAdj[s.off:s.off+s.len])
	copy(t.knowMask[newOff:newOff+s.len], t.knowMask[s.off:s.off+s.len])
	t.spans[i] = span{off: newOff, len: s.len, cap: newCap}
}

// link appends the undirected edge i<->j, wiring both reverse
// positions. The caller has already checked limits and duplicates.
func (t *adjacency) link(i, j int32) {
	if t.spans[i].len == t.spans[i].cap {
		t.grow(i)
	}
	if t.spans[j].len == t.spans[j].cap {
		t.grow(j)
	}
	si, sj := &t.spans[i], &t.spans[j]
	ei := si.off + si.len
	ej := sj.off + sj.len
	t.adj[ei] = j
	t.adj[ej] = i
	t.revAdj[ei] = sj.len
	t.revAdj[ej] = si.len
	t.knowMask[ei] = 0
	t.knowMask[ej] = 0
	si.len++
	sj.len++
}

// removeAt deletes the edge at position p of node i's span,
// shifting later entries left (order-preserving, so surviving peer
// iteration stays deterministic) and repairing the reverse positions
// of every shifted edge. Returns the suppression mask the removed edge
// held, so the caller can preserve its knowledge (spill list).
func (t *adjacency) removeAt(i int32, p int32) uint64 {
	s := &t.spans[i]
	e := s.off + p
	mask := t.knowMask[e]
	for q := p + 1; q < s.len; q++ {
		from := s.off + q
		to := from - 1
		peer := t.adj[from]
		t.adj[to] = peer
		t.revAdj[to] = t.revAdj[from]
		t.knowMask[to] = t.knowMask[from]
		// The reverse edge stored position q for us; it is now q-1.
		t.revAdj[t.spans[peer].off+t.revAdj[from]] = q - 1
	}
	s.len--
	return mask
}

// unlink removes the undirected edge between i and j, returning the
// two suppression masks (i's view of j, j's view of i). ok reports
// whether the edge existed.
func (t *adjacency) unlink(i, j int32) (maskI, maskJ uint64, ok bool) {
	pi := t.position(i, j)
	if pi < 0 {
		return 0, 0, false
	}
	pj := t.revAdj[t.spans[i].off+pi]
	maskJ = t.removeAt(j, pj)
	maskI = t.removeAt(i, pi)
	return maskI, maskJ, true
}
