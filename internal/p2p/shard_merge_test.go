package p2p

import (
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/p2p/relay"
	"repro/internal/sim"
)

// shardedPair builds a minimal sharded network: one node in each of
// two regions, sharding enabled, no traffic yet.
func shardedPair(t *testing.T) (*Network, *Node, *Node) {
	t.Helper()
	cond := sim.NewConductor(geo.NumRegions)
	rng := sim.NewRNG(11)
	net := NewNetwork(cond.Global(), rng.Fork("network"), geo.DefaultLatencyModel())
	net.SetRelay(relay.MustNew(relay.Config{Mode: relay.SqrtPush}))
	a := addNode(t, net, geo.NorthAmerica, 0)
	b := addNode(t, net, geo.EasternAsia, 0)
	if err := net.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	net.EnableSharding(cond, func() relay.Protocol {
		return relay.MustNew(relay.Config{Mode: relay.SqrtPush})
	})
	return net, a, b
}

// TestMergeCrossBackdatePanics pins the merge's time-discipline
// assertion: a cross-lane message whose arrival is at or before the
// destination lane's clock must panic loudly instead of being clamped
// to "now" by the engine (which would silently reorder it after
// same-time events that already ran). This is the regression test for
// the conductor deadline bug where multi-hop causal chains let a
// lane's clock outrun future arrivals.
func TestMergeCrossBackdatePanics(t *testing.T) {
	net, a, b := shardedPair(t)
	src := net.sh.lanes[net.regions[a.idx()]]
	dst := net.sh.lanes[net.regions[b.idx()]]

	// Advance the destination lane's clock past the manufactured
	// arrival time, as a buggy deadline computation would.
	dst.engine.RunUntil(100)

	m := net.newMessage(a.idx(), MsgNewBlock)
	src.cross = append(src.cross, crossMsg{at: 100, to: b, from: a.ID(), msg: m, size: 64, srcPos: -1})

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("mergeCross accepted a back-dated cross-lane message")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "back-dates") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	net.mergeCross()
}

// TestMergeCrossFutureArrivalOK is the control: an arrival strictly
// after the destination lane's clock merges cleanly.
func TestMergeCrossFutureArrivalOK(t *testing.T) {
	net, a, b := shardedPair(t)
	src := net.sh.lanes[net.regions[a.idx()]]
	dst := net.sh.lanes[net.regions[b.idx()]]
	dst.engine.RunUntil(100)

	m := net.newMessage(a.idx(), MsgNewBlock)
	src.cross = append(src.cross, crossMsg{at: 101, to: b, from: a.ID(), msg: m, size: 64, srcPos: -1})
	if got := net.mergeCross(); got != 1 {
		t.Fatalf("mergeCross merged %d messages, want 1", got)
	}
	if len(src.cross) != 0 {
		t.Fatal("cross buffer not drained")
	}
}
