package p2p

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/p2p/relay"
	"repro/internal/sim"
	"repro/internal/types"
)

// Sharded transport: one netLane per geographic region, each bound to
// a region lane of a sim.Conductor. The lane decomposition is fixed by
// the region enum — never by worker count — so every lane's event
// schedule and RNG stream is identical at any shard setting, which is
// what makes sharded artifacts byte-identical across shard counts.
//
// Ownership rules (the whole memory model):
//
//   - Per-node state (bit rows, caches, suppression windows, traffic
//     counters) is only ever written by the lane owning that node's
//     region, or by the global lane while every region engine is idle
//     (phase A). Shared arenas that grow by reallocation — the bit
//     grids and the block-body table — are presized after each phase A
//     (presizeArenas), so phase B only writes in place.
//   - Anything a lane shares with other lanes is lane-local here:
//     message/delivery/announce pools, fan-out scratch, RNG, relay
//     protocol instance, and the transport counters, which fold into
//     the Network's public fields at FinishSharded.
//   - A send whose destination lives in another lane NEVER touches the
//     destination lane: it is buffered as a crossMsg and drained by
//     mergeCross at the next conductor merge point, single-threaded,
//     ordered on the destination engine by (arrival, source lane,
//     lifetime emission number) via the engine's ordered tie band.
type shardState struct {
	cond *sim.Conductor
	// lanes is indexed by geo.Region (1-based; slot 0 unused).
	lanes [geo.NumRegions + 1]*netLane
	// all is the dense region-ordered view for iteration.
	all []*netLane
}

// netLane is one region's private transport state: its engine, RNG
// stream, relay protocol instance, pools and counters. It implements
// sim.Handler for the region's deliveries and announce waves.
type netLane struct {
	net    *Network
	region geo.Region
	engine *sim.Engine
	rng    *sim.RNG

	// Per-lane relay protocol instance: protocols are stateless beyond
	// their counters, so per-lane instances produce identical behavior
	// while keeping counter writes lane-local (folded at finish).
	proto   relay.Protocol
	compact relay.CompactHandler
	env     relayEnv

	// Lane-local halves of the Network transport counters.
	msgsSent   uint64
	bytesSent  uint64
	dropped    uint64
	classMsgs  [msgKindCount]uint64
	classBytes [msgKindCount]uint64

	// Lane-local pools and scratch, mirroring the Network's.
	msgFree   []*Message
	deliv     []delivery
	delivFree []int32
	ann       []announce
	annFree   []int32
	candBuf   []int32
	orderBuf  []int

	// cross buffers this lane's sends to other lanes until the next
	// merge, each stamped with the lane-lifetime emission number that
	// becomes its equal-time tie key on the destination engine.
	cross []crossMsg

	// emitSeq counts this lane's cross-lane sends over the whole run.
	// It never resets at merges: a per-batch index would make equal-time
	// ties between messages merged in different rounds depend on where
	// the window boundaries fell, i.e. on the lookahead bound matrix.
	emitSeq uint64
}

// crossMsg is one buffered cross-lane delivery, carrying everything
// the destination lane needs to schedule it.
type crossMsg struct {
	at     sim.Time
	to     *Node
	from   NodeID
	msg    *Message
	size   int32
	srcPos int32
	seq    uint64 // source lane's lifetime emission number
}

// EnableSharding partitions the transport across the conductor's
// region lanes. newProto constructs one relay protocol instance per
// lane (same configuration as the network's primary — per-lane
// counters fold back into the primary at FinishSharded). Call it after
// the overlay is built and before the run starts; per-lane RNG streams
// fork from the network RNG here, after all wiring draws.
func (net *Network) EnableSharding(cond *sim.Conductor, newProto func() relay.Protocol) {
	if cond.Regions() != geo.NumRegions {
		panic("p2p: conductor must have one lane per region")
	}
	sh := &shardState{cond: cond}
	for r := geo.Region(1); r <= geo.NumRegions; r++ {
		ln := &netLane{
			net:    net,
			region: r,
			engine: cond.Lane(int(r) - 1),
			rng:    net.rng.Fork("lane-" + r.String()),
		}
		ln.proto = newProto()
		ln.compact, _ = ln.proto.(relay.CompactHandler)
		ln.env = relayEnv{net: net, lane: ln, fromIdx: -1, fromPos: -1}
		sh.lanes[r] = ln
		sh.all = append(sh.all, ln)
	}
	net.sh = sh
	cond.Merge = net.mergeCross
	cond.AfterGlobal = net.presizeArenas
}

// laneOf returns the lane owning node index i, nil when unsharded.
func (net *Network) laneOf(i int32) *netLane {
	if net.sh == nil {
		return nil
	}
	return net.sh.lanes[net.regions[i]]
}

// protoFor returns the relay protocol instance serving node i's lane.
func (net *Network) protoFor(i int32) relay.Protocol {
	if ln := net.laneOf(i); ln != nil {
		return ln.proto
	}
	return net.relayProto
}

// compactFor returns the compact handler serving node i's lane (nil
// when the discipline does not speak the compact family).
func (net *Network) compactFor(i int32) relay.CompactHandler {
	if ln := net.laneOf(i); ln != nil {
		return ln.compact
	}
	return net.relayCompact
}

// acquireDeliv takes a delivery slot from the lane pool.
func (ln *netLane) acquireDeliv() int32 {
	if n := len(ln.delivFree); n > 0 {
		idx := ln.delivFree[n-1]
		ln.delivFree = ln.delivFree[:n-1]
		return idx
	}
	ln.deliv = append(ln.deliv, delivery{})
	return int32(len(ln.deliv) - 1)
}

// HandleEvent implements sim.Handler for the lane's engine: the same
// two typed event kinds as the unsharded Network, against lane-local
// slots, pools and counters.
func (ln *netLane) HandleEvent(now sim.Time, op, idx uint64) {
	net := ln.net
	switch op {
	case opDeliver:
		d := ln.deliv[idx]
		ln.deliv[idx] = delivery{}
		ln.delivFree = append(ln.delivFree, int32(idx))
		ti := d.to.idx()
		if net.down[ti] {
			ln.dropped++
			net.releaseMessageIn(ln, d.msg)
			return
		}
		net.msgsIn[ti]++
		net.bytesIn[ti] += uint64(d.size)
		d.to.handle(now, d.from, d.srcPos, d.msg)
		net.releaseMessageIn(ln, d.msg)
	case opAnnounce:
		a := ln.ann[idx]
		ln.ann[idx] = announce{}
		ln.annFree = append(ln.annFree, int32(idx))
		if net.down[a.node.idx()] {
			return
		}
		ln.proto.OnWave(net.envFor(a.node, now), now, a.hash, a.origin)
	}
}

// EventName implements sim.EventNamer for lane events.
func (ln *netLane) EventName(op uint64) string {
	switch op {
	case opDeliver:
		return "p2p.deliver"
	case opAnnounce:
		return "p2p.announce"
	default:
		return "p2p.unknown"
	}
}

// presizeArenas is the conductor's AfterGlobal hook: it grows the
// shared bit grids and the block-body table to cover every node and
// every item interned so far, so phase B lanes never trigger a
// concurrent reallocation. New items only enter through phase A
// (mining and workload injection); phase B interning always hits.
func (net *Network) presizeArenas() {
	rows := int32(net.nextID)
	net.haveBits.presize(rows, net.blockIdx.n)
	net.seenBits.presize(rows, net.blockIdx.n)
	net.cachedBits.presize(rows, net.blockIdx.n)
	net.txBits.presize(rows, net.txIdx.n)
	for int(net.blockIdx.n) > len(net.blockBody) {
		net.blockBody = append(net.blockBody, nil)
	}
}

// mergeCross is the conductor's Merge hook: it drains every lane's
// cross buffer into the destination lanes' delivery queues. All lanes
// are idle when it runs, so acquiring destination slots here is
// single-threaded. Equal-time ordering on the destination engine comes
// from the (source lane, lifetime emission number) tie key, a pure
// function of each source lane's own execution — never of worker
// interleaving, merge-batch composition, or the lookahead bound
// matrix. Two sharded runs that differ only in window sizing therefore
// build byte-identical destination schedules.
func (net *Network) mergeCross() int {
	sh := net.sh
	sh.levelMsgPools()
	n := 0
	for l, ln := range sh.all {
		for k := range ln.cross {
			cm := &ln.cross[k]
			dl := sh.lanes[net.regions[cm.to.idx()]]
			// Lookahead invariant: a cross-lane arrival is strictly in
			// the destination lane's future — send guarantees delay >=
			// the pair floor, and the conductor never ran the
			// destination past next(src) + bound - 1. A merge at or
			// before the lane clock would silently back-date the event
			// (the engine would clamp it to "now", reordering it after
			// same-time events that already ran), so corrupt time
			// discipline is a panic, not a skew.
			if now := dl.engine.Now(); cm.at <= now {
				panic(fmt.Sprintf("p2p: cross-lane merge back-dates event: arrival %d <= lane %v clock %d",
					cm.at, dl.region, now))
			}
			idx := dl.acquireDeliv()
			dl.deliv[idx] = delivery{to: cm.to, from: cm.from, msg: cm.msg, size: cm.size, srcPos: cm.srcPos}
			dl.engine.ScheduleCallAtOrdered(cm.at, dl, opDeliver, uint64(idx), uint64(l)<<48|cm.seq)
			n++
		}
		// Zero drained entries so the backing array retains no payloads.
		for k := range ln.cross {
			ln.cross[k] = crossMsg{}
		}
		ln.cross = ln.cross[:0]
	}
	return n
}

// levelMsgPools evens the lane message free lists out to the mean.
// A cross-lane delivery releases its message into the destination
// lane's pool, so under asymmetric flows (one region originating most
// blocks) the exporter lanes' free lists drain while the importers'
// grow without bound — every exporter send then allocates a fresh
// Message, which is where sharded runs used to pay ~3× the unsharded
// allocation rate. All lanes are idle at the merge point, so moving
// free messages between pools here is race-free; released messages
// are fully zeroed and interchangeable, so which pool a send draws
// from never affects simulation behavior or artifacts. The skim per
// merge is bounded by the cross flow since the previous merge.
func (sh *shardState) levelMsgPools() {
	total := 0
	for _, ln := range sh.all {
		total += len(ln.msgFree)
	}
	target := total / len(sh.all)
	d := 0
	for _, ln := range sh.all {
		need := target - len(ln.msgFree)
		for need > 0 {
			donor := sh.all[d]
			excess := len(donor.msgFree) - target
			if excess <= 0 {
				d++
				continue
			}
			k := min(excess, need)
			n := len(donor.msgFree)
			ln.msgFree = append(ln.msgFree, donor.msgFree[n-k:]...)
			for j := n - k; j < n; j++ {
				donor.msgFree[j] = nil
			}
			donor.msgFree = donor.msgFree[:n-k]
			need -= k
		}
	}
}

// FinishSharded folds every lane's transport and protocol counters
// into the Network's public fields and the primary relay protocol's
// counters, restoring the unsharded accounting surface (ClassTotals,
// MessagesSent, Relay().Counters()) after a sharded run. Call it once,
// after the conductor drains.
func (net *Network) FinishSharded() {
	if net.sh == nil {
		return
	}
	pc := net.relayProto.Counters()
	for _, ln := range net.sh.all {
		net.MessagesSent += ln.msgsSent
		net.BytesSent += ln.bytesSent
		net.MessagesDropped += ln.dropped
		for k := range ln.classMsgs {
			net.classMsgs[k] += ln.classMsgs[k]
			net.classBytes[k] += ln.classBytes[k]
		}
		lc := ln.proto.Counters()
		pc.SketchesSent += lc.SketchesSent
		pc.SketchesReceived += lc.SketchesReceived
		pc.ReconstructFull += lc.ReconstructFull
		pc.ReconstructPartial += lc.ReconstructPartial
		pc.ReconstructFallback += lc.ReconstructFallback
		pc.MissingTxs += lc.MissingTxs
		pc.MissingTxBytes += lc.MissingTxBytes
	}
}

// presize grows the grid to cover rows×cols without setting any bit,
// so concurrent in-range set/get/clear calls never reallocate.
func (g *bitGrid) presize(rows, cols int32) {
	if cols > 0 {
		if w := (cols-1)>>6 + 1; w > g.stride {
			g.growStride(w)
		}
	}
	if rows > g.rows {
		g.growRows(rows)
	}
}

// Sharded reports whether the transport is running in sharded mode.
func (net *Network) Sharded() bool { return net.sh != nil }

// precomputeSizes forces a block's lazily cached derived values (hash,
// encoded sizes) while single-threaded. Injection paths call it so
// phase-B lanes only ever read the caches concurrently.
func precomputeSizes(b *types.Block) {
	_ = b.Hash()
	_ = b.EncodedSize()
	_ = b.TxsSize()
	for _, tx := range b.Txs {
		_ = tx.Hash()
		_ = tx.EncodedSize()
	}
}
