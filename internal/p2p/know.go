package p2p

import "math/bits"

// Per-peer knowledge tracking, flattened.
//
// The old layout kept, per node, a map from recent block hash to a
// map of peer IDs — two hash maps per tracked block per node. The
// flat layout exploits that the window holds at most knownPeerCap
// (= 64) blocks, exactly one uint64 of slots:
//
//   - knowSlot is an N×64 ring of block indices (+1; 0 = empty slot):
//     node i's recent-block window occupies
//     knowSlot[i*knownPeerCap : (i+1)*knownPeerCap], a circular buffer
//     advanced by knowHead/knowCount.
//   - knowMask (in the adjacency arena, one word per directed edge)
//     holds the per-peer bits: bit s set on edge (i→j) means node i
//     knows that peer j has the block in window slot s.
//   - spill holds the marks that cannot live on an edge: the sender
//     was not connected when the mark landed (announce after a
//     disconnect, a crashed peer's in-flight delivery), or the edge was
//     torn down and its mask bits had to survive — peer knowledge is
//     keyed by node identity, not by connection, and fault campaigns
//     depend on that. Healthy campaigns never touch the spill path.
//
// Evicting a window slot clears its bit across the node's span and
// purges its spill entries, so a slot's state never leaks into the
// block that reuses it.

// spillMark is one off-edge knowledge mark: peer knows the block in
// window slot.
type spillMark struct {
	peer int32
	slot int32
}

// windowSlot returns the slot of node i's window holding block idx, or
// -1. Scans newest-first: marks overwhelmingly target the block
// currently propagating.
func (net *Network) windowSlot(i, idx int32) int32 {
	base := i * knownPeerCap
	head := int32(net.knowHead[i])
	count := int32(net.knowCount[i])
	want := idx + 1
	for k := count - 1; k >= 0; k-- {
		s := (head + k) % knownPeerCap
		if net.knowSlot[base+s] == want {
			return s
		}
	}
	return -1
}

// windowAdd inserts block idx into node i's window, evicting the
// oldest tracked block when full (matching the old FIFO knowQueue),
// and returns the slot now holding idx.
func (net *Network) windowAdd(i, idx int32) int32 {
	base := i * knownPeerCap
	if int32(net.knowCount[i]) == knownPeerCap {
		evict := int32(net.knowHead[i])
		net.clearSlot(i, evict)
		net.knowSlot[base+evict] = 0
		net.knowHead[i] = uint8((evict + 1) % knownPeerCap)
		net.knowCount[i]--
	}
	s := (int32(net.knowHead[i]) + int32(net.knowCount[i])) % knownPeerCap
	net.knowSlot[base+s] = idx + 1
	net.knowCount[i]++
	return s
}

// clearSlot erases slot s of node i's window everywhere it is
// recorded: the bit across every edge of i's span, and any spill
// entries.
func (net *Network) clearSlot(i, s int32) {
	sp := net.top.spans[i]
	mask := net.top.knowMask[sp.off : sp.off+sp.len : sp.off+sp.len]
	bit := uint64(1) << uint(s)
	for e := range mask {
		mask[e] &^= bit
	}
	if sl := net.spill[i]; len(sl) > 0 {
		keep := sl[:0]
		for _, m := range sl {
			if m.slot != s {
				keep = append(keep, m)
			}
		}
		net.spill[i] = keep
	}
}

// spillAdd records an off-edge mark, deduplicated.
func (net *Network) spillAdd(i, peer, s int32) {
	for _, m := range net.spill[i] {
		if m.peer == peer && m.slot == s {
			return
		}
	}
	net.spill[i] = append(net.spill[i], spillMark{peer: peer, slot: s})
}

// spillHas reports an off-edge mark for (peer, slot).
func (net *Network) spillHas(i, peer, s int32) bool {
	for _, m := range net.spill[i] {
		if m.peer == peer && m.slot == s {
			return true
		}
	}
	return false
}

// spillEdgeMask preserves a removed edge's suppression bits: every set
// bit becomes a spill entry on the owning node, so tearing down a
// connection (Disconnect, CrashNode) never forgets what the peer was
// known to have.
func (net *Network) spillEdgeMask(i, peer int32, mask uint64) {
	for mask != 0 {
		s := int32(bits.TrailingZeros64(mask))
		mask &= mask - 1
		net.spillAdd(i, peer, s)
	}
}

// markPeerKnows records that peer (at validated span position pos, or
// -1 when not currently connected) has block idx, suppressing future
// sends of it. The equivalent of the old per-node
// peerKnows[hash][peer] = true.
func (net *Network) markPeerKnows(i, idx, peer, pos int32) {
	s := net.windowSlot(i, idx)
	if s < 0 {
		s = net.windowAdd(i, idx)
	}
	if pos >= 0 {
		net.top.knowMask[net.top.spans[i].off+pos] |= 1 << uint(s)
		return
	}
	net.spillAdd(i, peer, s)
}

// peerKnows reports whether node i knows that peer (at validated span
// position pos, or -1) has block idx.
func (net *Network) peerKnows(i, idx, peer, pos int32) bool {
	s := net.windowSlot(i, idx)
	if s < 0 {
		return false
	}
	if pos >= 0 && net.top.knowMask[net.top.spans[i].off+pos]&(1<<uint(s)) != 0 {
		return true
	}
	if len(net.spill[i]) > 0 {
		return net.spillHas(i, peer, s)
	}
	return false
}
