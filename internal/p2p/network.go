package p2p

import (
	"errors"
	"fmt"

	"repro/internal/geo"
	"repro/internal/p2p/relay"
	"repro/internal/sim"
	"repro/internal/types"
)

// Network owns the overlay: node registry, random peer wiring, and
// message transport over the geographic latency model.
//
// Transport is allocation-free in the steady state: messages and
// delivery slots come from free lists, deliveries and deferred
// announce waves are dispatched through the engine's typed-handler
// path (no closure per send), and fan-out selection reuses shared
// scratch buffers. The engine is single-threaded, so one scratch set
// per network is safe.
type Network struct {
	engine  *sim.Engine
	rng     *sim.RNG
	latency geo.LatencyModel
	nodes   map[NodeID]*Node
	order   []NodeID // insertion order, for deterministic iteration
	nextID  NodeID

	// MessagesSent counts transport-level sends, for redundancy and
	// overhead accounting.
	MessagesSent uint64
	// BytesSent accumulates serialized payload bytes.
	BytesSent uint64
	// MessagesDropped counts transport sends and in-flight deliveries
	// discarded by faults: down endpoints, partitions, link loss.
	// Always zero on a healthy network.
	MessagesDropped uint64
	// classMsgs / classBytes break MessagesSent and BytesSent down per
	// message class (indexed by MsgKind) — the per-protocol bandwidth
	// accounting. Their sums equal the totals by construction; the
	// relay conformance suite asserts it.
	classMsgs  [msgKindCount]uint64
	classBytes [msgKindCount]uint64
	// relayProto is the pluggable block-relay discipline driving
	// dissemination (default: the eth/63 sqrt-push rule the paper's
	// network runs). relayCompact caches the compact-family interface
	// assertion so per-message dispatch pays no type switch.
	relayProto   relay.Protocol
	relayCompact relay.CompactHandler
	// env is the reusable relay.Env view handed to the protocol; the
	// engine is single-threaded, so one per network is safe.
	env relayEnv
	// Fault, when non-nil, is consulted once per transport send: it can
	// drop the message (partition, link loss) or stretch its delivery
	// delay (degraded links). Healthy campaigns leave it nil, keeping
	// the hot path branch-predictable.
	Fault LinkFilter
	// ParentPull enables the catch-up fetch: a node receiving a block
	// whose parent it has never seen requests that parent from the
	// sender. Real clients recover partition-era blocks through header
	// sync; this is the minimal eth/63-shaped equivalent. Enabled only
	// for fault campaigns so healthy runs stay byte-identical to the
	// pre-fault engine.
	ParentPull bool

	// Pooled transport state (see HandleEvent).
	msgFree   []*Message
	deliv     []delivery
	delivFree []int32
	ann       []announce
	annFree   []int32

	// Shared fan-out scratch: candidate peers and permutation order.
	candBuf  []*Node
	orderBuf []int
	// knowPool recycles per-block peer-knowledge sets evicted by the
	// nodes' suppression caches.
	knowPool []map[NodeID]bool
}

// delivery is one in-flight message: destination, sender, payload and
// the serialized size counted at send time (carried so ingress
// accounting does not re-derive it on arrival).
type delivery struct {
	to   *Node
	from NodeID
	msg  *Message
	size int32
}

// announce is one deferred announce wave (relayBlock's phase 2).
type announce struct {
	node   *Node
	hash   types.Hash
	origin bool
}

// Typed event opcodes for HandleEvent.
const (
	opDeliver uint64 = iota
	opAnnounce
)

// Relay returns the active block-relay protocol.
func (net *Network) Relay() relay.Protocol { return net.relayProto }

// SetRelay installs a block-relay protocol (construct one fresh per
// network with relay.New — protocol counters are per-campaign state).
func (net *Network) SetRelay(p relay.Protocol) {
	net.relayProto = p
	net.relayCompact, _ = p.(relay.CompactHandler)
}

// ClassTotal is one message class's transport accounting.
type ClassTotal struct {
	Kind     MsgKind
	Messages uint64
	Bytes    uint64
}

// ClassTotals returns the per-message-class transport accounting, in
// MsgKind order, omitting classes that never appeared. The sums over
// the returned rows equal MessagesSent and BytesSent.
func (net *Network) ClassTotals() []ClassTotal {
	var out []ClassTotal
	for k := MsgKind(1); k < msgKindCount; k++ {
		if net.classMsgs[k] == 0 && net.classBytes[k] == 0 {
			continue
		}
		out = append(out, ClassTotal{Kind: k, Messages: net.classMsgs[k], Bytes: net.classBytes[k]})
	}
	return out
}

// LinkFilter is the fault-injection hook into the transport: it is
// consulted once per send, after both endpoints are known to be up. A
// non-nil error drops the message (counted in MessagesDropped); extra
// is added to the latency-model delay otherwise. Implementations must
// be deterministic given the simulation state (draw any randomness
// from their own seeded stream).
type LinkFilter interface {
	FilterLink(now sim.Time, from, to *Node) (extra sim.Time, err error)
}

// Network construction errors.
var (
	ErrUnknownNode = errors.New("p2p: unknown node")
	ErrSelfDial    = errors.New("p2p: node cannot dial itself")
)

// NewNetwork creates an empty overlay bound to a simulation engine,
// running the default sqrt-push relay discipline.
func NewNetwork(engine *sim.Engine, rng *sim.RNG, latency geo.LatencyModel) *Network {
	net := &Network{
		engine:  engine,
		rng:     rng,
		latency: latency,
		nodes:   make(map[NodeID]*Node),
	}
	net.SetRelay(relay.MustNew(relay.Config{}))
	net.env.net = net
	return net
}

// envFor points the network's shared relay.Env view at a node. Calls
// are strictly nested within one engine event, so the single instance
// is never aliased across nodes concurrently.
func (net *Network) envFor(n *Node) *relayEnv {
	net.env.node = n
	return &net.env
}

// AddNode registers a node in a region. maxPeers bounds how many
// connections the node accepts (0 = unlimited, the paper's
// measurement-node setting).
func (net *Network) AddNode(region geo.Region, maxPeers int) (*Node, error) {
	if !region.Valid() {
		return nil, fmt.Errorf("p2p: invalid region %v", region)
	}
	net.nextID++
	n := &Node{
		id:          net.nextID,
		region:      region,
		net:         net,
		peerSet:     make(map[NodeID]bool),
		maxPeers:    maxPeers,
		haveBlocks:  make(map[types.Hash]bool),
		knownBlocks: make(map[types.Hash]*types.Block),
		seenHashes:  make(map[types.Hash]bool),
		knownTxs:    make(map[types.Hash]bool),
		peerKnows:   make(map[types.Hash]map[NodeID]bool),
		relay:       true,
	}
	net.nodes[n.id] = n
	net.order = append(net.order, n.id)
	return n, nil
}

// Node returns a node by ID.
func (net *Network) Node(id NodeID) (*Node, error) {
	n, ok := net.nodes[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return n, nil
}

// Nodes returns all nodes in insertion order.
func (net *Network) Nodes() []*Node {
	out := make([]*Node, 0, len(net.order))
	for _, id := range net.order {
		out = append(out, net.nodes[id])
	}
	return out
}

// Len returns the number of nodes ever added (crashed and departed
// nodes included — slots are never reused).
func (net *Network) Len() int { return len(net.nodes) }

// NodeAt returns the i-th node in insertion order. Fault injection
// uses it for index-addressed sampling without materializing the full
// node slice per draw.
func (net *Network) NodeAt(i int) *Node { return net.nodes[net.order[i]] }

// Engine exposes the simulation engine driving this network.
func (net *Network) Engine() *sim.Engine { return net.engine }

// Connect wires two nodes bidirectionally. Connecting an already
// connected pair is a no-op. It fails when either node is at its peer
// limit or on self-dial.
func (net *Network) Connect(a, b *Node) error {
	if a == nil || b == nil {
		return ErrUnknownNode
	}
	if a.id == b.id {
		return ErrSelfDial
	}
	if a.peerSet[b.id] {
		return nil
	}
	if a.maxPeers > 0 && len(a.peers) >= a.maxPeers {
		return fmt.Errorf("p2p: node %d at peer limit %d", a.id, a.maxPeers)
	}
	if b.maxPeers > 0 && len(b.peers) >= b.maxPeers {
		return fmt.Errorf("p2p: node %d at peer limit %d", b.id, b.maxPeers)
	}
	a.peers = append(a.peers, b)
	b.peers = append(b.peers, a)
	a.peerSet[b.id] = true
	b.peerSet[a.id] = true
	return nil
}

// WireRandom builds a random overlay where every node dials
// degree distinct random peers (the union graph has mean degree
// ~2*degree). Peer-limit-saturated candidates are skipped, mirroring
// real discovery behavior. The wiring is deterministic for a given
// RNG state.
func (net *Network) WireRandom(degree int) error {
	if degree < 1 {
		return fmt.Errorf("p2p: degree %d < 1", degree)
	}
	n := len(net.order)
	if n < 2 {
		return nil
	}
	for _, id := range net.order {
		node := net.nodes[id]
		attempts := 0
		dialed := 0
		for dialed < degree && attempts < 20*degree {
			attempts++
			target := net.nodes[net.order[net.rng.IntN(n)]]
			if target.id == node.id || node.peerSet[target.id] {
				continue
			}
			if node.maxPeers > 0 && len(node.peers) >= node.maxPeers {
				break
			}
			if target.maxPeers > 0 && len(target.peers) >= target.maxPeers {
				continue
			}
			if err := net.Connect(node, target); err != nil {
				continue
			}
			dialed++
		}
	}
	return nil
}

// ConnectSample connects node to up to k distinct random peers (used
// to attach measurement nodes with a chosen peer count).
func (net *Network) ConnectSample(node *Node, k int) error {
	return net.ConnectSampleBiased(node, k, 0)
}

// ConnectSampleBiased connects node to up to k distinct peers, with
// fraction regionBias of candidates drawn from the node's own region
// and the remainder uniform. Mining-pool gateways peer preferentially
// with nearby infrastructure (latency-driven peer curation), which
// regular protocol nodes — selected by random ID — do not.
func (net *Network) ConnectSampleBiased(node *Node, k int, regionBias float64) error {
	if node == nil {
		return ErrUnknownNode
	}
	var local, global []NodeID
	for _, id := range net.order {
		if id == node.id || node.peerSet[id] {
			continue
		}
		if regionBias > 0 && net.nodes[id].region == node.region {
			local = append(local, id)
		} else {
			global = append(global, id)
		}
	}
	sim.Shuffle(net.rng, local)
	sim.Shuffle(net.rng, global)
	connected := 0
	wantLocal := int(regionBias * float64(k))
	dial := func(pool []NodeID, want int) []NodeID {
		for len(pool) > 0 && connected < want {
			id := pool[0]
			pool = pool[1:]
			if err := net.Connect(node, net.nodes[id]); err != nil {
				continue
			}
			connected++
		}
		return pool
	}
	local = dial(local, wantLocal)
	global = dial(global, k)
	// Top up from whichever pool still has candidates.
	dial(local, k)
	if connected < k && connected < len(local)+len(global)+connected {
		// Some candidates refused (peer limits); only report failure
		// when nothing more could possibly be dialed.
		if connected == 0 && k > 0 && len(net.order) > 1 {
			return fmt.Errorf("p2p: connected 0 of %d requested peers", k)
		}
	}
	return nil
}

// Connected reports whether two nodes currently hold a connection.
func (net *Network) Connected(a, b *Node) bool {
	return a != nil && b != nil && a.peerSet[b.id]
}

// Disconnect tears down the connection between two nodes (a no-op for
// unconnected pairs). Peer-list order of the survivors is preserved,
// so disconnects are deterministic.
func (net *Network) Disconnect(a, b *Node) {
	if a == nil || b == nil || !a.peerSet[b.id] {
		return
	}
	delete(a.peerSet, b.id)
	delete(b.peerSet, a.id)
	a.peers = removePeer(a.peers, b.id)
	b.peers = removePeer(b.peers, a.id)
}

// removePeer deletes the peer with the given id, preserving order.
func removePeer(peers []*Node, id NodeID) []*Node {
	for i, p := range peers {
		if p.id == id {
			return append(peers[:i], peers[i+1:]...)
		}
	}
	return peers
}

// CrashNode takes a node down: every connection is torn down (its
// peers see the TCP sessions die) and in-flight messages to it are
// discarded on arrival. The node's durable state — received blocks,
// seen hashes — persists, like a real client's disk across a process
// crash. A down node schedules no events, so outages cost nothing on
// the event queue.
func (net *Network) CrashNode(n *Node) {
	if n == nil || n.down {
		return
	}
	n.down = true
	for _, peer := range n.peers {
		delete(peer.peerSet, n.id)
		peer.peers = removePeer(peer.peers, n.id)
	}
	clear(n.peerSet)
	n.peers = n.peers[:0]
}

// RecoverNode brings a crashed node back up with an empty peer table;
// the caller rewires it (fault injection redials through discovery).
func (net *Network) RecoverNode(n *Node) {
	if n == nil {
		return
	}
	n.down = false
}

// newMessage takes a message from the pool (or allocates the pool's
// first copies). The caller fills exactly the payload field its kind
// requires; every other payload field is zero.
func (net *Network) newMessage(kind MsgKind) *Message {
	if n := len(net.msgFree); n > 0 {
		m := net.msgFree[n-1]
		net.msgFree = net.msgFree[:n-1]
		m.Kind = kind
		return m
	}
	return &Message{Kind: kind}
}

// releaseMessage recycles a delivered message. Payload slices are
// dropped, not reused: a transaction batch is shared by every fan-out
// copy, so its backing array must never be rewritten. The inline
// single-hash buffer is owned by the message and is safely rewritten
// on reuse.
func (net *Network) releaseMessage(m *Message) {
	m.Block = nil
	m.Hashes = nil
	m.Txs = nil
	m.Want = types.Hash{}
	m.TxCount = 0
	m.TxBytes = 0
	net.msgFree = append(net.msgFree, m)
}

// send schedules delivery of msg from a to b at the latency-model
// sampled arrival time relative to `at`. The delivery is a typed
// engine event referencing a pooled delivery slot — no closure.
// Sends touching a down endpoint, or vetoed by the fault filter, are
// dropped (released back to the pool and counted in MessagesDropped).
func (net *Network) send(at sim.Time, from, to *Node, msg *Message) {
	if from.down || to.down {
		net.MessagesDropped++
		net.releaseMessage(msg)
		return
	}
	var extra sim.Time
	if net.Fault != nil {
		var err error
		extra, err = net.Fault.FilterLink(at, from, to)
		if err != nil {
			net.MessagesDropped++
			net.releaseMessage(msg)
			return
		}
	}
	size := msg.Size()
	delay, err := net.latency.Sample(net.rng, from.region, to.region, size)
	if err != nil {
		// Regions are validated at AddNode; a failure here is a
		// programming error and dropping the message would silently
		// bias measurements, so treat delay as zero instead.
		delay = 0
	}
	net.MessagesSent++
	net.BytesSent += uint64(size)
	net.classMsgs[msg.Kind]++
	net.classBytes[msg.Kind] += uint64(size)
	from.msgsOut++
	from.bytesOut += uint64(size)
	var idx int32
	if n := len(net.delivFree); n > 0 {
		idx = net.delivFree[n-1]
		net.delivFree = net.delivFree[:n-1]
	} else {
		net.deliv = append(net.deliv, delivery{})
		idx = int32(len(net.deliv) - 1)
	}
	net.deliv[idx] = delivery{to: to, from: from.id, msg: msg, size: int32(size)}
	net.engine.ScheduleCallAt(at+delay+extra, net, opDeliver, uint64(idx))
}

// scheduleAnnounce queues a node's deferred announce wave (relay
// phase 2) through the typed dispatch path.
func (net *Network) scheduleAnnounce(delay sim.Time, n *Node, h types.Hash, origin bool) {
	var idx int32
	if k := len(net.annFree); k > 0 {
		idx = net.annFree[k-1]
		net.annFree = net.annFree[:k-1]
	} else {
		net.ann = append(net.ann, announce{})
		idx = int32(len(net.ann) - 1)
	}
	net.ann[idx] = announce{node: n, hash: h, origin: origin}
	net.engine.ScheduleCall(delay, net, opAnnounce, uint64(idx))
}

// HandleEvent implements sim.Handler: it dispatches the network's two
// typed event kinds. Slots are freed before the callee runs so nested
// sends can immediately reuse them.
func (net *Network) HandleEvent(now sim.Time, op, idx uint64) {
	switch op {
	case opDeliver:
		d := net.deliv[idx]
		net.deliv[idx] = delivery{}
		net.delivFree = append(net.delivFree, int32(idx))
		if d.to.down {
			// The destination crashed while the message was in flight;
			// its TCP connections are gone, so the bytes never arrive.
			net.MessagesDropped++
			net.releaseMessage(d.msg)
			return
		}
		d.to.msgsIn++
		d.to.bytesIn += uint64(d.size)
		d.to.handle(now, d.from, d.msg)
		net.releaseMessage(d.msg)
	case opAnnounce:
		a := net.ann[idx]
		net.ann[idx] = announce{}
		net.annFree = append(net.annFree, int32(idx))
		if a.node.down {
			// The wave was scheduled before the node crashed.
			return
		}
		net.relayProto.OnWave(net.envFor(a.node), now, a.hash, a.origin)
	}
}

// EventName implements sim.EventNamer: it labels the network's typed
// events in engine traces.
func (net *Network) EventName(op uint64) string {
	switch op {
	case opDeliver:
		return "p2p.deliver"
	case opAnnounce:
		return "p2p.announce"
	default:
		return "p2p.unknown"
	}
}

// fanoutOrder fills the shared permutation scratch with a random
// ordering of [0, n), drawing exactly as rng.Perm(n) would.
func (net *Network) fanoutOrder(n int) []int {
	if cap(net.orderBuf) < n {
		net.orderBuf = make([]int, n)
	}
	buf := net.orderBuf[:n]
	net.rng.PermInto(buf)
	return buf
}

// getKnowSet / putKnowSet recycle the per-block peer-knowledge sets
// bounded by the nodes' suppression caches.
func (net *Network) getKnowSet() map[NodeID]bool {
	if n := len(net.knowPool); n > 0 {
		s := net.knowPool[n-1]
		net.knowPool = net.knowPool[:n-1]
		return s
	}
	return make(map[NodeID]bool, 8)
}

func (net *Network) putKnowSet(s map[NodeID]bool) {
	clear(s)
	net.knowPool = append(net.knowPool, s)
}
