package p2p

import (
	"errors"
	"fmt"

	"repro/internal/geo"
	"repro/internal/p2p/relay"
	"repro/internal/sim"
	"repro/internal/types"
)

// Network owns the overlay: node registry, random peer wiring, and
// message transport over the geographic latency model.
//
// The node core is struct-of-arrays: every piece of per-node state —
// region, peer limit, down flag, traffic counters, dedup bits, the
// recent-block suppression window — lives in a dense Network-owned
// slice indexed by NodeID-1 (IDs are assigned sequentially and never
// reused). Peer adjacency is a CSR arena (adjacency.go), blocks and
// transactions are interned to compact indices (items.go), and the
// per-peer suppression state is one uint64 per directed edge
// (know.go). A *Node is a thin stable handle into these arrays; at
// 100k nodes the overlay is a handful of large allocations instead of
// ~a million live maps.
//
// Transport is allocation-free in the steady state: messages and
// delivery slots come from free lists, deliveries and deferred
// announce waves are dispatched through the engine's typed-handler
// path (no closure per send), and fan-out selection reuses shared
// scratch buffers. The engine is single-threaded, so one scratch set
// per network is safe.
type Network struct {
	engine  *sim.Engine
	rng     *sim.RNG
	latency geo.LatencyModel
	nextID  NodeID

	// handles is the stable arena of node handles: fixed-size chunks,
	// so AddNode never relocates an issued *Node.
	handles [][]Node

	// Flat per-node state, indexed by NodeID-1.
	regions   []geo.Region
	maxPeers  []int32 // 0 = unlimited
	down      []bool
	relayOn   []bool
	observers []Observer
	msgsIn    []uint64
	msgsOut   []uint64
	bytesIn   []uint64
	bytesOut  []uint64

	// top is the CSR adjacency (peer spans + per-edge suppression
	// masks + reverse positions).
	top adjacency

	// Compact item registries: blocks additionally keep the canonical
	// body pointer for GetBlock serving.
	blockIdx  itemIndex
	blockBody []*types.Block
	txIdx     itemIndex

	// Per-(node, item) dedup bits: full bodies received, hashes seen
	// (received or announced), tx-pool visibility, and FIFO body-cache
	// residency.
	haveBits   bitGrid
	seenBits   bitGrid
	txBits     bitGrid
	cachedBits bitGrid

	// cacheQ is each node's FIFO body-cache eviction order (block
	// indices); pending tracks in-flight compact-relay fetches.
	cacheQ  [][]int32
	pending [][]pendingEntry

	// Recent-block suppression windows (know.go): an N×knownPeerCap
	// ring of block indices plus head/count cursors, and the off-edge
	// spill marks.
	knowSlot  []int32
	knowHead  []uint8
	knowCount []uint8
	spill     [][]spillMark

	// MessagesSent counts transport-level sends, for redundancy and
	// overhead accounting.
	MessagesSent uint64
	// BytesSent accumulates serialized payload bytes.
	BytesSent uint64
	// MessagesDropped counts transport sends and in-flight deliveries
	// discarded by faults: down endpoints, partitions, link loss.
	// Always zero on a healthy network.
	MessagesDropped uint64
	// classMsgs / classBytes break MessagesSent and BytesSent down per
	// message class (indexed by MsgKind) — the per-protocol bandwidth
	// accounting. Their sums equal the totals by construction; the
	// relay conformance suite asserts it.
	classMsgs  [msgKindCount]uint64
	classBytes [msgKindCount]uint64
	// relayProto is the pluggable block-relay discipline driving
	// dissemination (default: the eth/63 sqrt-push rule the paper's
	// network runs). relayCompact caches the compact-family interface
	// assertion so per-message dispatch pays no type switch.
	relayProto   relay.Protocol
	relayCompact relay.CompactHandler
	// env is the reusable relay.Env view handed to the protocol; the
	// engine is single-threaded, so one per network is safe.
	env relayEnv
	// Fault, when non-nil, is consulted once per transport send: it can
	// drop the message (partition, link loss) or stretch its delivery
	// delay (degraded links). Healthy campaigns leave it nil, keeping
	// the hot path branch-predictable.
	Fault LinkFilter
	// ParentPull enables the catch-up fetch: a node receiving a block
	// whose parent it has never seen requests that parent from the
	// sender. Real clients recover partition-era blocks through header
	// sync; this is the minimal eth/63-shaped equivalent. Enabled only
	// for fault campaigns so healthy runs stay byte-identical to the
	// pre-fault engine.
	ParentPull bool

	// Pooled transport state (see HandleEvent).
	msgFree   []*Message
	deliv     []delivery
	delivFree []int32
	ann       []announce
	annFree   []int32

	// Shared fan-out scratch: candidate span positions, permutation
	// order, and the membership bitmap ConnectSampleBiased uses to
	// filter candidates in O(1) per node.
	candBuf    []int32
	orderBuf   []int
	memberBits []uint64

	// sh, when non-nil, partitions the transport across per-region
	// lanes driven by a sim.Conductor (shard.go). Nil keeps every path
	// below byte-identical to the single-engine transport.
	sh *shardState
}

// handleChunk sizes the node-handle arena chunks.
const handleChunk = 4096

// pendingEntry is one in-flight compact-relay fetch: a retained sketch
// awaiting its missing-transaction round trip, or a nil body for a
// full-body fallback.
type pendingEntry struct {
	idx int32
	b   *types.Block
}

// delivery is one in-flight message: destination, sender, payload and
// the serialized size counted at send time (carried so ingress
// accounting does not re-derive it on arrival). srcPos is the sender's
// position in the destination's peer span at send time (-1 unknown);
// the receiver validates it and falls back to a scan, so per-peer
// bookkeeping on receipt is O(1) even at measurement-node degrees.
type delivery struct {
	to     *Node
	from   NodeID
	msg    *Message
	size   int32
	srcPos int32
}

// announce is one deferred announce wave (relayBlock's phase 2).
type announce struct {
	node   *Node
	hash   types.Hash
	origin bool
}

// Typed event opcodes for HandleEvent.
const (
	opDeliver uint64 = iota
	opAnnounce
)

// Relay returns the active block-relay protocol.
func (net *Network) Relay() relay.Protocol { return net.relayProto }

// SetRelay installs a block-relay protocol (construct one fresh per
// network with relay.New — protocol counters are per-campaign state).
func (net *Network) SetRelay(p relay.Protocol) {
	net.relayProto = p
	net.relayCompact, _ = p.(relay.CompactHandler)
}

// ClassTotal is one message class's transport accounting.
type ClassTotal struct {
	Kind     MsgKind
	Messages uint64
	Bytes    uint64
}

// ClassTotals returns the per-message-class transport accounting, in
// MsgKind order, omitting classes that never appeared. The sums over
// the returned rows equal MessagesSent and BytesSent.
func (net *Network) ClassTotals() []ClassTotal {
	var out []ClassTotal
	for k := MsgKind(1); k < msgKindCount; k++ {
		if net.classMsgs[k] == 0 && net.classBytes[k] == 0 {
			continue
		}
		out = append(out, ClassTotal{Kind: k, Messages: net.classMsgs[k], Bytes: net.classBytes[k]})
	}
	return out
}

// LinkFilter is the fault-injection hook into the transport: it is
// consulted once per send, after both endpoints are known to be up. A
// non-nil error drops the message (counted in MessagesDropped); extra
// is added to the latency-model delay otherwise. Implementations must
// be deterministic given the simulation state (draw any randomness
// from their own seeded stream).
type LinkFilter interface {
	FilterLink(now sim.Time, from, to *Node) (extra sim.Time, err error)
}

// Network construction errors.
var (
	ErrUnknownNode = errors.New("p2p: unknown node")
	ErrSelfDial    = errors.New("p2p: node cannot dial itself")
)

// NewNetwork creates an empty overlay bound to a simulation engine,
// running the default sqrt-push relay discipline.
func NewNetwork(engine *sim.Engine, rng *sim.RNG, latency geo.LatencyModel) *Network {
	net := &Network{
		engine:  engine,
		rng:     rng,
		latency: latency,
	}
	net.SetRelay(relay.MustNew(relay.Config{}))
	net.env.net = net
	return net
}

// envFor points the network's reusable relay.Env view at a node with
// no in-flight sender context. Calls are strictly nested within one
// engine event, so an instance is never aliased across nodes
// concurrently — in sharded mode each lane repoints its own env.
func (net *Network) envFor(n *Node, now sim.Time) *relayEnv {
	return net.envForMsg(n, now, -1, -1)
}

// envForMsg points the env at a node while recording the sender of the
// message being dispatched (validated span position pos, or -1), so
// protocol pulls back to the sender reuse the position instead of
// scanning. now is the virtual time of the enclosing event: protocols
// schedule through the env relative to it, which must stay correct
// even when the executing lane's clock trails global time (phase A).
func (net *Network) envForMsg(n *Node, now sim.Time, fromIdx, pos int32) *relayEnv {
	env := &net.env
	if ln := net.laneOf(n.idx()); ln != nil {
		env = &ln.env
	}
	env.node = n
	env.nodeIdx = n.idx()
	env.fromIdx = fromIdx
	env.fromPos = pos
	env.now = now
	return env
}

// AddNode registers a node in a region. maxPeers bounds how many
// connections the node accepts (0 = unlimited, the paper's
// measurement-node setting).
func (net *Network) AddNode(region geo.Region, maxPeers int) (*Node, error) {
	if !region.Valid() {
		return nil, fmt.Errorf("p2p: invalid region %v", region)
	}
	net.nextID++
	if len(net.handles) == 0 || len(net.handles[len(net.handles)-1]) == handleChunk {
		net.handles = append(net.handles, make([]Node, 0, handleChunk))
	}
	c := len(net.handles) - 1
	net.handles[c] = append(net.handles[c], Node{id: net.nextID, net: net})
	n := &net.handles[c][len(net.handles[c])-1]

	net.regions = append(net.regions, region)
	net.maxPeers = append(net.maxPeers, int32(maxPeers))
	net.down = append(net.down, false)
	net.relayOn = append(net.relayOn, true)
	net.observers = append(net.observers, nil)
	net.msgsIn = append(net.msgsIn, 0)
	net.msgsOut = append(net.msgsOut, 0)
	net.bytesIn = append(net.bytesIn, 0)
	net.bytesOut = append(net.bytesOut, 0)
	net.top.addNode()
	net.cacheQ = append(net.cacheQ, nil)
	net.pending = append(net.pending, nil)
	net.knowSlot = append(net.knowSlot, make([]int32, knownPeerCap)...)
	net.knowHead = append(net.knowHead, 0)
	net.knowCount = append(net.knowCount, 0)
	net.spill = append(net.spill, nil)
	return n, nil
}

// nodeByID resolves an ID to its stable handle, nil when unknown.
func (net *Network) nodeByID(id NodeID) *Node {
	if id < 1 || id > net.nextID {
		return nil
	}
	i := int(id - 1)
	return &net.handles[i/handleChunk][i%handleChunk]
}

// Node returns a node by ID.
func (net *Network) Node(id NodeID) (*Node, error) {
	n := net.nodeByID(id)
	if n == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return n, nil
}

// Nodes returns all nodes in insertion order.
func (net *Network) Nodes() []*Node {
	out := make([]*Node, 0, net.nextID)
	for id := NodeID(1); id <= net.nextID; id++ {
		out = append(out, net.nodeByID(id))
	}
	return out
}

// Len returns the number of nodes ever added (crashed and departed
// nodes included — slots are never reused).
func (net *Network) Len() int { return int(net.nextID) }

// NodeAt returns the i-th node in insertion order. Fault injection
// uses it for index-addressed sampling without materializing the full
// node slice per draw.
func (net *Network) NodeAt(i int) *Node {
	return &net.handles[i/handleChunk][i%handleChunk]
}

// Engine exposes the simulation engine driving this network.
func (net *Network) Engine() *sim.Engine { return net.engine }

// Connect wires two nodes bidirectionally. Connecting an already
// connected pair is a no-op. It fails when either node is at its peer
// limit or on self-dial.
func (net *Network) Connect(a, b *Node) error {
	if a == nil || b == nil {
		return ErrUnknownNode
	}
	if a.id == b.id {
		return ErrSelfDial
	}
	i, j := a.idx(), b.idx()
	if net.top.connected(i, j) {
		return nil
	}
	if net.maxPeers[i] > 0 && net.top.degree(i) >= int(net.maxPeers[i]) {
		return fmt.Errorf("p2p: node %d at peer limit %d", a.id, net.maxPeers[i])
	}
	if net.maxPeers[j] > 0 && net.top.degree(j) >= int(net.maxPeers[j]) {
		return fmt.Errorf("p2p: node %d at peer limit %d", b.id, net.maxPeers[j])
	}
	net.top.link(i, j)
	return nil
}

// WireRandom builds a random overlay where every node dials
// degree distinct random peers (the union graph has mean degree
// ~2*degree). Peer-limit-saturated candidates are skipped, mirroring
// real discovery behavior. The wiring is deterministic for a given
// RNG state.
func (net *Network) WireRandom(degree int) error {
	if degree < 1 {
		return fmt.Errorf("p2p: degree %d < 1", degree)
	}
	n := net.Len()
	if n < 2 {
		return nil
	}
	for id := NodeID(1); id <= net.nextID; id++ {
		node := net.nodeByID(id)
		i := node.idx()
		attempts := 0
		dialed := 0
		for dialed < degree && attempts < 20*degree {
			attempts++
			target := net.NodeAt(net.rng.IntN(n))
			j := target.idx()
			if j == i || net.top.connected(i, j) {
				continue
			}
			if net.maxPeers[i] > 0 && net.top.degree(i) >= int(net.maxPeers[i]) {
				break
			}
			if net.maxPeers[j] > 0 && net.top.degree(j) >= int(net.maxPeers[j]) {
				continue
			}
			if err := net.Connect(node, target); err != nil {
				continue
			}
			dialed++
		}
	}
	return nil
}

// ConnectSample connects node to up to k distinct random peers (used
// to attach measurement nodes with a chosen peer count).
func (net *Network) ConnectSample(node *Node, k int) error {
	return net.ConnectSampleBiased(node, k, 0)
}

// ConnectSampleBiased connects node to up to k distinct peers, with
// fraction regionBias of candidates drawn from the node's own region
// and the remainder uniform. Mining-pool gateways peer preferentially
// with nearby infrastructure (latency-driven peer curation), which
// regular protocol nodes — selected by random ID — do not.
func (net *Network) ConnectSampleBiased(node *Node, k int, regionBias float64) error {
	if node == nil {
		return ErrUnknownNode
	}
	i := node.idx()
	// Mark the node's current peers in the shared membership bitmap so
	// the candidate sweep below is O(1) per node even when attaching a
	// huge-degree gateway or measurement node.
	words := (net.Len() + 63) / 64
	if cap(net.memberBits) < words {
		net.memberBits = make([]uint64, words)
	}
	member := net.memberBits[:words]
	s := net.top.spans[i]
	for p := int32(0); p < s.len; p++ {
		j := net.top.adj[s.off+p]
		member[j>>6] |= 1 << (uint(j) & 63)
	}
	var local, global []NodeID
	for id := NodeID(1); id <= net.nextID; id++ {
		j := int32(id - 1)
		if j == i || member[j>>6]&(1<<(uint(j)&63)) != 0 {
			continue
		}
		if regionBias > 0 && net.regions[j] == net.regions[i] {
			local = append(local, id)
		} else {
			global = append(global, id)
		}
	}
	for p := int32(0); p < s.len; p++ {
		j := net.top.adj[s.off+p]
		member[j>>6] &^= 1 << (uint(j) & 63)
	}
	sim.Shuffle(net.rng, local)
	sim.Shuffle(net.rng, global)
	connected := 0
	wantLocal := int(regionBias * float64(k))
	dial := func(pool []NodeID, want int) []NodeID {
		for len(pool) > 0 && connected < want {
			id := pool[0]
			pool = pool[1:]
			if err := net.Connect(node, net.nodeByID(id)); err != nil {
				continue
			}
			connected++
		}
		return pool
	}
	local = dial(local, wantLocal)
	global = dial(global, k)
	// Top up from whichever pool still has candidates.
	dial(local, k)
	if connected < k && connected < len(local)+len(global)+connected {
		// Some candidates refused (peer limits); only report failure
		// when nothing more could possibly be dialed.
		if connected == 0 && k > 0 && net.Len() > 1 {
			return fmt.Errorf("p2p: connected 0 of %d requested peers", k)
		}
	}
	return nil
}

// Connected reports whether two nodes currently hold a connection.
func (net *Network) Connected(a, b *Node) bool {
	return a != nil && b != nil && net.top.connected(a.idx(), b.idx())
}

// Disconnect tears down the connection between two nodes (a no-op for
// unconnected pairs). Peer-list order of the survivors is preserved,
// so disconnects are deterministic; the edge's suppression bits are
// spilled, because peer knowledge is keyed by node identity, not by
// connection.
func (net *Network) Disconnect(a, b *Node) {
	if a == nil || b == nil {
		return
	}
	i, j := a.idx(), b.idx()
	maskI, maskJ, ok := net.top.unlink(i, j)
	if !ok {
		return
	}
	net.spillEdgeMask(i, j, maskI)
	net.spillEdgeMask(j, i, maskJ)
}

// CrashNode takes a node down: every connection is torn down (its
// peers see the TCP sessions die) and in-flight messages to it are
// discarded on arrival. The node's durable state — received blocks,
// seen hashes, peer knowledge — persists, like a real client's disk
// across a process crash. A down node schedules no events, so outages
// cost nothing on the event queue.
func (net *Network) CrashNode(n *Node) {
	if n == nil {
		return
	}
	i := n.idx()
	if net.down[i] {
		return
	}
	net.down[i] = true
	s := net.top.spans[i]
	for p := int32(0); p < s.len; p++ {
		e := s.off + p
		j := net.top.adj[e]
		// Remove n from the peer's span, preserving both directions'
		// suppression bits.
		maskJ := net.top.removeAt(j, net.top.revAdj[e])
		net.spillEdgeMask(j, i, maskJ)
		net.spillEdgeMask(i, j, net.top.knowMask[e])
	}
	net.top.spans[i].len = 0
}

// RecoverNode brings a crashed node back up with an empty peer table;
// the caller rewires it (fault injection redials through discovery).
func (net *Network) RecoverNode(n *Node) {
	if n == nil {
		return
	}
	net.down[n.idx()] = false
}

// newMessage takes a message from the executing lane's pool — the
// network pool unsharded, the lane owning node i sharded (the handler
// running on node i's lane is the only writer of that pool; a message
// may be released into a different lane's pool after a cross-lane
// hop, which is fine — pools are plain free lists). The caller fills
// exactly the payload field its kind requires; every other payload
// field is zero.
func (net *Network) newMessage(i int32, kind MsgKind) *Message {
	free := &net.msgFree
	if ln := net.laneOf(i); ln != nil {
		free = &ln.msgFree
	}
	if n := len(*free); n > 0 {
		m := (*free)[n-1]
		*free = (*free)[:n-1]
		m.Kind = kind
		return m
	}
	return &Message{Kind: kind}
}

// releaseMessage recycles a delivered message into the executing
// lane's pool (ln nil unsharded). Payload slices are dropped, not
// reused: a transaction batch is shared by every fan-out copy, so its
// backing array must never be rewritten. The inline single-hash buffer
// is owned by the message and is safely rewritten on reuse.
func (net *Network) releaseMessageIn(ln *netLane, m *Message) {
	m.Block = nil
	m.Hashes = nil
	m.Txs = nil
	m.Want = types.Hash{}
	m.TxCount = 0
	m.TxBytes = 0
	if ln != nil {
		ln.msgFree = append(ln.msgFree, m)
		return
	}
	net.msgFree = append(net.msgFree, m)
}

// send schedules delivery of msg from a to b at the latency-model
// sampled arrival time relative to `at`. The delivery is a typed
// engine event referencing a pooled delivery slot — no closure.
// srcPos is the sender's position in the destination's peer span when
// the caller knows it (reverse-edge lookup), -1 otherwise; the
// receiver re-validates it. Sends touching a down endpoint, or vetoed
// by the fault filter, are dropped (released back to the pool and
// counted in MessagesDropped).
func (net *Network) send(at sim.Time, from, to *Node, msg *Message, srcPos int32) {
	fi, ti := from.idx(), to.idx()
	ln := net.laneOf(fi) // executing lane; nil unsharded
	if net.down[fi] || net.down[ti] {
		net.drop(ln, msg)
		return
	}
	var extra sim.Time
	if net.Fault != nil {
		var err error
		extra, err = net.Fault.FilterLink(at, from, to)
		if err != nil {
			net.drop(ln, msg)
			return
		}
	}
	size := msg.Size()
	rng := net.rng
	if ln != nil {
		rng = ln.rng
	}
	delay, err := net.latency.Sample(rng, net.regions[fi], net.regions[ti], size)
	if err != nil {
		// Regions are validated at AddNode; a failure here is a
		// programming error. The old zero-delay fallback was a time
		// bomb: in sharded mode a zero-delay cross-lane message can
		// arrive at or before the destination lane's clock, silently
		// violating the lookahead invariant mergeCross asserts. Clamp
		// to the pair floor instead; if even that fails the regions
		// really are invalid and continuing would corrupt the run.
		if delay, err = net.latency.MinPairDelay(net.regions[fi], net.regions[ti]); err != nil {
			panic(fmt.Sprintf("p2p: latency sample %v->%v: %v", net.regions[fi], net.regions[ti], err))
		}
		if delay < 1 {
			delay = 1
		}
	}
	if ln == nil {
		net.MessagesSent++
		net.BytesSent += uint64(size)
		net.classMsgs[msg.Kind]++
		net.classBytes[msg.Kind] += uint64(size)
	} else {
		ln.msgsSent++
		ln.bytesSent += uint64(size)
		ln.classMsgs[msg.Kind]++
		ln.classBytes[msg.Kind] += uint64(size)
	}
	net.msgsOut[fi]++
	net.bytesOut[fi] += uint64(size)
	if ln == nil {
		var idx int32
		if n := len(net.delivFree); n > 0 {
			idx = net.delivFree[n-1]
			net.delivFree = net.delivFree[:n-1]
		} else {
			net.deliv = append(net.deliv, delivery{})
			idx = int32(len(net.deliv) - 1)
		}
		net.deliv[idx] = delivery{to: to, from: from.id, msg: msg, size: int32(size), srcPos: srcPos}
		net.engine.ScheduleCallAt(at+delay+extra, net, opDeliver, uint64(idx))
		return
	}
	if dl := net.sh.lanes[net.regions[ti]]; dl == ln {
		idx := ln.acquireDeliv()
		ln.deliv[idx] = delivery{to: to, from: from.id, msg: msg, size: int32(size), srcPos: srcPos}
		ln.engine.ScheduleCallAt(at+delay+extra, ln, opDeliver, uint64(idx))
		return
	}
	// Cross-lane: never touch the destination lane from here — buffer
	// for the next conductor merge. Arrival is always strictly in the
	// destination's future: delay >= LatencyModel.MinPairDelay(from,
	// to), the per-pair floor backing the conductor's SetBounds
	// lookahead matrix (faults only add delay or drop, never
	// accelerate), so merging never back-dates an event — mergeCross
	// asserts exactly this.
	ln.cross = append(ln.cross, crossMsg{
		at: at + delay + extra, to: to, from: from.id,
		msg: msg, size: int32(size), srcPos: srcPos, seq: ln.emitSeq,
	})
	ln.emitSeq++
}

// drop counts and recycles an undeliverable message on the executing
// lane.
func (net *Network) drop(ln *netLane, msg *Message) {
	if ln != nil {
		ln.dropped++
	} else {
		net.MessagesDropped++
	}
	net.releaseMessageIn(ln, msg)
}

// scheduleAnnounce queues a node's deferred announce wave (relay
// phase 2) through the typed dispatch path, at an absolute virtual
// time. Announce waves always run on the node's own lane; absolute
// scheduling keeps them correct when the lane clock trails the
// emitting event's time (phase A injections in sharded mode).
func (net *Network) scheduleAnnounce(at sim.Time, n *Node, h types.Hash, origin bool) {
	ln := net.laneOf(n.idx())
	if ln == nil {
		var idx int32
		if k := len(net.annFree); k > 0 {
			idx = net.annFree[k-1]
			net.annFree = net.annFree[:k-1]
		} else {
			net.ann = append(net.ann, announce{})
			idx = int32(len(net.ann) - 1)
		}
		net.ann[idx] = announce{node: n, hash: h, origin: origin}
		net.engine.ScheduleCallAt(at, net, opAnnounce, uint64(idx))
		return
	}
	var idx int32
	if k := len(ln.annFree); k > 0 {
		idx = ln.annFree[k-1]
		ln.annFree = ln.annFree[:k-1]
	} else {
		ln.ann = append(ln.ann, announce{})
		idx = int32(len(ln.ann) - 1)
	}
	ln.ann[idx] = announce{node: n, hash: h, origin: origin}
	ln.engine.ScheduleCallAt(at, ln, opAnnounce, uint64(idx))
}

// HandleEvent implements sim.Handler: it dispatches the network's two
// typed event kinds. Slots are freed before the callee runs so nested
// sends can immediately reuse them.
func (net *Network) HandleEvent(now sim.Time, op, idx uint64) {
	switch op {
	case opDeliver:
		d := net.deliv[idx]
		net.deliv[idx] = delivery{}
		net.delivFree = append(net.delivFree, int32(idx))
		ti := d.to.idx()
		if net.down[ti] {
			// The destination crashed while the message was in flight;
			// its TCP connections are gone, so the bytes never arrive.
			net.MessagesDropped++
			net.releaseMessageIn(nil, d.msg)
			return
		}
		net.msgsIn[ti]++
		net.bytesIn[ti] += uint64(d.size)
		d.to.handle(now, d.from, d.srcPos, d.msg)
		net.releaseMessageIn(nil, d.msg)
	case opAnnounce:
		a := net.ann[idx]
		net.ann[idx] = announce{}
		net.annFree = append(net.annFree, int32(idx))
		if net.down[a.node.idx()] {
			// The wave was scheduled before the node crashed.
			return
		}
		net.relayProto.OnWave(net.envFor(a.node, now), now, a.hash, a.origin)
	}
}

// EventName implements sim.EventNamer: it labels the network's typed
// events in engine traces.
func (net *Network) EventName(op uint64) string {
	switch op {
	case opDeliver:
		return "p2p.deliver"
	case opAnnounce:
		return "p2p.announce"
	default:
		return "p2p.unknown"
	}
}

// fanoutOrder fills the executing lane's permutation scratch with a
// random ordering of [0, n), drawing exactly as rng.Perm(n) would
// from that lane's stream (ln nil: the network scratch and RNG).
func (net *Network) fanoutOrder(ln *netLane, n int) []int {
	buf, rng := &net.orderBuf, net.rng
	if ln != nil {
		buf, rng = &ln.orderBuf, ln.rng
	}
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	out := (*buf)[:n]
	rng.PermInto(out)
	return out
}
