package p2p

import (
	"repro/internal/p2p/relay"
	"repro/internal/sim"
	"repro/internal/types"
)

// relayEnv is the p2p implementation of relay.Env: the narrow,
// allocation-free view of one node's network surface that relay
// protocols drive. The network keeps a single instance and repoints
// it per dispatch (envFor / envForMsg); protocol calls are strictly
// nested inside one engine event, so the shared scratch is never
// aliased.
type relayEnv struct {
	net *Network
	// lane is the owning netLane in sharded mode (nil unsharded): the
	// source of scratch buffers, RNG draws and message pool for every
	// call made through this env.
	lane    *netLane
	node    *Node
	nodeIdx int32
	// now is the virtual time of the event this env was repointed for.
	// Deferred scheduling (ScheduleWave) is anchored to it rather than
	// to an engine clock: in sharded mode the executing engine's clock
	// can trail the event time (phase A runs on the global lane).
	now sim.Time
	// fromIdx/fromPos record the sender of the message currently being
	// dispatched (and its validated position in the node's span), so
	// protocol pulls back to the sender derive the reverse position in
	// O(1). -1 outside a message dispatch.
	fromIdx int32
	fromPos int32
	// cand is the candidate view filled by Candidates — span positions
	// into the node's adjacency window, backed by the shared scratch
	// buffer Network.candBuf.
	cand []int32
}

var _ relay.Env = (*relayEnv)(nil)

// NodeID is the hosting node's identifier.
func (e *relayEnv) NodeID() int { return int(e.node.id) }

// HasBlock reports whether the node holds the full block.
func (e *relayEnv) HasBlock(h types.Hash) bool {
	idx, ok := e.net.blockIdx.lookup(h)
	return ok && e.net.haveBits.get(e.nodeIdx, idx)
}

// KnownTx reports transaction-pool visibility (gossip-seen hashes).
func (e *relayEnv) KnownTx(h types.Hash) bool {
	idx, ok := e.net.txIdx.lookup(h)
	return ok && e.net.txBits.get(e.nodeIdx, idx)
}

// Candidates fills the shared scratch with the span positions of the
// node's peers not yet known to have h, in peer order, and returns the
// count. One window lookup up front, then one mask bit per peer — no
// per-peer hashing.
func (e *relayEnv) Candidates(h types.Hash) int {
	buf := &e.net.candBuf
	if e.lane != nil {
		buf = &e.lane.candBuf
	}
	c := (*buf)[:0]
	i := e.nodeIdx
	s := e.net.top.spans[i]
	slot := int32(-1)
	if idx, ok := e.net.blockIdx.lookup(h); ok {
		slot = e.net.windowSlot(i, idx)
	}
	if slot < 0 {
		// Block outside the suppression window: every peer is a
		// candidate.
		for p := int32(0); p < s.len; p++ {
			c = append(c, p)
		}
	} else {
		bit := uint64(1) << uint(slot)
		spilled := len(e.net.spill[i]) > 0
		for p := int32(0); p < s.len; p++ {
			if e.net.top.knowMask[s.off+p]&bit != 0 {
				continue
			}
			if spilled && e.net.spillHas(i, e.net.top.adj[s.off+p], slot) {
				continue
			}
			c = append(c, p)
		}
	}
	*buf = c[:0]
	e.cand = c
	return len(c)
}

// Fanout returns a shared-scratch random permutation of [0, n).
func (e *relayEnv) Fanout(n int) []int { return e.net.fanoutOrder(e.lane, n) }

// peerAt resolves candidate i to its span position, edge index and
// node handle.
func (e *relayEnv) peerAt(i int) (pos, edge int32, peer *Node) {
	pos = e.cand[i]
	edge = e.net.top.spans[e.nodeIdx].off + pos
	return pos, edge, e.net.NodeAt(int(e.net.top.adj[edge]))
}

// PushBlock sends the full body to candidate i, marking it known.
func (e *relayEnv) PushBlock(i int, at sim.Time, b *types.Block) {
	pos, edge, peer := e.peerAt(i)
	e.node.markPeerKnows(b.Hash(), peer.id, pos)
	m := e.net.newMessage(e.nodeIdx, MsgNewBlock)
	m.Block = b
	e.net.send(at, e.node, peer, m, e.net.top.revAdj[edge])
}

// PushCompact sends a short-ID sketch to candidate i, marking it
// known (it will hold the block after reconstruction or fallback).
func (e *relayEnv) PushCompact(i int, at sim.Time, b *types.Block) {
	pos, edge, peer := e.peerAt(i)
	e.node.markPeerKnows(b.Hash(), peer.id, pos)
	m := e.net.newMessage(e.nodeIdx, MsgCompactBlock)
	m.Block = b
	e.net.send(at, e.node, peer, m, e.net.top.revAdj[edge])
}

// Announce sends a hash announcement to candidate i.
func (e *relayEnv) Announce(i int, at sim.Time, h types.Hash) {
	pos, edge, peer := e.peerAt(i)
	e.node.markPeerKnows(h, peer.id, pos)
	m := e.net.newMessage(e.nodeIdx, MsgNewBlockHashes)
	m.hash1[0] = h
	m.Hashes = m.hash1[:1]
	e.net.send(at, e.node, peer, m, e.net.top.revAdj[edge])
}

// peerByID resolves a pull target, refusing self-sends.
func (e *relayEnv) peerByID(peer int) *Node {
	to := e.net.nodeByID(NodeID(peer))
	if to == nil || to.id == e.node.id {
		return nil
	}
	return to
}

// srcPosFor returns the position of the hosting node in the target's
// span for a pull send: protocols pull from the sender of the message
// being dispatched, whose reverse position is one arena read away.
// -1 otherwise (the receiver falls back to a scan).
func (e *relayEnv) srcPosFor(toIdx int32) int32 {
	if toIdx == e.fromIdx && e.fromPos >= 0 {
		return e.net.top.revAdj[e.net.top.spans[e.nodeIdx].off+e.fromPos]
	}
	return -1
}

// RequestBlock asks peer for the full body (GetBlock).
func (e *relayEnv) RequestBlock(peer int, at sim.Time, h types.Hash) {
	to := e.peerByID(peer)
	if to == nil {
		return
	}
	m := e.net.newMessage(e.nodeIdx, MsgGetBlock)
	m.Want = h
	e.net.send(at, e.node, to, m, e.srcPosFor(to.idx()))
}

// RequestCompact asks peer for a sketch (GetCompact).
func (e *relayEnv) RequestCompact(peer int, at sim.Time, h types.Hash) {
	to := e.peerByID(peer)
	if to == nil {
		return
	}
	m := e.net.newMessage(e.nodeIdx, MsgGetCompact)
	m.Want = h
	e.net.send(at, e.node, to, m, e.srcPosFor(to.idx()))
}

// RequestTxns runs the missing-transaction round trip's request leg.
func (e *relayEnv) RequestTxns(peer int, at sim.Time, h types.Hash, count, bytes int) {
	to := e.peerByID(peer)
	if to == nil {
		return
	}
	m := e.net.newMessage(e.nodeIdx, MsgGetBlockTxns)
	m.Want = h
	m.TxCount = count
	m.TxBytes = bytes
	e.net.send(at, e.node, to, m, e.srcPosFor(to.idx()))
}

// ScheduleWave queues the node's deferred announce wave, anchored to
// the event time this env was repointed for.
func (e *relayEnv) ScheduleWave(delay sim.Time, h types.Hash, origin bool) {
	e.net.scheduleAnnounce(e.now+delay, e.node, h, origin)
}

// AcceptBlock hands the node a fully available body.
func (e *relayEnv) AcceptBlock(now sim.Time, b *types.Block) {
	e.node.acceptBlock(now, b, false)
}

// SetPending records an in-flight reconstruction or fallback fetch.
func (e *relayEnv) SetPending(h types.Hash, b *types.Block) bool {
	i := e.nodeIdx
	idx := e.net.blockIdx.intern(h)
	for _, p := range e.net.pending[i] {
		if p.idx == idx {
			return false
		}
	}
	e.net.pending[i] = append(e.net.pending[i], pendingEntry{idx: idx, b: b})
	return true
}

// HasPending reports an in-flight fetch for h.
func (e *relayEnv) HasPending(h types.Hash) bool {
	idx, ok := e.net.blockIdx.lookup(h)
	if !ok {
		return false
	}
	for _, p := range e.net.pending[e.nodeIdx] {
		if p.idx == idx {
			return true
		}
	}
	return false
}

// TakePending removes and returns the pending entry for h.
func (e *relayEnv) TakePending(h types.Hash) (*types.Block, bool) {
	idx, ok := e.net.blockIdx.lookup(h)
	if !ok {
		return nil, false
	}
	ps := e.net.pending[e.nodeIdx]
	for k := range ps {
		if ps[k].idx == idx {
			b := ps[k].b
			ps[k] = ps[len(ps)-1]
			e.net.pending[e.nodeIdx] = ps[:len(ps)-1]
			return b, true
		}
	}
	return nil, false
}
