package p2p

import (
	"repro/internal/p2p/relay"
	"repro/internal/sim"
	"repro/internal/types"
)

// relayEnv is the p2p implementation of relay.Env: the narrow,
// allocation-free view of one node's network surface that relay
// protocols drive. The network keeps a single instance and repoints
// it per dispatch (envFor); protocol calls are strictly nested inside
// one engine event, so the shared scratch is never aliased.
type relayEnv struct {
	net  *Network
	node *Node
	// cand is the candidate view filled by Candidates — the same
	// shared scratch buffer (Network.candBuf) the pre-extraction relay
	// path used.
	cand []*Node
}

var _ relay.Env = (*relayEnv)(nil)

// NodeID is the hosting node's identifier.
func (e *relayEnv) NodeID() int { return int(e.node.id) }

// HasBlock reports whether the node holds the full block.
func (e *relayEnv) HasBlock(h types.Hash) bool { return e.node.haveBlocks[h] }

// KnownTx reports transaction-pool visibility (gossip-seen hashes).
func (e *relayEnv) KnownTx(h types.Hash) bool { return e.node.knownTxs[h] }

// Candidates fills the shared scratch with the node's peers not yet
// known to have h, in peer order, and returns the count.
func (e *relayEnv) Candidates(h types.Hash) int {
	c := e.net.candBuf[:0]
	for _, peer := range e.node.peers {
		if !e.node.peerKnowsBlock(h, peer.id) {
			c = append(c, peer)
		}
	}
	e.net.candBuf = c[:0]
	e.cand = c
	return len(c)
}

// Fanout returns a shared-scratch random permutation of [0, n).
func (e *relayEnv) Fanout(n int) []int { return e.net.fanoutOrder(n) }

// PushBlock sends the full body to candidate i, marking it known.
func (e *relayEnv) PushBlock(i int, at sim.Time, b *types.Block) {
	peer := e.cand[i]
	e.node.markPeerKnows(b.Hash(), peer.id)
	m := e.net.newMessage(MsgNewBlock)
	m.Block = b
	e.net.send(at, e.node, peer, m)
}

// PushCompact sends a short-ID sketch to candidate i, marking it
// known (it will hold the block after reconstruction or fallback).
func (e *relayEnv) PushCompact(i int, at sim.Time, b *types.Block) {
	peer := e.cand[i]
	e.node.markPeerKnows(b.Hash(), peer.id)
	m := e.net.newMessage(MsgCompactBlock)
	m.Block = b
	e.net.send(at, e.node, peer, m)
}

// Announce sends a hash announcement to candidate i.
func (e *relayEnv) Announce(i int, at sim.Time, h types.Hash) {
	peer := e.cand[i]
	e.node.markPeerKnows(h, peer.id)
	m := e.net.newMessage(MsgNewBlockHashes)
	m.hash1[0] = h
	m.Hashes = m.hash1[:1]
	e.net.send(at, e.node, peer, m)
}

// peerByID resolves a pull target, refusing self-sends.
func (e *relayEnv) peerByID(peer int) *Node {
	to, ok := e.net.nodes[NodeID(peer)]
	if !ok || to.id == e.node.id {
		return nil
	}
	return to
}

// RequestBlock asks peer for the full body (GetBlock).
func (e *relayEnv) RequestBlock(peer int, at sim.Time, h types.Hash) {
	to := e.peerByID(peer)
	if to == nil {
		return
	}
	m := e.net.newMessage(MsgGetBlock)
	m.Want = h
	e.net.send(at, e.node, to, m)
}

// RequestCompact asks peer for a sketch (GetCompact).
func (e *relayEnv) RequestCompact(peer int, at sim.Time, h types.Hash) {
	to := e.peerByID(peer)
	if to == nil {
		return
	}
	m := e.net.newMessage(MsgGetCompact)
	m.Want = h
	e.net.send(at, e.node, to, m)
}

// RequestTxns runs the missing-transaction round trip's request leg.
func (e *relayEnv) RequestTxns(peer int, at sim.Time, h types.Hash, count, bytes int) {
	to := e.peerByID(peer)
	if to == nil {
		return
	}
	m := e.net.newMessage(MsgGetBlockTxns)
	m.Want = h
	m.TxCount = count
	m.TxBytes = bytes
	e.net.send(at, e.node, to, m)
}

// ScheduleWave queues the node's deferred announce wave.
func (e *relayEnv) ScheduleWave(delay sim.Time, h types.Hash, origin bool) {
	e.net.scheduleAnnounce(delay, e.node, h, origin)
}

// AcceptBlock hands the node a fully available body.
func (e *relayEnv) AcceptBlock(now sim.Time, b *types.Block) {
	e.node.acceptBlock(now, b, false)
}

// SetPending records an in-flight reconstruction or fallback fetch.
func (e *relayEnv) SetPending(h types.Hash, b *types.Block) bool {
	if e.node.pendingRelay == nil {
		e.node.pendingRelay = make(map[types.Hash]*types.Block, 4)
	} else if _, exists := e.node.pendingRelay[h]; exists {
		return false
	}
	e.node.pendingRelay[h] = b
	return true
}

// HasPending reports an in-flight fetch for h.
func (e *relayEnv) HasPending(h types.Hash) bool {
	_, ok := e.node.pendingRelay[h]
	return ok
}

// TakePending removes and returns the pending entry for h.
func (e *relayEnv) TakePending(h types.Hash) (*types.Block, bool) {
	b, ok := e.node.pendingRelay[h]
	if ok {
		delete(e.node.pendingRelay, h)
	}
	return b, ok
}
