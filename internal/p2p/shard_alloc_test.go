package p2p_test

import (
	"fmt"
	"testing"

	"repro/internal/geo"
	"repro/internal/p2p"
	"repro/internal/p2p/relay"
	"repro/internal/sim"
	"repro/internal/types"
)

// shardAllocFixture builds a warmed sharded overlay: a conductor with
// the full region-lane layout, 30 nodes spread across every region
// (so block spreads cross lanes constantly), and a pre-built chain.
func shardAllocFixture(t testing.TB, total int) (*sim.Conductor, []*p2p.Node, []*types.Block) {
	t.Helper()
	cond := sim.NewConductor(geo.NumRegions)
	rng := sim.NewRNG(7)
	net := p2p.NewNetwork(cond.Global(), rng.Fork("network"), geo.DefaultLatencyModel())
	net.SetRelay(relay.MustNew(relay.Config{Mode: relay.SqrtPush}))
	var nodes []*p2p.Node
	regions := geo.Regions()
	for i := 0; i < 30; i++ {
		n, err := net.AddNode(regions[i%len(regions)], 0)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	if err := net.WireRandom(6); err != nil {
		t.Fatal(err)
	}
	// Per-pair lookahead bounds from the latency model, as core wires
	// them — so the measurement covers the topology-aware deadline path
	// and its pair-window accounting, not just uniform bounds.
	model := geo.DefaultLatencyModel()
	bounds := make([][]sim.Time, geo.NumRegions)
	for i, from := range regions {
		bounds[i] = make([]sim.Time, geo.NumRegions)
		for j, to := range regions {
			d, err := model.MinPairDelay(from, to)
			if err != nil {
				t.Fatal(err)
			}
			bounds[i][j] = d
		}
	}
	cond.SetBounds(bounds)
	net.EnableSharding(cond, func() relay.Protocol {
		return relay.MustNew(relay.Config{Mode: relay.SqrtPush})
	})
	parent := types.Hash{}
	blocks := make([]*types.Block, 0, total)
	for k := 0; k < total; k++ {
		blk := types.NewBlock(types.Header{
			ParentHash: parent,
			Number:     uint64(k + 1),
			MinerLabel: "Alloc",
			TimeMillis: uint64(k),
			GasLimit:   8_000_000,
		}, nil, nil)
		parent = blk.Hash()
		blocks = append(blocks, blk)
	}
	return cond, nodes, blocks
}

// shardedAllocsPerSpread measures steady-state heap allocations for
// one sharded block spread: inject at the frontier, then run the
// conductor's window loop to drain — merges, cross-buffer appends and
// phase-B lane execution included.
func shardedAllocsPerSpread(t testing.TB, workers int) float64 {
	const warmup, measured = 120, 60
	cond, nodes, blocks := shardAllocFixture(t, warmup+measured+1)
	next := 0
	spread := func() {
		blk := blocks[next]
		origin := nodes[(7*next)%len(nodes)]
		next++
		origin.InjectBlock(cond.Now(), blk)
		cond.Run(workers)
	}
	for i := 0; i < warmup; i++ {
		spread()
	}
	return testing.AllocsPerRun(measured, spread)
}

// The cross-shard queue's allocation contract: in steady state the
// per-lane cross buffers, the merge's sort scratch, the lane message
// pools (leveled across lanes at each merge, so exporter lanes never
// drain), the pair-window stats and the lane delivery slots are all
// recycled, so a sharded spread costs the same per-node bookkeeping
// as an unsharded one (haveBlocks/peerKnows map inserts, ~14 on this
// fixture) plus a small constant from each Conductor.Run call (the
// phase-B worker pool: jobs channel, goroutines, snapshot slices). A
// regression that allocates per cross-lane *message* — a fresh
// crossMsg, an unpooled sort buffer, a per-merge refs slice, a
// message pool drained by one-way flows — would show up at hundreds
// per spread. Measured: 12 at workers=1, 17 at workers=6.
const shardedSpreadAllocCeiling = 30

// TestShardedAllocationCeiling guards the cross-shard queue's
// steady-state allocation behaviour at both ends of the worker knob.
func TestShardedAllocationCeiling(t *testing.T) {
	for _, workers := range []int{1, 6} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got := shardedAllocsPerSpread(t, workers)
			t.Logf("workers=%d: %.1f allocs per sharded block spread", workers, got)
			if got > shardedSpreadAllocCeiling {
				t.Fatalf("sharded spread allocates %.1f (ceiling %v) — a cross-shard queue structure stopped recycling",
					got, shardedSpreadAllocCeiling)
			}
		})
	}
}

// BenchmarkShardedBlockSpread reports ns and B/op for one sharded
// block spread (inject + window-loop drain) on the warmed fixture.
func BenchmarkShardedBlockSpread(b *testing.B) {
	for _, workers := range []int{1, 6} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cond, nodes, blocks := shardAllocFixture(b, b.N+1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				origin := nodes[(7*i)%len(nodes)]
				origin.InjectBlock(cond.Now(), blocks[i])
				cond.Run(workers)
			}
		})
	}
}
