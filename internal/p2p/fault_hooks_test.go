package p2p

import (
	"errors"
	"testing"

	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/types"
)

// testFilter is a scriptable LinkFilter.
type testFilter struct {
	drop  bool
	extra sim.Time
	calls int
}

var errTestDrop = errors.New("p2p_test: scripted drop")

func (f *testFilter) FilterLink(now sim.Time, from, to *Node) (sim.Time, error) {
	f.calls++
	if f.drop {
		return 0, errTestDrop
	}
	return f.extra, nil
}

// TestCrashDropsTraffic checks all three drop points: sends to a down
// node, in-flight deliveries to a node that crashes mid-transit, and
// injections at a down node.
func TestCrashDropsTraffic(t *testing.T) {
	net := zeroLatencyNetwork(t, 31)
	a := addNode(t, net, geo.WesternEurope, 0)
	b := addNode(t, net, geo.WesternEurope, 0)
	if err := net.Connect(a, b); err != nil {
		t.Fatal(err)
	}

	// In-flight crash: the block leaves a, then b crashes before the
	// delivery event fires.
	a.InjectBlock(0, testBlock(1, "Ethermine"))
	net.CrashNode(b)
	net.Engine().Run()
	if !b.Down() {
		t.Fatal("b not down")
	}
	if b.KnowsBlock(testBlock(1, "Ethermine").Hash()) {
		t.Fatal("down node received an in-flight block")
	}
	if net.MessagesDropped == 0 {
		t.Fatal("in-flight delivery to a crashed node not counted as dropped")
	}
	if a.PeerCount() != 0 || b.PeerCount() != 0 {
		t.Fatalf("crash left connections: a=%d b=%d", a.PeerCount(), b.PeerCount())
	}

	// Injection at a down node is swallowed.
	before := net.MessagesSent
	b.InjectBlock(10, testBlock(2, "Ethermine"))
	net.Engine().Run()
	if net.MessagesSent != before {
		t.Fatal("down node relayed an injection")
	}
	if b.KnowsBlock(testBlock(2, "Ethermine").Hash()) {
		t.Fatal("down node recorded an injection")
	}

	// Recovery restores service.
	net.RecoverNode(b)
	if err := net.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	a.InjectBlock(20, testBlock(3, "F2Pool"))
	net.Engine().Run()
	if !b.KnowsBlock(testBlock(3, "F2Pool").Hash()) {
		t.Fatal("recovered node did not receive a fresh block")
	}
}

// TestDisconnectIsSymmetricAndOrderPreserving pins Disconnect's
// contract: both directions drop, survivors keep their order.
func TestDisconnectIsSymmetricAndOrderPreserving(t *testing.T) {
	net := zeroLatencyNetwork(t, 33)
	hub := addNode(t, net, geo.WesternEurope, 0)
	var leaves []*Node
	for i := 0; i < 4; i++ {
		n := addNode(t, net, geo.WesternEurope, 0)
		if err := net.Connect(hub, n); err != nil {
			t.Fatal(err)
		}
		leaves = append(leaves, n)
	}
	net.Disconnect(hub, leaves[1])
	if hub.PeerCount() != 3 {
		t.Fatalf("hub peers %d, want 3", hub.PeerCount())
	}
	if leaves[1].PeerCount() != 0 {
		t.Fatal("disconnect was not symmetric")
	}
	want := []NodeID{leaves[0].ID(), leaves[2].ID(), leaves[3].ID()}
	for i := range want {
		got := NodeID(net.top.peerAt(hub.idx(), int32(i)) + 1)
		if got != want[i] {
			t.Fatalf("peer order disturbed at %d: %d want %d", i, got, want[i])
		}
	}
	// Disconnecting an unconnected pair is a no-op.
	net.Disconnect(hub, leaves[1])
	if hub.PeerCount() != 3 {
		t.Fatal("double disconnect mutated the peer list")
	}
}

// TestLinkFilterDropAndDelay checks the transport consults the filter
// once per send and honors both outcomes.
func TestLinkFilterDropAndDelay(t *testing.T) {
	net := zeroLatencyNetwork(t, 35)
	a := addNode(t, net, geo.WesternEurope, 0)
	b := addNode(t, net, geo.WesternEurope, 0)
	if err := net.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	filter := &testFilter{drop: true}
	net.Fault = filter

	a.InjectBlock(0, testBlock(1, "Ethermine"))
	net.Engine().Run()
	if filter.calls == 0 {
		t.Fatal("filter never consulted")
	}
	if b.KnowsBlock(testBlock(1, "Ethermine").Hash()) {
		t.Fatal("dropped send delivered anyway")
	}
	if net.MessagesDropped == 0 {
		t.Fatal("filtered drop not counted")
	}

	// Extra delay defers, but does not drop, delivery.
	filter.drop = false
	filter.extra = 500 * sim.Millisecond
	a.InjectBlock(1000, testBlock(2, "Ethermine"))
	net.Engine().RunUntil(1000 + 400*sim.Millisecond)
	if b.KnowsBlock(testBlock(2, "Ethermine").Hash()) {
		t.Fatal("delivery arrived before the scripted extra delay")
	}
	net.Engine().Run()
	if !b.KnowsBlock(testBlock(2, "Ethermine").Hash()) {
		t.Fatal("delayed delivery never arrived")
	}
}

// TestParentPullRecoversMissedAncestry simulates the partition gap: a
// node that missed a block range pulls the whole missing ancestry when
// the next descendant arrives, via recursive GetBlock walks.
func TestParentPullRecoversMissedAncestry(t *testing.T) {
	net := zeroLatencyNetwork(t, 37)
	net.ParentPull = true
	src := addNode(t, net, geo.WesternEurope, 0)
	lagger := addNode(t, net, geo.WesternEurope, 0)

	// src owns a 5-block chain the lagger never saw.
	chain := make([]*types.Block, 0, 5)
	parent := types.Hash{}
	for i := 1; i <= 5; i++ {
		h := types.Header{
			Number: uint64(i), ParentHash: parent, MinerLabel: "Ethermine",
			TimeMillis: uint64(i), Difficulty: 1, GasLimit: 8_000_000,
		}
		b := types.NewBlock(h, nil, nil)
		chain = append(chain, b)
		parent = b.Hash()
		src.rememberBlock(b.Hash(), b)
	}

	// The lagger connects and receives only the tip.
	if err := net.Connect(src, lagger); err != nil {
		t.Fatal(err)
	}
	tip := chain[4]
	m := net.newMessage(src.idx(), MsgNewBlock)
	m.Block = tip
	net.send(0, src, lagger, m, -1)
	net.Engine().Run()

	for i, b := range chain {
		if !lagger.KnowsBlock(b.Hash()) {
			t.Fatalf("ancestry block %d (height %d) not pulled", i, b.Header.Number)
		}
	}

	// Without the knob, the gap stays: only the tip arrives.
	net2 := zeroLatencyNetwork(t, 39)
	src2 := addNode(t, net2, geo.WesternEurope, 0)
	lag2 := addNode(t, net2, geo.WesternEurope, 0)
	for _, b := range chain {
		src2.rememberBlock(b.Hash(), b)
	}
	if err := net2.Connect(src2, lag2); err != nil {
		t.Fatal(err)
	}
	m2 := net2.newMessage(src2.idx(), MsgNewBlock)
	m2.Block = tip
	net2.send(0, src2, lag2, m2, -1)
	net2.Engine().Run()
	if lag2.KnowsBlock(chain[0].Hash()) {
		t.Fatal("parent pull ran with ParentPull disabled")
	}
	if !lag2.KnowsBlock(tip.Hash()) {
		t.Fatal("tip not delivered")
	}
}
