// Package p2p simulates the Ethereum wire protocol's dissemination
// layer (eth/63 era, matching the paper's Geth build): blocks
// propagate either as direct NewBlock pushes (header + body) to a
// square-root subset of peers or as NewBlockHashes announcements to
// the rest, with announcement receivers pulling unknown blocks via
// GetBlock. Transactions are broadcast to all peers.
//
// Every message carries a realistic serialized size (derived from the
// RLP encodings in internal/types), which the geo latency model turns
// into transfer delay. The redundancy the paper measures in Table II
// is an emergent property of this protocol.
package p2p

import (
	"repro/internal/p2p/relay"
	"repro/internal/types"
)

// MsgKind discriminates wire messages.
type MsgKind int

// Wire message kinds: the eth/63 protocol subset the study logs, plus
// the compact-relay family (sketches and the missing-transaction
// round trip) used by the relay.Compact discipline.
const (
	MsgNewBlock MsgKind = iota + 1
	MsgNewBlockHashes
	MsgGetBlock
	MsgTransactions
	// MsgCompactBlock carries a short-ID sketch of a block (header +
	// one ShortID per transaction).
	MsgCompactBlock
	// MsgGetCompact requests a sketch of an announced block.
	MsgGetCompact
	// MsgGetBlockTxns requests the transactions a sketch receiver
	// could not resolve from its pool.
	MsgGetBlockTxns
	// MsgBlockTxns delivers the requested missing transactions.
	MsgBlockTxns

	// msgKindCount bounds the per-class accounting arrays (kinds are
	// 1-based).
	msgKindCount
)

// String names the message kind as in the paper's log schema.
func (k MsgKind) String() string {
	switch k {
	case MsgNewBlock:
		return "NewBlock"
	case MsgNewBlockHashes:
		return "NewBlockHashes"
	case MsgGetBlock:
		return "GetBlock"
	case MsgTransactions:
		return "Transactions"
	case MsgCompactBlock:
		return "CompactBlock"
	case MsgGetCompact:
		return "GetCompact"
	case MsgGetBlockTxns:
		return "GetBlockTxns"
	case MsgBlockTxns:
		return "BlockTxns"
	default:
		return "Unknown"
	}
}

// Message is a wire message instance. Exactly one payload field is
// populated depending on Kind.
//
// Messages on the hot path are pooled: the network recycles a message
// as soon as the receiving node's handler (and its observer) returns.
// Observers must therefore copy — never retain — a message or its
// payload slices.
type Message struct {
	Kind MsgKind
	// Block is the payload of MsgNewBlock and — the sketch's identity
	// and content in the simulation's object graph — MsgCompactBlock.
	Block *types.Block
	// Hashes is the payload of MsgNewBlockHashes.
	Hashes []types.Hash
	// Want is the payload of MsgGetBlock, MsgGetCompact and the block
	// identity of MsgGetBlockTxns / MsgBlockTxns.
	Want types.Hash
	// Txs is the payload of MsgTransactions.
	Txs []*types.Transaction
	// TxCount / TxBytes size the missing-transaction round trip
	// (MsgGetBlockTxns carries the request shape, MsgBlockTxns the
	// response payload size).
	TxCount int
	TxBytes int

	// hash1 backs the common single-hash announcement so each send
	// does not allocate a one-element slice. (The sender travels in
	// the pooled delivery slot, not in the message.)
	hash1 [1]types.Hash
}

// Wire-size constants for the fixed-size message parts.
const (
	msgHeaderBytes    = 16 // devp2p frame overhead
	hashEntryBytes    = types.HashLen + 1
	getBlockBodyBytes = types.HashLen
)

// Size returns the serialized message size in bytes, fed into the
// latency model's transfer term.
func (m *Message) Size() int {
	switch m.Kind {
	case MsgNewBlock:
		if m.Block == nil {
			return msgHeaderBytes
		}
		return msgHeaderBytes + m.Block.EncodedSize()
	case MsgNewBlockHashes:
		return msgHeaderBytes + len(m.Hashes)*hashEntryBytes
	case MsgGetBlock:
		return msgHeaderBytes + getBlockBodyBytes
	case MsgTransactions:
		n := msgHeaderBytes
		for _, tx := range m.Txs {
			n += tx.EncodedSize()
		}
		return n
	case MsgCompactBlock:
		if m.Block == nil {
			return msgHeaderBytes
		}
		// Header and uncle references travel in full; the body is one
		// short ID per transaction.
		header := m.Block.EncodedSize() - m.Block.TxsSize()
		return msgHeaderBytes + header + relay.SketchWireBytes(len(m.Block.Txs))
	case MsgGetCompact:
		return msgHeaderBytes + getBlockBodyBytes
	case MsgGetBlockTxns:
		// Hash plus a count prefix and ~3-byte varint indexes.
		return msgHeaderBytes + types.HashLen + 1 + 3*m.TxCount
	case MsgBlockTxns:
		return msgHeaderBytes + types.HashLen + m.TxBytes
	default:
		return msgHeaderBytes
	}
}
