package p2p

import (
	"math"

	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/types"
)

// NodeID identifies a node. Ethereum derives neighbor relationships
// from random 512-bit node IDs; geographic position plays no role in
// peer selection (§III-B1), which the simulator mirrors by wiring the
// overlay uniformly at random.
type NodeID int

// Observer receives a callback for every message a node accepts from
// the wire, before protocol processing. The measurement layer hooks
// here — exactly where the paper's instrumented Geth placed its
// logging.
type Observer func(now sim.Time, from NodeID, msg *Message)

// Protocol timing constants, modeling the two-phase Geth behavior:
// a NewBlock push is relayed after cheap PoW/header validation, while
// the hash announcement to remaining peers waits for full import
// (state execution), which in 2019 took a few hundred milliseconds.
const (
	blockValidateMillis   = 4
	blockImportMillis     = 200
	announceHandleMillis  = 1
	txValidatePer100Txs   = 1
	blockRequestRespondMs = 1
)

// knownPeerCap bounds how many recent blocks a node tracks per-peer
// knowledge for. Older blocks are no longer in flight, so their
// suppression state can be dropped.
const knownPeerCap = 64

// blockCacheCap bounds how many recent full-block bodies a node
// retains for serving GetBlock pulls, evicted FIFO in insertion order
// (deterministic). Pulls only ever target blocks still propagating —
// seconds old, a handful of heights deep — so a four-digit cap is far
// outside the in-flight window while keeping per-node memory O(cap)
// instead of O(chain length).
const blockCacheCap = 1024

// Node is a protocol-conformant network participant: it deduplicates,
// validates (as a time cost) and relays blocks and transactions, and
// suppresses sends to peers already known to have an item (Geth's
// per-peer known-set behavior — the mechanism behind the paper's
// Table II redundancy profile).
type Node struct {
	id     NodeID
	region geo.Region
	net    *Network

	peers    []*Node
	peerSet  map[NodeID]bool
	maxPeers int // 0 = unlimited (the paper's measurement setting)

	// haveBlocks is the permanent received-block set (one hash per
	// block — the dedup ground truth). knownBlocks caches the most
	// recent blockCacheCap bodies for GetBlock serving; blockQueue is
	// its FIFO eviction order.
	haveBlocks  map[types.Hash]bool
	knownBlocks map[types.Hash]*types.Block
	blockQueue  []types.Hash
	seenHashes  map[types.Hash]bool // announced or received
	knownTxs    map[types.Hash]bool

	// peerKnows tracks, for recent blocks, which peers are known to
	// have them (they sent it to us, or we sent it to them).
	peerKnows map[types.Hash]map[NodeID]bool
	knowQueue []types.Hash

	observer Observer
	// relay controls whether this node forwards what it receives.
	// Measurement nodes relay like every other node (the paper's
	// clients are indistinguishable from regular peers); the flag
	// exists for ablations.
	relay bool
	// down marks a crashed (or permanently departed) node: it holds no
	// connections, drops in-flight deliveries on arrival and ignores
	// injections until recovered. See Network.CrashNode.
	down bool
}

// ID returns the node identifier.
func (n *Node) ID() NodeID { return n.id }

// Region returns the node's geographic region.
func (n *Node) Region() geo.Region { return n.region }

// PeerCount returns the current number of connections.
func (n *Node) PeerCount() int { return len(n.peers) }

// Down reports whether the node is currently crashed or departed.
func (n *Node) Down() bool { return n.down }

// SetObserver installs a message observer (nil removes it).
func (n *Node) SetObserver(obs Observer) { n.observer = obs }

// KnowsBlock reports whether the node has received the full block.
func (n *Node) KnowsBlock(h types.Hash) bool {
	return n.haveBlocks[h]
}

// rememberBlock records full-block receipt and caches the body for
// GetBlock serving, evicting the oldest cached body past the cap.
func (n *Node) rememberBlock(h types.Hash, b *types.Block) {
	n.haveBlocks[h] = true
	n.knownBlocks[h] = b
	n.blockQueue = append(n.blockQueue, h)
	if len(n.blockQueue) > blockCacheCap {
		evict := n.blockQueue[0]
		n.blockQueue = n.blockQueue[1:]
		delete(n.knownBlocks, evict)
	}
}

// markPeerKnows records that a peer has (or will shortly have) the
// block, suppressing future sends of it to that peer.
func (n *Node) markPeerKnows(h types.Hash, peer NodeID) {
	set, ok := n.peerKnows[h]
	if !ok {
		set = n.net.getKnowSet()
		n.peerKnows[h] = set
		n.knowQueue = append(n.knowQueue, h)
		if len(n.knowQueue) > knownPeerCap {
			evict := n.knowQueue[0]
			n.knowQueue = n.knowQueue[1:]
			if old, ok := n.peerKnows[evict]; ok {
				delete(n.peerKnows, evict)
				n.net.putKnowSet(old)
			}
		}
	}
	set[peer] = true
}

func (n *Node) peerKnowsBlock(h types.Hash, peer NodeID) bool {
	return n.peerKnows[h][peer]
}

// handle processes one incoming message at virtual time now.
func (n *Node) handle(now sim.Time, from NodeID, msg *Message) {
	if n.down {
		return
	}
	if n.observer != nil {
		n.observer(now, from, msg)
	}
	switch msg.Kind {
	case MsgNewBlock:
		if msg.Block != nil {
			n.markPeerKnows(msg.Block.Hash(), from)
			n.maybePullParent(now, from, msg.Block)
		}
		n.handleNewBlock(now, msg.Block)
	case MsgNewBlockHashes:
		n.handleAnnouncement(now, from, msg.Hashes)
	case MsgGetBlock:
		n.handleGetBlock(now, from, msg.Want)
	case MsgTransactions:
		n.handleTxs(now, from, msg.Txs)
	}
}

// InjectBlock makes this node the origin of a freshly mined block
// (mining-pool gateways call this). The origin skips the import delay
// before announcing: the miner already executed its own block. A down
// node swallows the injection — the submitter hit a dead endpoint.
func (n *Node) InjectBlock(now sim.Time, b *types.Block) {
	if n.down {
		return
	}
	n.relayBlock(now, b, true)
}

// InjectTx makes this node the origin of a new transaction. Like
// InjectBlock, a down node loses the submission.
func (n *Node) InjectTx(now sim.Time, tx *types.Transaction) {
	if n.down {
		return
	}
	n.handleTxs(now, n.id, []*types.Transaction{tx})
}

// maybePullParent is the catch-up fetch (Network.ParentPull): a block
// whose parent was never received — the partition-era gap — triggers a
// GetBlock for that parent from the block's sender. The response is a
// NewBlock, so the pull walks the missing ancestry recursively until
// it reaches known ground; the sender serves from its FIFO body cache,
// which comfortably covers any realistic outage window. The pull is
// deliberately NOT recorded in seenHashes: a pull can itself be lost
// to the very faults it recovers from, so every received copy of a
// gap's descendant retries it (a handful of redundant fetches, deduped
// by haveBlocks on arrival) until the parent actually lands.
func (n *Node) maybePullParent(now sim.Time, from NodeID, b *types.Block) {
	if !n.net.ParentPull || b.Header.Number < 2 {
		return
	}
	parent := b.Header.ParentHash
	if n.haveBlocks[parent] {
		return
	}
	sender, ok := n.net.nodes[from]
	if !ok || sender.id == n.id {
		return
	}
	m := n.net.newMessage(MsgGetBlock)
	m.Want = parent
	n.net.send(now+announceHandleMillis, n, sender, m)
}

func (n *Node) handleNewBlock(now sim.Time, b *types.Block) {
	n.relayBlock(now, b, false)
}

// relayBlock runs the two-phase dissemination. origin marks the block
// miner's own gateway, which pays no import delay before announcing.
func (n *Node) relayBlock(now sim.Time, b *types.Block, origin bool) {
	if b == nil {
		return
	}
	h := b.Hash()
	if n.haveBlocks[h] {
		return
	}
	n.rememberBlock(h, b)
	n.seenHashes[h] = true
	if !n.relay || len(n.peers) == 0 {
		return
	}
	// Phase 1 — push wave, after cheap validation: full block to a
	// policy-determined subset of peers not known to have it. The
	// candidate and permutation buffers are network-shared scratch;
	// both are fully consumed before this function returns.
	candidates := n.net.candBuf[:0]
	for _, peer := range n.peers {
		if !n.peerKnowsBlock(h, peer.id) {
			candidates = append(candidates, peer)
		}
	}
	n.net.candBuf = candidates[:0]
	if len(candidates) == 0 {
		return
	}
	var k int
	switch n.net.Push {
	case PushAll:
		k = len(candidates)
	case AnnounceOnly:
		k = 0
	default:
		k = int(math.Sqrt(float64(len(candidates))))
		if k < 1 {
			k = 1
		}
	}
	pushDelay := sim.Time(blockValidateMillis)
	order := n.net.fanoutOrder(len(candidates))
	for i := 0; i < k && i < len(order); i++ {
		peer := candidates[order[i]]
		n.markPeerKnows(h, peer.id)
		m := n.net.newMessage(MsgNewBlock)
		m.Block = b
		n.net.send(now+pushDelay, n, peer, m)
	}
	// Phase 2 — announce wave (announceWave): hash announcements to
	// peers still not known to have the block. Relayers pay the
	// full-import delay first (state execution). The origin — the pool
	// gateway that built the block — already executed it and announces
	// immediately, which is what pools run gateways for.
	announceDelay := pushDelay + blockImportMillis
	if origin {
		announceDelay = pushDelay
	}
	n.net.scheduleAnnounce(announceDelay, n, h, origin)
}

// announceWave is dissemination phase 2, fired through the typed
// dispatch path after the import delay: announce to a sqrt-bounded
// subset of the peers still not known to have the block (Geth's
// fetcher rate-limits hash announcements; the paper's Table II
// measures a mean announcement in-degree of only 2.585). The origin
// gateway announces to all of them.
func (n *Node) announceWave(now sim.Time, h types.Hash, origin bool) {
	if n.down {
		// The wave was scheduled before the node crashed.
		return
	}
	targets := n.net.candBuf[:0]
	for _, peer := range n.peers {
		if !n.peerKnowsBlock(h, peer.id) {
			targets = append(targets, peer)
		}
	}
	n.net.candBuf = targets[:0]
	if len(targets) == 0 {
		return
	}
	limit := len(targets)
	if !origin {
		limit = int(math.Sqrt(float64(len(targets))))
		if limit < 1 {
			limit = 1
		}
	}
	order := n.net.fanoutOrder(len(targets))
	for i := 0; i < limit; i++ {
		peer := targets[order[i]]
		n.markPeerKnows(h, peer.id)
		m := n.net.newMessage(MsgNewBlockHashes)
		m.hash1[0] = h
		m.Hashes = m.hash1[:1]
		n.net.send(now, n, peer, m)
	}
}

func (n *Node) handleAnnouncement(now sim.Time, from NodeID, hashes []types.Hash) {
	sender, ok := n.net.nodes[from]
	if !ok {
		return
	}
	for _, h := range hashes {
		// The announcer evidently has the block.
		n.markPeerKnows(h, from)
		if !n.relay || n.seenHashes[h] {
			continue
		}
		n.seenHashes[h] = true
		// Pull the unknown block from the announcer.
		m := n.net.newMessage(MsgGetBlock)
		m.Want = h
		n.net.send(now+announceHandleMillis, n, sender, m)
	}
}

func (n *Node) handleGetBlock(now sim.Time, from NodeID, want types.Hash) {
	b, ok := n.knownBlocks[want]
	if !ok {
		return
	}
	requester, ok := n.net.nodes[from]
	if !ok {
		return
	}
	n.markPeerKnows(want, from)
	m := n.net.newMessage(MsgNewBlock)
	m.Block = b
	n.net.send(now+blockRequestRespondMs, n, requester, m)
}

func (n *Node) handleTxs(now sim.Time, from NodeID, txs []*types.Transaction) {
	var fresh []*types.Transaction
	for _, tx := range txs {
		if tx == nil {
			continue
		}
		h := tx.Hash()
		if n.knownTxs[h] {
			continue
		}
		n.knownTxs[h] = true
		fresh = append(fresh, tx)
	}
	if len(fresh) == 0 || !n.relay {
		return
	}
	delay := sim.Time(1 + len(fresh)/100*txValidatePer100Txs)
	for _, peer := range n.peers {
		if peer.id == from {
			continue
		}
		// Each peer gets its own pooled message; the fresh batch slice
		// is shared by every copy (released messages drop, never
		// rewrite, it).
		m := n.net.newMessage(MsgTransactions)
		m.Txs = fresh
		n.net.send(now+delay, n, peer, m)
	}
}
