package p2p

import (
	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/types"
)

// NodeID identifies a node. Ethereum derives neighbor relationships
// from random 512-bit node IDs; geographic position plays no role in
// peer selection (§III-B1), which the simulator mirrors by wiring the
// overlay uniformly at random.
type NodeID int

// Observer receives a callback for every message a node accepts from
// the wire, before protocol processing. The measurement layer hooks
// here — exactly where the paper's instrumented Geth placed its
// logging.
type Observer func(now sim.Time, from NodeID, msg *Message)

// Local protocol timing constants. The block-relay timings
// (validate, import, announce handling) moved to internal/p2p/relay
// with the dissemination logic; what remains here covers the
// protocol-independent serving and transaction paths.
const (
	announceHandleMillis  = 1
	txValidatePer100Txs   = 1
	blockRequestRespondMs = 1
)

// knownPeerCap bounds how many recent blocks a node tracks per-peer
// knowledge for. Older blocks are no longer in flight, so their
// suppression state can be dropped.
const knownPeerCap = 64

// blockCacheCap bounds how many recent full-block bodies a node
// retains for serving GetBlock pulls, evicted FIFO in insertion order
// (deterministic). Pulls only ever target blocks still propagating —
// seconds old, a handful of heights deep — so a four-digit cap is far
// outside the in-flight window while keeping per-node memory O(cap)
// instead of O(chain length).
const blockCacheCap = 1024

// Node is a protocol-conformant network participant: it deduplicates,
// validates (as a time cost) and relays blocks and transactions, and
// suppresses sends to peers already known to have an item (Geth's
// per-peer known-set behavior — the mechanism behind the paper's
// Table II redundancy profile).
type Node struct {
	id     NodeID
	region geo.Region
	net    *Network

	peers    []*Node
	peerSet  map[NodeID]bool
	maxPeers int // 0 = unlimited (the paper's measurement setting)

	// haveBlocks is the permanent received-block set (one hash per
	// block — the dedup ground truth). knownBlocks caches the most
	// recent blockCacheCap bodies for GetBlock serving; blockQueue is
	// its FIFO eviction order.
	haveBlocks  map[types.Hash]bool
	knownBlocks map[types.Hash]*types.Block
	blockQueue  []types.Hash
	seenHashes  map[types.Hash]bool // announced or received
	knownTxs    map[types.Hash]bool

	// peerKnows tracks, for recent blocks, which peers are known to
	// have them (they sent it to us, or we sent it to them).
	peerKnows map[types.Hash]map[NodeID]bool
	knowQueue []types.Hash

	// pendingRelay tracks in-flight compact-relay fetches per block: a
	// retained sketch awaiting its missing-transaction round trip, or
	// nil for a full-body fallback. Allocated lazily — only the
	// compact discipline uses it.
	pendingRelay map[types.Hash]*types.Block

	// Per-node transport accounting: ingress counted at successful
	// delivery, egress at send (after fault filtering), so summed
	// egress equals Network.BytesSent.
	msgsIn, msgsOut   uint64
	bytesIn, bytesOut uint64

	observer Observer
	// relay controls whether this node forwards what it receives.
	// Measurement nodes relay like every other node (the paper's
	// clients are indistinguishable from regular peers); the flag
	// exists for ablations.
	relay bool
	// down marks a crashed (or permanently departed) node: it holds no
	// connections, drops in-flight deliveries on arrival and ignores
	// injections until recovered. See Network.CrashNode.
	down bool
}

// ID returns the node identifier.
func (n *Node) ID() NodeID { return n.id }

// Region returns the node's geographic region.
func (n *Node) Region() geo.Region { return n.region }

// PeerCount returns the current number of connections.
func (n *Node) PeerCount() int { return len(n.peers) }

// Down reports whether the node is currently crashed or departed.
func (n *Node) Down() bool { return n.down }

// Per-node transport accounting: messages and serialized bytes
// received (successful deliveries) and sent (after fault filtering).
func (n *Node) MessagesIn() uint64  { return n.msgsIn }
func (n *Node) MessagesOut() uint64 { return n.msgsOut }
func (n *Node) BytesIn() uint64     { return n.bytesIn }
func (n *Node) BytesOut() uint64    { return n.bytesOut }

// SetObserver installs a message observer (nil removes it).
func (n *Node) SetObserver(obs Observer) { n.observer = obs }

// KnowsBlock reports whether the node has received the full block.
func (n *Node) KnowsBlock(h types.Hash) bool {
	return n.haveBlocks[h]
}

// rememberBlock records full-block receipt and caches the body for
// GetBlock serving, evicting the oldest cached body past the cap.
func (n *Node) rememberBlock(h types.Hash, b *types.Block) {
	n.haveBlocks[h] = true
	n.knownBlocks[h] = b
	n.blockQueue = append(n.blockQueue, h)
	if len(n.blockQueue) > blockCacheCap {
		evict := n.blockQueue[0]
		n.blockQueue = n.blockQueue[1:]
		delete(n.knownBlocks, evict)
	}
}

// markPeerKnows records that a peer has (or will shortly have) the
// block, suppressing future sends of it to that peer.
func (n *Node) markPeerKnows(h types.Hash, peer NodeID) {
	set, ok := n.peerKnows[h]
	if !ok {
		set = n.net.getKnowSet()
		n.peerKnows[h] = set
		n.knowQueue = append(n.knowQueue, h)
		if len(n.knowQueue) > knownPeerCap {
			evict := n.knowQueue[0]
			n.knowQueue = n.knowQueue[1:]
			if old, ok := n.peerKnows[evict]; ok {
				delete(n.peerKnows, evict)
				n.net.putKnowSet(old)
			}
		}
	}
	set[peer] = true
}

func (n *Node) peerKnowsBlock(h types.Hash, peer NodeID) bool {
	return n.peerKnows[h][peer]
}

// handle processes one incoming message at virtual time now.
func (n *Node) handle(now sim.Time, from NodeID, msg *Message) {
	if n.down {
		return
	}
	if n.observer != nil {
		n.observer(now, from, msg)
	}
	switch msg.Kind {
	case MsgNewBlock:
		if msg.Block != nil {
			n.markPeerKnows(msg.Block.Hash(), from)
			n.maybePullParent(now, from, msg.Block)
		}
		n.handleNewBlock(now, msg.Block)
	case MsgNewBlockHashes:
		n.handleAnnouncement(now, from, msg.Hashes)
	case MsgGetBlock:
		n.handleGetBlock(now, from, msg.Want)
	case MsgTransactions:
		n.handleTxs(now, from, msg.Txs)
	case MsgCompactBlock:
		if msg.Block == nil || n.net.relayCompact == nil {
			return
		}
		n.markPeerKnows(msg.Block.Hash(), from)
		n.maybePullParent(now, from, msg.Block)
		n.net.relayCompact.OnCompact(n.net.envFor(n), now, int(from), msg.Block)
	case MsgGetCompact:
		n.handleGetCompact(now, from, msg.Want)
	case MsgGetBlockTxns:
		n.handleGetBlockTxns(now, from, msg)
	case MsgBlockTxns:
		if n.net.relayCompact == nil {
			return
		}
		n.net.relayCompact.OnBlockTxns(n.net.envFor(n), now, int(from), msg.Want)
	}
}

// InjectBlock makes this node the origin of a freshly mined block
// (mining-pool gateways call this). The origin skips the import delay
// before announcing: the miner already executed its own block. A down
// node swallows the injection — the submitter hit a dead endpoint.
func (n *Node) InjectBlock(now sim.Time, b *types.Block) {
	if n.down {
		return
	}
	n.acceptBlock(now, b, true)
}

// InjectTx makes this node the origin of a new transaction. Like
// InjectBlock, a down node loses the submission.
func (n *Node) InjectTx(now sim.Time, tx *types.Transaction) {
	if n.down {
		return
	}
	n.handleTxs(now, n.id, []*types.Transaction{tx})
}

// maybePullParent is the catch-up fetch (Network.ParentPull): a block
// whose parent was never received — the partition-era gap — triggers a
// GetBlock for that parent from the block's sender. The response is a
// NewBlock, so the pull walks the missing ancestry recursively until
// it reaches known ground; the sender serves from its FIFO body cache,
// which comfortably covers any realistic outage window. The pull is
// deliberately NOT recorded in seenHashes: a pull can itself be lost
// to the very faults it recovers from, so every received copy of a
// gap's descendant retries it (a handful of redundant fetches, deduped
// by haveBlocks on arrival) until the parent actually lands.
func (n *Node) maybePullParent(now sim.Time, from NodeID, b *types.Block) {
	if !n.net.ParentPull || b.Header.Number < 2 {
		return
	}
	parent := b.Header.ParentHash
	if n.haveBlocks[parent] {
		return
	}
	sender, ok := n.net.nodes[from]
	if !ok || sender.id == n.id {
		return
	}
	m := n.net.newMessage(MsgGetBlock)
	m.Want = parent
	n.net.send(now+announceHandleMillis, n, sender, m)
}

func (n *Node) handleNewBlock(now sim.Time, b *types.Block) {
	n.acceptBlock(now, b, false)
}

// acceptBlock records receipt of a full block body and hands onward
// dissemination to the network's relay protocol. origin marks the
// block miner's own gateway, which pays no import delay before
// announcing. This is the state half of the pre-extraction
// relayBlock; the dissemination half (push wave, announce wave) lives
// in the protocol's OnBlock/OnWave.
func (n *Node) acceptBlock(now sim.Time, b *types.Block, origin bool) {
	if b == nil {
		return
	}
	h := b.Hash()
	if n.haveBlocks[h] {
		return
	}
	n.rememberBlock(h, b)
	n.seenHashes[h] = true
	if n.pendingRelay != nil {
		// A body arriving through any path settles an in-flight
		// compact fetch.
		delete(n.pendingRelay, h)
	}
	if !n.relay || len(n.peers) == 0 {
		return
	}
	n.net.relayProto.OnBlock(n.net.envFor(n), now, b, origin)
}

func (n *Node) handleAnnouncement(now sim.Time, from NodeID, hashes []types.Hash) {
	if _, ok := n.net.nodes[from]; !ok {
		return
	}
	for _, h := range hashes {
		// The announcer evidently has the block.
		n.markPeerKnows(h, from)
		if !n.relay || n.seenHashes[h] {
			continue
		}
		n.seenHashes[h] = true
		// Pull the unknown block from the announcer, in whatever form
		// the relay discipline fetches bodies.
		n.net.relayProto.OnAnnouncePull(n.net.envFor(n), now, int(from), h)
	}
}

func (n *Node) handleGetBlock(now sim.Time, from NodeID, want types.Hash) {
	b, ok := n.knownBlocks[want]
	if !ok {
		return
	}
	requester, ok := n.net.nodes[from]
	if !ok {
		return
	}
	n.markPeerKnows(want, from)
	m := n.net.newMessage(MsgNewBlock)
	m.Block = b
	n.net.send(now+blockRequestRespondMs, n, requester, m)
}

// handleGetCompact serves a sketch pull (the compact discipline's
// announce-side fetch). Requests for bodies outside the FIFO cache
// window are dropped, like GetBlock.
func (n *Node) handleGetCompact(now sim.Time, from NodeID, want types.Hash) {
	b, ok := n.knownBlocks[want]
	if !ok {
		return
	}
	requester, ok := n.net.nodes[from]
	if !ok {
		return
	}
	n.markPeerKnows(want, from)
	// Pull responses count as sent sketches alongside the push wave's,
	// keeping Counters.SketchesSent equal to the CompactBlock class
	// counter.
	n.net.relayProto.Counters().SketchesSent++
	m := n.net.newMessage(MsgCompactBlock)
	m.Block = b
	n.net.send(now+blockRequestRespondMs, n, requester, m)
}

// handleGetBlockTxns serves the missing-transaction round trip. The
// response echoes the requester-computed count and byte total — the
// simulation models the round trip's timing and bandwidth, while the
// body content travels in the retained sketch's object graph.
func (n *Node) handleGetBlockTxns(now sim.Time, from NodeID, req *Message) {
	if _, ok := n.knownBlocks[req.Want]; !ok {
		return
	}
	requester, ok := n.net.nodes[from]
	if !ok {
		return
	}
	n.markPeerKnows(req.Want, from)
	m := n.net.newMessage(MsgBlockTxns)
	m.Want = req.Want
	m.TxCount = req.TxCount
	m.TxBytes = req.TxBytes
	n.net.send(now+blockRequestRespondMs, n, requester, m)
}

func (n *Node) handleTxs(now sim.Time, from NodeID, txs []*types.Transaction) {
	var fresh []*types.Transaction
	for _, tx := range txs {
		if tx == nil {
			continue
		}
		h := tx.Hash()
		if n.knownTxs[h] {
			continue
		}
		n.knownTxs[h] = true
		fresh = append(fresh, tx)
	}
	if len(fresh) == 0 || !n.relay {
		return
	}
	delay := sim.Time(1 + len(fresh)/100*txValidatePer100Txs)
	for _, peer := range n.peers {
		if peer.id == from {
			continue
		}
		// Each peer gets its own pooled message; the fresh batch slice
		// is shared by every copy (released messages drop, never
		// rewrite, it).
		m := n.net.newMessage(MsgTransactions)
		m.Txs = fresh
		n.net.send(now+delay, n, peer, m)
	}
}
