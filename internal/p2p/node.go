package p2p

import (
	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/types"
)

// NodeID identifies a node. Ethereum derives neighbor relationships
// from random 512-bit node IDs; geographic position plays no role in
// peer selection (§III-B1), which the simulator mirrors by wiring the
// overlay uniformly at random. IDs are assigned sequentially from 1
// and never reused, so NodeID-1 indexes every flat per-node array.
type NodeID int

// Observer receives a callback for every message a node accepts from
// the wire, before protocol processing. The measurement layer hooks
// here — exactly where the paper's instrumented Geth placed its
// logging.
type Observer func(now sim.Time, from NodeID, msg *Message)

// Local protocol timing constants. The block-relay timings
// (validate, import, announce handling) moved to internal/p2p/relay
// with the dissemination logic; what remains here covers the
// protocol-independent serving and transaction paths.
const (
	announceHandleMillis  = 1
	txValidatePer100Txs   = 1
	blockRequestRespondMs = 1
)

// knownPeerCap bounds how many recent blocks a node tracks per-peer
// knowledge for. Older blocks are no longer in flight, so their
// suppression state can be dropped. It is exactly 64 so each directed
// edge's suppression state packs into one uint64 (see know.go).
const knownPeerCap = 64

// blockCacheCap bounds how many recent full-block bodies a node
// retains for serving GetBlock pulls, evicted FIFO in insertion order
// (deterministic). Pulls only ever target blocks still propagating —
// seconds old, a handful of heights deep — so a four-digit cap is far
// outside the in-flight window while keeping per-node memory O(cap)
// instead of O(chain length).
const blockCacheCap = 1024

// Node is a protocol-conformant network participant: it deduplicates,
// validates (as a time cost) and relays blocks and transactions, and
// suppresses sends to peers already known to have an item (Geth's
// per-peer known-set behavior — the mechanism behind the paper's
// Table II redundancy profile).
//
// A Node is a thin stable handle: all of its state lives in the
// Network's flat per-node arrays (struct-of-arrays), indexed by
// NodeID-1. Handles are arena-allocated by AddNode and never move, so
// callers can hold *Node across the whole campaign.
type Node struct {
	id  NodeID
	net *Network
}

// idx returns the node's index into the network's flat arrays.
func (n *Node) idx() int32 { return int32(n.id - 1) }

// ID returns the node identifier.
func (n *Node) ID() NodeID { return n.id }

// Region returns the node's geographic region.
func (n *Node) Region() geo.Region { return n.net.regions[n.idx()] }

// PeerCount returns the current number of connections.
func (n *Node) PeerCount() int { return n.net.top.degree(n.idx()) }

// Down reports whether the node is currently crashed or departed.
func (n *Node) Down() bool { return n.net.down[n.idx()] }

// Per-node transport accounting: messages and serialized bytes
// received (successful deliveries) and sent (after fault filtering).
func (n *Node) MessagesIn() uint64  { return n.net.msgsIn[n.idx()] }
func (n *Node) MessagesOut() uint64 { return n.net.msgsOut[n.idx()] }
func (n *Node) BytesIn() uint64     { return n.net.bytesIn[n.idx()] }
func (n *Node) BytesOut() uint64    { return n.net.bytesOut[n.idx()] }

// SetObserver installs a message observer (nil removes it).
func (n *Node) SetObserver(obs Observer) { n.net.observers[n.idx()] = obs }

// setRelayEnabled controls whether this node forwards what it
// receives. Measurement nodes relay like every other node (the
// paper's clients are indistinguishable from regular peers); the knob
// exists for ablations.
func (n *Node) setRelayEnabled(v bool) { n.net.relayOn[n.idx()] = v }

// KnowsBlock reports whether the node has received the full block.
func (n *Node) KnowsBlock(h types.Hash) bool {
	idx, ok := n.net.blockIdx.lookup(h)
	return ok && n.net.haveBits.get(n.idx(), idx)
}

// rememberBlock records full-block receipt and caches the body for
// GetBlock serving, evicting the oldest cached body past the cap.
func (n *Node) rememberBlock(h types.Hash, b *types.Block) {
	i := n.idx()
	idx := n.net.blockIdx.intern(h)
	for int(idx) >= len(n.net.blockBody) {
		n.net.blockBody = append(n.net.blockBody, nil)
	}
	n.net.haveBits.set(i, idx)
	if n.net.blockBody[idx] == nil {
		// The canonical body pointer for idx is always the same object
		// (blocks are built once by mining); setting it only on first
		// sight keeps phase-B lanes read-only here — the origin's
		// phase-A injection has already published it.
		n.net.blockBody[idx] = b
	}
	n.net.cacheQ[i] = append(n.net.cacheQ[i], idx)
	n.net.cachedBits.set(i, idx)
	if len(n.net.cacheQ[i]) > blockCacheCap {
		evict := n.net.cacheQ[i][0]
		n.net.cacheQ[i] = n.net.cacheQ[i][1:]
		n.net.cachedBits.clear(i, evict)
	}
}

// cachedBlock returns the body for h if it is still in the node's
// FIFO serving cache.
func (n *Node) cachedBlock(h types.Hash) (*types.Block, bool) {
	idx, ok := n.net.blockIdx.lookup(h)
	if !ok || !n.net.cachedBits.get(n.idx(), idx) {
		return nil, false
	}
	return n.net.blockBody[idx], true
}

// markPeerKnows records that a peer has (or will shortly have) the
// block, suppressing future sends of it to that peer. pos is the
// peer's validated position in this node's span, or -1 when the peer
// is not (or no longer) connected.
func (n *Node) markPeerKnows(h types.Hash, peer NodeID, pos int32) {
	n.net.markPeerKnows(n.idx(), n.net.blockIdx.intern(h), int32(peer-1), pos)
}

// peerKnowsBlock reports whether the node knows that peer has h,
// resolving the peer's span position itself (test/diagnostic path; hot
// paths carry positions).
func (n *Node) peerKnowsBlock(h types.Hash, peer NodeID) bool {
	idx, ok := n.net.blockIdx.lookup(h)
	if !ok {
		return false
	}
	i := n.idx()
	pi := int32(peer - 1)
	return n.net.peerKnows(i, idx, pi, n.net.top.position(i, pi))
}

// handle processes one incoming message at virtual time now. srcPos
// is the sender's position in this node's peer span as captured at
// send time (-1 unknown); it is validated here — spans shift under
// churn — and the validated position flows to every per-peer mark, so
// bookkeeping stays O(1) per message even at measurement-node degrees.
func (n *Node) handle(now sim.Time, from NodeID, srcPos int32, msg *Message) {
	i := n.idx()
	if n.net.down[i] {
		return
	}
	if obs := n.net.observers[i]; obs != nil {
		obs(now, from, msg)
	}
	fi := int32(from - 1)
	pos := srcPos
	sp := n.net.top.spans[i]
	if pos < 0 || pos >= sp.len || n.net.top.adj[sp.off+pos] != fi {
		pos = n.net.top.position(i, fi)
	}
	switch msg.Kind {
	case MsgNewBlock:
		if msg.Block != nil {
			n.markPeerKnows(msg.Block.Hash(), from, pos)
			n.maybePullParent(now, from, pos, msg.Block)
		}
		n.handleNewBlock(now, msg.Block)
	case MsgNewBlockHashes:
		n.handleAnnouncement(now, from, pos, msg.Hashes)
	case MsgGetBlock:
		n.handleGetBlock(now, from, pos, msg.Want)
	case MsgTransactions:
		n.handleTxs(now, from, msg.Txs)
	case MsgCompactBlock:
		if msg.Block == nil || n.net.relayCompact == nil {
			return
		}
		n.markPeerKnows(msg.Block.Hash(), from, pos)
		n.maybePullParent(now, from, pos, msg.Block)
		n.net.compactFor(i).OnCompact(n.net.envForMsg(n, now, fi, pos), now, int(from), msg.Block)
	case MsgGetCompact:
		n.handleGetCompact(now, from, pos, msg.Want)
	case MsgGetBlockTxns:
		n.handleGetBlockTxns(now, from, pos, msg)
	case MsgBlockTxns:
		if n.net.relayCompact == nil {
			return
		}
		n.net.compactFor(i).OnBlockTxns(n.net.envForMsg(n, now, fi, pos), now, int(from), msg.Want)
	}
}

// respPos returns the srcPos to stamp on a reply to the sender whose
// validated position in this node's span is pos: the reverse edge
// knows where this node sits in the sender's span.
func (n *Node) respPos(pos int32) int32 {
	if pos < 0 {
		return -1
	}
	return n.net.top.revAdj[n.net.top.spans[n.idx()].off+pos]
}

// InjectBlock makes this node the origin of a freshly mined block
// (mining-pool gateways call this). The origin skips the import delay
// before announcing: the miner already executed its own block. A down
// node swallows the injection — the submitter hit a dead endpoint.
func (n *Node) InjectBlock(now sim.Time, b *types.Block) {
	if n.net.down[n.idx()] {
		return
	}
	if n.net.sh != nil {
		// Sharded: force the block's lazily cached derived values while
		// still single-threaded (injection runs in phase A). Peers in
		// different lanes may serve the body concurrently later, and a
		// first-call cache fill from phase B would race.
		precomputeSizes(b)
	}
	n.acceptBlock(now, b, true)
	if n.net.sh != nil {
		// acceptBlock interned the new block; size the shared bit
		// grids for it now, while lanes are idle. Growth from phase B
		// would relocate grid storage under concurrent lane reads —
		// conductor-driven runs presize again via AfterGlobal, but
		// direct injections (workloads, tests) get no phase A.
		n.net.presizeArenas()
	}
}

// InjectTx makes this node the origin of a new transaction. Like
// InjectBlock, a down node loses the submission.
func (n *Node) InjectTx(now sim.Time, tx *types.Transaction) {
	if n.net.down[n.idx()] {
		return
	}
	if n.net.sh != nil {
		// Same phase-A cache-fill rule as InjectBlock.
		_ = tx.Hash()
		_ = tx.EncodedSize()
	}
	n.handleTxs(now, n.id, []*types.Transaction{tx})
	if n.net.sh != nil {
		// Same phase-A presize rule as InjectBlock (txBits grew).
		n.net.presizeArenas()
	}
}

// maybePullParent is the catch-up fetch (Network.ParentPull): a block
// whose parent was never received — the partition-era gap — triggers a
// GetBlock for that parent from the block's sender. The response is a
// NewBlock, so the pull walks the missing ancestry recursively until
// it reaches known ground; the sender serves from its FIFO body cache,
// which comfortably covers any realistic outage window. The pull is
// deliberately NOT recorded in seenHashes: a pull can itself be lost
// to the very faults it recovers from, so every received copy of a
// gap's descendant retries it (a handful of redundant fetches, deduped
// by haveBlocks on arrival) until the parent actually lands.
func (n *Node) maybePullParent(now sim.Time, from NodeID, pos int32, b *types.Block) {
	if !n.net.ParentPull || b.Header.Number < 2 {
		return
	}
	parent := b.Header.ParentHash
	if idx, ok := n.net.blockIdx.lookup(parent); ok && n.net.haveBits.get(n.idx(), idx) {
		return
	}
	sender := n.net.nodeByID(from)
	if sender == nil || sender.id == n.id {
		return
	}
	m := n.net.newMessage(n.idx(), MsgGetBlock)
	m.Want = parent
	n.net.send(now+announceHandleMillis, n, sender, m, n.respPos(pos))
}

func (n *Node) handleNewBlock(now sim.Time, b *types.Block) {
	n.acceptBlock(now, b, false)
}

// acceptBlock records receipt of a full block body and hands onward
// dissemination to the network's relay protocol. origin marks the
// block miner's own gateway, which pays no import delay before
// announcing. This is the state half of the pre-extraction
// relayBlock; the dissemination half (push wave, announce wave) lives
// in the protocol's OnBlock/OnWave.
func (n *Node) acceptBlock(now sim.Time, b *types.Block, origin bool) {
	if b == nil {
		return
	}
	h := b.Hash()
	i := n.idx()
	idx := n.net.blockIdx.intern(h)
	if n.net.haveBits.get(i, idx) {
		return
	}
	n.rememberBlock(h, b)
	n.net.seenBits.set(i, idx)
	if p := n.net.pending[i]; len(p) > 0 {
		// A body arriving through any path settles an in-flight
		// compact fetch.
		for k := range p {
			if p[k].idx == idx {
				p[k] = p[len(p)-1]
				n.net.pending[i] = p[:len(p)-1]
				break
			}
		}
	}
	if !n.net.relayOn[i] || n.net.top.degree(i) == 0 {
		return
	}
	n.net.protoFor(i).OnBlock(n.net.envFor(n, now), now, b, origin)
}

func (n *Node) handleAnnouncement(now sim.Time, from NodeID, pos int32, hashes []types.Hash) {
	if n.net.nodeByID(from) == nil {
		return
	}
	i := n.idx()
	for _, h := range hashes {
		// The announcer evidently has the block.
		idx := n.net.blockIdx.intern(h)
		n.net.markPeerKnows(i, idx, int32(from-1), pos)
		if !n.net.relayOn[i] || n.net.seenBits.get(i, idx) {
			continue
		}
		n.net.seenBits.set(i, idx)
		// Pull the unknown block from the announcer, in whatever form
		// the relay discipline fetches bodies.
		n.net.protoFor(i).OnAnnouncePull(n.net.envForMsg(n, now, int32(from-1), pos), now, int(from), h)
	}
}

func (n *Node) handleGetBlock(now sim.Time, from NodeID, pos int32, want types.Hash) {
	b, ok := n.cachedBlock(want)
	if !ok {
		return
	}
	requester := n.net.nodeByID(from)
	if requester == nil {
		return
	}
	n.markPeerKnows(want, from, pos)
	m := n.net.newMessage(n.idx(), MsgNewBlock)
	m.Block = b
	n.net.send(now+blockRequestRespondMs, n, requester, m, n.respPos(pos))
}

// handleGetCompact serves a sketch pull (the compact discipline's
// announce-side fetch). Requests for bodies outside the FIFO cache
// window are dropped, like GetBlock.
func (n *Node) handleGetCompact(now sim.Time, from NodeID, pos int32, want types.Hash) {
	b, ok := n.cachedBlock(want)
	if !ok {
		return
	}
	requester := n.net.nodeByID(from)
	if requester == nil {
		return
	}
	n.markPeerKnows(want, from, pos)
	// Pull responses count as sent sketches alongside the push wave's,
	// keeping Counters.SketchesSent equal to the CompactBlock class
	// counter.
	n.net.protoFor(n.idx()).Counters().SketchesSent++
	m := n.net.newMessage(n.idx(), MsgCompactBlock)
	m.Block = b
	n.net.send(now+blockRequestRespondMs, n, requester, m, n.respPos(pos))
}

// handleGetBlockTxns serves the missing-transaction round trip. The
// response echoes the requester-computed count and byte total — the
// simulation models the round trip's timing and bandwidth, while the
// body content travels in the retained sketch's object graph.
func (n *Node) handleGetBlockTxns(now sim.Time, from NodeID, pos int32, req *Message) {
	if _, ok := n.cachedBlock(req.Want); !ok {
		return
	}
	requester := n.net.nodeByID(from)
	if requester == nil {
		return
	}
	n.markPeerKnows(req.Want, from, pos)
	m := n.net.newMessage(n.idx(), MsgBlockTxns)
	m.Want = req.Want
	m.TxCount = req.TxCount
	m.TxBytes = req.TxBytes
	n.net.send(now+blockRequestRespondMs, n, requester, m, n.respPos(pos))
}

func (n *Node) handleTxs(now sim.Time, from NodeID, txs []*types.Transaction) {
	i := n.idx()
	var fresh []*types.Transaction
	for _, tx := range txs {
		if tx == nil {
			continue
		}
		idx := n.net.txIdx.intern(tx.Hash())
		if n.net.txBits.get(i, idx) {
			continue
		}
		n.net.txBits.set(i, idx)
		fresh = append(fresh, tx)
	}
	if len(fresh) == 0 || !n.net.relayOn[i] {
		return
	}
	delay := sim.Time(1 + len(fresh)/100*txValidatePer100Txs)
	s := n.net.top.spans[i]
	fi := int32(from - 1)
	for p := int32(0); p < s.len; p++ {
		e := s.off + p
		if n.net.top.adj[e] == fi {
			continue
		}
		peer := n.net.NodeAt(int(n.net.top.adj[e]))
		// Each peer gets its own pooled message; the fresh batch slice
		// is shared by every copy (released messages drop, never
		// rewrite, it).
		m := n.net.newMessage(n.idx(), MsgTransactions)
		m.Txs = fresh
		n.net.send(now+delay, n, peer, m, n.net.top.revAdj[e])
	}
}
