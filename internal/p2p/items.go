package p2p

import "repro/internal/types"

// Compact item indices for the struct-of-arrays node core.
//
// Blocks and transactions get a dense int32 index the first time the
// network sees their hash (mining injection, relay receipt, or a bare
// announcement). Per-node dedup state then lives in flat bit grids
// keyed by (node index, item index) — one bit per pair instead of a
// ~50-byte map entry per pair — and the 32-byte hashes survive only at
// the wire and artifact boundaries, where messages and reports need
// them.

// itemIndex interns hashes to dense indices. One instance per item
// family (blocks, transactions) per network; the map here is the
// single hash-keyed structure the whole node core retains.
type itemIndex struct {
	idx map[types.Hash]int32
	n   int32
}

// lookup returns the index for h if it has been interned.
func (x *itemIndex) lookup(h types.Hash) (int32, bool) {
	i, ok := x.idx[h]
	return i, ok
}

// intern returns h's index, assigning the next dense index on first
// sight.
func (x *itemIndex) intern(h types.Hash) int32 {
	if x.idx == nil {
		x.idx = make(map[types.Hash]int32, 64)
	}
	if i, ok := x.idx[h]; ok {
		return i
	}
	i := x.n
	x.idx[h] = i
	x.n++
	return i
}

// bitGrid is a dense 2-D bitmap: one row per node, one column per
// item. Rows are node indices (NodeID-1), columns item indices. The
// grid grows in both directions — columns as items are interned (the
// stride doubles, re-laying rows out), rows as churn adds nodes — so a
// campaign never sizes it up front.
type bitGrid struct {
	words  []uint64
	stride int32 // words per row
	rows   int32
}

// set marks (row, col), growing the grid as needed.
func (g *bitGrid) set(row, col int32) {
	w := col >> 6
	if w >= g.stride {
		g.growStride(w + 1)
	}
	if row >= g.rows {
		g.growRows(row + 1)
	}
	g.words[row*g.stride+w] |= 1 << (uint(col) & 63)
}

// get reports (row, col); out-of-range coordinates are unset.
func (g *bitGrid) get(row, col int32) bool {
	w := col >> 6
	if row >= g.rows || w >= g.stride {
		return false
	}
	return g.words[row*g.stride+w]&(1<<(uint(col)&63)) != 0
}

// clear unmarks (row, col) if in range.
func (g *bitGrid) clear(row, col int32) {
	w := col >> 6
	if row >= g.rows || w >= g.stride {
		return
	}
	g.words[row*g.stride+w] &^= 1 << (uint(col) & 63)
}

// growStride widens every row to at least need words, doubling to
// amortize the re-layout copy.
func (g *bitGrid) growStride(need int32) {
	ns := g.stride * 2
	if ns < need {
		ns = need
	}
	if ns < 2 {
		ns = 2
	}
	nw := make([]uint64, int(g.rows)*int(ns))
	for r := int32(0); r < g.rows; r++ {
		copy(nw[r*ns:r*ns+g.stride], g.words[r*g.stride:(r+1)*g.stride])
	}
	g.words = nw
	g.stride = ns
}

// growRows appends zeroed rows up to need.
func (g *bitGrid) growRows(need int32) {
	if g.stride == 0 {
		g.rows = need
		return
	}
	total := int(need) * int(g.stride)
	if total > len(g.words) {
		g.words = append(g.words, make([]uint64, total-len(g.words))...)
	}
	g.rows = need
}
