package p2p

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/p2p/relay"
	"repro/internal/sim"
	"repro/internal/types"
)

// zeroLatency makes timing assertions exact.
func zeroLatencyNetwork(t *testing.T, seed uint64) *Network {
	t.Helper()
	m := geo.LatencyModel{JitterSigma: 0, BytesPerMillisecond: 0, MinDelayMillis: 1}
	return NewNetwork(sim.NewEngine(), sim.NewRNG(seed), m)
}

func TestNoDuplicateSendsToSamePeer(t *testing.T) {
	net := zeroLatencyNetwork(t, 1)
	a := addNode(t, net, geo.WesternEurope, 0)
	b := addNode(t, net, geo.WesternEurope, 0)
	if err := net.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	blk := testBlock(1, "Ethermine")
	deliveries := 0
	b.SetObserver(func(_ sim.Time, _ NodeID, msg *Message) {
		if msg.Kind == MsgNewBlock || msg.Kind == MsgNewBlockHashes {
			deliveries++
		}
	})
	a.InjectBlock(0, blk)
	net.Engine().Run()
	// With one peer, a pushes once; the announce wave must be fully
	// suppressed by the push's known-mark.
	if deliveries != 1 {
		t.Fatalf("b received %d block messages, want exactly 1", deliveries)
	}
}

func TestBidirectionalSuppression(t *testing.T) {
	// After b receives the block from a, b must not send it back.
	net := zeroLatencyNetwork(t, 2)
	a := addNode(t, net, geo.WesternEurope, 0)
	b := addNode(t, net, geo.WesternEurope, 0)
	if err := net.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	backToA := 0
	a.SetObserver(func(_ sim.Time, _ NodeID, msg *Message) {
		if msg.Kind == MsgNewBlock || msg.Kind == MsgNewBlockHashes {
			backToA++
		}
	})
	a.InjectBlock(0, testBlock(1, "Sparkpool"))
	net.Engine().Run()
	if backToA != 0 {
		t.Fatalf("block echoed back to its sender %d times", backToA)
	}
}

func TestOriginAnnouncesImmediately(t *testing.T) {
	// The origin's announce wave fires right after validation, while
	// a relayer's waits for the import delay.
	net := zeroLatencyNetwork(t, 3)
	origin := addNode(t, net, geo.WesternEurope, 0)
	// Enough peers that sqrt(n) pushes leave announce targets.
	var watchers []*Node
	for i := 0; i < 16; i++ {
		w := addNode(t, net, geo.WesternEurope, 0)
		w.setRelayEnabled(false) // pure observers: no relaying noise
		if err := net.Connect(origin, w); err != nil {
			t.Fatal(err)
		}
		watchers = append(watchers, w)
	}
	var firstAnnounce sim.Time = -1
	for _, w := range watchers {
		w.SetObserver(func(now sim.Time, _ NodeID, msg *Message) {
			if msg.Kind == MsgNewBlockHashes && (firstAnnounce < 0 || now < firstAnnounce) {
				firstAnnounce = now
			}
		})
	}
	origin.InjectBlock(0, testBlock(1, "F2pool2"))
	net.Engine().Run()
	if firstAnnounce < 0 {
		t.Fatal("no announcements observed")
	}
	if firstAnnounce >= relay.ImportDelay {
		t.Fatalf("origin announce delayed by import time: %v", firstAnnounce)
	}
}

func TestRelayerAnnouncesAfterImport(t *testing.T) {
	net := zeroLatencyNetwork(t, 4)
	origin := addNode(t, net, geo.WesternEurope, 0)
	relayer := addNode(t, net, geo.WesternEurope, 0)
	if err := net.Connect(origin, relayer); err != nil {
		t.Fatal(err)
	}
	// The relayer has extra observer-only peers so its announce wave
	// has targets.
	var watchers []*Node
	for i := 0; i < 16; i++ {
		w := addNode(t, net, geo.WesternEurope, 0)
		w.setRelayEnabled(false)
		if err := net.Connect(relayer, w); err != nil {
			t.Fatal(err)
		}
		watchers = append(watchers, w)
	}
	var firstAnnounce sim.Time = -1
	for _, w := range watchers {
		w.SetObserver(func(now sim.Time, _ NodeID, msg *Message) {
			if msg.Kind == MsgNewBlockHashes && (firstAnnounce < 0 || now < firstAnnounce) {
				firstAnnounce = now
			}
		})
	}
	origin.InjectBlock(0, testBlock(1, "Nanopool"))
	net.Engine().Run()
	if firstAnnounce < 0 {
		t.Fatal("no announcements observed")
	}
	if firstAnnounce < relay.ImportDelay {
		t.Fatalf("relayer announced before import completed: %v", firstAnnounce)
	}
}

func TestKnownPeerEviction(t *testing.T) {
	// The per-block suppression state is bounded: after more than
	// knownPeerCap blocks, the oldest entries are dropped.
	net := zeroLatencyNetwork(t, 5)
	a := addNode(t, net, geo.WesternEurope, 0)
	b := addNode(t, net, geo.WesternEurope, 0)
	if err := net.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < knownPeerCap+20; i++ {
		a.InjectBlock(0, testBlock(uint64(i+1), "Ethermine"))
		net.Engine().Run()
	}
	if got := int(net.knowCount[a.idx()]); got > knownPeerCap {
		t.Fatalf("suppression window grew to %d entries (cap %d)", got, knownPeerCap)
	}
	if got := len(net.spill[a.idx()]); got != 0 {
		t.Fatalf("healthy run produced %d spill marks", got)
	}
}

func TestAnnouncementMarksSenderAsKnowing(t *testing.T) {
	net := zeroLatencyNetwork(t, 6)
	a := addNode(t, net, geo.WesternEurope, 0)
	b := addNode(t, net, geo.WesternEurope, 0)
	if err := net.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	blk := testBlock(1, "HuoBi.pro")
	h := blk.Hash()
	// b hears an announcement from a; b must record that a knows the
	// block even before fetching it.
	b.handle(0, a.ID(), -1, &Message{Kind: MsgNewBlockHashes, Hashes: []types.Hash{h}})
	if !b.peerKnowsBlock(h, a.ID()) {
		t.Fatal("announcement did not mark sender knowledge")
	}
}

func TestPushPolicies(t *testing.T) {
	countKinds := func(mode relay.Mode) (pushes, announces int) {
		net := zeroLatencyNetwork(t, 7)
		net.SetRelay(relay.MustNew(relay.Config{Mode: mode}))
		origin := addNode(t, net, geo.WesternEurope, 0)
		for i := 0; i < 16; i++ {
			w := addNode(t, net, geo.WesternEurope, 0)
			w.setRelayEnabled(false)
			if err := net.Connect(origin, w); err != nil {
				t.Fatal(err)
			}
			w.SetObserver(func(_ sim.Time, _ NodeID, msg *Message) {
				switch msg.Kind {
				case MsgNewBlock:
					pushes++
				case MsgNewBlockHashes:
					announces++
				}
			})
		}
		origin.InjectBlock(0, testBlock(1, "Zhizhu"))
		net.Engine().Run()
		return pushes, announces
	}
	sqrtPush, sqrtAnn := countKinds(relay.SqrtPush)
	allPush, allAnn := countKinds(relay.PushAll)
	annPush, annAnn := countKinds(relay.AnnounceOnly)
	if sqrtPush != 4 { // sqrt(16)
		t.Fatalf("sqrt policy pushed %d", sqrtPush)
	}
	if sqrtAnn != 12 {
		t.Fatalf("sqrt policy announced %d", sqrtAnn)
	}
	if allPush != 16 || allAnn != 0 {
		t.Fatalf("push-all: %d/%d", allPush, allAnn)
	}
	// Announce-only: announce wave to all 16; observers don't pull
	// (relay disabled), so no pushes arrive.
	if annPush != 0 || annAnn != 16 {
		t.Fatalf("announce-only: %d/%d", annPush, annAnn)
	}
}

// The relay mode's name table — including the unknown(N) rendering
// run-dir metadata relies on — is covered by the relay package's
// TestModeString.
