package p2p

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/sim"
)

// refTopology is the naive reference model the CSR adjacency layer is
// checked against: per node an ordered peer list (what the old
// []*Node peers slice held) and a down flag. Every operation is the
// obvious O(n) implementation.
type refTopology struct {
	peers [][]int32
	down  []bool
}

func newRefTopology(n int) *refTopology {
	return &refTopology{peers: make([][]int32, n), down: make([]bool, n)}
}

func (m *refTopology) connected(i, j int32) bool {
	for _, p := range m.peers[i] {
		if p == j {
			return true
		}
	}
	return false
}

func (m *refTopology) connect(i, j int32) {
	if i == j || m.connected(i, j) {
		return
	}
	m.peers[i] = append(m.peers[i], j)
	m.peers[j] = append(m.peers[j], i)
}

func (m *refTopology) remove(i, j int32) {
	ps := m.peers[i]
	for k, p := range ps {
		if p == j {
			m.peers[i] = append(ps[:k], ps[k+1:]...)
			return
		}
	}
}

func (m *refTopology) disconnect(i, j int32) {
	if !m.connected(i, j) {
		return
	}
	m.remove(i, j)
	m.remove(j, i)
}

func (m *refTopology) crash(i int32) {
	if m.down[i] {
		return
	}
	m.down[i] = true
	for _, p := range m.peers[i] {
		m.remove(p, i)
	}
	m.peers[i] = nil
}

func (m *refTopology) recover(i int32) { m.down[i] = false }

// checkTopology compares the live network's CSR state against the
// reference model: per-node degree, exact peer order, the down flag,
// the adj/revAdj reciprocity invariant, and connected() on all pairs.
func checkTopology(t *testing.T, net *Network, model *refTopology, step int) {
	t.Helper()
	n := int32(len(model.peers))
	for i := int32(0); i < n; i++ {
		sp := net.top.spans[i]
		if int(sp.len) != len(model.peers[i]) {
			t.Fatalf("step %d: node %d degree %d, model %d", step, i+1, sp.len, len(model.peers[i]))
		}
		if net.down[i] != model.down[i] {
			t.Fatalf("step %d: node %d down=%v, model %v", step, i+1, net.down[i], model.down[i])
		}
		for p := int32(0); p < sp.len; p++ {
			e := sp.off + p
			j := net.top.adj[e]
			if j != model.peers[i][p] {
				t.Fatalf("step %d: node %d peer order at %d: %d, model %d",
					step, i+1, p, j+1, model.peers[i][p]+1)
			}
			q := net.top.revAdj[e]
			spj := net.top.spans[j]
			if q < 0 || q >= spj.len {
				t.Fatalf("step %d: edge %d->%d revAdj %d out of span len %d", step, i+1, j+1, q, spj.len)
			}
			if net.top.adj[spj.off+q] != i || net.top.revAdj[spj.off+q] != p {
				t.Fatalf("step %d: edge %d->%d reciprocity broken (q=%d)", step, i+1, j+1, q)
			}
		}
		for j := int32(0); j < n; j++ {
			if i == j {
				continue
			}
			if got, want := net.top.connected(i, j), model.connected(i, j); got != want {
				t.Fatalf("step %d: connected(%d,%d)=%v, model %v", step, i+1, j+1, got, want)
			}
		}
	}
}

// applyChurnScript drives the same operation script against a live
// network and the reference model, checking equivalence after every
// step. Each 3-byte chunk is one operation: opcode, then two node
// operands.
func applyChurnScript(t *testing.T, script []byte) {
	const n = 12
	engine := sim.NewEngine()
	net := NewNetwork(engine, sim.NewRNG(1), geo.DefaultLatencyModel())
	nodes := make([]*Node, n)
	for i := range nodes {
		nd, err := net.AddNode(geo.WesternEurope, 0)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
	}
	model := newRefTopology(n)
	for k := 0; k+2 < len(script); k += 3 {
		op := script[k] % 4
		x := int32(script[k+1]) % n
		y := int32(script[k+2]) % n
		switch op {
		case 0:
			if x != y {
				if err := net.Connect(nodes[x], nodes[y]); err != nil {
					t.Fatalf("step %d: connect(%d,%d): %v", k/3, x+1, y+1, err)
				}
				model.connect(x, y)
			}
		case 1:
			net.Disconnect(nodes[x], nodes[y])
			model.disconnect(x, y)
		case 2:
			net.CrashNode(nodes[x])
			model.crash(x)
		case 3:
			net.RecoverNode(nodes[x])
			model.recover(x)
		}
		checkTopology(t, net, model, k/3)
	}
}

// TestAdjacencyChurnMatchesReference is the property test for the CSR
// layer under churn: random Connect/Disconnect/CrashNode/RecoverNode
// sequences leave the arena exactly where the naive ordered-list model
// says, including relocation (growth) and shift-left (removal) paths.
func TestAdjacencyChurnMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := sim.NewRNG(seed)
		script := make([]byte, 600)
		for i := range script {
			script[i] = byte(rng.IntN(256))
		}
		applyChurnScript(t, script)
	}
}

// FuzzAdjacencyChurn fuzzes arbitrary churn scripts against the
// reference model (the committed corpus under testdata/fuzz runs as
// part of the regular test suite).
func FuzzAdjacencyChurn(f *testing.F) {
	// Connect a few pairs, then a crash and a recover.
	f.Add([]byte{0, 1, 2, 0, 2, 3, 0, 3, 1, 2, 2, 0, 3, 2, 0})
	// Growth past the initial span capacity, then disconnects.
	seed := make([]byte, 0, 60)
	for i := byte(1); i < 12; i++ {
		seed = append(seed, 0, 0, i)
	}
	seed = append(seed, 1, 0, 5, 1, 0, 1, 2, 0, 0)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 4096 {
			script = script[:4096]
		}
		applyChurnScript(t, script)
	})
}
