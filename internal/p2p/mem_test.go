package p2p

import (
	"runtime"
	"testing"

	"repro/internal/geo"
	"repro/internal/sim"
)

// bytesPerNodeBudget is the documented steady-state heap budget for
// one overlay node (struct-of-arrays core, degree-8 wiring, no
// traffic). docs/PERFORMANCE.md ("Memory layout") explains where the
// bytes go; raise it only with a matching doc update.
const bytesPerNodeBudget = 4096

// heapAlloc settles the heap and reports live bytes.
func heapAlloc() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestBytesPerNodeCeiling pins the per-node heap cost of the
// struct-of-arrays core: a wired 10,000-node overlay must stay under
// bytesPerNodeBudget per node. This is the short tier of `make
// test-stress` — a layout regression (per-node maps creeping back in,
// a dense slice gaining a fat field) fails here long before the 100k
// tier becomes unaffordable.
func TestBytesPerNodeCeiling(t *testing.T) {
	const n = 10_000
	before := heapAlloc()
	engine := sim.NewEngine()
	net := NewNetwork(engine, sim.NewRNG(7), geo.DefaultLatencyModel())
	share := geo.DefaultNodeShare
	placement, err := geo.PlaceNodes(n, share)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range placement {
		if _, err := net.AddNode(r, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.WireRandom(8); err != nil {
		t.Fatal(err)
	}
	after := heapAlloc()
	perNode := (after - before) / n
	t.Logf("steady-state heap: %d bytes total, %d bytes/node (budget %d)",
		after-before, perNode, bytesPerNodeBudget)
	if perNode > bytesPerNodeBudget {
		t.Fatalf("bytes per node %d exceeds budget %d — update docs/PERFORMANCE.md if the layout change is intentional",
			perNode, bytesPerNodeBudget)
	}
	runtime.KeepAlive(net)
	runtime.KeepAlive(engine)
}
