package relay

import (
	"repro/internal/sim"
	"repro/internal/types"
)

// compactRelay is the BIP152-shaped compact-block discipline: the
// push wave carries short-ID sketches instead of full bodies, and
// receivers rebuild the body from their own transaction pool. A
// receiver missing transactions runs one deterministic missing-tx
// round trip with the sketch sender; when the missing fraction
// exceeds the fallback threshold it fetches the full body instead.
//
// In the simulated network the short-ID layer is exact: a sketch
// transaction is "in the pool" iff the receiver's pool has seen that
// transaction hash. The probabilistic short-ID machinery — collision
// detection, refusal to guess, TxRoot verification with full-body
// fallback — lives in the Sketch codec, where FuzzCompactReconstruct
// proves reconstruction can never fabricate a body that mismatches
// its header commitment. At 48-bit IDs the collision probability is
// ~2^-48 per pair, which the live path rounds to zero exactly as
// BIP152 deployments do.
type compactRelay struct {
	// fallback is the missing-transaction count fraction above which
	// the sketch is abandoned for a full-body fetch.
	fallback float64
	counters Counters
}

func (c *compactRelay) Mode() Mode          { return Compact }
func (c *compactRelay) Counters() *Counters { return &c.counters }

// OnBlock pushes sketches with the same sqrt fan-out and deferred
// announce wave as the legacy rule — deliberately, so an R1 shoot-out
// row differs from sqrt-push only in what the push wave carries.
func (c *compactRelay) OnBlock(env Env, now sim.Time, b *types.Block, origin bool) {
	h := b.Hash()
	n := env.Candidates(h)
	if n == 0 {
		return
	}
	k := sqrtFanout(n)
	order := env.Fanout(n)
	for i := 0; i < k && i < len(order); i++ {
		env.PushCompact(order[i], now+ValidateDelay, b)
		c.counters.SketchesSent++
	}
	announceDelay := ValidateDelay + ImportDelay
	if origin {
		announceDelay = ValidateDelay
	}
	env.ScheduleWave(announceDelay, h, origin)
}

// OnWave announces to the sqrt-bounded remainder, exactly like the
// legacy rule; announcement receivers pull a sketch (OnAnnouncePull).
func (c *compactRelay) OnWave(env Env, now sim.Time, h types.Hash, origin bool) {
	announceWave(env, now, h, origin)
}

// OnAnnouncePull requests a compact sketch (BIP152 low-bandwidth
// mode) instead of the full body. A pull is skipped while a
// reconstruction or fallback fetch for the block is already in
// flight, so a node never runs two body fetches for one block.
func (c *compactRelay) OnAnnouncePull(env Env, now sim.Time, from int, h types.Hash) {
	if env.HasPending(h) {
		return
	}
	env.RequestCompact(from, now+AnnounceHandleDelay, h)
}

// OnCompact processes an arriving sketch: reconstruct from the pool,
// or start the missing-tx round trip, or fall back to a full-body
// fetch when too much of the body is missing.
func (c *compactRelay) OnCompact(env Env, now sim.Time, from int, b *types.Block) {
	h := b.Hash()
	if env.HasBlock(h) || env.HasPending(h) {
		return
	}
	c.counters.SketchesReceived++
	missing, missingBytes := 0, 0
	for _, tx := range b.Txs {
		if !env.KnownTx(tx.Hash()) {
			missing++
			missingBytes += tx.EncodedSize()
		}
	}
	if missing == 0 {
		c.counters.ReconstructFull++
		env.AcceptBlock(now, b)
		return
	}
	if float64(missing) > c.fallback*float64(len(b.Txs)) {
		c.counters.ReconstructFallback++
		env.SetPending(h, nil)
		env.RequestBlock(from, now+AnnounceHandleDelay, h)
		return
	}
	c.counters.ReconstructPartial++
	c.counters.MissingTxs += uint64(missing)
	c.counters.MissingTxBytes += uint64(missingBytes)
	env.SetPending(h, b)
	env.RequestTxns(from, now+AnnounceHandleDelay, h, missing, missingBytes)
}

// OnBlockTxns completes a pending reconstruction once the missing
// transactions arrive. The retained sketch block carries the full
// body in the simulation's object graph, so completion is acceptance.
func (c *compactRelay) OnBlockTxns(env Env, now sim.Time, from int, h types.Hash) {
	b, ok := env.TakePending(h)
	if !ok || b == nil || env.HasBlock(h) {
		return
	}
	env.AcceptBlock(now, b)
}
