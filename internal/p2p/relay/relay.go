// Package relay implements pluggable block-relay protocols for the
// simulated overlay: the dissemination discipline that was previously
// hard-wired into internal/p2p is expressed as a Protocol driven
// through a narrow Env interface the host network implements.
//
// The package deliberately does not import internal/p2p — protocols
// are pure dissemination logic over an abstract environment, so p2p
// can host them (it implements Env) and tests can drive them against
// fixture environments without an import cycle.
//
// Four disciplines ship: the legacy sqrt-push and announce-only rules
// (moved here byte-identically — a legacy scenario produces the same
// artifacts it did before the extraction), push-all, a BIP152-shaped
// compact-block protocol (short-ID sketches reconstructed from the
// receiver's transaction pool with a deterministic missing-tx round
// trip and full-body fallback), and a push/pull hybrid with a
// configurable push fan-out fraction.
package relay

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/types"
)

// Protocol timing constants, shared by every relay discipline. They
// model the two-phase Geth behavior the paper's network exhibits: a
// push is relayed after cheap PoW/header validation, the announcement
// wave waits for full import (state execution), and pulls pay a
// request-handling cost at each end.
const (
	// ValidateDelay is paid before the push wave (header/PoW check).
	ValidateDelay sim.Time = 4
	// ImportDelay is paid by relayers before the announce wave (full
	// state execution; the block's origin gateway skips it).
	ImportDelay sim.Time = 200
	// AnnounceHandleDelay is paid before acting on an announcement or
	// sketch (scheduling the pull).
	AnnounceHandleDelay sim.Time = 1
)

// Env is the per-node view of the host network a protocol drives. The
// host (internal/p2p) implements it with zero allocations on the push
// path: candidate enumeration and fan-out permutations fill shared
// scratch buffers, exactly as the pre-extraction hot path did.
//
// Candidate indexes returned by Candidates/Fanout are only valid until
// the next Candidates call. Peer identifiers (the `peer` arguments)
// are the host's stable node IDs.
type Env interface {
	// NodeID is the hosting node's stable identifier.
	NodeID() int
	// HasBlock reports whether the node already holds the full block.
	HasBlock(h types.Hash) bool
	// KnownTx reports whether the node's transaction pool has seen the
	// transaction — the receiver-side visibility compact reconstruction
	// runs on.
	KnownTx(h types.Hash) bool

	// Candidates fills the host's shared scratch with the node's up
	// peers not yet known to have h, in stable peer order, and returns
	// the count.
	Candidates(h types.Hash) int
	// Fanout returns a random permutation of [0, n) drawn from the
	// network RNG — the draw-identical successor of rng.Perm(n).
	Fanout(n int) []int

	// PushBlock sends the full block to candidate i at virtual time
	// `at`, marking the peer as knowing it.
	PushBlock(i int, at sim.Time, b *types.Block)
	// PushCompact sends a short-ID sketch of the block to candidate i.
	PushCompact(i int, at sim.Time, b *types.Block)
	// Announce sends a hash announcement to candidate i.
	Announce(i int, at sim.Time, h types.Hash)

	// RequestBlock asks peer for the full block body (GetBlock).
	RequestBlock(peer int, at sim.Time, h types.Hash)
	// RequestCompact asks peer for a compact sketch of the block.
	RequestCompact(peer int, at sim.Time, h types.Hash)
	// RequestTxns asks peer for `count` missing transactions of block h
	// totalling `bytes` serialized bytes (the deterministic missing-tx
	// round trip; the byte total sizes the response message).
	RequestTxns(peer int, at sim.Time, h types.Hash, count, bytes int)

	// ScheduleWave queues the node's deferred announce wave for h,
	// `delay` after now.
	ScheduleWave(delay sim.Time, h types.Hash, origin bool)
	// AcceptBlock hands a fully available block body to the node: it
	// is recorded, measurement-visible state updates, and the
	// protocol's OnBlock runs for onward dissemination.
	AcceptBlock(now sim.Time, b *types.Block)

	// SetPending records an in-flight reconstruction or fallback fetch
	// for h (b may be nil for a full-body fallback). It reports false,
	// without overwriting, when one is already pending.
	SetPending(h types.Hash, b *types.Block) bool
	// HasPending reports whether a fetch/reconstruction is in flight.
	HasPending(h types.Hash) bool
	// TakePending removes and returns the pending entry for h.
	TakePending(h types.Hash) (*types.Block, bool)
}

// Protocol is one block-relay discipline. A Protocol instance belongs
// to exactly one network (its counters are per-campaign state); New
// constructs a fresh instance per campaign.
type Protocol interface {
	// Mode identifies the discipline.
	Mode() Mode
	// OnBlock runs dissemination phase 1 after the hosting node accepts
	// a full block. origin marks the mining gateway that built it.
	OnBlock(env Env, now sim.Time, b *types.Block, origin bool)
	// OnWave runs the deferred announce wave scheduled by OnBlock.
	OnWave(env Env, now sim.Time, h types.Hash, origin bool)
	// OnAnnouncePull fetches a block the node first learned of through
	// a hash announcement from peer `from`.
	OnAnnouncePull(env Env, now sim.Time, from int, h types.Hash)
	// Counters exposes the protocol's accounting (shared struct,
	// updated in place).
	Counters() *Counters
}

// CompactHandler is implemented by protocols that speak the compact
// message family (sketches, missing-tx round trips). The host network
// routes those message kinds here.
type CompactHandler interface {
	// OnCompact processes a received short-ID sketch for b.
	OnCompact(env Env, now sim.Time, from int, b *types.Block)
	// OnBlockTxns processes the missing transactions of block h
	// arriving from the sketch sender, completing reconstruction.
	OnBlockTxns(env Env, now sim.Time, from int, h types.Hash)
}

// Counters is the per-protocol accounting the bandwidth analysis
// reports. Only the compact protocol populates the reconstruction
// fields; every field is zero for disciplines it does not apply to.
type Counters struct {
	// SketchesSent / SketchesReceived count compact sketches on the
	// wire (pushes, pull responses).
	SketchesSent     uint64
	SketchesReceived uint64
	// ReconstructFull counts sketches reconstructed entirely from the
	// receiver's transaction pool (the hit case).
	ReconstructFull uint64
	// ReconstructPartial counts reconstructions that needed the
	// missing-tx round trip.
	ReconstructPartial uint64
	// ReconstructFallback counts sketches abandoned for a full-body
	// fetch (missing fraction above the configured threshold).
	ReconstructFallback uint64
	// MissingTxs / MissingTxBytes total the transactions fetched
	// through missing-tx round trips.
	MissingTxs     uint64
	MissingTxBytes uint64
}

// Attempts returns the number of sketch reconstructions attempted.
func (c *Counters) Attempts() uint64 {
	return c.ReconstructFull + c.ReconstructPartial + c.ReconstructFallback
}

// HitRate returns the fraction of attempts reconstructed without a
// full-body fallback (full and partial hits). Zero when no sketches
// were processed.
func (c *Counters) HitRate() float64 {
	a := c.Attempts()
	if a == 0 {
		return 0
	}
	return float64(c.ReconstructFull+c.ReconstructPartial) / float64(a)
}

// Config selects and parameterizes a relay protocol. The zero value
// is the paper's sqrt-push discipline with default knobs.
type Config struct {
	// Mode selects the discipline.
	Mode Mode
	// PushFraction is the hybrid protocol's full-body push fan-out
	// fraction of candidate peers (0 < f <= 1; 0 means the default).
	PushFraction float64
	// FallbackThreshold is the compact protocol's missing-transaction
	// count fraction above which it abandons the sketch and fetches
	// the full body (0 < t <= 1; 0 means the default).
	FallbackThreshold float64
}

// Default knob values.
const (
	// DefaultPushFraction pushes full bodies to a quarter of the
	// candidates in hybrid mode.
	DefaultPushFraction = 0.25
	// DefaultFallbackThreshold abandons a sketch when more than half
	// its transactions are missing from the pool.
	DefaultFallbackThreshold = 0.5
)

// Validate checks the knobs against their documented ranges.
func (c Config) Validate() error {
	if c.Mode < 0 || int(c.Mode) >= len(modeNames) {
		return fmt.Errorf("relay: unknown mode %s", c.Mode)
	}
	if c.PushFraction < 0 || c.PushFraction > 1 {
		return fmt.Errorf("relay: push fraction %v outside [0,1]", c.PushFraction)
	}
	if c.FallbackThreshold < 0 || c.FallbackThreshold > 1 {
		return fmt.Errorf("relay: fallback threshold %v outside [0,1]", c.FallbackThreshold)
	}
	return nil
}

// New constructs a fresh protocol instance for one network. Zero
// knobs take their defaults.
func New(cfg Config) (Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Mode {
	case SqrtPush, PushAll, AnnounceOnly:
		return &pushRelay{mode: cfg.Mode}, nil
	case Hybrid:
		f := cfg.PushFraction
		if f == 0 {
			f = DefaultPushFraction
		}
		return &pushRelay{mode: Hybrid, fraction: f}, nil
	case Compact:
		t := cfg.FallbackThreshold
		if t == 0 {
			t = DefaultFallbackThreshold
		}
		return &compactRelay{fallback: t}, nil
	default:
		return nil, fmt.Errorf("relay: unknown mode %s", cfg.Mode)
	}
}

// MustNew is New for known-good configurations (tests, fixtures).
func MustNew(cfg Config) Protocol {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}
