package relay_test

import (
	"fmt"
	"testing"

	"repro/internal/geo"
	"repro/internal/p2p"
	"repro/internal/p2p/relay"
	"repro/internal/sim"
	"repro/internal/types"
)

// The protocol-conformance suite: every registered relay protocol
// runs through the same fixture network and must uphold the shared
// invariants —
//
//  1. liveness: every honest node eventually holds every block;
//  2. no duplicate fetches: a node never issues the same body/sketch/
//     missing-tx request twice for one block (duplicate *pushes* are
//     legitimate redundancy, the paper's Table II; duplicate pulls
//     would be protocol bugs);
//  3. accounting: per-class bandwidth counters and per-node egress
//     each sum exactly to Network.BytesSent (and ingress matches on a
//     healthy, fully drained network);
//  4. determinism: two fresh runs at the same seed produce identical
//     delivery traces and counters. (The -parallel 1 vs 8 gate for
//     relay campaigns lives in internal/experiments/golden_test.go,
//     which covers R1, R2 and relay-compare.json.)

// fixtureResult is everything one conformance run produces.
type fixtureResult struct {
	net    *p2p.Network
	nodes  []*p2p.Node
	blocks []*types.Block
	// trace is the full delivery log: one line per observed message.
	trace []string
	// requests counts pull-request receptions per (requester, block,
	// kind) — the duplicate-fetch invariant's evidence.
	requests map[string]int
}

// runFixture builds a fresh overlay under the given protocol, gossips
// a transaction population, then injects a chain of blocks whose
// bodies overlap the gossiped pool, and drains the engine.
func runFixture(t *testing.T, cfg relay.Config, seed uint64) *fixtureResult {
	t.Helper()
	engine := sim.NewEngine()
	rng := sim.NewRNG(seed)
	latency := geo.DefaultLatencyModel()
	net := p2p.NewNetwork(engine, rng.Fork("network"), latency)
	proto, err := relay.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.SetRelay(proto)

	res := &fixtureResult{net: net, requests: map[string]int{}}
	const nodeCount = 30
	regions := geo.Regions()
	for i := 0; i < nodeCount; i++ {
		n, err := net.AddNode(regions[i%len(regions)], 0)
		if err != nil {
			t.Fatal(err)
		}
		res.nodes = append(res.nodes, n)
	}
	if err := net.WireRandom(8); err != nil {
		t.Fatal(err)
	}
	for _, n := range res.nodes {
		n := n
		n.SetObserver(func(now sim.Time, from p2p.NodeID, msg *p2p.Message) {
			key := ""
			switch msg.Kind {
			case p2p.MsgNewBlock, p2p.MsgCompactBlock:
				key = fmt.Sprintf("%v|%d<-%d|%s|%s", now, n.ID(), from, msg.Kind, msg.Block.Hash())
			case p2p.MsgNewBlockHashes:
				key = fmt.Sprintf("%v|%d<-%d|%s|%s", now, n.ID(), from, msg.Kind, msg.Hashes[0])
			default:
				key = fmt.Sprintf("%v|%d<-%d|%s|%s", now, n.ID(), from, msg.Kind, msg.Want)
			}
			res.trace = append(res.trace, key)
			switch msg.Kind {
			case p2p.MsgGetBlock, p2p.MsgGetCompact, p2p.MsgGetBlockTxns:
				// The requester is `from`; this node is serving.
				res.requests[fmt.Sprintf("%d|%s|%s", from, msg.Want, msg.Kind)]++
			}
		})
	}

	// Gossip a transaction population so compact reconstruction has a
	// pool to draw from; txs 20..39 stay private (never gossiped), so
	// sketches miss them deterministically.
	var pool []*types.Transaction
	for i := 0; i < 40; i++ {
		tx := &types.Transaction{
			Sender:   types.AddressFromString(fmt.Sprintf("conf-sender-%d", i)),
			To:       types.AddressFromString("conf-recipient"),
			Nonce:    uint64(i),
			Value:    1,
			GasPrice: 1,
			Gas:      types.TxGas,
		}
		pool = append(pool, tx)
		if i < 20 {
			origin := res.nodes[i%len(res.nodes)]
			engine.Schedule(sim.Time(i), func(now sim.Time) { origin.InjectTx(now, tx) })
		}
	}

	// A short chain whose bodies mix gossiped and private txs: block k
	// carries four pool txs and (for odd k) two private ones.
	parent := types.Hash{}
	for k := 0; k < 6; k++ {
		txs := pool[(4*k)%20 : (4*k)%20+4]
		if k%2 == 1 {
			txs = append(append([]*types.Transaction(nil), txs...), pool[20+2*k], pool[21+2*k])
		}
		blk := types.NewBlock(types.Header{
			ParentHash: parent,
			Number:     uint64(k + 1),
			MinerLabel: "Conformance",
			TimeMillis: uint64(10_000 * (k + 1)),
			GasLimit:   8_000_000,
		}, txs, nil)
		parent = blk.Hash()
		res.blocks = append(res.blocks, blk)
		origin := res.nodes[(7*k)%len(res.nodes)]
		engine.Schedule(sim.Time(10_000*(k+1)), func(now sim.Time) { origin.InjectBlock(now, blk) })
	}

	engine.Run()
	return res
}

// conformanceSeed pins the fixture wiring. The legacy announce-only
// discipline (preserved byte-identically) runs a single sqrt-bounded
// announce wave per holder, so full coverage of a small fixture is
// probabilistic in the wiring; this seed gives every discipline full
// coverage, making the liveness assertion exact rather than
// statistical. If a protocol change breaks it, rerun the suite across
// nearby seeds before concluding the invariant itself regressed.
const conformanceSeed = 27

// TestProtocolConformance runs every registered protocol through the
// fixture and asserts the shared invariants.
func TestProtocolConformance(t *testing.T) {
	for _, mode := range relay.Modes() {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			res := runFixture(t, relay.Config{Mode: mode}, conformanceSeed)

			// 1. Liveness: every node holds every block.
			for _, blk := range res.blocks {
				for _, n := range res.nodes {
					if !n.KnowsBlock(blk.Hash()) {
						t.Fatalf("node %d never received block %d under %s",
							n.ID(), blk.Header.Number, mode)
					}
				}
			}

			// 2. No duplicate fetches per (requester, block, kind).
			for key, count := range res.requests {
				if count > 1 {
					t.Errorf("duplicate request %s issued %d times under %s", key, count, mode)
				}
			}

			// 3. Accounting: class counters and per-node egress sum to
			// the transport totals; the drained healthy fixture also
			// delivers every counted byte.
			var classMsgs, classBytes uint64
			for _, ct := range res.net.ClassTotals() {
				classMsgs += ct.Messages
				classBytes += ct.Bytes
			}
			if classMsgs != res.net.MessagesSent || classBytes != res.net.BytesSent {
				t.Errorf("class totals %d msgs/%d bytes, want %d/%d",
					classMsgs, classBytes, res.net.MessagesSent, res.net.BytesSent)
			}
			var egress, ingress uint64
			for _, n := range res.nodes {
				egress += n.BytesOut()
				ingress += n.BytesIn()
			}
			if egress != res.net.BytesSent {
				t.Errorf("egress sum %d, want BytesSent %d", egress, res.net.BytesSent)
			}
			if ingress != res.net.BytesSent {
				t.Errorf("ingress sum %d, want BytesSent %d on a drained healthy network", ingress, res.net.BytesSent)
			}
			if res.net.MessagesDropped != 0 {
				t.Errorf("healthy fixture dropped %d messages", res.net.MessagesDropped)
			}

			// The compact discipline must actually exercise its
			// reconstruction paths on this fixture (pool hits and the
			// private-tx round trips/fallbacks).
			ctr := res.net.Relay().Counters()
			if mode == relay.Compact {
				if ctr.ReconstructFull == 0 {
					t.Error("compact fixture produced no full reconstructions")
				}
				if ctr.ReconstructPartial+ctr.ReconstructFallback == 0 {
					t.Error("compact fixture never exercised missing-tx handling")
				}
			} else if ctr.Attempts() != 0 || ctr.SketchesSent != 0 {
				t.Errorf("%s reported sketch activity: %+v", mode, *ctr)
			}

			// 4. Determinism: a fresh run at the same seed replays the
			// exact delivery trace.
			again := runFixture(t, relay.Config{Mode: mode}, conformanceSeed)
			if len(again.trace) != len(res.trace) {
				t.Fatalf("rerun trace length %d, want %d", len(again.trace), len(res.trace))
			}
			for i := range res.trace {
				if res.trace[i] != again.trace[i] {
					t.Fatalf("trace diverges at %d: %s vs %s", i, res.trace[i], again.trace[i])
				}
			}
			if again.net.BytesSent != res.net.BytesSent {
				t.Fatalf("rerun bytes %d, want %d", again.net.BytesSent, res.net.BytesSent)
			}
		})
	}
}

// TestHybridPushFraction checks the hybrid knob actually moves the
// full-body/announce split: a higher fraction pushes more bodies.
func TestHybridPushFraction(t *testing.T) {
	bodies := func(fraction float64) uint64 {
		res := runFixture(t, relay.Config{Mode: relay.Hybrid, PushFraction: fraction}, 77)
		for _, ct := range res.net.ClassTotals() {
			if ct.Kind == p2p.MsgNewBlock {
				return ct.Messages
			}
		}
		return 0
	}
	low, high := bodies(0.1), bodies(0.9)
	if high <= low {
		t.Fatalf("push fraction 0.9 sent %d bodies, 0.1 sent %d — knob has no effect", high, low)
	}
}

// TestCompactFallbackThreshold checks the fallback knob: a threshold
// of ~0 turns every miss into a full-body fetch, eliminating
// missing-tx round trips.
func TestCompactFallbackThreshold(t *testing.T) {
	res := runFixture(t, relay.Config{Mode: relay.Compact, FallbackThreshold: 0.001}, 99)
	ctr := res.net.Relay().Counters()
	if ctr.ReconstructPartial != 0 {
		t.Fatalf("threshold 0.001 still ran %d missing-tx round trips", ctr.ReconstructPartial)
	}
	if ctr.ReconstructFallback == 0 {
		t.Fatal("threshold 0.001 produced no fallbacks on the divergent fixture")
	}
}
