package relay

import (
	"fmt"
	"strings"
)

// Mode identifies a block-relay discipline. The zero value is
// SqrtPush, the eth/63 behavior the paper's network runs, so a
// zero-valued configuration reproduces the study unchanged.
type Mode int

// Registered relay modes.
const (
	// SqrtPush pushes full blocks to sqrt(peers) after cheap
	// validation and announces hashes to a sqrt-bounded remainder
	// after full import — the eth/63 rule.
	SqrtPush Mode = iota
	// PushAll sends full blocks to every peer (maximal redundancy,
	// minimal delay).
	PushAll
	// AnnounceOnly sends only hash announcements; every block body
	// travels via pull (minimal redundancy, extra round trips).
	AnnounceOnly
	// Compact relays short-ID sketches reconstructed from the
	// receiver's transaction pool (BIP152-shaped), with a
	// deterministic missing-tx round trip and a full-body fallback.
	Compact
	// Hybrid pushes full bodies to a configurable fraction of peers
	// and catches the rest up with announcements to all of them.
	Hybrid
)

// modeNames is the canonical name table; Modes, String and ParseMode
// all derive from it so the three can never disagree.
var modeNames = [...]string{
	SqrtPush:     "sqrt-push",
	PushAll:      "push-all",
	AnnounceOnly: "announce-only",
	Compact:      "compact",
	Hybrid:       "hybrid",
}

// Modes returns every registered relay mode, in declaration order —
// the iteration order of the conformance suite and the R1 shoot-out.
func Modes() []Mode {
	out := make([]Mode, len(modeNames))
	for i := range modeNames {
		out[i] = Mode(i)
	}
	return out
}

// String names the mode as used in scenario files, artifact metadata
// and metric keys. Unknown modes render as "unknown(N)" so a
// corrupted or future-version mode is visible in run-dir metadata
// instead of formatting as an empty or ambiguous string.
func (m Mode) String() string {
	if m < 0 || int(m) >= len(modeNames) {
		return fmt.Sprintf("unknown(%d)", int(m))
	}
	return modeNames[m]
}

// ParseMode resolves a protocol name from a scenario file. The legacy
// push-policy spellings ("sqrt", "all", "announce") stay accepted so
// pre-relay scenario files keep parsing.
func ParseMode(name string) (Mode, error) {
	switch strings.ToLower(name) {
	case "", "sqrt", "sqrt-push":
		return SqrtPush, nil
	case "all", "push-all":
		return PushAll, nil
	case "announce", "announce-only":
		return AnnounceOnly, nil
	case "compact", "compact-block":
		return Compact, nil
	case "hybrid", "push-pull":
		return Hybrid, nil
	default:
		known := make([]string, 0, len(modeNames))
		known = append(known, modeNames[:]...)
		return 0, fmt.Errorf("relay: unknown protocol %q (known: %s)",
			name, strings.Join(known, ", "))
	}
}
