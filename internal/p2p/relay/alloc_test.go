package relay_test

import (
	"fmt"
	"testing"

	"repro/internal/geo"
	"repro/internal/p2p"
	"repro/internal/p2p/relay"
	"repro/internal/sim"
	"repro/internal/types"
)

// allocFixture builds a warmed overlay plus a pre-built block chain
// for steady-state allocation measurement: pools, scratch buffers and
// delivery slots are all hot after the warmup blocks drain.
func allocFixture(t testing.TB, mode relay.Mode, total int) (*p2p.Network, []*p2p.Node, []*types.Block) {
	t.Helper()
	engine := sim.NewEngine()
	rng := sim.NewRNG(7)
	net := p2p.NewNetwork(engine, rng.Fork("network"), geo.DefaultLatencyModel())
	proto, err := relay.New(relay.Config{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	net.SetRelay(proto)
	var nodes []*p2p.Node
	regions := geo.Regions()
	for i := 0; i < 30; i++ {
		n, err := net.AddNode(regions[i%len(regions)], 0)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	if err := net.WireRandom(6); err != nil {
		t.Fatal(err)
	}
	parent := types.Hash{}
	blocks := make([]*types.Block, 0, total)
	for k := 0; k < total; k++ {
		blk := types.NewBlock(types.Header{
			ParentHash: parent,
			Number:     uint64(k + 1),
			MinerLabel: "Alloc",
			TimeMillis: uint64(k),
			GasLimit:   8_000_000,
		}, nil, nil)
		parent = blk.Hash()
		blocks = append(blocks, blk)
	}
	return net, nodes, blocks
}

// relayAllocsPerBlock measures steady-state heap allocations per
// block spread (inject + full drain) after a warmup.
func relayAllocsPerBlock(t testing.TB, mode relay.Mode) float64 {
	const warmup, measured = 120, 60
	// AllocsPerRun invokes the function measured+1 times.
	net, nodes, blocks := allocFixture(t, mode, warmup+measured+1)
	engine := net.Engine()
	next := 0
	spread := func() {
		blk := blocks[next]
		origin := nodes[(7*next)%len(nodes)]
		next++
		origin.InjectBlock(engine.Now(), blk)
		engine.Run()
	}
	for i := 0; i < warmup; i++ {
		spread()
	}
	return testing.AllocsPerRun(measured, spread)
}

// Steady-state allocation ceilings per block spread on a 30-node
// fixture. The spread touches every node's per-block bookkeeping
// (haveBlocks/seenHashes/peerKnows inserts are inherent, O(nodes) map
// writes), so the floor is not zero — but transport slots, messages
// and fan-out scratch are pooled, and a regression that allocates
// per *message* would show up at hundreds of allocations per block.
// Measured values on the reference setup: ~14 for both disciplines
// once the suppression-cache recycling reaches steady state (the
// warmup must exceed the 64-block knownPeerCap for that).
const (
	sqrtPushAllocCeiling = 60
	compactAllocCeiling  = 90
)

// TestRelayAllocationCeiling is the allocation-regression guard on
// the relay hot path, wired into `make bench-compare` alongside the
// ns/op gate.
func TestRelayAllocationCeiling(t *testing.T) {
	cases := []struct {
		mode    relay.Mode
		ceiling float64
	}{
		{relay.SqrtPush, sqrtPushAllocCeiling},
		{relay.Compact, compactAllocCeiling},
	}
	for _, tc := range cases {
		t.Run(tc.mode.String(), func(t *testing.T) {
			got := relayAllocsPerBlock(t, tc.mode)
			t.Logf("%s: %.1f allocs per block spread", tc.mode, got)
			if got > tc.ceiling {
				t.Fatalf("%s relay hot path allocates %.1f per block spread (ceiling %v) — a pooled structure regressed",
					tc.mode, got, tc.ceiling)
			}
		})
	}
}

// BenchmarkRelayBlockSpread reports ns and B/op for one block spread
// per discipline on the warmed fixture.
func BenchmarkRelayBlockSpread(b *testing.B) {
	for _, mode := range []relay.Mode{relay.SqrtPush, relay.Compact} {
		b.Run(fmt.Sprint(mode), func(b *testing.B) {
			net, nodes, blocks := allocFixture(b, mode, b.N+1)
			engine := net.Engine()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				origin := nodes[(7*i)%len(nodes)]
				origin.InjectBlock(engine.Now(), blocks[i])
				engine.Run()
			}
		})
	}
}
