package relay

import (
	"fmt"
	"testing"

	"repro/internal/types"
)

// mkTx builds a distinct transaction.
func mkTx(i int) *types.Transaction {
	return &types.Transaction{
		Sender:   types.AddressFromString(fmt.Sprintf("codec-sender-%d", i)),
		To:       types.AddressFromString("codec-to"),
		Nonce:    uint64(i),
		Value:    uint64(i + 1),
		GasPrice: 1,
		Gas:      types.TxGas,
	}
}

func mkBlock(txs []*types.Transaction) *types.Block {
	return types.NewBlock(types.Header{
		Number:     7,
		MinerLabel: "Codec",
		GasLimit:   8_000_000,
	}, txs, nil)
}

func TestReconstructFullPool(t *testing.T) {
	var txs []*types.Transaction
	for i := 0; i < 8; i++ {
		txs = append(txs, mkTx(i))
	}
	blk := mkBlock(txs)
	sk := NewSketch(blk)
	got, missing, ok := sk.Reconstruct(txs)
	if !ok || len(missing) != 0 {
		t.Fatalf("full pool: ok=%v missing=%v", ok, missing)
	}
	if types.TxRoot(got) != blk.Header.TxRoot {
		t.Fatal("reconstructed root mismatch")
	}
}

func TestReconstructReportsMissing(t *testing.T) {
	var txs []*types.Transaction
	for i := 0; i < 6; i++ {
		txs = append(txs, mkTx(i))
	}
	blk := mkBlock(txs)
	sk := NewSketch(blk)
	// Pool holds only the even-index txs (plus unrelated decoys).
	pool := []*types.Transaction{txs[0], txs[2], txs[4], mkTx(100), mkTx(101)}
	got, missing, ok := sk.Reconstruct(pool)
	if ok {
		t.Fatal("incomplete pool must not report ok")
	}
	if len(missing) != 3 {
		t.Fatalf("missing %v, want indexes 1,3,5", missing)
	}
	for _, i := range missing {
		if i%2 != 1 {
			t.Fatalf("wrong missing index %d", i)
		}
		if got[i] != nil {
			t.Fatalf("missing slot %d filled", i)
		}
	}
}

func TestReconstructRefusesAmbiguousShortID(t *testing.T) {
	tx := mkTx(0)
	blk := mkBlock([]*types.Transaction{tx})
	sk := NewSketch(blk)
	// Force a collision: a second pool entry whose short ID is made
	// identical by tampering with the sketch's index — instead, poison
	// the pool with a duplicate-ID pair by tampering the sketch ID to
	// a value two decoys share is impossible without hash inversion,
	// so exercise the documented ambiguity rule directly: the same tx
	// twice is benign (same hash), and a tampered sketch ID matching
	// nothing reports missing.
	got, missing, ok := sk.Reconstruct([]*types.Transaction{tx, tx})
	if !ok || len(missing) != 0 || got[0] != tx {
		t.Fatalf("duplicate identical pool entries must stay resolvable: ok=%v missing=%v", ok, missing)
	}
	sk.IDs[0] ^= 1 // tamper: now matches no pool tx
	_, missing, ok = sk.Reconstruct([]*types.Transaction{tx})
	if ok || len(missing) != 1 {
		t.Fatalf("tampered ID resolved: ok=%v missing=%v", ok, missing)
	}
}

func TestReconstructDetectsWrongAssembly(t *testing.T) {
	// Two blocks over different tx sets: feeding block A's sketch a
	// pool whose entries collide positionally (by forging the sketch
	// IDs to point at B's txs) must fail the TxRoot check, never
	// return a mismatching body.
	a, b := mkTx(1), mkTx(2)
	blk := mkBlock([]*types.Transaction{a})
	sk := NewSketch(blk)
	sk.IDs[0] = ShortIDOf(sk.BlockHash, b.Hash()) // forged: resolves to b
	got, missing, ok := sk.Reconstruct([]*types.Transaction{b})
	if ok {
		t.Fatalf("forged sketch reconstructed: %v", got)
	}
	if len(missing) != 1 {
		t.Fatalf("forged sketch must mark everything missing, got %v", missing)
	}
}

func TestEmptyBlockSketch(t *testing.T) {
	blk := mkBlock(nil)
	sk := NewSketch(blk)
	got, missing, ok := sk.Reconstruct(nil)
	if !ok || len(missing) != 0 || len(got) != 0 {
		t.Fatalf("empty block: ok=%v missing=%v", ok, missing)
	}
}

func TestModeString(t *testing.T) {
	cases := map[Mode]string{
		SqrtPush:     "sqrt-push",
		PushAll:      "push-all",
		AnnounceOnly: "announce-only",
		Compact:      "compact",
		Hybrid:       "hybrid",
		// Unknown modes must render visibly — run-dir metadata embeds
		// the mode name, and an empty or bare "unknown" string hides
		// which value leaked through.
		Mode(9):  "unknown(9)",
		Mode(-1): "unknown(-1)",
	}
	for mode, want := range cases {
		if got := mode.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(mode), got, want)
		}
	}
	for _, m := range Modes() {
		back, err := ParseMode(m.String())
		if err != nil || back != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), back, err)
		}
	}
	if _, err := ParseMode("flood"); err == nil {
		t.Error("ParseMode must reject unknown names")
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{}, true},
		{Config{Mode: Compact, FallbackThreshold: 0.9}, true},
		{Config{Mode: Hybrid, PushFraction: 1}, true},
		{Config{Mode: Mode(42)}, false},
		{Config{PushFraction: -0.1}, false},
		{Config{FallbackThreshold: 1.5}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("Validate(%+v) err=%v, want ok=%v", tc.cfg, err, tc.ok)
		}
	}
	if _, err := New(Config{Mode: Mode(42)}); err == nil {
		t.Error("New must reject unknown modes")
	}
}
