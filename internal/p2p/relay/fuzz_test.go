package relay

import (
	"fmt"
	"testing"

	"repro/internal/types"
)

// FuzzCompactReconstruct drives Sketch.Reconstruct with arbitrary
// pool overlap and sketch tampering derived from the fuzz input, and
// asserts the safety property the compact protocol rests on: a
// reconstruction must never claim success for a transaction list
// whose commitment mismatches the block header — whatever the pool
// contains and however the short IDs are corrupted. Secondary
// properties: missing indexes are exact when untampered, and
// resolution is deterministic.
//
// Input layout (all bytes optional; short inputs mean small cases):
//
//	data[0]        → block tx count (0..16)
//	data[1+i]      → per-tx pool membership / decoy flags (2 bits each)
//	data[17+j]     → sketch tampering ops: (index, xor byte) pairs
func FuzzCompactReconstruct(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 0b01, 0b01, 0b01, 0b01})
	f.Add([]byte{8, 0b00, 0b01, 0b10, 0b11, 0b01, 0b00, 0b11, 0b10})
	f.Add([]byte{16, 0xff, 0xaa, 0x55, 0x00, 0x12, 0x34, 0x56, 0x78,
		0x9a, 0xbc, 0xde, 0xf0, 0x11, 0x22, 0x33, 0x44, 0x55,
		3, 0x80, 7, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		at := func(i int) byte {
			if i < len(data) {
				return data[i]
			}
			return 0
		}
		n := int(at(0)) % 17
		var txs []*types.Transaction
		var pool []*types.Transaction
		inPool := make([]bool, n)
		for i := 0; i < n; i++ {
			tx := &types.Transaction{
				Sender:   types.AddressFromString(fmt.Sprintf("fuzz-sender-%d", i)),
				To:       types.AddressFromString("fuzz-to"),
				Nonce:    uint64(i),
				Value:    uint64(at(1+i)) + 1,
				GasPrice: 1,
				Gas:      types.TxGas,
			}
			txs = append(txs, tx)
			flags := at(1 + i)
			if flags&0b01 != 0 {
				pool = append(pool, tx)
				inPool[i] = true
			}
			if flags&0b10 != 0 {
				// Unrelated decoy sharing nothing but shape.
				pool = append(pool, &types.Transaction{
					Sender: types.AddressFromString(fmt.Sprintf("fuzz-decoy-%d", i)),
					To:     types.AddressFromString("fuzz-to"),
					Nonce:  uint64(1000 + i),
					Value:  uint64(flags),
					Gas:    types.TxGas,
				})
			}
		}
		blk := types.NewBlock(types.Header{
			Number:     1,
			MinerLabel: "Fuzz",
			GasLimit:   8_000_000,
		}, txs, nil)
		sk := NewSketch(blk)
		tampered := false
		for j := 17; j+1 < len(data) && j < 37; j += 2 {
			if n == 0 {
				break
			}
			idx := int(data[j]) % n
			if data[j+1] != 0 {
				sk.IDs[idx] ^= ShortID(data[j+1])
				tampered = true
			}
		}

		got, missing, ok := sk.Reconstruct(pool)
		// THE safety property: success implies a matching commitment
		// with every slot filled.
		if ok {
			if len(missing) != 0 {
				t.Fatalf("ok with %d missing", len(missing))
			}
			if len(got) != n {
				t.Fatalf("ok with %d txs, want %d", len(got), n)
			}
			for i, tx := range got {
				if tx == nil {
					t.Fatalf("ok with nil tx at %d", i)
				}
			}
			if types.TxRoot(got) != blk.Header.TxRoot {
				t.Fatal("reconstruction produced a body whose root mismatches the header")
			}
		}
		// Untampered sketches resolve exactly the pool overlap.
		if !tampered {
			missingSet := map[int]bool{}
			for _, i := range missing {
				missingSet[i] = true
			}
			for i := 0; i < n; i++ {
				if inPool[i] && !ok && missingSet[i] {
					t.Fatalf("pool tx %d reported missing from untampered sketch", i)
				}
				if !inPool[i] && ok {
					t.Fatalf("absent tx %d reconstructed without a pool entry", i)
				}
			}
		}
		// Determinism: same inputs, same resolution.
		got2, missing2, ok2 := sk.Reconstruct(pool)
		if ok2 != ok || len(missing2) != len(missing) || len(got2) != len(got) {
			t.Fatal("reconstruction is nondeterministic")
		}
	})
}
