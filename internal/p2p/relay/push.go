package relay

import (
	"math"

	"repro/internal/sim"
	"repro/internal/types"
)

// pushRelay implements the push-wave disciplines: the legacy eth/63
// sqrt-push (and its push-all / announce-only ablation endpoints),
// moved out of internal/p2p byte-identically, plus the push/pull
// hybrid. All four share the same two-phase structure — a full-body
// push wave after cheap validation, a deferred announce wave after
// full import — and differ only in the two fan-out rules.
type pushRelay struct {
	mode Mode
	// fraction is the hybrid push fan-out fraction (unused otherwise).
	fraction float64
	counters Counters
}

func (p *pushRelay) Mode() Mode          { return p.mode }
func (p *pushRelay) Counters() *Counters { return &p.counters }

// pushCount returns the number of candidates receiving a full body in
// phase 1.
func (p *pushRelay) pushCount(candidates int) int {
	switch p.mode {
	case PushAll:
		return candidates
	case AnnounceOnly:
		return 0
	case Hybrid:
		k := int(math.Ceil(p.fraction * float64(candidates)))
		if k > candidates {
			k = candidates
		}
		return k
	default: // SqrtPush
		return sqrtFanout(candidates)
	}
}

// sqrtFanout is the eth/63 sqrt rule with the legacy floor of one.
func sqrtFanout(n int) int {
	k := int(math.Sqrt(float64(n)))
	if k < 1 {
		k = 1
	}
	return k
}

// OnBlock is dissemination phase 1. The call sequence — candidate
// enumeration, one fan-out permutation (drawn even when the push
// count is zero), pushes, wave scheduling — replays the pre-extraction
// Node.relayBlock exactly, so legacy scenarios consume identical RNG
// draws and schedule identical events.
func (p *pushRelay) OnBlock(env Env, now sim.Time, b *types.Block, origin bool) {
	h := b.Hash()
	c := env.Candidates(h)
	if c == 0 {
		return
	}
	k := p.pushCount(c)
	order := env.Fanout(c)
	for i := 0; i < k && i < len(order); i++ {
		env.PushBlock(order[i], now+ValidateDelay, b)
	}
	announceDelay := ValidateDelay + ImportDelay
	if origin {
		// The origin gateway already executed its own block.
		announceDelay = ValidateDelay
	}
	env.ScheduleWave(announceDelay, h, origin)
}

// OnWave is dissemination phase 2: hash announcements to peers still
// not known to have the block. The hybrid's catch-up wave announces
// to all of them.
func (p *pushRelay) OnWave(env Env, now sim.Time, h types.Hash, origin bool) {
	announceWave(env, now, h, origin || p.mode == Hybrid)
}

// announceWave sends the deferred hash announcements shared by every
// discipline: to all remaining candidates when `all`, otherwise to a
// sqrt-bounded subset (Geth's fetcher rate-limits announcements — the
// paper's Table II measures a mean announcement in-degree of only
// 2.585; the origin gateway always announces to all).
func announceWave(env Env, now sim.Time, h types.Hash, all bool) {
	c := env.Candidates(h)
	if c == 0 {
		return
	}
	limit := c
	if !all {
		limit = sqrtFanout(c)
	}
	order := env.Fanout(c)
	for i := 0; i < limit; i++ {
		env.Announce(order[i], now, h)
	}
}

// OnAnnouncePull fetches an announced unknown block with a full-body
// GetBlock from the announcer, after the announcement handling cost.
func (p *pushRelay) OnAnnouncePull(env Env, now sim.Time, from int, h types.Hash) {
	env.RequestBlock(from, now+AnnounceHandleDelay, h)
}
