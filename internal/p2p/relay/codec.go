package relay

import (
	"encoding/binary"

	"repro/internal/types"
)

// ShortIDBytes is the wire size of one transaction short identifier
// (BIP152 uses 6-byte siphash-derived IDs).
const ShortIDBytes = 6

// ShortID is a 48-bit transaction identifier, derived from the
// transaction hash under a per-block salt. The salt (the block hash)
// plays the role of BIP152's header-derived siphash key: the same
// transaction maps to different short IDs in different blocks, so a
// collision against one block's sketch does not persist.
type ShortID uint64

// shortIDMask keeps the low 48 bits.
const shortIDMask = (uint64(1) << (8 * ShortIDBytes)) - 1

// ShortIDOf derives the short identifier of a transaction hash under
// a block salt.
func ShortIDOf(salt, txHash types.Hash) ShortID {
	a := binary.BigEndian.Uint64(salt[:8])
	b := binary.BigEndian.Uint64(txHash[:8])
	// A multiply-fold mixes the salt through every bit of the result;
	// a plain XOR would let an adversarial pool cancel the salt.
	v := (a ^ b) * 0x9e3779b97f4a7c15
	return ShortID((v ^ (v >> 31)) & shortIDMask)
}

// Sketch is the compact representation of a block body: the block
// identity, the header's transaction-list commitment, and one short
// ID per transaction. This is what a MsgCompactBlock models on the
// wire; the receiver resolves the IDs against its own transaction
// pool.
type Sketch struct {
	// BlockHash identifies the block (and salts the short IDs).
	BlockHash types.Hash
	// TxRoot is the header's transaction-list commitment, verified
	// after reconstruction.
	TxRoot types.Hash
	// IDs lists the short identifier of each body transaction, in
	// block order.
	IDs []ShortID
}

// NewSketch builds the sketch of a block.
func NewSketch(b *types.Block) *Sketch {
	salt := b.Hash()
	s := &Sketch{
		BlockHash: salt,
		TxRoot:    b.Header.TxRoot,
		IDs:       make([]ShortID, len(b.Txs)),
	}
	for i, tx := range b.Txs {
		s.IDs[i] = ShortIDOf(salt, tx.Hash())
	}
	return s
}

// Reconstruct resolves the sketch against a candidate transaction
// pool. It returns the assembled transaction list (nil holes at
// unresolved positions) and the indexes still missing. Resolution is
// deterministic: every short ID that matches exactly one pool
// transaction resolves to it; IDs with zero or multiple pool matches
// (a short-ID collision) are reported missing rather than guessed.
//
// ok is true only when every position resolved AND the assembled list
// matches the sketch's TxRoot commitment — so a reconstruction can
// never silently produce a block body whose hash mismatches the
// header (the FuzzCompactReconstruct safety property). A complete but
// mismatching assembly (an undetected pairwise collision) returns
// ok=false with every index marked missing, which callers treat as a
// full-body fallback.
func (s *Sketch) Reconstruct(pool []*types.Transaction) (txs []*types.Transaction, missing []int, ok bool) {
	txs = make([]*types.Transaction, len(s.IDs))
	if len(s.IDs) == 0 {
		return txs, nil, types.TxRoot(nil) == s.TxRoot
	}
	// Index the pool by short ID under this block's salt; ambiguous
	// IDs are poisoned so they resolve to nothing.
	index := make(map[ShortID]*types.Transaction, len(pool))
	for _, tx := range pool {
		if tx == nil {
			continue
		}
		id := ShortIDOf(s.BlockHash, tx.Hash())
		if prev, dup := index[id]; dup {
			if prev != nil && prev.Hash() != tx.Hash() {
				index[id] = nil // collision: refuse to guess
			}
			continue
		}
		index[id] = tx
	}
	for i, id := range s.IDs {
		if tx := index[id]; tx != nil {
			txs[i] = tx
		} else {
			missing = append(missing, i)
		}
	}
	if len(missing) > 0 {
		return txs, missing, false
	}
	if types.TxRoot(txs) != s.TxRoot {
		// Every slot filled but the commitment disagrees: at least one
		// short ID collided undetected. Nothing in the assembly can be
		// trusted, so the whole body is missing.
		missing = make([]int, len(s.IDs))
		for i := range missing {
			missing[i] = i
		}
		return txs, missing, false
	}
	return txs, nil, true
}

// SketchWireBytes returns the serialized size a sketch of n
// transactions adds beyond the block header: a count prefix plus one
// short ID per transaction.
func SketchWireBytes(n int) int {
	return 2 + n*ShortIDBytes
}
