package server

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"sync"

	"repro/internal/store"
)

// Per-campaign profile artifacts, written into the campaign store
// before the manifest so they are digest-sealed like everything else.
const (
	ProfileCPUFile  = "profile/cpu.pprof"
	ProfileHeapFile = "profile/heap.pprof"
)

// profileMu serializes CPU profiling: the Go runtime supports one CPU
// profile at a time per process. When campaigns overlap, the first
// one holds the profiler and the rest run unprofiled — TryLock, never
// wait, so profiling cannot slow the queue down.
var profileMu sync.Mutex

// profileCapture is one campaign's in-flight CPU profile.
type profileCapture struct {
	cpu    bytes.Buffer
	active bool
}

// startProfile begins a CPU profile if the profiler is free, else
// returns nil (a nil capture is inert).
func startProfile() *profileCapture {
	if !profileMu.TryLock() {
		return nil
	}
	p := &profileCapture{}
	if err := pprof.StartCPUProfile(&p.cpu); err != nil {
		profileMu.Unlock()
		return nil
	}
	p.active = true
	return p
}

// stop ends the profile and writes the CPU and heap artifacts into
// the campaign store. The forced GC makes the heap profile reflect
// live objects rather than collectable garbage.
func (p *profileCapture) stop(st store.Store) error {
	if p == nil || !p.active {
		return nil
	}
	pprof.StopCPUProfile()
	profileMu.Unlock()
	p.active = false
	if err := st.Put(ProfileCPUFile, p.cpu.Bytes()); err != nil {
		return err
	}
	runtime.GC()
	var heap bytes.Buffer
	if err := pprof.WriteHeapProfile(&heap); err != nil {
		return err
	}
	return st.Put(ProfileHeapFile, heap.Bytes())
}

// abort discards an in-flight profile without writing artifacts
// (campaign failed before sealing).
func (p *profileCapture) abort() {
	if p == nil || !p.active {
		return
	}
	pprof.StopCPUProfile()
	profileMu.Unlock()
	p.active = false
}
