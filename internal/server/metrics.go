package server

import (
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// storeOps enumerates the instrumented store operations; each gets a
// latency histogram series registered at startup so a fresh server's
// scrape is deterministic.
var storeOps = []string{"put", "get", "list", "delete", "manifest"}

// serverMetrics is one server's /metrics surface: a dependency-free
// Prometheus registry over the campaign lifecycle, the executor pool,
// the SSE subscriber count and artifact-store traffic.
type serverMetrics struct {
	reg *obs.Registry

	submitted         *obs.Counter
	rejected          *obs.Counter
	finishedDone      *obs.Counter
	finishedFailed    *obs.Counter
	finishedCancelled *obs.Counter

	runsStarted   *obs.Counter
	runsCompleted *obs.Counter
	runsFailed    *obs.Counter

	executorsBusy  *obs.Gauge
	sseSubscribers *obs.Gauge

	artifactBytes *obs.Counter
	profiles      *obs.Counter
	storeLatency  map[string]*obs.Histogram
}

// newServerMetrics registers every series. Registration order is the
// scrape order, which the golden scrape test pins.
func newServerMetrics(s *Server) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{reg: reg, storeLatency: map[string]*obs.Histogram{}}

	reg.GaugeFunc("ethserve_queue_depth", "Campaigns waiting in the submission queue.",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("ethserve_queue_capacity", "Submission queue capacity (503 beyond it).",
		func() float64 { return float64(s.cfg.Queue) })
	reg.GaugeFunc("ethserve_executors", "Configured campaign executors.",
		func() float64 { return float64(s.cfg.Campaigns) })
	m.executorsBusy = reg.Gauge("ethserve_executors_busy", "Executors currently running a campaign.")

	m.submitted = reg.Counter("ethserve_campaigns_submitted_total", "Campaigns accepted into the queue.")
	m.rejected = reg.Counter("ethserve_campaigns_rejected_total", "Campaigns rejected by queue backpressure.")
	m.finishedDone = reg.Counter("ethserve_campaigns_finished_total", "Campaigns reaching a terminal state.", obs.Label{Key: "state", Value: "done"})
	m.finishedFailed = reg.Counter("ethserve_campaigns_finished_total", "", obs.Label{Key: "state", Value: "failed"})
	m.finishedCancelled = reg.Counter("ethserve_campaigns_finished_total", "", obs.Label{Key: "state", Value: "cancelled"})

	m.runsStarted = reg.Counter("ethserve_runs_started_total", "Experiment (spec, repeat) runs dispatched to workers.")
	m.runsCompleted = reg.Counter("ethserve_runs_completed_total", "Experiment runs completed (failures included).")
	m.runsFailed = reg.Counter("ethserve_runs_failed_total", "Experiment runs that returned an error.")

	m.sseSubscribers = reg.Gauge("ethserve_sse_subscribers", "Connected /events subscribers.")

	m.artifactBytes = reg.Counter("ethserve_artifact_bytes_written_total", "Bytes written into campaign artifact stores.")
	m.profiles = reg.Counter("ethserve_profiles_captured_total", "Per-campaign pprof profile pairs captured.")
	for _, op := range storeOps {
		m.storeLatency[op] = reg.Histogram("ethserve_store_op_seconds",
			"Artifact store operation latency.", nil, obs.Label{Key: "op", Value: op})
	}

	reg.GaugeFunc("ethserve_goroutines", "Process goroutine count.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("ethserve_heap_alloc_bytes", "Process live heap bytes.",
		func() float64 { return float64(obs.ProcessSnapshot().HeapAllocBytes) })
	return m
}

// instrumentedStore wraps a campaign's artifact store with latency
// histograms and a bytes-written counter. Instrumentation observes
// only; every byte and error passes through unchanged, so sealed
// artifacts are identical with metrics on or off.
type instrumentedStore struct {
	inner store.Store
	m     *serverMetrics
}

func (s instrumentedStore) observe(op string, start time.Time) {
	s.m.storeLatency[op].ObserveDuration(time.Since(start))
}

func (s instrumentedStore) Put(name string, data []byte) error {
	defer s.observe("put", time.Now())
	err := s.inner.Put(name, data)
	if err == nil {
		s.m.artifactBytes.Add(uint64(len(data)))
	}
	return err
}

func (s instrumentedStore) Get(name string) ([]byte, error) {
	defer s.observe("get", time.Now())
	return s.inner.Get(name)
}

func (s instrumentedStore) List() ([]string, error) {
	defer s.observe("list", time.Now())
	return s.inner.List()
}

func (s instrumentedStore) Delete(name string) error {
	defer s.observe("delete", time.Now())
	return s.inner.Delete(name)
}

func (s instrumentedStore) Manifest() (*store.Manifest, error) {
	defer s.observe("manifest", time.Now())
	return s.inner.Manifest()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.reg.WritePrometheus(w) //nolint:errcheck // client gone; nothing to do
}

// handleHealthz is the liveness probe: 200 while serving, 503 (with
// Retry-After) once shutdown has begun.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	campaigns := len(s.campaigns)
	s.mu.Unlock()
	if closed {
		writeError(w, errUnavailable("server is shutting down"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"queue_depth":    len(s.queue),
		"queue_capacity": s.cfg.Queue,
		"campaigns":      campaigns,
	})
}

// handleVersion reports the build: module version, Go toolchain and
// VCS stamp when the binary was built from a checkout.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	out := map[string]string{"go": runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		out["module"] = bi.Main.Path
		out["version"] = bi.Main.Version
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision", "vcs.time", "vcs.modified":
				out[kv.Key] = kv.Value
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// retryAfter is the hint sent with 503 responses. Queue-full
// rejections clear quickly (a campaign slot frees as soon as an
// executor finishes), so the hint is short.
const retryAfter = 1 * time.Second

func retryAfterValue() string {
	return fmt.Sprintf("%d", int(retryAfter.Seconds()))
}
