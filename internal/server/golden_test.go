package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/store"
)

// The server's core acceptance gate: a campaign submitted over HTTP
// must write a run directory byte-identical to the same campaign run
// through the ethrepro CLI pipeline — same files, same bytes, same
// Merkle root — at any parallelism.

// cliRun executes a campaign exactly the way `ethrepro -scenario f
// -out dir -parallel N` does: load, compile, run, write artifacts,
// embed the scenario, seal.
func cliRun(t *testing.T, scenarioPath, dir string, seed uint64, repeats, parallel int) {
	t.Helper()
	set, err := scenario.Load(scenarioPath)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := set.Compile()
	if err != nil {
		t.Fatal(err)
	}
	report, err := experiments.Run(context.Background(), specs, experiments.RunnerConfig{
		Seed: seed, Scale: experiments.ScaleSmall, Repeats: repeats, Parallel: parallel,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := store.NewFS(dir)
	if err := experiments.WriteArtifacts(st, report); err != nil {
		t.Fatal(err)
	}
	if err := scenario.WriteArtifact(st, []*scenario.Set{set}); err != nil {
		t.Fatal(err)
	}
	if err := experiments.WriteManifest(st, report); err != nil {
		t.Fatal(err)
	}
}

// serveRun submits the same campaign over HTTP against a filesystem
// store and waits for it to finish.
func serveRun(t *testing.T, scenarioPath, dir string, seed uint64, repeats, parallel int) {
	t.Helper()
	srv := New(Config{
		// The budget must not clamp below the requested parallelism,
		// or the comparison would not exercise the parallel path.
		WorkerBudget: parallel,
		OpenStore: func(id string) (store.Store, error) {
			return store.NewFS(dir), nil
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	doc, err := os.ReadFile(scenarioPath)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(SubmitRequest{
		Scenario: doc,
		// The CLI records the source path in scenario.json; matching
		// it is part of the byte-identity contract.
		ScenarioPath: scenarioPath,
		Seed:         seed,
		Repeats:      repeats,
		Parallel:     parallel,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %+v", resp.StatusCode, st)
	}
	final := waitState(t, ts.URL, st.ID, StateDone)
	if final.Failed != 0 {
		t.Fatalf("campaign failed: %+v", final)
	}
}

// dirContents maps every file under root to its bytes.
func dirContents(t *testing.T, root string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out[filepath.ToSlash(rel)] = data
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func assertIdenticalDirs(t *testing.T, cliDir, httpDir string) {
	t.Helper()
	cli, srv := dirContents(t, cliDir), dirContents(t, httpDir)
	var names []string
	for name := range cli {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		got, ok := srv[name]
		if !ok {
			t.Errorf("HTTP run missing %s", name)
			continue
		}
		if !bytes.Equal(cli[name], got) {
			t.Errorf("%s differs between CLI and HTTP runs (%d vs %d bytes)",
				name, len(cli[name]), len(got))
		}
	}
	for name := range srv {
		if _, ok := cli[name]; !ok {
			t.Errorf("HTTP run has extra file %s", name)
		}
	}
}

// scenarioFile picks the gate's scenario: the paper-baseline
// acceptance file, or a sweep-free chain scenario under -short.
func scenarioFile(t *testing.T) string {
	t.Helper()
	if !testing.Short() {
		return filepath.Join("..", "..", "examples", "scenarios", "paper-baseline.json")
	}
	path := filepath.Join(t.TempDir(), "short.json")
	doc := `{
	  "name": "short-gate",
	  "mode": "chain",
	  "chain": {"blocks": 300, "inter_block_ms": 13300},
	  "outputs": ["forks"],
	  "sweep": {"axes": [{"field": "chain.inter_block_ms", "values": [9000, 13300]}]}
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGoldenHTTPMatchesCLIByteForByte(t *testing.T) {
	path := scenarioFile(t)
	const seed, repeats = 1311, 2
	for _, parallel := range []int{1, 8} {
		cliDir := filepath.Join(t.TempDir(), "cli")
		httpDir := filepath.Join(t.TempDir(), "http")
		cliRun(t, path, cliDir, seed, repeats, parallel)
		serveRun(t, path, httpDir, seed, repeats, parallel)
		assertIdenticalDirs(t, cliDir, httpDir)

		// Both run directories verify offline against the same root.
		for _, dir := range []string{cliDir, httpDir} {
			if err := store.Verify(store.NewFS(dir)); err != nil {
				t.Errorf("parallel=%d: %s fails verification: %v", parallel, dir, err)
			}
		}
		cliM, err := store.ReadManifest(store.NewFS(cliDir))
		if err != nil {
			t.Fatal(err)
		}
		httpM, err := store.ReadManifest(store.NewFS(httpDir))
		if err != nil {
			t.Fatal(err)
		}
		if cliM.MerkleRoot != httpM.MerkleRoot {
			t.Errorf("parallel=%d: merkle roots differ: CLI %s, HTTP %s",
				parallel, cliM.MerkleRoot, httpM.MerkleRoot)
		}
	}
}
