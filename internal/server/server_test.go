package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/store"
)

// fastSpec returns a registry spec whose run completes instantly with
// one deterministic metric, so handler tests never wait on real
// experiments.
func fastSpec(id string) experiments.Spec {
	return experiments.Spec{
		ID:       id,
		Title:    "test spec " + id,
		Produces: []string{id},
		Run: func(seed uint64, sc experiments.Scale) ([]*experiments.Outcome, error) {
			return []*experiments.Outcome{{
				ID:       id,
				Title:    "test outcome",
				Rendered: fmt.Sprintf("%s seed=%d\n", id, seed),
				Metrics:  map[string]float64{"seed_mod": float64(seed % 97)},
			}}, nil
		},
	}
}

// gateSpec returns a spec that blocks until release is closed,
// signalling each entry on started (buffered by the caller).
func gateSpec(id string, started chan<- struct{}, release <-chan struct{}) experiments.Spec {
	return experiments.Spec{
		ID:       id,
		Title:    "gated spec",
		Produces: []string{id},
		Run: func(seed uint64, sc experiments.Scale) ([]*experiments.Outcome, error) {
			started <- struct{}{}
			<-release
			return []*experiments.Outcome{{ID: id, Rendered: "gated\n",
				Metrics: map[string]float64{"v": 1}}}, nil
		},
	}
}

// testServer builds a Server over the given specs with per-campaign
// in-memory stores, plus an httptest front end. The returned stores
// map fills in as campaigns are submitted.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server, map[string]store.Store) {
	t.Helper()
	stores := map[string]store.Store{}
	var mu sync.Mutex
	if cfg.OpenStore == nil {
		cfg.OpenStore = func(id string) (store.Store, error) {
			st := store.NewMem()
			mu.Lock()
			stores[id] = st
			mu.Unlock()
			return st, nil
		}
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts, stores
}

// doJSON runs one request and decodes the JSON response into out.
func doJSON(t *testing.T, method, url, body string, out any) int {
	t.Helper()
	var rd *strings.Reader = strings.NewReader(body)
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// waitState polls a campaign until it reaches want (or any terminal
// state) and returns the final status.
func waitState(t *testing.T, base, id string, want State) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st Status
		if code := doJSON(t, "GET", base+"/campaigns/"+id, "", &st); code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d", id, code)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("campaign %s ended %s (want %s): %+v", id, st.State, want, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached %s", id, want)
	return Status{}
}

func TestSubmitRunsCampaignAndServesArtifacts(t *testing.T) {
	specs := []experiments.Spec{fastSpec("A"), fastSpec("B")}
	_, ts, stores := testServer(t, Config{Specs: specs})

	var st Status
	code := doJSON(t, "POST", ts.URL+"/campaigns",
		`{"specs": ["A", "B"], "seed": 7, "repeats": 3}`, &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if st.ID != "c000001" || st.Total != 6 {
		t.Fatalf("submit status: %+v", st)
	}
	final := waitState(t, ts.URL, st.ID, StateDone)
	if final.Completed != 6 || final.Failed != 0 {
		t.Fatalf("final status: %+v", final)
	}
	if final.MerkleRoot == "" {
		t.Fatal("done campaign has no merkle root")
	}

	// The artifact store is sealed and self-verifying.
	if err := store.Verify(stores[st.ID]); err != nil {
		t.Fatalf("campaign store fails verification: %v", err)
	}

	// Artifact listing and fetch round-trip the store contents.
	var names []string
	if code := doJSON(t, "GET", ts.URL+"/campaigns/"+st.ID+"/artifacts", "", &names); code != http.StatusOK {
		t.Fatalf("artifact list: HTTP %d", code)
	}
	wantNames := []string{"csv/outcomes.csv", "csv/summary.csv", "manifest.json", "outcomes.json", "rendered.txt"}
	if fmt.Sprint(names) != fmt.Sprint(wantNames) {
		t.Fatalf("artifact names: %v, want %v", names, wantNames)
	}
	for _, name := range names {
		resp, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/artifacts/" + name)
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 1)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || n == 0 {
			t.Fatalf("artifact %s: HTTP %d, %d bytes", name, resp.StatusCode, n)
		}
		fromStore, err := stores[st.ID].Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if body[0] != fromStore[0] {
			t.Fatalf("artifact %s differs from store", name)
		}
	}

	// Campaign listing includes it.
	var all []Status
	if code := doJSON(t, "GET", ts.URL+"/campaigns", "", &all); code != http.StatusOK {
		t.Fatalf("list: HTTP %d", code)
	}
	if len(all) != 1 || all[0].ID != st.ID {
		t.Fatalf("campaign list: %+v", all)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts, _ := testServer(t, Config{Specs: []experiments.Spec{fastSpec("A")}})
	cases := []struct {
		name, body string
	}{
		{"unknown spec", `{"specs": ["nope"]}`},
		{"bad scale", `{"specs": ["A"], "scale": "galactic"}`},
		{"malformed json", `{"specs": [`},
		{"bad scenario", `{"scenario": {"name": "x", "mode": "warp"}}`},
		{"missing scenario file", `{"scenario_path": "/nonexistent/file.json"}`},
	}
	for _, tc := range cases {
		var body map[string]string
		if code := doJSON(t, "POST", ts.URL+"/campaigns", tc.body, &body); code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400 (%v)", tc.name, code, body)
		}
		if body["error"] == "" {
			t.Errorf("%s: no error message", tc.name)
		}
	}
	// Nothing was enqueued.
	var all []Status
	doJSON(t, "GET", ts.URL+"/campaigns", "", &all)
	if len(all) != 0 {
		t.Fatalf("rejected submissions leaked campaigns: %+v", all)
	}
}

func TestUnknownCampaignIs404(t *testing.T) {
	_, ts, _ := testServer(t, Config{Specs: []experiments.Spec{fastSpec("A")}})
	for _, url := range []string{
		"/campaigns/c999999",
		"/campaigns/c999999/events",
		"/campaigns/c999999/artifacts",
		"/campaigns/c999999/artifacts/outcomes.json",
	} {
		if code := doJSON(t, "GET", ts.URL+url, "", nil); code != http.StatusNotFound {
			t.Errorf("GET %s: HTTP %d, want 404", url, code)
		}
	}
}

func TestQueueBackpressure(t *testing.T) {
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	defer close(release)
	specs := []experiments.Spec{gateSpec("G", started, release)}
	_, ts, _ := testServer(t, Config{Specs: specs, Queue: 1, Campaigns: 1})

	// First campaign occupies the executor...
	var first Status
	if code := doJSON(t, "POST", ts.URL+"/campaigns", `{"specs": ["G"]}`, &first); code != http.StatusAccepted {
		t.Fatalf("submit 1: HTTP %d", code)
	}
	<-started
	// ...second fills the queue...
	if code := doJSON(t, "POST", ts.URL+"/campaigns", `{"specs": ["G"]}`, nil); code != http.StatusAccepted {
		t.Fatalf("submit 2: HTTP %d", code)
	}
	// ...third must bounce with 503.
	var errBody map[string]string
	if code := doJSON(t, "POST", ts.URL+"/campaigns", `{"specs": ["G"]}`, &errBody); code != http.StatusServiceUnavailable {
		t.Fatalf("submit 3: HTTP %d, want 503 (%v)", code, errBody)
	}
	if !strings.Contains(errBody["error"], "queue full") {
		t.Fatalf("503 body: %v", errBody)
	}
}

func TestCancelQueuedCampaign(t *testing.T) {
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	defer close(release)
	specs := []experiments.Spec{gateSpec("G", started, release)}
	_, ts, _ := testServer(t, Config{Specs: specs, Queue: 2, Campaigns: 1})

	var running, queued Status
	doJSON(t, "POST", ts.URL+"/campaigns", `{"specs": ["G"]}`, &running)
	<-started
	doJSON(t, "POST", ts.URL+"/campaigns", `{"specs": ["G"]}`, &queued)

	var st Status
	if code := doJSON(t, "DELETE", ts.URL+"/campaigns/"+queued.ID, "", &st); code != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", code)
	}
	if st.State != StateCancelled {
		t.Fatalf("cancelled queued campaign is %s", st.State)
	}
	// The executor must skip it even after the blocker drains: no
	// gated run beyond the first may start.
	select {
	case <-started:
		t.Fatal("cancelled queued campaign was executed")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestCancelRunningCampaignDrainsAndSeals(t *testing.T) {
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	specs := []experiments.Spec{gateSpec("G", started, release)}
	_, ts, stores := testServer(t, Config{Specs: specs, WorkerBudget: 1})

	var st Status
	doJSON(t, "POST", ts.URL+"/campaigns", `{"specs": ["G"], "repeats": 4}`, &st)
	<-started
	if code := doJSON(t, "DELETE", ts.URL+"/campaigns/"+st.ID, "", nil); code != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", code)
	}
	close(release) // let the in-flight run drain
	final := waitState(t, ts.URL, st.ID, StateCancelled)
	if final.Completed == 0 || final.Completed == final.Total {
		t.Fatalf("cancelled campaign completed %d/%d runs", final.Completed, final.Total)
	}
	// Partial results are still sealed and verifiable — same contract
	// as interrupting the CLI.
	if err := store.Verify(stores[st.ID]); err != nil {
		t.Fatalf("cancelled campaign store fails verification: %v", err)
	}
}

func TestWorkerBudgetSharedAcrossCampaigns(t *testing.T) {
	// Two executors over a budget of 2: each campaign gets one worker,
	// so with 2 gated campaigns at most 2 runs are ever in flight.
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	specs := []experiments.Spec{gateSpec("G", started, release)}
	_, ts, _ := testServer(t, Config{Specs: specs, Campaigns: 2, WorkerBudget: 2, Queue: 4})

	var ids []string
	for i := 0; i < 2; i++ {
		var st Status
		doJSON(t, "POST", ts.URL+"/campaigns", `{"specs": ["G"], "repeats": 3, "parallel": 8}`, &st)
		ids = append(ids, st.ID)
	}
	<-started
	<-started
	// Budget 2/2 campaigns = 1 worker each: no third run may start
	// while both gates are held.
	select {
	case <-started:
		t.Fatal("worker budget exceeded: a third run started")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	for _, id := range ids {
		waitState(t, ts.URL, id, StateDone)
	}
}

func TestEventsStreamReplaysFullHistory(t *testing.T) {
	specs := []experiments.Spec{fastSpec("A")}
	_, ts, _ := testServer(t, Config{Specs: specs})
	var st Status
	doJSON(t, "POST", ts.URL+"/campaigns", `{"specs": ["A"], "repeats": 2, "seed": 9}`, &st)
	waitState(t, ts.URL, st.ID, StateDone)

	// Subscribing after completion replays everything, then the
	// stream closes (terminal state).
	resp, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %s", ct)
	}
	var events []Event
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var ev Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad event %q: %v", data, err)
			}
			events = append(events, ev)
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}

	counts := map[string]int{}
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		counts[ev.Type]++
	}
	// queued + running + done states, 2 starts, 2 results.
	if counts["state"] != 3 || counts["start"] != 2 || counts["result"] != 2 {
		t.Fatalf("event counts: %v (%+v)", counts, events)
	}
	last := events[len(events)-1]
	if last.Type != "state" || last.State != StateDone {
		t.Fatalf("last event: %+v", last)
	}
	for _, ev := range events {
		if ev.Type == "result" && ev.Seed != experiments.SeedFor(9, "A", ev.Repeat) {
			t.Fatalf("result event carries wrong seed: %+v", ev)
		}
	}
}

func TestEventsStreamLiveProgress(t *testing.T) {
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	specs := []experiments.Spec{gateSpec("G", started, release)}
	_, ts, _ := testServer(t, Config{Specs: specs, WorkerBudget: 1})
	var st Status
	doJSON(t, "POST", ts.URL+"/campaigns", `{"specs": ["G"], "repeats": 2}`, &st)
	<-started

	// Subscribe mid-run: replay must already include the first start.
	resp, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	close(release)

	sawStart, sawDone := false, false
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		if data, ok := strings.CutPrefix(scanner.Text(), "data: "); ok {
			var ev Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatal(err)
			}
			if ev.Type == "start" {
				sawStart = true
			}
			if ev.Type == "state" && ev.State == StateDone {
				sawDone = true
			}
		}
	}
	if !sawStart || !sawDone {
		t.Fatalf("live stream missed events: start=%v done=%v", sawStart, sawDone)
	}
}

func TestSubmitAfterCloseRejected(t *testing.T) {
	srv, ts, _ := testServer(t, Config{Specs: []experiments.Spec{fastSpec("A")}})
	srv.Close()
	if code := doJSON(t, "POST", ts.URL+"/campaigns", `{"specs": ["A"]}`, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("submit after close: HTTP %d, want 503", code)
	}
}

func TestArtifactPathTraversalRejected(t *testing.T) {
	specs := []experiments.Spec{fastSpec("A")}
	_, ts, _ := testServer(t, Config{Specs: specs})
	var st Status
	doJSON(t, "POST", ts.URL+"/campaigns", `{"specs": ["A"]}`, &st)
	waitState(t, ts.URL, st.ID, StateDone)
	// The store's name validation rejects traversal; the handler must
	// not leak files outside the campaign store.
	req, err := http.NewRequest("GET", ts.URL+"/campaigns/"+st.ID+"/artifacts/ignored", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.URL.Path = "/campaigns/" + st.ID + "/artifacts/../../../../etc/passwd"
	req.URL.RawPath = ""
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("path traversal served: HTTP %d", resp.StatusCode)
	}
}
