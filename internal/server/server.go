// Package server exposes the experiment runner as a resident
// campaign service: submit a campaign over HTTP, watch per-run
// progress as server-sent events, and fetch the digest-sealed
// artifacts when it finishes — the same byte-identical run directory
// `ethrepro -out` writes, because both front ends share one pipeline
// (experiments.Run -> store.Store -> sealed manifest).
//
// A bounded queue decouples submission from execution: up to Queue
// campaigns wait while Campaigns executors drain them, and each
// executor resolves its worker pool against WorkerBudget/Campaigns —
// so N concurrent campaigns share the machine instead of each
// claiming all of GOMAXPROCS.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/store"
)

// Config parameterizes a Server. The zero value is usable: an
// in-memory store per campaign, the built-in registry, one executor,
// a 16-deep queue and a GOMAXPROCS worker budget.
type Config struct {
	// Specs is the experiment registry campaigns select from (nil
	// means experiments.Specs()). Scenario submissions extend it per
	// campaign without mutating it.
	Specs []experiments.Spec
	// Queue bounds how many campaigns may wait (<= 0 means 16).
	// Submissions beyond it are rejected with 503, not buffered —
	// backpressure is the API contract.
	Queue int
	// Campaigns is the number of campaign executors (<= 0 means 1).
	Campaigns int
	// WorkerBudget caps the total experiment workers across all
	// executors (<= 0 means GOMAXPROCS). Each campaign runs with
	// Budget = WorkerBudget / Campaigns (floor 1).
	WorkerBudget int
	// OpenStore opens the artifact store for a campaign ID (nil means
	// a fresh in-memory store per campaign). cmd/ethserve points this
	// at per-campaign subdirectories of its -store root.
	OpenStore func(id string) (store.Store, error)
	// Logf, when non-nil, receives server logs.
	Logf func(format string, args ...any)
	// Telemetry writes a telemetry.json performance record into every
	// campaign's sealed run directory (see experiments.TelemetryFile).
	// Off by default because telemetry carries wall-clock content —
	// the one artifact that is not byte-reproducible across hosts.
	Telemetry bool
	// Profile captures a per-campaign CPU+heap pprof pair as sealed
	// artifacts (profile/cpu.pprof, profile/heap.pprof). The runtime
	// allows one CPU profile per process, so when campaigns overlap
	// only the first is profiled.
	Profile bool
	// PProf mounts net/http/pprof under /debug/pprof/ (off by
	// default: the pprof surface can dump goroutine stacks and drive
	// CPU load, so it is opt-in even on a trusted network).
	PProf bool
}

// SubmitRequest is the POST /campaigns body. Exactly like the CLI:
// leave Specs empty to run the whole registry, or submit a scenario
// (inline document and/or server-local path) to run its variants.
type SubmitRequest struct {
	// Specs selects registry experiment or outcome IDs.
	Specs []string `json:"specs,omitempty"`
	// Scenario is an inline scenario document (the contents of a
	// file from examples/scenarios/), compiled and run like
	// `ethrepro -scenario`.
	Scenario json.RawMessage `json:"scenario,omitempty"`
	// ScenarioPath names a server-local scenario file. With Scenario
	// set it only labels the embedded artifact (scenario.json records
	// the source path), which is what makes a submitted campaign's
	// artifacts byte-identical to a CLI run of the same file.
	ScenarioPath string `json:"scenario_path,omitempty"`
	// Seed is the campaign base seed.
	Seed uint64 `json:"seed"`
	// Scale is small|medium|paper|stress (empty means small).
	Scale string `json:"scale,omitempty"`
	// Repeats is the per-spec repeat count (<= 0 means 1, raised to a
	// scenario's suggested repeats like the CLI default).
	Repeats int `json:"repeats,omitempty"`
	// Parallel caps this campaign's workers (<= 0 means GOMAXPROCS);
	// the server budget still clamps it.
	Parallel int `json:"parallel,omitempty"`
}

// Server is the campaign service. Create with New, mount as an
// http.Handler, Close on shutdown.
type Server struct {
	cfg     Config
	budget  int // per-campaign worker budget
	mux     *http.ServeMux
	queue   chan *campaign
	metrics *serverMetrics

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu        sync.Mutex
	campaigns map[string]*campaign
	order     []string
	nextID    int
	closed    bool
}

// New starts a Server: executors begin draining the queue
// immediately.
func New(cfg Config) *Server {
	if cfg.Specs == nil {
		cfg.Specs = experiments.Specs()
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 16
	}
	if cfg.Campaigns <= 0 {
		cfg.Campaigns = 1
	}
	if cfg.WorkerBudget <= 0 {
		cfg.WorkerBudget = runtime.GOMAXPROCS(0)
	}
	if cfg.OpenStore == nil {
		cfg.OpenStore = func(string) (store.Store, error) { return store.NewMem(), nil }
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		budget:    max(cfg.WorkerBudget/cfg.Campaigns, 1),
		queue:     make(chan *campaign, cfg.Queue),
		baseCtx:   ctx,
		stop:      stop,
		campaigns: map[string]*campaign{},
	}
	s.metrics = newServerMetrics(s)
	if cfg.Telemetry {
		// The process-global collector is additive and stays enabled
		// for the server's lifetime; campaigns drain exactly their own
		// seeds, so concurrent campaigns do not observe each other.
		obs.Default.EnableTelemetry()
	}
	s.routes()
	for i := 0; i < cfg.Campaigns; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops the server: no new submissions, queued campaigns are
// cancelled, running campaigns drain their in-flight runs (their
// artifacts are still sealed), and all executors exit before Close
// returns.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.stop()
	close(s.queue)
	s.wg.Wait()
}

// Submit validates and enqueues a campaign, returning its status. It
// is the API behind POST /campaigns, exported so embedders (and the
// CLI smoke test) can drive the server without HTTP.
func (s *Server) Submit(req SubmitRequest) (Status, error) {
	c, err := s.resolve(req)
	if err != nil {
		return Status{}, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Status{}, errUnavailable("server is shutting down")
	}
	s.nextID++
	c.id = fmt.Sprintf("c%06d", s.nextID)
	st, err := s.cfg.OpenStore(c.id)
	if err != nil {
		s.nextID--
		s.mu.Unlock()
		return Status{}, fmt.Errorf("server: open store for %s: %w", c.id, err)
	}
	c.st = instrumentedStore{inner: st, m: s.metrics}
	s.campaigns[c.id] = c
	s.order = append(s.order, c.id)
	s.mu.Unlock()

	select {
	case s.queue <- c:
	default:
		// Queue full: reject and forget the campaign — backpressure,
		// not buffering.
		s.mu.Lock()
		delete(s.campaigns, c.id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		s.metrics.rejected.Inc()
		return Status{}, errUnavailable(fmt.Sprintf("campaign queue full (%d waiting)", s.cfg.Queue))
	}
	s.metrics.submitted.Inc()
	c.emit(Event{Type: "state", State: StateQueued})
	s.cfg.Logf("server: %s queued: %d spec(s), seed %d, scale %s, %d repeat(s)",
		c.id, len(c.specs), c.seed, c.scale, c.repeats)
	return c.status(), nil
}

// errUnavailable marks errors the HTTP layer maps to 503.
type unavailableError string

func errUnavailable(msg string) error        { return unavailableError(msg) }
func (e unavailableError) Error() string     { return string(e) }
func (e unavailableError) Unavailable() bool { return true }

// badRequestError marks validation errors the HTTP layer maps to 400.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

// resolve turns a SubmitRequest into a ready-to-run campaign,
// mirroring the ethrepro CLI's resolution rules exactly — same
// registry merge, same scenario-variant default selection, same
// suggested-repeats rule — so the two front ends cannot drift.
func (s *Server) resolve(req SubmitRequest) (*campaign, error) {
	all := s.cfg.Specs
	var sets []*scenario.Set
	switch {
	case len(req.Scenario) > 0:
		set, err := scenario.Parse(req.Scenario)
		if err != nil {
			return nil, badRequestError{fmt.Errorf("scenario: %w", err)}
		}
		// The recorded path only labels the artifact; an inline
		// document is never read from disk.
		set.Path = req.ScenarioPath
		sets = append(sets, set)
	case req.ScenarioPath != "":
		set, err := scenario.Load(req.ScenarioPath)
		if err != nil {
			return nil, badRequestError{err}
		}
		sets = append(sets, set)
	}
	for _, set := range sets {
		specs, err := set.Compile()
		if err != nil {
			return nil, badRequestError{fmt.Errorf("scenario: %w", err)}
		}
		if all, err = experiments.Merge(all, specs...); err != nil {
			return nil, badRequestError{err}
		}
	}
	ids := req.Specs
	if len(ids) == 0 && len(sets) > 0 {
		for _, set := range sets {
			for _, v := range set.Variants {
				ids = append(ids, v.ID())
			}
		}
	}
	specs, err := experiments.SelectIn(all, ids)
	if err != nil {
		return nil, badRequestError{err}
	}
	scaleStr := req.Scale
	if scaleStr == "" {
		scaleStr = "small"
	}
	scale, err := experiments.ParseScale(scaleStr)
	if err != nil {
		return nil, badRequestError{err}
	}
	repeats := req.Repeats
	if repeats <= 0 {
		repeats = 1
		for _, set := range sets {
			if set.Base.Repeats > repeats {
				repeats = set.Base.Repeats
			}
		}
	}

	c := newCampaign("")
	c.specs = specs
	c.sets = activeSets(sets, specs)
	c.seed = req.Seed
	c.scale = scale
	c.repeats = repeats
	c.total = len(specs) * repeats
	c.parallel = req.Parallel
	return c, nil
}

// activeSets filters scenario sets down to those with at least one
// variant among the selected specs (same rule as the CLI: an -only
// style selection may exclude a whole scenario, and then its
// suggested repeats and embedded document must not apply).
func activeSets(sets []*scenario.Set, specs []experiments.Spec) []*scenario.Set {
	selected := make(map[string]bool, len(specs))
	for _, sp := range specs {
		selected[sp.ID] = true
	}
	var out []*scenario.Set
	for _, set := range sets {
		for _, v := range set.Variants {
			if selected[v.ID()] {
				out = append(out, set)
				break
			}
		}
	}
	return out
}

// executor drains the campaign queue. Several run concurrently
// (Config.Campaigns); the per-campaign Budget keeps their combined
// worker pools within WorkerBudget.
func (s *Server) executor() {
	defer s.wg.Done()
	for c := range s.queue {
		s.runCampaign(c)
	}
}

// runCampaign executes one campaign end to end: run the specs,
// stream progress into the event log, write and seal the artifacts.
// A cancelled campaign still seals whatever finished — exactly like
// interrupting the CLI.
func (c *campaign) claimRun(ctx context.Context) (context.Context, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StateQueued {
		// Cancelled while waiting in the queue.
		return nil, false
	}
	runCtx, cancel := context.WithCancelCause(ctx)
	c.cancelRun = func() { cancel(errors.New("cancelled by DELETE /campaigns")) }
	return runCtx, true
}

func (s *Server) runCampaign(c *campaign) {
	ctx, ok := c.claimRun(s.baseCtx)
	if !ok {
		// Cancelled while queued; it never ran.
		s.metrics.finishedCancelled.Inc()
		return
	}
	s.metrics.executorsBusy.Inc()
	defer s.metrics.executorsBusy.Dec()
	c.setState(StateRunning)
	s.cfg.Logf("server: %s running (budget %d)", c.id, s.budget)
	start := time.Now()
	var prof *profileCapture
	if s.cfg.Profile {
		prof = startProfile()
	}
	report, runErr := experiments.Run(ctx, c.specs, experiments.RunnerConfig{
		Seed:     c.seed,
		Scale:    c.scale,
		Repeats:  c.repeats,
		Parallel: c.parallel,
		Budget:   s.budget,
		OnStart: func(r experiments.Result) {
			s.metrics.runsStarted.Inc()
			c.emit(Event{Type: "start", Spec: r.Spec.ID, Repeat: r.Repeat, Seed: r.Seed})
		},
		OnResult: func(r experiments.Result) {
			s.metrics.runsCompleted.Inc()
			if r.Err != nil {
				s.metrics.runsFailed.Inc()
			}
			c.mu.Lock()
			c.completed++
			if r.Err != nil {
				c.failed++
			}
			ev := Event{
				Type: "result", Spec: r.Spec.ID, Repeat: r.Repeat, Seed: r.Seed,
				ElapsedMS: r.Elapsed.Milliseconds(),
				Completed: c.completed, Total: c.total,
			}
			if r.Err != nil {
				ev.Error = r.Err.Error()
			}
			c.emitLocked(ev)
			c.mu.Unlock()
		},
	})

	var sealErr error
	if report != nil {
		// Profile artifacts land in the store before sealing, so the
		// manifest's Merkle root covers them.
		if err := prof.stop(c.st); err != nil {
			sealErr = err
		} else if prof != nil && prof.cpu.Len() > 0 {
			s.metrics.profiles.Inc()
		}
		prof = nil
		if err := s.sealCampaign(c, report); err != nil {
			sealErr = errors.Join(sealErr, err)
		}
	} else {
		prof.abort()
	}
	final := StateDone
	switch {
	case ctx.Err() != nil:
		final = StateCancelled
	case runErr != nil || sealErr != nil:
		final = StateFailed
	}
	switch final {
	case StateDone:
		s.metrics.finishedDone.Inc()
	case StateFailed:
		s.metrics.finishedFailed.Inc()
	case StateCancelled:
		s.metrics.finishedCancelled.Inc()
	}
	c.mu.Lock()
	c.cancelRun = nil
	if err := errors.Join(runErr, sealErr); err != nil {
		c.errMsg = err.Error()
	}
	c.mu.Unlock()
	c.setState(final)
	s.cfg.Logf("server: %s %s in %s", c.id, final, time.Since(start).Round(time.Millisecond))
}

// sealCampaign writes the run directory through the shared artifact
// pipeline — experiments artifacts, the embedded scenario for
// scenario campaigns, the opt-in telemetry record, then the digest
// manifest last so the Merkle root covers every blob. Byte-identical
// to `ethrepro -out` (telemetry and profiles aside, which the golden
// gate runs without).
func (s *Server) sealCampaign(c *campaign, report *experiments.Report) error {
	if err := experiments.WriteArtifacts(c.st, report); err != nil {
		return err
	}
	if len(c.sets) > 0 {
		if err := scenario.WriteArtifact(c.st, c.sets); err != nil {
			return err
		}
	} else if err := c.st.Delete(scenario.ArtifactFile); err != nil {
		return err
	}
	if s.cfg.Telemetry {
		tel := experiments.BuildTelemetry(report, obs.Default.Take(experiments.ReportSeeds(report)))
		if err := experiments.WriteTelemetry(c.st, tel); err != nil {
			return err
		}
	} else if err := c.st.Delete(experiments.TelemetryFile); err != nil {
		return err
	}
	if err := experiments.WriteManifest(c.st, report); err != nil {
		return err
	}
	m, err := store.ReadManifest(c.st)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.merkle = m.MerkleRoot
	c.mu.Unlock()
	return nil
}

// get looks up a campaign by ID.
func (s *Server) get(id string) (*campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

// statuses snapshots every campaign in submission order.
func (s *Server) statuses() []Status {
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	cs := make([]*campaign, 0, len(ids))
	for _, id := range ids {
		cs = append(cs, s.campaigns[id])
	}
	s.mu.Unlock()
	out := make([]Status, len(cs))
	for i, c := range cs {
		out[i] = c.status()
	}
	return out
}

// cancel requests cancellation: a queued campaign turns cancelled
// immediately (the executor skips it); a running one has its context
// cancelled and drains. Terminal campaigns are left untouched.
func (c *campaign) cancel() {
	c.mu.Lock()
	switch c.state {
	case StateQueued:
		c.state = StateCancelled
		c.errMsg = "cancelled before start"
		c.emitLocked(Event{Type: "state", State: StateCancelled})
		c.mu.Unlock()
	case StateRunning:
		stop := c.cancelRun
		c.mu.Unlock()
		if stop != nil {
			stop()
		}
	default:
		c.mu.Unlock()
	}
}

// trimPrefixSlash normalizes a {path...} wildcard value.
func trimPrefixSlash(p string) string { return strings.TrimPrefix(p, "/") }
