package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/http/pprof"
	"strings"
)

// maxSubmitBytes bounds a POST /campaigns body (inline scenarios are
// a few KB; a megabyte is generous).
const maxSubmitBytes = 1 << 20

// routes wires the campaign API onto the server's mux.
//
//	POST   /campaigns                      submit  -> Status (202)
//	GET    /campaigns                      list    -> []Status
//	GET    /campaigns/{id}                 status  -> Status
//	DELETE /campaigns/{id}                 cancel  -> Status
//	GET    /campaigns/{id}/events          SSE progress (with replay)
//	GET    /campaigns/{id}/artifacts       sorted artifact names
//	GET    /campaigns/{id}/artifacts/{path...}  one artifact blob
//	GET    /metrics                        Prometheus text scrape
//	GET    /healthz                        liveness probe
//	GET    /version                        build info
//	GET    /debug/pprof/...                runtime profiles (Config.PProf only)
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /campaigns", s.handleList)
	s.mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /campaigns/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /campaigns/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /campaigns/{id}/artifacts", s.handleArtifactList)
	s.mux.HandleFunc("GET /campaigns/{id}/artifacts/{path...}", s.handleArtifact)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /version", s.handleVersion)
	if s.cfg.PProf {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// writeJSON emits one JSON response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// writeError maps an error onto the right status code: validation
// failures are 400, capacity/shutdown are 503, the rest 500.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var br badRequestError
	var ua unavailableError
	switch {
	case errors.As(err, &br):
		code = http.StatusBadRequest
	case errors.As(err, &ua):
		code = http.StatusServiceUnavailable
		// 503s come from backpressure or shutdown; both clear fast, so
		// tell well-behaved clients when to retry.
		w.Header().Set("Retry-After", retryAfterValue())
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSubmitBytes+1))
	if err != nil {
		writeError(w, badRequestError{err})
		return
	}
	if len(body) > maxSubmitBytes {
		writeError(w, badRequestError{fmt.Errorf("request body exceeds %d bytes", maxSubmitBytes)})
		return
	}
	var req SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, badRequestError{fmt.Errorf("parse request: %w", err)})
		return
	}
	st, err := s.Submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/campaigns/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statuses())
}

// lookup resolves {id} or 404s.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*campaign, bool) {
	id := r.PathValue("id")
	c, ok := s.get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no campaign " + id})
	}
	return c, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if c, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, c.status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(w, r)
	if !ok {
		return
	}
	c.cancel()
	writeJSON(w, http.StatusOK, c.status())
}

// handleEvents streams the campaign's event log as server-sent
// events: full replay first (a late subscriber misses nothing), then
// live events until the campaign reaches a terminal state or the
// client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, map[string]string{"error": "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	s.metrics.sseSubscribers.Inc()
	defer s.metrics.sseSubscribers.Dec()

	// cond.Wait cannot watch the request context, so a disconnect is
	// converted into a broadcast that re-checks it.
	done := r.Context().Done()
	go func() {
		<-done
		c.cond.Broadcast()
	}()

	next := 0
	for {
		c.mu.Lock()
		for next >= len(c.events) && !c.state.Terminal() && r.Context().Err() == nil {
			c.cond.Wait()
		}
		batch := make([]Event, len(c.events)-next)
		copy(batch, c.events[next:])
		next += len(batch)
		terminal := c.state.Terminal()
		c.mu.Unlock()

		if r.Context().Err() != nil {
			return
		}
		for _, ev := range batch {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
				return
			}
		}
		flusher.Flush()
		if terminal && len(batch) == 0 {
			return
		}
	}
}

func (s *Server) handleArtifactList(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(w, r)
	if !ok {
		return
	}
	names, err := c.st.List()
	if err != nil {
		writeError(w, err)
		return
	}
	if names == nil {
		names = []string{}
	}
	writeJSON(w, http.StatusOK, names)
}

// artifactContentType maps artifact names to media types; everything
// in a run directory is textual except pprof profiles.
func artifactContentType(name string) string {
	switch {
	case strings.HasSuffix(name, ".json"):
		return "application/json"
	case strings.HasSuffix(name, ".csv"):
		return "text/csv; charset=utf-8"
	case strings.HasSuffix(name, ".pprof"):
		return "application/octet-stream"
	default:
		return "text/plain; charset=utf-8"
	}
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(w, r)
	if !ok {
		return
	}
	name := trimPrefixSlash(r.PathValue("path"))
	data, err := c.st.Get(name)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no artifact " + name})
		return
	case err != nil:
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", artifactContentType(name))
	w.Write(data) //nolint:errcheck // client gone; nothing to do
}
