package server

import (
	"sync"

	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/store"
)

// State is a campaign's lifecycle position. Transitions are linear:
// queued -> running -> one of the three terminal states (a queued
// campaign may jump straight to cancelled).
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one SSE progress notification. Every campaign accumulates
// its full event log in order, so a subscriber that connects late (or
// reconnects) replays history before going live — progress is never
// lost to timing.
type Event struct {
	// Seq is the 0-based position in the campaign's event log.
	Seq int `json:"seq"`
	// Type is "state" (lifecycle transition), "start" (a worker picked
	// up one (spec, repeat) run) or "result" (one run completed).
	Type string `json:"type"`
	// State accompanies "state" events.
	State State `json:"state,omitempty"`
	// Spec/Repeat/Seed identify the run on "start" and "result".
	Spec   string `json:"spec,omitempty"`
	Repeat int    `json:"repeat,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
	// Error carries a run or campaign failure.
	Error string `json:"error,omitempty"`
	// ElapsedMS is the run's wall-clock time on "result".
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
	// Completed/Total track campaign progress on "result".
	Completed int `json:"completed,omitempty"`
	Total     int `json:"total,omitempty"`
}

// Status is the public snapshot of one campaign (GET /campaigns/{id}).
type Status struct {
	ID        string   `json:"id"`
	State     State    `json:"state"`
	Specs     []string `json:"specs"`
	Seed      uint64   `json:"seed"`
	Scale     string   `json:"scale"`
	Repeats   int      `json:"repeats"`
	Total     int      `json:"total_runs"`
	Completed int      `json:"completed_runs"`
	Failed    int      `json:"failed_runs"`
	// Error summarizes a failed campaign (or the cancellation cause).
	Error string `json:"error,omitempty"`
	// MerkleRoot is the sealed artifact digest, set once the run
	// directory is written. `ethanalyze -verify` checks it offline.
	MerkleRoot string `json:"merkle_root,omitempty"`
}

// campaign is one submitted job: its resolved run parameters, its
// artifact store, and the mutable progress the handlers observe. The
// mutex guards every mutable field; cond wakes SSE subscribers when
// the event log grows or the state turns terminal.
type campaign struct {
	id       string
	specs    []experiments.Spec
	sets     []*scenario.Set
	seed     uint64
	scale    experiments.Scale
	repeats  int // resolved (>= 1)
	parallel int
	st       store.Store

	mu        sync.Mutex
	cond      *sync.Cond
	state     State
	events    []Event
	total     int
	completed int
	failed    int
	errMsg    string
	merkle    string
	// cancelRun cancels the in-flight experiments.Run; set only while
	// running.
	cancelRun func()
}

func newCampaign(id string) *campaign {
	c := &campaign{id: id, state: StateQueued}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// emit appends one event (stamping its sequence number) and wakes
// subscribers. Callers must NOT hold c.mu.
func (c *campaign) emit(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.emitLocked(ev)
}

func (c *campaign) emitLocked(ev Event) {
	ev.Seq = len(c.events)
	c.events = append(c.events, ev)
	c.cond.Broadcast()
}

// setState transitions the campaign and records the transition as an
// event, so SSE clients see lifecycle changes in-stream.
func (c *campaign) setState(s State) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state = s
	c.emitLocked(Event{Type: "state", State: s})
}

// status snapshots the campaign for the JSON API.
func (c *campaign) status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, len(c.specs))
	for i, sp := range c.specs {
		ids[i] = sp.ID
	}
	return Status{
		ID:         c.id,
		State:      c.state,
		Specs:      ids,
		Seed:       c.seed,
		Scale:      c.scale.String(),
		Repeats:    c.repeats,
		Total:      c.total,
		Completed:  c.completed,
		Failed:     c.failed,
		Error:      c.errMsg,
		MerkleRoot: c.merkle,
	}
}
