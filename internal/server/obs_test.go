package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/store"
)

// scrapeHead is the deterministic prefix of a fresh server's /metrics
// scrape (defaults: queue 16, one executor). Everything before the
// runtime gauges is pinned byte for byte: registration order is the
// scrape order, and every series exists at zero from startup.
const scrapeHead = `# HELP ethserve_queue_depth Campaigns waiting in the submission queue.
# TYPE ethserve_queue_depth gauge
ethserve_queue_depth 0
# HELP ethserve_queue_capacity Submission queue capacity (503 beyond it).
# TYPE ethserve_queue_capacity gauge
ethserve_queue_capacity 16
# HELP ethserve_executors Configured campaign executors.
# TYPE ethserve_executors gauge
ethserve_executors 1
# HELP ethserve_executors_busy Executors currently running a campaign.
# TYPE ethserve_executors_busy gauge
ethserve_executors_busy 0
# HELP ethserve_campaigns_submitted_total Campaigns accepted into the queue.
# TYPE ethserve_campaigns_submitted_total counter
ethserve_campaigns_submitted_total 0
# HELP ethserve_campaigns_rejected_total Campaigns rejected by queue backpressure.
# TYPE ethserve_campaigns_rejected_total counter
ethserve_campaigns_rejected_total 0
# HELP ethserve_campaigns_finished_total Campaigns reaching a terminal state.
# TYPE ethserve_campaigns_finished_total counter
ethserve_campaigns_finished_total{state="done"} 0
ethserve_campaigns_finished_total{state="failed"} 0
ethserve_campaigns_finished_total{state="cancelled"} 0
# HELP ethserve_runs_started_total Experiment (spec, repeat) runs dispatched to workers.
# TYPE ethserve_runs_started_total counter
ethserve_runs_started_total 0
# HELP ethserve_runs_completed_total Experiment runs completed (failures included).
# TYPE ethserve_runs_completed_total counter
ethserve_runs_completed_total 0
# HELP ethserve_runs_failed_total Experiment runs that returned an error.
# TYPE ethserve_runs_failed_total counter
ethserve_runs_failed_total 0
# HELP ethserve_sse_subscribers Connected /events subscribers.
# TYPE ethserve_sse_subscribers gauge
ethserve_sse_subscribers 0
# HELP ethserve_artifact_bytes_written_total Bytes written into campaign artifact stores.
# TYPE ethserve_artifact_bytes_written_total counter
ethserve_artifact_bytes_written_total 0
# HELP ethserve_profiles_captured_total Per-campaign pprof profile pairs captured.
# TYPE ethserve_profiles_captured_total counter
ethserve_profiles_captured_total 0
# HELP ethserve_store_op_seconds Artifact store operation latency.
# TYPE ethserve_store_op_seconds histogram
`

// scrapeHistogramBlock is one zeroed store-op histogram series.
const scrapeHistogramBlock = `ethserve_store_op_seconds_bucket{op="%[1]s",le="1e-05"} 0
ethserve_store_op_seconds_bucket{op="%[1]s",le="0.0001"} 0
ethserve_store_op_seconds_bucket{op="%[1]s",le="0.001"} 0
ethserve_store_op_seconds_bucket{op="%[1]s",le="0.01"} 0
ethserve_store_op_seconds_bucket{op="%[1]s",le="0.1"} 0
ethserve_store_op_seconds_bucket{op="%[1]s",le="1"} 0
ethserve_store_op_seconds_bucket{op="%[1]s",le="10"} 0
ethserve_store_op_seconds_bucket{op="%[1]s",le="+Inf"} 0
ethserve_store_op_seconds_sum{op="%[1]s"} 0
ethserve_store_op_seconds_count{op="%[1]s"} 0
`

// scrape fetches /metrics and parses every sample line into a
// series -> value map.
func scrape(t *testing.T, base string) (string, map[string]float64) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics content type: %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("sample %q: %v", line, err)
		}
		vals[line[:i]] = v
	}
	return string(body), vals
}

// TestMetricsFreshScrapeGolden pins a fresh server's scrape byte for
// byte up to the runtime gauges (goroutines and heap change between
// scrapes; everything else must be exactly zeroed, in registration
// order, in valid Prometheus 0.0.4 text).
func TestMetricsFreshScrapeGolden(t *testing.T) {
	_, ts, _ := testServer(t, Config{Specs: []experiments.Spec{fastSpec("A")}})
	body, vals := scrape(t, ts.URL)

	var want strings.Builder
	want.WriteString(scrapeHead)
	for _, op := range storeOps {
		fmt.Fprintf(&want, scrapeHistogramBlock, op)
	}
	cut := strings.Index(body, "# HELP ethserve_goroutines")
	if cut < 0 {
		t.Fatalf("scrape missing runtime gauges:\n%s", body)
	}
	if got := body[:cut]; got != want.String() {
		t.Fatalf("fresh scrape diverges from golden fixture.\n--- got ---\n%s\n--- want ---\n%s", got, want.String())
	}
	// The runtime gauges exist and parsed to sane values.
	if vals["ethserve_goroutines"] <= 0 {
		t.Fatalf("goroutine gauge: %v", vals["ethserve_goroutines"])
	}
	if vals["ethserve_heap_alloc_bytes"] <= 0 {
		t.Fatalf("heap gauge: %v", vals["ethserve_heap_alloc_bytes"])
	}
}

// TestMetricsCountCampaignLifecycle runs a campaign and checks the
// lifecycle counters advance exactly — and that no counter ever
// decreases between scrapes (monotonicity).
func TestMetricsCountCampaignLifecycle(t *testing.T) {
	_, ts, _ := testServer(t, Config{Specs: []experiments.Spec{fastSpec("A")}})
	_, before := scrape(t, ts.URL)

	var st Status
	if code := doJSON(t, "POST", ts.URL+"/campaigns", `{"specs": ["A"], "seed": 3, "repeats": 3}`, &st); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitState(t, ts.URL, st.ID, StateDone)
	_, after := scrape(t, ts.URL)

	for series, v := range after {
		if strings.Contains(series, "_total") || strings.Contains(series, "_count") || strings.Contains(series, "_bucket") {
			if prev, ok := before[series]; ok && v < prev {
				t.Errorf("counter %s decreased: %v -> %v", series, prev, v)
			}
		}
	}
	wantExact := map[string]float64{
		"ethserve_campaigns_submitted_total":                1,
		"ethserve_campaigns_rejected_total":                 0,
		`ethserve_campaigns_finished_total{state="done"}`:   1,
		`ethserve_campaigns_finished_total{state="failed"}`: 0,
		"ethserve_runs_started_total":                       3,
		"ethserve_runs_completed_total":                     3,
		"ethserve_runs_failed_total":                        0,
		"ethserve_executors_busy":                           0,
		"ethserve_sse_subscribers":                          0,
	}
	for series, want := range wantExact {
		if got := after[series]; got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
	if after["ethserve_artifact_bytes_written_total"] <= 0 {
		t.Error("no artifact bytes counted")
	}
	if after[`ethserve_store_op_seconds_count{op="put"}`] <= 0 {
		t.Error("no store put latency observed")
	}
	if after[`ethserve_store_op_seconds_count{op="manifest"}`] <= 0 {
		t.Error("no store manifest latency observed")
	}
}

// TestSSEReplayUnderConcurrentSubscribeAndCancel stress-tests the
// event log under the race detector: subscribers join at every phase
// of a campaign that gets cancelled mid-flight, and each one must see
// a gapless event sequence (full replay + live tail) ending in a
// terminal state.
func TestSSEReplayUnderConcurrentSubscribeAndCancel(t *testing.T) {
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	specs := []experiments.Spec{gateSpec("G", started, release)}
	srv, ts, _ := testServer(t, Config{Specs: specs, WorkerBudget: 1})

	var st Status
	doJSON(t, "POST", ts.URL+"/campaigns", `{"specs": ["G"], "repeats": 3}`, &st)
	<-started

	const subs = 8
	errs := make(chan error, subs+1)
	readStream := func(i int) error {
		resp, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/events")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		last := -1
		scanner := bufio.NewScanner(resp.Body)
		for scanner.Scan() {
			data, ok := strings.CutPrefix(scanner.Text(), "data: ")
			if !ok {
				continue
			}
			var ev Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				return fmt.Errorf("subscriber %d: bad event %q: %v", i, data, err)
			}
			if ev.Seq != last+1 {
				return fmt.Errorf("subscriber %d: seq gap %d -> %d", i, last, ev.Seq)
			}
			last = ev.Seq
		}
		if err := scanner.Err(); err != nil {
			return fmt.Errorf("subscriber %d: %v", i, err)
		}
		if last < 0 {
			return fmt.Errorf("subscriber %d saw no events", i)
		}
		return nil
	}

	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * 2 * time.Millisecond) // join at different phases
			if err := readStream(i); err != nil {
				errs <- err
			}
		}(i)
	}

	release <- struct{}{} // run 1 completes
	<-started             // run 2 starts
	release <- struct{}{} // run 2 completes
	<-started             // run 3 starts
	if code := doJSON(t, "DELETE", ts.URL+"/campaigns/"+st.ID, "", nil); code != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", code)
	}
	close(release) // run 3 drains under the cancelled context
	wg.Wait()

	// A post-terminal subscriber gets the full replay and a clean close.
	if err := readStream(subs); err != nil {
		errs <- err
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every stream has closed; the subscriber gauge must be back to 0.
	deadline := time.Now().Add(5 * time.Second)
	for srv.metrics.sseSubscribers.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sse subscriber gauge stuck at %d", srv.metrics.sseSubscribers.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHealthzAndVersion(t *testing.T) {
	srv, ts, _ := testServer(t, Config{Specs: []experiments.Spec{fastSpec("A")}})

	var health map[string]any
	if code := doJSON(t, "GET", ts.URL+"/healthz", "", &health); code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	if health["status"] != "ok" || health["queue_capacity"] != float64(16) {
		t.Fatalf("healthz body: %v", health)
	}

	var version map[string]string
	if code := doJSON(t, "GET", ts.URL+"/version", "", &version); code != http.StatusOK {
		t.Fatalf("version: HTTP %d", code)
	}
	if !strings.HasPrefix(version["go"], "go") {
		t.Fatalf("version body: %v", version)
	}

	// After shutdown the probe flips to 503 and tells clients when to
	// retry.
	srv.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after close: HTTP %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("healthz 503 Retry-After: %q", ra)
	}
}

// TestBackpressureSends503WithRetryAfter: every 503 — shutdown or
// queue-full — carries the Retry-After hint.
func TestBackpressureSends503WithRetryAfter(t *testing.T) {
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	defer close(release)
	specs := []experiments.Spec{gateSpec("G", started, release)}
	_, ts, _ := testServer(t, Config{Specs: specs, Queue: 1, Campaigns: 1})

	doJSON(t, "POST", ts.URL+"/campaigns", `{"specs": ["G"]}`, nil)
	<-started
	doJSON(t, "POST", ts.URL+"/campaigns", `{"specs": ["G"]}`, nil)
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(`{"specs": ["G"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: HTTP %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("503 Retry-After: %q", ra)
	}
}

// TestPProfGatedByConfig: the pprof surface must 404 unless opted in.
func TestPProfGatedByConfig(t *testing.T) {
	_, off, _ := testServer(t, Config{Specs: []experiments.Spec{fastSpec("A")}})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof off: HTTP %d, want 404", resp.StatusCode)
	}

	_, on, _ := testServer(t, Config{Specs: []experiments.Spec{fastSpec("A")}, PProf: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof on: HTTP %d, body %.80s", resp.StatusCode, body)
	}
}

// TestProfileArtifactsSealed: with Config.Profile a campaign's run
// directory carries a CPU+heap pprof pair, digest-sealed like every
// other artifact and served as binary.
func TestProfileArtifactsSealed(t *testing.T) {
	srv, ts, stores := testServer(t, Config{Specs: []experiments.Spec{fastSpec("A")}, Profile: true})
	var st Status
	doJSON(t, "POST", ts.URL+"/campaigns", `{"specs": ["A"], "repeats": 2}`, &st)
	waitState(t, ts.URL, st.ID, StateDone)

	cst := stores[st.ID]
	for _, name := range []string{ProfileCPUFile, ProfileHeapFile} {
		data, err := cst.Get(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
	// Sealed: the manifest covers the profiles and verification passes.
	if err := store.Verify(cst); err != nil {
		t.Fatalf("profiled campaign store fails verification: %v", err)
	}
	m, err := store.ReadManifest(cst)
	if err != nil {
		t.Fatal(err)
	}
	sealed := map[string]bool{}
	for _, f := range m.Files {
		sealed[f.Path] = true
	}
	if !sealed[ProfileCPUFile] || !sealed[ProfileHeapFile] {
		t.Fatalf("manifest missing profile artifacts: %v", m.Files)
	}
	if got := srv.metrics.profiles.Value(); got != 1 {
		t.Fatalf("profiles counter = %d, want 1", got)
	}

	// Profiles are served as binary, not text.
	resp, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/artifacts/" + ProfileCPUFile)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("profile content type: %q", ct)
	}
}

// TestServerTelemetrySealed: with Config.Telemetry each campaign run
// directory carries telemetry.json inside the sealed manifest.
func TestServerTelemetrySealed(t *testing.T) {
	defer obs.Default.Disable()
	_, ts, stores := testServer(t, Config{Specs: []experiments.Spec{fastSpec("A")}, Telemetry: true})
	var st Status
	doJSON(t, "POST", ts.URL+"/campaigns", `{"specs": ["A"], "seed": 5, "repeats": 2}`, &st)
	waitState(t, ts.URL, st.ID, StateDone)

	cst := stores[st.ID]
	tel, err := experiments.ReadTelemetry(cst)
	if err != nil {
		t.Fatal(err)
	}
	if len(tel.Runs) != 2 || tel.Runs[0].Spec != "A" {
		t.Fatalf("telemetry rows: %+v", tel.Runs)
	}
	if err := store.Verify(cst); err != nil {
		t.Fatalf("telemetry campaign store fails verification: %v", err)
	}
	m, err := store.ReadManifest(cst)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range m.Files {
		if f.Path == experiments.TelemetryFile {
			found = true
		}
	}
	if !found {
		t.Fatalf("manifest missing %s: %v", experiments.TelemetryFile, m.Files)
	}
}
