package experiments

import (
	"bytes"
	"context"
	"encoding/csv"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/store"
)

func fakeReport(t *testing.T) *Report {
	t.Helper()
	specs := []Spec{fakeSpec("X1"), fakeSpec("X2")}
	rep, err := Run(context.Background(), specs, RunnerConfig{Seed: 11, Scale: ScaleSmall, Repeats: 3, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// artifactStores writes a full, sealed artifact set (artifacts +
// manifest) into a fresh store of each backend kind.
func artifactStores(t *testing.T, rep *Report) map[string]store.Store {
	t.Helper()
	stores := map[string]store.Store{
		"fs":  store.NewFS(filepath.Join(t.TempDir(), "run")),
		"mem": store.NewMem(),
	}
	for name, st := range stores {
		if err := WriteArtifacts(st, rep); err != nil {
			t.Fatalf("%s: write artifacts: %v", name, err)
		}
		if err := WriteManifest(st, rep); err != nil {
			t.Fatalf("%s: write manifest: %v", name, err)
		}
	}
	return stores
}

func TestWriteAndReadArtifacts(t *testing.T) {
	rep := fakeReport(t)
	for name, st := range artifactStores(t, rep) {
		t.Run(name, func(t *testing.T) {
			back, err := ReadArtifacts(st)
			if err != nil {
				t.Fatal(err)
			}
			if back.Seed != rep.Seed || back.Scale != rep.Scale || back.Repeats != rep.Repeats {
				t.Fatalf("header mismatch: %+v", back)
			}
			if !reflect.DeepEqual(back.Summaries, rep.Summaries) {
				t.Fatalf("summaries round-trip:\n%+v\n%+v", back.Summaries, rep.Summaries)
			}
			if len(back.Results) != len(rep.Results) {
				t.Fatalf("results: %d vs %d", len(back.Results), len(rep.Results))
			}
			for i, res := range back.Results {
				orig := rep.Results[i]
				if res.Spec.ID != orig.Spec.ID || res.Repeat != orig.Repeat || res.Seed != orig.Seed {
					t.Fatalf("result %d mismatch: %+v vs %+v", i, res, orig)
				}
				if !reflect.DeepEqual(res.Outcomes, orig.Outcomes) {
					t.Fatalf("outcomes %d diverged", i)
				}
			}

			// rendered.txt carries the first repeat's tables plus the summary.
			rendered, err := st.Get(RenderedFile)
			if err != nil {
				t.Fatal(err)
			}
			for _, want := range []string{"== X1:", "== X2:", "Campaign summary"} {
				if !strings.Contains(string(rendered), want) {
					t.Fatalf("rendered.txt missing %q:\n%s", want, rendered)
				}
			}
		})
	}
}

func TestManifestRoundTripAndVerify(t *testing.T) {
	rep := fakeReport(t)
	for name, st := range artifactStores(t, rep) {
		t.Run(name, func(t *testing.T) {
			m, err := ReadManifest(st)
			if err != nil {
				t.Fatal(err)
			}
			if m.Legacy() {
				t.Fatalf("fresh manifest reads as legacy: %+v", m)
			}
			if m.Seed != rep.Seed || m.Scale != rep.Scale.String() || m.Repeats != rep.Repeats {
				t.Fatalf("campaign metadata mismatch: %+v", m)
			}
			if !reflect.DeepEqual(m.Specs, []string{"X1", "X2"}) {
				t.Fatalf("specs: %v", m.Specs)
			}
			if m.MerkleRoot == "" || len(m.Files) != 4 {
				t.Fatalf("digest record incomplete: root=%q files=%+v", m.MerkleRoot, m.Files)
			}
			if err := store.Verify(st); err != nil {
				t.Fatalf("sealed artifacts fail verification: %v", err)
			}
			// Tamper: a single CSV byte flips.
			data, err := st.Get(CSVDir + "/" + OutcomesCSV)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-2] ^= 1
			if err := st.Put(CSVDir+"/"+OutcomesCSV, data); err != nil {
				t.Fatal(err)
			}
			if err := store.Verify(st); err == nil {
				t.Fatal("verification missed a tampered artifact")
			}
		})
	}
}

// TestReadManifestAcceptsLegacy pins backward compatibility: version-1
// directories (campaign metadata only) still read, flagged as legacy.
func TestReadManifestAcceptsLegacy(t *testing.T) {
	st := store.NewMem()
	legacy := `{
  "repeats": 2,
  "scale": "small",
  "seed": 42,
  "specs": ["T1", "network"]
}
`
	if err := st.Put(ManifestFile, []byte(legacy)); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(st)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Legacy() {
		t.Fatalf("v1 manifest not flagged legacy: %+v", m)
	}
	if m.Seed != 42 || m.Scale != "small" || m.Repeats != 2 || len(m.Specs) != 2 {
		t.Fatalf("v1 fields lost: %+v", m)
	}
	if m.MerkleRoot != "" || len(m.Files) != 0 {
		t.Fatalf("v1 manifest invented digests: %+v", m)
	}
}

func readCSVBlob(t *testing.T, st store.Store, name string) [][]string {
	t.Helper()
	data, err := st.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(bytes.NewReader(data)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestArtifactCSVLayout(t *testing.T) {
	rep := fakeReport(t)
	st := store.NewMem()
	if err := WriteArtifacts(st, rep); err != nil {
		t.Fatal(err)
	}

	outcomes := readCSVBlob(t, st, CSVDir+"/"+OutcomesCSV)
	wantHeader := []string{"spec", "repeat", "seed", "outcome", "metric", "value"}
	if !reflect.DeepEqual(outcomes[0], wantHeader) {
		t.Fatalf("outcomes header: %v", outcomes[0])
	}
	// 2 specs x 3 repeats x 1 metric.
	if len(outcomes) != 1+6 {
		t.Fatalf("outcome rows: %d", len(outcomes)-1)
	}

	summary := readCSVBlob(t, st, CSVDir+"/"+SummaryCSV)
	if !reflect.DeepEqual(summary[0], []string{"outcome", "metric", "n", "mean", "std", "min", "max"}) {
		t.Fatalf("summary header: %v", summary[0])
	}
	if len(summary) != 1+2 {
		t.Fatalf("summary rows: %d", len(summary)-1)
	}
}

// TestWriteArtifactsDeterministic also pins cross-backend identity:
// the same report must produce the same bytes into a filesystem store
// and an in-memory store — the server's determinism contract.
func TestWriteArtifactsDeterministic(t *testing.T) {
	rep := fakeReport(t)
	stores := []store.Store{
		store.NewFS(filepath.Join(t.TempDir(), "a")),
		store.NewFS(filepath.Join(t.TempDir(), "b")),
		store.NewMem(),
	}
	for _, st := range stores {
		if err := WriteArtifacts(st, rep); err != nil {
			t.Fatal(err)
		}
		if err := WriteManifest(st, rep); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{ManifestFile, OutcomesJSON, RenderedFile,
		CSVDir + "/" + OutcomesCSV, CSVDir + "/" + SummaryCSV} {
		first, err := stores[0].Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range stores[1:] {
			other, err := st.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first, other) {
				t.Fatalf("%s not deterministic across stores", name)
			}
		}
	}
}

func TestReadArtifactsRejectsMissingStore(t *testing.T) {
	if _, err := ReadArtifacts(store.NewFS(filepath.Join(t.TempDir(), "nope"))); err == nil {
		t.Fatal("missing dir must fail")
	}
	if _, err := ReadArtifacts(store.NewMem()); err == nil {
		t.Fatal("empty store must fail")
	}
}
