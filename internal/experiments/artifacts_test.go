package experiments

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func fakeReport(t *testing.T) *Report {
	t.Helper()
	specs := []Spec{fakeSpec("X1"), fakeSpec("X2")}
	rep, err := Run(specs, RunnerConfig{Seed: 11, Scale: ScaleSmall, Repeats: 3, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestWriteAndReadArtifacts(t *testing.T) {
	rep := fakeReport(t)
	dir := filepath.Join(t.TempDir(), "run")
	if err := WriteArtifacts(dir, rep); err != nil {
		t.Fatal(err)
	}

	back, err := ReadArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != rep.Seed || back.Scale != rep.Scale || back.Repeats != rep.Repeats {
		t.Fatalf("header mismatch: %+v", back)
	}
	if !reflect.DeepEqual(back.Summaries, rep.Summaries) {
		t.Fatalf("summaries round-trip:\n%+v\n%+v", back.Summaries, rep.Summaries)
	}
	if len(back.Results) != len(rep.Results) {
		t.Fatalf("results: %d vs %d", len(back.Results), len(rep.Results))
	}
	for i, res := range back.Results {
		orig := rep.Results[i]
		if res.Spec.ID != orig.Spec.ID || res.Repeat != orig.Repeat || res.Seed != orig.Seed {
			t.Fatalf("result %d mismatch: %+v vs %+v", i, res, orig)
		}
		if !reflect.DeepEqual(res.Outcomes, orig.Outcomes) {
			t.Fatalf("outcomes %d diverged", i)
		}
	}

	// rendered.txt carries the first repeat's tables plus the summary.
	rendered, err := os.ReadFile(filepath.Join(dir, RenderedFile))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"== X1:", "== X2:", "Campaign summary"} {
		if !strings.Contains(string(rendered), want) {
			t.Fatalf("rendered.txt missing %q:\n%s", want, rendered)
		}
	}
}

func readCSV(t *testing.T, path string) [][]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestArtifactCSVLayout(t *testing.T) {
	rep := fakeReport(t)
	dir := filepath.Join(t.TempDir(), "run")
	if err := WriteArtifacts(dir, rep); err != nil {
		t.Fatal(err)
	}

	outcomes := readCSV(t, filepath.Join(dir, CSVDir, OutcomesCSV))
	wantHeader := []string{"spec", "repeat", "seed", "outcome", "metric", "value"}
	if !reflect.DeepEqual(outcomes[0], wantHeader) {
		t.Fatalf("outcomes header: %v", outcomes[0])
	}
	// 2 specs x 3 repeats x 1 metric.
	if len(outcomes) != 1+6 {
		t.Fatalf("outcome rows: %d", len(outcomes)-1)
	}

	summary := readCSV(t, filepath.Join(dir, CSVDir, SummaryCSV))
	if !reflect.DeepEqual(summary[0], []string{"outcome", "metric", "n", "mean", "std", "min", "max"}) {
		t.Fatalf("summary header: %v", summary[0])
	}
	if len(summary) != 1+2 {
		t.Fatalf("summary rows: %d", len(summary)-1)
	}
}

func TestWriteArtifactsDeterministic(t *testing.T) {
	rep := fakeReport(t)
	dirs := []string{filepath.Join(t.TempDir(), "a"), filepath.Join(t.TempDir(), "b")}
	for _, d := range dirs {
		if err := WriteArtifacts(d, rep); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{ManifestFile, OutcomesJSON, RenderedFile,
		filepath.Join(CSVDir, OutcomesCSV), filepath.Join(CSVDir, SummaryCSV)} {
		a, err := os.ReadFile(filepath.Join(dirs[0], name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirs[1], name))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s not deterministic", name)
		}
	}
}

func TestReadArtifactsRejectsMissingDir(t *testing.T) {
	if _, err := ReadArtifacts(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing dir must fail")
	}
}
