package experiments

import (
	"strings"
	"sync"
	"testing"
)

// These tests assert the paper's qualitative findings — the shapes the
// reproduction must preserve — at small scale. Absolute values are
// checked against generous bands; EXPERIMENTS.md records the
// medium-scale numbers.
//
// Experiments are selected from the registry (the same path
// cmd/ethrepro takes) and campaigns shared by several figures run
// once, memoized across the tests that assert on them.

// specOutcomes runs the registered spec at seed 42 / ScaleSmall,
// memoizing per spec ID so figure tests sharing a campaign don't rerun
// it.
var specOutcomes = func() func(t *testing.T, specID string) map[string]*Outcome {
	var mu sync.Mutex
	type cached struct {
		m   map[string]*Outcome
		err error
	}
	cache := map[string]*cached{}
	return func(t *testing.T, specID string) map[string]*Outcome {
		t.Helper()
		mu.Lock()
		defer mu.Unlock()
		c, ok := cache[specID]
		if !ok {
			c = &cached{}
			cache[specID] = c
			spec, found := Lookup(specID)
			if !found {
				t.Fatalf("spec %s not registered", specID)
			}
			var outs []*Outcome
			outs, c.err = spec.Run(42, ScaleSmall)
			if c.err == nil {
				c.m = map[string]*Outcome{}
				for _, o := range outs {
					c.m[o.ID] = o
				}
			}
		}
		if c.err != nil {
			t.Fatal(c.err)
		}
		return c.m
	}
}()

func networkOutcomes(t *testing.T) map[string]*Outcome {
	t.Helper()
	return specOutcomes(t, "network")
}

func chainOutcomes(t *testing.T) map[string]*Outcome {
	t.Helper()
	return specOutcomes(t, "chain")
}

// skipInShort gates the transaction-workload campaigns (tens of
// seconds each) out of `go test -short` — the CI tier — while keeping
// them in the full suite.
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("workload campaign is too slow for -short; run the full suite")
	}
}

func TestFigure1Shape(t *testing.T) {
	f1 := networkOutcomes(t)["F1"]
	median := f1.Metrics["median_ms"]
	p99 := f1.Metrics["p99_ms"]
	// Propagation is orders of magnitude below the 13.3 s inter-block
	// time (the paper's §III-A headline).
	if median <= 0 || median > 500 {
		t.Fatalf("median %v ms out of band", median)
	}
	if p99 <= median || p99 > 2000 {
		t.Fatalf("p99 %v ms out of band (median %v)", p99, median)
	}
	if !strings.Contains(f1.Rendered, "Figure 1") {
		t.Fatal("missing render")
	}
}

func TestFigure2Shape(t *testing.T) {
	f2 := networkOutcomes(t)["F2"]
	ea, na := f2.Metrics["EA_share"], f2.Metrics["NA_share"]
	we, ce := f2.Metrics["WE_share"], f2.Metrics["CE_share"]
	// The paper's geographic finding: EA leads (~40%), NA trails
	// (~4x less likely than EA).
	if ea < 0.30 {
		t.Fatalf("EA share %v too low", ea)
	}
	if na > ea/2 {
		t.Fatalf("NA share %v should trail EA %v by far", na, ea)
	}
	if ea < we || ea < ce {
		t.Fatalf("EA %v must lead WE %v and CE %v", ea, we, ce)
	}
	total := ea + na + we + ce
	if total < 0.999 || total > 1.001 {
		t.Fatalf("shares sum to %v", total)
	}
}

func TestFigure3Shape(t *testing.T) {
	f3 := networkOutcomes(t)["F3"]
	// Asian pools' blocks are first observed in EA most of the time
	// (gateway concentration, the paper's Fig. 3 point).
	if f3.Metrics["sparkpool_EA_first"] < 0.5 {
		t.Fatalf("Sparkpool EA-first %v too low", f3.Metrics["sparkpool_EA_first"])
	}
	if f3.Metrics["pools"] < 10 {
		t.Fatalf("too few pools attributed: %v", f3.Metrics["pools"])
	}
}

func TestTable2Shape(t *testing.T) {
	o := specOutcomes(t, "T2")["T2"]
	ann := o.Metrics["announce_mean"]
	whole := o.Metrics["whole_mean"]
	combined := o.Metrics["combined_mean"]
	// The paper's Table II: direct block deliveries dominate
	// announcements, and total redundancy sits near ln(n).
	if whole <= ann {
		t.Fatalf("whole blocks (%v) must outnumber announcements (%v)", whole, ann)
	}
	if combined < ann+whole-0.01 || combined > ann+whole+0.01 {
		t.Fatalf("combined %v != ann %v + whole %v", combined, ann, whole)
	}
	if combined < 2 || combined > 25 {
		t.Fatalf("combined receptions %v out of band", combined)
	}
}

func TestFigure4And5Shape(t *testing.T) {
	skipInShort(t)
	m := specOutcomes(t, "commit")
	f4, f5 := m["F4"], m["F5"]
	if f4 == nil || f5 == nil {
		t.Fatal("missing outcomes")
	}
	inclusion := f4.Metrics["inclusion_median_s"]
	conf12 := f4.Metrics["conf12_median_s"]
	// Inclusion well under a minute median; the 12-confirmation rule
	// costs ~12 * 13.3 s more (paper: 189 s).
	if inclusion <= 0 || inclusion > 120 {
		t.Fatalf("inclusion median %v s out of band", inclusion)
	}
	if conf12 < 120 || conf12 > 320 {
		t.Fatalf("12-conf median %v s out of band (paper 189)", conf12)
	}
	if conf12 <= inclusion {
		t.Fatal("confirmation must cost more than inclusion")
	}
	ooo := f5.Metrics["ooo_fraction"]
	// Paper: 11.54% out-of-order.
	if ooo < 0.04 || ooo > 0.25 {
		t.Fatalf("out-of-order fraction %v out of band", ooo)
	}
	// Out-of-order transactions commit slower at the tail.
	if p90o, ok := f5.Metrics["ooo_p90_s"]; ok {
		if p90i, ok := f5.Metrics["inorder_p90_s"]; ok && p90o <= p90i {
			t.Fatalf("ooo p90 %v should exceed in-order p90 %v", p90o, p90i)
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	f6 := chainOutcomes(t)["F6"]
	frac := f6.Metrics["empty_fraction"]
	// Paper: 1.45% empty overall; Zhizhu >25%; Nanopool zero.
	if frac < 0.005 || frac > 0.03 {
		t.Fatalf("empty fraction %v out of band", frac)
	}
	if f6.Metrics["zhizhu_rate"] < 0.15 {
		t.Fatalf("Zhizhu rate %v too low", f6.Metrics["zhizhu_rate"])
	}
	if f6.Metrics["nanopool_empty"] != 0 {
		t.Fatalf("Nanopool mined %v empty blocks", f6.Metrics["nanopool_empty"])
	}
}

func TestTable3Shape(t *testing.T) {
	t3 := chainOutcomes(t)["T3"]
	len1 := t3.Metrics["len1_total"]
	len2 := t3.Metrics["len2_total"]
	len3 := t3.Metrics["len3_total"]
	// The paper's fork-length hierarchy: len1 dominates (~97%), len2
	// is ~2.6%, len3 is rare.
	if len1 < 100 {
		t.Fatalf("too few forks: %v", len1)
	}
	if len2 >= len1/10 {
		t.Fatalf("len2 %v should be well under len1 %v", len2, len1)
	}
	if len3 > len2 {
		t.Fatalf("len3 %v should not exceed len2 %v", len3, len2)
	}
	// Length-1 forks are very likely recognized as uncles (paper:
	// 15,100 / 15,171).
	if t3.Metrics["len1_recognized"] < 0.85*len1 {
		t.Fatalf("len1 recognized %v / %v too low", t3.Metrics["len1_recognized"], len1)
	}
	// Off-main block share near the paper's ~7%.
	main := t3.Metrics["main_blocks"]
	offMain := t3.Metrics["uncle_blocks"] + t3.Metrics["unrecognized"]
	rate := offMain / (main + offMain)
	if rate < 0.03 || rate > 0.13 {
		t.Fatalf("fork block rate %v out of band", rate)
	}
}

func TestOneMinerForkShape(t *testing.T) {
	s1 := chainOutcomes(t)["S1"]
	pairs := s1.Metrics["pairs"]
	triples := s1.Metrics["triples"]
	if pairs < 20 {
		t.Fatalf("too few one-miner pairs: %v", pairs)
	}
	if triples > pairs/5 {
		t.Fatalf("triples %v should be rare vs pairs %v", triples, pairs)
	}
	// Paper: 98% of 2-/3-tuples got rewarded, 56% share tx sets, >11%
	// of forks are one-miner.
	if s1.Metrics["recognized_fraction"] < 0.7 {
		t.Fatalf("recognized fraction %v too low", s1.Metrics["recognized_fraction"])
	}
	if st := s1.Metrics["same_tx_fraction"]; st < 0.4 || st > 0.75 {
		t.Fatalf("same-tx fraction %v out of band (paper 0.56)", st)
	}
	if s1.Metrics["fraction_of_forks"] < 0.05 {
		t.Fatalf("one-miner share of forks %v too low", s1.Metrics["fraction_of_forks"])
	}
}

func TestFigure7Shape(t *testing.T) {
	f7 := chainOutcomes(t)["F7"]
	// At 20k blocks Ethermine (25.3%) is expected to reach runs of
	// ~6-7 (n * 0.2532^k ~ 1 at k=7).
	if f7.Metrics["ethermine_max_run"] < 4 {
		t.Fatalf("Ethermine max run %v too short", f7.Metrics["ethermine_max_run"])
	}
	if f7.Metrics["max_run"] < f7.Metrics["ethermine_max_run"] {
		t.Fatal("global max below Ethermine's")
	}
	if !strings.Contains(f7.Rendered, "censor") && !strings.Contains(f7.Rendered, "Security") {
		t.Fatal("censorship table missing from render")
	}
}

func TestWholeChainShape(t *testing.T) {
	o := specOutcomes(t, "S2")["S2"]
	if o.Metrics["blocks"] < 90_000 {
		t.Fatalf("whole-chain run too short: %v", o.Metrics["blocks"])
	}
	// 100k blocks: expect ~36 runs of >=8 for Ethermine
	// (100k * 0.2532^8), so len_8 must exist.
	if o.Metrics["len_8"] == 0 && o.Metrics["len_9"] == 0 {
		t.Fatalf("no long sequences found: %+v", o.Metrics)
	}
}

func TestLesson1Shape(t *testing.T) {
	o := specOutcomes(t, "L1")["L1"]
	std := o.Metrics["standard_recognized"]
	res := o.Metrics["restricted_recognized"]
	if std <= 0 {
		t.Skip("no one-miner forks recognized in the standard run")
	}
	// The §V restriction eliminates one-miner uncle rewards.
	if res >= std {
		t.Fatalf("restricted recognition %v should drop below standard %v", res, std)
	}
}

func TestAblationFanoutShape(t *testing.T) {
	o := specOutcomes(t, "A1")["A1"]
	// Push-all floods more copies than sqrt-push; announce-only the
	// fewest direct bodies (it trades redundancy for pull latency).
	if o.Metrics["push-all_receptions"] <= o.Metrics["sqrt-push_receptions"] {
		t.Fatalf("push-all %v should exceed sqrt %v",
			o.Metrics["push-all_receptions"], o.Metrics["sqrt-push_receptions"])
	}
	if o.Metrics["announce-only_median_ms"] <= o.Metrics["push-all_median_ms"] {
		t.Fatalf("announce-only median %v should exceed push-all %v",
			o.Metrics["announce-only_median_ms"], o.Metrics["push-all_median_ms"])
	}
}

func TestAblationGatewaysShape(t *testing.T) {
	o := specOutcomes(t, "A2")["A2"]
	// Dispersing every pool's gateways erases most of EA's advantage.
	if o.Metrics["dispersed_EA"] >= o.Metrics["paper_EA"] {
		t.Fatalf("dispersed EA %v should fall below paper EA %v",
			o.Metrics["dispersed_EA"], o.Metrics["paper_EA"])
	}
}

func TestScaleString(t *testing.T) {
	if ScaleSmall.String() != "small" || ScaleMedium.String() != "medium" ||
		ScalePaper.String() != "paper" || Scale(0).String() != "unknown" {
		t.Fatal("scale names")
	}
}

func TestParseScale(t *testing.T) {
	for name, want := range map[string]Scale{
		"small": ScaleSmall, "medium": ScaleMedium, "paper": ScalePaper,
	} {
		got, err := ParseScale(name)
		if err != nil || got != want {
			t.Errorf("%q: %v, %v", name, got, err)
		}
	}
	if _, err := ParseScale("gigantic"); err == nil {
		t.Error("unknown scale must fail")
	}
}
