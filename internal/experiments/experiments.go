// Package experiments packages every paper experiment as a callable
// harness, shared by the benchmark suite (bench_test.go) and the
// reproduction tool (cmd/ethrepro). Each experiment returns an Outcome
// holding the rendered paper-style table/figure plus headline metrics
// for EXPERIMENTS.md's paper-vs-measured comparison.
package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/mining"
	"repro/internal/p2p/relay"
	"repro/internal/sim"
	"repro/internal/txgen"
)

// Scale selects experiment sizing.
type Scale int

// Experiment scales.
const (
	// ScaleSmall runs in seconds (tests, quick benches).
	ScaleSmall Scale = iota + 1
	// ScaleMedium is the default for cmd/ethrepro (minutes).
	ScaleMedium
	// ScalePaper approaches the paper's block counts where feasible.
	ScalePaper
	// ScaleStress pushes the overlay an order of magnitude past the
	// paper's sizing (10k nodes on the network experiments) to
	// exercise the hot path at the limit of the hardware.
	ScaleStress
	// ScaleStress100k is the flat-layout tier: a 100k-node overlay
	// (mainnet-order peer count) over a short block horizon. Viable
	// because per-node state is struct-of-arrays and dedup is bit
	// tables — see docs/PERFORMANCE.md, "Memory layout".
	ScaleStress100k
)

// ParseScale parses a scale name as accepted by the CLIs.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "paper":
		return ScalePaper, nil
	case "stress":
		return ScaleStress, nil
	case "stress100k":
		return ScaleStress100k, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (small|medium|paper|stress|stress100k)", s)
	}
}

// String names the scale.
func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScalePaper:
		return "paper"
	case ScaleStress:
		return "stress"
	case ScaleStress100k:
		return "stress100k"
	default:
		return "unknown"
	}
}

// Outcome is one experiment's result.
type Outcome struct {
	// ID is the experiment identifier from DESIGN.md (F1, T2, ...).
	ID string
	// Title names the paper artifact.
	Title string
	// Rendered is the paper-style text table/figure.
	Rendered string
	// Metrics holds headline numbers keyed by name, for automated
	// paper-vs-measured comparison.
	Metrics map[string]float64
}

// networkScale returns overlay sizing per scale.
func networkScale(sc Scale) (nodes int, blocks uint64, peers int) {
	switch sc {
	case ScaleMedium:
		return 800, 500, 0
	case ScalePaper:
		return 2000, 1500, 0
	case ScaleStress:
		// An order of magnitude past the paper's overlay: the pooled
		// event engine holds this in memory because measurement is
		// streaming and per-node caches are bounded.
		return 10_000, 200, 0
	case ScaleStress100k:
		// Mainnet-order overlay over a short horizon. Measurement
		// peering is capped (not "unlimited") so vantage reception
		// volume stays bounded while the overlay does the scaling.
		return 100_000, 40, 2000
	default:
		return 250, 150, 0
	}
}

// chainScale returns chain-only block counts per scale.
func chainScale(sc Scale) uint64 {
	switch sc {
	case ScaleMedium, ScalePaper, ScaleStress, ScaleStress100k:
		return 201_086 // the paper's one-month main-chain length
	default:
		return 20_000
	}
}

// wholeChainScale sizes the long-horizon Monte-Carlo (§III-D's
// whole-chain sweep; mainnet had ~7.7M blocks at measurement time).
func wholeChainScale(sc Scale) uint64 {
	switch sc {
	case ScaleMedium:
		return 1_000_000
	case ScalePaper:
		return 7_680_658
	case ScaleStress, ScaleStress100k:
		return 2_000_000
	default:
		return 100_000
	}
}

// networkCampaign runs the shared Figs. 1-3 campaign. Registry
// campaigns always run streaming: the analyses consume the index, not
// the raw log, so memory stays O(items) at any scale.
func networkCampaign(seed uint64, sc Scale) (*core.CampaignResult, error) {
	nodes, blocks, peers := networkScale(sc)
	cfg := core.DefaultCampaignConfig(seed)
	cfg.NetworkNodes = nodes
	cfg.Blocks = blocks
	cfg.Measurement = core.PaperMeasurementSpecs(peers)
	cfg.Streaming = true
	return core.RunCampaign(cfg)
}

// NetworkExperiments runs one campaign and derives Figs. 1, 2 and 3
// from it (the paper computes all three from the same month of logs).
func NetworkExperiments(seed uint64, sc Scale) ([]*Outcome, error) {
	res, err := networkCampaign(seed, sc)
	if err != nil {
		return nil, fmt.Errorf("network campaign: %w", err)
	}
	prop, err := analysis.PropagationDelays(res.Index)
	if err != nil {
		return nil, fmt.Errorf("fig1: %w", err)
	}
	first, err := analysis.FirstObservations(res.Index)
	if err != nil {
		return nil, fmt.Errorf("fig2: %w", err)
	}
	pools, err := analysis.PoolFirstObservations(res.Index, 15)
	if err != nil {
		return nil, fmt.Errorf("fig3: %w", err)
	}
	f1 := &Outcome{
		ID:       "F1",
		Title:    "Figure 1 — block propagation delay",
		Rendered: analysis.RenderPropagation(prop),
		Metrics: map[string]float64{
			"median_ms": prop.Summary.Median,
			"mean_ms":   prop.Summary.Mean,
			"p95_ms":    prop.Summary.P95,
			"p99_ms":    prop.Summary.P99,
		},
	}
	f2 := &Outcome{
		ID:       "F2",
		Title:    "Figure 2 — first observation share per region",
		Rendered: analysis.RenderFirstObservations(first),
		Metrics: map[string]float64{
			"EA_share": first.Share["EA"],
			"NA_share": first.Share["NA"],
			"WE_share": first.Share["WE"],
			"CE_share": first.Share["CE"],
		},
	}
	eaPoolShare := 0.0
	if m, ok := pools.FirstShare["Sparkpool"]; ok {
		eaPoolShare = m["EA"]
	}
	f3 := &Outcome{
		ID:       "F3",
		Title:    "Figure 3 — first observation per mining pool",
		Rendered: analysis.RenderPoolObservations(pools, []string{"EA", "NA", "WE", "CE"}),
		Metrics: map[string]float64{
			"sparkpool_EA_first": eaPoolShare,
			"pools":              float64(len(pools.Pools)),
		},
	}
	return []*Outcome{f1, f2, f3}, nil
}

// Table1 renders the static infrastructure table.
func Table1() *Outcome {
	return &Outcome{
		ID:       "T1",
		Title:    "Table I — measurement infrastructure",
		Rendered: "Table I — Measurement infrastructure (paper testbed, simulated per DESIGN.md)\n" + core.RenderInfrastructure(),
		Metrics:  map[string]float64{"machines": float64(len(core.InfrastructureSpecs()))},
	}
}

// Table2 runs the subsidiary 25-peer redundancy measurement (§II's
// May 2-9 campaign) and renders Table II.
func Table2(seed uint64, sc Scale) (*Outcome, error) {
	nodes, blocks, _ := networkScale(sc)
	cfg := core.DefaultCampaignConfig(seed)
	cfg.NetworkNodes = nodes
	cfg.Blocks = blocks
	cfg.Streaming = true
	// One default-configuration node alongside the four primaries,
	// exactly like the paper's subsidiary measurement.
	cfg.Measurement = append(core.PaperMeasurementSpecs(0),
		core.MeasurementSpec{Name: "WE-default", Region: geo.WesternEurope, Peers: 25})
	res, err := core.RunCampaign(cfg)
	if err != nil {
		return nil, fmt.Errorf("redundancy campaign: %w", err)
	}
	red, err := analysis.Redundancy(res.Index, "WE-default")
	if err != nil {
		return nil, fmt.Errorf("table2: %w", err)
	}
	return &Outcome{
		ID:       "T2",
		Title:    "Table II — redundant block receptions",
		Rendered: analysis.RenderRedundancy(red),
		Metrics: map[string]float64{
			"announce_mean": red.Announcements.Mean,
			"whole_mean":    red.WholeBlocks.Mean,
			"combined_mean": red.Combined.Mean,
			"combined_p99":  red.Combined.P99,
		},
	}, nil
}

// workloadCampaign runs the Figs. 4-5 campaign: a smaller overlay with
// a live transaction workload and tx-link capture. mutate, when
// non-nil, adjusts the mining configuration (scenario experiments).
func workloadCampaign(seed uint64, sc Scale, mutate func(*mining.Config)) (*core.CampaignResult, error) {
	cfg := core.DefaultCampaignConfig(seed)
	switch sc {
	case ScaleMedium:
		cfg.NetworkNodes = 200
		cfg.Blocks = 400
	case ScalePaper:
		cfg.NetworkNodes = 400
		cfg.Blocks = 800
	case ScaleStress, ScaleStress100k:
		// The workload tier measures commit latency, not overlay
		// scale; the 100k tier stresses the network experiments only.
		cfg.NetworkNodes = 1000
		cfg.Blocks = 1200
	default:
		cfg.NetworkNodes = 100
		cfg.Blocks = 150
	}
	cfg.Degree = 6
	cfg.Measurement = core.PaperMeasurementSpecs(30)
	cfg.CaptureTxLinks = true
	cfg.Streaming = true
	wl := txgen.DefaultConfig()
	wl.Senders = 600
	wl.MeanInterArrival = 500 * sim.Millisecond // ~2 tx/s, ~26 tx/block
	cfg.Workload = &wl
	if mutate != nil {
		mutate(&cfg.Mining)
	}
	return core.RunCampaign(cfg)
}

// CommitExperiments runs one workload campaign and derives Figs. 4-5.
func CommitExperiments(seed uint64, sc Scale) ([]*Outcome, error) {
	res, err := workloadCampaign(seed, sc, nil)
	if err != nil {
		return nil, fmt.Errorf("workload campaign: %w", err)
	}
	commit, err := analysis.CommitTimes(res.Index, res.View)
	if err != nil {
		return nil, fmt.Errorf("fig4: %w", err)
	}
	reorder, err := analysis.Reordering(res.Index, res.View)
	if err != nil {
		return nil, fmt.Errorf("fig5: %w", err)
	}
	med := func(e interface {
		Value(float64) (float64, error)
	}, q float64) float64 {
		v, err := e.Value(q)
		if err != nil {
			return -1
		}
		return v
	}
	f4 := &Outcome{
		ID:       "F4",
		Title:    "Figure 4 — transaction inclusion and commit times",
		Rendered: analysis.RenderCommit(commit),
		Metrics: map[string]float64{
			"inclusion_median_s": med(commit.Inclusion, 0.5),
			"txs":                float64(commit.Txs),
		},
	}
	if conf12, ok := commit.Confirmations[12]; ok {
		f4.Metrics["conf12_median_s"] = med(conf12, 0.5)
	}
	f5 := &Outcome{
		ID:       "F5",
		Title:    "Figure 5 — commit delay by observed ordering",
		Rendered: analysis.RenderReordering(reorder),
		Metrics: map[string]float64{
			"ooo_fraction": reorder.OutOfOrderFraction,
		},
	}
	if reorder.InOrder.Len() > 0 {
		f5.Metrics["inorder_median_s"] = med(reorder.InOrder, 0.5)
		f5.Metrics["inorder_p90_s"] = med(reorder.InOrder, 0.9)
	}
	if reorder.OutOfOrder.Len() > 0 {
		f5.Metrics["ooo_median_s"] = med(reorder.OutOfOrder, 0.5)
		f5.Metrics["ooo_p90_s"] = med(reorder.OutOfOrder, 0.9)
	}
	return []*Outcome{f4, f5}, nil
}

// ChainExperiments runs one chain-level simulation at the paper's
// month scale and derives Fig. 6, Table III, the one-miner-fork
// analysis, Fig. 7 and the censorship comparison.
func ChainExperiments(seed uint64, sc Scale) ([]*Outcome, error) {
	res, err := core.RunChainOnly(seed, chainScale(sc), nil)
	if err != nil {
		return nil, fmt.Errorf("chain run: %w", err)
	}
	empty, err := analysis.EmptyBlocks(res.View)
	if err != nil {
		return nil, fmt.Errorf("fig6: %w", err)
	}
	forks, err := analysis.Forks(res.View)
	if err != nil {
		return nil, fmt.Errorf("table3: %w", err)
	}
	oneMiner, err := analysis.OneMinerForks(res.View)
	if err != nil {
		return nil, fmt.Errorf("one-miner: %w", err)
	}
	seq, err := analysis.Sequences(res.View)
	if err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	censor, err := analysis.CensorshipWindows(seq, 6, 13.3)
	if err != nil {
		return nil, fmt.Errorf("censorship: %w", err)
	}

	zhizhuRate := res.View
	_ = zhizhuRate
	f6 := &Outcome{
		ID:       "F6",
		Title:    "Figure 6 — empty blocks per mining pool",
		Rendered: analysis.RenderEmptyBlocks(empty, 16),
		Metrics: map[string]float64{
			"empty_fraction": empty.Fraction,
			"zhizhu_rate":    empty.PerPool["Zhizhu"].Rate(),
			"nanopool_empty": float64(empty.PerPool["Nanopool"].Empty),
		},
	}
	t3 := &Outcome{
		ID:       "T3",
		Title:    "Table III — fork types and lengths",
		Rendered: analysis.RenderForks(forks),
		Metrics: map[string]float64{
			"len1_total":      float64(forks.ByLength[1].Total),
			"len1_recognized": float64(forks.ByLength[1].Recognized),
			"len2_total":      float64(forks.ByLength[2].Total),
			"len3_total":      float64(forks.ByLength[3].Total),
			"main_blocks":     float64(forks.MainBlocks),
			"uncle_blocks":    float64(forks.UncleBlocks),
			"unrecognized":    float64(forks.UnrecognizedBlocks),
		},
	}
	s1 := &Outcome{
		ID:       "S1",
		Title:    "§III-C5 — one-miner forks",
		Rendered: analysis.RenderOneMinerForks(oneMiner),
		Metrics: map[string]float64{
			"pairs":               float64(oneMiner.TupleCounts[2]),
			"triples":             float64(oneMiner.TupleCounts[3]),
			"recognized_fraction": oneMiner.RecognizedFraction,
			"same_tx_fraction":    oneMiner.SameTxSetFraction,
			"fraction_of_forks":   oneMiner.FractionOfForks,
		},
	}
	maxRun := 0
	for _, r := range seq.MaxRun {
		if r > maxRun {
			maxRun = r
		}
	}
	f7 := &Outcome{
		ID:       "F7",
		Title:    "Figure 7 — consecutive main-chain sequences per pool",
		Rendered: analysis.RenderSequences(seq, 6, 9) + analysis.RenderCensorship(censor),
		Metrics: map[string]float64{
			"max_run":           float64(maxRun),
			"ethermine_max_run": float64(seq.MaxRun["Ethermine"]),
			"sparkpool_max_run": float64(seq.MaxRun["Sparkpool"]),
		},
	}
	return []*Outcome{f6, t3, s1, f7}, nil
}

// WholeChainExperiment runs the long-horizon sequence census (§III-D's
// look beyond the one-month window).
func WholeChainExperiment(seed uint64, sc Scale) (*Outcome, error) {
	blocks := wholeChainScale(sc)
	res, err := core.RunChainOnly(seed, blocks, func(c *mining.Config) {
		// Sequence statistics need no forks, uncles or bodies: strip
		// the model to the mining race so millions of blocks stay
		// cheap.
		for i := range c.Pools {
			c.Pools[i].EmptyBlockProb = 0
			c.Pools[i].MultiVersionProb = 0
			c.Pools[i].SwitchDelayMean = 0
		}
		c.GatewayDelay = 0
	})
	if err != nil {
		return nil, fmt.Errorf("whole-chain run: %w", err)
	}
	seq, err := analysis.Sequences(res.View)
	if err != nil {
		return nil, err
	}
	tail := analysis.WholeChainTail(seq, 8)
	out := &Outcome{
		ID:       "S2",
		Title:    "§III-D — whole-chain sequence tail",
		Rendered: analysis.RenderWholeChainTail(tail, len(res.View.Main)),
		Metrics:  map[string]float64{"blocks": float64(len(res.View.Main))},
	}
	for l, n := range tail {
		out.Metrics[fmt.Sprintf("len_%d", l)] = float64(n)
	}
	return out, nil
}

// Lesson1Experiment ablates the §V uncle restriction: identical seeds
// with the rule off and on, comparing one-miner uncle rewards and the
// mining power spent on recognized forks.
func Lesson1Experiment(seed uint64, sc Scale) (*Outcome, error) {
	blocks := chainScale(sc) / 4
	run := func(restrict bool) (*analysis.OneMinerForkResult, *analysis.ForksResult, error) {
		res, err := core.RunChainOnly(seed, blocks, func(c *mining.Config) {
			c.Uncles.RestrictOneMinerUncles = restrict
		})
		if err != nil {
			return nil, nil, err
		}
		om, err := analysis.OneMinerForks(res.View)
		if err != nil {
			return nil, nil, err
		}
		fk, err := analysis.Forks(res.View)
		if err != nil {
			return nil, nil, err
		}
		return om, fk, nil
	}
	stdOM, stdFK, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("standard run: %w", err)
	}
	resOM, resFK, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("restricted run: %w", err)
	}
	rendered := fmt.Sprintf(`Lesson 1 (§V) — restricted one-miner uncle rule ablation (%d blocks)
  standard:   one-miner versions recognized %.0f%%, uncle blocks %d
  restricted: one-miner versions recognized %.0f%%, uncle blocks %d
  The restriction removes the reward for mining multiple versions of
  one's own block, reclaiming the ~1%% of mining power the paper
  estimates is spent on one-miner forks.
`, blocks,
		stdOM.RecognizedFraction*100, stdFK.UncleBlocks,
		resOM.RecognizedFraction*100, resFK.UncleBlocks)
	return &Outcome{
		ID:       "L1",
		Title:    "Lesson 1 — restricted uncle rule",
		Rendered: rendered,
		Metrics: map[string]float64{
			"standard_recognized":   stdOM.RecognizedFraction,
			"restricted_recognized": resOM.RecognizedFraction,
			"standard_uncles":       float64(stdFK.UncleBlocks),
			"restricted_uncles":     float64(resFK.UncleBlocks),
		},
	}, nil
}

// AblationFanout compares dissemination policies (sqrt-push vs
// push-all vs announce-only) on propagation delay and redundancy —
// the design choice behind Fig. 1 and Table II.
func AblationFanout(seed uint64, sc Scale) (*Outcome, error) {
	nodes, blocks, _ := networkScale(ScaleSmall)
	if sc != ScaleSmall {
		nodes, blocks = 500, 250
	}
	type row struct {
		policy relay.Mode
		median float64
		whole  float64
		bytes  uint64
	}
	var rows []row
	for _, policy := range []relay.Mode{relay.SqrtPush, relay.PushAll, relay.AnnounceOnly} {
		cfg := core.DefaultCampaignConfig(seed)
		cfg.NetworkNodes = nodes
		cfg.Blocks = blocks
		cfg.Streaming = true
		cfg.Measurement = append(core.PaperMeasurementSpecs(40),
			core.MeasurementSpec{Name: "D25", Region: geo.WesternEurope, Peers: 25})
		cfg.Relay = relay.Config{Mode: policy}
		res, err := core.RunCampaign(cfg)
		if err != nil {
			return nil, fmt.Errorf("fanout %v: %w", policy, err)
		}
		prop, err := analysis.PropagationDelays(res.Index)
		if err != nil {
			return nil, err
		}
		red, err := analysis.Redundancy(res.Index, "D25")
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{policy: policy, median: prop.Summary.Median, whole: red.WholeBlocks.Mean, bytes: res.BytesSent})
	}
	rendered := "Ablation — dissemination fan-out policy\n"
	rendered += fmt.Sprintf("  %-14s %12s %16s %12s\n", "policy", "median (ms)", "whole blks/blk", "total MB")
	metrics := map[string]float64{}
	for _, r := range rows {
		rendered += fmt.Sprintf("  %-14s %12.0f %16.2f %12.1f\n", r.policy, r.median, r.whole, float64(r.bytes)/1e6)
		metrics[r.policy.String()+"_median_ms"] = r.median
		metrics[r.policy.String()+"_receptions"] = r.whole
		metrics[r.policy.String()+"_mb"] = float64(r.bytes) / 1e6
	}
	return &Outcome{ID: "A1", Title: "Ablation — fan-out policy", Rendered: rendered, Metrics: metrics}, nil
}

// AblationGateways compares the paper's concentrated gateway placement
// with a counterfactual fully dispersed placement — the mechanism the
// paper identifies behind Figs. 2-3.
func AblationGateways(seed uint64, sc Scale) (*Outcome, error) {
	nodes, blocks, peers := networkScale(ScaleSmall)
	if sc != ScaleSmall {
		nodes, blocks, peers = 600, 300, 60
	}
	run := func(disperse bool) (map[string]float64, error) {
		cfg := core.DefaultCampaignConfig(seed)
		cfg.NetworkNodes = nodes
		cfg.Blocks = blocks
		cfg.Streaming = true
		cfg.Measurement = core.PaperMeasurementSpecs(peers)
		if disperse {
			everywhere := geo.Regions()
			for i := range cfg.Mining.Pools {
				cfg.Mining.Pools[i].GatewayRegions = everywhere
			}
		}
		res, err := core.RunCampaign(cfg)
		if err != nil {
			return nil, err
		}
		first, err := analysis.FirstObservations(res.Index)
		if err != nil {
			return nil, err
		}
		return first.Share, nil
	}
	paper, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("concentrated: %w", err)
	}
	dispersed, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("dispersed: %w", err)
	}
	rendered := "Ablation — mining-pool gateway placement (share of first observations)\n"
	rendered += fmt.Sprintf("  %-12s %8s %8s %8s %8s\n", "placement", "EA", "NA", "WE", "CE")
	rendered += fmt.Sprintf("  %-12s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", "paper", paper["EA"]*100, paper["NA"]*100, paper["WE"]*100, paper["CE"]*100)
	rendered += fmt.Sprintf("  %-12s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", "dispersed", dispersed["EA"]*100, dispersed["NA"]*100, dispersed["WE"]*100, dispersed["CE"]*100)
	rendered += "  Concentrated Asian gateways produce the EA first-observation\n  advantage; dispersing gateways flattens it (the paper's Fig. 2 cause).\n"
	return &Outcome{
		ID:       "A2",
		Title:    "Ablation — gateway placement",
		Rendered: rendered,
		Metrics: map[string]float64{
			"paper_EA":     paper["EA"],
			"dispersed_EA": dispersed["EA"],
		},
	}, nil
}
