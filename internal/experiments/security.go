package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/mining"
	"repro/internal/rewards"
)

// WithholdingExperiment reproduces §III-D's exoneration argument: the
// burst test that distinguishes honest long sequences (spaced at the
// mining rate, like Sparkpool's) from a block-withholding release. It
// runs the paper's honest pool mix and a counterfactual containing a
// real withholding attacker, and applies the same detector to both.
func WithholdingExperiment(seed uint64, sc Scale) (*Outcome, error) {
	blocks := chainScale(sc) / 4
	// See analysis.DefaultWithholdingMinRun for the calibration
	// rationale; scenario-file withholding outputs share it.
	const minRun = analysis.DefaultWithholdingMinRun
	const threshold = analysis.DefaultWithholdingBurstRatio

	honest, err := core.RunChainOnly(seed, blocks, nil)
	if err != nil {
		return nil, fmt.Errorf("honest run: %w", err)
	}
	honestRes, err := analysis.DetectWithholding(honest.View, honest.PublishTimes, minRun, threshold)
	if err != nil {
		return nil, fmt.Errorf("honest detection: %w", err)
	}

	attacked, err := core.RunChainOnly(seed, blocks, func(c *mining.Config) {
		c.Pools = []mining.PoolConfig{
			{Name: "Attacker", HashrateShare: 0.30, GatewayRegions: []geo.Region{geo.EasternAsia},
				SwitchDelayMean: mining.DefaultSwitchDelay, Withholder: true},
			{Name: "Honest", HashrateShare: 0.70, GatewayRegions: []geo.Region{geo.WesternEurope},
				SwitchDelayMean: mining.DefaultSwitchDelay},
		}
	})
	if err != nil {
		return nil, fmt.Errorf("attacked run: %w", err)
	}
	attackedRes, err := analysis.DetectWithholding(attacked.View, attacked.PublishTimes, minRun, threshold)
	if err != nil {
		return nil, fmt.Errorf("attacked detection: %w", err)
	}
	attackerFlagged, attackerRuns := 0, 0
	for _, v := range attackedRes.Verdicts {
		if v.Pool != "Attacker" {
			continue
		}
		attackerRuns++
		if v.Flagged {
			attackerFlagged++
		}
	}

	rendered := fmt.Sprintf(`Withholding burst test (§III-D), %d blocks, runs >= %d
  honest pool mix:   %d runs examined, %d flagged
  with attacker:     %d attacker runs, %d flagged as withheld
  The paper applies exactly this test to Sparkpool's 9-block sequences:
  spaced at the average inter-block time => "unlikely that Sparkpool
  performed such an attack".
`, blocks, minRun,
		honestRes.RunsExamined, honestRes.FlaggedRuns,
		attackerRuns, attackerFlagged)
	return &Outcome{
		ID:       "W1",
		Title:    "§III-D — withholding burst test",
		Rendered: rendered,
		Metrics: map[string]float64{
			"honest_runs":      float64(honestRes.RunsExamined),
			"honest_flagged":   float64(honestRes.FlaggedRuns),
			"attacker_runs":    float64(attackerRuns),
			"attacker_flagged": float64(attackerFlagged),
		},
	}, nil
}

// ConstantinopleExperiment reproduces the §III-C1 explanation for the
// commit-time improvement: the difficulty bomb stretches the
// inter-block time, and delaying it (EIP-1234) restores the base
// equilibrium, shortening the 12-confirmation wait from ~200 s to
// ~189 s. The closed-loop difficulty model regenerates both regimes.
func ConstantinopleExperiment(seed uint64, sc Scale) (*Outcome, error) {
	blocks := chainScale(sc)
	if sc == ScaleSmall {
		blocks = 60_000
	}
	run := func(delayed bool) (meanGap float64, err error) {
		res, err := core.RunChainOnly(seed, blocks, func(c *mining.Config) {
			// Compressed bomb schedule so the effect is visible
			// within the run: the doubling period is chosen so the
			// bomb term reaches difficulty magnitude (2^38 vs 3e11)
			// near the end of the run, like mainnet approaching a
			// fork deadline.
			c.Difficulty.BombPeriodBlocks = blocks / 40
			if delayed {
				c.Difficulty.BombDelayBlocks = 100_000_000
			} else {
				c.Difficulty.BombDelayBlocks = 0
			}
			// Sequence statistics are irrelevant here; strip fork
			// machinery for speed.
			for i := range c.Pools {
				c.Pools[i].EmptyBlockProb = 0
				c.Pools[i].MultiVersionProb = 0
				c.Pools[i].SwitchDelayMean = 0
			}
			c.GatewayDelay = 0
		})
		if err != nil {
			return 0, err
		}
		main := res.Tree.MainChain()
		if len(main) < 3 {
			return 0, fmt.Errorf("chain too short")
		}
		// Mean gap over the final third, where the bomb has grown.
		start := 2 * len(main) / 3
		var sum float64
		n := 0
		for i := start + 1; i < len(main); i++ {
			sum += float64(main[i].Header.TimeMillis) - float64(main[i-1].Header.TimeMillis)
			n++
		}
		return sum / float64(n) / 1000, nil
	}
	bombed, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("bombed run: %w", err)
	}
	delayed, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("delayed run: %w", err)
	}
	rendered := fmt.Sprintf(`Constantinople ablation (§III-C1): difficulty bomb vs EIP-1234 delay
  bomb live:     mean inter-block %.1f s  -> 12-conf wait ~%.0f s
  bomb delayed:  mean inter-block %.1f s  -> 12-conf wait ~%.0f s
  paper: pre-Constantinople 14.3 s (12-conf 200 s), post 13.3 s (189 s)
`, bombed, 12*bombed+bombed/2, delayed, 12*delayed+delayed/2)
	return &Outcome{
		ID:       "C1",
		Title:    "§III-C1 — Constantinople bomb-delay ablation",
		Rendered: rendered,
		Metrics: map[string]float64{
			"bombed_interblock_s":  bombed,
			"delayed_interblock_s": delayed,
		},
	}, nil
}

// EmptyBlockSpreadExperiment quantifies §III-C3's warning: "if a
// dominant number of miners switched to the selfish strategy of
// occasionally mining empty blocks, it would be disastrous for the
// platform". It compares transaction inclusion delay between the
// measured empty-block rates (~1.45%) and a spread scenario where
// every pool mines 30% of its blocks empty.
func EmptyBlockSpreadExperiment(seed uint64, sc Scale) (*Outcome, error) {
	measure := func(emptyProb float64) (median, p90 float64, err error) {
		res, err := workloadCampaign(seed, sc, func(c *mining.Config) {
			if emptyProb >= 0 {
				for i := range c.Pools {
					c.Pools[i].EmptyBlockProb = emptyProb
				}
			}
		})
		if err != nil {
			return 0, 0, err
		}
		commit, err := analysis.CommitTimes(res.Index, res.View)
		if err != nil {
			return 0, 0, err
		}
		m, err := commit.Inclusion.Value(0.5)
		if err != nil {
			return 0, 0, err
		}
		p, err := commit.Inclusion.Value(0.9)
		if err != nil {
			return 0, 0, err
		}
		return m, p, nil
	}
	todayMed, todayP90, err := measure(-1) // paper-calibrated rates
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	spreadMed, spreadP90, err := measure(0.30)
	if err != nil {
		return nil, fmt.Errorf("spread scenario: %w", err)
	}
	rendered := fmt.Sprintf(`Empty-block spread scenario (§III-C3 projection)
  measured rates (~1.45%% empty): inclusion median %.0f s, p90 %.0f s
  every pool 30%% empty:          inclusion median %.0f s, p90 %.0f s
  Empty blocks push waiting transactions to later blocks; at today's
  rates the damage is small, which is the paper's point — the incentive
  is unchecked, and the penalty grows with adoption.
`, todayMed, todayP90, spreadMed, spreadP90)
	return &Outcome{
		ID:       "E1",
		Title:    "§III-C3 — empty-block spread scenario",
		Rendered: rendered,
		Metrics: map[string]float64{
			"today_median_s":  todayMed,
			"today_p90_s":     todayP90,
			"spread_median_s": spreadMed,
			"spread_p90_s":    spreadP90,
		},
	}, nil
}

// RevenueExperiment quantifies the incentive arguments behind the
// selfish behaviors: per-pool revenue including one-miner uncle
// income, and the empty-block fee tradeoff.
func RevenueExperiment(seed uint64, sc Scale) (*Outcome, error) {
	blocks := chainScale(sc) / 4
	res, err := core.RunChainOnly(seed, blocks, nil)
	if err != nil {
		return nil, err
	}
	const meanGasPrice = 10_000_000_000
	acct, err := rewards.Accounting(res.View, rewards.DefaultSchedule(), meanGasPrice)
	if err != nil {
		return nil, err
	}
	var oneMinerGwei, totalGwei uint64
	for _, r := range acct {
		oneMinerGwei += r.OneMinerUncleGwei
		totalGwei += r.Total()
	}
	forgone, frac := rewards.EmptyBlockTradeoff(rewards.DefaultSchedule(), 100, meanGasPrice)
	rendered := fmt.Sprintf(`Incentive accounting (%d blocks)
  one-miner uncle income: %.2f ETH (%.4f%% of all mining income)
  empty-block fee sacrifice: %.4f ETH per block (%.2f%% of the 2 ETH reward)
  The paper's incentive story in numbers: forging an extra version of
  one's own block earns a near-full uncle reward, while skipping the
  transactions of a block costs ~1%% of its reward — both selfish
  strategies pay.
`, blocks,
		float64(oneMinerGwei)/rewards.GweiPerETH,
		100*float64(oneMinerGwei)/float64(totalGwei),
		float64(forgone)/rewards.GweiPerETH, frac*100)
	return &Outcome{
		ID:       "INC",
		Title:    "Incentive accounting (§III-C3, §III-C5)",
		Rendered: rendered,
		Metrics: map[string]float64{
			"one_miner_eth":      float64(oneMinerGwei) / rewards.GweiPerETH,
			"empty_fee_fraction": frac,
		},
	}, nil
}
