package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// Artifact file names inside a run directory (the paper_runs/<stamp>
// layout: machine-readable CSV/JSON plus the rendered tables).
const (
	ManifestFile = "manifest.json"
	OutcomesJSON = "outcomes.json"
	RenderedFile = "rendered.txt"
	CSVDir       = "csv"
	OutcomesCSV  = "outcomes.csv"
	SummaryCSV   = "summary.csv"
)

// runArtifact is the JSON form of one (spec, repeat) result.
type runArtifact struct {
	Spec    string     `json:"spec"`
	Repeat  int        `json:"repeat"`
	Seed    uint64     `json:"seed"`
	Error   string     `json:"error,omitempty"`
	Outcome []*Outcome `json:"outcomes,omitempty"`
}

// reportArtifact is the JSON form of a whole campaign.
type reportArtifact struct {
	Seed      uint64          `json:"seed"`
	Scale     string          `json:"scale"`
	Repeats   int             `json:"repeats"`
	Runs      []runArtifact   `json:"runs"`
	Summaries []MetricSummary `json:"summaries"`
}

// WriteArtifacts persists a campaign report under dir:
//
//	dir/manifest.json   — seed, scale, repeats, selected specs
//	dir/outcomes.json   — every run's outcomes and the aggregation
//	dir/rendered.txt    — the paper-style tables (first repeat)
//	dir/csv/outcomes.csv — one row per (spec, repeat, outcome, metric)
//	dir/csv/summary.csv  — cross-repeat mean/std per (outcome, metric)
//
// Every file is a pure function of the report, so artifacts are
// byte-identical however many workers produced the report.
func WriteArtifacts(dir string, r *Report) error {
	if err := os.MkdirAll(filepath.Join(dir, CSVDir), 0o755); err != nil {
		return fmt.Errorf("experiments: create run dir: %w", err)
	}
	if err := writeManifest(dir, r); err != nil {
		return err
	}
	if err := writeOutcomesJSON(dir, r); err != nil {
		return err
	}
	if err := writeRendered(dir, r); err != nil {
		return err
	}
	if err := writeOutcomesCSV(dir, r); err != nil {
		return err
	}
	return writeSummaryCSV(dir, r)
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: marshal %s: %w", filepath.Base(path), err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeManifest(dir string, r *Report) error {
	specIDs := []string{}
	seen := map[string]bool{}
	for _, res := range r.Results {
		if !seen[res.Spec.ID] {
			seen[res.Spec.ID] = true
			specIDs = append(specIDs, res.Spec.ID)
		}
	}
	return writeJSON(filepath.Join(dir, ManifestFile), map[string]any{
		"seed":    r.Seed,
		"scale":   r.Scale.String(),
		"repeats": r.Repeats,
		"specs":   specIDs,
	})
}

func writeOutcomesJSON(dir string, r *Report) error {
	art := reportArtifact{
		Seed:      r.Seed,
		Scale:     r.Scale.String(),
		Repeats:   r.Repeats,
		Runs:      make([]runArtifact, 0, len(r.Results)),
		Summaries: r.Summaries,
	}
	for _, res := range r.Results {
		run := runArtifact{
			Spec:    res.Spec.ID,
			Repeat:  res.Repeat,
			Seed:    res.Seed,
			Outcome: res.Outcomes,
		}
		if res.Err != nil {
			run.Error = res.Err.Error()
		}
		art.Runs = append(art.Runs, run)
	}
	return writeJSON(filepath.Join(dir, OutcomesJSON), art)
}

func writeRendered(dir string, r *Report) error {
	out := r.RenderOutcomes() + r.RenderSummary()
	return os.WriteFile(filepath.Join(dir, RenderedFile), []byte(out), 0o644)
}

func writeCSV(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: create %s: %w", filepath.Base(path), err)
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return fmt.Errorf("experiments: write %s: %w", filepath.Base(path), err)
	}
	return f.Close()
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func writeOutcomesCSV(dir string, r *Report) error {
	rows := [][]string{{"spec", "repeat", "seed", "outcome", "metric", "value"}}
	for _, res := range r.Results {
		if res.Err != nil {
			continue
		}
		for _, o := range res.Outcomes {
			metrics := make([]string, 0, len(o.Metrics))
			for m := range o.Metrics {
				metrics = append(metrics, m)
			}
			sort.Strings(metrics)
			for _, m := range metrics {
				rows = append(rows, []string{
					res.Spec.ID,
					strconv.Itoa(res.Repeat),
					strconv.FormatUint(res.Seed, 10),
					o.ID, m, fmtFloat(o.Metrics[m]),
				})
			}
		}
	}
	return writeCSV(filepath.Join(dir, CSVDir, OutcomesCSV), rows)
}

func writeSummaryCSV(dir string, r *Report) error {
	rows := [][]string{{"outcome", "metric", "n", "mean", "std", "min", "max"}}
	for _, s := range r.Summaries {
		rows = append(rows, []string{
			s.OutcomeID, s.Metric, strconv.Itoa(s.N),
			fmtFloat(s.Mean), fmtFloat(s.StdDev), fmtFloat(s.Min), fmtFloat(s.Max),
		})
	}
	return writeCSV(filepath.Join(dir, CSVDir, SummaryCSV), rows)
}

// ReadArtifacts loads a run directory written by WriteArtifacts back
// into a Report (cmd/ethanalyze's campaign mode). Spec fields carry
// only the recorded ID — the Run function is not reconstructed.
func ReadArtifacts(dir string) (*Report, error) {
	data, err := os.ReadFile(filepath.Join(dir, OutcomesJSON))
	if err != nil {
		return nil, fmt.Errorf("experiments: read artifacts: %w", err)
	}
	var art reportArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("experiments: parse %s: %w", OutcomesJSON, err)
	}
	scale, err := ParseScale(art.Scale)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Seed:      art.Seed,
		Scale:     scale,
		Repeats:   art.Repeats,
		Summaries: art.Summaries,
	}
	for _, run := range art.Runs {
		res := Result{
			Spec:     Spec{ID: run.Spec},
			Repeat:   run.Repeat,
			Seed:     run.Seed,
			Outcomes: run.Outcome,
		}
		if run.Error != "" {
			res.Err = fmt.Errorf("%s", run.Error)
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}
