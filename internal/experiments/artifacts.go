package experiments

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/store"
)

// Artifact file names inside a run store (the paper_runs/<stamp>
// layout: machine-readable CSV/JSON plus the rendered tables).
const (
	ManifestFile = store.ManifestFile
	OutcomesJSON = "outcomes.json"
	RenderedFile = "rendered.txt"
	CSVDir       = "csv"
	OutcomesCSV  = "outcomes.csv"
	SummaryCSV   = "summary.csv"
)

// runArtifact is the JSON form of one (spec, repeat) result.
type runArtifact struct {
	Spec    string     `json:"spec"`
	Repeat  int        `json:"repeat"`
	Seed    uint64     `json:"seed"`
	Error   string     `json:"error,omitempty"`
	Outcome []*Outcome `json:"outcomes,omitempty"`
}

// reportArtifact is the JSON form of a whole campaign.
type reportArtifact struct {
	Seed      uint64          `json:"seed"`
	Scale     string          `json:"scale"`
	Repeats   int             `json:"repeats"`
	Runs      []runArtifact   `json:"runs"`
	Summaries []MetricSummary `json:"summaries"`
}

// Manifest is a campaign run's manifest.json: the campaign metadata
// (seed, scale, repeats, selected specs) joined with the store
// digest record (schema version, Merkle root, per-file digests).
// Version-1 directories predate the digest fields; they decode with
// SchemaVersion 0 and empty digests.
type Manifest struct {
	SchemaVersion int          `json:"schema_version,omitempty"`
	Seed          uint64       `json:"seed"`
	Scale         string       `json:"scale"`
	Repeats       int          `json:"repeats"`
	Specs         []string     `json:"specs"`
	MerkleRoot    string       `json:"merkle_root,omitempty"`
	Files         []store.File `json:"files,omitempty"`
}

// Legacy reports whether the manifest predates the digest schema.
func (m *Manifest) Legacy() bool { return m.SchemaVersion < store.SchemaVersion }

// WriteArtifacts persists a campaign report into a store:
//
//	outcomes.json    — every run's outcomes and the aggregation
//	rendered.txt     — the paper-style tables (first repeat)
//	csv/outcomes.csv — one row per (spec, repeat, outcome, metric)
//	csv/summary.csv  — cross-repeat mean/std per (outcome, metric)
//
// Every blob is a pure function of the report, so artifacts are
// byte-identical however many workers produced the report and
// whichever backend stores them. The manifest is NOT written here:
// callers add any sibling blobs (the embedded scenario.json, ...)
// and then seal the store with WriteManifest, so the Merkle root
// covers everything.
func WriteArtifacts(st store.Store, r *Report) error {
	if err := writeOutcomesJSON(st, r); err != nil {
		return err
	}
	if err := writeRendered(st, r); err != nil {
		return err
	}
	if err := writeOutcomesCSV(st, r); err != nil {
		return err
	}
	return writeSummaryCSV(st, r)
}

// WriteManifest digests the store's current contents and writes the
// versioned manifest.json carrying the campaign metadata, per-file
// SHA-256 digests and the Merkle root batching them. Call it last:
// blobs added after the manifest would fail verification.
func WriteManifest(st store.Store, r *Report) error {
	m, err := st.Manifest()
	if err != nil {
		return fmt.Errorf("experiments: digest artifacts: %w", err)
	}
	specIDs := []string{}
	seen := map[string]bool{}
	for _, res := range r.Results {
		if !seen[res.Spec.ID] {
			seen[res.Spec.ID] = true
			specIDs = append(specIDs, res.Spec.ID)
		}
	}
	doc := Manifest{
		SchemaVersion: m.SchemaVersion,
		Seed:          r.Seed,
		Scale:         r.Scale.String(),
		Repeats:       r.Repeats,
		Specs:         specIDs,
		MerkleRoot:    m.MerkleRoot,
		Files:         m.Files,
	}
	return putJSON(st, ManifestFile, doc)
}

// ReadManifest loads a run store's manifest.json, accepting both the
// digestless version-1 form and the current versioned form. Callers
// that need tamper evidence should check Legacy() (or use
// store.Verify) — a legacy manifest reads fine but cannot be
// verified.
func ReadManifest(st store.Store) (*Manifest, error) {
	data, err := st.Get(ManifestFile)
	if err != nil {
		return nil, fmt.Errorf("experiments: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("experiments: parse %s: %w", ManifestFile, err)
	}
	return &m, nil
}

func putJSON(st store.Store, name string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: marshal %s: %w", name, err)
	}
	return st.Put(name, append(data, '\n'))
}

func writeOutcomesJSON(st store.Store, r *Report) error {
	art := reportArtifact{
		Seed:      r.Seed,
		Scale:     r.Scale.String(),
		Repeats:   r.Repeats,
		Runs:      make([]runArtifact, 0, len(r.Results)),
		Summaries: r.Summaries,
	}
	for _, res := range r.Results {
		run := runArtifact{
			Spec:    res.Spec.ID,
			Repeat:  res.Repeat,
			Seed:    res.Seed,
			Outcome: res.Outcomes,
		}
		if res.Err != nil {
			run.Error = res.Err.Error()
		}
		art.Runs = append(art.Runs, run)
	}
	return putJSON(st, OutcomesJSON, art)
}

func writeRendered(st store.Store, r *Report) error {
	out := r.RenderOutcomes() + r.RenderSummary()
	return st.Put(RenderedFile, []byte(out))
}

func putCSV(st store.Store, name string, rows [][]string) error {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.WriteAll(rows); err != nil {
		return fmt.Errorf("experiments: write %s: %w", name, err)
	}
	return st.Put(name, buf.Bytes())
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func writeOutcomesCSV(st store.Store, r *Report) error {
	rows := [][]string{{"spec", "repeat", "seed", "outcome", "metric", "value"}}
	for _, res := range r.Results {
		if res.Err != nil {
			continue
		}
		for _, o := range res.Outcomes {
			metrics := make([]string, 0, len(o.Metrics))
			for m := range o.Metrics {
				metrics = append(metrics, m)
			}
			sort.Strings(metrics)
			for _, m := range metrics {
				rows = append(rows, []string{
					res.Spec.ID,
					strconv.Itoa(res.Repeat),
					strconv.FormatUint(res.Seed, 10),
					o.ID, m, fmtFloat(o.Metrics[m]),
				})
			}
		}
	}
	return putCSV(st, CSVDir+"/"+OutcomesCSV, rows)
}

func writeSummaryCSV(st store.Store, r *Report) error {
	rows := [][]string{{"outcome", "metric", "n", "mean", "std", "min", "max"}}
	for _, s := range r.Summaries {
		rows = append(rows, []string{
			s.OutcomeID, s.Metric, strconv.Itoa(s.N),
			fmtFloat(s.Mean), fmtFloat(s.StdDev), fmtFloat(s.Min), fmtFloat(s.Max),
		})
	}
	return putCSV(st, CSVDir+"/"+SummaryCSV, rows)
}

// ReadArtifacts loads a run store written by WriteArtifacts back
// into a Report (cmd/ethanalyze's campaign mode). Spec fields carry
// only the recorded ID — the Run function is not reconstructed.
func ReadArtifacts(st store.Store) (*Report, error) {
	data, err := st.Get(OutcomesJSON)
	if err != nil {
		return nil, fmt.Errorf("experiments: read artifacts: %w", err)
	}
	var art reportArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("experiments: parse %s: %w", OutcomesJSON, err)
	}
	scale, err := ParseScale(art.Scale)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Seed:      art.Seed,
		Scale:     scale,
		Repeats:   art.Repeats,
		Summaries: art.Summaries,
	}
	for _, run := range art.Runs {
		res := Result{
			Spec:     Spec{ID: run.Spec},
			Repeat:   run.Repeat,
			Seed:     run.Seed,
			Outcomes: run.Outcome,
		}
		if run.Error != "" {
			res.Err = fmt.Errorf("%s", run.Error)
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}
