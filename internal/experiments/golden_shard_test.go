package experiments_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

// The shard-axis golden gate: run directories must be byte-identical
// across the sharded conductor's worker counts (shards ∈ {1, 2, 6})
// crossed with the runner's campaign-level parallelism (∈ {1, 8}).
// Sharding is enabled through the ETHREPRO_SHARDS environment knob the
// CampaignConfig falls back to, so the exact artifact surface of
// `ETHREPRO_SHARDS=n ethrepro ...` is what is pinned here. Note the
// contract deliberately does NOT span shards=0: the sharded conductor
// schedules through lane-forked RNG streams, so its artifacts are a
// separate (equally deterministic) family from the single-engine ones.
//
// Grid runs multiply campaign count six-fold, so the in-package tiers
// (both -short and full) check the grid's corner cases on the short
// spec/scenario core, keeping `go test ./...` inside its timeout. The
// exhaustive acceptance sweep — every builtin spec and every shipped
// scenario across the complete grid — is opt-in via SHARDGOLDEN=full,
// which `make test-shard` sets with a timeout sized for it.

// shardGoldenFull reports whether the exhaustive acceptance sweep was
// requested (SHARDGOLDEN=full, the make test-shard full lane).
func shardGoldenFull() bool { return os.Getenv("SHARDGOLDEN") == "full" }

// shardCombo is one point on the shards × parallel grid.
type shardCombo struct {
	shards   int
	parallel int
}

// goldenShardGrid returns the combos to compare against the reference
// (shards=1, parallel=1). The default corners still cross every
// mechanism: multi-lane merge under campaign parallelism (6,8) and
// the two-lane case (2,1); SHARDGOLDEN=full runs the whole grid from
// the acceptance criteria.
func goldenShardGrid() []shardCombo {
	if shardGoldenFull() {
		return []shardCombo{{1, 8}, {2, 1}, {2, 8}, {6, 1}, {6, 8}}
	}
	return []shardCombo{{2, 1}, {6, 8}}
}

// runGoldenSharded is runGolden with the conductor enabled at the
// given worker count for every campaign in the run.
func runGoldenSharded(t *testing.T, specs []experiments.Spec, dir string, shards, parallel int, sets []*scenario.Set) {
	t.Helper()
	t.Setenv("ETHREPRO_SHARDS", fmt.Sprint(shards))
	runGolden(t, specs, dir, parallel, sets)
}

// TestGoldenShardBuiltinSpecsInvariance pins the built-in registry to
// the shard grid — by default the short-tier core (the paper specs
// plus the dependability specs, which exercise the fault injector's
// region-keyed lanes), under SHARDGOLDEN=full everything but the
// R1/R2 sweeps, matching the parallel harness.
func TestGoldenShardBuiltinSpecsInvariance(t *testing.T) {
	var specs []experiments.Spec
	for _, s := range experiments.Specs() {
		if !shardGoldenFull() && !goldenShortSpecs[s.ID] {
			continue
		}
		if s.ID == "R1" || s.ID == "R2" {
			// Like the parallel harness, the relay sweeps stay out of
			// this gate: relay-compare.json below covers sharded relay
			// determinism at a fraction of their multi-campaign cost.
			continue
		}
		specs = append(specs, s)
	}
	if len(specs) == 0 {
		t.Fatal("no specs selected")
	}
	ref := filepath.Join(t.TempDir(), "s1p1")
	runGoldenSharded(t, specs, ref, 1, 1, nil)
	for _, c := range goldenShardGrid() {
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("s%dp%d", c.shards, c.parallel))
		runGoldenSharded(t, specs, dir, c.shards, c.parallel, nil)
		assertDirsIdentical(t, ref, dir)
	}
}

// TestGoldenShardScenarioArtifactsInvariance runs the shipped
// acceptance scenarios (baseline, partition-heal for fault
// determinism, relay-compare for protocol determinism) across the
// shard grid, embedded scenario.json and digest manifest included.
func TestGoldenShardScenarioArtifactsInvariance(t *testing.T) {
	pattern := filepath.Join("..", "..", "examples", "scenarios", "*.json")
	paths, err := filepath.Glob(pattern)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	ran := 0
	for _, path := range paths {
		name := filepath.Base(path)
		// Default: the three acceptance scenarios. SHARDGOLDEN=full:
		// every shipped file at small scale (the 100k file runs its
		// full size in the STRESS100K gate below).
		if !shardGoldenFull() && !goldenShortScenarios[name] {
			continue
		}
		ran++
		t.Run(name, func(t *testing.T) {
			set, err := scenario.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			specs, err := set.Compile()
			if err != nil {
				t.Fatal(err)
			}
			ref := filepath.Join(t.TempDir(), "s1p1")
			runGoldenSharded(t, specs, ref, 1, 1, []*scenario.Set{set})
			for _, c := range goldenShardGrid() {
				dir := filepath.Join(t.TempDir(), fmt.Sprintf("s%dp%d", c.shards, c.parallel))
				runGoldenSharded(t, specs, dir, c.shards, c.parallel, []*scenario.Set{set})
				assertDirsIdentical(t, ref, dir)
			}
		})
	}
	want := len(goldenShortScenarios)
	if shardGoldenFull() {
		want = len(paths)
	}
	if ran != want {
		t.Errorf("ran %d scenario files, want %d: an acceptance gate is missing", ran, want)
	}
}

// TestGoldenShardUniformLookaheadInvariance pins the tentpole's
// soundness claim from the artifact side: the topology-aware per-pair
// lookahead matrix is a pure scheduling optimization, so a sharded run
// with the latency-model bounds must produce byte-identical artifacts
// to the same run forced back to the uniform 1 ms matrix
// (ETHREPRO_UNIFORM_LOOKAHEAD=1). A difference would mean a deadline
// overshot a real arrival — the back-dating bug the merge asserts
// against — or that window placement leaked into the simulation.
func TestGoldenShardUniformLookaheadInvariance(t *testing.T) {
	var specs []experiments.Spec
	for _, s := range experiments.Specs() {
		if goldenShortSpecs[s.ID] {
			specs = append(specs, s)
		}
	}
	if len(specs) == 0 {
		t.Fatal("no specs selected")
	}
	bounds := filepath.Join(t.TempDir(), "bounds")
	runGoldenSharded(t, specs, bounds, 6, 1, nil)
	uniform := filepath.Join(t.TempDir(), "uniform")
	t.Setenv("ETHREPRO_UNIFORM_LOOKAHEAD", "1")
	runGoldenSharded(t, specs, uniform, 6, 1, nil)
	assertDirsIdentical(t, bounds, uniform)
}

// TestGoldenShardStress100kInvariance is the sharded arm of `make
// test-stress`: the 100,000-node scenario at full size, shards=6
// against the shards=1 reference, both at -parallel 8. Opt-in via
// STRESS100K like the unsharded stress tier — two more 100k campaigns
// cost minutes, and this is the scale tier sharding was built for.
func TestGoldenShardStress100kInvariance(t *testing.T) {
	if os.Getenv("STRESS100K") == "" {
		t.Skip("set STRESS100K=1 (make test-stress) to run the sharded 100k invariance tier")
	}
	set, err := scenario.Load(filepath.Join("..", "..", "examples", "scenarios", "stress-100k.json"))
	if err != nil {
		t.Fatal(err)
	}
	specs, err := set.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ref, six := filepath.Join(t.TempDir(), "s1"), filepath.Join(t.TempDir(), "s6")
	t.Setenv("ETHREPRO_SHARDS", "1")
	runGoldenAt(t, specs, ref, 8, []*scenario.Set{set}, experiments.ScaleMedium, 1)
	t.Setenv("ETHREPRO_SHARDS", "6")
	runGoldenAt(t, specs, six, 8, []*scenario.Set{set}, experiments.ScaleMedium, 1)
	assertDirsIdentical(t, ref, six)
}
