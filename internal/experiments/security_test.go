package experiments

import (
	"strings"
	"testing"
)

func TestWithholdingExperimentShape(t *testing.T) {
	o := specOutcomes(t, "W1")["W1"]
	// The paper's argument requires both directions: honest sequences
	// pass the burst test, a real withholder fails it.
	if o.Metrics["honest_flagged"] != 0 {
		t.Fatalf("honest runs flagged: %v", o.Metrics["honest_flagged"])
	}
	if o.Metrics["attacker_runs"] == 0 {
		t.Fatal("attacker produced no runs")
	}
	if o.Metrics["attacker_flagged"] == 0 {
		t.Fatal("attacker never flagged")
	}
	if !strings.Contains(o.Rendered, "Sparkpool") {
		t.Fatal("render missing context")
	}
}

func TestConstantinopleExperimentShape(t *testing.T) {
	o := specOutcomes(t, "C1")["C1"]
	bombed := o.Metrics["bombed_interblock_s"]
	delayed := o.Metrics["delayed_interblock_s"]
	// The delayed regime sits at the 13.3 s equilibrium; the live
	// bomb stretches intervals above it — the paper's 13.3 vs 14.3+
	// story.
	if delayed < 12 || delayed > 15 {
		t.Fatalf("delayed inter-block %v s out of band", delayed)
	}
	if bombed <= delayed*1.03 {
		t.Fatalf("bomb should stretch intervals: %v vs %v", bombed, delayed)
	}
}

func TestEmptyBlockSpreadShape(t *testing.T) {
	skipInShort(t) // two workload campaigns, ~1 min
	o := specOutcomes(t, "E1")["E1"]
	// Widespread empty mining must lengthen the inclusion tail.
	if o.Metrics["spread_p90_s"] <= o.Metrics["today_p90_s"] {
		t.Fatalf("spread p90 %v should exceed today's %v",
			o.Metrics["spread_p90_s"], o.Metrics["today_p90_s"])
	}
	if o.Metrics["today_median_s"] <= 0 {
		t.Fatal("baseline median missing")
	}
}

func TestRevenueExperimentShape(t *testing.T) {
	o := specOutcomes(t, "INC")["INC"]
	if o.Metrics["one_miner_eth"] <= 0 {
		t.Fatal("one-miner uncle income must be positive under the standard rule")
	}
	// The §III-C3 tradeoff: fees ~1% of the block reward.
	if f := o.Metrics["empty_fee_fraction"]; f < 0.005 || f > 0.02 {
		t.Fatalf("fee fraction %v", f)
	}
}
