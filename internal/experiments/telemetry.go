package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/store"
)

// TelemetryFile is the per-run-directory telemetry artifact. Unlike
// every other artifact it records wall-clock measurements, so its
// bytes differ between hosts and runs of the same seed — it is the
// one intentionally nondeterministic file in a sealed run directory.
// Writing it is therefore opt-in (`ethrepro -telemetry`, server
// Config.Telemetry); when written it is still sealed into the
// manifest like any other blob.
const TelemetryFile = "telemetry.json"

// TelemetrySchemaVersion versions the telemetry.json layout.
const TelemetrySchemaVersion = 1

// TelemetryRow is one (spec, repeat) run's performance record.
type TelemetryRow struct {
	Spec   string `json:"spec"`
	Repeat int    `json:"repeat"`
	Seed   uint64 `json:"seed"`
	// Engines counts the simulation engines the run executed (sweep
	// specs run several campaigns per run).
	Engines int `json:"engines"`
	// Events / Scheduled are summed engine dispatch and enqueue
	// counters; PeakQueue and Slots are maxima across engines.
	Events    uint64 `json:"events"`
	Scheduled uint64 `json:"scheduled"`
	PeakQueue int    `json:"peak_queue"`
	Slots     int    `json:"slots"`
	// SimMS is the total virtual time simulated.
	SimMS int64 `json:"sim_ms"`
	// BuildMS / RunMS split the run's wall time into campaign
	// construction and engine execution; ElapsedMS is the runner's
	// whole-run measurement (includes analysis and rendering).
	BuildMS   float64 `json:"build_ms"`
	RunMS     float64 `json:"run_ms"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// EventsPerSec is dispatch throughput over engine-run wall time.
	EventsPerSec float64 `json:"events_per_sec"`
	// Messages/Bytes/Dropped are transport totals.
	Messages uint64 `json:"messages"`
	Bytes    uint64 `json:"bytes"`
	Dropped  uint64 `json:"dropped"`
	// PeakHeapBytes is the largest live-heap reading across the run's
	// engines; Nodes the largest overlay size; BytesPerNode their
	// ratio (zero for chain-only runs) — the telemetry counterpart of
	// the bytes-per-node ceiling test (docs/PERFORMANCE.md).
	PeakHeapBytes uint64  `json:"peak_heap_bytes,omitempty"`
	Nodes         int     `json:"nodes,omitempty"`
	BytesPerNode  float64 `json:"bytes_per_node,omitempty"`
	// Shard* describe the conductor's window loop when the run
	// executed sharded (ETHREPRO_SHARDS / -shards); all omitted for
	// single-engine runs. ShardStalled counts lane-windows lost to the
	// conservative-lookahead bound — the sharding efficiency metric.
	ShardWorkers int                 `json:"shard_workers,omitempty"`
	ShardWindows uint64              `json:"shard_windows,omitempty"`
	ShardStalled uint64              `json:"shard_stalled,omitempty"`
	ShardMerged  uint64              `json:"shard_merged,omitempty"`
	Lanes        []obs.LaneTelemetry `json:"lanes,omitempty"`
	// PairWindows is the conductor's per-lane-pair window-width
	// histogram: which lane bound which lane's phase-B deadline, how
	// often it stalled, and how wide the granted windows were — the
	// observability surface for the topology-aware lookahead.
	PairWindows []obs.PairWindowTelemetry `json:"pair_windows,omitempty"`
	// Kinds is the per-event-kind dispatch profile (tracing runs
	// only).
	Kinds []obs.KindStats `json:"kinds,omitempty"`
}

// Telemetry is the telemetry.json document: per-run performance rows
// joined with a process runtime snapshot.
type Telemetry struct {
	SchemaVersion int              `json:"schema_version"`
	Seed          uint64           `json:"seed"`
	Scale         string           `json:"scale"`
	Repeats       int              `json:"repeats"`
	Process       obs.ProcessStats `json:"process"`
	Runs          []TelemetryRow   `json:"runs"`
}

// ReportSeeds lists the derived per-run seeds of a report in result
// order — the key set for obs.Collector.Take.
func ReportSeeds(r *Report) []uint64 {
	seeds := make([]uint64, 0, len(r.Results))
	for _, res := range r.Results {
		seeds = append(seeds, res.Seed)
	}
	return seeds
}

// BuildTelemetry joins a report with the observability data its runs
// deposited in the collector (keyed by derived seed). Runs the
// collector never saw (failed before the engine, or telemetry was
// enabled mid-campaign) still get a row carrying the runner's elapsed
// time.
func BuildTelemetry(r *Report, taken map[uint64]obs.RunTelemetry) *Telemetry {
	tel := &Telemetry{
		SchemaVersion: TelemetrySchemaVersion,
		Seed:          r.Seed,
		Scale:         r.Scale.String(),
		Repeats:       r.Repeats,
		Process:       obs.ProcessSnapshot(),
	}
	for _, res := range r.Results {
		row := TelemetryRow{
			Spec:      res.Spec.ID,
			Repeat:    res.Repeat,
			Seed:      res.Seed,
			ElapsedMS: float64(res.Elapsed.Nanoseconds()) / 1e6,
		}
		if rt, ok := taken[res.Seed]; ok {
			row.Engines = rt.Engines
			row.Events = rt.Events
			row.Scheduled = rt.Scheduled
			row.PeakQueue = rt.PeakQueue
			row.Slots = rt.Slots
			row.SimMS = rt.SimMS
			row.BuildMS = float64(rt.BuildNanos) / 1e6
			row.RunMS = float64(rt.RunNanos) / 1e6
			row.EventsPerSec = rt.EventsPerSec()
			row.Messages = rt.Messages
			row.Bytes = rt.Bytes
			row.Dropped = rt.Dropped
			row.PeakHeapBytes = rt.PeakHeapBytes
			row.Nodes = rt.Nodes
			row.BytesPerNode = rt.BytesPerNode()
			row.ShardWorkers = rt.ShardWorkers
			row.ShardWindows = rt.ShardWindows
			row.ShardStalled = rt.ShardStalled
			row.ShardMerged = rt.ShardMerged
			row.Lanes = rt.Lanes
			row.PairWindows = rt.PairWindows
			row.Kinds = rt.Kinds
		}
		tel.Runs = append(tel.Runs, row)
	}
	return tel
}

// WriteTelemetry stores telemetry.json. Call before WriteManifest so
// the blob is covered by the Merkle root.
func WriteTelemetry(st store.Store, tel *Telemetry) error {
	return putJSON(st, TelemetryFile, tel)
}

// ReadTelemetry loads a run directory's telemetry.json, if present.
func ReadTelemetry(st store.Store) (*Telemetry, error) {
	data, err := st.Get(TelemetryFile)
	if err != nil {
		return nil, err
	}
	var tel Telemetry
	if err := json.Unmarshal(data, &tel); err != nil {
		return nil, fmt.Errorf("experiments: parse %s: %w", TelemetryFile, err)
	}
	return &tel, nil
}

// RenderTelemetry renders the per-spec throughput table ethanalyze
// -run appends when a run directory carries telemetry, followed by a
// sharding section (stalled lane windows and the per-lane-pair window
// breakdown) for rows that executed under the conductor.
func RenderTelemetry(tel *Telemetry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Run telemetry — %s, %d run(s)\n", tel.Process.GoVersion, len(tel.Runs))
	fmt.Fprintf(&b, "  %-10s %3s %12s %12s %10s %10s %9s %12s %10s %8s\n",
		"spec", "rep", "events", "events/s", "peak q", "sim s", "wall s", "msgs", "heap MiB", "B/node")
	for _, row := range tel.Runs {
		fmt.Fprintf(&b, "  %-10s %3d %12d %12.0f %10d %10.1f %9.2f %12d %10.1f %8.0f\n",
			row.Spec, row.Repeat, row.Events, row.EventsPerSec,
			row.PeakQueue, float64(row.SimMS)/1e3, row.ElapsedMS/1e3, row.Messages,
			float64(row.PeakHeapBytes)/(1<<20), row.BytesPerNode)
	}
	for _, row := range tel.Runs {
		if row.ShardWindows == 0 {
			continue
		}
		stallPct := 0.0
		if row.ShardWindows > 0 {
			stallPct = 100 * float64(row.ShardStalled) / float64(row.ShardWindows)
		}
		fmt.Fprintf(&b, "  shard %s/%d: %d workers, %d windows, %d stalled lane windows (%.1f%% of windows), %d merged\n",
			row.Spec, row.Repeat, row.ShardWorkers, row.ShardWindows, row.ShardStalled, stallPct, row.ShardMerged)
		if len(row.PairWindows) > 0 {
			fmt.Fprintf(&b, "    %-9s %12s %10s %12s %10s\n", "src→dst", "windows", "stalled", "width ms", "mean ms")
			for _, p := range row.PairWindows {
				fmt.Fprintf(&b, "    %-9s %12d %10d %12d %10.1f\n",
					laneName(p.Src)+"→"+laneName(p.Dst), p.Count, p.Stalled, p.WidthSum, p.MeanWidth())
			}
		}
	}
	fmt.Fprintf(&b, "  process: heap %.1f MiB, %d GCs (%.1f ms pause), GOMAXPROCS %d\n",
		float64(tel.Process.HeapAllocBytes)/(1<<20), tel.Process.NumGC,
		tel.Process.GCPauseTotalMS, tel.Process.GOMAXPROCS)
	return b.String()
}

// laneName maps a conductor lane index to its display name: "G" for
// the global lane, otherwise the region abbreviation.
func laneName(i int) string {
	if i == 0 {
		return "G"
	}
	regions := geo.Regions()
	if i-1 < len(regions) {
		return regions[i-1].String()
	}
	return fmt.Sprintf("L%d", i)
}
