package experiments_test

import (
	"bytes"
	"context"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/store"
)

// The golden-artifact invariant harness: every spec's run directory
// must be byte-identical at -parallel 1 and -parallel 8. This promotes
// the hot-path overhaul's manual `diff -r` gate into a permanent test:
// any change that makes an experiment's output depend on worker count,
// scheduling, or map iteration order fails here, for the built-in
// paper specs, the new D1-D3 fault specs, and every shipped scenario
// file (fault schedules included).

const goldenSeed = 977

// goldenShortSpecs is the -short tier: the cheap core of the registry
// plus all three dependability specs. The full tier runs everything.
var goldenShortSpecs = map[string]bool{
	"T1": true, "network": true, "T2": true,
	"D1": true, "D2": true, "D3": true,
}

// goldenShortScenarios is the -short tier's scenario subset. The
// partition-heal file is the acceptance gate for fault determinism,
// relay-compare for relay-protocol determinism; both always run.
var goldenShortScenarios = map[string]bool{
	"paper-baseline.json": true,
	"partition-heal.json": true,
	"relay-compare.json":  true,
}

// runGolden executes the specs at the given parallelism and writes a
// run directory, sealed with its digest manifest — so the invariance
// gate also covers the Merkle root. Failures inside any run are
// fatal: a spec that cannot execute has no artifact to compare. The
// returned report lets scenario runs embed scenario.json before
// sealing.
func runGolden(t *testing.T, specs []experiments.Spec, dir string, parallel int, sets []*scenario.Set) {
	t.Helper()
	runGoldenAt(t, specs, dir, parallel, sets, experiments.ScaleSmall, 2)
}

// runGoldenAt is runGolden with an explicit scale and repeat count —
// the stress tier runs the 100k scenario at its full size with a
// single repeat per parallelism setting.
func runGoldenAt(t *testing.T, specs []experiments.Spec, dir string, parallel int, sets []*scenario.Set, scale experiments.Scale, repeats int) {
	t.Helper()
	report, err := experiments.Run(context.Background(), specs, experiments.RunnerConfig{
		Seed:     goldenSeed,
		Scale:    scale,
		Repeats:  repeats,
		Parallel: parallel,
	})
	if err != nil {
		t.Fatalf("campaign at parallel=%d: %v", parallel, err)
	}
	st := store.NewFS(dir)
	if err := experiments.WriteArtifacts(st, report); err != nil {
		t.Fatalf("write artifacts: %v", err)
	}
	if len(sets) > 0 {
		if err := scenario.WriteArtifact(st, sets); err != nil {
			t.Fatalf("write scenario artifact: %v", err)
		}
	}
	if err := experiments.WriteManifest(st, report); err != nil {
		t.Fatalf("write manifest: %v", err)
	}
	if err := store.Verify(st); err != nil {
		t.Fatalf("sealed run dir fails verification: %v", err)
	}
}

// dirFiles returns every file under root as sorted relative paths.
func dirFiles(t *testing.T, root string) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			files = append(files, rel)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk %s: %v", root, err)
	}
	sort.Strings(files)
	return files
}

// assertDirsIdentical compares two run directories byte for byte.
func assertDirsIdentical(t *testing.T, a, b string) {
	t.Helper()
	filesA, filesB := dirFiles(t, a), dirFiles(t, b)
	if len(filesA) != len(filesB) {
		t.Fatalf("run directories differ in file count: %d vs %d\n%v\n%v", len(filesA), len(filesB), filesA, filesB)
	}
	for i, rel := range filesA {
		if filesB[i] != rel {
			t.Fatalf("run directories differ in layout: %s vs %s", rel, filesB[i])
		}
		da, err := os.ReadFile(filepath.Join(a, rel))
		if err != nil {
			t.Fatal(err)
		}
		db, err := os.ReadFile(filepath.Join(b, rel))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(da, db) {
			t.Errorf("%s differs between the compared runs (%d vs %d bytes)", rel, len(da), len(db))
		}
	}
}

// TestGoldenBuiltinSpecsParallelInvariance runs the built-in registry
// (the full set, or the short tier under -short) at both parallelism
// settings and asserts byte-identical run directories.
func TestGoldenBuiltinSpecsParallelInvariance(t *testing.T) {
	var specs []experiments.Spec
	for _, s := range experiments.Specs() {
		if testing.Short() && !goldenShortSpecs[s.ID] {
			continue
		}
		if s.ID == "R1" || s.ID == "R2" {
			// The relay specs have their own invariance test below so
			// make test-relay can select them; running them here too
			// would double the full tier's heaviest sweeps.
			continue
		}
		specs = append(specs, s)
	}
	if len(specs) == 0 {
		t.Fatal("no specs selected")
	}
	seq, par := filepath.Join(t.TempDir(), "p1"), filepath.Join(t.TempDir(), "p8")
	runGolden(t, specs, seq, 1, nil)
	runGolden(t, specs, par, 8, nil)
	assertDirsIdentical(t, seq, par)
}

// TestGoldenScenarioArtifactsParallelInvariance compiles every shipped
// scenario file (sweep variants and fault schedules included) and
// asserts the same invariance, per file, with the embedded
// scenario.json included in the comparison — the full `ethrepro
// -scenario f.json -out dir` surface.
func TestGoldenScenarioArtifactsParallelInvariance(t *testing.T) {
	pattern := filepath.Join("..", "..", "examples", "scenarios", "*.json")
	paths, err := filepath.Glob(pattern)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no scenario files match %s", pattern)
	}
	sort.Strings(paths)
	sawPartitionHeal, sawRelayCompare := false, false
	for _, path := range paths {
		name := filepath.Base(path)
		if testing.Short() && !goldenShortScenarios[name] {
			continue
		}
		switch name {
		case "partition-heal.json":
			sawPartitionHeal = true
		case "relay-compare.json":
			sawRelayCompare = true
		}
		t.Run(name, func(t *testing.T) {
			set, err := scenario.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			specs, err := set.Compile()
			if err != nil {
				t.Fatal(err)
			}
			seq, par := filepath.Join(t.TempDir(), "p1"), filepath.Join(t.TempDir(), "p8")
			runGolden(t, specs, seq, 1, []*scenario.Set{set})
			runGolden(t, specs, par, 8, []*scenario.Set{set})
			assertDirsIdentical(t, seq, par)
		})
	}
	if !sawPartitionHeal {
		t.Error("partition-heal.json missing: the fault-determinism acceptance gate did not run")
	}
	if !sawRelayCompare {
		t.Error("relay-compare.json missing: the relay-determinism acceptance gate did not run")
	}
}

// TestGoldenRelaySpecsParallelInvariance pins the relay subsystem's
// registry specs — R1's per-protocol shoot-out and R2's
// mempool-divergence sweep — to the parallel-invariance contract.
// Skipped under -short (each spec runs a multi-campaign sweep); the
// full tier and `make test-relay` run it.
func TestGoldenRelaySpecsParallelInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("relay golden tier runs in make test-relay and the full suite")
	}
	specs, err := experiments.Select([]string{"R1", "R2"})
	if err != nil {
		t.Fatal(err)
	}
	seq, par := filepath.Join(t.TempDir(), "p1"), filepath.Join(t.TempDir(), "p8")
	runGolden(t, specs, seq, 1, nil)
	runGolden(t, specs, par, 8, nil)
	assertDirsIdentical(t, seq, par)
}
