package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Spec is one registered experiment: a named, seedable unit of work
// that regenerates one or more paper artifacts. Specs that share a
// campaign (the paper derives Figs. 1-3 from one month of logs) are
// registered as a single spec producing several outcomes, so the
// campaign runs once however many of its figures are requested.
type Spec struct {
	// ID is the registry key (e.g. "network", "T2", "W1").
	ID string
	// Title describes the spec for the registry table.
	Title string
	// Produces lists the outcome IDs the spec emits, in order.
	Produces []string
	// Run executes the experiment. It must be a pure function of
	// (seed, scale): the runner fans (spec, repeat) pairs across
	// workers and relies on this for byte-identical results at any
	// parallelism.
	Run func(seed uint64, sc Scale) ([]*Outcome, error) `json:"-"`
}

// registry holds every spec in registration order (the order
// cmd/ethrepro reports them in).
var registry []Spec

func register(s Spec) {
	for _, have := range registry {
		if strings.EqualFold(have.ID, s.ID) {
			panic("experiments: duplicate spec " + s.ID)
		}
	}
	registry = append(registry, s)
}

// wrap lifts a single-outcome experiment into a Spec runner.
func wrap(run func(uint64, Scale) (*Outcome, error)) func(uint64, Scale) ([]*Outcome, error) {
	return func(seed uint64, sc Scale) ([]*Outcome, error) {
		o, err := run(seed, sc)
		if err != nil {
			return nil, err
		}
		return []*Outcome{o}, nil
	}
}

func init() {
	register(Spec{
		ID: "T1", Title: "Table I — measurement infrastructure",
		Produces: []string{"T1"},
		Run: func(uint64, Scale) ([]*Outcome, error) {
			return []*Outcome{Table1()}, nil
		},
	})
	register(Spec{
		ID: "network", Title: "Figs. 1-3 — propagation, first observation, pool influence",
		Produces: []string{"F1", "F2", "F3"},
		Run:      NetworkExperiments,
	})
	register(Spec{
		ID: "T2", Title: "Table II — redundant block receptions",
		Produces: []string{"T2"},
		Run:      wrap(Table2),
	})
	register(Spec{
		ID: "commit", Title: "Figs. 4-5 — commit times and reordering",
		Produces: []string{"F4", "F5"},
		Run:      CommitExperiments,
	})
	register(Spec{
		ID: "chain", Title: "Fig. 6, Table III, §III-C5, Fig. 7 — chain-level statistics",
		Produces: []string{"F6", "T3", "S1", "F7"},
		Run:      ChainExperiments,
	})
	register(Spec{
		ID: "S2", Title: "§III-D — whole-chain sequence tail",
		Produces: []string{"S2"},
		Run:      wrap(WholeChainExperiment),
	})
	register(Spec{
		ID: "L1", Title: "Lesson 1 — restricted uncle rule ablation",
		Produces: []string{"L1"},
		Run:      wrap(Lesson1Experiment),
	})
	register(Spec{
		ID: "W1", Title: "§III-D — withholding burst test",
		Produces: []string{"W1"},
		Run:      wrap(WithholdingExperiment),
	})
	register(Spec{
		ID: "C1", Title: "§III-C1 — Constantinople bomb-delay ablation",
		Produces: []string{"C1"},
		Run:      wrap(ConstantinopleExperiment),
	})
	register(Spec{
		ID: "E1", Title: "§III-C3 — empty-block spread scenario",
		Produces: []string{"E1"},
		Run:      wrap(EmptyBlockSpreadExperiment),
	})
	register(Spec{
		// INC was historically registered as R1; it was renamed when
		// R1/R2 became the relay-protocol specs.
		ID: "INC", Title: "Incentive accounting (§III-C3, §III-C5)",
		Produces: []string{"INC"},
		Run:      wrap(RevenueExperiment),
	})
	register(Spec{
		ID: "A1", Title: "Ablation — dissemination fan-out policy",
		Produces: []string{"A1"},
		Run:      wrap(AblationFanout),
	})
	register(Spec{
		ID: "A2", Title: "Ablation — gateway placement",
		Produces: []string{"A2"},
		Run:      wrap(AblationGateways),
	})
	register(Spec{
		ID: "D1", Title: "Dependability — crash/recover propagation delay",
		Produces: []string{"D1"},
		Run:      wrap(CrashRecoverExperiment),
	})
	register(Spec{
		ID: "D2", Title: "Dependability — partition-heal fork rate",
		Produces: []string{"D2"},
		Run:      wrap(PartitionHealExperiment),
	})
	register(Spec{
		ID: "D3", Title: "Dependability — churn sweep",
		Produces: []string{"D3"},
		Run:      wrap(ChurnSweepExperiment),
	})
	register(Spec{
		ID: "R1", Title: "Relay protocols — bandwidth/delay shoot-out",
		Produces: []string{"R1"},
		Run:      wrap(RelayShootout),
	})
	register(Spec{
		ID: "R2", Title: "Relay protocols — compact-relay mempool-divergence sweep",
		Produces: []string{"R2"},
		Run:      wrap(CompactDivergenceSweep),
	})
}

// Register adds a spec compiled at runtime (scenario files) to the
// registry, alongside the built-in paper specs. Unlike init-time
// registration it reports collisions as errors: scenario names come
// from user files, not code. Both the spec ID and every produced
// outcome ID must be new — an outcome collision would make Lookup
// ambiguous. Callers that must stay re-entrant (CLI test harnesses)
// should compose with Merge instead of mutating the registry.
func Register(s Spec) error {
	merged, err := Merge(registry, s)
	if err != nil {
		return err
	}
	registry = merged
	return nil
}

// Merge appends runtime specs to a base list under the same collision
// rules as Register, without touching the global registry.
func Merge(base []Spec, extra ...Spec) ([]Spec, error) {
	out := make([]Spec, len(base), len(base)+len(extra))
	copy(out, base)
	for _, s := range extra {
		if s.ID == "" {
			return nil, fmt.Errorf("experiments: spec needs an ID")
		}
		if s.Run == nil {
			return nil, fmt.Errorf("experiments: spec %s needs a Run function", s.ID)
		}
		for _, id := range append([]string{s.ID}, s.Produces...) {
			if _, taken := LookupIn(out, id); taken {
				return nil, fmt.Errorf("experiments: %q already registered", id)
			}
		}
		out = append(out, s)
	}
	return out, nil
}

// Specs returns every registered spec in registration order.
func Specs() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	return out
}

// Lookup finds a registered spec by its ID or by an outcome ID it
// produces (case-insensitive), so callers can ask for "F1" and get
// the shared network campaign.
func Lookup(id string) (Spec, bool) {
	return LookupIn(registry, id)
}

// LookupIn is Lookup over an explicit spec list (registry built-ins
// merged with runtime-compiled scenario specs).
func LookupIn(specs []Spec, id string) (Spec, bool) {
	for _, s := range specs {
		if strings.EqualFold(s.ID, id) {
			return s, true
		}
		for _, p := range s.Produces {
			if strings.EqualFold(p, id) {
				return s, true
			}
		}
	}
	return Spec{}, false
}

// Select resolves a list of spec or outcome IDs against the registry.
func Select(ids []string) ([]Spec, error) {
	return SelectIn(Specs(), ids)
}

// SelectIn resolves a list of spec or outcome IDs to the matching
// specs from the given list, deduplicated, in list order. An empty
// list of IDs selects every spec. Unknown IDs are an error listing
// the valid names.
func SelectIn(specs []Spec, ids []string) ([]Spec, error) {
	if len(ids) == 0 {
		return specs, nil
	}
	want := make(map[string]bool, len(specs))
	for _, id := range ids {
		s, ok := LookupIn(specs, strings.TrimSpace(id))
		if !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)",
				id, strings.Join(knownIDsIn(specs), ", "))
		}
		want[s.ID] = true
	}
	var out []Spec
	for _, s := range specs {
		if want[s.ID] {
			out = append(out, s)
		}
	}
	return out, nil
}

// KnownIDs returns every selectable registry name: spec IDs plus the
// outcome IDs they produce, sorted.
func KnownIDs() []string {
	return knownIDsIn(registry)
}

func knownIDsIn(specs []Spec) []string {
	seen := map[string]bool{}
	var ids []string
	for _, s := range specs {
		for _, id := range append([]string{s.ID}, s.Produces...) {
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	sort.Strings(ids)
	return ids
}
