package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/sim"
)

// The dependability specs (D1-D3) run the paper's overlay campaign
// under injected faults — the degraded-network scenarios the original
// study could not measure. Each compares a faulted run against a
// healthy run at the same seed, so the reported deltas isolate the
// fault's effect from sampling noise. Registration happens at the end
// of registry.go's init so the catalog lists them after the paper
// specs (file-level init order would put them first).

// faultScale sizes the dependability campaigns: small enough that the
// healthy+faulted pair stays CI-friendly, large enough that region
// structure and fan-out redundancy are representative.
func faultScale(sc Scale) (nodes int, blocks uint64) {
	switch sc {
	case ScaleMedium:
		return 400, 240
	case ScalePaper:
		return 1000, 500
	case ScaleStress:
		return 4000, 120
	default:
		return 150, 60
	}
}

// faultCampaignConfig is the shared healthy baseline.
func faultCampaignConfig(seed uint64, sc Scale) core.CampaignConfig {
	nodes, blocks := faultScale(sc)
	cfg := core.DefaultCampaignConfig(seed)
	cfg.NetworkNodes = nodes
	cfg.Blocks = blocks
	cfg.Streaming = true
	return cfg
}

// horizonFor estimates the campaign's virtual horizon from its block
// budget at the default inter-block tempo, anchoring fault schedules
// to the run's length at every scale.
func horizonFor(blocks uint64) sim.Time {
	return sim.Time(blocks) * 13300 * sim.Millisecond
}

// availabilityFrom assembles the availability summary of a faulted
// campaign result.
func availabilityFrom(res *core.CampaignResult, nodes int) (*analysis.AvailabilityResult, error) {
	quiet := make(map[string]sim.Time, len(res.Nodes))
	for _, n := range res.Nodes {
		quiet[n.Name()] = n.MaxQuietGap()
	}
	return analysis.Availability(res.Faults, nodes, res.Duration, res.MessagesDropped, quiet)
}

// CrashRecoverExperiment (D1) measures how continuous crash/recover
// cycles stretch block propagation: a healthy run and a crashy run at
// the same seed, compared on the Fig. 1 delay profile.
func CrashRecoverExperiment(seed uint64, sc Scale) (*Outcome, error) {
	nodes, blocks := faultScale(sc)
	horizon := horizonFor(blocks)

	healthy, err := core.RunCampaign(faultCampaignConfig(seed, sc))
	if err != nil {
		return nil, fmt.Errorf("healthy campaign: %w", err)
	}
	healthyProp, err := analysis.PropagationDelays(healthy.Index)
	if err != nil {
		return nil, err
	}

	cfg := faultCampaignConfig(seed, sc)
	cfg.Faults = &faults.Config{
		Crash: &faults.Crash{
			// ~25 outages over the run, each ~45 s: enough overlap that
			// routes keep dying mid-propagation.
			MeanBetween:  horizon / 25,
			MeanDowntime: 45 * sim.Second,
		},
	}
	faulted, err := core.RunCampaign(cfg)
	if err != nil {
		return nil, fmt.Errorf("crash campaign: %w", err)
	}
	faultedProp, err := analysis.PropagationDelays(faulted.Index)
	if err != nil {
		return nil, err
	}
	avail, err := availabilityFrom(faulted, nodes)
	if err != nil {
		return nil, err
	}

	rendered := fmt.Sprintf("Dependability — crash/recover propagation delay (%d nodes, %d blocks)\n", nodes, blocks)
	rendered += fmt.Sprintf("  %-10s %12s %12s %12s\n", "overlay", "median (ms)", "p95 (ms)", "p99 (ms)")
	rendered += fmt.Sprintf("  %-10s %12.0f %12.0f %12.0f\n", "healthy",
		healthyProp.Summary.Median, healthyProp.Summary.P95, healthyProp.Summary.P99)
	rendered += fmt.Sprintf("  %-10s %12.0f %12.0f %12.0f\n", "crashy",
		faultedProp.Summary.Median, faultedProp.Summary.P95, faultedProp.Summary.P99)
	rendered += analysis.RenderAvailability(avail)
	return &Outcome{
		ID:       "D1",
		Title:    "Dependability — crash/recover propagation delay",
		Rendered: rendered,
		Metrics: map[string]float64{
			"healthy_median_ms": healthyProp.Summary.Median,
			"faulted_median_ms": faultedProp.Summary.Median,
			"healthy_p99_ms":    healthyProp.Summary.P99,
			"faulted_p99_ms":    faultedProp.Summary.P99,
			"availability":      avail.Availability,
			"crashes":           float64(avail.Crashes),
			"dropped_messages":  float64(avail.DroppedMessages),
		},
	}, nil
}

// PartitionHealExperiment (D2) splits Eastern Asia + Oceania off the
// overlay for a quarter of the run, then heals the cut, and measures
// the fork-rate cost: pools on opposite sides keep extending their own
// heads, so the chain view collects competing branches the healthy run
// never produces.
func PartitionHealExperiment(seed uint64, sc Scale) (*Outcome, error) {
	nodes, blocks := faultScale(sc)
	horizon := horizonFor(blocks)

	forkStats := func(res *core.CampaignResult) (*analysis.ForksResult, error) {
		return analysis.Forks(res.View)
	}

	healthy, err := core.RunCampaign(faultCampaignConfig(seed, sc))
	if err != nil {
		return nil, fmt.Errorf("healthy campaign: %w", err)
	}
	healthyForks, err := forkStats(healthy)
	if err != nil {
		return nil, err
	}

	cfg := faultCampaignConfig(seed, sc)
	cfg.Faults = &faults.Config{
		Partitions: []faults.Partition{{
			Start:    horizon / 4,
			Duration: horizon / 4,
			Regions:  []geo.Region{geo.EasternAsia, geo.Oceania},
		}},
	}
	parted, err := core.RunCampaign(cfg)
	if err != nil {
		return nil, fmt.Errorf("partition campaign: %w", err)
	}
	partedForks, err := forkStats(parted)
	if err != nil {
		return nil, err
	}
	avail, err := availabilityFrom(parted, nodes)
	if err != nil {
		return nil, err
	}

	rate := func(f *analysis.ForksResult) float64 {
		if f.MainBlocks == 0 {
			return 0
		}
		return 100 * float64(f.UncleBlocks+f.UnrecognizedBlocks) / float64(f.MainBlocks)
	}
	rendered := fmt.Sprintf("Dependability — partition-heal fork rate (%d nodes, %d blocks, EA+OC cut for 1/4 of the run)\n", nodes, blocks)
	rendered += fmt.Sprintf("  %-12s %12s %14s %16s\n", "overlay", "main blocks", "fork blocks", "forks/100 blocks")
	rendered += fmt.Sprintf("  %-12s %12d %14d %16.2f\n", "healthy",
		healthyForks.MainBlocks, healthyForks.UncleBlocks+healthyForks.UnrecognizedBlocks, rate(healthyForks))
	rendered += fmt.Sprintf("  %-12s %12d %14d %16.2f\n", "partitioned",
		partedForks.MainBlocks, partedForks.UncleBlocks+partedForks.UnrecognizedBlocks, rate(partedForks))
	rendered += analysis.RenderAvailability(avail)
	return &Outcome{
		ID:       "D2",
		Title:    "Dependability — partition-heal fork rate",
		Rendered: rendered,
		Metrics: map[string]float64{
			"healthy_fork_rate":     rate(healthyForks),
			"partitioned_fork_rate": rate(partedForks),
			"partition_s":           avail.PartitionS,
			"dropped_messages":      float64(avail.DroppedMessages),
			"max_quiet_gap_s":       avail.MaxQuietGapS,
		},
	}, nil
}

// ChurnSweepExperiment (D3) sweeps the overlay's membership turnover
// from static to aggressive and reports the propagation cost: gossip's
// redundancy absorbs moderate churn, which is exactly the §III-A2
// robustness argument the paper quotes.
func ChurnSweepExperiment(seed uint64, sc Scale) (*Outcome, error) {
	nodes, blocks := faultScale(sc)
	horizon := horizonFor(blocks)

	type row struct {
		label         string
		median, p99   float64
		joins, leaves int
		dropped       uint64
	}
	var rows []row
	metrics := map[string]float64{}
	for _, tier := range []struct {
		label string
		mean  sim.Time
	}{
		{"static", 0},
		{"moderate", horizon / 60},
		{"heavy", horizon / 240},
	} {
		cfg := faultCampaignConfig(seed, sc)
		if tier.mean > 0 {
			cfg.Faults = &faults.Config{
				Churn: &faults.Churn{MeanBetween: tier.mean},
			}
		}
		res, err := core.RunCampaign(cfg)
		if err != nil {
			return nil, fmt.Errorf("churn %s: %w", tier.label, err)
		}
		prop, err := analysis.PropagationDelays(res.Index)
		if err != nil {
			return nil, err
		}
		r := row{label: tier.label, median: prop.Summary.Median, p99: prop.Summary.P99}
		if res.Faults != nil {
			r.joins, r.leaves = res.Faults.Joins, res.Faults.Leaves
			r.dropped = res.MessagesDropped
		}
		rows = append(rows, r)
		metrics[tier.label+"_median_ms"] = r.median
		metrics[tier.label+"_p99_ms"] = r.p99
		metrics[tier.label+"_joins"] = float64(r.joins)
		metrics[tier.label+"_leaves"] = float64(r.leaves)
	}

	rendered := fmt.Sprintf("Dependability — churn sweep (%d nodes, %d blocks)\n", nodes, blocks)
	rendered += fmt.Sprintf("  %-10s %12s %12s %8s %8s %10s\n", "churn", "median (ms)", "p99 (ms)", "joins", "leaves", "dropped")
	for _, r := range rows {
		rendered += fmt.Sprintf("  %-10s %12.0f %12.0f %8d %8d %10d\n",
			r.label, r.median, r.p99, r.joins, r.leaves, r.dropped)
	}
	rendered += "  Gossip redundancy absorbs moderate turnover; only aggressive\n  churn moves the delay profile (the paper's §III-A2 argument).\n"
	return &Outcome{
		ID:       "D3",
		Title:    "Dependability — churn sweep",
		Rendered: rendered,
		Metrics:  metrics,
	}, nil
}
