package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSpec returns a spec whose single outcome is a pure function of
// its seed, so determinism tests can compare across worker counts
// without running real campaigns.
func fakeSpec(id string) Spec {
	return Spec{
		ID: id, Title: "fake " + id, Produces: []string{id},
		Run: func(seed uint64, sc Scale) ([]*Outcome, error) {
			return []*Outcome{{
				ID:       id,
				Title:    "fake " + id,
				Rendered: fmt.Sprintf("%s@%d\n", id, seed),
				Metrics:  map[string]float64{"seed_mod": float64(seed % 1000)},
			}}, nil
		},
	}
}

// stripElapsed zeroes the wall-clock fields so reports can be compared
// structurally.
func stripElapsed(r *Report) {
	for i := range r.Results {
		r.Results[i].Elapsed = 0
	}
}

func TestSeedForDerivation(t *testing.T) {
	if SeedFor(42, "network", 0) != SeedFor(42, "network", 0) {
		t.Fatal("SeedFor must be deterministic")
	}
	seen := map[uint64]string{}
	for _, spec := range []string{"network", "chain", "T2", "W1"} {
		for r := 0; r < 5; r++ {
			for _, base := range []uint64{0, 1, 42} {
				s := SeedFor(base, spec, r)
				key := fmt.Sprintf("%s/%d/%d", spec, r, base)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: %s and %s both derive %d", prev, key, s)
				}
				seen[s] = key
			}
		}
	}
}

func TestRunnerDeterministicAcrossParallelism(t *testing.T) {
	specs := []Spec{fakeSpec("X1"), fakeSpec("X2"), fakeSpec("X3"), fakeSpec("X4")}
	workerCounts := []int{1, 4, 16}
	// Serialized (artifact-level) comparison: Spec.Run is a func and
	// never reflect.DeepEqual, but everything an artifact records must
	// be byte-identical across worker counts.
	var serialized []string
	for _, workers := range workerCounts {
		rep, err := Run(context.Background(), specs, RunnerConfig{Seed: 7, Scale: ScaleSmall, Repeats: 3, Parallel: workers})
		if err != nil {
			t.Fatal(err)
		}
		stripElapsed(rep)
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		serialized = append(serialized, string(data))
	}
	for i := 1; i < len(serialized); i++ {
		if serialized[0] != serialized[i] {
			t.Fatalf("report diverged between parallel=1 and parallel=%d", workerCounts[i])
		}
	}
}

func TestRunnerAggregatesAcrossRepeats(t *testing.T) {
	spec := fakeSpec("X1")
	rep, err := Run(context.Background(), []Spec{spec}, RunnerConfig{Seed: 9, Repeats: 4, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Summaries) != 1 {
		t.Fatalf("summaries: %+v", rep.Summaries)
	}
	s := rep.Summaries[0]
	if s.OutcomeID != "X1" || s.Metric != "seed_mod" || s.N != 4 {
		t.Fatalf("summary: %+v", s)
	}
	var want float64
	for r := 0; r < 4; r++ {
		want += float64(SeedFor(9, "X1", r) % 1000)
	}
	want /= 4
	if math.Abs(s.Mean-want) > 1e-9 {
		t.Fatalf("mean %v, want %v", s.Mean, want)
	}
	if s.Min > s.Mean || s.Max < s.Mean || s.StdDev < 0 {
		t.Fatalf("inconsistent summary: %+v", s)
	}
}

func TestRunnerStreamsEveryResult(t *testing.T) {
	specs := []Spec{fakeSpec("X1"), fakeSpec("X2")}
	var mu sync.Mutex
	got := map[string]int{}
	_, err := Run(context.Background(), specs, RunnerConfig{Seed: 1, Repeats: 3, Parallel: 4,
		OnResult: func(r Result) {
			mu.Lock()
			got[r.Spec.ID]++
			mu.Unlock()
		}})
	if err != nil {
		t.Fatal(err)
	}
	if got["X1"] != 3 || got["X2"] != 3 {
		t.Fatalf("streamed counts: %v", got)
	}
}

func TestRunnerReportsFailuresWithoutAborting(t *testing.T) {
	bad := Spec{ID: "bad", Produces: []string{"bad"},
		Run: func(seed uint64, sc Scale) ([]*Outcome, error) {
			return nil, fmt.Errorf("boom")
		}}
	rep, err := Run(context.Background(), []Spec{bad, fakeSpec("X1")}, RunnerConfig{Seed: 1, Repeats: 2, Parallel: 2})
	if err == nil {
		t.Fatal("failed runs must surface an error")
	}
	if rep == nil {
		t.Fatal("report must survive failures")
	}
	okRuns, failed := 0, 0
	for _, r := range rep.Results {
		if r.Err != nil {
			failed++
		} else {
			okRuns++
		}
	}
	if failed != 2 || okRuns != 2 {
		t.Fatalf("failed=%d ok=%d", failed, okRuns)
	}
	// Aggregation covers only the successful runs.
	if len(rep.Summaries) != 1 || rep.Summaries[0].N != 2 {
		t.Fatalf("summaries: %+v", rep.Summaries)
	}
}

func TestRenderOutcomesFallsBackPastFailedRepeat(t *testing.T) {
	// A spec whose repeat 0 fails must still render from its first
	// successful repeat (derived seeds differ per repeat, so a single
	// repeat can fail alone).
	flaky := Spec{ID: "flaky", Produces: []string{"flaky"},
		Run: func(seed uint64, sc Scale) ([]*Outcome, error) {
			if seed == SeedFor(3, "flaky", 0) {
				return nil, fmt.Errorf("repeat-0 failure")
			}
			return []*Outcome{{ID: "flaky", Title: "flaky", Rendered: "survived\n",
				Metrics: map[string]float64{"v": 1}}}, nil
		}}
	rep, err := Run(context.Background(), []Spec{flaky}, RunnerConfig{Seed: 3, Repeats: 2, Parallel: 1})
	if err == nil {
		t.Fatal("repeat-0 failure must surface")
	}
	out := rep.RenderOutcomes()
	if !strings.Contains(out, "survived") {
		t.Fatalf("first successful repeat not rendered:\n%s", out)
	}
	if strings.Count(out, "survived") != 1 {
		t.Fatalf("spec rendered more than once:\n%s", out)
	}
}

func TestEffectiveParallel(t *testing.T) {
	if got := EffectiveParallel(4, 3, 2, 0); got != 4 {
		t.Fatalf("explicit request: %d", got)
	}
	if got := EffectiveParallel(100, 3, 2, 0); got != 6 {
		t.Fatalf("clamp to job count: %d", got)
	}
	if got := EffectiveParallel(0, 1000, 1, 0); got < 1 {
		t.Fatalf("default must be positive: %d", got)
	}
	if got := EffectiveParallel(8, 2, 0, 0); got != 2 {
		t.Fatalf("repeats <= 0 means 1: %d", got)
	}
}

func TestRunnerRejectsEmptySelection(t *testing.T) {
	if _, err := Run(context.Background(), nil, RunnerConfig{Seed: 1}); err == nil {
		t.Fatal("empty spec list must fail")
	}
}

func TestRunnerActuallyRunsConcurrently(t *testing.T) {
	// Four 50 ms specs at parallel=4 must overlap: well under the
	// 200 ms serial time.
	var inFlight, peak atomic.Int32
	slow := func(id string) Spec {
		return Spec{ID: id, Produces: []string{id},
			Run: func(seed uint64, sc Scale) ([]*Outcome, error) {
				cur := inFlight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				time.Sleep(50 * time.Millisecond)
				inFlight.Add(-1)
				return []*Outcome{{ID: id, Metrics: map[string]float64{"v": 1}}}, nil
			}}
	}
	specs := []Spec{slow("S1x"), slow("S2x"), slow("S3x"), slow("S4x")}
	if _, err := Run(context.Background(), specs, RunnerConfig{Seed: 1, Parallel: 4}); err != nil {
		t.Fatal(err)
	}
	// Peak in-flight count proves overlap without a wall-clock bound
	// (which would flake on loaded CI runners).
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency %d", peak.Load())
	}
}

// TestRealSpecByteIdenticalAcrossParallelism runs a real (cheap)
// campaign spec at two worker counts and requires identical artifacts
// — the acceptance bar for cmd/ethrepro -parallel.
func TestRealSpecByteIdenticalAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("real campaigns are too slow for -short")
	}
	specs, err := Select([]string{"network", "T2"})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) string {
		rep, err := Run(context.Background(), specs, RunnerConfig{Seed: 42, Scale: ScaleSmall, Repeats: 2, Parallel: workers})
		if err != nil {
			t.Fatal(err)
		}
		stripElapsed(rep)
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if run(1) != run(4) {
		t.Fatal("real campaign diverged between parallel=1 and parallel=4")
	}
}

func TestEffectiveParallelBudget(t *testing.T) {
	// The budget clamps after the job-count clamp: a server splitting
	// the machine across campaigns caps each one's workers.
	if got := EffectiveParallel(8, 10, 1, 2); got != 2 {
		t.Fatalf("budget clamp: %d", got)
	}
	if got := EffectiveParallel(2, 10, 1, 4); got != 2 {
		t.Fatalf("budget must not raise the request: %d", got)
	}
	if got := EffectiveParallel(8, 10, 1, 0); got != 8 {
		t.Fatalf("zero budget means unbudgeted: %d", got)
	}
	if got := EffectiveParallel(0, 1, 1, 1); got != 1 {
		t.Fatalf("budget floor: %d", got)
	}
}

func TestRunnerBudgetCapsConcurrency(t *testing.T) {
	var inFlight, peak atomic.Int32
	slow := func(id string) Spec {
		return Spec{ID: id, Produces: []string{id},
			Run: func(seed uint64, sc Scale) ([]*Outcome, error) {
				cur := inFlight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				time.Sleep(20 * time.Millisecond)
				inFlight.Add(-1)
				return []*Outcome{{ID: id, Metrics: map[string]float64{"v": 1}}}, nil
			}}
	}
	specs := []Spec{slow("B1"), slow("B2"), slow("B3"), slow("B4")}
	if _, err := Run(context.Background(), specs, RunnerConfig{Seed: 1, Parallel: 4, Budget: 1}); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got != 1 {
		t.Fatalf("budget=1 but peak concurrency was %d", got)
	}
}

func TestRunnerStreamsStarts(t *testing.T) {
	specs := []Spec{fakeSpec("X1"), fakeSpec("X2")}
	var mu sync.Mutex
	starts, results := map[string]int{}, 0
	_, err := Run(context.Background(), specs, RunnerConfig{Seed: 1, Repeats: 2, Parallel: 4,
		OnStart: func(r Result) {
			if r.Outcomes != nil || r.Err != nil || r.Elapsed != 0 {
				t.Errorf("OnStart result carries completion fields: %+v", r)
			}
			if r.Seed != SeedFor(1, r.Spec.ID, r.Repeat) {
				t.Errorf("OnStart seed mismatch: %+v", r)
			}
			mu.Lock()
			starts[r.Spec.ID]++
			mu.Unlock()
		},
		OnResult: func(r Result) {
			mu.Lock()
			results++
			mu.Unlock()
		}})
	if err != nil {
		t.Fatal(err)
	}
	if starts["X1"] != 2 || starts["X2"] != 2 || results != 4 {
		t.Fatalf("starts=%v results=%d", starts, results)
	}
}

// TestRunnerCancellationDrainsCleanly: cancelling mid-campaign stops
// dispatch, completes in-flight runs, and marks everything
// undispatched with the context error — the Report stays rectangular.
func TestRunnerCancellationDrainsCleanly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var started atomic.Int32
	blocking := func(id string) Spec {
		return Spec{ID: id, Produces: []string{id},
			Run: func(seed uint64, sc Scale) ([]*Outcome, error) {
				started.Add(1)
				<-release
				return []*Outcome{{ID: id, Metrics: map[string]float64{"v": 1}}}, nil
			}}
	}
	specs := []Spec{blocking("C1"), blocking("C2"), blocking("C3"), blocking("C4")}
	done := make(chan struct{})
	var rep *Report
	var runErr error
	go func() {
		defer close(done)
		rep, runErr = Run(ctx, specs, RunnerConfig{Seed: 5, Repeats: 2, Parallel: 2})
	}()
	// Wait for both workers to be mid-run, then cancel and unblock.
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	<-done

	if runErr == nil || !errors.Is(runErr, context.Canceled) {
		t.Fatalf("cancelled campaign error: %v", runErr)
	}
	if rep == nil || len(rep.Results) != 8 {
		t.Fatalf("report must stay rectangular: %+v", rep)
	}
	completed, skipped := 0, 0
	for _, r := range rep.Results {
		switch {
		case r.Err == nil && len(r.Outcomes) == 1:
			completed++
		case errors.Is(r.Err, context.Canceled):
			if r.Seed != SeedFor(5, r.Spec.ID, r.Repeat) {
				t.Errorf("skipped run lost its derived seed: %+v", r)
			}
			skipped++
		default:
			t.Errorf("unexpected result: %+v", r)
		}
	}
	// The two in-flight runs (plus up to one more dispatched into the
	// unbuffered jobs channel per worker) complete; the rest skip.
	if completed < 2 || skipped == 0 || completed+skipped != 8 {
		t.Fatalf("completed=%d skipped=%d", completed, skipped)
	}
	// Aggregation covers only completed runs.
	if len(rep.Summaries) == 0 {
		t.Fatal("completed runs must still aggregate")
	}
}

// TestRunnerPreCancelledContext: an already-cancelled context runs
// nothing but still returns a fully-marked report.
func TestRunnerPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, []Spec{fakeSpec("X1")}, RunnerConfig{Seed: 1, Repeats: 3})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("error: %v", err)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("results: %d", len(rep.Results))
	}
	for _, r := range rep.Results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("result not marked cancelled: %+v", r)
		}
	}
}
