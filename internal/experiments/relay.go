package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/p2p/relay"
	"repro/internal/sim"
	"repro/internal/txgen"
)

// relayCampaign runs one overlay campaign under a relay protocol with
// a live transaction workload (compact reconstruction is only
// interesting when blocks carry transactions). privateProb is the
// mempool-divergence knob: the fraction of transactions submitted
// straight to miners without entering gossip.
func relayCampaign(seed uint64, sc Scale, rc relay.Config, privateProb float64) (*core.CampaignResult, error) {
	nodes, blocks, _ := networkScale(sc)
	// The relay comparison needs bandwidth and delay distributions,
	// not the full propagation figure set, and it runs one campaign
	// per protocol/divergence point — so the small tier shrinks
	// further (transaction gossip dominates the cost) and the block
	// budget is capped at every scale.
	if sc == ScaleSmall {
		nodes, blocks = 120, 60
	}
	if blocks > 400 {
		blocks = 400
	}
	cfg := core.DefaultCampaignConfig(seed)
	cfg.NetworkNodes = nodes
	cfg.Blocks = blocks
	cfg.Streaming = true
	cfg.Measurement = core.PaperMeasurementSpecs(40)
	cfg.Relay = rc
	wl := txgen.DefaultConfig()
	wl.Senders = 600
	wl.MeanInterArrival = 500 * sim.Millisecond // ~2 tx/s, ~26 tx/block
	wl.PrivateProb = privateProb
	cfg.Workload = &wl
	return core.RunCampaign(cfg)
}

// CompactRelaySpread runs one compact-relay overlay campaign with
// moderately divergent mempools — the BenchmarkCompactRelaySpread
// workload, exercising sketch pushes, reconstruction, missing-tx
// round trips and the bandwidth accounting end to end.
func CompactRelaySpread(seed uint64, sc Scale) (*core.CampaignResult, error) {
	return relayCampaign(seed, sc, relay.Config{Mode: relay.Compact}, 0.15)
}

// RelayShootout (R1) compares every registered relay protocol on the
// same seeded overlay: propagation delay against bandwidth, per-class
// byte budgets, and the compact protocol's reconstruction profile —
// the protocol-versus-topology question the paper's fixed-discipline
// measurement could not separate.
func RelayShootout(seed uint64, sc Scale) (*Outcome, error) {
	type row struct {
		mode   relay.Mode
		median float64
		p95    float64
		mbytes float64
		kbBlk  float64
		hit    float64
		msgs   uint64
	}
	var rows []row
	for _, mode := range relay.Modes() {
		res, err := relayCampaign(seed, sc, relay.Config{Mode: mode}, 0)
		if err != nil {
			return nil, fmt.Errorf("relay %s: %w", mode, err)
		}
		prop, err := analysis.PropagationDelays(res.Index)
		if err != nil {
			return nil, fmt.Errorf("relay %s: %w", mode, err)
		}
		bw := res.Bandwidth
		rows = append(rows, row{
			mode:   mode,
			median: prop.Summary.Median,
			p95:    prop.Summary.P95,
			mbytes: float64(bw.TotalBytes) / 1e6,
			kbBlk:  bw.BytesPerBlock() / 1e3,
			hit:    bw.Reconstruction.HitRate(),
			msgs:   bw.TotalMessages,
		})
	}
	rendered := "Relay protocol shoot-out — per-protocol bandwidth/delay (same seed, same overlay)\n"
	rendered += fmt.Sprintf("  %-14s %12s %10s %10s %10s %12s %9s\n",
		"protocol", "median (ms)", "p95 (ms)", "total MB", "KB/block", "messages", "hit rate")
	metrics := map[string]float64{}
	for _, r := range rows {
		hit := "-"
		if r.mode == relay.Compact {
			hit = fmt.Sprintf("%.1f%%", r.hit*100)
		}
		rendered += fmt.Sprintf("  %-14s %12.0f %10.0f %10.1f %10.1f %12d %9s\n",
			r.mode, r.median, r.p95, r.mbytes, r.kbBlk, r.msgs, hit)
		name := r.mode.String()
		metrics[name+"_median_ms"] = r.median
		metrics[name+"_mb"] = r.mbytes
		metrics[name+"_kb_per_block"] = r.kbBlk
		if r.mode == relay.Compact {
			metrics["compact_hit_rate"] = r.hit
		}
	}
	rendered += "  The push/announce split sets the delay floor; what the push wave\n" +
		"  carries sets the byte budget. Compact relay keeps sqrt-push's delay\n" +
		"  shape at a fraction of its bytes while mempools overlap.\n"
	return &Outcome{ID: "R1", Title: "Relay protocols — shoot-out", Rendered: rendered, Metrics: metrics}, nil
}

// divergencePoints are the R2 sweep's private-submission fractions:
// from fully public mempools to a majority of block content never
// gossiped.
var divergencePoints = []float64{0, 0.15, 0.3, 0.6}

// CompactDivergenceSweep (R2) sweeps mempool divergence under the
// compact protocol: as the private-transaction fraction grows, sketch
// reconstruction degrades from pool hits through missing-tx round
// trips to full-body fallbacks, and the bandwidth advantage erodes.
func CompactDivergenceSweep(seed uint64, sc Scale) (*Outcome, error) {
	rendered := "Compact relay — mempool-divergence sweep (private-submission fraction)\n"
	rendered += fmt.Sprintf("  %-9s %12s %10s %8s %10s %10s %10s %10s\n",
		"private", "median (ms)", "KB/block", "hit", "full", "roundtrip", "fallback", "missing tx")
	metrics := map[string]float64{}
	for _, p := range divergencePoints {
		res, err := relayCampaign(seed, sc, relay.Config{Mode: relay.Compact}, p)
		if err != nil {
			return nil, fmt.Errorf("divergence %v: %w", p, err)
		}
		prop, err := analysis.PropagationDelays(res.Index)
		if err != nil {
			return nil, fmt.Errorf("divergence %v: %w", p, err)
		}
		bw := res.Bandwidth
		r := bw.Reconstruction
		rendered += fmt.Sprintf("  %8.0f%% %12.0f %10.1f %7.1f%% %10d %10d %10d %10d\n",
			p*100, prop.Summary.Median, bw.BytesPerBlock()/1e3, r.HitRate()*100,
			r.Full, r.Partial, r.Fallback, r.MissingTxs)
		key := fmt.Sprintf("p%02.0f", p*100)
		metrics[key+"_median_ms"] = prop.Summary.Median
		metrics[key+"_kb_per_block"] = bw.BytesPerBlock() / 1e3
		metrics[key+"_hit_rate"] = r.HitRate()
		metrics[key+"_fallbacks"] = float64(r.Fallback)
	}
	rendered += "  Reconstruction is a bet on mempool overlap: private order flow is\n" +
		"  the knob that voids it.\n"
	return &Outcome{ID: "R2", Title: "Compact relay — mempool-divergence sweep", Rendered: rendered, Metrics: metrics}, nil
}
