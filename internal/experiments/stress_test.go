package experiments_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

// TestGoldenStress100kParallelInvariance is the full tier of `make
// test-stress`: the shipped 100,000-node scenario
// (examples/scenarios/stress-100k.json) at its full literal size, run
// at -parallel 1 and 8 with byte-identical run directories required.
// The regular golden harness already covers the same file at small
// scale; this tier proves the struct-of-arrays core holds the
// determinism contract at the scale it was built for. Two full 100k
// campaigns cost several minutes, so the test is opt-in via the
// STRESS100K environment variable (the test-stress Make target sets
// it).
func TestGoldenStress100kParallelInvariance(t *testing.T) {
	if os.Getenv("STRESS100K") == "" {
		t.Skip("set STRESS100K=1 (make test-stress) to run the full 100k invariance tier")
	}
	set, err := scenario.Load(filepath.Join("..", "..", "examples", "scenarios", "stress-100k.json"))
	if err != nil {
		t.Fatal(err)
	}
	specs, err := set.Compile()
	if err != nil {
		t.Fatal(err)
	}
	seq, par := filepath.Join(t.TempDir(), "p1"), filepath.Join(t.TempDir(), "p8")
	runGoldenAt(t, specs, seq, 1, []*scenario.Set{set}, experiments.ScaleMedium, 1)
	runGoldenAt(t, specs, par, 8, []*scenario.Set{set}, experiments.ScaleMedium, 1)
	assertDirsIdentical(t, seq, par)
}
