package experiments

import (
	"strings"
	"testing"
)

func TestRegistryCoversEveryOutcome(t *testing.T) {
	// Every paper artifact the old ad-hoc API produced must remain
	// reachable through the registry.
	want := []string{"T1", "F1", "F2", "F3", "T2", "F4", "F5", "F6", "T3",
		"S1", "F7", "S2", "L1", "W1", "C1", "E1", "INC", "A1", "A2"}
	seen := map[string]string{}
	for _, s := range Specs() {
		if len(s.Produces) == 0 {
			t.Errorf("spec %s produces nothing", s.ID)
		}
		if s.Run == nil {
			t.Errorf("spec %s has no runner", s.ID)
		}
		for _, p := range s.Produces {
			if prev, dup := seen[p]; dup {
				t.Errorf("outcome %s claimed by both %s and %s", p, prev, s.ID)
			}
			seen[p] = s.ID
		}
	}
	for _, id := range want {
		if seen[id] == "" {
			t.Errorf("outcome %s not produced by any spec", id)
		}
	}
}

func TestLookupByOutcomeAndSpecID(t *testing.T) {
	s, ok := Lookup("f2")
	if !ok || s.ID != "network" {
		t.Fatalf("lookup f2: %v %v", s.ID, ok)
	}
	s, ok = Lookup("CHAIN")
	if !ok || s.ID != "chain" {
		t.Fatalf("lookup CHAIN: %v %v", s.ID, ok)
	}
	if _, ok := Lookup("F99"); ok {
		t.Fatal("unknown outcome must miss")
	}
}

func TestSelect(t *testing.T) {
	all, err := Select(nil)
	if err != nil || len(all) != len(Specs()) {
		t.Fatalf("empty selection must return all: %d, %v", len(all), err)
	}
	// F1 and F3 share the network campaign: dedup to one spec, and
	// registration order is preserved.
	got, err := Select([]string{"F3", "T1", "F1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "T1" || got[1].ID != "network" {
		ids := make([]string, len(got))
		for i, s := range got {
			ids[i] = s.ID
		}
		t.Fatalf("selection: %v", ids)
	}
	if _, err := Select([]string{"nope"}); err == nil ||
		!strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("unknown id must fail with the known list, got %v", err)
	}
}

func TestKnownIDs(t *testing.T) {
	ids := KnownIDs()
	has := map[string]bool{}
	for _, id := range ids {
		if has[id] {
			t.Fatalf("duplicate id %s", id)
		}
		has[id] = true
	}
	for _, want := range []string{"network", "chain", "commit", "F1", "T1", "W1"} {
		if !has[want] {
			t.Fatalf("KnownIDs missing %s: %v", want, ids)
		}
	}
}

func TestRegisterRuntimeSpecs(t *testing.T) {
	// Register mutates the package-global registry; restore it so the
	// test spec does not leak into later tests.
	saved := make([]Spec, len(registry))
	copy(saved, registry)
	t.Cleanup(func() { registry = saved })

	noop := func(uint64, Scale) ([]*Outcome, error) { return nil, nil }
	if err := Register(Spec{ID: "", Run: noop}); err == nil {
		t.Error("empty ID must fail")
	}
	if err := Register(Spec{ID: "runtime-x"}); err == nil {
		t.Error("nil Run must fail")
	}
	if err := Register(Spec{ID: "network", Run: noop}); err == nil {
		t.Error("duplicate spec ID must fail")
	}
	if err := Register(Spec{ID: "runtime-x", Produces: []string{"F1"}, Run: noop}); err == nil {
		t.Error("outcome ID collision must fail")
	}
	if err := Register(Spec{ID: "runtime-x", Produces: []string{"runtime-x/out"}, Run: noop}); err != nil {
		t.Fatalf("valid runtime spec rejected: %v", err)
	}
	if _, ok := Lookup("runtime-x/out"); !ok {
		t.Error("registered spec not selectable by outcome ID")
	}
	if err := Register(Spec{ID: "RUNTIME-X", Run: noop}); err == nil {
		t.Error("case-insensitive duplicate must fail")
	}
}
