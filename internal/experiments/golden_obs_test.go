package experiments_test

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/store"
)

// The observability determinism gate: enabling engine tracing and run
// telemetry must not change a single artifact byte or the Merkle
// root. Tracing reads engine counters and wall clocks only — if it
// ever consumes RNG, reorders events or leaks into an artifact, these
// tests fail.

// obsGoldenSpecs keeps this gate fast while covering the three engine
// dispatch classes: T1/network (funcs, calls, timers via the overlay
// and mining), D1 (fault opcodes).
var obsGoldenSpecs = []string{"T1", "network", "D1"}

func runGoldenSpecs(t *testing.T, dir string, parallel int) {
	t.Helper()
	specs, err := experiments.Select(obsGoldenSpecs)
	if err != nil {
		t.Fatal(err)
	}
	runGolden(t, specs, dir, parallel, nil)
}

// TestGoldenTracingInvariance runs the same campaign with collection
// off, with telemetry on, and with full tracing on — at parallel 1
// and 8 — and asserts every run directory is byte-identical. The
// telemetry/tracing runs do not write telemetry.json here (that is
// the caller's opt-in), so the comparison is exact.
func TestGoldenTracingInvariance(t *testing.T) {
	defer obs.Default.Disable()

	base := t.TempDir()
	plain := filepath.Join(base, "plain")
	obs.Default.Disable()
	runGoldenSpecs(t, plain, 1)

	for _, tc := range []struct {
		name    string
		enable  func()
		workers int
	}{
		{"telemetry-p1", func() { obs.Default.EnableTelemetry() }, 1},
		{"telemetry-p8", func() { obs.Default.EnableTelemetry() }, 8},
		{"tracing-p1", func() { obs.Default.EnableTracing(1 << 10) }, 1},
		{"tracing-p8", func() { obs.Default.EnableTracing(1 << 10) }, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer obs.Default.Disable()
			tc.enable()
			dir := filepath.Join(base, tc.name)
			runGoldenSpecs(t, dir, tc.workers)
			assertDirsIdentical(t, plain, dir)
		})
	}
}

// TestTelemetryJoinsReportBySeed runs a tiny traced campaign and
// checks the collector data lands on the right (spec, repeat) rows.
func TestTelemetryJoinsReportBySeed(t *testing.T) {
	defer obs.Default.Disable()
	obs.Default.EnableTracing(1 << 10)

	// T2 and D1 both execute real campaigns; a static spec like T1
	// would (correctly) produce an elapsed-only row.
	specs, err := experiments.Select([]string{"T2", "D1"})
	if err != nil {
		t.Fatal(err)
	}
	report, err := experiments.Run(context.Background(), specs, experiments.RunnerConfig{
		Seed: goldenSeed, Scale: experiments.ScaleSmall, Repeats: 2, Parallel: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	taken := obs.Default.Take(experiments.ReportSeeds(report))
	tel := experiments.BuildTelemetry(report, taken)

	if len(tel.Runs) != len(report.Results) {
		t.Fatalf("telemetry rows = %d, want %d", len(tel.Runs), len(report.Results))
	}
	for i, row := range tel.Runs {
		res := report.Results[i]
		if row.Spec != res.Spec.ID || row.Repeat != res.Repeat || row.Seed != res.Seed {
			t.Fatalf("row %d misjoined: %+v vs result %s/%d", i, row, res.Spec.ID, res.Repeat)
		}
		if row.Engines == 0 || row.Events == 0 {
			t.Errorf("row %s/%d has no engine data: %+v", row.Spec, row.Repeat, row)
		}
		if row.PeakQueue == 0 {
			t.Errorf("row %s/%d has no queue high-water", row.Spec, row.Repeat)
		}
		if len(row.Kinds) == 0 {
			t.Errorf("row %s/%d has no kind profile despite tracing", row.Spec, row.Repeat)
		}
	}
	// The collector was drained.
	if again := obs.Default.Take(experiments.ReportSeeds(report)); len(again) != 0 {
		t.Fatalf("second Take returned %d runs", len(again))
	}

	// Round-trip through a store and the renderer.
	st := store.NewMem()
	if err := experiments.WriteTelemetry(st, tel); err != nil {
		t.Fatal(err)
	}
	back, err := experiments.ReadTelemetry(st)
	if err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != experiments.TelemetrySchemaVersion || len(back.Runs) != len(tel.Runs) {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	if out := experiments.RenderTelemetry(back); out == "" {
		t.Fatal("empty telemetry rendering")
	}
}

// TestTelemetrySealsIntoManifest writes a run directory with
// telemetry enabled, seals it, and checks telemetry.json is digest-
// covered like any other artifact.
func TestTelemetrySealsIntoManifest(t *testing.T) {
	defer obs.Default.Disable()
	obs.Default.EnableTelemetry()

	specs, err := experiments.Select([]string{"T1"})
	if err != nil {
		t.Fatal(err)
	}
	report, err := experiments.Run(context.Background(), specs, experiments.RunnerConfig{
		Seed: goldenSeed, Scale: experiments.ScaleSmall,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := store.NewFS(t.TempDir())
	if err := experiments.WriteArtifacts(st, report); err != nil {
		t.Fatal(err)
	}
	tel := experiments.BuildTelemetry(report, obs.Default.Take(experiments.ReportSeeds(report)))
	if err := experiments.WriteTelemetry(st, tel); err != nil {
		t.Fatal(err)
	}
	if err := experiments.WriteManifest(st, report); err != nil {
		t.Fatal(err)
	}
	if err := store.Verify(st); err != nil {
		t.Fatalf("sealed telemetry run dir fails verification: %v", err)
	}
	m, err := experiments.ReadManifest(st)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range m.Files {
		if f.Path == experiments.TelemetryFile {
			found = true
		}
	}
	if !found {
		t.Fatal("telemetry.json not covered by the sealed manifest")
	}
}
