package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/stats"
)

// RunnerConfig parameterizes a campaign of experiments.
type RunnerConfig struct {
	// Seed is the campaign base seed; every (spec, repeat) derives its
	// own seed from it via SeedFor.
	Seed uint64
	// Scale sizes each experiment.
	Scale Scale
	// Repeats is the number of independent repeats per spec (<= 0
	// means 1). Repeats feed the cross-repeat mean/std aggregation.
	Repeats int
	// Parallel caps concurrent experiments (<= 0 means GOMAXPROCS).
	Parallel int
	// Budget is an outer worker cap applied after Parallel resolves —
	// the campaign's share of the machine when several campaigns run
	// in one process (the experiment server divides GOMAXPROCS across
	// its concurrent campaigns). <= 0 means unbudgeted.
	Budget int
	// OnStart, when non-nil, streams each run as a worker picks it up
	// (dispatch order, from a single goroutine, serialized with
	// OnResult). The Result carries Spec/Repeat/Seed only.
	OnStart func(Result)
	// OnResult, when non-nil, streams each result as it completes
	// (completion order, from a single goroutine). Use for progress
	// reporting; the returned Report is always in deterministic order.
	OnResult func(Result)
}

// Result is one completed (spec, repeat) execution.
type Result struct {
	// Spec identifies the experiment.
	Spec Spec
	// Repeat is the 0-based repeat index.
	Repeat int
	// Seed is the derived per-run seed.
	Seed uint64
	// Outcomes are the artifacts the run produced (nil on error).
	Outcomes []*Outcome
	// Err is the run's failure, if any. Runs skipped because the
	// campaign's context was cancelled carry the context error.
	Err error
	// Elapsed is the run's wall-clock time.
	Elapsed time.Duration
}

// MetricSummary aggregates one outcome metric across repeats.
type MetricSummary struct {
	OutcomeID string
	Metric    string
	N         int
	Mean      float64
	StdDev    float64
	Min       float64
	Max       float64
}

// Report is a completed campaign: every result plus the cross-repeat
// aggregation. Results are ordered by (registration order, repeat)
// regardless of completion order, so rendering a Report is
// deterministic at any parallelism.
type Report struct {
	Seed    uint64
	Scale   Scale
	Repeats int
	Results []Result
	// Summaries holds per-metric mean/std across repeats, ordered by
	// (outcome appearance order, metric name).
	Summaries []MetricSummary
}

// SeedFor derives the seed for one (spec, repeat) run. The derivation
// depends only on the base seed, the spec ID and the repeat index —
// never on worker count, scheduling or sibling specs — which is what
// makes campaign results byte-identical at any parallelism. Distinct
// inputs are scattered by an FNV-1a absorb followed by two splitmix64
// finalizer rounds.
func SeedFor(base uint64, specID string, repeat int) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= (x >> (8 * i)) & 0xff
			h *= fnvPrime
		}
	}
	mix(base)
	for i := 0; i < len(specID); i++ {
		h ^= uint64(specID[i])
		h *= fnvPrime
	}
	mix(uint64(repeat))
	for i := 0; i < 2; i++ {
		h += 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// EffectiveParallel resolves a requested Parallel value to the worker
// count Run actually uses for nSpecs specs at the given repeats:
// non-positive requests mean GOMAXPROCS, clamped to the job count and
// then to the budget (<= 0 means unbudgeted). The budget clamp is
// what keeps N concurrently queued campaigns from oversubscribing one
// process: each campaign resolves against its share, not the whole
// machine.
func EffectiveParallel(requested, nSpecs, repeats, budget int) int {
	if repeats <= 0 {
		repeats = 1
	}
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if n := nSpecs * repeats; w > n {
		w = n
	}
	if budget > 0 && w > budget {
		w = budget
	}
	if w < 1 {
		w = 1
	}
	return w
}

// progress is one lifecycle notification flowing from the workers to
// the single callback-serializing consumer. Results travel by value,
// so callbacks never race the workers' writes into the results slice.
type progress struct {
	result Result
	done   bool
}

// Run executes the given specs as a parallel campaign: every (spec,
// repeat) pair is an independent unit fanned across a worker pool.
// Failures don't abort the campaign; they are reported per-result and
// summarized in the returned error.
//
// Cancelling ctx drains the campaign cleanly: no new runs are
// dispatched, in-flight runs complete, and the returned Report marks
// every undispatched run with the context error — so a cancelled
// campaign still renders and aggregates whatever finished. Run
// returns the context error (wrapped) in that case.
func Run(ctx context.Context, specs []Spec, cfg RunnerConfig) (*Report, error) {
	repeats := cfg.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	workers := EffectiveParallel(cfg.Parallel, len(specs), repeats, cfg.Budget)
	if len(specs) == 0 {
		return nil, fmt.Errorf("experiments: no specs selected")
	}
	if ctx == nil {
		ctx = context.Background()
	}

	type job struct {
		spec    Spec
		repeat  int
		ordinal int
	}
	jobs := make(chan job)
	results := make([]Result, len(specs)*repeats)
	stream := make(chan progress, 2*len(results))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				seed := SeedFor(cfg.Seed, j.spec.ID, j.repeat)
				stream <- progress{result: Result{Spec: j.spec, Repeat: j.repeat, Seed: seed}}
				start := time.Now()
				// Err keeps the raw cause: Result already carries
				// Spec/Repeat/Seed, so printers add that context once.
				outs, err := j.spec.Run(seed, cfg.Scale)
				results[j.ordinal] = Result{
					Spec:     j.spec,
					Repeat:   j.repeat,
					Seed:     seed,
					Outcomes: outs,
					Err:      err,
					Elapsed:  time.Since(start),
				}
				stream <- progress{result: results[j.ordinal], done: true}
			}
		}()
	}

	// Single consumer keeps OnStart/OnResult calls serialized.
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		for p := range stream {
			switch {
			case p.done && cfg.OnResult != nil:
				cfg.OnResult(p.result)
			case !p.done && cfg.OnStart != nil:
				cfg.OnStart(p.result)
			}
		}
	}()

	// Dispatch until done or cancelled. On cancellation the in-flight
	// runs drain; everything not yet handed to a worker is marked
	// below.
	dispatched := 0
dispatch:
	for _, s := range specs {
		for r := 0; r < repeats; r++ {
			// Checked before the select: when a worker is ready AND the
			// context is done, select would pick a branch at random —
			// this keeps post-cancel dispatch bounded at one job.
			if ctx.Err() != nil {
				break dispatch
			}
			select {
			case jobs <- job{spec: s, repeat: r, ordinal: dispatched}:
				dispatched++
			case <-ctx.Done():
				break dispatch
			}
		}
	}
	close(jobs)
	wg.Wait()
	close(stream)
	consumer.Wait()

	// Mark undispatched runs so the Report stays rectangular: one
	// Result per (spec, repeat) at any cancellation point.
	for ord := dispatched; ord < len(results); ord++ {
		s := specs[ord/repeats]
		r := ord % repeats
		results[ord] = Result{
			Spec:   s,
			Repeat: r,
			Seed:   SeedFor(cfg.Seed, s.ID, r),
			Err:    context.Cause(ctx),
		}
	}

	report := &Report{
		Seed:    cfg.Seed,
		Scale:   cfg.Scale,
		Repeats: repeats,
		Results: results,
	}
	report.Summaries = aggregate(results)

	if err := ctx.Err(); err != nil {
		return report, fmt.Errorf("experiments: campaign cancelled after %d/%d runs: %w",
			dispatched, len(results), context.Cause(ctx))
	}
	var failed []string
	for _, r := range results {
		if r.Err != nil {
			failed = append(failed, fmt.Sprintf("%s (repeat %d, seed %d): %v",
				r.Spec.ID, r.Repeat, r.Seed, r.Err))
		}
	}
	if len(failed) > 0 {
		return report, fmt.Errorf("experiments: %d/%d runs failed: %s",
			len(failed), len(results), failed[0])
	}
	return report, nil
}

// aggregate folds every successful result into per-(outcome, metric)
// summaries, ordered by first appearance of the outcome and metric
// name within it.
func aggregate(results []Result) []MetricSummary {
	type key struct{ outcome, metric string }
	accs := map[key]*stats.Accumulator{}
	var outcomeOrder []string
	seenOutcome := map[string]bool{}
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		for _, o := range r.Outcomes {
			if !seenOutcome[o.ID] {
				seenOutcome[o.ID] = true
				outcomeOrder = append(outcomeOrder, o.ID)
			}
			for m, v := range o.Metrics {
				k := key{o.ID, m}
				if accs[k] == nil {
					accs[k] = &stats.Accumulator{}
				}
				accs[k].Add(v)
			}
		}
	}
	var out []MetricSummary
	for _, oid := range outcomeOrder {
		var metrics []string
		for k := range accs {
			if k.outcome == oid {
				metrics = append(metrics, k.metric)
			}
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			a := accs[key{oid, m}]
			out = append(out, MetricSummary{
				OutcomeID: oid, Metric: m,
				N: a.N(), Mean: a.Mean(), StdDev: a.StdDev(),
				Min: a.Min(), Max: a.Max(),
			})
		}
	}
	return out
}

// RenderOutcomes renders the paper-style tables from each spec's
// first successful repeat, in registration order — the shared body of
// ethrepro's stdout, rendered.txt and the examples. Results are
// ordered (spec, repeat), so scanning in order finds each spec's
// earliest successful run even when repeat 0 failed.
func (r *Report) RenderOutcomes() string {
	var out string
	rendered := map[string]bool{}
	for _, res := range r.Results {
		if res.Err != nil || rendered[res.Spec.ID] {
			continue
		}
		rendered[res.Spec.ID] = true
		for _, o := range res.Outcomes {
			out += fmt.Sprintf("== %s: %s ==\n%s\n", o.ID, o.Title, o.Rendered)
		}
	}
	return out
}

// RenderSummary renders the cross-repeat aggregation as a fixed-width
// table (the ethrepro campaign footer).
func (r *Report) RenderSummary() string {
	if len(r.Summaries) == 0 {
		return "no successful runs\n"
	}
	out := fmt.Sprintf("Campaign summary — seed %d, scale %s, %d repeat(s)\n",
		r.Seed, r.Scale, r.Repeats)
	out += fmt.Sprintf("  %-4s %-24s %4s %14s %12s %14s %14s\n",
		"id", "metric", "n", "mean", "std", "min", "max")
	for _, s := range r.Summaries {
		out += fmt.Sprintf("  %-4s %-24s %4d %14.4f %12.4f %14.4f %14.4f\n",
			s.OutcomeID, s.Metric, s.N, s.Mean, s.StdDev, s.Min, s.Max)
	}
	return out
}
