package chain

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/types"
)

// TxPool is a nonce-ordered transaction pool. It distinguishes
// executable transactions (next expected nonce for their sender) from
// queued ones (a nonce gap exists), which is the exact mechanism
// behind the paper's out-of-order commit penalty (§III-C2): a miner
// cannot include a transaction until all its predecessors arrived.
type TxPool struct {
	pending   map[types.Address]map[uint64]*types.Transaction
	nextNonce map[types.Address]uint64
	known     map[types.Hash]bool
}

// AddStatus describes the outcome of adding a transaction.
type AddStatus int

// Add outcomes.
const (
	// AddedExecutable means the transaction's nonce is the sender's
	// next expected one; it can be mined immediately.
	AddedExecutable AddStatus = iota + 1
	// AddedQueued means a nonce gap exists; the transaction waits for
	// its predecessors (arrived out of order or predecessors pending).
	AddedQueued
	// AddedDuplicate means the exact transaction is already known.
	AddedDuplicate
	// AddedStale means the nonce was already consumed on-chain.
	AddedStale
)

var errNilTx = errors.New("chain: nil transaction")

// NewTxPool creates an empty pool. Every sender starts at nonce 0.
func NewTxPool() *TxPool {
	return &TxPool{
		pending:   make(map[types.Address]map[uint64]*types.Transaction),
		nextNonce: make(map[types.Address]uint64),
		known:     make(map[types.Hash]bool),
	}
}

// Add inserts a transaction and classifies it.
func (p *TxPool) Add(tx *types.Transaction) (AddStatus, error) {
	if tx == nil {
		return 0, errNilTx
	}
	h := tx.Hash()
	if p.known[h] {
		return AddedDuplicate, nil
	}
	next := p.nextNonce[tx.Sender]
	if tx.Nonce < next {
		return AddedStale, nil
	}
	if p.pending[tx.Sender] == nil {
		p.pending[tx.Sender] = make(map[uint64]*types.Transaction)
	}
	if _, exists := p.pending[tx.Sender][tx.Nonce]; exists {
		// A different tx at the same nonce: keep the first (the
		// simulation does not model replace-by-fee).
		return AddedDuplicate, nil
	}
	p.pending[tx.Sender][tx.Nonce] = tx
	p.known[h] = true
	if tx.Nonce == next {
		return AddedExecutable, nil
	}
	return AddedQueued, nil
}

// Len returns the number of pending transactions (executable plus
// queued).
func (p *TxPool) Len() int {
	n := 0
	for _, m := range p.pending {
		n += len(m)
	}
	return n
}

// ExecutableCount returns how many transactions are minable right now:
// for each sender, the contiguous nonce run starting at the sender's
// next expected nonce.
func (p *TxPool) ExecutableCount() int {
	n := 0
	for sender, m := range p.pending {
		nonce := p.nextNonce[sender]
		for {
			if _, ok := m[nonce]; !ok {
				break
			}
			n++
			nonce++
		}
	}
	return n
}

// Select returns up to gasLimit worth of executable transactions,
// highest gas price first, respecting per-sender nonce order. The
// returned transactions are NOT removed; call Commit once they are
// included in a mined block.
func (p *TxPool) Select(gasLimit uint64) []*types.Transaction {
	// Gather each sender's executable run head.
	type cursor struct {
		sender types.Address
		nonce  uint64
	}
	var heads []*types.Transaction
	cursors := make(map[types.Address]uint64, len(p.pending))
	for sender, m := range p.pending {
		nonce := p.nextNonce[sender]
		if tx, ok := m[nonce]; ok {
			heads = append(heads, tx)
			cursors[sender] = nonce
		}
	}
	// Deterministic order: gas price desc, then sender bytes, then
	// nonce, so identical pools select identical sets.
	less := func(a, b *types.Transaction) bool {
		if a.GasPrice != b.GasPrice {
			return a.GasPrice > b.GasPrice
		}
		if a.Sender != b.Sender {
			return lessAddress(a.Sender, b.Sender)
		}
		return a.Nonce < b.Nonce
	}
	sort.Slice(heads, func(i, j int) bool { return less(heads[i], heads[j]) })

	var out []*types.Transaction
	var gasUsed uint64
	for len(heads) > 0 {
		tx := heads[0]
		heads = heads[1:]
		if gasUsed+tx.Gas > gasLimit {
			continue
		}
		out = append(out, tx)
		gasUsed += tx.Gas
		// Advance this sender's cursor; insert its next executable tx
		// in sorted position.
		nextNonce := cursors[tx.Sender] + 1
		if next, ok := p.pending[tx.Sender][nextNonce]; ok {
			cursors[tx.Sender] = nextNonce
			idx := sort.Search(len(heads), func(i int) bool { return less(next, heads[i]) })
			heads = append(heads, nil)
			copy(heads[idx+1:], heads[idx:])
			heads[idx] = next
		}
	}
	return out
}

// Commit removes included transactions and advances sender nonces. It
// returns an error when a transaction violates nonce order, which
// would indicate a block built against a different pool state.
func (p *TxPool) Commit(txs []*types.Transaction) error {
	for _, tx := range txs {
		if tx == nil {
			return errNilTx
		}
		next := p.nextNonce[tx.Sender]
		if tx.Nonce != next {
			return fmt.Errorf("chain: commit nonce %d for %s, expected %d", tx.Nonce, tx.Sender, next)
		}
		delete(p.pending[tx.Sender], tx.Nonce)
		if len(p.pending[tx.Sender]) == 0 {
			delete(p.pending, tx.Sender)
		}
		p.nextNonce[tx.Sender] = next + 1
	}
	return nil
}

// NextNonce exposes the next expected nonce for a sender.
func (p *TxPool) NextNonce(sender types.Address) uint64 { return p.nextNonce[sender] }

// Known reports whether the pool has ever accepted this tx hash.
func (p *TxPool) Known(h types.Hash) bool { return p.known[h] }

func lessAddress(a, b types.Address) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
