package chain

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/types"
)

// TestBlockTreeInvariantsProperty grows random block trees (random
// parents near the tip, random difficulties, occasional deep forks)
// and checks structural invariants after every insertion batch:
//
//  1. the main chain is parent-linked from genesis to head;
//  2. the head has maximal total difficulty among all blocks;
//  3. total difficulty along the main chain is strictly increasing;
//  4. every block's td equals its parent's td plus its difficulty.
func TestBlockTreeInvariantsProperty(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		rng := sim.NewRNG(seed)
		g := testGenesis()
		tree := NewBlockTree(g)
		all := []*types.Block{g}
		for i := 0; i < 400; i++ {
			// Pick a parent biased toward the tip but occasionally
			// deep (forks).
			var parent *types.Block
			if rng.Bernoulli(0.8) {
				parent = tree.Head()
			} else {
				parent = all[rng.IntN(len(all))]
			}
			b := types.NewBlock(types.Header{
				ParentHash: parent.Hash(),
				Number:     parent.Header.Number + 1,
				Miner:      types.AddressFromString("m"),
				MinerLabel: "m",
				TimeMillis: parent.Header.TimeMillis + uint64(1+rng.IntN(20000)),
				Difficulty: uint64(500 + rng.IntN(1000)),
				GasLimit:   8_000_000,
				Extra:      rng.Uint64(), // force uniqueness
			}, nil, nil)
			if _, err := tree.Add(b); err != nil {
				t.Fatalf("seed %d insert %d: %v", seed, i, err)
			}
			all = append(all, b)
		}
		checkTreeInvariants(t, tree, all)
	}
}

func checkTreeInvariants(t *testing.T, tree *BlockTree, all []*types.Block) {
	t.Helper()
	main := tree.MainChain()
	if main[0].Hash() != tree.Genesis() {
		t.Fatal("main chain must start at genesis")
	}
	if main[len(main)-1].Hash() != tree.Head().Hash() {
		t.Fatal("main chain must end at head")
	}
	headTD, err := tree.TotalDifficulty(tree.Head().Hash())
	if err != nil {
		t.Fatal(err)
	}
	prevTD := uint64(0)
	for i, b := range main {
		if i > 0 {
			if b.Header.ParentHash != main[i-1].Hash() {
				t.Fatalf("main chain broken at %d", i)
			}
		}
		td, err := tree.TotalDifficulty(b.Hash())
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && td <= prevTD {
			t.Fatalf("td not increasing at %d: %d <= %d", i, td, prevTD)
		}
		prevTD = td
	}
	for _, b := range all {
		td, err := tree.TotalDifficulty(b.Hash())
		if err != nil {
			t.Fatal(err)
		}
		if td > headTD {
			t.Fatalf("block %s heavier (%d) than head (%d)", b.Hash().Short(), td, headTD)
		}
		if b.Hash() == tree.Genesis() {
			continue
		}
		parentTD, err := tree.TotalDifficulty(b.Header.ParentHash)
		if err != nil {
			t.Fatal(err)
		}
		if td != parentTD+b.Header.Difficulty {
			t.Fatalf("td accounting broken for %s", b.Hash().Short())
		}
	}
}

// TestTxPoolInvariantsProperty drives a pool with random adds/selects/
// commits and checks that (a) selections always respect per-sender
// nonce order against the pool's committed state, (b) Len never goes
// negative, and (c) committed nonces never regress.
func TestTxPoolInvariantsProperty(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		rng := sim.NewRNG(100 + seed)
		pool := NewTxPool()
		nextBySender := map[types.Address]uint64{}
		senders := []string{"a", "b", "c", "d"}
		emitted := map[types.Address]uint64{}
		for step := 0; step < 300; step++ {
			switch rng.IntN(3) {
			case 0: // add a (possibly out-of-order) tx
				s := types.AddressFromString(senders[rng.IntN(len(senders))])
				nonce := emitted[s]
				if rng.Bernoulli(0.2) {
					nonce += uint64(rng.IntN(3)) // leave a gap
				}
				emitted[s] = nonce + 1
				if _, err := pool.Add(&types.Transaction{
					Sender: s, To: types.AddressFromString("sink"),
					Nonce: nonce, GasPrice: uint64(1 + rng.IntN(100)), Gas: types.TxGas,
				}); err != nil {
					t.Fatal(err)
				}
			case 1: // select and validate ordering
				sel := pool.Select(uint64(rng.IntN(12)) * types.TxGas)
				seen := map[types.Address]uint64{}
				for _, tx := range sel {
					want, ok := seen[tx.Sender]
					if !ok {
						want = pool.NextNonce(tx.Sender)
					}
					if tx.Nonce != want {
						t.Fatalf("seed %d: selection nonce %d, want %d", seed, tx.Nonce, want)
					}
					seen[tx.Sender] = want + 1
				}
			case 2: // commit a selection
				sel := pool.Select(uint64(rng.IntN(6)) * types.TxGas)
				if err := pool.Commit(sel); err != nil {
					t.Fatalf("seed %d commit: %v", seed, err)
				}
				for _, tx := range sel {
					if pool.NextNonce(tx.Sender) < tx.Nonce+1 {
						t.Fatal("committed nonce regressed")
					}
					if prev, ok := nextBySender[tx.Sender]; ok && tx.Nonce < prev {
						t.Fatal("commit order regressed")
					}
					nextBySender[tx.Sender] = tx.Nonce + 1
				}
			}
			if pool.Len() < 0 || pool.ExecutableCount() > pool.Len() {
				t.Fatal("pool counters inconsistent")
			}
		}
	}
}
