package chain

import (
	"errors"
	"testing"

	"repro/internal/types"
)

func testGenesis() *types.Block {
	return NewGenesis(131_072, 8_000_000)
}

// mkBlock builds a child block on parent with the given miner label
// and difficulty; extra disambiguates same-content siblings.
func mkBlock(parent *types.Block, miner string, difficulty, extra uint64) *types.Block {
	return types.NewBlock(types.Header{
		ParentHash: parent.Hash(),
		Number:     parent.Header.Number + 1,
		Miner:      types.AddressFromString(miner),
		MinerLabel: miner,
		TimeMillis: parent.Header.TimeMillis + 13300,
		Difficulty: difficulty,
		GasLimit:   8_000_000,
		Extra:      extra,
	}, nil, nil)
}

func mustAdd(t *testing.T, tree *BlockTree, b *types.Block) bool {
	t.Helper()
	reorg, err := tree.Add(b)
	if err != nil {
		t.Fatalf("add %s: %v", b.Hash().Short(), err)
	}
	return reorg
}

func TestBlockTreeLinearGrowth(t *testing.T) {
	g := testGenesis()
	tree := NewBlockTree(g)
	cur := g
	for i := 0; i < 10; i++ {
		next := mkBlock(cur, "Ethermine", 1000, 0)
		if !mustAdd(t, tree, next) {
			t.Fatalf("block %d should extend head", i)
		}
		cur = next
	}
	if tree.MaxHeight() != 10 || tree.Len() != 11 {
		t.Fatalf("height %d len %d", tree.MaxHeight(), tree.Len())
	}
	main := tree.MainChain()
	if len(main) != 11 || main[0].Hash() != g.Hash() || main[10].Hash() != cur.Hash() {
		t.Fatal("main chain wrong")
	}
	for i := 1; i < len(main); i++ {
		if main[i].Header.ParentHash != main[i-1].Hash() {
			t.Fatalf("main chain broken at %d", i)
		}
	}
}

func TestBlockTreeErrors(t *testing.T) {
	g := testGenesis()
	tree := NewBlockTree(g)
	b1 := mkBlock(g, "A", 1000, 0)
	mustAdd(t, tree, b1)
	if _, err := tree.Add(b1); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate: %v", err)
	}
	orphan := mkBlock(b1, "A", 1000, 0)
	orphan2 := mkBlock(orphan, "A", 1000, 0)
	if _, err := tree.Add(orphan2); !errors.Is(err, ErrUnknownParent) {
		t.Errorf("orphan: %v", err)
	}
	bad := types.NewBlock(types.Header{
		ParentHash: g.Hash(),
		Number:     5, // should be 1
		Difficulty: 1000,
	}, nil, nil)
	if _, err := tree.Add(bad); !errors.Is(err, ErrBadNumber) {
		t.Errorf("bad number: %v", err)
	}
	if _, err := tree.TotalDifficulty(types.HashBytes([]byte("nope"))); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("unknown td: %v", err)
	}
}

func TestForkChoiceHeaviestWins(t *testing.T) {
	g := testGenesis()
	tree := NewBlockTree(g)
	a := mkBlock(g, "A", 1000, 0)
	b := mkBlock(g, "B", 900, 0)
	mustAdd(t, tree, a)
	if reorg := mustAdd(t, tree, b); reorg {
		t.Fatal("lighter sibling must not reorg")
	}
	if tree.Head().Hash() != a.Hash() {
		t.Fatal("head should be heavier branch")
	}
	// Extend the lighter branch past the heavier one.
	b2 := mkBlock(b, "B", 1000, 0)
	if reorg := mustAdd(t, tree, b2); !reorg {
		t.Fatal("heavier total difficulty must reorg")
	}
	if tree.Head().Hash() != b2.Hash() {
		t.Fatal("head should be new tip")
	}
	if tree.IsMain(a.Hash()) {
		t.Fatal("a fell off the main chain")
	}
	if !tree.IsMain(b.Hash()) || !tree.IsMain(b2.Hash()) {
		t.Fatal("b branch should be main")
	}
}

func TestForkChoiceFirstSeenWinsTies(t *testing.T) {
	g := testGenesis()
	tree := NewBlockTree(g)
	a := mkBlock(g, "A", 1000, 0)
	b := mkBlock(g, "B", 1000, 0) // equal difficulty
	mustAdd(t, tree, a)
	if reorg := mustAdd(t, tree, b); reorg {
		t.Fatal("equal-difficulty sibling must not displace first-seen head")
	}
	if tree.Head().Hash() != a.Hash() {
		t.Fatal("first seen should remain head")
	}
}

func TestAtHeightTracksForks(t *testing.T) {
	g := testGenesis()
	tree := NewBlockTree(g)
	a := mkBlock(g, "A", 1000, 0)
	b := mkBlock(g, "A", 1000, 1) // same miner, same height: one-miner fork
	mustAdd(t, tree, a)
	mustAdd(t, tree, b)
	hs := tree.AtHeight(1)
	if len(hs) != 2 || hs[0] != a.Hash() || hs[1] != b.Hash() {
		t.Fatalf("at height: %v", hs)
	}
	// Returned slice is a copy.
	hs[0] = types.Hash{}
	if tree.AtHeight(1)[0] != a.Hash() {
		t.Fatal("AtHeight must return a copy")
	}
}

func TestIsAncestor(t *testing.T) {
	g := testGenesis()
	tree := NewBlockTree(g)
	a := mkBlock(g, "A", 1000, 0)
	a2 := mkBlock(a, "A", 1000, 0)
	b := mkBlock(g, "B", 1000, 0)
	mustAdd(t, tree, a)
	mustAdd(t, tree, a2)
	mustAdd(t, tree, b)
	if !tree.IsAncestor(g.Hash(), a2.Hash()) {
		t.Error("genesis must be ancestor of a2")
	}
	if !tree.IsAncestor(a.Hash(), a2.Hash()) {
		t.Error("a must be ancestor of a2")
	}
	if !tree.IsAncestor(a.Hash(), a.Hash()) {
		t.Error("a is its own ancestor")
	}
	if tree.IsAncestor(b.Hash(), a2.Hash()) {
		t.Error("sibling branch is not an ancestor")
	}
	if tree.IsAncestor(a2.Hash(), a.Hash()) {
		t.Error("descendant is not an ancestor")
	}
	unknown := types.HashBytes([]byte("?"))
	if tree.IsAncestor(unknown, a.Hash()) || tree.IsAncestor(a.Hash(), unknown) {
		t.Error("unknown hashes are never ancestors")
	}
}

func TestConfirmationDepth(t *testing.T) {
	g := testGenesis()
	tree := NewBlockTree(g)
	blocks := []*types.Block{g}
	cur := g
	for i := 0; i < 13; i++ {
		cur = mkBlock(cur, "A", 1000, 0)
		mustAdd(t, tree, cur)
		blocks = append(blocks, cur)
	}
	d, err := tree.ConfirmationDepth(blocks[1].Hash())
	if err != nil || d != 12 {
		t.Fatalf("depth: %d, %v", d, err)
	}
	d, err = tree.ConfirmationDepth(cur.Hash())
	if err != nil || d != 0 {
		t.Fatalf("head depth: %d, %v", d, err)
	}
	// Fork block depth is an error.
	side := mkBlock(blocks[5], "B", 1000, 0)
	mustAdd(t, tree, side)
	if _, err := tree.ConfirmationDepth(side.Hash()); err == nil {
		t.Fatal("side block depth must error")
	}
	if _, err := tree.ConfirmationDepth(types.HashBytes([]byte("x"))); !errors.Is(err, ErrUnknownBlock) {
		t.Fatalf("unknown block: %v", err)
	}
}

func TestDeepReorg(t *testing.T) {
	g := testGenesis()
	tree := NewBlockTree(g)
	// Main branch of 3 at difficulty 1000 each.
	a1 := mkBlock(g, "A", 1000, 0)
	a2 := mkBlock(a1, "A", 1000, 0)
	a3 := mkBlock(a2, "A", 1000, 0)
	for _, b := range []*types.Block{a1, a2, a3} {
		mustAdd(t, tree, b)
	}
	// Side branch of 2 with higher difficulty wins despite being
	// shorter: fork choice is total difficulty, not length.
	b1 := mkBlock(g, "B", 1800, 0)
	b2 := mkBlock(b1, "B", 1800, 0)
	mustAdd(t, tree, b1)
	if reorg := mustAdd(t, tree, b2); !reorg {
		t.Fatal("heavier shorter branch should win")
	}
	if tree.Head().Hash() != b2.Hash() {
		t.Fatal("head should be b2")
	}
	if tree.IsMain(a3.Hash()) {
		t.Fatal("old branch must be off-main")
	}
}
