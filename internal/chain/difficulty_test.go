package chain

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestNextDifficultyStepRule(t *testing.T) {
	p := DefaultDifficultyParams()
	parent := uint64(300_000_000_000)
	unit := parent / p.BoundDivisor
	tau := p.AdjustGranularity
	cases := []struct {
		gap  sim.Time
		want uint64
	}{
		{0, parent + unit},             // fast: +1 step
		{tau - 1, parent + unit},       // just under τ: +1
		{tau, parent},                  // [τ, 2τ): 0 steps
		{2*tau - 1, parent},            // still 0
		{2 * tau, parent - unit},       // [2τ, 3τ): -1
		{5 * tau, parent - 4*unit},     // -4
		{1000 * tau, parent - 99*unit}, // clamped at -99
	}
	for _, c := range cases {
		got := NextDifficulty(p, parent, c.gap, 100)
		if got != c.want {
			t.Errorf("gap %v: want %d, got %d", c.gap, c.want, got)
		}
	}
	// Negative gaps behave like zero.
	if NextDifficulty(p, parent, -5, 100) != parent+unit {
		t.Error("negative gap should act like 0")
	}
}

func TestNextDifficultyFloor(t *testing.T) {
	p := DefaultDifficultyParams()
	got := NextDifficulty(p, p.MinimumDifficulty, 100*p.AdjustGranularity, 10)
	if got < p.MinimumDifficulty {
		t.Fatalf("below floor: %d", got)
	}
	// Tiny parent difficulty still respects the floor on huge drops.
	got = NextDifficulty(p, 10, 1000*p.AdjustGranularity, 10)
	if got != p.MinimumDifficulty {
		t.Fatalf("tiny parent should clamp to floor: %d", got)
	}
	// Zero granularity guard must not divide by zero.
	pz := p
	pz.AdjustGranularity = 0
	if NextDifficulty(pz, 1000, 5, 1) == 0 {
		t.Fatal("zero granularity must not zero out")
	}
}

func TestDifficultyBomb(t *testing.T) {
	p := DefaultDifficultyParams()
	p.BombDelayBlocks = 0
	parent := uint64(300_000_000_000)
	// Before period 2 the bomb contributes nothing.
	early := NextDifficulty(p, parent, p.AdjustGranularity, 150_000)
	pNoBomb := p
	pNoBomb.BombEnabled = false
	earlyNoBomb := NextDifficulty(pNoBomb, parent, p.AdjustGranularity, 150_000)
	if early != earlyNoBomb {
		t.Fatalf("bomb fired too early: %d vs %d", early, earlyNoBomb)
	}
	// Far past the delay the bomb term appears: 2^((n/period)-2).
	late := NextDifficulty(p, parent, p.AdjustGranularity, 4_000_000)
	lateNoBomb := NextDifficulty(pNoBomb, parent, p.AdjustGranularity, 4_000_000)
	if late-lateNoBomb != 1<<38 { // (4M/100k)-2 = 38
		t.Fatalf("bomb term: %d", late-lateNoBomb)
	}
}

func TestDifficultyBombDelayNeutralizes(t *testing.T) {
	// Constantinople's 5M delay makes the bomb negligible at the
	// paper's block heights against mainnet-scale difficulty.
	p := DefaultDifficultyParams()
	pNoBomb := p
	pNoBomb.BombEnabled = false
	parent := uint64(2_500_000_000_000_000)
	for _, n := range []uint64{7_479_573, 7_680_658} {
		withBomb := NextDifficulty(p, parent, p.AdjustGranularity, n)
		noBomb := NextDifficulty(pNoBomb, parent, p.AdjustGranularity, n)
		if withBomb < noBomb {
			t.Fatalf("bomb cannot reduce difficulty at %d", n)
		}
		if float64(withBomb-noBomb) > 0.01*float64(noBomb) {
			t.Fatalf("delayed bomb too strong at %d: +%d", n, withBomb-noBomb)
		}
	}
}

func TestDifficultyBombExponentCap(t *testing.T) {
	p := DefaultDifficultyParams()
	p.BombDelayBlocks = 0
	// Periods beyond the cap must not overflow the shift.
	got := NextDifficulty(p, 1_000_000, p.AdjustGranularity, 100_000*200)
	if got == 0 {
		t.Fatal("overflowed")
	}
}

func TestDifficultyEquilibrium(t *testing.T) {
	// Closed-loop simulation of the control system: gaps drawn
	// exponentially with mean difficulty/hashrate must settle at
	// τ/ln2 and keep difficulty bounded — the property whose absence
	// would overflow cumulative difficulty on whole-chain horizons.
	p := DefaultDifficultyParams()
	p.BombEnabled = false
	const d0 = uint64(300_000_000_000)
	hashrate := float64(d0) / 13300 // difficulty units per ms
	rng := sim.NewRNG(7)
	d := d0
	var gapSum float64
	const n = 200_000
	for i := 0; i < n; i++ {
		mean := float64(d) / hashrate
		gap := sim.Time(rng.Exponential(mean))
		gapSum += float64(gap)
		d = NextDifficulty(p, d, gap, uint64(i+1))
	}
	meanGap := gapSum / n
	if math.Abs(meanGap-13300) > 600 {
		t.Fatalf("equilibrium mean gap: want ~13300, got %v", meanGap)
	}
	if d < d0/3 || d > 3*d0 {
		t.Fatalf("difficulty drifted: %d (start %d)", d, d0)
	}
	// Cumulative difficulty stays far below uint64 range even at
	// whole-chain length.
	if float64(d)*7_700_000 > float64(math.MaxUint64)/2 {
		t.Fatalf("difficulty scale risks overflow: %d", d)
	}
}

func TestDifficultyBombRaisesInterval(t *testing.T) {
	// With the bomb live (no delay, short period), the closed loop's
	// inter-block time climbs — the pre-Constantinople drift the
	// paper cites (14.3 s), undone by delaying the bomb (13.3 s).
	run := func(delay uint64) float64 {
		p := DefaultDifficultyParams()
		p.BombDelayBlocks = delay
		p.BombPeriodBlocks = 10_000
		const d0 = uint64(300_000_000_000)
		hashrate := float64(d0) / 13300
		rng := sim.NewRNG(9)
		d := d0
		var gapSum float64
		const n = 400_000
		for i := 0; i < n; i++ {
			mean := float64(d) / hashrate
			gap := sim.Time(rng.Exponential(mean))
			gapSum += float64(gap)
			d = NextDifficulty(p, d, gap, uint64(i+1))
		}
		return gapSum / n
	}
	bombed := run(0)
	delayed := run(10_000_000)
	if bombed <= delayed*1.02 {
		t.Fatalf("bomb should stretch intervals: %v vs %v", bombed, delayed)
	}
}
