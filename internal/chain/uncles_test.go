package chain

import (
	"errors"
	"testing"

	"repro/internal/types"
)

// buildForkedTree creates:
//
//	g - a1 - a2 - a3   (main)
//	  \ b1             (side, same height as a1)
func buildForkedTree(t *testing.T) (*BlockTree, map[string]*types.Block) {
	t.Helper()
	g := testGenesis()
	tree := NewBlockTree(g)
	a1 := mkBlock(g, "A", 1000, 0)
	b1 := mkBlock(g, "B", 999, 0)
	a2 := mkBlock(a1, "A", 1000, 0)
	a3 := mkBlock(a2, "A", 1000, 0)
	for _, b := range []*types.Block{a1, b1, a2, a3} {
		mustAdd(t, tree, b)
	}
	return tree, map[string]*types.Block{"g": g, "a1": a1, "b1": b1, "a2": a2, "a3": a3}
}

func TestValidateUncleAccepted(t *testing.T) {
	tree, bs := buildForkedTree(t)
	rules := DefaultUncleRules()
	// b1 is a valid uncle for a block extending a3.
	if err := tree.ValidateUncle(rules, bs["a3"].Hash(), bs["b1"].Header, nil); err != nil {
		t.Fatalf("valid uncle rejected: %v", err)
	}
}

func TestValidateUncleRejectsAncestor(t *testing.T) {
	tree, bs := buildForkedTree(t)
	rules := DefaultUncleRules()
	if err := tree.ValidateUncle(rules, bs["a3"].Hash(), bs["a1"].Header, nil); !errors.Is(err, ErrUncleIsAncestor) {
		t.Fatalf("ancestor as uncle: %v", err)
	}
}

func TestValidateUncleRejectsTooDeep(t *testing.T) {
	g := testGenesis()
	tree := NewBlockTree(g)
	side := mkBlock(g, "B", 999, 0)
	mustAdd(t, tree, side)
	cur := g
	var blocks []*types.Block
	for i := 0; i < 9; i++ {
		cur = mkBlock(cur, "A", 1000, 0)
		mustAdd(t, tree, cur)
		blocks = append(blocks, cur)
	}
	rules := DefaultUncleRules()
	// Side block at height 1; a block extending blocks[6] (height 8)
	// is exactly depth 7: still valid.
	if err := tree.ValidateUncle(rules, blocks[6].Hash(), side.Header, nil); err != nil {
		t.Fatalf("depth-7 uncle rejected: %v", err)
	}
	// Extending blocks[7] (height 9) puts it at depth 8: invalid.
	if err := tree.ValidateUncle(rules, blocks[7].Hash(), side.Header, nil); !errors.Is(err, ErrUncleTooDeep) {
		t.Fatalf("depth-8 uncle: %v", err)
	}
}

func TestValidateUncleRejectsFutureHeight(t *testing.T) {
	tree, bs := buildForkedTree(t)
	rules := DefaultUncleRules()
	// a3 (height 3) cannot be an uncle of a block extending a1
	// (new height 2).
	if err := tree.ValidateUncle(rules, bs["a1"].Hash(), bs["a3"].Header, nil); !errors.Is(err, ErrUncleTooDeep) {
		t.Fatalf("future uncle: %v", err)
	}
}

func TestValidateUncleRejectsDoubleUse(t *testing.T) {
	tree, bs := buildForkedTree(t)
	rules := DefaultUncleRules()
	tracker := NewUncleTracker()
	tracker.MarkUsed(bs["b1"].Hash())
	if err := tree.ValidateUncle(rules, bs["a3"].Hash(), bs["b1"].Header, tracker); !errors.Is(err, ErrUncleAlreadyUsed) {
		t.Fatalf("double use: %v", err)
	}
}

func TestValidateUncleRejectsForeignBranch(t *testing.T) {
	tree, bs := buildForkedTree(t)
	rules := DefaultUncleRules()
	// An uncle whose parent is b1 (not an ancestor of the a-branch).
	c := mkBlock(bs["b1"], "C", 900, 0)
	mustAdd(t, tree, c)
	if err := tree.ValidateUncle(rules, bs["a3"].Hash(), c.Header, nil); !errors.Is(err, ErrUncleUnknownParent) {
		t.Fatalf("foreign-branch uncle: %v", err)
	}
}

func TestValidateUncleUnknownParent(t *testing.T) {
	tree, bs := buildForkedTree(t)
	rules := DefaultUncleRules()
	if err := tree.ValidateUncle(rules, types.HashBytes([]byte("?")), bs["b1"].Header, nil); !errors.Is(err, ErrUnknownBlock) {
		t.Fatalf("unknown parent: %v", err)
	}
}

func TestRestrictedRuleBlocksOneMinerUncle(t *testing.T) {
	// The §V mitigation: pool A mines both the main block at height 1
	// and a second version of it; the second version must not be
	// acceptable as an uncle under the restricted rule.
	g := testGenesis()
	tree := NewBlockTree(g)
	a1 := mkBlock(g, "A", 1000, 0)
	a1v2 := mkBlock(g, "A", 1000, 1) // one-miner fork sibling
	a2 := mkBlock(a1, "A", 1000, 0)
	for _, b := range []*types.Block{a1, a1v2, a2} {
		mustAdd(t, tree, b)
	}
	standard := DefaultUncleRules()
	if err := tree.ValidateUncle(standard, a2.Hash(), a1v2.Header, nil); err != nil {
		t.Fatalf("standard rule should accept one-miner uncle: %v", err)
	}
	restricted := DefaultUncleRules()
	restricted.RestrictOneMinerUncles = true
	if err := tree.ValidateUncle(restricted, a2.Hash(), a1v2.Header, nil); !errors.Is(err, ErrUncleSelfHeight) {
		t.Fatalf("restricted rule should reject one-miner uncle: %v", err)
	}
	// A different miner's sibling is still fine under the restriction.
	b1 := mkBlock(g, "B", 999, 0)
	mustAdd(t, tree, b1)
	if err := tree.ValidateUncle(restricted, a2.Hash(), b1.Header, nil); err != nil {
		t.Fatalf("restricted rule should accept foreign uncle: %v", err)
	}
}

func TestSelectUncles(t *testing.T) {
	g := testGenesis()
	tree := NewBlockTree(g)
	a1 := mkBlock(g, "A", 1000, 0)
	b1 := mkBlock(g, "B", 999, 0)
	c1 := mkBlock(g, "C", 998, 0)
	d1 := mkBlock(g, "D", 997, 0)
	a2 := mkBlock(a1, "A", 1000, 0)
	for _, b := range []*types.Block{a1, b1, c1, d1, a2} {
		mustAdd(t, tree, b)
	}
	rules := DefaultUncleRules()
	uncles := tree.SelectUncles(rules, a2.Hash(), nil)
	if len(uncles) != rules.MaxPerBlock {
		t.Fatalf("want %d uncles, got %d", rules.MaxPerBlock, len(uncles))
	}
	for _, u := range uncles {
		if u.Hash() == a1.Hash() {
			t.Fatal("selected an ancestor as uncle")
		}
	}
	// With a tracker marking all side blocks used, selection is empty.
	tracker := NewUncleTracker()
	for _, b := range []*types.Block{b1, c1, d1} {
		tracker.MarkUsed(b.Hash())
	}
	if got := tree.SelectUncles(rules, a2.Hash(), tracker); len(got) != 0 {
		t.Fatalf("tracked uncles reselected: %d", len(got))
	}
	// Unknown parent selects nothing.
	if got := tree.SelectUncles(rules, types.HashBytes([]byte("?")), nil); got != nil {
		t.Fatal("unknown parent must select nothing")
	}
}

func TestSelectUnclesPrefersShallow(t *testing.T) {
	g := testGenesis()
	tree := NewBlockTree(g)
	deepSide := mkBlock(g, "X", 900, 0)
	a1 := mkBlock(g, "A", 1000, 0)
	a2 := mkBlock(a1, "A", 1000, 0)
	shallowSide := mkBlock(a1, "Y", 900, 0)
	a3 := mkBlock(a2, "A", 1000, 0)
	for _, b := range []*types.Block{deepSide, a1, a2, shallowSide, a3} {
		mustAdd(t, tree, b)
	}
	rules := DefaultUncleRules()
	rules.MaxPerBlock = 1
	got := tree.SelectUncles(rules, a3.Hash(), nil)
	if len(got) != 1 || got[0].Hash() != shallowSide.Hash() {
		t.Fatalf("should prefer the shallow side block, got %v", got)
	}
}
