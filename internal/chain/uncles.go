package chain

import (
	"errors"
	"fmt"

	"repro/internal/types"
)

// Uncle (ommer) validation. Ethereum rewards stale blocks that get
// referenced by later main-chain blocks; the paper shows (§III-C5)
// that this mechanism — designed to help small miners — is exploited
// by large pools mining several versions of the same block. §V
// proposes restricting it: an uncle is invalid when its miner also
// mined the main-chain block at the same height. UncleRules captures
// both the standard protocol and that proposed mitigation, so the
// Lesson-1 ablation is a one-flag change.

// Uncle validation errors.
var (
	ErrUncleIsAncestor    = errors.New("chain: uncle is an ancestor of the including block")
	ErrUncleTooDeep       = errors.New("chain: uncle exceeds maximum depth")
	ErrUncleUnknownParent = errors.New("chain: uncle parent not on including chain")
	ErrUncleAlreadyUsed   = errors.New("chain: uncle already referenced")
	ErrUncleSelfHeight    = errors.New("chain: uncle miner already mined main block at same height (restricted rule)")
	ErrTooManyUncles      = errors.New("chain: too many uncles")
)

// UncleRules parameterizes uncle validity.
type UncleRules struct {
	// MaxDepth is how many generations back an uncle's height may lie
	// (Ethereum: 7).
	MaxDepth uint64
	// MaxPerBlock is the per-block uncle reference limit (Ethereum: 2).
	MaxPerBlock int
	// RestrictOneMinerUncles enables the paper's §V mitigation:
	// reject an uncle when the same miner address also produced the
	// chain block at the uncle's height on the branch being extended.
	RestrictOneMinerUncles bool
}

// DefaultUncleRules returns Ethereum's standard parameters with the
// restriction disabled.
func DefaultUncleRules() UncleRules {
	return UncleRules{MaxDepth: types.MaxUncleDepth, MaxPerBlock: types.MaxUnclesPerBlock}
}

// UncleTracker records which uncle hashes were already referenced on a
// branch; Ethereum forbids double inclusion. A single global set is a
// faithful approximation for the simulation because reorgs deep enough
// to resurrect an uncle reference do not occur at the observed fork
// lengths (max 3).
type UncleTracker struct {
	used map[types.Hash]bool
}

// NewUncleTracker creates an empty tracker.
func NewUncleTracker() *UncleTracker {
	return &UncleTracker{used: make(map[types.Hash]bool)}
}

// MarkUsed records that an uncle hash was referenced.
func (u *UncleTracker) MarkUsed(h types.Hash) { u.used[h] = true }

// Used reports whether the hash was already referenced.
func (u *UncleTracker) Used(h types.Hash) bool { return u.used[h] }

// ValidateUncle checks whether candidate can be referenced as an uncle
// by a block extending parent (i.e. the new block will have height
// parent.Number+1). tracker may be nil to skip the double-use check.
func (t *BlockTree) ValidateUncle(rules UncleRules, parent types.Hash, candidate types.Header, tracker *UncleTracker) error {
	parentBlock, ok := t.blocks[parent]
	if !ok {
		return fmt.Errorf("%w: parent %s", ErrUnknownBlock, parent.Short())
	}
	candHash := candidate.Hash()
	if tracker != nil && tracker.Used(candHash) {
		return ErrUncleAlreadyUsed
	}
	newHeight := parentBlock.Header.Number + 1
	if candidate.Number >= newHeight {
		return fmt.Errorf("%w: uncle height %d vs block height %d", ErrUncleTooDeep, candidate.Number, newHeight)
	}
	if newHeight-candidate.Number > rules.MaxDepth {
		return fmt.Errorf("%w: depth %d", ErrUncleTooDeep, newHeight-candidate.Number)
	}
	// The uncle must be a side block: a sibling branch of the chain
	// being extended. Its parent must be an ancestor of the new block,
	// but the uncle itself must not be.
	if t.IsAncestor(candHash, parent) {
		return ErrUncleIsAncestor
	}
	if !t.IsAncestor(candidate.ParentHash, parent) {
		return fmt.Errorf("%w: uncle parent %s", ErrUncleUnknownParent, candidate.ParentHash.Short())
	}
	if rules.RestrictOneMinerUncles {
		chainAt, ok := t.ancestorAt(parent, candidate.Number)
		if ok {
			if mainBlock := t.blocks[chainAt]; mainBlock.Header.Miner == candidate.Miner {
				return ErrUncleSelfHeight
			}
		}
	}
	return nil
}

// ancestorAt walks from tip back to the requested height along parent
// links.
func (t *BlockTree) ancestorAt(tip types.Hash, n uint64) (types.Hash, bool) {
	cur, ok := t.blocks[tip]
	if !ok {
		return types.Hash{}, false
	}
	for {
		if cur.Header.Number == n {
			return cur.Hash(), true
		}
		if cur.Header.Number < n || cur.Hash() == t.genesis {
			return types.Hash{}, false
		}
		next, ok := t.blocks[cur.Header.ParentHash]
		if !ok {
			return types.Hash{}, false
		}
		cur = next
	}
}

// SelectUncles returns up to rules.MaxPerBlock valid uncle headers for
// a block extending parent, preferring shallower (more recent) side
// blocks, mirroring Geth's selection. The tracker, when non-nil, is
// consulted but NOT updated; callers mark selected uncles used once
// the block is actually mined.
func (t *BlockTree) SelectUncles(rules UncleRules, parent types.Hash, tracker *UncleTracker) []types.Header {
	parentBlock, ok := t.blocks[parent]
	if !ok {
		return nil
	}
	newHeight := parentBlock.Header.Number + 1
	var out []types.Header
	// Scan recent heights from shallow to deep.
	for depth := uint64(1); depth <= rules.MaxDepth && len(out) < rules.MaxPerBlock; depth++ {
		if newHeight < depth+1 {
			break
		}
		height := newHeight - depth
		for _, h := range t.byHeight[height] {
			if len(out) >= rules.MaxPerBlock {
				break
			}
			cand := t.blocks[h]
			if err := t.ValidateUncle(rules, parent, cand.Header, tracker); err != nil {
				continue
			}
			dup := false
			for i := range out {
				if out[i].Hash() == h {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, cand.Header)
			}
		}
	}
	return out
}
