package chain

import (
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func tx(sender string, nonce, gasPrice uint64) *types.Transaction {
	return &types.Transaction{
		Sender:   types.AddressFromString(sender),
		To:       types.AddressFromString("sink"),
		Nonce:    nonce,
		Value:    1,
		GasPrice: gasPrice,
		Gas:      types.TxGas,
	}
}

func addStatus(t *testing.T, p *TxPool, x *types.Transaction) AddStatus {
	t.Helper()
	st, err := p.Add(x)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestTxPoolAddClassification(t *testing.T) {
	p := NewTxPool()
	if st := addStatus(t, p, tx("alice", 0, 10)); st != AddedExecutable {
		t.Fatalf("nonce 0: %v", st)
	}
	if st := addStatus(t, p, tx("alice", 2, 10)); st != AddedQueued {
		t.Fatalf("nonce gap: %v", st)
	}
	if st := addStatus(t, p, tx("alice", 0, 10)); st != AddedDuplicate {
		t.Fatalf("duplicate: %v", st)
	}
	if p.Len() != 2 {
		t.Fatalf("len: %d", p.Len())
	}
	if p.ExecutableCount() != 1 {
		t.Fatalf("executable: %d", p.ExecutableCount())
	}
	if _, err := p.Add(nil); err == nil {
		t.Fatal("nil tx must error")
	}
}

func TestTxPoolStaleAfterCommit(t *testing.T) {
	p := NewTxPool()
	a0 := tx("alice", 0, 10)
	addStatus(t, p, a0)
	if err := p.Commit([]*types.Transaction{a0}); err != nil {
		t.Fatal(err)
	}
	if st := addStatus(t, p, tx("alice", 0, 99)); st != AddedStale {
		t.Fatalf("stale: %v", st)
	}
	if p.NextNonce(types.AddressFromString("alice")) != 1 {
		t.Fatal("nonce not advanced")
	}
}

func TestTxPoolGapFill(t *testing.T) {
	p := NewTxPool()
	addStatus(t, p, tx("alice", 1, 10)) // out of order
	if p.ExecutableCount() != 0 {
		t.Fatal("gapped tx must not be executable")
	}
	addStatus(t, p, tx("alice", 0, 10)) // fills the gap
	if p.ExecutableCount() != 2 {
		t.Fatalf("executable after gap fill: %d", p.ExecutableCount())
	}
}

func TestSelectRespectsGasLimitAndPrice(t *testing.T) {
	p := NewTxPool()
	addStatus(t, p, tx("alice", 0, 5))
	addStatus(t, p, tx("bob", 0, 50))
	addStatus(t, p, tx("carol", 0, 20))
	// Room for exactly two transactions.
	got := p.Select(2 * types.TxGas)
	if len(got) != 2 {
		t.Fatalf("selected %d", len(got))
	}
	if got[0].GasPrice != 50 || got[1].GasPrice != 20 {
		t.Fatalf("price order: %d, %d", got[0].GasPrice, got[1].GasPrice)
	}
}

func TestSelectRespectsNonceOrder(t *testing.T) {
	p := NewTxPool()
	// alice nonce 1 pays more than nonce 0; selection must still take
	// 0 before 1.
	addStatus(t, p, tx("alice", 0, 5))
	addStatus(t, p, tx("alice", 1, 500))
	got := p.Select(10 * types.TxGas)
	if len(got) != 2 {
		t.Fatalf("selected %d", len(got))
	}
	if got[0].Nonce != 0 || got[1].Nonce != 1 {
		t.Fatalf("nonce order violated: %d, %d", got[0].Nonce, got[1].Nonce)
	}
}

func TestSelectSkipsQueuedTail(t *testing.T) {
	p := NewTxPool()
	addStatus(t, p, tx("alice", 0, 10))
	addStatus(t, p, tx("alice", 2, 10)) // gap at 1
	got := p.Select(10 * types.TxGas)
	if len(got) != 1 || got[0].Nonce != 0 {
		t.Fatalf("selected %v", got)
	}
}

func TestSelectDoesNotRemove(t *testing.T) {
	p := NewTxPool()
	addStatus(t, p, tx("alice", 0, 10))
	_ = p.Select(10 * types.TxGas)
	if p.Len() != 1 {
		t.Fatal("select must not remove")
	}
}

func TestCommitErrors(t *testing.T) {
	p := NewTxPool()
	addStatus(t, p, tx("alice", 0, 10))
	if err := p.Commit([]*types.Transaction{tx("alice", 1, 10)}); err == nil {
		t.Fatal("nonce-skipping commit must error")
	}
	if err := p.Commit([]*types.Transaction{nil}); err == nil {
		t.Fatal("nil tx commit must error")
	}
}

func TestCommitUnseenTxAdvancesNonce(t *testing.T) {
	// A block mined elsewhere can contain txs this pool never saw;
	// committing them must still advance the sender nonce so later
	// pool copies stay consistent.
	p := NewTxPool()
	if err := p.Commit([]*types.Transaction{tx("alice", 0, 10)}); err != nil {
		t.Fatal(err)
	}
	if p.NextNonce(types.AddressFromString("alice")) != 1 {
		t.Fatal("nonce not advanced for unseen tx")
	}
}

func TestKnown(t *testing.T) {
	p := NewTxPool()
	x := tx("alice", 0, 10)
	if p.Known(x.Hash()) {
		t.Fatal("unknown tx reported known")
	}
	addStatus(t, p, x)
	if !p.Known(x.Hash()) {
		t.Fatal("added tx not known")
	}
}

func TestSelectDeterministicProperty(t *testing.T) {
	// Two pools fed the same transactions in different orders must
	// select the same set (given the same committed state).
	f := func(seed uint64) bool {
		txs := []*types.Transaction{
			tx("a", 0, 7), tx("a", 1, 3), tx("b", 0, 7),
			tx("c", 0, 9), tx("c", 1, 1), tx("d", 0, 4),
		}
		p1 := NewTxPool()
		p2 := NewTxPool()
		for _, x := range txs {
			if _, err := p1.Add(x); err != nil {
				return false
			}
		}
		// Reverse order into p2.
		for i := len(txs) - 1; i >= 0; i-- {
			if _, err := p2.Add(txs[i]); err != nil {
				return false
			}
		}
		s1 := p1.Select(4 * types.TxGas)
		s2 := p2.Select(4 * types.TxGas)
		if len(s1) != len(s2) {
			return false
		}
		for i := range s1 {
			if s1[i].Hash() != s2[i].Hash() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSelectNonceOrderProperty(t *testing.T) {
	// Whatever the gas limit, per-sender nonces in a selection must be
	// contiguous ascending from the pool's next nonce.
	f := func(prices []uint8, limitBlocks uint8) bool {
		p := NewTxPool()
		for i, gp := range prices {
			if _, err := p.Add(tx("s", uint64(i), uint64(gp)+1)); err != nil {
				return false
			}
		}
		got := p.Select(uint64(limitBlocks%16) * types.TxGas)
		for i, x := range got {
			if x.Nonce != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
