// Package chain implements the blockchain substrate: a block tree with
// total-difficulty fork choice, Ethereum's uncle (ommer) rules, a
// difficulty schedule, and a nonce-ordered transaction pool.
//
// The package is deliberately a *tree*, not a list: the paper's fork
// analysis (§III-C4), one-miner forks (§III-C5) and uncle recognition
// (Table III) all live in the side branches.
package chain

import (
	"errors"
	"fmt"

	"repro/internal/types"
)

// Errors returned by the block tree.
var (
	ErrUnknownParent = errors.New("chain: unknown parent")
	ErrDuplicate     = errors.New("chain: duplicate block")
	ErrBadNumber     = errors.New("chain: block number != parent number + 1")
	ErrUnknownBlock  = errors.New("chain: unknown block")
)

// BlockTree stores every observed block, tracks the heaviest
// (total-difficulty) chain, and answers ancestry and fork queries.
type BlockTree struct {
	genesis   types.Hash
	blocks    map[types.Hash]*types.Block
	children  map[types.Hash][]types.Hash
	byHeight  map[uint64][]types.Hash
	totalDiff map[types.Hash]uint64
	head      types.Hash
}

// NewBlockTree creates a tree rooted at the given genesis block. The
// genesis counts toward total difficulty like any block.
func NewBlockTree(genesis *types.Block) *BlockTree {
	h := genesis.Hash()
	return &BlockTree{
		genesis:   h,
		blocks:    map[types.Hash]*types.Block{h: genesis},
		children:  make(map[types.Hash][]types.Hash),
		byHeight:  map[uint64][]types.Hash{genesis.Header.Number: {h}},
		totalDiff: map[types.Hash]uint64{h: genesis.Header.Difficulty},
		head:      h,
	}
}

// NewGenesis builds the canonical genesis block used across the
// reproduction.
func NewGenesis(difficulty, gasLimit uint64) *types.Block {
	return types.NewBlock(types.Header{
		ParentHash: types.ZeroHash,
		Number:     0,
		MinerLabel: "genesis",
		Difficulty: difficulty,
		GasLimit:   gasLimit,
	}, nil, nil)
}

// Genesis returns the genesis hash.
func (t *BlockTree) Genesis() types.Hash { return t.genesis }

// Len returns the number of blocks in the tree (including genesis).
func (t *BlockTree) Len() int { return len(t.blocks) }

// Head returns the tip of the heaviest chain.
func (t *BlockTree) Head() *types.Block { return t.blocks[t.head] }

// Block returns a block by hash.
func (t *BlockTree) Block(h types.Hash) (*types.Block, bool) {
	b, ok := t.blocks[h]
	return b, ok
}

// Has reports whether the tree contains a block.
func (t *BlockTree) Has(h types.Hash) bool {
	_, ok := t.blocks[h]
	return ok
}

// TotalDifficulty returns the cumulative difficulty of the chain
// ending at h.
func (t *BlockTree) TotalDifficulty(h types.Hash) (uint64, error) {
	td, ok := t.totalDiff[h]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownBlock, h.Short())
	}
	return td, nil
}

// Add inserts a block. The parent must already be present. The head
// moves when the new chain is strictly heavier (first-received wins
// ties, like Geth). It reports whether the head moved.
func (t *BlockTree) Add(b *types.Block) (reorged bool, err error) {
	h := b.Hash()
	if _, dup := t.blocks[h]; dup {
		return false, fmt.Errorf("%w: %s", ErrDuplicate, h.Short())
	}
	parent, ok := t.blocks[b.Header.ParentHash]
	if !ok {
		return false, fmt.Errorf("%w: block %s parent %s", ErrUnknownParent, h.Short(), b.Header.ParentHash.Short())
	}
	if b.Header.Number != parent.Header.Number+1 {
		return false, fmt.Errorf("%w: %d after %d", ErrBadNumber, b.Header.Number, parent.Header.Number)
	}
	t.blocks[h] = b
	t.children[b.Header.ParentHash] = append(t.children[b.Header.ParentHash], h)
	t.byHeight[b.Header.Number] = append(t.byHeight[b.Header.Number], h)
	td := t.totalDiff[b.Header.ParentHash] + b.Header.Difficulty
	t.totalDiff[h] = td
	if td > t.totalDiff[t.head] {
		t.head = h
		return true, nil
	}
	return false, nil
}

// AtHeight returns every block hash observed at the given height, in
// arrival order.
func (t *BlockTree) AtHeight(n uint64) []types.Hash {
	hs := t.byHeight[n]
	out := make([]types.Hash, len(hs))
	copy(out, hs)
	return out
}

// MaxHeight returns the height of the current head.
func (t *BlockTree) MaxHeight() uint64 { return t.blocks[t.head].Header.Number }

// IsMain reports whether the block at h lies on the heaviest chain.
func (t *BlockTree) IsMain(h types.Hash) bool {
	b, ok := t.blocks[h]
	if !ok {
		return false
	}
	onMain, ok := t.mainAt(b.Header.Number)
	return ok && onMain == h
}

// mainAt returns the main-chain hash at a height by walking back from
// the head.
func (t *BlockTree) mainAt(n uint64) (types.Hash, bool) {
	cur := t.head
	for {
		b := t.blocks[cur]
		if b.Header.Number == n {
			return cur, true
		}
		if b.Header.Number < n || cur == t.genesis {
			return types.Hash{}, false
		}
		cur = b.Header.ParentHash
	}
}

// MainChain returns the heaviest chain from genesis to head,
// inclusive.
func (t *BlockTree) MainChain() []*types.Block {
	var rev []*types.Block
	cur := t.head
	for {
		b := t.blocks[cur]
		rev = append(rev, b)
		if cur == t.genesis {
			break
		}
		cur = b.Header.ParentHash
	}
	out := make([]*types.Block, len(rev))
	for i, b := range rev {
		out[len(rev)-1-i] = b
	}
	return out
}

// IsAncestor reports whether a is an ancestor of (or equal to) b.
func (t *BlockTree) IsAncestor(a, b types.Hash) bool {
	ba, ok := t.blocks[a]
	if !ok {
		return false
	}
	cur, ok := t.blocks[b]
	if !ok {
		return false
	}
	for {
		if cur.Hash() == a {
			return true
		}
		if cur.Header.Number <= ba.Header.Number || cur.Hash() == t.genesis {
			return false
		}
		next, ok := t.blocks[cur.Header.ParentHash]
		if !ok {
			return false
		}
		cur = next
	}
}

// ConfirmationDepth returns how many blocks on the main chain follow
// the block at h (0 when h is the head). It returns an error when h is
// not on the main chain.
func (t *BlockTree) ConfirmationDepth(h types.Hash) (int, error) {
	b, ok := t.blocks[h]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownBlock, h.Short())
	}
	if !t.IsMain(h) {
		return 0, fmt.Errorf("chain: block %s not on main chain", h.Short())
	}
	return int(t.MaxHeight() - b.Header.Number), nil
}
