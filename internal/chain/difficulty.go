package chain

import (
	"repro/internal/sim"
)

// Difficulty schedule. Ethereum's Homestead-era rule moves the parent
// difficulty in steps of parent/2048: +1 step when the parent gap is
// under an adjustment granularity τ (mainnet: ~10 s), 0 steps in
// [τ, 2τ), −1 in [2τ, 3τ) and so on (clamped at −99), plus an
// exponential "difficulty bomb".
//
// Coupled with a mining rate proportional to hashrate/difficulty, the
// rule self-equilibrates: for exponential gaps the expected step count
// is (1−2x)/(1−x) with x = e^(−τ/μ), which vanishes at mean gap
// μ = τ/ln 2 ≈ 1.44τ. Mainnet's τ≈10 s equilibrium sits near the
// 13-14 s inter-block times the paper reports; the bomb perturbs the
// equilibrium upward until a fork delays it — exactly the
// 14.3 s → 13.3 s Constantinople story in §III-C1.

// DifficultyParams parameterizes the adjustment rule.
type DifficultyParams struct {
	// AdjustGranularity is τ: the gap quantum of the step rule. The
	// equilibrium mean inter-block time is τ/ln2.
	AdjustGranularity sim.Time
	// BoundDivisor is the step size denominator (Ethereum: 2048).
	BoundDivisor uint64
	// MinimumDifficulty floors the schedule.
	MinimumDifficulty uint64
	// BombEnabled switches the exponential term on.
	BombEnabled bool
	// BombDelayBlocks delays the bomb (EIP-1234 added 5M blocks).
	BombDelayBlocks uint64
	// BombPeriodBlocks is the doubling period (mainnet: 100,000).
	BombPeriodBlocks uint64
}

// DefaultDifficultyParams mirrors post-Constantinople mainnet scaled
// to the simulation: τ chosen so the equilibrium inter-block time is
// 13.3 s, bomb delayed beyond any experiment's horizon.
func DefaultDifficultyParams() DifficultyParams {
	return DifficultyParams{
		// 13300 ms * ln2 = 9219 ms.
		AdjustGranularity: 9219 * sim.Millisecond,
		BoundDivisor:      2048,
		MinimumDifficulty: 131_072,
		BombEnabled:       true,
		BombDelayBlocks:   5_000_000,
		BombPeriodBlocks:  100_000,
	}
}

// NextDifficulty computes a child difficulty from its parent's
// difficulty, the parent-child gap and the child height.
func NextDifficulty(p DifficultyParams, parentDifficulty uint64, gap sim.Time, childNumber uint64) uint64 {
	if gap < 0 {
		gap = 0
	}
	tau := p.AdjustGranularity
	if tau <= 0 {
		tau = 1
	}
	steps := int64(1) - int64(gap/tau)
	if steps < -99 {
		steps = -99
	}
	unit := parentDifficulty / p.BoundDivisor
	if unit == 0 {
		unit = 1
	}
	var out uint64
	if steps >= 0 {
		out = parentDifficulty + uint64(steps)*unit
	} else {
		sub := uint64(-steps) * unit
		if sub >= parentDifficulty {
			out = p.MinimumDifficulty
		} else {
			out = parentDifficulty - sub
		}
	}
	if out < p.MinimumDifficulty {
		out = p.MinimumDifficulty
	}
	if p.BombEnabled && p.BombPeriodBlocks > 0 && childNumber > p.BombDelayBlocks {
		period := (childNumber - p.BombDelayBlocks) / p.BombPeriodBlocks
		if period >= 2 {
			exp := period - 2
			if exp > 62 {
				exp = 62
			}
			out += uint64(1) << exp
		}
	}
	return out
}
