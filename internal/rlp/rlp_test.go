package rlp

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Canonical test vectors from the Ethereum wiki / yellow paper
// appendix B.
func TestEncodeVectors(t *testing.T) {
	cases := []struct {
		name string
		item Item
		want []byte
	}{
		{"empty string", String(nil), []byte{0x80}},
		{"single low byte", String([]byte{0x00}), []byte{0x00}},
		{"single byte 0x7f", String([]byte{0x7f}), []byte{0x7f}},
		{"single byte 0x80", String([]byte{0x80}), []byte{0x81, 0x80}},
		{"dog", String([]byte("dog")), []byte{0x83, 'd', 'o', 'g'}},
		{"empty list", List(), []byte{0xc0}},
		{
			"cat dog list",
			List(String([]byte("cat")), String([]byte("dog"))),
			[]byte{0xc8, 0x83, 'c', 'a', 't', 0x83, 'd', 'o', 'g'},
		},
		{"zero uint", Uint(0), []byte{0x80}},
		{"uint 15", Uint(15), []byte{0x0f}},
		{"uint 1024", Uint(1024), []byte{0x82, 0x04, 0x00}},
		{
			"set of three",
			List(List(), List(List()), List(List(), List(List()))),
			[]byte{0xc7, 0xc0, 0xc1, 0xc0, 0xc3, 0xc0, 0xc1, 0xc0},
		},
		{
			"56-byte string uses long form",
			String(bytes.Repeat([]byte{'a'}, 56)),
			append([]byte{0xb8, 56}, bytes.Repeat([]byte{'a'}, 56)...),
		},
		{
			"1024-byte string length encoding",
			String(bytes.Repeat([]byte{'b'}, 1024)),
			append([]byte{0xb9, 0x04, 0x00}, bytes.Repeat([]byte{'b'}, 1024)...),
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Encode(c.item)
			if !bytes.Equal(got, c.want) {
				t.Fatalf("encode: want %x, got %x", c.want, got)
			}
			if n := EncodedLen(c.item); n != len(c.want) {
				t.Fatalf("encodedLen: want %d, got %d", len(c.want), n)
			}
			back, err := Decode(got)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !itemsEqual(back, c.item) {
				t.Fatalf("roundtrip: want %+v, got %+v", c.item, back)
			}
		})
	}
}

func itemsEqual(a, b Item) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == KindString {
		return bytes.Equal(a.Bytes, b.Bytes)
	}
	if len(a.List) != len(b.List) {
		return false
	}
	for i := range a.List {
		if !itemsEqual(a.List[i], b.List[i]) {
			return false
		}
	}
	return true
}

func TestLongList(t *testing.T) {
	var children []Item
	for i := 0; i < 100; i++ {
		children = append(children, Uint(uint64(i)))
	}
	it := List(children...)
	enc := Encode(it)
	if enc[0] < 0xf8 {
		t.Fatalf("expected long-list tag, got %x", enc[0])
	}
	back, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !itemsEqual(back, it) {
		t.Fatal("long list roundtrip mismatch")
	}
}

func TestUintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		it := Uint(v)
		back, err := Decode(Encode(it))
		if err != nil {
			return false
		}
		got, err := back.AsUint()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRoundTripProperty(t *testing.T) {
	f := func(b []byte) bool {
		it := String(b)
		back, err := Decode(Encode(it))
		if err != nil {
			return false
		}
		got, err := back.AsBytes()
		return err == nil && bytes.Equal(got, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// randomItem builds a random RLP tree of bounded depth for the
// structural round-trip property test.
func randomItem(r *rand.Rand, depth int) Item {
	if depth == 0 || r.Intn(2) == 0 {
		b := make([]byte, r.Intn(70))
		r.Read(b)
		return String(b)
	}
	n := r.Intn(5)
	children := make([]Item, n)
	for i := range children {
		children[i] = randomItem(r, depth-1)
	}
	return List(children...)
}

func TestTreeRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		it := randomItem(r, 4)
		enc := Encode(it)
		if len(enc) != EncodedLen(it) {
			t.Fatalf("iteration %d: EncodedLen %d != len(Encode) %d", i, EncodedLen(it), len(enc))
		}
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("iteration %d: decode: %v", i, err)
		}
		if !itemsEqual(back, it) {
			t.Fatalf("iteration %d: roundtrip mismatch", i)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrEmptyInput},
		{"trailing", []byte{0x80, 0x00}, ErrTrailingBytes},
		{"truncated short string", []byte{0x83, 'd', 'o'}, ErrTruncated},
		{"truncated long string header", []byte{0xb8}, ErrTruncated},
		{"truncated list", []byte{0xc8, 0x83, 'c'}, ErrTruncated},
		{"non-canonical single byte", []byte{0x81, 0x05}, ErrNonCanonical},
		{"non-canonical long form", append([]byte{0xb8, 0x01}, 0xff), ErrNonCanonical},
		{"length leading zero", []byte{0xb9, 0x00, 0x38}, ErrNonCanonical},
		{"truncated long list payload", []byte{0xf8, 0x39}, ErrTruncated},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Decode(c.in)
			if !errors.Is(err, c.want) {
				t.Fatalf("want %v, got %v", c.want, err)
			}
		})
	}
}

func TestDecodeNeverPanicsOnRandomInput(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		b := make([]byte, r.Intn(64))
		r.Read(b)
		// Any result is fine; it just must not panic, and on success
		// the re-encoding must be byte-identical (canonical codec).
		it, err := Decode(b)
		if err != nil {
			continue
		}
		if got := Encode(it); !bytes.Equal(got, b) {
			t.Fatalf("decode/encode not canonical: in %x out %x", b, got)
		}
	}
}

func TestAccessors(t *testing.T) {
	s := String([]byte{1})
	l := List(s)
	if _, err := s.AsList(); !errors.Is(err, ErrNotList) {
		t.Errorf("AsList on string: %v", err)
	}
	if _, err := l.AsBytes(); !errors.Is(err, ErrNotString) {
		t.Errorf("AsBytes on list: %v", err)
	}
	if _, err := l.AsUint(); !errors.Is(err, ErrNotString) {
		t.Errorf("AsUint on list: %v", err)
	}
	children, err := l.AsList()
	if err != nil || len(children) != 1 {
		t.Errorf("AsList: %v %v", children, err)
	}
}

func TestAsUintErrors(t *testing.T) {
	if _, err := String(bytes.Repeat([]byte{1}, 9)).AsUint(); !errors.Is(err, ErrIntegerTooLarge) {
		t.Errorf("9-byte int: %v", err)
	}
	if _, err := String([]byte{0x00, 0x01}).AsUint(); !errors.Is(err, ErrLeadingZeroBytes) {
		t.Errorf("leading zero: %v", err)
	}
}

func TestUintBoundaries(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 255, 256, 1<<16 - 1, 1 << 16, 1<<32 - 1, 1 << 32, 1<<64 - 1} {
		it := Uint(v)
		got, err := it.AsUint()
		if err != nil || got != v {
			t.Errorf("uint %d: got %d, %v", v, got, err)
		}
		// Canonical: no leading zeroes.
		if len(it.Bytes) > 0 && it.Bytes[0] == 0 {
			t.Errorf("uint %d: leading zero in %x", v, it.Bytes)
		}
	}
}

func reflectDeepEqualGuard(t *testing.T) {
	t.Helper()
	// Item equality in tests goes through itemsEqual; make sure it
	// agrees with reflect.DeepEqual for simple values.
	a := List(Uint(5), String([]byte("x")))
	b := List(Uint(5), String([]byte("x")))
	if !itemsEqual(a, b) || !reflect.DeepEqual(Encode(a), Encode(b)) {
		t.Fatal("equality helpers disagree")
	}
}

func TestEqualityHelpers(t *testing.T) { reflectDeepEqualGuard(t) }
