// Package rlp implements Ethereum's Recursive Length Prefix
// serialization (yellow paper, appendix B). The wire format matters to
// the reproduction because serialized message sizes feed the network
// simulator's bandwidth/latency model, and because RLP is the substrate
// every real Ethereum client uses for block and transaction encoding.
//
// The data model is the standard RLP one: an Item is either a byte
// string or a list of Items. Helpers convert Go integers to and from
// big-endian minimal byte strings, matching the canonical integer
// encoding.
package rlp

import (
	"errors"
	"fmt"
)

// Kind discriminates the two RLP item kinds.
type Kind int

// RLP item kinds.
const (
	KindString Kind = iota + 1
	KindList
)

// Item is a node of an RLP value tree: either a byte string
// (Kind == KindString, Bytes set) or a list (Kind == KindList, List
// set).
type Item struct {
	Kind  Kind
	Bytes []byte
	List  []Item
}

// Decoding errors. They are exported so callers (e.g. the wire codec)
// can distinguish malformed input classes.
var (
	ErrEmptyInput       = errors.New("rlp: empty input")
	ErrTrailingBytes    = errors.New("rlp: trailing bytes after value")
	ErrTruncated        = errors.New("rlp: input truncated")
	ErrNonCanonical     = errors.New("rlp: non-canonical encoding")
	ErrLengthOverflow   = errors.New("rlp: length overflows int")
	ErrNotString        = errors.New("rlp: item is not a string")
	ErrNotList          = errors.New("rlp: item is not a list")
	ErrIntegerTooLarge  = errors.New("rlp: integer larger than uint64")
	ErrLeadingZeroBytes = errors.New("rlp: integer has leading zero bytes")
)

// String constructs a string item. The byte slice is used as-is; the
// caller must not mutate it afterwards.
func String(b []byte) Item { return Item{Kind: KindString, Bytes: b} }

// List constructs a list item from the given children.
func List(items ...Item) Item { return Item{Kind: KindList, List: items} }

// Uint constructs the canonical RLP encoding of an unsigned integer: a
// big-endian byte string with no leading zeroes (zero encodes as the
// empty string).
func Uint(v uint64) Item {
	if v == 0 {
		return String(nil)
	}
	var buf [8]byte
	n := 0
	for shift := 56; shift >= 0; shift -= 8 {
		b := byte(v >> uint(shift))
		if n == 0 && b == 0 {
			continue
		}
		buf[n] = b
		n++
	}
	out := make([]byte, n)
	copy(out, buf[:n])
	return String(out)
}

// AsUint interprets a string item as a canonical unsigned integer.
func (it Item) AsUint() (uint64, error) {
	if it.Kind != KindString {
		return 0, ErrNotString
	}
	if len(it.Bytes) > 8 {
		return 0, ErrIntegerTooLarge
	}
	if len(it.Bytes) > 0 && it.Bytes[0] == 0 {
		return 0, ErrLeadingZeroBytes
	}
	var v uint64
	for _, b := range it.Bytes {
		v = v<<8 | uint64(b)
	}
	return v, nil
}

// AsBytes returns the payload of a string item.
func (it Item) AsBytes() ([]byte, error) {
	if it.Kind != KindString {
		return nil, ErrNotString
	}
	return it.Bytes, nil
}

// AsList returns the children of a list item.
func (it Item) AsList() ([]Item, error) {
	if it.Kind != KindList {
		return nil, ErrNotList
	}
	return it.List, nil
}

// Encode serializes the item tree to its RLP byte representation.
func Encode(it Item) []byte {
	return appendItem(nil, it)
}

// EncodedLen returns the length of Encode(it) without allocating the
// encoding.
func EncodedLen(it Item) int {
	switch it.Kind {
	case KindList:
		payload := 0
		for _, child := range it.List {
			payload += EncodedLen(child)
		}
		return headerLen(payload) + payload
	default:
		if len(it.Bytes) == 1 && it.Bytes[0] < 0x80 {
			return 1
		}
		return headerLen(len(it.Bytes)) + len(it.Bytes)
	}
}

func headerLen(payload int) int {
	if payload <= 55 {
		return 1
	}
	return 1 + beLen(uint64(payload))
}

func beLen(v uint64) int {
	n := 0
	for v > 0 {
		n++
		v >>= 8
	}
	if n == 0 {
		n = 1
	}
	return n
}

func appendItem(dst []byte, it Item) []byte {
	switch it.Kind {
	case KindList:
		var payload []byte
		for _, child := range it.List {
			payload = appendItem(payload, child)
		}
		dst = appendHeader(dst, 0xc0, len(payload))
		return append(dst, payload...)
	default:
		if len(it.Bytes) == 1 && it.Bytes[0] < 0x80 {
			return append(dst, it.Bytes[0])
		}
		dst = appendHeader(dst, 0x80, len(it.Bytes))
		return append(dst, it.Bytes...)
	}
}

func appendHeader(dst []byte, base byte, payload int) []byte {
	if payload <= 55 {
		return append(dst, base+byte(payload))
	}
	n := beLen(uint64(payload))
	dst = append(dst, base+55+byte(n))
	for shift := (n - 1) * 8; shift >= 0; shift -= 8 {
		dst = append(dst, byte(payload>>uint(shift)))
	}
	return dst
}

// Decode parses a single RLP value from b, requiring the whole input to
// be consumed.
func Decode(b []byte) (Item, error) {
	if len(b) == 0 {
		return Item{}, ErrEmptyInput
	}
	it, rest, err := decodeOne(b)
	if err != nil {
		return Item{}, err
	}
	if len(rest) != 0 {
		return Item{}, ErrTrailingBytes
	}
	return it, nil
}

func decodeOne(b []byte) (Item, []byte, error) {
	if len(b) == 0 {
		return Item{}, nil, ErrTruncated
	}
	tag := b[0]
	switch {
	case tag < 0x80: // single byte
		return String(b[:1]), b[1:], nil
	case tag <= 0xb7: // short string
		n := int(tag - 0x80)
		if len(b) < 1+n {
			return Item{}, nil, ErrTruncated
		}
		payload := b[1 : 1+n]
		if n == 1 && payload[0] < 0x80 {
			return Item{}, nil, fmt.Errorf("%w: single byte below 0x80 must self-encode", ErrNonCanonical)
		}
		return String(payload), b[1+n:], nil
	case tag <= 0xbf: // long string
		lenN := int(tag - 0xb7)
		payload, rest, err := decodeLongPayload(b[1:], lenN, 55)
		if err != nil {
			return Item{}, nil, err
		}
		return String(payload), rest, nil
	case tag <= 0xf7: // short list
		n := int(tag - 0xc0)
		if len(b) < 1+n {
			return Item{}, nil, ErrTruncated
		}
		items, err := decodeListPayload(b[1 : 1+n])
		if err != nil {
			return Item{}, nil, err
		}
		return List(items...), b[1+n:], nil
	default: // long list
		lenN := int(tag - 0xf7)
		payload, rest, err := decodeLongPayload(b[1:], lenN, 55)
		if err != nil {
			return Item{}, nil, err
		}
		items, err := decodeListPayload(payload)
		if err != nil {
			return Item{}, nil, err
		}
		return List(items...), rest, nil
	}
}

// decodeLongPayload reads a lenN-byte big-endian length followed by
// that many payload bytes. minLen is the smallest payload length that
// legitimately requires the long form (anything smaller is
// non-canonical).
func decodeLongPayload(b []byte, lenN, minLen int) (payload, rest []byte, err error) {
	if len(b) < lenN {
		return nil, nil, ErrTruncated
	}
	if b[0] == 0 {
		return nil, nil, fmt.Errorf("%w: length has leading zero", ErrNonCanonical)
	}
	var n uint64
	for _, c := range b[:lenN] {
		if n > (1<<56)-1 {
			return nil, nil, ErrLengthOverflow
		}
		n = n<<8 | uint64(c)
	}
	if n <= uint64(minLen) {
		return nil, nil, fmt.Errorf("%w: long form used for short payload", ErrNonCanonical)
	}
	if uint64(len(b)-lenN) < n {
		return nil, nil, ErrTruncated
	}
	return b[lenN : lenN+int(n)], b[lenN+int(n):], nil
}

func decodeListPayload(b []byte) ([]Item, error) {
	var items []Item
	for len(b) > 0 {
		it, rest, err := decodeOne(b)
		if err != nil {
			return nil, err
		}
		items = append(items, it)
		b = rest
	}
	return items, nil
}
