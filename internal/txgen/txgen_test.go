package txgen

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/types"
)

type emittedTx struct {
	now    sim.Time
	tx     *types.Transaction
	origin geo.Region
}

func collect(t *testing.T, seed uint64, mutate func(*Config)) (*Generator, []emittedTx) {
	t.Helper()
	engine := sim.NewEngine()
	rng := sim.NewRNG(seed)
	var got []emittedTx
	cfg := DefaultConfig()
	cfg.Limit = 5000
	cfg.Submit = func(now sim.Time, tx *types.Transaction, origin geo.Region, _ bool) {
		got = append(got, emittedTx{now, tx, origin})
	}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := NewGenerator(engine, rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	engine.Run()
	return g, got
}

func TestGeneratorValidation(t *testing.T) {
	engine := sim.NewEngine()
	rng := sim.NewRNG(1)
	ok := DefaultConfig()
	ok.Submit = func(sim.Time, *types.Transaction, geo.Region, bool) {}
	bad := []func(*Config){
		func(c *Config) { c.Submit = nil },
		func(c *Config) { c.Senders = 0 },
		func(c *Config) { c.MeanInterArrival = 0 },
		func(c *Config) { c.OutOfOrderProb = 1.5 },
		func(c *Config) { c.ZipfExponent = 1.0 },
	}
	for i, mutate := range bad {
		cfg := ok
		mutate(&cfg)
		if _, err := NewGenerator(engine, rng, cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := NewGenerator(nil, rng, ok); err == nil {
		t.Error("nil engine should fail")
	}
	if _, err := NewGenerator(engine, rng, ok); err != nil {
		t.Errorf("valid config failed: %v", err)
	}
}

func TestGeneratorEmitsLimit(t *testing.T) {
	g, got := collect(t, 2, nil)
	// Held releases already in flight may emit a few past the limit.
	if g.Emitted() < 5000 || g.Emitted() > 5100 {
		t.Fatalf("emitted %d", g.Emitted())
	}
	if uint64(len(got)) != g.Emitted() || uint64(len(g.Records())) != g.Emitted() {
		t.Fatalf("collected %d records %d emitted %d", len(got), len(g.Records()), g.Emitted())
	}
}

func TestGeneratorArrivalRate(t *testing.T) {
	_, got := collect(t, 3, nil)
	span := got[len(got)-1].now - got[0].now
	rate := float64(len(got)) / span.Seconds()
	// ~8.3 tx/s (the held-back path adds some spread).
	if rate < 6 || rate > 11 {
		t.Fatalf("rate: %v tx/s", rate)
	}
}

func TestNoncesPerSenderAreCompleteAndUnique(t *testing.T) {
	_, got := collect(t, 4, nil)
	perSender := map[types.Address]map[uint64]bool{}
	maxNonce := map[types.Address]uint64{}
	for _, e := range got {
		m := perSender[e.tx.Sender]
		if m == nil {
			m = map[uint64]bool{}
			perSender[e.tx.Sender] = m
		}
		if m[e.tx.Nonce] {
			t.Fatalf("duplicate nonce %d for %s", e.tx.Nonce, e.tx.Sender)
		}
		m[e.tx.Nonce] = true
		if e.tx.Nonce > maxNonce[e.tx.Sender] {
			maxNonce[e.tx.Sender] = e.tx.Nonce
		}
	}
	// Every nonce from 0..max must exist (no permanent gaps after the
	// engine drained: held txs were all released).
	for sender, m := range perSender {
		for n := uint64(0); n <= maxNonce[sender]; n++ {
			if !m[n] {
				t.Fatalf("sender %s missing nonce %d", sender, n)
			}
		}
	}
}

func TestOutOfOrderFraction(t *testing.T) {
	_, got := collect(t, 5, nil)
	// A tx is observed out of order when some earlier emission from
	// the same sender carried a higher nonce.
	maxSeen := map[types.Address]int64{}
	ooo := 0
	for _, e := range got {
		prev, seen := maxSeen[e.tx.Sender]
		if seen && int64(e.tx.Nonce) < prev {
			ooo++
		}
		if int64(e.tx.Nonce) > prev || !seen {
			maxSeen[e.tx.Sender] = int64(e.tx.Nonce)
		}
	}
	frac := float64(ooo) / float64(len(got))
	// Paper: 11.54%. The generator is calibrated to land nearby.
	if math.Abs(frac-0.115) > 0.03 {
		t.Fatalf("out-of-order fraction: %v", frac)
	}
}

func TestOutOfOrderDisabled(t *testing.T) {
	_, got := collect(t, 6, func(c *Config) { c.OutOfOrderProb = 0 })
	maxSeen := map[types.Address]int64{}
	for _, e := range got {
		prev, seen := maxSeen[e.tx.Sender]
		if seen && int64(e.tx.Nonce) < prev {
			t.Fatal("out-of-order emission with prob 0")
		}
		maxSeen[e.tx.Sender] = int64(e.tx.Nonce)
	}
}

func TestHeldRecordsFlagged(t *testing.T) {
	g, _ := collect(t, 7, nil)
	held := 0
	for _, r := range g.Records() {
		if r.Held {
			held++
		}
	}
	if held == 0 {
		t.Fatal("no held emissions recorded")
	}
}

func TestSenderSkew(t *testing.T) {
	_, got := collect(t, 8, nil)
	counts := map[types.Address]int{}
	for _, e := range got {
		counts[e.tx.Sender]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := float64(len(got)) / float64(len(counts))
	if float64(max) < 3*mean {
		t.Fatalf("no Zipf skew: max %d vs mean %v", max, mean)
	}
}

func TestOriginsDispersed(t *testing.T) {
	_, got := collect(t, 9, nil)
	regions := map[geo.Region]int{}
	for _, e := range got {
		regions[e.origin]++
	}
	if len(regions) < 4 {
		t.Fatalf("origins concentrated in %d regions", len(regions))
	}
}

func TestGasPricesPositiveAndSpread(t *testing.T) {
	_, got := collect(t, 10, nil)
	distinct := map[uint64]bool{}
	for _, e := range got {
		if e.tx.GasPrice == 0 {
			t.Fatal("zero gas price")
		}
		distinct[e.tx.GasPrice] = true
	}
	if len(distinct) < 100 {
		t.Fatalf("gas prices not spread: %d distinct", len(distinct))
	}
}

func TestStopHaltsGeneration(t *testing.T) {
	engine := sim.NewEngine()
	rng := sim.NewRNG(11)
	cfg := DefaultConfig()
	count := 0
	cfg.Submit = func(sim.Time, *types.Transaction, geo.Region, bool) { count++ }
	g, err := NewGenerator(engine, rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	engine.RunFor(10 * sim.Second)
	g.Stop()
	engine.Run()
	final := g.Emitted()
	if final == 0 {
		t.Fatal("nothing emitted")
	}
	// Held releases may still fire after stop, but no new arrivals.
	if uint64(count) != final {
		t.Fatalf("callback count %d vs emitted %d", count, final)
	}
}

func TestDeterministicReplay(t *testing.T) {
	_, a := collect(t, 12, nil)
	_, b := collect(t, 12, nil)
	if len(a) != len(b) {
		t.Fatal("replay length mismatch")
	}
	for i := range a {
		if a[i].tx.Hash() != b[i].tx.Hash() || a[i].now != b[i].now {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}
