// Package txgen generates the transaction workload: Poisson arrivals
// from a Zipf-skewed population of geo-dispersed senders, each with a
// monotonically increasing nonce, and a controlled fraction of
// out-of-order emissions.
//
// The out-of-order mechanism mirrors what the paper observes
// (§III-C2): a sender's transaction with nonce n is occasionally
// observed after its successor n+1, forcing miners to delay the
// successor's inclusion. The generator implements this as a held-back
// emission: with probability OutOfOrderProb a transaction is retained
// until the sender's next transaction has been emitted, then released
// after a short lag.
package txgen

import (
	"errors"
	"fmt"

	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/types"
)

// Submit delivers a generated transaction to the system under test at
// a virtual time, from an origin region. private marks a transaction
// submitted directly to mining infrastructure without entering public
// gossip (PrivateProb) — the receiver-side mempool-divergence driver
// for compact-relay experiments.
type Submit func(now sim.Time, tx *types.Transaction, origin geo.Region, private bool)

// Config parameterizes the workload.
type Config struct {
	// Senders is the size of the sending population.
	Senders int
	// MeanInterArrival is the global mean time between transaction
	// submissions (all senders combined).
	MeanInterArrival sim.Time
	// ZipfExponent skews sender activity (>1; higher = more skew).
	ZipfExponent float64
	// OutOfOrderProb is the per-transaction probability of the
	// held-back emission that produces an out-of-order observation.
	OutOfOrderProb float64
	// HoldReleaseMean is the mean lag between emitting the successor
	// and releasing the held transaction.
	HoldReleaseMean sim.Time
	// HoldTimeout releases a held transaction even when the sender
	// stays quiet, bounding worst-case gaps.
	HoldTimeout sim.Time
	// MeanGasPrice sets the exponential gas-price distribution's mean
	// (plus 1 floor), in wei.
	MeanGasPrice uint64
	// PrivateProb is the per-transaction probability of a private
	// submission: the transaction reaches miners (the global pool)
	// but never enters overlay gossip, so block bodies diverge from
	// every node's mempool by roughly this fraction. Zero (the
	// default) draws nothing from the RNG, keeping legacy workloads
	// byte-identical.
	PrivateProb float64
	// Limit stops the generator after this many transactions
	// (0 = unlimited; the caller must stop the engine).
	Limit uint64
	// RegionShare distributes senders across regions; nil uses
	// geo.DefaultNodeShare (transactions are geographically dispersed,
	// unlike blocks — §III-A1).
	RegionShare map[geo.Region]float64
	// Submit receives every emitted transaction. Required.
	Submit Submit
}

// DefaultConfig returns a workload shaped like mainnet April 2019:
// ~100 tx per 13.3 s block (the paper captured 21.9M txs over one
// month ≈ 8.3 tx/s).
func DefaultConfig() Config {
	return Config{
		Senders:          2000,
		MeanInterArrival: 120 * sim.Millisecond, // ~8.3 tx/s
		ZipfExponent:     1.2,
		// Calibrated above the paper's 11.54% observed rate because a
		// hold only yields an out-of-order observation when the
		// sender's next transaction overtakes it before the timeout;
		// quiet-sender timeouts release in order.
		OutOfOrderProb:  0.16,
		HoldReleaseMean: 8 * sim.Second,
		HoldTimeout:     90 * sim.Second,
		MeanGasPrice:    10_000_000_000, // 10 Gwei
	}
}

// TxRecord is the generator's ground truth for one transaction.
type TxRecord struct {
	Hash     types.Hash
	Sender   types.Address
	Nonce    uint64
	EmitTime sim.Time
	Origin   geo.Region
	// Held reports whether this transaction was emitted via the
	// held-back (out-of-order) path.
	Held bool
	// Private reports a miner-direct submission that skipped gossip.
	Private bool
}

type senderState struct {
	address   types.Address
	region    geo.Region
	nextNonce uint64
	held      *types.Transaction
	heldSince sim.Time
	// holdTimer is the sender's safety-valve timeout, allocated on the
	// sender's first hold and rescheduled/cancelled thereafter — early
	// releases cancel it instead of leaving a tombstone event behind.
	holdTimer *sim.Timer
}

// Generator drives the workload on a simulation engine.
type Generator struct {
	engine  *sim.Engine
	rng     *sim.RNG
	cfg     Config
	zipf    *sim.Zipf
	senders []*senderState
	// arrival is the Poisson arrival loop's pooled timer handle.
	arrival *sim.Timer
	emitted uint64
	stopped bool
	records []TxRecord
}

// Configuration errors.
var (
	ErrNoSubmit  = errors.New("txgen: nil submit callback")
	ErrNoSenders = errors.New("txgen: need at least one sender")
)

// NewGenerator validates the configuration and prepares the sender
// population.
func NewGenerator(engine *sim.Engine, rng *sim.RNG, cfg Config) (*Generator, error) {
	if engine == nil || rng == nil {
		return nil, errors.New("txgen: nil engine or rng")
	}
	if cfg.Submit == nil {
		return nil, ErrNoSubmit
	}
	if cfg.Senders < 1 {
		return nil, ErrNoSenders
	}
	if cfg.MeanInterArrival <= 0 {
		return nil, fmt.Errorf("txgen: inter-arrival %v <= 0", cfg.MeanInterArrival)
	}
	if cfg.OutOfOrderProb < 0 || cfg.OutOfOrderProb > 1 {
		return nil, fmt.Errorf("txgen: out-of-order prob %v outside [0,1]", cfg.OutOfOrderProb)
	}
	if cfg.PrivateProb < 0 || cfg.PrivateProb > 1 {
		return nil, fmt.Errorf("txgen: private prob %v outside [0,1]", cfg.PrivateProb)
	}
	if cfg.ZipfExponent <= 1 {
		return nil, fmt.Errorf("txgen: zipf exponent %v must be > 1", cfg.ZipfExponent)
	}
	share := cfg.RegionShare
	if share == nil {
		share = geo.DefaultNodeShare
	}
	placement, err := geo.PlaceNodes(cfg.Senders, share)
	if err != nil {
		return nil, fmt.Errorf("txgen: place senders: %w", err)
	}
	g := &Generator{
		engine: engine,
		rng:    rng,
		cfg:    cfg,
		zipf:   sim.NewZipf(rng, cfg.Senders, cfg.ZipfExponent),
	}
	g.arrival = engine.NewTimer(g.arrivalTick)
	for i := 0; i < cfg.Senders; i++ {
		g.senders = append(g.senders, &senderState{
			address: types.AddressFromString(fmt.Sprintf("sender-%d", i)),
			region:  placement[i],
		})
	}
	return g, nil
}

// Start schedules the first arrival.
func (g *Generator) Start() {
	g.stopped = false
	g.scheduleNext()
}

// Stop halts generation; held transactions already scheduled for
// release still emit. The pending arrival is cancelled outright.
func (g *Generator) Stop() {
	g.stopped = true
	g.arrival.Stop()
}

// Emitted returns the number of transactions handed to Submit so far.
func (g *Generator) Emitted() uint64 { return g.emitted }

// Records returns the ground-truth records of all emitted
// transactions, in emission order.
func (g *Generator) Records() []TxRecord {
	out := make([]TxRecord, len(g.records))
	copy(out, g.records)
	return out
}

func (g *Generator) scheduleNext() {
	if g.stopped || (g.cfg.Limit > 0 && g.emitted >= g.cfg.Limit) {
		return
	}
	g.arrival.Reset(g.rng.ExpTime(g.cfg.MeanInterArrival))
}

// arrivalTick is the arrival timer's callback: process one arrival and
// schedule the next.
func (g *Generator) arrivalTick(now sim.Time) {
	if g.stopped || (g.cfg.Limit > 0 && g.emitted >= g.cfg.Limit) {
		return
	}
	g.doArrival(now)
	g.scheduleNext()
}

// doArrival processes one workload arrival: build the sender's next
// transaction and emit, hold, or release as the out-of-order model
// dictates.
func (g *Generator) doArrival(now sim.Time) {
	s := g.senders[g.zipf.Sample()]
	tx := &types.Transaction{
		Sender:   s.address,
		To:       types.AddressFromString(fmt.Sprintf("recipient-%d", g.rng.IntN(10_000))),
		Nonce:    s.nextNonce,
		Value:    uint64(1 + g.rng.IntN(1_000_000)),
		GasPrice: 1 + uint64(g.rng.Exponential(float64(g.cfg.MeanGasPrice))),
		Gas:      types.TxGas,
	}
	s.nextNonce++

	if s.held != nil {
		// The successor goes out first; the held predecessor follows
		// shortly — this is the out-of-order pair.
		g.emit(now, s, tx, false)
		g.releaseHeld(now, s)
		return
	}
	if g.cfg.OutOfOrderProb > 0 && g.rng.Bernoulli(g.cfg.OutOfOrderProb) {
		s.held = tx
		s.heldSince = now
		// Safety valve: a quiet sender must not stall its nonce
		// stream forever. One timer per sender, rescheduled per hold.
		if g.cfg.HoldTimeout > 0 {
			if s.holdTimer == nil {
				sender := s
				s.holdTimer = g.engine.NewTimer(func(later sim.Time) {
					g.releaseHeld(later, sender)
				})
			}
			s.holdTimer.Reset(g.cfg.HoldTimeout)
		}
		return
	}
	g.emit(now, s, tx, false)
}

func (g *Generator) releaseHeld(now sim.Time, s *senderState) {
	held := s.held
	if held == nil {
		return
	}
	s.held = nil
	if s.holdTimer != nil {
		// Early release (successor arrived first): the safety valve is
		// moot — cancel it instead of letting a dead event fire.
		s.holdTimer.Stop()
	}
	lag := g.rng.ExpTime(g.cfg.HoldReleaseMean)
	g.engine.Schedule(lag, func(later sim.Time) {
		g.emit(later, s, held, true)
	})
}

func (g *Generator) emit(now sim.Time, s *senderState, tx *types.Transaction, wasHeld bool) {
	g.emitted++
	// The private draw is gated so a zero probability consumes no RNG
	// — legacy workloads stay byte-identical.
	private := g.cfg.PrivateProb > 0 && g.rng.Bernoulli(g.cfg.PrivateProb)
	g.records = append(g.records, TxRecord{
		Hash:     tx.Hash(),
		Sender:   tx.Sender,
		Nonce:    tx.Nonce,
		EmitTime: now,
		Origin:   s.region,
		Held:     wasHeld,
		Private:  private,
	})
	g.cfg.Submit(now, tx, s.region, private)
}
