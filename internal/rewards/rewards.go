// Package rewards implements Ethereum's Byzantium/Constantinople block
// reward schedule and derives the per-pool revenue accounting behind
// the paper's incentive arguments:
//
//   - §III-C3: empty blocks sacrifice transaction fees but keep the
//     (much larger) static block reward — the "perverse incentive".
//   - §III-C5: one-miner fork versions earn uncle rewards in 98% of
//     observed 2-/3-tuples, so mining several versions of one's own
//     block pays.
//   - §V: the restricted uncle rule removes exactly that revenue.
//
// Amounts are denominated in gwei (1 ETH = 1e9 gwei): wei-denominated
// uint64 aggregates would overflow after only ~9 blocks of 2 ETH
// rewards, while gwei keeps whole-chain totals comfortably in range.
// Constantinople (EIP-1234) set the static block reward to 2 ETH.
package rewards

import (
	"errors"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/types"
)

// Gwei-denominated schedule constants.
const (
	// GweiPerETH is the gwei/ETH scale.
	GweiPerETH = 1_000_000_000
	// WeiPerGwei converts wei gas prices into gwei accounting units.
	WeiPerGwei = 1_000_000_000
	// BlockRewardGwei is the post-Constantinople static reward (2 ETH).
	BlockRewardGwei = 2 * GweiPerETH
	// NephewRewardDenominator: each referenced uncle earns the
	// including block 1/32 of the block reward.
	NephewRewardDenominator = 32
	// UncleRewardDenominator scales the uncle miner's reward:
	// (8 - depth) / 8 of the block reward.
	UncleRewardDenominator = 8
)

// Schedule captures the reward parameters (a value type so ablations
// can tweak it).
type Schedule struct {
	BlockRewardGwei uint64
}

// DefaultSchedule returns the Constantinople schedule in force during
// the paper's measurement window.
func DefaultSchedule() Schedule {
	return Schedule{BlockRewardGwei: BlockRewardGwei}
}

// UncleReward returns the reward paid to an uncle's miner when the
// uncle at height uncleNumber is referenced by a block at height
// includeNumber: blockReward * (8 - depth) / 8, zero beyond depth 7.
func (s Schedule) UncleReward(uncleNumber, includeNumber uint64) (uint64, error) {
	if includeNumber <= uncleNumber {
		return 0, fmt.Errorf("rewards: include height %d not above uncle height %d", includeNumber, uncleNumber)
	}
	depth := includeNumber - uncleNumber
	if depth > types.MaxUncleDepth {
		return 0, nil
	}
	return s.BlockRewardGwei / UncleRewardDenominator * (UncleRewardDenominator - depth), nil
}

// NephewReward returns the bonus the including miner earns per
// referenced uncle.
func (s Schedule) NephewReward() uint64 {
	return s.BlockRewardGwei / NephewRewardDenominator
}

// PoolRevenue aggregates one pool's earnings over an analysis window.
type PoolRevenue struct {
	Pool string
	// BlocksMined counts main-chain blocks.
	BlocksMined int
	// UnclesRewarded counts this pool's blocks that earned uncle
	// rewards.
	UnclesRewarded int
	// BlockRewardGwei is static reward income (main blocks).
	BlockRewardGwei uint64
	// FeeGwei is transaction fee income (gas * gasPrice summed).
	FeeGwei uint64
	// NephewGwei is income from referencing other miners' uncles.
	NephewGwei uint64
	// UncleGwei is income from this pool's own stale blocks being
	// referenced.
	UncleGwei uint64
	// OneMinerUncleGwei is the subset of UncleGwei earned by blocks at
	// heights where the pool also mined the main block — the §III-C5
	// exploit revenue.
	OneMinerUncleGwei uint64
}

// Total returns the pool's total income.
func (r PoolRevenue) Total() uint64 {
	return r.BlockRewardGwei + r.FeeGwei + r.NephewGwei + r.UncleGwei
}

// Accounting errors.
var ErrNoView = errors.New("rewards: nil or empty chain view")

// Accounting computes per-pool revenue from a chain view. Fee income
// uses each block's GasUsed-weighted transaction gas prices when full
// transactions are available; the simulation's chain view carries tx
// hashes only, so fees are approximated as gasUsed * meanGasPriceWei.
func Accounting(view *analysis.ChainView, s Schedule, meanGasPriceWei uint64) (map[string]*PoolRevenue, error) {
	if view == nil || len(view.Main) == 0 {
		return nil, ErrNoView
	}
	out := make(map[string]*PoolRevenue)
	get := func(pool string) *PoolRevenue {
		r, ok := out[pool]
		if !ok {
			r = &PoolRevenue{Pool: pool}
			out[pool] = r
		}
		return r
	}
	// Height index of main-chain miners for the one-miner split.
	mainMinerAt := make(map[uint64]string, len(view.Main))
	for _, meta := range view.Main {
		mainMinerAt[meta.Number] = meta.Miner
	}
	// Uncle inclusion heights: map uncle hash -> including height.
	includedAt := make(map[types.Hash]uint64)
	for _, meta := range view.Main {
		for _, u := range meta.Uncles {
			if _, dup := includedAt[u]; !dup {
				includedAt[u] = meta.Number
			}
		}
	}
	for _, meta := range view.Main {
		r := get(meta.Miner)
		r.BlocksMined++
		r.BlockRewardGwei += s.BlockRewardGwei
		r.FeeGwei += uint64(meta.TxCount) * types.TxGas * (meanGasPriceWei / WeiPerGwei)
		r.NephewGwei += uint64(len(meta.Uncles)) * s.NephewReward()
	}
	for h, include := range includedAt {
		uncle, ok := view.All[h]
		if !ok {
			continue
		}
		reward, err := s.UncleReward(uncle.Number, include)
		if err != nil {
			return nil, err
		}
		r := get(uncle.Miner)
		r.UnclesRewarded++
		r.UncleGwei += reward
		if mainMinerAt[uncle.Number] == uncle.Miner {
			r.OneMinerUncleGwei += reward
		}
	}
	return out, nil
}

// EmptyBlockTradeoff quantifies §III-C3's incentive: the fee income an
// empty block forgoes versus the static reward it keeps, as a
// fraction. With ~100 transactions per block at ~10 Gwei, fees are
// ~0.02 ETH against a 2 ETH reward — about 1%: the penalty the paper
// calls small compared to the head-start benefit.
func EmptyBlockTradeoff(s Schedule, txPerBlock int, meanGasPriceWei uint64) (forgoneFeeGwei uint64, fractionOfReward float64) {
	forgoneFeeGwei = uint64(txPerBlock) * types.TxGas * (meanGasPriceWei / WeiPerGwei)
	if s.BlockRewardGwei == 0 {
		return forgoneFeeGwei, 0
	}
	return forgoneFeeGwei, float64(forgoneFeeGwei) / float64(s.BlockRewardGwei)
}
