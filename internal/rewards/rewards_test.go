package rewards

import (
	"errors"
	"testing"

	"repro/internal/analysis"
	"repro/internal/types"
)

func TestUncleRewardSchedule(t *testing.T) {
	s := DefaultSchedule()
	cases := []struct {
		uncle, include uint64
		wantNum        uint64 // numerator of reward/blockReward in eighths
	}{
		{9, 10, 7},  // depth 1: 7/8
		{9, 11, 6},  // depth 2: 6/8
		{9, 16, 0},  // depth 7: 1/8
		{9, 17, 99}, // depth 8: zero (sentinel below)
	}
	for _, c := range cases {
		got, err := s.UncleReward(c.uncle, c.include)
		if err != nil {
			t.Fatalf("(%d,%d): %v", c.uncle, c.include, err)
		}
		if c.wantNum == 99 {
			if got != 0 {
				t.Errorf("depth 8 must pay 0, got %d", got)
			}
			continue
		}
		if c.wantNum == 0 {
			// depth 7 pays 1/8.
			if got != s.BlockRewardGwei/8 {
				t.Errorf("depth 7: want %d, got %d", s.BlockRewardGwei/8, got)
			}
			continue
		}
		want := s.BlockRewardGwei / 8 * c.wantNum
		if got != want {
			t.Errorf("(%d,%d): want %d, got %d", c.uncle, c.include, want, got)
		}
	}
	if _, err := s.UncleReward(10, 10); err == nil {
		t.Error("same height must error")
	}
	if _, err := s.UncleReward(10, 5); err == nil {
		t.Error("inverted heights must error")
	}
}

func TestNephewReward(t *testing.T) {
	s := DefaultSchedule()
	if s.NephewReward() != BlockRewardGwei/32 {
		t.Fatalf("nephew: %d", s.NephewReward())
	}
}

// buildRevenueView: main chain A,B,A; one uncle by B at height 1
// (referenced at height 2), one one-miner uncle by A at height 3
// (referenced would need height 4; leave unreferenced), and a
// one-miner uncle by A at height 1 referenced at height 3.
func buildRevenueView() *analysis.ChainView {
	h := func(s string) types.Hash { return types.HashBytes([]byte(s)) }
	v := &analysis.ChainView{
		All:       map[types.Hash]analysis.BlockMeta{},
		UncleRefs: map[types.Hash]bool{},
		MainSet:   map[types.Hash]bool{},
	}
	add := func(meta analysis.BlockMeta, main bool) {
		v.All[meta.Hash] = meta
		if main {
			v.Main = append(v.Main, meta)
			v.MainSet[meta.Hash] = true
		}
	}
	add(analysis.BlockMeta{Hash: h("m1"), Parent: h("g"), Number: 1, Miner: "A", TxCount: 10}, true)
	add(analysis.BlockMeta{Hash: h("m2"), Parent: h("m1"), Number: 2, Miner: "B", TxCount: 5,
		Uncles: []types.Hash{h("uB")}}, true)
	add(analysis.BlockMeta{Hash: h("m3"), Parent: h("m2"), Number: 3, Miner: "A", TxCount: 0,
		Uncles: []types.Hash{h("uA")}}, true)
	// uB: B's stale sibling at height 1? No — uncle by C at height 1.
	add(analysis.BlockMeta{Hash: h("uB"), Parent: h("g"), Number: 1, Miner: "C", TxCount: 10}, false)
	// uA: A's own sibling at height 1, referenced at height 3 (a
	// one-miner uncle: A mined main height 1 too).
	add(analysis.BlockMeta{Hash: h("uA"), Parent: h("g"), Number: 1, Miner: "A", TxCount: 10}, false)
	v.UncleRefs[h("uB")] = true
	v.UncleRefs[h("uA")] = true
	return v
}

func TestAccounting(t *testing.T) {
	const gasPrice = 10_000_000_000
	view := buildRevenueView()
	s := DefaultSchedule()
	rev, err := Accounting(view, s, gasPrice)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := rev["A"], rev["B"], rev["C"]
	if a == nil || b == nil || c == nil {
		t.Fatalf("missing pools: %+v", rev)
	}
	if a.BlocksMined != 2 || b.BlocksMined != 1 || c.BlocksMined != 0 {
		t.Fatalf("mined: %d %d %d", a.BlocksMined, b.BlocksMined, c.BlocksMined)
	}
	// Static rewards.
	if a.BlockRewardGwei != 2*s.BlockRewardGwei || b.BlockRewardGwei != s.BlockRewardGwei {
		t.Fatal("block rewards wrong")
	}
	// Fees: A mined 10 + 0 txs, B mined 5.
	if a.FeeGwei != 10*types.TxGas*(gasPrice/WeiPerGwei) {
		t.Fatalf("A fees: %d", a.FeeGwei)
	}
	if b.FeeGwei != 5*types.TxGas*(gasPrice/WeiPerGwei) {
		t.Fatalf("B fees: %d", b.FeeGwei)
	}
	// Nephews: B referenced 1 uncle, A referenced 1.
	if b.NephewGwei != s.NephewReward() || a.NephewGwei != s.NephewReward() {
		t.Fatal("nephew rewards wrong")
	}
	// C's uncle at depth 1: 7/8 reward.
	if c.UncleGwei != s.BlockRewardGwei/8*7 {
		t.Fatalf("C uncle: %d", c.UncleGwei)
	}
	if c.OneMinerUncleGwei != 0 {
		t.Fatal("C has no one-miner revenue")
	}
	// A's own-sibling uncle at depth 2: 6/8 reward, all of it
	// one-miner revenue.
	if a.UncleGwei != s.BlockRewardGwei/8*6 {
		t.Fatalf("A uncle: %d", a.UncleGwei)
	}
	if a.OneMinerUncleGwei != a.UncleGwei {
		t.Fatalf("A one-miner split: %d vs %d", a.OneMinerUncleGwei, a.UncleGwei)
	}
	if a.UnclesRewarded != 1 || c.UnclesRewarded != 1 {
		t.Fatal("uncle counts wrong")
	}
	// Totals add up.
	if a.Total() != a.BlockRewardGwei+a.FeeGwei+a.NephewGwei+a.UncleGwei {
		t.Fatal("total wrong")
	}
}

func TestAccountingErrors(t *testing.T) {
	if _, err := Accounting(nil, DefaultSchedule(), 1); !errors.Is(err, ErrNoView) {
		t.Fatalf("nil view: %v", err)
	}
	if _, err := Accounting(&analysis.ChainView{}, DefaultSchedule(), 1); !errors.Is(err, ErrNoView) {
		t.Fatalf("empty view: %v", err)
	}
}

func TestEmptyBlockTradeoff(t *testing.T) {
	// The paper's §III-C3 argument: fees are tiny vs the block
	// reward. 100 txs at 10 Gwei ≈ 0.021 ETH vs 2 ETH ≈ 1%.
	forgone, frac := EmptyBlockTradeoff(DefaultSchedule(), 100, 10_000_000_000)
	if forgone != 100*types.TxGas*10 { // 10 gwei gas price
		t.Fatalf("forgone: %d", forgone)
	}
	if frac < 0.005 || frac > 0.02 {
		t.Fatalf("fee fraction %v should be ~1%%", frac)
	}
	_, zero := EmptyBlockTradeoff(Schedule{}, 100, 1)
	if zero != 0 {
		t.Fatal("zero reward guard")
	}
}
