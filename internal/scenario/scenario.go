// Package scenario adds a declarative front-end to the experiment
// registry: JSON files describing a full experiment — regions and
// node counts, peer topology, pool hashrate shares and behaviors,
// transaction workload, chain parameters — are validated, optionally
// expanded over parameter sweeps (one file, many variants), and
// compiled into experiments.Spec values that run on the parallel
// campaign runner exactly like the built-in paper specs.
//
// The flow mirrors what cmd/ethrepro does with built-ins:
//
//	set, err := scenario.Load("examples/scenarios/paper-baseline.json")
//	specs, err := set.Compile()
//	for _, sp := range specs { experiments.Register(sp) }
//
// Every compiled Spec.Run is a pure function of (seed, scale), so
// scenario campaigns inherit the runner's determinism contract:
// byte-identical artifacts at any -parallel setting.
package scenario

import (
	"fmt"
	"strings"

	"repro/internal/geo"
	"repro/internal/p2p/relay"
	"repro/internal/sim"
)

// Scenario modes.
const (
	// ModeNetwork runs a full overlay campaign (core.RunCampaign):
	// gossip, measurement nodes, optional transaction workload.
	ModeNetwork = "network"
	// ModeChain runs the mining model only (core.RunChainOnly):
	// chain-level statistics at 10-100x the block throughput.
	ModeChain = "chain"
)

// Scenario is one resolved experiment description — the file schema
// with any sweep bindings already applied. Field names are the JSON
// schema documented in EXPERIMENTS.md.
type Scenario struct {
	// Name is the registry ID stem. It must be lowercase
	// alphanumeric plus [._-] so variant IDs stay selectable via
	// ethrepro -only (the sweep separator characters @+=, are
	// reserved).
	Name string `json:"name"`
	// Title labels the scenario in -list output (default: Name).
	Title string `json:"title,omitempty"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
	// Mode selects the execution substrate: "network" (default) or
	// "chain".
	Mode string `json:"mode,omitempty"`
	// Network configures the overlay (network mode only).
	Network *NetworkSection `json:"network,omitempty"`
	// Chain configures block production (both modes).
	Chain *ChainSection `json:"chain,omitempty"`
	// Pools overrides the paper's pool registry. Empty keeps
	// mining.PaperPools.
	Pools []PoolSection `json:"pools,omitempty"`
	// NormalizeShares rescales pool shares to sum to 1, letting a
	// sweep vary one pool's share without re-balancing the others.
	NormalizeShares bool `json:"normalize_shares,omitempty"`
	// Measurement lists instrumented nodes (network mode; default:
	// the paper's four vantage points with unlimited peers).
	Measurement []MeasurementSection `json:"measurement,omitempty"`
	// Workload enables a transaction workload (network mode only).
	Workload *WorkloadSection `json:"workload,omitempty"`
	// Faults injects dependability events into the campaign (network
	// mode only): crash/recover, partitions, link loss, churn.
	Faults *FaultsSection `json:"faults,omitempty"`
	// Outputs selects the analyses to run; see OutputNames. Default:
	// propagation+first_observation (network), forks+sequences
	// (chain).
	Outputs []string `json:"outputs,omitempty"`
	// Repeats suggests a repeat count to the runner; ethrepro uses it
	// when -repeats is not given explicitly.
	Repeats int `json:"repeats,omitempty"`
	// ScaleFactors maps scale names (small|medium|paper|stress|
	// stress100k) to multipliers applied to node and block counts.
	// The file's literal numbers are the medium scale; defaults are
	// {small: 0.25, medium: 1, paper: 2, stress: 8, stress100k: 80}.
	ScaleFactors map[string]float64 `json:"scale_factors,omitempty"`
}

// NetworkSection sizes and wires the overlay.
type NetworkSection struct {
	// Nodes is the overlay size at medium scale.
	Nodes int `json:"nodes"`
	// Degree is each node's dial-out count (default 8).
	Degree int `json:"degree,omitempty"`
	// Push is the legacy dissemination-policy spelling: "sqrt"
	// (default), "all" or "announce". Superseded by the relay section;
	// setting both is an error.
	Push string `json:"push,omitempty"`
	// Relay selects and parameterizes the block-relay protocol. Its
	// fields are sweepable (e.g. a "network.relay.protocol" axis runs
	// one scenario file across protocols).
	Relay *RelaySection `json:"relay,omitempty"`
	// Kademlia wires the overlay through the discovery substrate
	// instead of uniform random wiring.
	Kademlia bool `json:"kademlia,omitempty"`
	// NodeShare distributes nodes across regions, keyed by region
	// abbreviation (NA, EA, WE, CE, SA, OC). Shares must sum to ~1;
	// default geo.DefaultNodeShare.
	NodeShare map[string]float64 `json:"node_share,omitempty"`
}

// RelaySection configures the pluggable block-relay protocol
// (internal/p2p/relay in schema form).
type RelaySection struct {
	// Protocol names the discipline: sqrt-push (default), push-all,
	// announce-only, compact or hybrid.
	Protocol string `json:"protocol,omitempty"`
	// PushFraction is the hybrid protocol's full-body push fan-out
	// fraction (0,1]; nil keeps relay.DefaultPushFraction.
	PushFraction *float64 `json:"push_fraction,omitempty"`
	// FallbackThreshold is the compact protocol's missing-transaction
	// fraction above which it fetches the full body; nil keeps
	// relay.DefaultFallbackThreshold.
	FallbackThreshold *float64 `json:"fallback_threshold,omitempty"`
}

// ChainSection sets block-production parameters.
type ChainSection struct {
	// Blocks is the number of block heights at medium scale.
	Blocks uint64 `json:"blocks"`
	// InterBlockMS is the mean inter-block time in milliseconds
	// (default 13300, post-Constantinople mainnet).
	InterBlockMS int64 `json:"inter_block_ms,omitempty"`
	// GatewayDelayMS is the base gateway-to-gateway delay; nil keeps
	// the default 150 ms, an explicit 0 strips it (whole-chain runs).
	GatewayDelayMS *int64 `json:"gateway_delay_ms,omitempty"`
	// GasLimit is the block gas limit (default 8M).
	GasLimit uint64 `json:"gas_limit,omitempty"`
	// InitialDifficulty seeds the genesis difficulty.
	InitialDifficulty uint64 `json:"initial_difficulty,omitempty"`
	// RestrictOneMinerUncles applies the paper's §V Lesson-1 rule.
	RestrictOneMinerUncles bool `json:"restrict_one_miner_uncles,omitempty"`
}

// PoolSection describes one mining pool (mining.PoolConfig in schema
// form).
type PoolSection struct {
	Name string `json:"name"`
	// Share is the hashrate fraction (weights when normalize_shares).
	Share float64 `json:"share"`
	// Gateways lists gateway region abbreviations.
	Gateways []string `json:"gateways"`
	// EmptyBlockProb, MultiVersionProb, MultiVersionSameTxProb are
	// the selfish-behavior probabilities (§III-C3, §III-C5).
	EmptyBlockProb         float64 `json:"empty_block_prob,omitempty"`
	MultiVersionProb       float64 `json:"multi_version_prob,omitempty"`
	MultiVersionSameTxProb float64 `json:"multi_version_same_tx_prob,omitempty"`
	// SwitchDelayMS is the worker head-switch delay; nil keeps the
	// calibrated 850 ms, explicit 0 strips it.
	SwitchDelayMS *int64 `json:"switch_delay_ms,omitempty"`
	// Withholder runs the §III-D private-chain burst strategy.
	Withholder bool `json:"withholder,omitempty"`
}

// MeasurementSection places one instrumented node.
type MeasurementSection struct {
	Name   string `json:"name"`
	Region string `json:"region"`
	// Peers is the connection count; 0 means unlimited (the paper's
	// primary nodes).
	Peers int `json:"peers,omitempty"`
}

// FaultsSection configures the fault injector (internal/faults in
// schema form). Every subsection is optional; at least one must be
// present.
type FaultsSection struct {
	Crash      *CrashSection      `json:"crash,omitempty"`
	Partitions []PartitionSection `json:"partitions,omitempty"`
	Loss       *LossSection       `json:"loss,omitempty"`
	Churn      *ChurnSection      `json:"churn,omitempty"`
}

// CrashSection drives the crash/recover process.
type CrashSection struct {
	// MeanBetweenMS is the mean interval between crash events across
	// the overlay.
	MeanBetweenMS int64 `json:"mean_between_ms"`
	// MeanDowntimeMS is the mean outage duration.
	MeanDowntimeMS int64 `json:"mean_downtime_ms"`
	// MaxCrashes bounds total crashes (0 = unlimited).
	MaxCrashes int `json:"max_crashes,omitempty"`
}

// PartitionSection is one scheduled region split that heals.
type PartitionSection struct {
	// AtMS is the split's start time.
	AtMS int64 `json:"at_ms"`
	// DurationMS is how long the split lasts before healing.
	DurationMS int64 `json:"duration_ms"`
	// Regions is the isolated side (region abbreviations).
	Regions []string `json:"regions"`
}

// LossSection degrades links.
type LossSection struct {
	// DropProb is the per-message drop probability.
	DropProb float64 `json:"drop_prob,omitempty"`
	// ExtraDelayMeanMS adds an exponential extra delay per message.
	ExtraDelayMeanMS int64 `json:"extra_delay_mean_ms,omitempty"`
}

// ChurnSection drives continuous join/leave membership change.
type ChurnSection struct {
	// MeanBetweenMS is the mean interval between churn events.
	MeanBetweenMS int64 `json:"mean_between_ms"`
	// JoinFraction is the probability an event is a join (default 0.5).
	JoinFraction *float64 `json:"join_fraction,omitempty"`
	// MaxEvents bounds total churn events (0 = unlimited).
	MaxEvents int `json:"max_events,omitempty"`
}

// WorkloadSection enables the transaction generator; zero fields keep
// txgen.DefaultConfig values.
type WorkloadSection struct {
	Senders            int      `json:"senders,omitempty"`
	MeanInterarrivalMS int64    `json:"mean_interarrival_ms,omitempty"`
	ZipfExponent       float64  `json:"zipf_exponent,omitempty"`
	OutOfOrderProb     *float64 `json:"out_of_order_prob,omitempty"`
	MeanGasPrice       uint64   `json:"mean_gas_price,omitempty"`
	// PrivateProb is the fraction of transactions submitted directly
	// to miners without entering gossip — the mempool-divergence knob
	// for compact-relay sweeps.
	PrivateProb *float64 `json:"private_prob,omitempty"`
}

// Default scale multipliers: the file's literal sizes are medium. The
// stress tier is the 1k-10k-node knob: a scenario written at ~1k
// nodes reaches 10k-node territory via `ethrepro -scale stress`
// without a separate file.
var defaultScaleFactors = map[string]float64{
	"small":      0.25,
	"medium":     1,
	"paper":      2,
	"stress":     8,
	"stress100k": 80,
}

// RunMode returns the effective execution mode (Mode, defaulted).
func (s *Scenario) RunMode() string {
	if s.Mode == "" {
		return ModeNetwork
	}
	return s.Mode
}

// title returns the effective display title.
func (s *Scenario) title() string {
	if s.Title != "" {
		return s.Title
	}
	return s.Name
}

// parseRegion resolves a region abbreviation or long name.
func parseRegion(name string) (geo.Region, error) {
	for _, r := range geo.Regions() {
		if strings.EqualFold(r.String(), name) || strings.EqualFold(r.Name(), name) {
			return r, nil
		}
	}
	var known []string
	for _, r := range geo.Regions() {
		known = append(known, r.String())
	}
	return 0, fmt.Errorf("unknown region %q (known: %s)", name, strings.Join(known, ", "))
}

// relayConfig resolves the effective relay protocol configuration
// from the relay section and the legacy "push" spelling.
func (s *Scenario) relayConfig() (relay.Config, error) {
	var cfg relay.Config
	if s.Network == nil {
		return cfg, nil
	}
	r := s.Network.Relay
	if s.Network.Push != "" && r != nil && r.Protocol != "" {
		return cfg, fmt.Errorf("scenario %s: network.push and network.relay.protocol both set — use the relay section", s.Name)
	}
	name := s.Network.Push
	if r != nil && r.Protocol != "" {
		name = r.Protocol
	}
	mode, err := relay.ParseMode(name)
	if err != nil {
		return cfg, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	cfg.Mode = mode
	if r != nil {
		// The schema pointers distinguish set from unset; an explicit 0
		// would be silently coerced to the package default downstream
		// (relay.Config treats zero as "default"), so reject it here.
		if r.PushFraction != nil {
			if *r.PushFraction <= 0 || *r.PushFraction > 1 {
				return cfg, fmt.Errorf("scenario %s: relay.push_fraction %v outside (0,1]", s.Name, *r.PushFraction)
			}
			cfg.PushFraction = *r.PushFraction
		}
		if r.FallbackThreshold != nil {
			if *r.FallbackThreshold <= 0 || *r.FallbackThreshold > 1 {
				return cfg, fmt.Errorf("scenario %s: relay.fallback_threshold %v outside (0,1]", s.Name, *r.FallbackThreshold)
			}
			cfg.FallbackThreshold = *r.FallbackThreshold
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return cfg, nil
}

// millis converts a schema millisecond count to sim.Time.
func millis(ms int64) sim.Time { return sim.Time(ms) * sim.Millisecond }
