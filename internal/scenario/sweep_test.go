package scenario

import (
	"fmt"
	"strings"
	"testing"
)

// sweepDoc builds a chain-mode document with the given sweep block.
func sweepDoc(sweep string) string {
	return fmt.Sprintf(`{
  "name": "sw",
  "description": "sweep test fixture",
  "mode": "chain",
  "chain": {"blocks": 100, "inter_block_ms": 13300},
  "pools": [
    {"name": "A", "share": 0.6, "gateways": ["EA"], "empty_block_prob": 0.1},
    {"name": "B", "share": 0.4, "gateways": ["WE"]}
  ],
  "normalize_shares": true,
  "sweep": %s
}`, sweep)
}

func TestSweepGridExpansion(t *testing.T) {
	set, err := Parse([]byte(sweepDoc(`{
	  "axes": [
	    {"field": "pools.A.share", "values": [0.5, 0.6]},
	    {"field": "chain.inter_block_ms", "values": [9000, 13300, 20000]}
	  ]}`)))
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Variants) != 6 {
		t.Fatalf("variants: %d, want 6", len(set.Variants))
	}
	// Grid order: first axis outermost, last axis fastest.
	wantIDs := []string{
		"sw@share=0.5+inter_block_ms=9000",
		"sw@share=0.5+inter_block_ms=13300",
		"sw@share=0.5+inter_block_ms=20000",
		"sw@share=0.6+inter_block_ms=9000",
		"sw@share=0.6+inter_block_ms=13300",
		"sw@share=0.6+inter_block_ms=20000",
	}
	for i, v := range set.Variants {
		if v.ID() != wantIDs[i] {
			t.Errorf("variant %d: %s, want %s", i, v.ID(), wantIDs[i])
		}
	}
	// Bindings actually land in the decoded scenarios.
	if got := set.Variants[0].Scenario.Pools[0].Share; got != 0.5 {
		t.Errorf("bound share: %v", got)
	}
	if got := set.Variants[2].Scenario.Chain.InterBlockMS; got != 20000 {
		t.Errorf("bound inter_block_ms: %v", got)
	}
	// The base scenario keeps the file's literal values.
	if set.Base.Pools[0].Share != 0.6 {
		t.Errorf("base mutated: %v", set.Base.Pools[0].Share)
	}
}

func TestSweepRangeAxis(t *testing.T) {
	set, err := Parse([]byte(sweepDoc(`{
	  "axes": [{"field": "pools.A.empty_block_prob", "from": 0.1, "to": 0.3, "step": 0.1}]}`)))
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Variants) != 3 {
		t.Fatalf("variants: %d, want 3", len(set.Variants))
	}
	// Float accumulation must not leak into IDs (0.30000000000000004).
	if got := set.Variants[2].ID(); got != "sw@empty_block_prob=0.3" {
		t.Errorf("range ID: %s", got)
	}
}

// TestSweepLargeIntegerValues: explicit values keep their JSON
// literal form in IDs — no scientific notation (whose '+' would
// collide with the binding separator) and no float53 precision loss.
func TestSweepLargeIntegerValues(t *testing.T) {
	set, err := Parse([]byte(sweepDoc(`{
	  "axes": [{"field": "chain.blocks", "values": [1000000]}]}`)))
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Variants[0].ID(); got != "sw@blocks=1000000" {
		t.Errorf("large integer ID: %s", got)
	}
	if got := set.Variants[0].Scenario.Chain.Blocks; got != 1000000 {
		t.Errorf("bound blocks: %d", got)
	}
	// Range axes compute float64 values; those must not render in
	// scientific notation either.
	set, err = Parse([]byte(sweepDoc(`{
	  "axes": [{"field": "chain.blocks", "from": 10000000, "to": 20000000, "step": 10000000}]}`)))
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Variants[0].ID(); got != "sw@blocks=10000000" {
		t.Errorf("large range-value ID: %s", got)
	}
}

func TestSweepErrors(t *testing.T) {
	cases := []struct {
		name, sweep, wantErr string
	}{
		{"unknown field", `{"axes": [{"field": "chain.blockss", "values": [1]}]}`, "not found"},
		{"unknown pool name", `{"axes": [{"field": "pools.Z.share", "values": [1]}]}`, "no array element"},
		{"no values or range", `{"axes": [{"field": "chain.blocks"}]}`, "needs values or"},
		{"both values and range", `{"axes": [{"field": "chain.blocks", "values": [1], "from": 1, "to": 2, "step": 1}]}`, "both values and"},
		{"zero step", `{"axes": [{"field": "chain.blocks", "from": 1, "to": 2, "step": 0}]}`, "step must be > 0"},
		{"reversed range", `{"axes": [{"field": "chain.blocks", "from": 5, "to": 1, "step": 1}]}`, "to < from"},
		{"empty axes", `{"axes": []}`, "at least one axis"},
		{"missing axis field", `{"axes": [{"values": [1]}]}`, "needs a field"},
		{"duplicate values", `{"axes": [{"field": "chain.blocks", "values": [50, 50]}]}`, "duplicate variant"},
		{"overflowing range", `{"axes": [{"field": "chain.blocks", "from": 0, "to": 1e300, "step": 1e-300}]}`, "expands to over"},
		{"comma in bound string", `{"axes": [{"field": "description", "values": ["a,b"]}]}`, "reserved character"},
		{"separator in bound literal", `{"axes": [{"field": "description", "values": ["1e+11"]}]}`, "reserved character"},
		{"outcome separator in bound string", `{"axes": [{"field": "description", "values": ["x/forks"]}]}`, "reserved character"},
		{"repeated axis field", `{"axes": [
			{"field": "chain.blocks", "values": [50, 60]},
			{"field": "chain.blocks", "values": [70]}]}`, "appears on two axes"},
		{"range missing its endpoint", `{"axes": [{"field": "pools.A.share", "from": 0, "to": 0.5, "step": 0.2}]}`, "never reaches"},
		{"invalid variant", `{"axes": [{"field": "pools.A.empty_block_prob", "values": [-0.5]}]}`, "outside [0,1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(sweepDoc(tc.sweep)))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got: %v", tc.wantErr, err)
			}
		})
	}
}

func TestSweepVariantCap(t *testing.T) {
	// 5 axes exceeds maxAxes.
	var axes []string
	for i := 0; i < 5; i++ {
		axes = append(axes, `{"field": "chain.blocks", "values": [1]}`)
	}
	_, err := Parse([]byte(sweepDoc(`{"axes": [` + strings.Join(axes, ",") + `]}`)))
	if err == nil || !strings.Contains(err.Error(), "axes exceeds") {
		t.Fatalf("axis cap: %v", err)
	}
}

// TestSweepAmbiguousLeafLabels: axes whose paths end in the same
// segment must keep enough parent context to stay distinguishable in
// variant IDs.
func TestSweepAmbiguousLeafLabels(t *testing.T) {
	set, err := Parse([]byte(sweepDoc(`{
	  "axes": [
	    {"field": "pools.A.share", "values": [0.5]},
	    {"field": "pools.B.share", "values": [0.5]}
	  ]}`)))
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Variants[0].ID(); got != "sw@A.share=0.5+B.share=0.5" {
		t.Errorf("ambiguous leaves not disambiguated: %s", got)
	}
}

func TestSetPathArrayIndex(t *testing.T) {
	doc := map[string]any{
		"pools": []any{
			map[string]any{"name": "A", "share": 0.5},
			map[string]any{"name": "B", "share": 0.5},
		},
	}
	if err := setPath(doc, "pools.1.share", 0.9); err != nil {
		t.Fatal(err)
	}
	got := doc["pools"].([]any)[1].(map[string]any)["share"]
	if got != 0.9 {
		t.Errorf("indexed set: %v", got)
	}
	if err := setPath(doc, "pools.7.share", 0.9); err == nil {
		t.Error("out-of-range index must fail")
	}
	if err := setPath(doc, "pools.A", 1.0); err == nil {
		t.Error("replacing a whole named element must fail")
	}
}
