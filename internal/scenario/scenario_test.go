package scenario

import (
	"strings"
	"testing"
)

// minimalChain is a valid chain-mode document.
const minimalChain = `{
  "name": "mini",
  "mode": "chain",
  "chain": {"blocks": 100}
}`

// minimalNetwork is a valid network-mode document with custom pools.
const minimalNetwork = `{
  "name": "net",
  "network": {"nodes": 40},
  "chain": {"blocks": 30},
  "pools": [
    {"name": "A", "share": 0.6, "gateways": ["EA"]},
    {"name": "B", "share": 0.4, "gateways": ["WE"]}
  ]
}`

func TestParseMinimal(t *testing.T) {
	set, err := Parse([]byte(minimalChain))
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Variants) != 1 {
		t.Fatalf("variants: %d", len(set.Variants))
	}
	v := set.Variants[0]
	if v.ID() != "mini" {
		t.Errorf("ID: %s", v.ID())
	}
	if got := v.Scenario.outputs(); len(got) != 2 || got[0] != "forks" {
		t.Errorf("chain default outputs: %v", got)
	}

	set, err = Parse([]byte(minimalNetwork))
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Variants[0].Scenario.outputs(); got[0] != "propagation" {
		t.Errorf("network default outputs: %v", got)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	doc := `{"name": "x", "mode": "chain", "chain": {"blocks": 10}, "typo_field": 1}`
	if _, err := Parse([]byte(doc)); err == nil {
		t.Fatal("unknown top-level field must fail")
	}
	doc = `{"name": "x", "mode": "chain", "chain": {"blocks": 10, "blockss": 20}}`
	if _, err := Parse([]byte(doc)); err == nil {
		t.Fatal("unknown nested field must fail")
	}
}

// TestValidateInvariants is the table-driven error-path coverage for
// scenario-supplied configurations (ISSUE 2 satellite): each case
// mutates a valid scenario into one specific invalid state.
func TestValidateInvariants(t *testing.T) {
	pools := []PoolSection{
		{Name: "A", Share: 0.6, Gateways: []string{"EA"}},
		{Name: "B", Share: 0.4, Gateways: []string{"WE"}},
	}
	valid := func() Scenario {
		return Scenario{
			Name:    "ok",
			Mode:    ModeNetwork,
			Network: &NetworkSection{Nodes: 40},
			Chain:   &ChainSection{Blocks: 30},
			Pools:   append([]PoolSection(nil), pools...),
		}
	}
	cases := []struct {
		name    string
		mutate  func(*Scenario)
		wantErr string
	}{
		{"valid", func(s *Scenario) {}, ""},
		{"bad name", func(s *Scenario) { s.Name = "Has Spaces" }, "must match"},
		{"reserved separator in name", func(s *Scenario) { s.Name = "a@b" }, "must match"},
		{"bad mode", func(s *Scenario) { s.Mode = "hybrid" }, "unknown mode"},
		{"no blocks", func(s *Scenario) { s.Chain = nil }, "chain.blocks"},
		{"negative interblock", func(s *Scenario) { s.Chain.InterBlockMS = -1 }, "inter_block_ms"},
		{"shares not summing to 1", func(s *Scenario) { s.Pools[0].Share = 0.3 }, "sum to"},
		{"duplicate pool names", func(s *Scenario) { s.Pools[1].Name = "A" }, "duplicate pool"},
		{"share out of range", func(s *Scenario) { s.Pools[0].Share = 1.6; s.Pools[1].Share = -0.6 }, "outside [0,1]"},
		{"pool without gateway", func(s *Scenario) { s.Pools[0].Gateways = nil }, "no gateway"},
		{"unknown gateway region", func(s *Scenario) { s.Pools[0].Gateways = []string{"XX"} }, "unknown region"},
		{"normalize with zero sum", func(s *Scenario) {
			s.NormalizeShares = true
			s.Pools[0].Share, s.Pools[1].Share = 0, 0
		}, "positive share sum"},
		{"overlay too small", func(s *Scenario) { s.Network.Nodes = 5 }, "too small"},
		{"bad push policy", func(s *Scenario) { s.Network.Push = "flood" }, "unknown protocol"},
		{"push and relay protocol both set", func(s *Scenario) {
			s.Network.Push = "sqrt"
			s.Network.Relay = &RelaySection{Protocol: "compact"}
		}, "both set"},
		{"explicit zero push fraction", func(s *Scenario) {
			zero := 0.0
			s.Network.Relay = &RelaySection{Protocol: "hybrid", PushFraction: &zero}
		}, "push_fraction"},
		{"explicit zero fallback threshold", func(s *Scenario) {
			zero := 0.0
			s.Network.Relay = &RelaySection{Protocol: "compact", FallbackThreshold: &zero}
		}, "fallback_threshold"},
		{"bad relay protocol", func(s *Scenario) {
			s.Network.Relay = &RelaySection{Protocol: "flood"}
		}, "unknown protocol"},
		{"node shares not summing", func(s *Scenario) {
			s.Network.NodeShare = map[string]float64{"NA": 0.5, "EA": 0.1}
		}, "node shares sum"},
		{"zero-node measurement region", func(s *Scenario) {
			s.Network.NodeShare = map[string]float64{"NA": 0.5, "EA": 0.5}
			s.Measurement = []MeasurementSection{{Name: "WE", Region: "WE"}}
		}, "zero-node region"},
		{"zero-node gateway region", func(s *Scenario) {
			// Pool B gateways in WE, which hosts no nodes here.
			s.Network.NodeShare = map[string]float64{"NA": 0.5, "EA": 0.5}
			s.Measurement = []MeasurementSection{{Name: "M", Region: "NA"}}
		}, "gateways in zero-node region"},
		{"zero-node default measurement region", func(s *Scenario) {
			s.Network.NodeShare = map[string]float64{"EA": 1}
			s.Pools[1].Gateways = []string{"EA"}
		}, "default measurement node"},
		{"duplicate measurement node", func(s *Scenario) {
			s.Measurement = []MeasurementSection{
				{Name: "M", Region: "NA"}, {Name: "M", Region: "EA"},
			}
		}, "duplicate measurement"},
		{"unknown output", func(s *Scenario) { s.Outputs = []string{"heatmap"} }, "unknown output"},
		{"duplicate output", func(s *Scenario) { s.Outputs = []string{"forks", "forks"} }, "listed twice"},
		{"workload-only output without workload", func(s *Scenario) {
			s.Outputs = []string{"commit_times"}
		}, "needs a workload"},
		{"chain-only output in network mode", func(s *Scenario) {
			s.Outputs = []string{"withholding"}
		}, "unavailable in network mode"},
		{"network section in chain mode", func(s *Scenario) { s.Mode = ModeChain }, "chain mode takes no"},
		{"bad scale name", func(s *Scenario) { s.ScaleFactors = map[string]float64{"huge": 2} }, "unknown scale"},
		{"non-positive scale factor", func(s *Scenario) { s.ScaleFactors = map[string]float64{"paper": 0} }, "must be > 0"},
		{"negative repeats", func(s *Scenario) { s.Repeats = -1 }, "negative repeats"},
		{"negative workload parameter", func(s *Scenario) {
			s.Workload = &WorkloadSection{Senders: -5}
		}, "negative workload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := valid()
			tc.mutate(&s)
			err := s.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got: %v", tc.wantErr, err)
			}
		})
	}
}

func TestNormalizeShares(t *testing.T) {
	s := Scenario{
		Name:  "norm",
		Mode:  ModeChain,
		Chain: &ChainSection{Blocks: 10},
		Pools: []PoolSection{
			{Name: "A", Share: 0.3, Gateways: []string{"EA"}},
			{Name: "B", Share: 0.7, Gateways: []string{"WE"}},
			{Name: "C", Share: 0.5, Gateways: []string{"NA"}},
		},
		NormalizeShares: true,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	pools, err := s.pools()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range pools {
		sum += p.HashrateShare
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("normalized shares sum to %v", sum)
	}
	if a := pools[0].HashrateShare; a < 0.199 || a > 0.201 {
		t.Errorf("pool A share: %v, want ~0.2", a)
	}
}

func TestDefaultPoolsAreThePapers(t *testing.T) {
	set, err := Parse([]byte(minimalChain))
	if err != nil {
		t.Fatal(err)
	}
	pools, err := set.Variants[0].Scenario.pools()
	if err != nil {
		t.Fatal(err)
	}
	if len(pools) != 16 {
		t.Fatalf("default pools: %d, want the paper's 16", len(pools))
	}
}
