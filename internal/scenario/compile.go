package scenario

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mining"
	"repro/internal/sim"
	"repro/internal/txgen"
)

// Floors applied after scale multipliers so downscaled variants stay
// runnable (core.NewCampaign rejects overlays under 10 nodes).
const (
	minScaledNodes  = 20
	minScaledBlocks = 10
)

// Compile turns every variant of the set into a registry spec, in
// sweep expansion order.
func (set *Set) Compile() ([]experiments.Spec, error) {
	specs := make([]experiments.Spec, 0, len(set.Variants))
	for _, v := range set.Variants {
		sp, err := v.Spec()
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// Spec compiles one variant into an experiments.Spec. The returned
// Run closure reads only the variant's immutable scenario, so it is a
// pure function of (seed, scale) as the runner requires.
func (v *Variant) Spec() (experiments.Spec, error) {
	if err := v.Scenario.Validate(); err != nil {
		return experiments.Spec{}, err
	}
	id := v.ID()
	outputs := v.Scenario.outputs()
	produces := make([]string, 0, len(outputs))
	for _, o := range outputs {
		produces = append(produces, id+"/"+o)
	}
	title := v.Scenario.title()
	if len(v.Bindings) > 0 {
		title += " [" + v.bindingSuffix() + "]"
	}
	run := func(seed uint64, sc experiments.Scale) ([]*experiments.Outcome, error) {
		return v.run(seed, sc)
	}
	return experiments.Spec{ID: id, Title: title, Produces: produces, Run: run}, nil
}

// outputs returns the effective output list.
func (s *Scenario) outputs() []string {
	if len(s.Outputs) > 0 {
		return s.Outputs
	}
	if s.RunMode() == ModeChain {
		return []string{"forks", "sequences"}
	}
	return []string{"propagation", "first_observation"}
}

// scaleFactor resolves the multiplier for a runner scale.
func (s *Scenario) scaleFactor(sc experiments.Scale) float64 {
	name := sc.String()
	if f, ok := s.ScaleFactors[name]; ok {
		return f
	}
	if f, ok := defaultScaleFactors[name]; ok {
		return f
	}
	return 1
}

// scaledBlocks applies the scale multiplier to the block budget.
func (s *Scenario) scaledBlocks(sc experiments.Scale) uint64 {
	b := uint64(math.Ceil(float64(s.Chain.Blocks) * s.scaleFactor(sc)))
	if b < minScaledBlocks {
		b = minScaledBlocks
	}
	return b
}

// scaledNodes applies the scale multiplier to the overlay size — the
// single sizing rule shared by the campaign build and the
// availability denominator.
func (s *Scenario) scaledNodes(sc experiments.Scale) int {
	n := int(math.Ceil(float64(s.Network.Nodes) * s.scaleFactor(sc)))
	if n < minScaledNodes {
		n = minScaledNodes
	}
	return n
}

// run executes the variant at one (seed, scale).
func (v *Variant) run(seed uint64, sc experiments.Scale) ([]*experiments.Outcome, error) {
	if v.Scenario.RunMode() == ModeChain {
		return v.runChain(seed, sc)
	}
	return v.runNetwork(seed, sc)
}

// applyMining copies the scenario's chain and pool settings onto a
// mining config.
func (v *Variant) applyMining(cfg *mining.Config) error {
	pools, err := v.Scenario.pools()
	if err != nil {
		return err
	}
	cfg.Pools = pools
	if ch := v.Scenario.Chain; ch != nil {
		if ch.InterBlockMS > 0 {
			cfg.InterBlockMean = millis(ch.InterBlockMS)
		}
		if ch.GatewayDelayMS != nil {
			cfg.GatewayDelay = millis(*ch.GatewayDelayMS)
		}
		if ch.GasLimit > 0 {
			cfg.GasLimit = ch.GasLimit
		}
		if ch.InitialDifficulty > 0 {
			cfg.InitialDifficulty = ch.InitialDifficulty
		}
		cfg.Uncles.RestrictOneMinerUncles = ch.RestrictOneMinerUncles
	}
	return nil
}

// runChain executes a chain-only variant.
func (v *Variant) runChain(seed uint64, sc experiments.Scale) ([]*experiments.Outcome, error) {
	var mutateErr error
	res, err := core.RunChainOnly(seed, v.Scenario.scaledBlocks(sc), func(c *mining.Config) {
		mutateErr = v.applyMining(c)
	})
	if mutateErr != nil {
		return nil, mutateErr
	}
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", v.ID(), err)
	}
	return v.outcomes(func(name string) (*experiments.Outcome, error) {
		if o, handled, err := v.viewOutcome(name, res.View); handled {
			return o, err
		}
		switch name {
		case "withholding":
			return v.withholdingOutcome(res)
		}
		return nil, fmt.Errorf("scenario %s: output %q unavailable in chain mode", v.ID(), name)
	})
}

// campaignConfig builds the overlay campaign for one (seed, scale).
func (v *Variant) campaignConfig(seed uint64, sc experiments.Scale) (core.CampaignConfig, error) {
	s := v.Scenario
	cfg := core.DefaultCampaignConfig(seed)
	cfg.NetworkNodes = s.scaledNodes(sc)
	cfg.Blocks = s.scaledBlocks(sc)
	// Scenario campaigns consume the analysis index, never the raw
	// log, so they always run streaming — memory stays O(items) even
	// for stress-scale overlays.
	cfg.Streaming = true
	if s.Network.Degree > 0 {
		cfg.Degree = s.Network.Degree
	}
	rc, err := s.relayConfig()
	if err != nil {
		return cfg, err
	}
	cfg.Relay = rc
	cfg.KademliaWiring = s.Network.Kademlia
	if s.Network.NodeShare != nil {
		share, err := s.nodeShare()
		if err != nil {
			return cfg, err
		}
		cfg.NodeShare = share
	}
	if len(s.Measurement) > 0 {
		cfg.Measurement = cfg.Measurement[:0]
		for _, m := range s.Measurement {
			r, err := parseRegion(m.Region)
			if err != nil {
				return cfg, err
			}
			cfg.Measurement = append(cfg.Measurement, core.MeasurementSpec{
				Name: m.Name, Region: r, Peers: m.Peers,
			})
		}
	}
	if err := v.applyMining(&cfg.Mining); err != nil {
		return cfg, err
	}
	fc, err := s.faultsConfig()
	if err != nil {
		return cfg, err
	}
	cfg.Faults = fc
	if w := s.Workload; w != nil {
		wl := txgen.DefaultConfig()
		if w.Senders > 0 {
			wl.Senders = w.Senders
		}
		if w.MeanInterarrivalMS > 0 {
			wl.MeanInterArrival = millis(w.MeanInterarrivalMS)
		}
		if w.ZipfExponent > 0 {
			wl.ZipfExponent = w.ZipfExponent
		}
		if w.OutOfOrderProb != nil {
			wl.OutOfOrderProb = *w.OutOfOrderProb
		}
		if w.MeanGasPrice > 0 {
			wl.MeanGasPrice = w.MeanGasPrice
		}
		if w.PrivateProb != nil {
			wl.PrivateProb = *w.PrivateProb
		}
		cfg.Workload = &wl
		cfg.CaptureTxLinks = true
	}
	return cfg, nil
}

// runNetwork executes a full overlay variant.
func (v *Variant) runNetwork(seed uint64, sc experiments.Scale) ([]*experiments.Outcome, error) {
	cfg, err := v.campaignConfig(seed, sc)
	if err != nil {
		return nil, err
	}
	res, err := core.RunCampaign(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", v.ID(), err)
	}
	return v.outcomes(func(name string) (*experiments.Outcome, error) {
		if o, handled, err := v.viewOutcome(name, res.View); handled {
			return o, err
		}
		return v.networkOutcome(name, res, sc)
	})
}

// outcomes maps every selected output through build, qualifying IDs
// with the variant ID so sweep variants aggregate separately.
func (v *Variant) outcomes(build func(name string) (*experiments.Outcome, error)) ([]*experiments.Outcome, error) {
	var out []*experiments.Outcome
	for _, name := range v.Scenario.outputs() {
		o, err := build(name)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: output %s: %w", v.ID(), name, err)
		}
		o.ID = v.ID() + "/" + name
		out = append(out, o)
	}
	return out, nil
}

// outputDef describes one analysis a scenario can request.
type outputDef struct {
	// title names the produced artifact.
	title string
	// network/chainMode report mode availability.
	network, chainMode bool
	// needsWorkload requires a workload section.
	needsWorkload bool
	// needsFaults requires a faults section.
	needsFaults bool
}

func (d outputDef) supports(mode string) bool {
	if mode == ModeChain {
		return d.chainMode
	}
	return d.network
}

// outputDefs catalogs every output name. The compile functions switch
// on the same names; a test asserts the two stay in sync.
var outputDefs = map[string]outputDef{
	"propagation":            {title: "block propagation delay", network: true},
	"first_observation":      {title: "first observation share per node", network: true},
	"pool_first_observation": {title: "first observation per mining pool", network: true},
	"redundancy":             {title: "redundant block receptions", network: true},
	"transport":              {title: "transport message and byte totals", network: true},
	"bandwidth":              {title: "per-protocol bandwidth accounting", network: true},
	"commit_times":           {title: "transaction inclusion and commit times", network: true, needsWorkload: true},
	"reordering":             {title: "commit delay by observed ordering", network: true, needsWorkload: true},
	"availability":           {title: "availability under injected faults", network: true, needsFaults: true},
	"empty_blocks":           {title: "empty blocks per pool", network: true, chainMode: true},
	"forks":                  {title: "fork types and lengths", network: true, chainMode: true},
	"one_miner_forks":        {title: "one-miner forks", network: true, chainMode: true},
	"sequences":              {title: "consecutive main-chain sequences", network: true, chainMode: true},
	"withholding":            {title: "withholding burst detection", chainMode: true},
}

// OutputNames lists every known output, sorted.
func OutputNames() []string {
	names := make([]string, 0, len(outputDefs))
	for n := range outputDefs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// viewOutcome builds the chain-view outputs shared by both modes.
// handled reports whether name is a view output at all.
func (v *Variant) viewOutcome(name string, view *analysis.ChainView) (*experiments.Outcome, bool, error) {
	o := &experiments.Outcome{Title: outputDefs[name].title}
	switch name {
	case "empty_blocks":
		empty, err := analysis.EmptyBlocks(view)
		if err != nil {
			return nil, true, err
		}
		o.Rendered = analysis.RenderEmptyBlocks(empty, 16)
		o.Metrics = map[string]float64{"empty_fraction": empty.Fraction}
	case "forks":
		forks, err := analysis.Forks(view)
		if err != nil {
			return nil, true, err
		}
		o.Rendered = analysis.RenderForks(forks)
		o.Metrics = map[string]float64{
			"len1_total":   float64(forks.ByLength[1].Total),
			"len2_total":   float64(forks.ByLength[2].Total),
			"main_blocks":  float64(forks.MainBlocks),
			"uncle_blocks": float64(forks.UncleBlocks),
		}
	case "one_miner_forks":
		om, err := analysis.OneMinerForks(view)
		if err != nil {
			return nil, true, err
		}
		o.Rendered = analysis.RenderOneMinerForks(om)
		o.Metrics = map[string]float64{
			"pairs":               float64(om.TupleCounts[2]),
			"recognized_fraction": om.RecognizedFraction,
			"fraction_of_forks":   om.FractionOfForks,
		}
	case "sequences":
		seq, err := analysis.Sequences(view)
		if err != nil {
			return nil, true, err
		}
		maxRun := 0
		for _, r := range seq.MaxRun {
			if r > maxRun {
				maxRun = r
			}
		}
		o.Rendered = analysis.RenderSequences(seq, 6, 9)
		o.Metrics = map[string]float64{"max_run": float64(maxRun)}
	default:
		return nil, false, nil
	}
	return o, true, nil
}

// withholdingOutcome applies the §III-D burst detector to a chain
// run, at the same calibration as the registry's W1 spec.
func (v *Variant) withholdingOutcome(res *core.ChainOnlyResult) (*experiments.Outcome, error) {
	det, err := analysis.DetectWithholding(res.View, res.PublishTimes,
		analysis.DefaultWithholdingMinRun, analysis.DefaultWithholdingBurstRatio)
	if err != nil {
		return nil, err
	}
	// Every configured pool gets a flagged_ metric, zero included:
	// repeats without flags must still contribute samples, or the
	// cross-repeat aggregation would average only the flagged subset.
	pools, err := v.Scenario.pools()
	if err != nil {
		return nil, err
	}
	flaggedByPool := make(map[string]int, len(pools))
	for _, p := range pools {
		flaggedByPool[p.Name] = 0
	}
	for _, verdict := range det.Verdicts {
		if verdict.Flagged {
			flaggedByPool[verdict.Pool]++
		}
	}
	metrics := map[string]float64{
		"runs_examined": float64(det.RunsExamined),
		"flagged_runs":  float64(det.FlaggedRuns),
	}
	// The pool_ prefix keeps per-pool keys disjoint from the
	// aggregates above whatever the pool is named.
	for pool, n := range flaggedByPool {
		metrics["pool_"+pool+"_flagged"] = float64(n)
	}
	return &experiments.Outcome{
		Title:    outputDefs["withholding"].title,
		Rendered: analysis.RenderWithholding(det),
		Metrics:  metrics,
	}, nil
}

// networkOutcome builds the overlay-only outputs.
func (v *Variant) networkOutcome(name string, res *core.CampaignResult, sc experiments.Scale) (*experiments.Outcome, error) {
	o := &experiments.Outcome{Title: outputDefs[name].title}
	switch name {
	case "propagation":
		prop, err := analysis.PropagationDelays(res.Index)
		if err != nil {
			return nil, err
		}
		o.Rendered = analysis.RenderPropagation(prop)
		o.Metrics = map[string]float64{
			"median_ms": prop.Summary.Median,
			"mean_ms":   prop.Summary.Mean,
			"p95_ms":    prop.Summary.P95,
			"p99_ms":    prop.Summary.P99,
		}
	case "first_observation":
		first, err := analysis.FirstObservations(res.Index)
		if err != nil {
			return nil, err
		}
		o.Rendered = analysis.RenderFirstObservations(first)
		o.Metrics = map[string]float64{}
		for node, share := range first.Share {
			o.Metrics[node+"_share"] = share
		}
	case "pool_first_observation":
		pools, err := analysis.PoolFirstObservations(res.Index, 15)
		if err != nil {
			return nil, err
		}
		o.Rendered = analysis.RenderPoolObservations(pools, v.measurementNames())
		o.Metrics = map[string]float64{"pools": float64(len(pools.Pools))}
	case "redundancy":
		node := v.measurementNames()[0]
		red, err := analysis.Redundancy(res.Index, node)
		if err != nil {
			return nil, err
		}
		o.Rendered = analysis.RenderRedundancy(red)
		o.Metrics = map[string]float64{
			"announce_mean": red.Announcements.Mean,
			"whole_mean":    red.WholeBlocks.Mean,
			"combined_mean": red.Combined.Mean,
		}
	case "transport":
		o.Rendered = fmt.Sprintf("Transport totals\n  messages %d\n  bytes    %d\n",
			res.MessagesSent, res.BytesSent)
		o.Metrics = map[string]float64{
			"messages": float64(res.MessagesSent),
			"bytes":    float64(res.BytesSent),
		}
	case "bandwidth":
		rendered, err := analysis.RenderBandwidth(res.Bandwidth)
		if err != nil {
			return nil, err
		}
		o.Rendered = rendered
		bw := res.Bandwidth
		o.Metrics = map[string]float64{
			"total_messages":  float64(bw.TotalMessages),
			"total_bytes":     float64(bw.TotalBytes),
			"bytes_per_block": bw.BytesPerBlock(),
		}
		for _, c := range bw.Classes {
			o.Metrics["class_"+c.Name+"_bytes"] = float64(c.Bytes)
		}
		if r := bw.Reconstruction; r.Attempts() > 0 {
			o.Metrics["reconstruct_hit_rate"] = r.HitRate()
			o.Metrics["reconstruct_full"] = float64(r.Full)
			o.Metrics["reconstruct_roundtrip"] = float64(r.Partial)
			o.Metrics["reconstruct_fallback"] = float64(r.Fallback)
		}
	case "commit_times":
		commit, err := analysis.CommitTimes(res.Index, res.View)
		if err != nil {
			return nil, err
		}
		o.Rendered = analysis.RenderCommit(commit)
		o.Metrics = map[string]float64{"txs": float64(commit.Txs)}
		if med, err := commit.Inclusion.Value(0.5); err == nil {
			o.Metrics["inclusion_median_s"] = med
		}
	case "reordering":
		reorder, err := analysis.Reordering(res.Index, res.View)
		if err != nil {
			return nil, err
		}
		o.Rendered = analysis.RenderReordering(reorder)
		o.Metrics = map[string]float64{"ooo_fraction": reorder.OutOfOrderFraction}
	case "availability":
		quiet := make(map[string]sim.Time, len(res.Nodes))
		for _, n := range res.Nodes {
			quiet[n.Name()] = n.MaxQuietGap()
		}
		avail, err := analysis.Availability(res.Faults, v.Scenario.scaledNodes(sc), res.Duration, res.MessagesDropped, quiet)
		if err != nil {
			return nil, err
		}
		o.Rendered = analysis.RenderAvailability(avail)
		o.Metrics = map[string]float64{
			"availability":     avail.Availability,
			"crashes":          float64(avail.Crashes),
			"joins":            float64(avail.Joins),
			"leaves":           float64(avail.Leaves),
			"dropped_messages": float64(avail.DroppedMessages),
			"partition_s":      avail.PartitionS,
			"max_quiet_gap_s":  avail.MaxQuietGapS,
		}
	default:
		return nil, fmt.Errorf("unknown output %q", name)
	}
	return o, nil
}

// measurementNames lists the variant's measurement node names (the
// paper's vantage points when the section is omitted).
func (v *Variant) measurementNames() []string {
	if len(v.Scenario.Measurement) == 0 {
		specs := core.PaperMeasurementSpecs(0)
		names := make([]string, 0, len(specs))
		for _, m := range specs {
			names = append(names, m.Name)
		}
		return names
	}
	names := make([]string, 0, len(v.Scenario.Measurement))
	for _, m := range v.Scenario.Measurement {
		names = append(names, m.Name)
	}
	return names
}
