package scenario

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/experiments"
	"repro/internal/store"
)

// shippedScenarios locates the examples/scenarios directory.
func shippedScenarios(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("expected at least 3 shipped scenarios, found %v", paths)
	}
	return paths
}

// TestShippedScenariosCompile keeps every example file loadable and
// compilable — the same check CI's validate-scenarios target runs.
func TestShippedScenariosCompile(t *testing.T) {
	for _, path := range shippedScenarios(t) {
		set, err := Load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		specs, err := set.Compile()
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if len(specs) == 0 {
			t.Errorf("%s: no specs", path)
		}
	}
}

// TestRoundTripShipped is the replay contract for every shipped file:
// parse -> write run-directory artifact -> re-read -> the re-parsed
// sets equal the originals, variant for variant.
func TestRoundTripShipped(t *testing.T) {
	st := store.NewFS(t.TempDir())
	var sets []*Set
	for _, path := range shippedScenarios(t) {
		set, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, set)
	}
	if err := WriteArtifact(st, sets); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(sets) {
		t.Fatalf("sets: %d, want %d", len(back), len(sets))
	}
	for i, set := range sets {
		got := back[i]
		if got.Path != set.Path {
			t.Errorf("path: %s, want %s", got.Path, set.Path)
		}
		if !reflect.DeepEqual(got.Base, set.Base) {
			t.Errorf("%s: base scenario changed across round-trip", set.Path)
		}
		if len(got.Variants) != len(set.Variants) {
			t.Fatalf("%s: variants %d, want %d", set.Path, len(got.Variants), len(set.Variants))
		}
		for j := range set.Variants {
			if got.Variants[j].ID() != set.Variants[j].ID() {
				t.Errorf("%s variant %d: %s, want %s", set.Path, j,
					got.Variants[j].ID(), set.Variants[j].ID())
			}
			if !reflect.DeepEqual(got.Variants[j].Scenario, set.Variants[j].Scenario) {
				t.Errorf("%s variant %s changed across round-trip", set.Path, set.Variants[j].ID())
			}
		}
	}
}

// TestRoundTripRunDirectory runs a scenario campaign end to end the
// way cmd/ethrepro does — runner, experiments.WriteArtifacts, scenario
// artifact — and checks both halves of the run directory re-load
// consistently.
func TestRoundTripRunDirectory(t *testing.T) {
	doc := `{
	  "name": "rt",
	  "mode": "chain",
	  "chain": {"blocks": 400, "inter_block_ms": 13300},
	  "outputs": ["forks"],
	  "sweep": {"axes": [{"field": "chain.inter_block_ms", "values": [9000, 13300]}]}
	}`
	set, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	specs, err := set.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("specs: %d", len(specs))
	}
	report, err := experiments.Run(context.Background(), specs, experiments.RunnerConfig{
		Seed: 42, Scale: experiments.ScaleSmall, Repeats: 2, Parallel: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := store.NewFS(t.TempDir())
	if err := experiments.WriteArtifacts(st, report); err != nil {
		t.Fatal(err)
	}
	if err := WriteArtifact(st, []*Set{set}); err != nil {
		t.Fatal(err)
	}
	if err := experiments.WriteManifest(st, report); err != nil {
		t.Fatal(err)
	}
	if err := store.Verify(st); err != nil {
		t.Fatalf("sealed scenario run dir fails verification: %v", err)
	}

	backReport, err := experiments.ReadArtifacts(st)
	if err != nil {
		t.Fatal(err)
	}
	backSets, err := ReadArtifact(st)
	if err != nil {
		t.Fatal(err)
	}
	// Every spec the scenario compiles to must appear in the report,
	// with variant-qualified outcome IDs.
	recorded := map[string]bool{}
	for _, res := range backReport.Results {
		recorded[res.Spec.ID] = true
	}
	for _, v := range backSets[0].Variants {
		if !recorded[v.ID()] {
			t.Errorf("run directory missing variant %s", v.ID())
		}
	}
	for _, s := range backReport.Summaries {
		if !regexpVariantOutcome(s.OutcomeID) {
			t.Errorf("summary outcome %s not variant-qualified", s.OutcomeID)
		}
	}
}

// regexpVariantOutcome reports whether an outcome ID has the
// "<variant>/<output>" shape.
func regexpVariantOutcome(id string) bool {
	for i := 0; i < len(id); i++ {
		if id[i] == '/' {
			return i > 0 && i < len(id)-1
		}
	}
	return false
}
