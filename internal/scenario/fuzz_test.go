package scenario

import (
	"encoding/json"
	"testing"
)

// Fuzz seeds: every schema corner the parser owns — modes, pools,
// faults, sweeps, strict-decoding rejects. Mirrored as committed
// corpus files under testdata/fuzz/ so `go test -fuzz` starts from
// real documents rather than noise.
var fuzzSeeds = []string{
	`{"name":"mini","mode":"chain","chain":{"blocks":100}}`,
	`{"name":"net","network":{"nodes":40},"chain":{"blocks":30}}`,
	`{"name":"bad json`,
	`{"name":"typo","chan":{"blocks":5}}`,
	`{"name":"fz-faults","network":{"nodes":60},"chain":{"blocks":40},
	  "faults":{"crash":{"mean_between_ms":60000,"mean_downtime_ms":20000},
	            "partitions":[{"at_ms":1000,"duration_ms":5000,"regions":["EA","OC"]}],
	            "loss":{"drop_prob":0.01,"extra_delay_mean_ms":10},
	            "churn":{"mean_between_ms":30000,"join_fraction":0.6}},
	  "outputs":["propagation","availability"]}`,
	`{"name":"fz-sweep","mode":"chain","chain":{"blocks":100},
	  "sweep":{"axes":[{"field":"chain.blocks","values":[50,100]},
	                   {"field":"chain.inter_block_ms","from":9000,"to":13000,"step":4000}]}}`,
	`{"name":"fz-pools","mode":"chain","chain":{"blocks":20},"normalize_shares":true,
	  "pools":[{"name":"A","share":2,"gateways":["EA"],"withholder":true},
	           {"name":"B","share":1,"gateways":["WE"]}]}`,
	`{"name":"fz-neg","network":{"nodes":40},"chain":{"blocks":30},
	  "faults":{"loss":{"drop_prob":-3}}}`,
	`{"name":"dup","mode":"chain","chain":{"blocks":9},
	  "sweep":{"axes":[{"field":"chain.blocks","values":[5,5]}]}}`,
	`{}`,
	`[1,2,3]`,
	`{"name":"deep","mode":"chain","chain":{"blocks":4},
	  "sweep":{"axes":[{"field":"chain.blocks.oops","values":[1]}]}}`,
}

// FuzzScenarioParse holds the parser's safety and replay invariants
// over arbitrary documents: never panic; on success, the compacted
// Source must re-parse to the same variant set (the replay contract
// run directories rely on) and every variant must compile.
func FuzzScenarioParse(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		set, err := Parse(data)
		if err != nil {
			return
		}
		if len(set.Variants) == 0 || len(set.Variants) > maxVariants {
			t.Fatalf("accepted document with %d variants", len(set.Variants))
		}
		ids := map[string]bool{}
		for _, v := range set.Variants {
			id := v.ID()
			if ids[id] {
				t.Fatalf("accepted duplicate variant ID %s", id)
			}
			ids[id] = true
		}
		if _, err := set.Compile(); err != nil {
			t.Fatalf("parsed document failed to compile: %v", err)
		}
		replay, err := Parse(set.Source)
		if err != nil {
			t.Fatalf("compacted source does not re-parse: %v", err)
		}
		if len(replay.Variants) != len(set.Variants) {
			t.Fatalf("replay produced %d variants, want %d", len(replay.Variants), len(set.Variants))
		}
		for i, v := range replay.Variants {
			if v.ID() != set.Variants[i].ID() {
				t.Fatalf("replay variant %d is %s, want %s", i, v.ID(), set.Variants[i].ID())
			}
		}
	})
}

// FuzzSweepExpand drives the sweep expander through arbitrary axis
// documents grafted onto a fixed valid base: expansion must never
// panic, never exceed its caps, and every accepted grid must bind
// fields that exist.
func FuzzSweepExpand(f *testing.F) {
	sweeps := []string{
		`{"axes":[{"field":"chain.blocks","values":[10,20,30]}]}`,
		`{"axes":[{"field":"chain.blocks","from":10,"to":50,"step":10}]}`,
		`{"axes":[{"field":"chain.blocks","values":[10]},{"field":"chain.inter_block_ms","values":[9000,13300]}]}`,
		`{"axes":[]}`,
		`{"axes":[{"field":"chain.blocks","from":1,"to":1000000,"step":0.001}]}`,
		`{"axes":[{"field":"nope.nope","values":[1]}]}`,
		`{"axes":[{"field":"chain.blocks","values":[1],"from":1,"to":2,"step":1}]}`,
		`{"axes":[{"field":"name","values":["a b"]}]}`,
	}
	for _, s := range sweeps {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, sweepDoc []byte) {
		var sweepVal any
		if err := json.Unmarshal(sweepDoc, &sweepVal); err != nil {
			return
		}
		doc := map[string]any{
			"name":  "fz",
			"mode":  "chain",
			"chain": map[string]any{"blocks": 100, "inter_block_ms": 13300},
			"sweep": sweepVal,
		}
		data, err := json.Marshal(doc)
		if err != nil {
			return
		}
		set, err := Parse(data)
		if err != nil {
			return
		}
		if len(set.Variants) > maxVariants {
			t.Fatalf("expansion of %d variants exceeds cap %d", len(set.Variants), maxVariants)
		}
		for _, v := range set.Variants {
			if len(v.Bindings) > maxAxes {
				t.Fatalf("variant binds %d axes, cap %d", len(v.Bindings), maxAxes)
			}
		}
	})
}
