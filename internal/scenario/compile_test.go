package scenario

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// chainAllOutputs requests every chain-mode output.
const chainAllOutputs = `{
  "name": "chain-all",
  "mode": "chain",
  "chain": {"blocks": 2000},
  "pools": [
    {"name": "Attacker", "share": 0.3, "gateways": ["EA"], "withholder": true},
    {"name": "Honest", "share": 0.7, "gateways": ["WE"], "empty_block_prob": 0.05, "multi_version_prob": 0.05, "multi_version_same_tx_prob": 0.5}
  ],
  "outputs": ["withholding", "sequences", "forks", "empty_blocks", "one_miner_forks"]
}`

// networkAllOutputs requests every network-mode output.
const networkAllOutputs = `{
  "name": "net-all",
  "network": {"nodes": 80, "degree": 6, "push": "all"},
  "chain": {"blocks": 80},
  "workload": {"senders": 200, "mean_interarrival_ms": 400},
  "outputs": ["propagation", "first_observation", "pool_first_observation",
              "redundancy", "transport", "commit_times", "reordering",
              "empty_blocks", "forks", "sequences"]
}`

// compileOne parses a single-variant document and returns its spec.
func compileOne(t *testing.T, doc string) experiments.Spec {
	t.Helper()
	set, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	specs, err := set.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Fatalf("specs: %d", len(specs))
	}
	return specs[0]
}

func TestCompileChainAllOutputs(t *testing.T) {
	sp := compileOne(t, chainAllOutputs)
	if sp.ID != "chain-all" {
		t.Fatalf("spec ID: %s", sp.ID)
	}
	outs, err := sp.Run(7, experiments.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 5 {
		t.Fatalf("outcomes: %d", len(outs))
	}
	byID := map[string]*experiments.Outcome{}
	for _, o := range outs {
		byID[o.ID] = o
	}
	wh := byID["chain-all/withholding"]
	if wh == nil {
		t.Fatalf("missing withholding outcome: %v", outs)
	}
	// A 30% withholder over 500 blocks must trip the burst detector;
	// the honest pool must still report a (zero-valued) metric so
	// cross-repeat aggregation sees every repeat.
	if wh.Metrics["pool_Attacker_flagged"] == 0 {
		t.Errorf("withholding attacker not flagged: %v", wh.Metrics)
	}
	if _, ok := wh.Metrics["pool_Honest_flagged"]; !ok {
		t.Errorf("per-pool metric missing for unflagged pool: %v", wh.Metrics)
	}
	if byID["chain-all/forks"].Metrics["main_blocks"] == 0 {
		t.Error("forks outcome empty")
	}
}

func TestCompileNetworkAllOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("full network campaign with workload")
	}
	sp := compileOne(t, networkAllOutputs)
	outs, err := sp.Run(7, experiments.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 10 {
		t.Fatalf("outcomes: %d", len(outs))
	}
	for _, o := range outs {
		if !strings.HasPrefix(o.ID, "net-all/") {
			t.Errorf("outcome ID not variant-qualified: %s", o.ID)
		}
		if o.Rendered == "" {
			t.Errorf("outcome %s not rendered", o.ID)
		}
	}
}

// TestCompileDeterministic is the scenario half of the runner's
// determinism contract: same (seed, scale) in, identical outcomes out.
func TestCompileDeterministic(t *testing.T) {
	sp := compileOne(t, chainAllOutputs)
	a, err := sp.Run(42, experiments.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sp.Run(42, experiments.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different outcomes")
	}
	c, err := sp.Run(43, experiments.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical outcomes")
	}
}

func TestScaleFactors(t *testing.T) {
	s := Scenario{
		Name:         "sc",
		Mode:         ModeChain,
		Chain:        &ChainSection{Blocks: 1000},
		ScaleFactors: map[string]float64{"paper": 5},
	}
	if got := s.scaledBlocks(experiments.ScaleSmall); got != 250 {
		t.Errorf("small blocks: %d", got)
	}
	if got := s.scaledBlocks(experiments.ScaleMedium); got != 1000 {
		t.Errorf("medium blocks: %d", got)
	}
	// Explicit factor overrides the default 2x.
	if got := s.scaledBlocks(experiments.ScalePaper); got != 5000 {
		t.Errorf("paper blocks: %d", got)
	}
	// The floor keeps heavily downscaled runs viable.
	s.Chain.Blocks = 12
	if got := s.scaledBlocks(experiments.ScaleSmall); got != minScaledBlocks {
		t.Errorf("floored blocks: %d", got)
	}
}

// TestStressScaleFactor covers the 1k-10k-node stress knob: the
// default stress multiplier is 8x, and a file override wins.
func TestStressScaleFactor(t *testing.T) {
	s := Scenario{
		Name:  "st",
		Mode:  ModeChain,
		Chain: &ChainSection{Blocks: 1000},
	}
	if got := s.scaledBlocks(experiments.ScaleStress); got != 8000 {
		t.Errorf("default stress blocks: %d, want 8000", got)
	}
	s.ScaleFactors = map[string]float64{"stress": 1}
	if got := s.scaledBlocks(experiments.ScaleStress); got != 1000 {
		t.Errorf("overridden stress blocks: %d, want 1000", got)
	}
	if _, err := experiments.ParseScale("stress"); err != nil {
		t.Errorf("ParseScale(stress): %v", err)
	}
	if experiments.ScaleStress.String() != "stress" {
		t.Errorf("ScaleStress renders as %q", experiments.ScaleStress)
	}
}

// TestOutputCatalogConsistent ensures every cataloged output name is
// actually implemented by a compile function (and vice versa for mode
// support): each output is requested in a scenario for its supported
// mode and must validate.
func TestOutputCatalogConsistent(t *testing.T) {
	for _, name := range OutputNames() {
		def := outputDefs[name]
		s := Scenario{
			Name:    "cat",
			Chain:   &ChainSection{Blocks: 10},
			Outputs: []string{name},
		}
		if def.chainMode {
			s.Mode = ModeChain
		} else {
			s.Mode = ModeNetwork
			s.Network = &NetworkSection{Nodes: 40}
			if def.needsWorkload {
				s.Workload = &WorkloadSection{}
			}
			if def.needsFaults {
				s.Faults = &FaultsSection{Loss: &LossSection{DropProb: 0.01}}
			}
		}
		if err := s.Validate(); err != nil {
			t.Errorf("output %s does not validate in its own mode: %v", name, err)
		}
	}
}
