package scenario

import (
	"fmt"
	"regexp"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/mining"
)

// namePattern keeps scenario names usable as registry IDs: the sweep
// separators (@ + = ,) and whitespace are reserved by variant IDs and
// the -only flag.
var namePattern = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]{0,63}$`)

// Validate checks every scenario invariant the compiler relies on:
// the same class of checks mining.ValidatePools applies to pool
// registries, extended to topology, workload and output selection.
func (s *Scenario) Validate() error {
	if !namePattern.MatchString(s.Name) {
		return fmt.Errorf("scenario: name %q must match %s", s.Name, namePattern)
	}
	switch s.RunMode() {
	case ModeNetwork, ModeChain:
	default:
		return fmt.Errorf("scenario %s: unknown mode %q (network|chain)", s.Name, s.Mode)
	}
	if s.Chain == nil || s.Chain.Blocks == 0 {
		return fmt.Errorf("scenario %s: chain.blocks must be > 0", s.Name)
	}
	if s.Chain.InterBlockMS < 0 {
		return fmt.Errorf("scenario %s: negative inter_block_ms", s.Name)
	}
	if s.Chain.GatewayDelayMS != nil && *s.Chain.GatewayDelayMS < 0 {
		return fmt.Errorf("scenario %s: negative gateway_delay_ms", s.Name)
	}
	if s.Repeats < 0 {
		return fmt.Errorf("scenario %s: negative repeats", s.Name)
	}
	for name, f := range s.ScaleFactors {
		if _, ok := defaultScaleFactors[name]; !ok {
			return fmt.Errorf("scenario %s: unknown scale %q (small|medium|paper|stress|stress100k)", s.Name, name)
		}
		if f <= 0 {
			return fmt.Errorf("scenario %s: scale factor %s=%v must be > 0", s.Name, name, f)
		}
	}

	// Pool registry: delegate the share/name/region invariants to the
	// same validator the simulator itself runs.
	pools, err := s.pools()
	if err != nil {
		return err
	}
	if err := mining.ValidatePools(pools); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}

	switch s.RunMode() {
	case ModeChain:
		if s.Network != nil || len(s.Measurement) > 0 || s.Workload != nil || s.Faults != nil {
			return fmt.Errorf("scenario %s: chain mode takes no network/measurement/workload/faults sections", s.Name)
		}
	case ModeNetwork:
		if err := s.validateNetwork(pools); err != nil {
			return err
		}
	}

	return s.validateOutputs()
}

// validateNetwork checks overlay sizing, the region node-share map and
// the measurement deployment.
func (s *Scenario) validateNetwork(pools []mining.PoolConfig) error {
	if s.Network == nil {
		return fmt.Errorf("scenario %s: network mode needs a network section", s.Name)
	}
	if s.Network.Nodes < 20 {
		return fmt.Errorf("scenario %s: network.nodes %d too small (>= 20 so the small scale stays viable)", s.Name, s.Network.Nodes)
	}
	if s.Network.Degree < 0 {
		return fmt.Errorf("scenario %s: negative network.degree", s.Name)
	}
	// Relay protocol and knobs: delegate range checks to the same
	// validator the campaign build runs.
	if _, err := s.relayConfig(); err != nil {
		return err
	}

	share, err := s.nodeShare()
	if err != nil {
		return err
	}
	if s.Network.NodeShare != nil {
		var total float64
		for r, v := range share {
			if v < 0 {
				return fmt.Errorf("scenario %s: negative node share for %s", s.Name, r)
			}
			total += v
		}
		if total < 0.999 || total > 1.001 {
			return fmt.Errorf("scenario %s: node shares sum to %v, want 1", s.Name, total)
		}
	}

	// An omitted measurement section defaults to the paper's vantage
	// points, which must then also have overlay presence.
	if len(s.Measurement) == 0 {
		for _, m := range core.PaperMeasurementSpecs(0) {
			if share[m.Region] <= 0 {
				return fmt.Errorf("scenario %s: default measurement node %s placed in zero-node region (set an explicit measurement section)", s.Name, m.Name)
			}
		}
	}

	seen := map[string]bool{}
	for _, m := range s.Measurement {
		if m.Name == "" {
			return fmt.Errorf("scenario %s: measurement node needs a name", s.Name)
		}
		if seen[m.Name] {
			return fmt.Errorf("scenario %s: duplicate measurement node %s", s.Name, m.Name)
		}
		seen[m.Name] = true
		if m.Peers < 0 {
			return fmt.Errorf("scenario %s: measurement node %s has negative peers", s.Name, m.Name)
		}
		r, err := parseRegion(m.Region)
		if err != nil {
			return fmt.Errorf("scenario %s: measurement node %s: %w", s.Name, m.Name, err)
		}
		if share[r] <= 0 {
			return fmt.Errorf("scenario %s: measurement node %s placed in zero-node region %s", s.Name, m.Name, r)
		}
	}

	// Zero-node gateway regions would inject blocks into regions with
	// no overlay presence; reject them like a zero-hashrate typo.
	for _, p := range pools {
		for _, r := range p.GatewayRegions {
			if share[r] <= 0 {
				return fmt.Errorf("scenario %s: pool %s gateways in zero-node region %s", s.Name, p.Name, r)
			}
		}
	}

	if w := s.Workload; w != nil {
		if w.Senders < 0 || w.MeanInterarrivalMS < 0 || w.ZipfExponent < 0 {
			return fmt.Errorf("scenario %s: negative workload parameter", s.Name)
		}
		if w.OutOfOrderProb != nil && (*w.OutOfOrderProb < 0 || *w.OutOfOrderProb > 1) {
			return fmt.Errorf("scenario %s: out_of_order_prob %v outside [0,1]", s.Name, *w.OutOfOrderProb)
		}
		if w.PrivateProb != nil && (*w.PrivateProb < 0 || *w.PrivateProb > 1) {
			return fmt.Errorf("scenario %s: private_prob %v outside [0,1]", s.Name, *w.PrivateProb)
		}
	}

	// Fault schedule: delegate the interval/probability/region
	// invariants to the same validator the injector itself runs.
	if s.Faults != nil {
		fc, err := s.faultsConfig()
		if err != nil {
			return err
		}
		if err := fc.Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	return nil
}

// faultsConfig builds the faults.Config from the schema. Nil when the
// section is absent.
func (s *Scenario) faultsConfig() (*faults.Config, error) {
	f := s.Faults
	if f == nil {
		return nil, nil
	}
	cfg := &faults.Config{}
	if c := f.Crash; c != nil {
		cfg.Crash = &faults.Crash{
			MeanBetween:  millis(c.MeanBetweenMS),
			MeanDowntime: millis(c.MeanDowntimeMS),
			MaxCrashes:   c.MaxCrashes,
		}
	}
	for i, p := range f.Partitions {
		part := faults.Partition{
			Start:    millis(p.AtMS),
			Duration: millis(p.DurationMS),
		}
		for _, name := range p.Regions {
			r, err := parseRegion(name)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: partition %d: %w", s.Name, i, err)
			}
			part.Regions = append(part.Regions, r)
		}
		cfg.Partitions = append(cfg.Partitions, part)
	}
	if l := f.Loss; l != nil {
		cfg.Loss = &faults.Loss{
			DropProb:       l.DropProb,
			ExtraDelayMean: millis(l.ExtraDelayMeanMS),
		}
	}
	if c := f.Churn; c != nil {
		cfg.Churn = &faults.Churn{
			MeanBetween:  millis(c.MeanBetweenMS),
			JoinFraction: c.JoinFraction,
			MaxEvents:    c.MaxEvents,
		}
	}
	return cfg, nil
}

// validateOutputs checks every requested output exists and is
// compatible with the scenario's mode and workload.
func (s *Scenario) validateOutputs() error {
	seen := map[string]bool{}
	for _, name := range s.outputs() {
		if seen[name] {
			return fmt.Errorf("scenario %s: output %q listed twice", s.Name, name)
		}
		seen[name] = true
		def, ok := outputDefs[name]
		if !ok {
			return fmt.Errorf("scenario %s: unknown output %q (known: %s)",
				s.Name, name, strings.Join(OutputNames(), ", "))
		}
		if !def.supports(s.RunMode()) {
			return fmt.Errorf("scenario %s: output %q unavailable in %s mode", s.Name, name, s.RunMode())
		}
		if def.needsWorkload && s.Workload == nil {
			return fmt.Errorf("scenario %s: output %q needs a workload section", s.Name, name)
		}
		if def.needsFaults && s.Faults == nil {
			return fmt.Errorf("scenario %s: output %q needs a faults section", s.Name, name)
		}
	}
	return nil
}

// nodeShare resolves the effective region node-share map.
func (s *Scenario) nodeShare() (map[geo.Region]float64, error) {
	if s.Network == nil || s.Network.NodeShare == nil {
		return geo.DefaultNodeShare, nil
	}
	out := make(map[geo.Region]float64, len(s.Network.NodeShare))
	for name, v := range s.Network.NodeShare {
		r, err := parseRegion(name)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: node_share: %w", s.Name, err)
		}
		if _, dup := out[r]; dup {
			return nil, fmt.Errorf("scenario %s: node_share lists %s twice", s.Name, r)
		}
		out[r] = v
	}
	return out, nil
}

// pools builds the mining.PoolConfig registry from the schema,
// applying normalize_shares. Empty pool lists keep the paper's.
func (s *Scenario) pools() ([]mining.PoolConfig, error) {
	if len(s.Pools) == 0 {
		return mining.PaperPools(), nil
	}
	var total float64
	for _, p := range s.Pools {
		total += p.Share
	}
	if s.NormalizeShares && total <= 0 {
		return nil, fmt.Errorf("scenario %s: normalize_shares needs a positive share sum, got %v", s.Name, total)
	}
	out := make([]mining.PoolConfig, 0, len(s.Pools))
	for _, p := range s.Pools {
		cfg := mining.PoolConfig{
			Name:                   p.Name,
			HashrateShare:          p.Share,
			EmptyBlockProb:         p.EmptyBlockProb,
			MultiVersionProb:       p.MultiVersionProb,
			MultiVersionSameTxProb: p.MultiVersionSameTxProb,
			SwitchDelayMean:        mining.DefaultSwitchDelay,
			Withholder:             p.Withholder,
		}
		if s.NormalizeShares {
			cfg.HashrateShare = p.Share / total
		}
		if p.SwitchDelayMS != nil {
			cfg.SwitchDelayMean = millis(*p.SwitchDelayMS)
		}
		for _, g := range p.Gateways {
			r, err := parseRegion(g)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: pool %s: %w", s.Name, p.Name, err)
			}
			cfg.GatewayRegions = append(cfg.GatewayRegions, r)
		}
		out = append(out, cfg)
	}
	return out, nil
}
