package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
)

// Expansion caps: a sweep is a campaign description, not a fuzzer.
const (
	maxAxes          = 4
	maxValuesPerAxis = 64
	maxVariants      = 256
)

// Sweep expands one scenario file into a grid of variants: the
// cartesian product of its axes, each axis binding one field of the
// scenario document to a list (or arithmetic range) of values.
type Sweep struct {
	// Axes are combined as a grid, in order: the last axis varies
	// fastest.
	Axes []Axis `json:"axes"`
}

// Axis binds one field to a value list.
type Axis struct {
	// Field is a dot path into the scenario document, e.g.
	// "network.degree", "chain.blocks" or "pools.Attacker.share"
	// (array elements are addressed by index or by their "name"
	// field). The path must exist in the document, so typos fail at
	// parse time.
	Field string `json:"field"`
	// Values lists explicit values (usually numbers).
	Values []any `json:"values,omitempty"`
	// From/To/Step generate an inclusive arithmetic range instead.
	From *float64 `json:"from,omitempty"`
	To   *float64 `json:"to,omitempty"`
	Step *float64 `json:"step,omitempty"`
}

// Binding is one applied axis value.
type Binding struct {
	// Field is the axis dot path.
	Field string `json:"field"`
	// Value is the bound value.
	Value any `json:"value"`
}

// Variant is one expanded scenario: the base document with a sweep
// grid point applied.
type Variant struct {
	// Scenario is the resolved, validated description.
	Scenario Scenario
	// Bindings are the applied axis values, in axis order (empty for
	// a sweep-free file).
	Bindings []Binding
}

// Set is a parsed scenario file: the source document plus every
// expanded variant.
type Set struct {
	// Path is the source file, when loaded from disk (informational).
	Path string
	// Source is the original document, compacted — re-parsing it
	// reproduces the Set (the replay contract).
	Source json.RawMessage
	// Base is the sweep-free scenario (the document without "sweep").
	Base Scenario
	// Sweep is the expansion request, if any.
	Sweep *Sweep
	// Variants are the expanded scenarios, grid order.
	Variants []*Variant
}

// Load reads and parses a scenario file.
func Load(path string) (*Set, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	set, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	set.Path = path
	return set, nil
}

// Parse decodes a scenario document, expands its sweep and validates
// every variant.
func Parse(data []byte) (*Set, error) {
	var doc map[string]any
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}

	set := &Set{}
	var compact bytes.Buffer
	if err := json.Compact(&compact, data); err != nil {
		return nil, err
	}
	set.Source = append(json.RawMessage(nil), compact.Bytes()...)

	if raw, ok := doc["sweep"]; ok {
		sw, err := decodeStrict[Sweep](raw)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		set.Sweep = &sw
		delete(doc, "sweep")
	}

	base, err := decodeStrict[Scenario](doc)
	if err != nil {
		return nil, err
	}
	set.Base = base

	grid, err := expand(set.Sweep)
	if err != nil {
		return nil, err
	}
	for _, bindings := range grid {
		v, err := bind(doc, bindings)
		if err != nil {
			return nil, err
		}
		if err := v.Scenario.Validate(); err != nil {
			return nil, fmt.Errorf("variant %s: %w", v.ID(), err)
		}
		set.Variants = append(set.Variants, v)
	}
	ids := map[string]bool{}
	for _, v := range set.Variants {
		id := v.ID()
		if ids[id] {
			return nil, fmt.Errorf("sweep produces duplicate variant %s (axes must differ in value)", id)
		}
		ids[id] = true
		// The name pattern reserves the ID separators, but axis labels
		// and bound values land in IDs verbatim — a separator or
		// whitespace there (a swept string, a "1e+11" number literal,
		// a pool named "a,b") would make the ID ambiguous or break
		// -only selection.
		labels := axisLabels(v.Bindings)
		for i, b := range v.Bindings {
			for _, part := range []string{labels[i], formatValue(b.Value)} {
				if strings.ContainsAny(part, "@+=,/ \t\r\n") {
					return nil, fmt.Errorf("sweep: axis %s renders %q into the variant ID, which contains a reserved character (@+=,/ or whitespace)", b.Field, part)
				}
			}
		}
	}
	return set, nil
}

// decodeStrict re-marshals a generic value into T, rejecting unknown
// fields so schema typos fail loudly. UseNumber keeps untyped values
// (sweep axis values) as json.Number literals: converting them to
// float64 would render large integers in scientific notation inside
// variant IDs and lose precision above 2^53.
func decodeStrict[T any](v any) (T, error) {
	var out T
	data, err := json.Marshal(v)
	if err != nil {
		return out, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	dec.UseNumber()
	if err := dec.Decode(&out); err != nil {
		return out, err
	}
	return out, nil
}

// expand produces the grid of binding combinations (a single empty
// combination for sweep-free files).
func expand(sw *Sweep) ([][]Binding, error) {
	if sw == nil {
		return [][]Binding{nil}, nil
	}
	if len(sw.Axes) == 0 {
		return nil, fmt.Errorf("sweep: needs at least one axis")
	}
	if len(sw.Axes) > maxAxes {
		return nil, fmt.Errorf("sweep: %d axes exceeds the limit of %d", len(sw.Axes), maxAxes)
	}
	axes := make([][]any, len(sw.Axes))
	total := 1
	fields := map[string]bool{}
	for i, ax := range sw.Axes {
		// A repeated field would make later bindings silently
		// overwrite earlier ones while the IDs claim both values ran.
		if fields[ax.Field] {
			return nil, fmt.Errorf("sweep: field %q appears on two axes", ax.Field)
		}
		fields[ax.Field] = true
		vals, err := ax.values()
		if err != nil {
			return nil, err
		}
		axes[i] = vals
		total *= len(vals)
		if total > maxVariants {
			return nil, fmt.Errorf("sweep: expansion exceeds %d variants", maxVariants)
		}
	}
	grid := make([][]Binding, 0, total)
	idx := make([]int, len(axes))
	for {
		bindings := make([]Binding, len(axes))
		for i, ax := range sw.Axes {
			bindings[i] = Binding{Field: ax.Field, Value: axes[i][idx[i]]}
		}
		grid = append(grid, bindings)
		// Odometer increment, last axis fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(axes[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return grid, nil
		}
	}
}

// values resolves an axis to its value list.
func (ax Axis) values() ([]any, error) {
	if ax.Field == "" {
		return nil, fmt.Errorf("sweep: axis needs a field")
	}
	if len(ax.Values) > 0 {
		if ax.From != nil || ax.To != nil || ax.Step != nil {
			return nil, fmt.Errorf("sweep: axis %s sets both values and from/to/step", ax.Field)
		}
		if len(ax.Values) > maxValuesPerAxis {
			return nil, fmt.Errorf("sweep: axis %s exceeds %d values", ax.Field, maxValuesPerAxis)
		}
		return ax.Values, nil
	}
	if ax.From == nil || ax.To == nil || ax.Step == nil {
		return nil, fmt.Errorf("sweep: axis %s needs values or from/to/step", ax.Field)
	}
	from, to, step := *ax.From, *ax.To, *ax.Step
	if step <= 0 {
		return nil, fmt.Errorf("sweep: axis %s step must be > 0", ax.Field)
	}
	if to < from {
		return nil, fmt.Errorf("sweep: axis %s has to < from", ax.Field)
	}
	// Bound the span in float space before converting: extreme
	// from/to/step combinations must fail the limit check, not
	// overflow the int conversion.
	span := (to - from) / step
	if !(span >= 0) || span > float64(maxValuesPerAxis) {
		return nil, fmt.Errorf("sweep: axis %s expands to over %d values", ax.Field, maxValuesPerAxis)
	}
	n := int(math.Floor(span+1e-9)) + 1
	if n > maxValuesPerAxis {
		return nil, fmt.Errorf("sweep: axis %s expands to %d values (limit %d)", ax.Field, n, maxValuesPerAxis)
	}
	// The range is documented inclusive: a step that never lands on
	// "to" would silently drop the endpoint the user asked for.
	if last := from + float64(n-1)*step; math.Abs(to-last) > 1e-9*(math.Abs(to)+math.Abs(step)+1) {
		return nil, fmt.Errorf("sweep: axis %s range is inclusive but step %v never reaches to=%v (last value %v)", ax.Field, step, to, last)
	}
	vals := make([]any, 0, n)
	for i := 0; i < n; i++ {
		// Round away float accumulation so 0.1+0.2 sweeps produce
		// clean variant IDs.
		v := math.Round((from+float64(i)*step)*1e9) / 1e9
		vals = append(vals, v)
	}
	return vals, nil
}

// bind deep-copies the document, applies the bindings and decodes the
// result into a Variant.
func bind(doc map[string]any, bindings []Binding) (*Variant, error) {
	resolved := deepCopy(doc).(map[string]any)
	for _, b := range bindings {
		if err := setPath(resolved, b.Field, b.Value); err != nil {
			return nil, fmt.Errorf("sweep: axis %s: %w", b.Field, err)
		}
	}
	sc, err := decodeStrict[Scenario](resolved)
	if err != nil {
		return nil, err
	}
	return &Variant{Scenario: sc, Bindings: bindings}, nil
}

// deepCopy clones a decoded JSON value.
func deepCopy(v any) any {
	switch t := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, e := range t {
			out[k] = deepCopy(e)
		}
		return out
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = deepCopy(e)
		}
		return out
	default:
		return v
	}
}

// setPath sets a dot-path field of a decoded JSON document. Array
// segments accept an index or the value of an element's "name" field.
// The full path must already exist so typos are rejected.
func setPath(doc any, path string, value any) error {
	segs := strings.Split(path, ".")
	cur := doc
	for i, seg := range segs {
		last := i == len(segs)-1
		switch node := cur.(type) {
		case map[string]any:
			next, ok := node[seg]
			if !ok {
				return fmt.Errorf("field %q not found at %q", path, seg)
			}
			if last {
				node[seg] = value
				return nil
			}
			cur = next
		case []any:
			if idx, err := strconv.Atoi(seg); err == nil {
				if idx < 0 || idx >= len(node) {
					return fmt.Errorf("field %q: index %d out of range", path, idx)
				}
				if last {
					node[idx] = value
					return nil
				}
				cur = node[idx]
				continue
			}
			found := false
			for _, e := range node {
				if m, ok := e.(map[string]any); ok {
					if name, _ := m["name"].(string); name == seg {
						if last {
							return fmt.Errorf("field %q: cannot replace whole element %q", path, seg)
						}
						cur = m
						found = true
						break
					}
				}
			}
			if !found {
				return fmt.Errorf("field %q: no array element named %q", path, seg)
			}
		default:
			return fmt.Errorf("field %q: %q is not an object or array", path, segs[i-1])
		}
	}
	return nil
}

// ID is the variant's registry identifier: the scenario name, plus
// "@axis=value" bindings joined by "+" for sweep variants. The
// separators are reserved by the name pattern, so variant IDs never
// collide with scenario names; Parse additionally rejects bound
// values that would put a comma or whitespace in the ID, keeping
// every variant selectable via -only (which splits on commas).
func (v *Variant) ID() string {
	if len(v.Bindings) == 0 {
		return v.Scenario.Name
	}
	return v.Scenario.Name + "@" + v.bindingSuffix()
}

// bindingSuffix renders the bindings as "a=1+b=2".
func (v *Variant) bindingSuffix() string {
	labels := axisLabels(v.Bindings)
	parts := make([]string, 0, len(v.Bindings))
	for i, b := range v.Bindings {
		parts = append(parts, labels[i]+"="+formatValue(b.Value))
	}
	return strings.Join(parts, "+")
}

// axisLabels abbreviates each axis path to its final segment, pulling
// in parent segments until no two axes share a label — so sweeping
// pools.Attacker.share against pools.Honest.share yields
// "Attacker.share" and "Honest.share", not two ambiguous "share"s.
func axisLabels(bindings []Binding) []string {
	labels := make([]string, len(bindings))
	segs := make([][]string, len(bindings))
	depth := make([]int, len(bindings))
	for i, b := range bindings {
		segs[i] = strings.Split(b.Field, ".")
		depth[i] = 1
	}
	for {
		counts := map[string]int{}
		for i := range bindings {
			labels[i] = strings.Join(segs[i][len(segs[i])-depth[i]:], ".")
			counts[labels[i]]++
		}
		grown := false
		for i := range bindings {
			if counts[labels[i]] > 1 && depth[i] < len(segs[i]) {
				depth[i]++
				grown = true
			}
		}
		if !grown {
			return labels
		}
	}
}

// formatValue renders a bound value compactly and deterministically.
// Floats use 'f' so large range values never pick up the scientific
// notation whose '+' would collide with the binding separator.
func formatValue(v any) string {
	switch t := v.(type) {
	case float64:
		return strconv.FormatFloat(t, 'f', -1, 64)
	case json.Number:
		return t.String()
	case string:
		return t
	case bool:
		return strconv.FormatBool(t)
	default:
		data, err := json.Marshal(v)
		if err != nil {
			return fmt.Sprintf("%v", v)
		}
		return string(data)
	}
}
