package scenario

import (
	"encoding/json"
	"fmt"

	"repro/internal/store"
)

// ArtifactFile is the run-directory file embedding the resolved
// scenarios alongside experiments.WriteArtifacts' outputs, so a
// campaign directory is replayable: re-parsing the embedded source
// reproduces the exact spec set that generated the results.
const ArtifactFile = "scenario.json"

// artifactEntry is one scenario file's record.
type artifactEntry struct {
	// Path is the source file path at run time (informational).
	Path string `json:"path,omitempty"`
	// Source is the original document, sweep included — the replay
	// input.
	Source json.RawMessage `json:"source"`
	// Variants records the expansion: IDs, bindings and each fully
	// resolved scenario.
	Variants []artifactVariant `json:"variants"`
}

type artifactVariant struct {
	ID       string    `json:"id"`
	Bindings []Binding `json:"bindings,omitempty"`
	Resolved Scenario  `json:"resolved"`
}

// WriteArtifact persists the sets as the store's scenario.json blob.
func WriteArtifact(st store.Store, sets []*Set) error {
	entries := make([]artifactEntry, 0, len(sets))
	for _, set := range sets {
		e := artifactEntry{Path: set.Path, Source: set.Source}
		for _, v := range set.Variants {
			e.Variants = append(e.Variants, artifactVariant{
				ID: v.ID(), Bindings: v.Bindings, Resolved: v.Scenario,
			})
		}
		entries = append(entries, e)
	}
	data, err := json.MarshalIndent(map[string]any{"scenarios": entries}, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: marshal artifact: %w", err)
	}
	return st.Put(ArtifactFile, append(data, '\n'))
}

// ReadArtifact loads the store's scenario.json back into Sets by
// re-parsing each embedded source document — the returned sets
// compile to the same specs that produced the run. fs.ErrNotExist
// passes through for runs written without scenarios.
func ReadArtifact(st store.Store) ([]*Set, error) {
	data, err := st.Get(ArtifactFile)
	if err != nil {
		return nil, err
	}
	var art struct {
		Scenarios []artifactEntry `json:"scenarios"`
	}
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("scenario: parse %s: %w", ArtifactFile, err)
	}
	sets := make([]*Set, 0, len(art.Scenarios))
	for _, e := range art.Scenarios {
		set, err := Parse(e.Source)
		if err != nil {
			return nil, fmt.Errorf("scenario: replay %s: %w", e.Path, err)
		}
		set.Path = e.Path
		// Cross-check the recorded expansion against the re-parse:
		// a mismatch means the artifact was edited by hand.
		if len(set.Variants) != len(e.Variants) {
			return nil, fmt.Errorf("scenario: %s records %d variants, source expands to %d",
				e.Path, len(e.Variants), len(set.Variants))
		}
		for i, v := range set.Variants {
			if v.ID() != e.Variants[i].ID {
				return nil, fmt.Errorf("scenario: %s variant %d: recorded %s, source expands to %s",
					e.Path, i, e.Variants[i].ID, v.ID())
			}
		}
		sets = append(sets, set)
	}
	return sets, nil
}
