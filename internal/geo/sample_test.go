package geo

import (
	"math"
	"sort"
	"testing"

	"repro/internal/sim"
)

// TestSampleEdgeCases pins LatencyModel.Sample's boundary behavior:
// same-region hops, zero-size messages, disabled knobs, invalid
// regions and the floor.
func TestSampleEdgeCases(t *testing.T) {
	det := LatencyModel{MinDelayMillis: 1} // no jitter, no transfer, no loss
	cases := []struct {
		name     string
		model    LatencyModel
		from, to Region
		bytes    int
		want     sim.Time // exact expectation for deterministic models; <0 = error expected
	}{
		{"same region deterministic", det, WesternEurope, WesternEurope, 0, 8},
		{"cross region deterministic", det, EasternAsia, SouthAmerica, 0, 140},
		{"asymmetric pair matches matrix", det, NorthAmerica, Oceania, 0, 80},
		{"zero-size message pays no transfer", LatencyModel{BytesPerMillisecond: 1, MinDelayMillis: 1}, NorthAmerica, NorthAmerica, 0, 15},
		{"transfer term adds bytes/rate", LatencyModel{BytesPerMillisecond: 100, MinDelayMillis: 1}, NorthAmerica, NorthAmerica, 1000, 25},
		{"negative size ignored", LatencyModel{BytesPerMillisecond: 100, MinDelayMillis: 1}, NorthAmerica, NorthAmerica, -500, 15},
		{"floor clamps small delays", LatencyModel{MinDelayMillis: 50}, WesternEurope, WesternEurope, 0, 50},
		{"invalid from", det, Region(0), WesternEurope, 0, -1},
		{"invalid to", det, WesternEurope, Region(99), 0, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := sim.NewRNG(42)
			got, err := tc.model.Sample(rng, tc.from, tc.to, tc.bytes)
			if tc.want < 0 {
				if err == nil {
					t.Fatalf("want error, got %v", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("Sample(%v->%v, %d bytes) = %v, want %v", tc.from, tc.to, tc.bytes, got, tc.want)
			}
		})
	}
}

// TestSampleJitterBounds checks the jitter multiplier's shape: every
// sample respects the floor, the sample median sits near the base
// delay (the log-normal multiplier has median 1), and spread grows
// with sigma.
func TestSampleJitterBounds(t *testing.T) {
	const n = 20000
	base, err := BaseDelay(WesternEurope, CentralEurope)
	if err != nil {
		t.Fatal(err)
	}
	sampleAll := func(sigma float64) []float64 {
		rng := sim.NewRNG(99)
		m := LatencyModel{JitterSigma: sigma, MinDelayMillis: 1}
		out := make([]float64, n)
		for i := range out {
			d, err := m.Sample(rng, WesternEurope, CentralEurope, 0)
			if err != nil {
				t.Fatal(err)
			}
			if d < 1 {
				t.Fatalf("sample %v under the 1 ms floor", d)
			}
			out[i] = float64(d)
		}
		return out
	}
	spread := func(xs []float64) (median, sd float64) {
		var sum, sq float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(len(xs))
		for _, x := range xs {
			sq += (x - mean) * (x - mean)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return sorted[len(sorted)/2], math.Sqrt(sq / float64(len(xs)))
	}
	narrowMedian, narrowSD := spread(sampleAll(0.1))
	wideMedian, wideSD := spread(sampleAll(0.5))
	for name, med := range map[string]float64{"narrow": narrowMedian, "wide": wideMedian} {
		if med < 0.85*float64(base) || med > 1.15*float64(base) {
			t.Fatalf("%s jitter median %v strays from base %v", name, med, base)
		}
	}
	if wideSD <= narrowSD {
		t.Fatalf("spread must grow with sigma: sd(0.5)=%v <= sd(0.1)=%v", wideSD, narrowSD)
	}
}

// TestMinPairDelayIsTightLowerBound is the property test backing the
// sharded conductor's lookahead soundness: over adversarial model
// configurations — jitter sigma from zero to extreme, floors off and
// dominant, retransmission forced on, transfer terms on and off — no
// Sample for any region pair may ever undercut MinPairDelay for that
// pair. The conductor turns MinPairDelay into phase-B deadlines; one
// undercutting sample would back-date a cross-lane event.
func TestMinPairDelayIsTightLowerBound(t *testing.T) {
	models := []struct {
		name string
		m    LatencyModel
	}{
		{"default", DefaultLatencyModel()},
		{"no jitter", LatencyModel{MinDelayMillis: 1, JitterFloor: 0.25}},
		{"extreme sigma", LatencyModel{JitterSigma: 3.0, JitterFloor: 0.25, MinDelayMillis: 1}},
		{"floor disabled", LatencyModel{JitterSigma: 1.5, MinDelayMillis: 1}},
		{"floor dominant", LatencyModel{JitterSigma: 2.0, JitterFloor: 1.5, MinDelayMillis: 1}},
		{"min-delay dominant", LatencyModel{JitterSigma: 0.5, JitterFloor: 0.01, MinDelayMillis: 40}},
		{"retransmit always", LatencyModel{JitterSigma: 1.0, JitterFloor: 0.25, MinDelayMillis: 1, RetransmitProb: 1, RetransmitPenaltyMillis: 180}},
		{"transfer heavy", LatencyModel{JitterSigma: 1.0, JitterFloor: 0.25, MinDelayMillis: 1, BytesPerMillisecond: 10}},
		{"everything on", LatencyModel{JitterSigma: 2.5, JitterFloor: 0.6, MinDelayMillis: 3, BytesPerMillisecond: 1250, RetransmitProb: 0.5, RetransmitPenaltyMillis: 90}},
	}
	sizes := []int{0, 1, 100_000}
	const perPair = 400
	for _, tc := range models {
		t.Run(tc.name, func(t *testing.T) {
			rng := sim.NewRNG(1234)
			for _, from := range Regions() {
				for _, to := range Regions() {
					floor, err := tc.m.MinPairDelay(from, to)
					if err != nil {
						t.Fatal(err)
					}
					if floor < sim.Time(tc.m.MinDelayMillis) {
						t.Fatalf("MinPairDelay(%v,%v)=%v under MinDelayMillis %v",
							from, to, floor, tc.m.MinDelayMillis)
					}
					for _, size := range sizes {
						for i := 0; i < perPair; i++ {
							d, err := tc.m.Sample(rng, from, to, size)
							if err != nil {
								t.Fatal(err)
							}
							if d < floor {
								t.Fatalf("Sample(%v->%v, %d bytes) = %v undercuts MinPairDelay %v (model %s, draw %d)",
									from, to, size, d, floor, tc.name, i)
							}
						}
					}
				}
			}
		})
	}
}

// TestMinPairDelayDefaultWidensLookahead pins the concrete bound the
// tentpole is about: under the default model the NA->EA floor is 18 ms
// (0.25 x 75), not the uniform 1 ms the conductor assumed before
// per-pair bounds.
func TestMinPairDelayDefaultWidensLookahead(t *testing.T) {
	m := DefaultLatencyModel()
	d, err := m.MinPairDelay(NorthAmerica, EasternAsia)
	if err != nil {
		t.Fatal(err)
	}
	if d != 18 {
		t.Fatalf("NA->EA MinPairDelay = %v, want 18 (0.25 x 75 ms truncated)", d)
	}
	// Intra-region floors stay above the global 1 ms minimum too.
	d, err = m.MinPairDelay(WesternEurope, WesternEurope)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Fatalf("WE->WE MinPairDelay = %v, want 2 (0.25 x 8 ms)", d)
	}
	if _, err := m.MinPairDelay(Region(0), NorthAmerica); err == nil {
		t.Fatal("MinPairDelay accepted an invalid region")
	}
}
