package geo

import (
	"math"

	"repro/internal/sim"
)

// The paper's measurement machines synchronize with NTP, whose error
// the paper quotes from Murta et al. (GLOBECOM'06): offsets are below
// 10 ms in 90% of cases and below 100 ms in 99% of cases (§II). The
// analysis pipeline uses the same bound when drawing Fig. 2's error
// bars. This file models exactly that mixture.

// NTP error-model constants from the paper.
const (
	// NTPOffsetP90Millis bounds 90% of clock offsets.
	NTPOffsetP90Millis = 10
	// NTPOffsetP99Millis bounds 99% of clock offsets.
	NTPOffsetP99Millis = 100
	// ntpOffsetMaxMillis bounds the remaining 1% tail.
	ntpOffsetMaxMillis = 250
)

// Clock is a node-local clock with a fixed NTP synchronization offset
// from true (simulation) time. Measurement nodes stamp their logs with
// Clock.Read, reproducing the paper's bounded measurement error.
type Clock struct {
	offset sim.Time
}

// NewClock samples a clock whose offset follows the paper's NTP error
// mixture: |offset| < 10 ms with probability 0.9, in [10 ms, 100 ms)
// with probability 0.09, and in [100 ms, 250 ms) with probability
// 0.01; the sign is uniform.
func NewClock(rng *sim.RNG) Clock {
	u := rng.Float64()
	var magnitude float64
	switch {
	case u < 0.90:
		magnitude = rng.Float64() * NTPOffsetP90Millis
	case u < 0.99:
		magnitude = NTPOffsetP90Millis + rng.Float64()*(NTPOffsetP99Millis-NTPOffsetP90Millis)
	default:
		magnitude = NTPOffsetP99Millis + rng.Float64()*(ntpOffsetMaxMillis-NTPOffsetP99Millis)
	}
	// Truncate toward zero so each tier stays strictly inside its
	// bound after quantization to whole milliseconds.
	offset := sim.Time(math.Floor(magnitude))
	if rng.Bernoulli(0.5) {
		offset = -offset
	}
	return Clock{offset: offset}
}

// PerfectClock returns a clock with no offset (useful for tests and
// for ground-truth comparisons).
func PerfectClock() Clock { return Clock{} }

// ClockWithOffset returns a clock with a fixed offset, for tests.
func ClockWithOffset(offset sim.Time) Clock { return Clock{offset: offset} }

// Read converts true simulation time into this node's local timestamp.
func (c Clock) Read(now sim.Time) sim.Time { return now + c.offset }

// Offset exposes the synchronization error (true time subtracted from
// local time).
func (c Clock) Offset() sim.Time { return c.offset }
