package geo

import (
	"testing"

	"repro/internal/sim"
)

func TestRetransmitFattensTail(t *testing.T) {
	rng := sim.NewRNG(11)
	clean := LatencyModel{JitterSigma: 0.25, BytesPerMillisecond: 1250, MinDelayMillis: 1}
	lossy := clean
	lossy.RetransmitProb = 0.05
	lossy.RetransmitPenaltyMillis = 180

	sample := func(m LatencyModel) (mean float64, over200 int) {
		var sum float64
		for i := 0; i < 20000; i++ {
			d, err := m.Sample(rng, WesternEurope, CentralEurope, 600)
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(d)
			if d > 200 {
				over200++
			}
		}
		return sum / 20000, over200
	}
	cleanMean, cleanTail := sample(clean)
	lossyMean, lossyTail := sample(lossy)
	if lossyMean <= cleanMean {
		t.Fatalf("retransmits must raise the mean: %v vs %v", lossyMean, cleanMean)
	}
	if lossyTail <= cleanTail {
		t.Fatalf("retransmits must fatten the tail: %d vs %d", lossyTail, cleanTail)
	}
	// ~5% of samples take the penalty: tail count near 1000 of 20000.
	if lossyTail < 500 || lossyTail > 1600 {
		t.Fatalf("tail frequency off: %d", lossyTail)
	}
}

func TestRetransmitDisabledByDefaultZero(t *testing.T) {
	rng := sim.NewRNG(12)
	m := LatencyModel{JitterSigma: 0, BytesPerMillisecond: 0, MinDelayMillis: 1}
	base, err := BaseDelay(NorthAmerica, NorthAmerica)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		d, err := m.Sample(rng, NorthAmerica, NorthAmerica, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d != base {
			t.Fatalf("no-jitter no-loss sample must equal base: %v vs %v", d, base)
		}
	}
}

func TestGossipSurvivesHeavyLossDelays(t *testing.T) {
	// Eugster et al.'s point quoted in §III-A2: gossip redundancy
	// tolerates faults. Even when every third message suffers a loss
	// episode, blocks still reach everyone (TCP delays, never drops).
	// Exercised at the geo layer here; the p2p flood test covers the
	// protocol side.
	rng := sim.NewRNG(13)
	m := DefaultLatencyModel()
	m.RetransmitProb = 0.33
	for i := 0; i < 1000; i++ {
		d, err := m.Sample(rng, EasternAsia, WesternEurope, 80_000)
		if err != nil {
			t.Fatal(err)
		}
		if d <= 0 {
			t.Fatal("non-positive delay")
		}
	}
}
