// Package geo models the geographic substrate of the reproduction:
// world regions, an empirical inter-region latency matrix, log-normal
// jitter, bandwidth-derived transfer delays, and the NTP clock-offset
// model the paper quotes for its measurement error (§II).
//
// The paper's geographic findings (Figs. 2 and 3) are driven by the
// asymmetry of Internet backbone latencies between continents; this
// package encodes that asymmetry from published backbone RTT figures.
package geo

import (
	"fmt"

	"repro/internal/sim"
)

// Region is a coarse geographic area hosting nodes. The first four are
// the paper's measurement-node locations.
type Region int

// Regions of the simulated world.
const (
	NorthAmerica Region = iota + 1
	EasternAsia
	WesternEurope
	CentralEurope
	SouthAmerica
	Oceania
)

// NumRegions is the number of modeled regions.
const NumRegions = 6

// Regions lists every region in a stable order.
func Regions() []Region {
	return []Region{NorthAmerica, EasternAsia, WesternEurope, CentralEurope, SouthAmerica, Oceania}
}

// String returns the paper's abbreviation for the region.
func (r Region) String() string {
	switch r {
	case NorthAmerica:
		return "NA"
	case EasternAsia:
		return "EA"
	case WesternEurope:
		return "WE"
	case CentralEurope:
		return "CE"
	case SouthAmerica:
		return "SA"
	case Oceania:
		return "OC"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// Name returns the paper's long region name.
func (r Region) Name() string {
	switch r {
	case NorthAmerica:
		return "North America"
	case EasternAsia:
		return "Eastern Asia"
	case WesternEurope:
		return "Western Europe"
	case CentralEurope:
		return "Central Europe"
	case SouthAmerica:
		return "South America"
	case Oceania:
		return "Oceania"
	default:
		return r.String()
	}
}

// Valid reports whether r is a known region.
func (r Region) Valid() bool {
	return r >= NorthAmerica && r <= Oceania
}

// baseOneWayMillis holds median one-way backbone delays between
// regions in milliseconds, derived from published inter-continent RTT
// measurements (RTT/2, rounded). Intra-region entries model national
// backbone hops.
var baseOneWayMillis = [NumRegions + 1][NumRegions + 1]float64{
	NorthAmerica:  {NorthAmerica: 15, EasternAsia: 75, WesternEurope: 45, CentralEurope: 55, SouthAmerica: 65, Oceania: 80},
	EasternAsia:   {NorthAmerica: 75, EasternAsia: 16, WesternEurope: 92, CentralEurope: 86, SouthAmerica: 140, Oceania: 60},
	WesternEurope: {NorthAmerica: 45, EasternAsia: 92, WesternEurope: 8, CentralEurope: 12, SouthAmerica: 95, Oceania: 140},
	CentralEurope: {NorthAmerica: 55, EasternAsia: 86, WesternEurope: 12, CentralEurope: 9, SouthAmerica: 105, Oceania: 135},
	SouthAmerica:  {NorthAmerica: 65, EasternAsia: 140, WesternEurope: 95, CentralEurope: 105, SouthAmerica: 25, Oceania: 145},
	Oceania:       {NorthAmerica: 80, EasternAsia: 60, WesternEurope: 140, CentralEurope: 135, SouthAmerica: 145, Oceania: 20},
}

// DefaultNodeShare is the fraction of network nodes hosted in each
// region, following the Ethereum peer geolocation shares reported by
// Kim et al. (IMC'18): North America and Europe dominate the node
// population even though Asian pools dominate the hashrate.
var DefaultNodeShare = map[Region]float64{
	NorthAmerica:  0.36,
	EasternAsia:   0.17,
	WesternEurope: 0.22,
	CentralEurope: 0.15,
	SouthAmerica:  0.05,
	Oceania:       0.05,
}

// LatencyModel converts a (from, to, message size) triple into a
// one-way delay sample. It combines the backbone base delay, a
// log-normal jitter factor, and a bandwidth-proportional transfer
// term.
type LatencyModel struct {
	// JitterSigma is the sigma of the log-normal jitter multiplier
	// applied to the base delay (mu=0 so the multiplier's median is
	// 1.0).
	JitterSigma float64
	// JitterFloor clamps the final sampled delay from below at
	// JitterFloor × base(from, to): no sample may undercut that
	// fraction of the pair's median backbone delay. A log-normal
	// multiplier is unbounded below, so without this clamp the only
	// latency every pair is guaranteed to pay is MinDelayMillis —
	// which is also the only per-pair lower bound the sharded
	// conductor could assume for its lookahead. The clamp is what
	// makes MinPairDelay (and therefore a topology-aware lookahead
	// bound) non-trivial. Zero disables the clamp; the effective
	// floor is always max(MinDelayMillis, JitterFloor × base).
	JitterFloor float64
	// BytesPerMillisecond models last-mile/backbone throughput. The
	// paper's measurement hosts had >= 8 Gbps; typical full nodes are
	// far slower, dominating block transfer time. 1250 B/ms = 10 Mbps.
	BytesPerMillisecond float64
	// MinDelayMillis is a floor on any hop (kernel + software stack).
	MinDelayMillis float64
	// RetransmitProb is the per-message probability of a TCP loss
	// episode: the message is not dropped (TCP retransmits) but pays
	// RetransmitPenaltyMillis plus another base delay. This produces
	// the heavy right tail of real one-way delays (the paper's Fig. 1
	// p99 of 317 ms against a 74 ms median).
	RetransmitProb float64
	// RetransmitPenaltyMillis approximates a retransmission timeout.
	RetransmitPenaltyMillis float64
}

// DefaultLatencyModel returns the model used by all experiments unless
// overridden.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{
		JitterSigma:             0.25,
		JitterFloor:             0.25,
		BytesPerMillisecond:     1250, // 10 Mbps
		MinDelayMillis:          1,
		RetransmitProb:          0.03,
		RetransmitPenaltyMillis: 180,
	}
}

// BaseDelay returns the median one-way backbone delay between two
// regions, without jitter or transfer time.
func BaseDelay(from, to Region) (sim.Time, error) {
	if !from.Valid() || !to.Valid() {
		return 0, fmt.Errorf("geo: invalid region pair (%v, %v)", from, to)
	}
	return sim.Time(baseOneWayMillis[from][to]), nil
}

// Sample draws a one-way delay for a message of size bytes from one
// region to another. It returns an error on invalid regions.
func (m LatencyModel) Sample(rng *sim.RNG, from, to Region, bytes int) (sim.Time, error) {
	if !from.Valid() || !to.Valid() {
		return 0, fmt.Errorf("geo: invalid region pair (%v, %v)", from, to)
	}
	base := baseOneWayMillis[from][to]
	jitter := 1.0
	if m.JitterSigma > 0 {
		jitter = rng.LogNormal(0, m.JitterSigma)
	}
	transfer := 0.0
	if m.BytesPerMillisecond > 0 && bytes > 0 {
		transfer = float64(bytes) / m.BytesPerMillisecond
	}
	d := base*jitter + transfer
	if m.RetransmitProb > 0 && rng.Bernoulli(m.RetransmitProb) {
		// One loss episode: RTO plus a fresh traversal of the path.
		d += m.RetransmitPenaltyMillis + base
	}
	// The final clamp mirrors minPairMillis exactly so that
	// MinPairDelay is a true lower bound on every sample. It runs
	// after all RNG draws: a clamped sample consumes the same draw
	// count as an unclamped one, so the rest of the stream is
	// unaffected.
	if f := m.minPairMillis(base); d < f {
		d = f
	}
	return sim.Time(d), nil
}

// minPairMillis is the effective per-pair floor in milliseconds for a
// given base delay: max(MinDelayMillis, JitterFloor × base).
func (m LatencyModel) minPairMillis(base float64) float64 {
	f := m.MinDelayMillis
	if jf := m.JitterFloor * base; jf > f {
		f = jf
	}
	return f
}

// MinPairDelay returns the smallest delay Sample can return for the
// region pair: max(MinDelayMillis, JitterFloor × base(from, to)),
// truncated to sim.Time exactly as Sample truncates its result. The
// jitter clamp enforces the floor directly; the transfer and
// retransmit terms only ever add delay, so they cannot undercut it.
// This is the quantity the sharded conductor may soundly use as a
// cross-lane lookahead bound.
func (m LatencyModel) MinPairDelay(from, to Region) (sim.Time, error) {
	if !from.Valid() || !to.Valid() {
		return 0, fmt.Errorf("geo: invalid region pair (%v, %v)", from, to)
	}
	return sim.Time(m.minPairMillis(baseOneWayMillis[from][to])), nil
}

// PlaceNodes assigns n nodes to regions proportionally to share,
// deterministically (largest-remainder apportionment) so a campaign's
// topology depends only on its configuration, not on RNG draws.
func PlaceNodes(n int, share map[Region]float64) ([]Region, error) {
	if n < 0 {
		return nil, fmt.Errorf("geo: negative node count %d", n)
	}
	regions := Regions()
	var total float64
	for _, r := range regions {
		if share[r] < 0 {
			return nil, fmt.Errorf("geo: negative share for %v", r)
		}
		total += share[r]
	}
	if total <= 0 {
		return nil, fmt.Errorf("geo: no positive region share")
	}
	counts := make([]int, len(regions))
	remainders := make([]float64, len(regions))
	assigned := 0
	for i, r := range regions {
		exact := float64(n) * share[r] / total
		counts[i] = int(exact)
		remainders[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	for assigned < n {
		best := 0
		for i := 1; i < len(regions); i++ {
			if remainders[i] > remainders[best] {
				best = i
			}
		}
		counts[best]++
		remainders[best] = -1
		assigned++
	}
	out := make([]Region, 0, n)
	for i, r := range regions {
		for k := 0; k < counts[i]; k++ {
			out = append(out, r)
		}
	}
	return out, nil
}
