package geo

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestRegionStrings(t *testing.T) {
	cases := map[Region][2]string{
		NorthAmerica:  {"NA", "North America"},
		EasternAsia:   {"EA", "Eastern Asia"},
		WesternEurope: {"WE", "Western Europe"},
		CentralEurope: {"CE", "Central Europe"},
		SouthAmerica:  {"SA", "South America"},
		Oceania:       {"OC", "Oceania"},
	}
	for r, want := range cases {
		if r.String() != want[0] || r.Name() != want[1] {
			t.Errorf("%d: got %q/%q", r, r.String(), r.Name())
		}
		if !r.Valid() {
			t.Errorf("%v should be valid", r)
		}
	}
	if Region(0).Valid() || Region(99).Valid() {
		t.Error("invalid regions reported valid")
	}
	if Region(99).String() == "" || Region(99).Name() == "" {
		t.Error("invalid region must still render")
	}
	if len(Regions()) != NumRegions {
		t.Fatalf("Regions(): %d", len(Regions()))
	}
}

func TestLatencyMatrixSymmetricAndPositive(t *testing.T) {
	for _, a := range Regions() {
		for _, b := range Regions() {
			ab, err := BaseDelay(a, b)
			if err != nil {
				t.Fatal(err)
			}
			ba, err := BaseDelay(b, a)
			if err != nil {
				t.Fatal(err)
			}
			if ab != ba {
				t.Errorf("asymmetric delay %v<->%v: %v vs %v", a, b, ab, ba)
			}
			if ab <= 0 {
				t.Errorf("non-positive delay %v->%v: %v", a, b, ab)
			}
			if a != b {
				aa, err := BaseDelay(a, a)
				if err != nil {
					t.Fatal(err)
				}
				if ab < aa {
					t.Errorf("inter-region %v->%v (%v) faster than intra %v (%v)", a, b, ab, a, aa)
				}
			}
		}
	}
}

func TestLatencyMatrixAsymmetryDrivesGeoFindings(t *testing.T) {
	// EA is far from both European regions and NA; WE-CE are close.
	// This is the asymmetry behind Figs. 2-3.
	weCE, err := BaseDelay(WesternEurope, CentralEurope)
	if err != nil {
		t.Fatal(err)
	}
	eaWE, err := BaseDelay(EasternAsia, WesternEurope)
	if err != nil {
		t.Fatal(err)
	}
	if eaWE < 4*weCE {
		t.Errorf("EA-WE (%v) should dwarf WE-CE (%v)", eaWE, weCE)
	}
}

func TestBaseDelayInvalid(t *testing.T) {
	if _, err := BaseDelay(Region(0), NorthAmerica); err == nil {
		t.Error("invalid from: want error")
	}
	if _, err := BaseDelay(NorthAmerica, Region(42)); err == nil {
		t.Error("invalid to: want error")
	}
}

func TestSampleRespectsFloorAndTransfer(t *testing.T) {
	rng := sim.NewRNG(1)
	m := LatencyModel{JitterSigma: 0, BytesPerMillisecond: 1000, MinDelayMillis: 1}
	// Zero-size message: pure base delay.
	d, err := m.Sample(rng, WesternEurope, WesternEurope, 0)
	if err != nil {
		t.Fatal(err)
	}
	base, err := BaseDelay(WesternEurope, WesternEurope)
	if err != nil {
		t.Fatal(err)
	}
	if d != base {
		t.Fatalf("no-jitter intra delay: want %v, got %v", base, d)
	}
	// 100 KB at 1000 B/ms adds 100 ms.
	d2, err := m.Sample(rng, WesternEurope, WesternEurope, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if d2 != base+100 {
		t.Fatalf("transfer delay: want %v, got %v", base+100, d2)
	}
}

func TestSampleJitterDistribution(t *testing.T) {
	rng := sim.NewRNG(2)
	m := DefaultLatencyModel()
	m.RetransmitProb = 0 // isolate the jitter term
	base, err := BaseDelay(NorthAmerica, EasternAsia)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		d, err := m.Sample(rng, NorthAmerica, EasternAsia, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d < sim.Time(m.MinDelayMillis) {
			t.Fatalf("delay %v below floor", d)
		}
		sum += float64(d)
	}
	mean := sum / n
	// Log-normal multiplier with sigma 0.25 has mean exp(sigma^2/2) ~ 1.032.
	want := float64(base) * math.Exp(0.25*0.25/2)
	if math.Abs(mean-want) > want*0.05 {
		t.Fatalf("jittered mean: want ~%v, got %v", want, mean)
	}
}

func TestSampleInvalidRegion(t *testing.T) {
	rng := sim.NewRNG(3)
	m := DefaultLatencyModel()
	if _, err := m.Sample(rng, Region(0), NorthAmerica, 0); err == nil {
		t.Error("invalid region must error")
	}
}

func TestPlaceNodesApportionment(t *testing.T) {
	got, err := PlaceNodes(100, DefaultNodeShare)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("placed %d nodes", len(got))
	}
	counts := map[Region]int{}
	for _, r := range got {
		counts[r]++
	}
	// Largest-remainder keeps each region within 1 of its exact share.
	for r, share := range DefaultNodeShare {
		exact := share * 100
		if math.Abs(float64(counts[r])-exact) > 1 {
			t.Errorf("%v: want ~%v, got %d", r, exact, counts[r])
		}
	}
}

func TestPlaceNodesDeterministic(t *testing.T) {
	a, err := PlaceNodes(137, DefaultNodeShare)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlaceNodes(137, DefaultNodeShare)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("placement not deterministic")
		}
	}
}

func TestPlaceNodesEdgeCases(t *testing.T) {
	if _, err := PlaceNodes(-1, DefaultNodeShare); err == nil {
		t.Error("negative count must error")
	}
	if _, err := PlaceNodes(10, map[Region]float64{}); err == nil {
		t.Error("empty share must error")
	}
	if _, err := PlaceNodes(10, map[Region]float64{NorthAmerica: -1}); err == nil {
		t.Error("negative share must error")
	}
	got, err := PlaceNodes(0, DefaultNodeShare)
	if err != nil || len(got) != 0 {
		t.Errorf("zero nodes: %v, %v", got, err)
	}
	single, err := PlaceNodes(5, map[Region]float64{EasternAsia: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range single {
		if r != EasternAsia {
			t.Fatal("single-region placement leaked")
		}
	}
}

func TestNTPClockMixture(t *testing.T) {
	rng := sim.NewRNG(4)
	const n = 100000
	within10, within100 := 0, 0
	signSum := 0
	for i := 0; i < n; i++ {
		c := NewClock(rng)
		off := float64(c.Offset())
		if math.Abs(off) < NTPOffsetP90Millis {
			within10++
		}
		if math.Abs(off) < NTPOffsetP99Millis {
			within100++
		}
		if math.Abs(off) >= ntpOffsetMaxMillis+1 {
			t.Fatalf("offset %v beyond tail bound", off)
		}
		if off > 0 {
			signSum++
		} else if off < 0 {
			signSum--
		}
	}
	if frac := float64(within10) / n; math.Abs(frac-0.9) > 0.01 {
		t.Errorf("P(|off|<10ms): want ~0.9, got %v", frac)
	}
	if frac := float64(within100) / n; math.Abs(frac-0.99) > 0.005 {
		t.Errorf("P(|off|<100ms): want ~0.99, got %v", frac)
	}
	if math.Abs(float64(signSum))/n > 0.02 {
		t.Errorf("sign bias: %d", signSum)
	}
}

func TestClockRead(t *testing.T) {
	c := ClockWithOffset(7)
	if c.Read(100) != 107 {
		t.Fatalf("read: %v", c.Read(100))
	}
	if PerfectClock().Read(55) != 55 {
		t.Fatal("perfect clock must not skew")
	}
	if c.Offset() != 7 {
		t.Fatalf("offset: %v", c.Offset())
	}
}
