package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

// busyHandler burns a few events across two opcodes.
type busyHandler struct{ hits int }

func (h *busyHandler) HandleEvent(now sim.Time, a, b uint64) { h.hits++ }

func (h *busyHandler) EventName(op uint64) string {
	if op == 0 {
		return "busy.ping"
	}
	return "busy.pong"
}

func runTracedEngine(t *testing.T, events int, spanCap int) (*Tracer, *sim.Engine) {
	t.Helper()
	e := sim.NewEngine()
	tr := NewTracer(spanCap)
	e.SetProbe(tr)
	h := &busyHandler{}
	for i := 0; i < events; i++ {
		e.ScheduleCall(sim.Time(i), h, uint64(i%2), 0)
	}
	e.Run()
	return tr, e
}

func TestTracerKindStatsUseEventNamer(t *testing.T) {
	tr, _ := runTracedEngine(t, 10, 0)
	if tr.Events() != 10 {
		t.Fatalf("Events = %d, want 10", tr.Events())
	}
	kinds := tr.Kinds()
	names := map[string]uint64{}
	for _, k := range kinds {
		names[k.Name] = k.Count
	}
	if names["busy.ping"] != 5 || names["busy.pong"] != 5 {
		t.Fatalf("kind counts = %v, want busy.ping:5 busy.pong:5", names)
	}
	for _, k := range kinds {
		if k.Count > 0 && k.WallNanos < 0 {
			t.Fatalf("negative wall for %s", k.Name)
		}
	}
}

func TestTracerRingDropsOldest(t *testing.T) {
	tr, _ := runTracedEngine(t, 50, 8)
	if tr.Dropped() != 42 {
		t.Fatalf("Dropped = %d, want 42", tr.Dropped())
	}
	spans := tr.Spans()
	if len(spans) != 8 {
		t.Fatalf("retained %d spans, want 8", len(spans))
	}
	// Oldest-first: sim times of retained spans are the last 8
	// scheduled (42ms..49ms).
	for i, sp := range spans {
		want := sim.Time(42+i) * sim.Millisecond
		if sp.Sim != want {
			t.Fatalf("span %d sim = %v, want %v", i, sp.Sim, want)
		}
	}
	// Kind stats still cover every event.
	var total uint64
	for _, k := range tr.Kinds() {
		total += k.Count
	}
	if total != 50 {
		t.Fatalf("kind counts sum to %d, want 50", total)
	}
}

func TestCollectorDisabledIsInert(t *testing.T) {
	c := &Collector{}
	if s := c.StartRun(1, sim.NewEngine()); s != nil {
		t.Fatal("disabled collector should return nil scope")
	}
	var s *RunScope
	s.RunStarted()
	s.Finish(RunSample{}) // must not panic
	if got := c.Take([]uint64{1}); len(got) != 0 {
		t.Fatalf("Take on disabled collector = %v", got)
	}
}

func TestCollectorAggregatesPerSeed(t *testing.T) {
	c := &Collector{}
	c.EnableTelemetry()
	defer c.Disable()
	for i := 0; i < 2; i++ {
		e := sim.NewEngine()
		s := c.StartRun(77, e)
		if s == nil {
			t.Fatal("enabled collector returned nil scope")
		}
		s.RunStarted()
		e.Schedule(1, func(sim.Time) {})
		e.Schedule(2, func(sim.Time) {})
		e.Run()
		s.Finish(RunSample{Engine: e.Stats(), Messages: 3, Bytes: 100})
	}
	got := c.Take([]uint64{77, 99})
	r, ok := got[77]
	if !ok {
		t.Fatal("seed 77 missing from Take")
	}
	if r.Engines != 2 || r.Events != 4 || r.Messages != 6 || r.Bytes != 200 {
		t.Fatalf("aggregate = %+v", r)
	}
	if r.RunNanos <= 0 {
		t.Fatalf("RunNanos = %d, want > 0", r.RunNanos)
	}
	// Taken once, gone after.
	if again := c.Take([]uint64{77}); len(again) != 0 {
		t.Fatalf("second Take returned %v", again)
	}
}

func TestCollectorTracingAttachesProbe(t *testing.T) {
	c := &Collector{}
	c.EnableTracing(16)
	defer c.Disable()
	e := sim.NewEngine()
	s := c.StartRun(5, e)
	s.RunStarted()
	h := &busyHandler{}
	for i := 0; i < 6; i++ {
		e.ScheduleCall(sim.Time(i), h, 0, 0)
	}
	e.Run()
	s.Finish(RunSample{Engine: e.Stats()})
	r := c.Take([]uint64{5})[5]
	if len(r.Tracers) != 1 {
		t.Fatalf("tracers = %d, want 1", len(r.Tracers))
	}
	if len(r.Kinds) == 0 || r.Kinds[0].Name != "busy.ping" || r.Kinds[0].Count != 6 {
		t.Fatalf("kinds = %+v", r.Kinds)
	}
}

func TestFinishTwiceCountsOnce(t *testing.T) {
	c := &Collector{}
	c.EnableTelemetry()
	defer c.Disable()
	e := sim.NewEngine()
	s := c.StartRun(3, e)
	e.Run()
	s.Finish(RunSample{Engine: e.Stats()})
	s.Finish(RunSample{Engine: e.Stats()})
	if r := c.Take([]uint64{3})[3]; r.Engines != 1 {
		t.Fatalf("Engines = %d, want 1", r.Engines)
	}
}

func TestWriteChromeTraceIsValidJSON(t *testing.T) {
	tr, _ := runTracedEngine(t, 12, 0)
	run := RunTelemetry{Seed: 1, Tracers: []*Tracer{tr}}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []TraceRun{{Label: "spec/0", Run: run}}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v\n%s", err, buf.String())
	}
	// 1 process_name metadata + 12 spans.
	if len(doc.TraceEvents) != 13 {
		t.Fatalf("got %d trace events, want 13", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0]["ph"] != "M" {
		t.Fatalf("first event should be metadata, got %v", doc.TraceEvents[0])
	}
}

func TestWriteTraceJSONL(t *testing.T) {
	tr, _ := runTracedEngine(t, 5, 0)
	run := RunTelemetry{Seed: 1, Tracers: []*Tracer{tr}}
	var buf bytes.Buffer
	if err := WriteTraceJSONL(&buf, []TraceRun{{Label: "spec/0", Run: run}}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d JSONL lines, want 5", len(lines))
	}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if rec["run"] != "spec/0" {
			t.Fatalf("run label = %v", rec["run"])
		}
	}
}

func TestProgressSamples(t *testing.T) {
	tr, _ := runTracedEngine(t, progressEvery*2+10, 64)
	if got := len(tr.Samples()); got != 2 {
		t.Fatalf("got %d progress samples, want 2", got)
	}
	if tr.Samples()[0].Events != progressEvery {
		t.Fatalf("first sample at %d events, want %d", tr.Samples()[0].Events, progressEvery)
	}
}

func TestProcessSnapshotSane(t *testing.T) {
	ps := ProcessSnapshot()
	if ps.GoVersion == "" || ps.NumCPU <= 0 || ps.HeapAllocBytes == 0 {
		t.Fatalf("implausible process snapshot: %+v", ps)
	}
}
