package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a minimal Prometheus text-format (0.0.4) metrics
// registry. Metric families render in registration order; series
// within a family in label order. All instruments are safe for
// concurrent use; registration normally happens once at startup.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

type family struct {
	name   string
	help   string
	typ    string
	series []renderable
}

type renderable interface {
	render(w *bufio.Writer, name string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// Label is one fixed label on a metric series.
type Label struct {
	Key   string
	Value string
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (r *Registry) register(name, help, typ string, s renderable) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
		r.order = append(r.order, name)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	f.series = append(f.series, s)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format 0.0.4.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			s.render(bw, f.name)
		}
	}
	return bw.Flush()
}

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v      atomic.Uint64
	labels string
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{labels: renderLabels(labels)}
	r.register(name, help, "counter", c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) render(w *bufio.Writer, name string) {
	fmt.Fprintf(w, "%s%s %d\n", name, c.labels, c.v.Load())
}

// Gauge is a settable int64 metric.
type Gauge struct {
	v      atomic.Int64
	labels string
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{labels: renderLabels(labels)}
	r.register(name, help, "gauge", g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (use a negative d to subtract).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) render(w *bufio.Writer, name string) {
	fmt.Fprintf(w, "%s%s %d\n", name, g.labels, g.v.Load())
}

// funcGauge evaluates a callback at scrape time.
type funcGauge struct {
	fn     func() float64
	labels string
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "gauge", &funcGauge{fn: fn, labels: renderLabels(labels)})
}

func (g *funcGauge) render(w *bufio.Writer, name string) {
	fmt.Fprintf(w, "%s%s %s\n", name, g.labels, formatFloat(g.fn()))
}

// DefaultLatencyBuckets spans 10µs to 10s — wide enough for both mem
// and FS store operations.
var DefaultLatencyBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}

// Histogram is a cumulative-bucket histogram of float64 observations
// (seconds, for latency series).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomicFloat
	total  atomic.Uint64
	labels []Label
}

// Histogram registers and returns a histogram series with the given
// upper bounds (nil means DefaultLatencyBuckets). Bounds must be
// sorted ascending.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
		labels: labels,
	}
	r.register(name, help, "histogram", h)
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.add(v)
	h.total.Add(1)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count reads the total observation count.
func (h *Histogram) Count() uint64 { return h.total.Load() }

func (h *Histogram) render(w *bufio.Writer, name string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		labels := append(append([]Label(nil), h.labels...), Label{"le", formatFloat(b)})
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(labels), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	labels := append(append([]Label(nil), h.labels...), Label{"le", "+Inf"})
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(labels), cum)
	base := renderLabels(h.labels)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, base, formatFloat(h.sum.load()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, base, cum)
}

// atomicFloat accumulates float64 via CAS on the bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
