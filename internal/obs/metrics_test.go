package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusGolden locks the exact exposition text: HELP and
// TYPE headers, registration order, label rendering, histogram
// bucket/sum/count triads.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("repro_runs_started_total", "Runs started.")
	c.Add(3)
	g := r.Gauge("repro_queue_depth", "Queued campaigns.")
	g.Set(2)
	r.GaugeFunc("repro_subscribers", "SSE subscribers.", func() float64 { return 4 })
	h := r.Histogram("repro_store_seconds", "Store op latency.", []float64{0.01, 0.1}, Label{"op", "put"})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP repro_runs_started_total Runs started.
# TYPE repro_runs_started_total counter
repro_runs_started_total 3
# HELP repro_queue_depth Queued campaigns.
# TYPE repro_queue_depth gauge
repro_queue_depth 2
# HELP repro_subscribers SSE subscribers.
# TYPE repro_subscribers gauge
repro_subscribers 4
# HELP repro_store_seconds Store op latency.
# TYPE repro_store_seconds histogram
repro_store_seconds_bucket{op="put",le="0.01"} 1
repro_store_seconds_bucket{op="put",le="0.1"} 2
repro_store_seconds_bucket{op="put",le="+Inf"} 3
repro_store_seconds_sum{op="put"} 5.055
repro_store_seconds_count{op="put"} 3
`
	if got := sb.String(); got != want {
		t.Fatalf("scrape mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestCounterMonotonic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "")
	last := uint64(0)
	for i := 0; i < 100; i++ {
		c.Inc()
		if v := c.Value(); v <= last {
			t.Fatalf("counter went backwards: %d after %d", v, last)
		} else {
			last = v
		}
	}
}

func TestGaugeAddDec(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "")
	g.Add(10)
	g.Dec()
	g.Inc()
	if g.Value() != 10 {
		t.Fatalf("gauge = %d, want 10", g.Value())
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", nil)
	h.ObserveDuration(50 * time.Microsecond) // bucket 1e-4
	h.ObserveDuration(2 * time.Second)       // bucket 10
	h.Observe(100)                           // +Inf
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		`h_seconds_bucket{le="0.0001"} 1`,
		`h_seconds_bucket{le="10"} 2`,
		`h_seconds_bucket{le="+Inf"} 3`,
		`h_seconds_count 3`,
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("scrape missing %q:\n%s", line, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("esc", "", Label{"path", `a"b\c`})
	g.Set(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc{path="a\"b\\c"} 1`) {
		t.Fatalf("bad escaping:\n%s", sb.String())
	}
}

func TestSameNameDifferentTypePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type conflict")
		}
	}()
	r.Gauge("dup", "")
}

// TestInstrumentsUnderRace exercises concurrent updates + scrapes so
// `go test -race` can catch unsynchronized access.
func TestInstrumentsUnderRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / 1000)
			}
		}()
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sb strings.Builder
			for i := 0; i < 50; i++ {
				sb.Reset()
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 2000 {
		t.Fatalf("counter = %d, want 2000", c.Value())
	}
	if h.Count() != 2000 {
		t.Fatalf("histogram count = %d, want 2000", h.Count())
	}
}
