// Package obs is the reproduction's determinism-safe observability
// layer: engine tracing, run telemetry and service metrics, none of
// which consume simulation RNG or alter a seeded run's artifacts.
//
// Three surfaces share the package:
//
//   - Tracer: a ring-buffered sim.Probe recording per-event-kind
//     counts, dispatch wall-nanos and sim-vs-wall progress, exportable
//     as a Chrome trace or JSONL (`ethrepro -trace out.json`).
//   - Collector: a process-wide sink the simulation core reports
//     per-run engine statistics into; cmd/ethrepro and ethserve drain
//     it into each run directory's telemetry.json.
//   - Registry/Counter/Gauge/Histogram: a dependency-free Prometheus
//     text-format metrics kit backing ethserve's /metrics endpoint.
//
// Everything is disabled by default: an unconfigured process pays one
// atomic load per campaign and one nil check per simulated event. The
// determinism contract — tracing on vs off yields byte-identical
// artifacts and equal Merkle roots — is enforced by the golden
// harness in internal/experiments (see docs/OBSERVABILITY.md).
package obs

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// RunSample is what the simulation core reports when one engine run
// (a campaign or chain-only run) finishes.
type RunSample struct {
	// Engine is the engine's always-on counter snapshot.
	Engine sim.EngineStats
	// Messages/Bytes/Dropped are transport totals (zero for
	// chain-only runs, which have no overlay).
	Messages uint64
	Bytes    uint64
	Dropped  uint64
	// Nodes is the overlay's node count (zero for chain-only runs) —
	// the denominator for the bytes-per-node memory figure.
	Nodes int
	// Shard describes the conductor's window loop when the run executed
	// sharded (nil for single-engine runs). Engine above is then the
	// cross-lane aggregate; Shard keeps the per-lane breakdown.
	Shard *ShardSample
}

// ShardSample is one sharded run's conductor activity: window-loop
// counters plus per-lane engine snapshots. Every field is a pure
// function of the simulation — worker count appears only as the
// configured knob, never as a source of variation.
type ShardSample struct {
	// Workers is the configured phase-B worker count.
	Workers int
	// Windows/GlobalWindows/LaneWindows/Stalled/Merged mirror
	// sim.ConductorStats.
	Windows       uint64
	GlobalWindows uint64
	LaneWindows   uint64
	Stalled       uint64
	Merged        uint64
	// Lanes are the per-lane engine snapshots, global lane first, then
	// region lanes in region order.
	Lanes []sim.EngineStats
	// Pairs is the conductor's per-lane-pair window-width histogram
	// (sim.ConductorStats.Pairs): Pairs[src][dst] aggregates the
	// phase-B windows in which lane src was the binding lookahead
	// constraint on lane dst. Nil when the conductor recorded none.
	Pairs [][]sim.PairWindowStats
}

// PairWindowTelemetry is one (bounding lane → bounded lane) pair's
// phase-B window aggregate across the folded sharded runs. Lane
// indices follow the conductor layout: 0 is the global lane, then
// region lanes in region order.
type PairWindowTelemetry struct {
	Src      int    `json:"src"`
	Dst      int    `json:"dst"`
	Count    uint64 `json:"count"`
	Stalled  uint64 `json:"stalled,omitempty"`
	WidthSum uint64 `json:"width_ms_sum,omitempty"`
	// Widths is the log2 window-width histogram: bucket 0 counts
	// stalls, bucket k widths in [2^(k-1), 2^k) ms.
	Widths []uint64 `json:"width_hist,omitempty"`
}

// MeanWidth is the average runnable window width in milliseconds over
// the pair's non-stalled windows.
func (p PairWindowTelemetry) MeanWidth() float64 {
	run := p.Count - p.Stalled
	if run == 0 {
		return 0
	}
	return float64(p.WidthSum) / float64(run)
}

// RunTelemetry aggregates every engine run reporting under one seed —
// the runner derives a unique seed per (spec, repeat), so this is the
// per-run record telemetry.json is built from. Specs that execute
// several campaigns per run (healthy-vs-faulted comparisons, sweeps)
// fold them all into one record.
type RunTelemetry struct {
	Seed uint64
	// Engines counts the engine runs folded in.
	Engines int
	// Events / Scheduled sum the engines' dispatch and enqueue
	// counters.
	Events    uint64
	Scheduled uint64
	// PeakQueue is the largest queue-depth high-water mark across the
	// engines; Slots the largest slot-arena footprint.
	PeakQueue int
	Slots     int
	// SimMS sums the engines' final virtual clocks.
	SimMS int64
	// BuildNanos sums wall time from campaign construction to engine
	// start; RunNanos from engine start to completion.
	BuildNanos int64
	RunNanos   int64
	// Messages/Bytes/Dropped sum the transport counters.
	Messages uint64
	Bytes    uint64
	Dropped  uint64
	// PeakHeapBytes is the largest live-heap reading taken as each
	// engine finished (the campaign's state is fully resident then);
	// Nodes the largest overlay size among them. Process-wide heap, so
	// concurrent campaigns inflate each other's reading — documented
	// in docs/PERFORMANCE.md.
	PeakHeapBytes uint64
	Nodes         int
	// Sharded-run aggregates, all zero when every folded run was
	// single-engine: conductor counters summed across runs, the largest
	// configured worker count, and per-lane engine stats merged by lane
	// position (global lane first).
	ShardWorkers int
	ShardWindows uint64
	ShardStalled uint64
	ShardMerged  uint64
	Lanes        []LaneTelemetry
	// PairWindows is the conductor's per-lane-pair window-width
	// histogram summed across runs, sorted by (src, dst), zero-count
	// pairs omitted.
	PairWindows []PairWindowTelemetry
	// Kinds is the per-event-kind dispatch profile, merged across
	// engines by kind name, sorted by descending wall time. Empty
	// unless tracing was enabled.
	Kinds []KindStats
	// Tracers holds each engine's full tracer (ring spans and progress
	// samples) when tracing was enabled, in completion order.
	Tracers []*Tracer
}

// LaneTelemetry is one conductor lane's contribution across the folded
// sharded runs: dispatch/enqueue sums, summed final clocks, and the
// largest queue-depth high-water mark.
type LaneTelemetry struct {
	Events    uint64 `json:"events"`
	Scheduled uint64 `json:"scheduled"`
	SimMS     int64  `json:"sim_ms"`
	PeakQueue int    `json:"peak_queue"`
}

// EventsPerSec is the run's dispatch throughput over its engine-run
// wall time.
func (r *RunTelemetry) EventsPerSec() float64 {
	if r.RunNanos <= 0 {
		return 0
	}
	return float64(r.Events) / (float64(r.RunNanos) / 1e9)
}

// BytesPerNode is the peak-heap cost per overlay node, the telemetry
// counterpart of the committed bytes-per-node ceiling test.
func (r *RunTelemetry) BytesPerNode() float64 {
	if r.Nodes <= 0 {
		return 0
	}
	return float64(r.PeakHeapBytes) / float64(r.Nodes)
}

// Collector accumulates RunTelemetry per seed. The zero value is
// disabled; EnableTelemetry (cheap, counters only) or EnableTracing
// (adds a ring-buffered Tracer probe per engine) switch it on.
// Collectors are safe for concurrent use — campaign workers report
// from many goroutines.
type Collector struct {
	telemetry atomic.Bool
	tracing   atomic.Bool

	mu      sync.Mutex
	spanCap int
	runs    map[uint64]*RunTelemetry
}

// Default is the process collector the simulation core reports into.
var Default = &Collector{}

// EnableTelemetry turns on per-run statistics collection.
func (c *Collector) EnableTelemetry() {
	c.telemetry.Store(true)
}

// EnableTracing turns on telemetry plus engine tracing: every engine
// started while tracing is enabled gets a Tracer probe holding up to
// spanCap ring spans (<= 0 means DefaultSpanCap).
func (c *Collector) EnableTracing(spanCap int) {
	if spanCap <= 0 {
		spanCap = DefaultSpanCap
	}
	c.mu.Lock()
	c.spanCap = spanCap
	c.mu.Unlock()
	c.telemetry.Store(true)
	c.tracing.Store(true)
}

// Disable turns collection off and drops any unclaimed telemetry
// (tests use it to restore the pristine default).
func (c *Collector) Disable() {
	c.telemetry.Store(false)
	c.tracing.Store(false)
	c.mu.Lock()
	c.runs = nil
	c.mu.Unlock()
}

// Enabled reports whether any collection is active.
func (c *Collector) Enabled() bool { return c.telemetry.Load() }

// Tracing reports whether engine tracing is active.
func (c *Collector) Tracing() bool { return c.tracing.Load() }

// RunScope tracks one engine run from construction to completion. A
// nil scope (collection disabled) is valid and inert, so callers
// never branch.
type RunScope struct {
	c        *Collector
	seed     uint64
	created  time.Time
	runStart time.Time
	tracer   *Tracer
	done     bool
}

// StartRun opens a scope for one engine run under the given seed,
// attaching a tracer probe to the engine when tracing is enabled.
// Returns nil when collection is disabled.
func (c *Collector) StartRun(seed uint64, engine *sim.Engine) *RunScope {
	if c == nil || !c.telemetry.Load() {
		return nil
	}
	s := &RunScope{c: c, seed: seed, created: time.Now()}
	s.runStart = s.created
	if c.tracing.Load() && engine != nil {
		c.mu.Lock()
		cap := c.spanCap
		c.mu.Unlock()
		s.tracer = NewTracer(cap)
		engine.SetProbe(s.tracer)
	}
	return s
}

// RunStarted marks the boundary between campaign construction and
// engine execution (the build/run wall-time split).
func (s *RunScope) RunStarted() {
	if s == nil {
		return
	}
	s.runStart = time.Now()
}

// Finish folds the run into the collector. Calling Finish twice is a
// no-op; a scope that is never finished simply reports nothing.
func (s *RunScope) Finish(sample RunSample) {
	if s == nil || s.done {
		return
	}
	s.done = true
	now := time.Now()
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.telemetry.Load() {
		return
	}
	if c.runs == nil {
		c.runs = map[uint64]*RunTelemetry{}
	}
	r := c.runs[s.seed]
	if r == nil {
		r = &RunTelemetry{Seed: s.seed}
		c.runs[s.seed] = r
	}
	r.Engines++
	r.Events += sample.Engine.Processed
	r.Scheduled += sample.Engine.Scheduled
	r.PeakQueue = max(r.PeakQueue, sample.Engine.MaxPending)
	r.Slots = max(r.Slots, sample.Engine.Slots)
	r.SimMS += int64(sample.Engine.Now)
	r.BuildNanos += s.runStart.Sub(s.created).Nanoseconds()
	r.RunNanos += now.Sub(s.runStart).Nanoseconds()
	r.Messages += sample.Messages
	r.Bytes += sample.Bytes
	r.Dropped += sample.Dropped
	// Heap sampling happens only on the telemetry path (scope is nil
	// when collection is off), so untraced runs never pay for
	// ReadMemStats.
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	r.PeakHeapBytes = max(r.PeakHeapBytes, m.HeapAlloc)
	r.Nodes = max(r.Nodes, sample.Nodes)
	if sh := sample.Shard; sh != nil {
		r.ShardWorkers = max(r.ShardWorkers, sh.Workers)
		r.ShardWindows += sh.Windows
		r.ShardStalled += sh.Stalled
		r.ShardMerged += sh.Merged
		for i, ls := range sh.Lanes {
			if i >= len(r.Lanes) {
				r.Lanes = append(r.Lanes, LaneTelemetry{})
			}
			r.Lanes[i].Events += ls.Processed
			r.Lanes[i].Scheduled += ls.Scheduled
			r.Lanes[i].SimMS += int64(ls.Now)
			r.Lanes[i].PeakQueue = max(r.Lanes[i].PeakQueue, ls.MaxPending)
		}
		for src := range sh.Pairs {
			for dst := range sh.Pairs[src] {
				p := sh.Pairs[src][dst]
				if p.Count == 0 {
					continue
				}
				r.foldPair(src, dst, p)
			}
		}
	}
	if s.tracer != nil {
		r.Kinds = mergeKinds(r.Kinds, s.tracer.Kinds())
		r.Tracers = append(r.Tracers, s.tracer)
	}
}

// foldPair sums one conductor pair-window record into the run's
// PairWindows list, keeping the list sorted by (src, dst). The pair
// count is tiny (at most lanes²), so linear insertion is fine.
func (r *RunTelemetry) foldPair(src, dst int, p sim.PairWindowStats) {
	at := len(r.PairWindows)
	for i := range r.PairWindows {
		e := &r.PairWindows[i]
		if e.Src == src && e.Dst == dst {
			e.Count += p.Count
			e.Stalled += p.Stalled
			e.WidthSum += p.WidthSum
			for k, n := range p.Widths {
				e.Widths[k] += n
			}
			return
		}
		if e.Src > src || (e.Src == src && e.Dst > dst) {
			at = i
			break
		}
	}
	entry := PairWindowTelemetry{
		Src: src, Dst: dst,
		Count: p.Count, Stalled: p.Stalled, WidthSum: p.WidthSum,
		Widths: make([]uint64, sim.WindowWidthBuckets),
	}
	copy(entry.Widths, p.Widths[:])
	r.PairWindows = append(r.PairWindows, PairWindowTelemetry{})
	copy(r.PairWindows[at+1:], r.PairWindows[at:])
	r.PairWindows[at] = entry
}

// Take removes and returns the telemetry for the given seeds — the
// campaign front ends drain exactly their own runs, so concurrent
// campaigns sharing the process collector do not observe each other.
func (c *Collector) Take(seeds []uint64) map[uint64]RunTelemetry {
	out := map[uint64]RunTelemetry{}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, seed := range seeds {
		if r, ok := c.runs[seed]; ok {
			out[seed] = *r
			delete(c.runs, seed)
		}
	}
	return out
}

// mergeKinds folds b into a by kind name, keeping descending-wall
// order.
func mergeKinds(a, b []KindStats) []KindStats {
	byName := make(map[string]int, len(a))
	for i, k := range a {
		byName[k.Name] = i
	}
	for _, k := range b {
		if i, ok := byName[k.Name]; ok {
			a[i].Count += k.Count
			a[i].WallNanos += k.WallNanos
			a[i].MaxWallNanos = max(a[i].MaxWallNanos, k.MaxWallNanos)
		} else {
			byName[k.Name] = len(a)
			a = append(a, k)
		}
	}
	sort.SliceStable(a, func(i, j int) bool { return a[i].WallNanos > a[j].WallNanos })
	return a
}

// ProcessStats is a point-in-time snapshot of the Go runtime — the
// GC/allocation section of telemetry.json. Process-wide by nature:
// when several campaigns share one server process, they share these
// numbers too.
type ProcessStats struct {
	GoVersion      string  `json:"go_version"`
	NumCPU         int     `json:"num_cpu"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	NumGoroutine   int     `json:"num_goroutine"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	TotalAllocMB   float64 `json:"total_alloc_mb"`
	SysBytes       uint64  `json:"sys_bytes"`
	NumGC          uint32  `json:"num_gc"`
	GCPauseTotalMS float64 `json:"gc_pause_total_ms"`
}

// ProcessSnapshot reads the runtime counters.
func ProcessSnapshot() ProcessStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return ProcessStats{
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumGoroutine:   runtime.NumGoroutine(),
		HeapAllocBytes: m.HeapAlloc,
		TotalAllocMB:   float64(m.TotalAlloc) / (1 << 20),
		SysBytes:       m.Sys,
		NumGC:          m.NumGC,
		GCPauseTotalMS: float64(m.PauseTotalNs) / 1e6,
	}
}
