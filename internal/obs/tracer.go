package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/sim"
)

// DefaultSpanCap bounds the tracer ring buffer: 64k spans at 32 bytes
// each is ~2 MiB per engine, enough to hold the tail of any campaign
// without letting a 100k-node run eat the heap.
const DefaultSpanCap = 1 << 16

// progressEvery is the dispatch interval between sim-vs-wall progress
// samples.
const progressEvery = 1 << 12

// maxOpBucket caps per-opcode stat fan-out for a single handler type;
// opcodes at or beyond the cap share one overflow bucket.
const maxOpBucket = 16

// KindStats profiles one event kind — a (class, handler type, opcode)
// combination such as "p2p.deliver" or "timer".
type KindStats struct {
	Name         string `json:"name"`
	Count        uint64 `json:"count"`
	WallNanos    int64  `json:"wall_nanos"`
	MaxWallNanos int64  `json:"max_wall_nanos"`
}

// Span is one dispatched event in the tracer ring: wall-clock offset
// and duration in nanoseconds since the tracer was created, plus the
// engine's virtual clock and an index into the kind table.
type Span struct {
	Start int64
	Dur   int64
	Sim   sim.Time
	Kind  uint32
}

// ProgressSample correlates dispatch count, virtual time and wall
// time — the "is sim time outpacing wall time" curve.
type ProgressSample struct {
	Events    uint64   `json:"events"`
	Sim       sim.Time `json:"sim_ms"`
	WallNanos int64    `json:"wall_nanos"`
}

type kindKey struct {
	class sim.EventClass
	h     sim.Handler
	op    uint64
}

// Tracer is a sim.Probe that records every dispatch into a bounded
// ring of spans and an unbounded (but tiny — one entry per event
// kind) stat table. It allocates only when a new kind first appears
// or the ring grows toward its cap, reads no RNG, and is not
// goroutine-safe — one tracer per engine, like the engine itself.
type Tracer struct {
	start   time.Time
	kinds   map[kindKey]uint32
	stats   []KindStats
	spans   []Span
	head    int
	total   uint64
	dropped uint64
	cap     int
	samples []ProgressSample
}

// NewTracer returns a tracer holding at most spanCap ring spans
// (<= 0 means DefaultSpanCap).
func NewTracer(spanCap int) *Tracer {
	if spanCap <= 0 {
		spanCap = DefaultSpanCap
	}
	return &Tracer{
		start: time.Now(),
		kinds: make(map[kindKey]uint32, 16),
		cap:   spanCap,
	}
}

// Dispatch implements sim.Probe.
func (t *Tracer) Dispatch(now sim.Time, class sim.EventClass, h sim.Handler, op uint64, wall time.Duration) {
	key := kindKey{class: class}
	if class == sim.EventCall {
		key.h = h
		key.op = min(op, maxOpBucket)
	}
	idx, ok := t.kinds[key]
	if !ok {
		idx = uint32(len(t.stats))
		t.kinds[key] = idx
		t.stats = append(t.stats, KindStats{Name: kindName(class, h, op)})
	}
	st := &t.stats[idx]
	st.Count++
	st.WallNanos += wall.Nanoseconds()
	st.MaxWallNanos = max(st.MaxWallNanos, wall.Nanoseconds())

	end := time.Since(t.start).Nanoseconds()
	span := Span{Start: end - wall.Nanoseconds(), Dur: wall.Nanoseconds(), Sim: now, Kind: idx}
	if len(t.spans) < t.cap {
		t.spans = append(t.spans, span)
	} else {
		// Ring full: overwrite the oldest span.
		t.spans[t.head] = span
		t.head++
		if t.head == t.cap {
			t.head = 0
		}
		t.dropped++
	}

	t.total++
	if t.total%progressEvery == 0 {
		t.samples = append(t.samples, ProgressSample{Events: t.total, Sim: now, WallNanos: end})
	}
}

// kindName labels an event kind: timers and bare funcs by class,
// calls by the handler's own EventName when it implements
// sim.EventNamer, else by dynamic type and opcode.
func kindName(class sim.EventClass, h sim.Handler, op uint64) string {
	if class != sim.EventCall {
		return class.String()
	}
	if n, ok := h.(sim.EventNamer); ok {
		return n.EventName(op)
	}
	if op >= maxOpBucket {
		return fmt.Sprintf("%T[op>=%d]", h, maxOpBucket)
	}
	return fmt.Sprintf("%T[%d]", h, op)
}

// Events is the total dispatch count the tracer observed.
func (t *Tracer) Events() uint64 { return t.total }

// Dropped counts spans evicted from the full ring (the kind stats
// still include them).
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Kinds returns a copy of the per-kind profile sorted by descending
// wall time.
func (t *Tracer) Kinds() []KindStats {
	out := make([]KindStats, len(t.stats))
	copy(out, t.stats)
	sort.SliceStable(out, func(i, j int) bool { return out[i].WallNanos > out[j].WallNanos })
	return out
}

// Samples returns the recorded progress samples.
func (t *Tracer) Samples() []ProgressSample { return t.samples }

// Spans yields the retained spans oldest-first (the ring unrolled).
func (t *Tracer) Spans() []Span {
	if len(t.spans) < t.cap || t.head == 0 {
		return t.spans
	}
	out := make([]Span, 0, len(t.spans))
	out = append(out, t.spans[t.head:]...)
	out = append(out, t.spans[:t.head]...)
	return out
}

// TraceRun pairs a run's telemetry with a display label for export.
type TraceRun struct {
	Label string
	Run   RunTelemetry
}

// chromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing, Perfetto). Timestamps and durations are in
// microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts,omitempty"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
	Cat  string         `json:"cat,omitempty"`
}

// WriteChromeTrace writes the runs' span rings as a Chrome
// trace-event JSON object: one trace process per run (named by its
// label), one thread per engine within the run.
func WriteChromeTrace(w io.Writer, runs []TraceRun) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		buf, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(buf)
		return err
	}
	for pid, tr := range runs {
		if err := emit(chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": tr.Label},
		}); err != nil {
			return err
		}
		for tid, tracer := range tr.Run.Tracers {
			for _, sp := range tracer.Spans() {
				if err := emit(chromeEvent{
					Name: tracer.stats[sp.Kind].Name,
					Ph:   "X",
					Pid:  pid,
					Tid:  tid,
					Ts:   float64(sp.Start) / 1e3,
					Dur:  float64(sp.Dur) / 1e3,
					Cat:  "sim",
					Args: map[string]any{"sim_ms": int64(sp.Sim)},
				}); err != nil {
					return err
				}
			}
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// jsonlSpan is the flat per-span record of the JSONL trace export.
type jsonlSpan struct {
	Run       string   `json:"run"`
	Engine    int      `json:"engine"`
	Kind      string   `json:"kind"`
	StartNano int64    `json:"start_nano"`
	DurNano   int64    `json:"dur_nano"`
	SimMS     sim.Time `json:"sim_ms"`
}

// WriteTraceJSONL writes the runs' spans as newline-delimited JSON,
// one record per span — friendlier to jq/DuckDB than the Chrome
// format.
func WriteTraceJSONL(w io.Writer, runs []TraceRun) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	for _, tr := range runs {
		for tid, tracer := range tr.Run.Tracers {
			for _, sp := range tracer.Spans() {
				rec := jsonlSpan{
					Run:       tr.Label,
					Engine:    tid,
					Kind:      tracer.stats[sp.Kind].Name,
					StartNano: sp.Start,
					DurNano:   sp.Dur,
					SimMS:     sp.Sim,
				}
				if err := enc.Encode(rec); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}
