package mining

import (
	"errors"
	"fmt"

	"repro/internal/chain"
	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/types"
)

// BlockEvent is delivered to the simulation's block hook for every
// produced block version.
type BlockEvent struct {
	// Now is the production time.
	Now sim.Time
	// Block is the produced block (one event per version for
	// one-miner forks).
	Block *types.Block
	// Pool is the producing pool's name.
	Pool string
	// Gateway is the region whose gateway injects this block into the
	// network.
	Gateway geo.Region
	// Version is 0 for the primary block and >0 for extra one-miner
	// versions at the same height.
	Version int
	// ExtendedHead reports whether the block extended the global
	// heaviest chain when produced (false for fork blocks).
	ExtendedHead bool
}

// Config parameterizes a mining simulation.
type Config struct {
	// Pools is the pool registry; shares must sum to ~1.
	Pools []PoolConfig
	// InterBlockMean is the nominal network-wide mean block interval
	// (post-Constantinople mainnet: 13.3 s). Together with
	// InitialDifficulty it fixes the network hashrate
	// (InitialDifficulty/InterBlockMean difficulty units per ms); the
	// actual interval then varies with difficulty like the real
	// system, equilibrating back at InterBlockMean under the default
	// difficulty parameters.
	InterBlockMean sim.Time
	// InitialDifficulty seeds the genesis difficulty. Chosen so that
	// cumulative difficulty stays far from uint64 range even over
	// whole-chain (7.7M-block) horizons.
	InitialDifficulty uint64
	// BlockLimit stops production after this many block heights have
	// been attempted. 0 means no limit (the caller must Stop).
	BlockLimit uint64
	// Difficulty is the difficulty schedule.
	Difficulty chain.DifficultyParams
	// Uncles is the uncle validity rule set (flip
	// RestrictOneMinerUncles for the §V Lesson-1 ablation).
	Uncles chain.UncleRules
	// GatewayDelay is the base one-way delay between pool gateways
	// before the per-pool switch delay is added.
	GatewayDelay sim.Time
	// GasLimit is the block gas limit (mainnet 2019: 8M).
	GasLimit uint64
	// TxPool, when set, supplies real transactions for block bodies.
	// When nil, non-empty blocks carry a single synthetic filler
	// transaction so empty-block statistics remain meaningful at
	// 200k-block scale without a transaction workload.
	TxPool *chain.TxPool
	// VisibilityFilter, when set, gates inter-pool head visibility: it
	// is called when a deferred visibility update is about to apply,
	// with the producing pool's home gateway region and the observing
	// pool's, and returns how much longer the update must wait (0 =
	// apply now). Fault campaigns use it to model gateway-level
	// partitions — pools on opposite sides keep mining their own heads
	// until the cut heals, which is what creates partition forks. The
	// filter must be deterministic; it is consulted on the hot path
	// only when set, so healthy runs are unchanged.
	VisibilityFilter func(now sim.Time, from, to geo.Region) sim.Time
	// OnBlock, when set, receives every produced block version.
	OnBlock func(BlockEvent)
	// OnDone, when set, fires once when BlockLimit heights have been
	// produced (never fires for unlimited runs).
	OnDone func(now sim.Time)
}

// DefaultConfig returns the paper-calibrated configuration.
func DefaultConfig() Config {
	return Config{
		Pools:             PaperPools(),
		InterBlockMean:    13300 * sim.Millisecond,
		InitialDifficulty: 300_000_000_000,
		Difficulty:        chain.DefaultDifficultyParams(),
		Uncles:            chain.DefaultUncleRules(),
		GatewayDelay:      150 * sim.Millisecond,
		GasLimit:          8_000_000,
	}
}

// poolState tracks one pool's runtime view.
type poolState struct {
	cfg     PoolConfig
	headTD  uint64
	head    types.Hash
	address types.Address
	// home is the pool's control-plane region (its first-listed
	// gateway region), the endpoint the visibility filter sees. Chosen
	// statically so partition support adds no RNG draws to the mining
	// stream.
	home geo.Region
}

// Simulator produces blocks onto a shared block tree according to the
// Poisson race + per-pool visibility model described in the package
// comment.
type Simulator struct {
	engine  *sim.Engine
	rng     *sim.RNG
	cfg     Config
	tree    *chain.BlockTree
	tracker *chain.UncleTracker
	pools   []*poolState
	// sampler picks the winning pool per race, precomputed from the
	// hashrate shares (one uniform draw + binary search per block
	// instead of an O(pools) scan).
	sampler *sim.Weighted
	// raceTimer drives the Poisson race: one pooled timer handle,
	// rescheduled per win and cancelled by Stop — no tombstone events.
	raceTimer *sim.Timer

	// visSlab holds pending per-pool head-visibility updates for the
	// typed event path; entries are refcounted across the pools that
	// share one block's update and recycled through visFree.
	visSlab []visUpdate
	visFree []int32

	produced   uint64
	fillerSeq  uint64
	stopped    bool
	doneFired  bool
	multiTuple map[types.Hash]int // primary hash -> total versions
	withheld   map[string]*withholdState
}

// visUpdate is one block's deferred visibility: pools that see the
// block after gateway + switch delay adopt it as head if it is still
// the heaviest they know. from records the producing pool's home
// region for the partition filter.
type visUpdate struct {
	td   uint64
	head types.Hash
	refs int
	from geo.Region
}

// ErrNoPools indicates an empty registry.
var ErrNoPools = errors.New("mining: no pools configured")

// NewSimulator validates the configuration and prepares a simulator
// rooted at a fresh genesis.
func NewSimulator(engine *sim.Engine, rng *sim.RNG, cfg Config) (*Simulator, error) {
	if engine == nil || rng == nil {
		return nil, errors.New("mining: nil engine or rng")
	}
	if err := ValidatePools(cfg.Pools); err != nil {
		return nil, err
	}
	if cfg.InterBlockMean <= 0 {
		return nil, fmt.Errorf("mining: inter-block mean %v <= 0", cfg.InterBlockMean)
	}
	if cfg.GasLimit == 0 {
		return nil, errors.New("mining: zero gas limit")
	}
	if cfg.InitialDifficulty == 0 {
		cfg.InitialDifficulty = cfg.Difficulty.MinimumDifficulty
	}
	genesis := chain.NewGenesis(cfg.InitialDifficulty, cfg.GasLimit)
	tree := chain.NewBlockTree(genesis)
	s := &Simulator{
		engine:     engine,
		rng:        rng,
		cfg:        cfg,
		tree:       tree,
		tracker:    chain.NewUncleTracker(),
		multiTuple: make(map[types.Hash]int),
		withheld:   make(map[string]*withholdState),
	}
	weights := make([]float64, 0, len(cfg.Pools))
	for _, pc := range cfg.Pools {
		s.pools = append(s.pools, &poolState{
			cfg:     pc,
			head:    genesis.Hash(),
			headTD:  genesis.Header.Difficulty,
			address: pc.Address(),
			home:    pc.GatewayRegions[0],
		})
		weights = append(weights, pc.HashrateShare)
	}
	sampler, err := sim.NewWeighted(weights)
	if err != nil {
		// ValidatePools guarantees shares sum to ~1.
		return nil, fmt.Errorf("mining: pool shares: %w", err)
	}
	s.sampler = sampler
	s.raceTimer = engine.NewTimer(s.raceWin)
	return s, nil
}

// Tree exposes the block tree (shared, read by analysis after the
// run).
func (s *Simulator) Tree() *chain.BlockTree { return s.tree }

// NextInjectionAt returns the earliest simulated time at which the
// simulator might next publish a block into the overlay, or sim.Never
// when no race is pending (stopped, or the block limit was reached).
// Every injection — primary blocks, extra same-miner versions and
// withheld-chain releases — happens synchronously inside a race-win
// event, so the pending race timer's deadline bounds them all. The
// remaining typed mining events are per-pool head-visibility updates,
// which touch pool state only; sharded campaigns use this as the
// conductor's GlobalHorizon so those updates never pin region-lane
// deadlines. Reads the timer only — no RNG draws, no state changes.
func (s *Simulator) NextInjectionAt() sim.Time {
	if at, ok := s.raceTimer.When(); ok {
		return at
	}
	return sim.Never
}

// Produced returns the number of block heights attempted so far.
func (s *Simulator) Produced() uint64 { return s.produced }

// MultiVersionTuples returns, for each primary block that received
// extra same-miner versions, the total version count (2 = pair,
// 3 = triple, ...).
func (s *Simulator) MultiVersionTuples() map[types.Hash]int {
	out := make(map[types.Hash]int, len(s.multiTuple))
	for k, v := range s.multiTuple {
		out[k] = v
	}
	return out
}

// Start schedules the first block win. Production continues until
// BlockLimit heights or Stop.
func (s *Simulator) Start() {
	s.stopped = false
	s.scheduleNext()
}

// Stop halts further block production: the pending race win is
// cancelled outright instead of firing as a dead event.
func (s *Simulator) Stop() {
	s.stopped = true
	s.raceTimer.Stop()
}

func (s *Simulator) scheduleNext() {
	if s.stopped {
		return
	}
	if s.cfg.BlockLimit > 0 && s.produced >= s.cfg.BlockLimit {
		s.fireDone(s.engine.Now())
		return
	}
	// The time to the next win scales with the chain-head difficulty
	// over the fixed network hashrate, closing the control loop the
	// real difficulty schedule relies on.
	headDifficulty := s.tree.Head().Header.Difficulty
	mean := sim.Time(float64(headDifficulty) / float64(s.cfg.InitialDifficulty) * float64(s.cfg.InterBlockMean))
	if mean < 1 {
		mean = 1
	}
	s.raceTimer.Reset(s.rng.ExpTime(mean))
}

// raceWin is the race timer's callback: execute one win, schedule the
// next.
func (s *Simulator) raceWin(now sim.Time) {
	if s.stopped || (s.cfg.BlockLimit > 0 && s.produced >= s.cfg.BlockLimit) {
		return
	}
	s.mineOne(now)
	s.scheduleNext()
}

func (s *Simulator) fireDone(now sim.Time) {
	if s.doneFired || s.cfg.OnDone == nil {
		s.doneFired = true
		return
	}
	s.doneFired = true
	s.cfg.OnDone(now)
}

// mineOne executes one win of the mining race.
func (s *Simulator) mineOne(now sim.Time) {
	s.produced++
	pool := s.pools[s.sampler.Sample(s.rng)]
	if pool.cfg.Withholder {
		s.mineWithheld(now, pool)
		return
	}
	parent, ok := s.tree.Block(pool.head)
	if !ok {
		return
	}

	gap := now - sim.Time(parent.Header.TimeMillis)
	difficulty := chain.NextDifficulty(s.cfg.Difficulty, parent.Header.Difficulty, gap, parent.Header.Number+1)

	empty := s.rng.Bernoulli(pool.cfg.EmptyBlockProb)
	txs := s.buildBody(empty)
	uncles := s.tree.SelectUncles(s.cfg.Uncles, pool.head, s.tracker)

	header := types.Header{
		ParentHash: pool.head,
		Number:     parent.Header.Number + 1,
		Miner:      pool.address,
		MinerLabel: pool.cfg.Name,
		TimeMillis: uint64(now),
		Difficulty: difficulty,
		GasLimit:   s.cfg.GasLimit,
		GasUsed:    uint64(len(txs)) * types.TxGas,
	}
	primary := types.NewBlock(header, txs, uncles)
	extended := s.insert(now, primary, pool)
	for _, u := range uncles {
		s.tracker.MarkUsed(u.Hash())
	}
	if extended && s.cfg.TxPool != nil && len(txs) > 0 {
		// Main-chain extension: consume the included transactions.
		// Commit failure would mean the block was built against a
		// different pool state, which cannot happen here.
		_ = s.cfg.TxPool.Commit(txs)
	}
	s.emit(BlockEvent{Now: now, Block: primary, Pool: pool.cfg.Name, Gateway: s.gateway(pool), Version: 0, ExtendedHead: extended})

	s.mineExtraVersions(now, pool, header, txs, primary)
	// A public block threatens any private chain it catches up with.
	s.maybeTriggerReleases(now, primary.Header.Number)
}

// mineExtraVersions models the paper's one-miner forks: with
// MultiVersionProb the pool publishes extra versions of the block at
// the same height, mostly with the identical transaction set (56%),
// occasionally diverging.
func (s *Simulator) mineExtraVersions(now sim.Time, pool *poolState, header types.Header, txs []*types.Transaction, primary *types.Block) {
	if !s.rng.Bernoulli(pool.cfg.MultiVersionProb) {
		return
	}
	versions := 2
	// Tuple-size tail matching §III-C5: overwhelmingly pairs, ~1.4%
	// triples, isolated larger tuples.
	for versions < 7 && s.rng.Bernoulli(0.015) {
		versions++
	}
	sameTx := s.rng.Bernoulli(pool.cfg.MultiVersionSameTxProb)
	for v := 1; v < versions; v++ {
		vh := header
		vh.Extra = uint64(v)
		vtxs := txs
		if !sameTx {
			vtxs = s.buildBody(len(txs) == 0)
		}
		// Extra versions reference no uncles; they are the uncles.
		vb := types.NewBlock(vh, vtxs, nil)
		extended := s.insert(now, vb, pool)
		s.emit(BlockEvent{Now: now, Block: vb, Pool: pool.cfg.Name, Gateway: s.gateway(pool), Version: v, ExtendedHead: extended})
	}
	s.multiTuple[primary.Hash()] = versions
}

// buildBody assembles a block body: empty when the empty-block policy
// fires, otherwise real transactions from the pool (when configured)
// or a synthetic filler.
func (s *Simulator) buildBody(empty bool) []*types.Transaction {
	if empty {
		return nil
	}
	if s.cfg.TxPool != nil {
		if txs := s.cfg.TxPool.Select(s.cfg.GasLimit); len(txs) > 0 {
			return txs
		}
		// An exhausted pool still yields a filler so "empty block"
		// remains a policy signal, not a workload artifact.
	}
	s.fillerSeq++
	return []*types.Transaction{{
		Sender:   types.AddressFromString("filler"),
		To:       types.AddressFromString("sink"),
		Nonce:    s.fillerSeq,
		Value:    1,
		GasPrice: 1,
		Gas:      types.TxGas,
	}}
}

// insert adds a block to the tree and schedules per-pool visibility
// updates. It reports whether the global head moved.
func (s *Simulator) insert(now sim.Time, b *types.Block, miner *poolState) bool {
	reorged, err := s.tree.Add(b)
	if err != nil {
		return false
	}
	td, tdErr := s.tree.TotalDifficulty(b.Hash())
	if tdErr != nil {
		return reorged
	}
	// The miner sees its own block instantly.
	if td > miner.headTD {
		miner.head = b.Hash()
		miner.headTD = td
	}
	// Other pools see it after gateway propagation plus their switch
	// delay. The update is a typed event over a refcounted slab entry
	// shared by every pool — no per-pool closure.
	if len(s.pools) > 1 {
		var idx int32
		if n := len(s.visFree); n > 0 {
			idx = s.visFree[n-1]
			s.visFree = s.visFree[:n-1]
		} else {
			s.visSlab = append(s.visSlab, visUpdate{})
			idx = int32(len(s.visSlab) - 1)
		}
		s.visSlab[idx] = visUpdate{td: td, head: b.Hash(), refs: len(s.pools) - 1, from: miner.home}
		for pi, q := range s.pools {
			if q == miner {
				continue
			}
			delay := s.cfg.GatewayDelay + s.rng.ExpTime(q.cfg.SwitchDelayMean)
			s.engine.ScheduleCall(delay, s, uint64(pi), uint64(idx))
		}
	}
	return reorged
}

// HandleEvent implements sim.Handler: apply one pool's deferred
// head-visibility update (a = pool index, b = visSlab index). A
// visibility filter can push the update past a partition heal; the
// slab entry's refcount is untouched while the update is in limbo.
func (s *Simulator) HandleEvent(now sim.Time, a, b uint64) {
	q := s.pools[a]
	u := &s.visSlab[b]
	if s.cfg.VisibilityFilter != nil {
		if d := s.cfg.VisibilityFilter(now, u.from, q.home); d > 0 {
			s.engine.ScheduleCall(d, s, a, b)
			return
		}
	}
	if u.td > q.headTD {
		q.head = u.head
		q.headTD = u.td
	}
	u.refs--
	if u.refs == 0 {
		s.visFree = append(s.visFree, int32(b))
	}
}

// EventName implements sim.EventNamer: every typed mining event is a
// deferred head-visibility update (a is the pool index, so engine
// traces bucket them all under one label).
func (s *Simulator) EventName(uint64) string { return "mining.visibility" }

func (s *Simulator) gateway(p *poolState) geo.Region {
	regions := p.cfg.GatewayRegions
	return regions[s.rng.IntN(len(regions))]
}

func (s *Simulator) emit(ev BlockEvent) {
	if s.cfg.OnBlock != nil {
		s.cfg.OnBlock(ev)
	}
}
