package mining

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/types"
)

// withholderConfig builds a registry with one withholding attacker at
// the given share and honest remainder.
func withholderConfig(attackerShare float64) Config {
	cfg := DefaultConfig()
	cfg.Pools = []PoolConfig{
		{Name: "Attacker", HashrateShare: attackerShare, GatewayRegions: []geo.Region{geo.EasternAsia},
			SwitchDelayMean: 850 * sim.Millisecond, Withholder: true},
		{Name: "Honest", HashrateShare: 1 - attackerShare, GatewayRegions: []geo.Region{geo.WesternEurope},
			SwitchDelayMean: 850 * sim.Millisecond},
	}
	return cfg
}

func TestWithholderReleasesBursts(t *testing.T) {
	engine := sim.NewEngine()
	rng := sim.NewRNG(21)
	cfg := withholderConfig(0.3)
	cfg.BlockLimit = 3000
	type pub struct {
		now  sim.Time
		pool string
		num  uint64
	}
	var pubs []pub
	cfg.OnBlock = func(ev BlockEvent) {
		pubs = append(pubs, pub{ev.Now, ev.Pool, ev.Block.Header.Number})
	}
	s, err := NewSimulator(engine, rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	engine.Run()

	// The attacker's publications must include same-instant bursts of
	// withholdReleaseCap consecutive heights.
	bursts := 0
	attackerBlocks := 0
	for i := 1; i < len(pubs); i++ {
		if pubs[i].pool != "Attacker" {
			continue
		}
		attackerBlocks++
		if pubs[i-1].pool == "Attacker" && pubs[i].now == pubs[i-1].now && pubs[i].num == pubs[i-1].num+1 {
			bursts++
		}
	}
	if attackerBlocks == 0 {
		t.Fatal("attacker published nothing")
	}
	if bursts == 0 {
		t.Fatal("no burst releases observed")
	}
	// The chain still grows and includes attacker blocks on main.
	main := s.Tree().MainChain()
	attackerMain := 0
	for _, b := range main[1:] {
		if b.Header.MinerLabel == "Attacker" {
			attackerMain++
		}
	}
	if attackerMain == 0 {
		t.Fatal("attacker never landed on main chain")
	}
}

func TestWithholderTriggersOnThreat(t *testing.T) {
	// When the honest chain catches up, the private chain must be
	// released rather than held forever: no attacker blocks may remain
	// unpublished at the end beyond the final in-flight window.
	engine := sim.NewEngine()
	rng := sim.NewRNG(22)
	cfg := withholderConfig(0.2)
	cfg.BlockLimit = 2000
	published := map[types.Hash]bool{}
	cfg.OnBlock = func(ev BlockEvent) { published[ev.Block.Hash()] = true }
	s, err := NewSimulator(engine, rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	engine.Run()
	// Every block in the tree was published through the hook.
	main := s.Tree().MainChain()
	for _, b := range main[1:] {
		if !published[b.Hash()] {
			t.Fatalf("main block %s never published", b.Hash().Short())
		}
	}
	// At most cap-1 private blocks may remain stuck at the very end.
	leftover := s.withheld["Attacker"]
	if leftover != nil && len(leftover.blocks) >= withholdReleaseCap {
		t.Fatalf("private chain of %d never released", len(leftover.blocks))
	}
}

func TestHonestPoolsHaveNoPrivateChains(t *testing.T) {
	s := runSim(t, 23, 500, nil)
	if len(s.withheld) != 0 {
		t.Fatalf("honest run accumulated private chains: %d", len(s.withheld))
	}
}
