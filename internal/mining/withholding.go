package mining

import (
	"repro/internal/chain"
	"repro/internal/sim"
	"repro/internal/types"
)

// Block withholding (§III-D). The paper argues Sparkpool's 9-block
// sequences were probably honest because the blocks "were not
// announced all together, like in a block withholding attack, and
// presented an average inter-block time". To reproduce that argument
// we need the attack itself: a withholding pool mines a private chain
// and releases it in a burst, either when it risks losing the race or
// when its private lead reaches a cap.
//
// The observable signature is exactly what the paper describes: a run
// of same-miner blocks whose release times are bunched together
// instead of spaced at the mining rate. analysis.DetectWithholding
// looks for that signature.

// withholdReleaseCap bounds the private chain length before a
// voluntary release (rewards must eventually be claimed).
const withholdReleaseCap = 4

// withholdState tracks one withholding pool's private chain.
type withholdState struct {
	blocks []*types.Block
}

// tip returns the private tip, or nil.
func (w *withholdState) tip() *types.Block {
	if len(w.blocks) == 0 {
		return nil
	}
	return w.blocks[len(w.blocks)-1]
}

// mineWithheld builds a private block for a withholding pool and
// decides whether the cap forces a release.
func (s *Simulator) mineWithheld(now sim.Time, pool *poolState) {
	priv := s.withheld[pool.cfg.Name]
	if priv == nil {
		priv = &withholdState{}
		s.withheld[pool.cfg.Name] = priv
	}
	parentHash := pool.head
	parentTime := sim.Time(0)
	parentDifficulty := uint64(0)
	parentNumber := uint64(0)
	if tip := priv.tip(); tip != nil {
		parentHash = tip.Hash()
		parentTime = sim.Time(tip.Header.TimeMillis)
		parentDifficulty = tip.Header.Difficulty
		parentNumber = tip.Header.Number
	} else {
		parent, ok := s.tree.Block(pool.head)
		if !ok {
			return
		}
		parentTime = sim.Time(parent.Header.TimeMillis)
		parentDifficulty = parent.Header.Difficulty
		parentNumber = parent.Header.Number
	}
	gap := now - parentTime
	difficulty := chain.NextDifficulty(s.cfg.Difficulty, parentDifficulty, gap, parentNumber+1)
	txs := s.buildBody(s.rng.Bernoulli(pool.cfg.EmptyBlockProb))
	header := types.Header{
		ParentHash: parentHash,
		Number:     parentNumber + 1,
		Miner:      pool.address,
		MinerLabel: pool.cfg.Name,
		TimeMillis: uint64(now),
		Difficulty: difficulty,
		GasLimit:   s.cfg.GasLimit,
		GasUsed:    uint64(len(txs)) * types.TxGas,
	}
	priv.blocks = append(priv.blocks, types.NewBlock(header, txs, nil))
	if len(priv.blocks) >= withholdReleaseCap {
		s.releaseWithheld(now, pool)
	}
}

// releaseWithheld publishes a pool's entire private chain at one
// instant — the burst signature.
func (s *Simulator) releaseWithheld(now sim.Time, pool *poolState) {
	priv := s.withheld[pool.cfg.Name]
	if priv == nil || len(priv.blocks) == 0 {
		return
	}
	blocks := priv.blocks
	priv.blocks = nil
	for _, b := range blocks {
		extended := s.insert(now, b, pool)
		s.emit(BlockEvent{
			Now:          now,
			Block:        b,
			Pool:         pool.cfg.Name,
			Gateway:      s.gateway(pool),
			Version:      0,
			ExtendedHead: extended,
		})
	}
}

// maybeTriggerReleases releases any private chain whose lead is
// threatened: the public chain has caught up to (or passed) the
// private tip's height, so holding longer risks losing everything.
func (s *Simulator) maybeTriggerReleases(now sim.Time, publicHeight uint64) {
	for name, priv := range s.withheld {
		tip := priv.tip()
		if tip == nil {
			continue
		}
		if publicHeight+1 >= tip.Header.Number {
			for _, p := range s.pools {
				if p.cfg.Name == name {
					s.releaseWithheld(now, p)
					break
				}
			}
		}
	}
}
