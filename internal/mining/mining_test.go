package mining

import (
	"math"
	"strings"
	"testing"

	"repro/internal/chain"
	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/types"
)

func TestPaperPoolsValid(t *testing.T) {
	pools := PaperPools()
	if err := ValidatePools(pools); err != nil {
		t.Fatal(err)
	}
	if len(pools) != 16 {
		t.Fatalf("pool count: %d", len(pools))
	}
	// Spot-check the paper's measured shares.
	byName := map[string]PoolConfig{}
	for _, p := range pools {
		byName[p.Name] = p
	}
	if byName["Ethermine"].HashrateShare != 0.2532 {
		t.Errorf("Ethermine share: %v", byName["Ethermine"].HashrateShare)
	}
	if byName["Sparkpool"].HashrateShare != 0.2288 {
		t.Errorf("Sparkpool share: %v", byName["Sparkpool"].HashrateShare)
	}
	if byName["Zhizhu"].EmptyBlockProb < 0.25 {
		t.Errorf("Zhizhu must mine >25%% empty: %v", byName["Zhizhu"].EmptyBlockProb)
	}
	if byName["Nanopool"].EmptyBlockProb != 0 || byName["Miningpoolhub1"].EmptyBlockProb != 0 {
		t.Error("Nanopool/Miningpoolhub1 mined no empty blocks in the paper")
	}
	// Hashrate with an EA gateway should be ~45-55% (drives Fig. 2's
	// ~40% EA-first share).
	var eaShare float64
	for _, p := range pools {
		for _, r := range p.GatewayRegions {
			if r == geo.EasternAsia {
				eaShare += p.HashrateShare
				break
			}
		}
	}
	if eaShare < 0.40 || eaShare > 0.60 {
		t.Errorf("EA-gatewayed hashrate share: %v", eaShare)
	}
}

func TestPoolConfigValidate(t *testing.T) {
	valid := PoolConfig{Name: "X", HashrateShare: 0.5, GatewayRegions: []geo.Region{geo.NorthAmerica}}
	if err := valid.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []PoolConfig{
		{Name: "", HashrateShare: 0.5, GatewayRegions: valid.GatewayRegions},
		{Name: "X", HashrateShare: -0.1, GatewayRegions: valid.GatewayRegions},
		{Name: "X", HashrateShare: 1.5, GatewayRegions: valid.GatewayRegions},
		{Name: "X", HashrateShare: 0.5},
		{Name: "X", HashrateShare: 0.5, GatewayRegions: []geo.Region{geo.Region(77)}},
		{Name: "X", HashrateShare: 0.5, GatewayRegions: valid.GatewayRegions, EmptyBlockProb: 2},
		{Name: "X", HashrateShare: 0.5, GatewayRegions: valid.GatewayRegions, SwitchDelayMean: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestValidatePoolsAggregate(t *testing.T) {
	if err := ValidatePools(nil); err == nil {
		t.Error("empty registry must fail")
	}
	r := []geo.Region{geo.NorthAmerica}
	if err := ValidatePools([]PoolConfig{
		{Name: "A", HashrateShare: 0.5, GatewayRegions: r},
		{Name: "A", HashrateShare: 0.5, GatewayRegions: r},
	}); err == nil {
		t.Error("duplicate names must fail")
	}
	if err := ValidatePools([]PoolConfig{
		{Name: "A", HashrateShare: 0.5, GatewayRegions: r},
	}); err == nil {
		t.Error("shares not summing to 1 must fail")
	}
}

func TestPoolAddressDerivation(t *testing.T) {
	a := PoolConfig{Name: "Ethermine"}.Address()
	b := PoolConfig{Name: "Ethermine"}.Address()
	c := PoolConfig{Name: "Sparkpool"}.Address()
	if a != b || a == c {
		t.Fatal("address derivation broken")
	}
	if a != types.AddressFromString("Ethermine") {
		t.Fatal("address must derive from name")
	}
}

func runSim(t *testing.T, seed uint64, blocks uint64, mutate func(*Config)) *Simulator {
	t.Helper()
	engine := sim.NewEngine()
	rng := sim.NewRNG(seed)
	cfg := DefaultConfig()
	cfg.BlockLimit = blocks
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewSimulator(engine, rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	engine.Run()
	return s
}

func TestSimulatorConstructorValidation(t *testing.T) {
	engine := sim.NewEngine()
	rng := sim.NewRNG(1)
	if _, err := NewSimulator(nil, rng, DefaultConfig()); err == nil {
		t.Error("nil engine must fail")
	}
	cfg := DefaultConfig()
	cfg.Pools = nil
	if _, err := NewSimulator(engine, rng, cfg); err == nil {
		t.Error("no pools must fail")
	}
	cfg = DefaultConfig()
	cfg.InterBlockMean = 0
	if _, err := NewSimulator(engine, rng, cfg); err == nil {
		t.Error("zero interval must fail")
	}
	cfg = DefaultConfig()
	cfg.GasLimit = 0
	if _, err := NewSimulator(engine, rng, cfg); err == nil {
		t.Error("zero gas limit must fail")
	}
}

func TestSimulatorProducesChain(t *testing.T) {
	s := runSim(t, 1, 500, nil)
	if s.Produced() != 500 {
		t.Fatalf("produced: %d", s.Produced())
	}
	main := s.Tree().MainChain()
	if len(main) < 450 {
		t.Fatalf("main chain too short: %d (forks ate too much)", len(main))
	}
	// Tree contains strictly more blocks than the main chain when
	// forks occurred; at 500 blocks some forks are near-certain.
	if s.Tree().Len() <= len(main) {
		t.Fatal("expected at least one fork block")
	}
}

func TestSimulatorInterBlockTime(t *testing.T) {
	s := runSim(t, 2, 2000, nil)
	main := s.Tree().MainChain()
	var gaps []float64
	for i := 2; i < len(main); i++ {
		gaps = append(gaps, float64(main[i].Header.TimeMillis-main[i-1].Header.TimeMillis))
	}
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	mean := sum / float64(len(gaps))
	// Mean inter-block time should be ~13.3 s (slightly above because
	// forked heights stretch main-chain gaps).
	if mean < 12000 || mean > 16000 {
		t.Fatalf("mean inter-block %v ms", mean)
	}
}

func TestSimulatorHashrateShares(t *testing.T) {
	s := runSim(t, 3, 4000, nil)
	counts := map[string]int{}
	main := s.Tree().MainChain()
	for _, b := range main[1:] {
		counts[b.Header.MinerLabel]++
	}
	total := float64(len(main) - 1)
	if got := float64(counts["Ethermine"]) / total; math.Abs(got-0.2532) > 0.03 {
		t.Errorf("Ethermine share: %v", got)
	}
	if got := float64(counts["Sparkpool"]) / total; math.Abs(got-0.2288) > 0.03 {
		t.Errorf("Sparkpool share: %v", got)
	}
}

func TestSimulatorForkRate(t *testing.T) {
	s := runSim(t, 4, 5000, nil)
	tree := s.Tree()
	main := s.Tree().MainChain()
	forked := tree.Len() - len(main)
	rate := float64(forked) / float64(tree.Len()-1)
	// Paper: ~7.2% of observed blocks were off-main (6.97% uncles +
	// 0.22% unrecognized). Accept a generous band.
	if rate < 0.03 || rate > 0.13 {
		t.Fatalf("fork rate %v outside plausible band", rate)
	}
}

func TestSimulatorEmptyBlocks(t *testing.T) {
	s := runSim(t, 5, 8000, nil)
	main := s.Tree().MainChain()
	empty := 0
	emptyByPool := map[string]int{}
	byPool := map[string]int{}
	for _, b := range main[1:] {
		byPool[b.Header.MinerLabel]++
		if b.IsEmpty() {
			empty++
			emptyByPool[b.Header.MinerLabel]++
		}
	}
	rate := float64(empty) / float64(len(main)-1)
	// Paper: 1.45% of main blocks are empty.
	if rate < 0.008 || rate > 0.025 {
		t.Fatalf("empty rate %v", rate)
	}
	if emptyByPool["Nanopool"] != 0 || emptyByPool["Miningpoolhub1"] != 0 {
		t.Error("zero-empty pools mined empty blocks")
	}
	if byPool["Zhizhu"] > 20 {
		zr := float64(emptyByPool["Zhizhu"]) / float64(byPool["Zhizhu"])
		if zr < 0.15 {
			t.Errorf("Zhizhu empty rate %v, want >0.15", zr)
		}
	}
}

func TestSimulatorOneMinerForks(t *testing.T) {
	s := runSim(t, 6, 6000, nil)
	tuples := s.MultiVersionTuples()
	if len(tuples) == 0 {
		t.Fatal("no one-miner forks at 6000 blocks")
	}
	pairs, bigger := 0, 0
	for _, v := range tuples {
		switch {
		case v == 2:
			pairs++
		case v > 2:
			bigger++
		default:
			t.Fatalf("tuple of %d", v)
		}
	}
	if pairs == 0 {
		t.Fatal("no pairs")
	}
	// Pairs dominate (paper: 1750 pairs vs 27 larger tuples).
	if bigger > pairs/10 {
		t.Fatalf("too many large tuples: %d vs %d pairs", bigger, pairs)
	}
	// The extra versions must exist in the tree at the same height as
	// their primary, mined by the same miner.
	for primary, n := range tuples {
		b, ok := s.Tree().Block(primary)
		if !ok {
			t.Fatal("primary missing")
		}
		sameMinerAtHeight := 0
		for _, h := range s.Tree().AtHeight(b.Header.Number) {
			sib, _ := s.Tree().Block(h)
			if sib.Header.Miner == b.Header.Miner {
				sameMinerAtHeight++
			}
		}
		if sameMinerAtHeight < n {
			t.Fatalf("tuple %d but only %d same-miner blocks at height", n, sameMinerAtHeight)
		}
	}
}

func TestSimulatorUnclesReferenced(t *testing.T) {
	s := runSim(t, 7, 3000, nil)
	referenced := 0
	for _, b := range s.Tree().MainChain() {
		referenced += len(b.Uncles)
	}
	if referenced == 0 {
		t.Fatal("no uncles referenced over 3000 blocks")
	}
}

func TestSimulatorOnBlockHook(t *testing.T) {
	events := 0
	extendedCount := 0
	s := runSim(t, 8, 300, func(c *Config) {
		c.OnBlock = func(ev BlockEvent) {
			events++
			if ev.Block == nil || ev.Pool == "" || !ev.Gateway.Valid() {
				t.Error("malformed event")
			}
			if ev.ExtendedHead {
				extendedCount++
			}
		}
	})
	if events < 300 {
		t.Fatalf("events: %d", events)
	}
	if extendedCount == 0 || extendedCount > events {
		t.Fatalf("extended count: %d of %d", extendedCount, events)
	}
	_ = s
}

func TestSimulatorWithTxPool(t *testing.T) {
	pool := chain.NewTxPool()
	sender := types.AddressFromString("user")
	for i := uint64(0); i < 50; i++ {
		if _, err := pool.Add(&types.Transaction{
			Sender: sender, To: types.AddressFromString("sink"),
			Nonce: i, GasPrice: 10, Gas: types.TxGas,
		}); err != nil {
			t.Fatal(err)
		}
	}
	s := runSim(t, 9, 50, func(c *Config) { c.TxPool = pool })
	// All 50 user txs end up in main-chain blocks.
	found := 0
	for _, b := range s.Tree().MainChain() {
		for _, tx := range b.Txs {
			if tx.Sender == sender {
				found++
			}
		}
	}
	if found < 50 {
		t.Fatalf("only %d/50 txs included", found)
	}
}

func TestSimulatorStop(t *testing.T) {
	engine := sim.NewEngine()
	rng := sim.NewRNG(10)
	cfg := DefaultConfig()
	s, err := NewSimulator(engine, rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	engine.RunFor(5 * sim.Minute)
	produced := s.Produced()
	if produced == 0 {
		t.Fatal("nothing produced in 5 minutes")
	}
	s.Stop()
	engine.Run()
	if s.Produced() > produced {
		t.Fatalf("produced after stop: %d -> %d", produced, s.Produced())
	}
}

func TestSimulatorDeterministicReplay(t *testing.T) {
	h1 := runSim(t, 11, 400, nil).Tree().Head().Hash()
	h2 := runSim(t, 11, 400, nil).Tree().Head().Hash()
	if h1 != h2 {
		t.Fatal("same seed produced different chains")
	}
	h3 := runSim(t, 12, 400, nil).Tree().Head().Hash()
	if h1 == h3 {
		t.Fatal("different seeds produced identical chains")
	}
}

func TestLesson1AblationReducesOneMinerUncles(t *testing.T) {
	// With the §V restricted rule, same-miner versions must never be
	// referenced as uncles by that miner's own chain blocks at the
	// same height; overall one-miner uncle recognition drops.
	countOneMinerUncles := func(s *Simulator) int {
		n := 0
		tree := s.Tree()
		for _, b := range tree.MainChain() {
			for _, u := range b.Uncles {
				// One-miner uncle: the uncle's miner equals the miner
				// of the main block at the uncle's height.
				mainAt := tree.MainChain()[u.Number]
				if mainAt.Header.Miner == u.Miner {
					n++
				}
			}
		}
		return n
	}
	standard := runSim(t, 13, 4000, nil)
	restricted := runSim(t, 13, 4000, func(c *Config) { c.Uncles.RestrictOneMinerUncles = true })
	stdCount := countOneMinerUncles(standard)
	resCount := countOneMinerUncles(restricted)
	if stdCount == 0 {
		t.Skip("no one-miner uncles in standard run; increase blocks")
	}
	if resCount != 0 {
		t.Fatalf("restricted rule leaked %d one-miner uncles", resCount)
	}
}

// TestValidatePoolsScenarioConfigs is table-driven coverage for the
// error paths scenario-supplied registries (internal/scenario) hit:
// each case is one way a user-written pool list can be wrong.
func TestValidatePoolsScenarioConfigs(t *testing.T) {
	na := []geo.Region{geo.NorthAmerica}
	we := []geo.Region{geo.WesternEurope}
	pool := func(name string, share float64, regions []geo.Region) PoolConfig {
		return PoolConfig{Name: name, HashrateShare: share, GatewayRegions: regions}
	}
	cases := []struct {
		name    string
		pools   []PoolConfig
		wantErr string
	}{
		{"valid pair", []PoolConfig{pool("A", 0.6, na), pool("B", 0.4, we)}, ""},
		{"valid within tolerance", []PoolConfig{pool("A", 0.5004, na), pool("B", 0.5, we)}, ""},
		{"empty registry", nil, "empty pool registry"},
		{"shares under 1", []PoolConfig{pool("A", 0.5, na), pool("B", 0.4, we)}, "sum to"},
		{"shares over 1", []PoolConfig{pool("A", 0.7, na), pool("B", 0.4, we)}, "sum to"},
		{"duplicate names", []PoolConfig{pool("A", 0.5, na), pool("A", 0.5, we)}, "duplicate pool"},
		{"unnamed pool", []PoolConfig{pool("", 1, na)}, "needs a name"},
		{"share above 1", []PoolConfig{pool("A", 1.5, na), pool("B", -0.5, we)}, "outside [0,1]"},
		{"no gateway regions", []PoolConfig{pool("A", 1, nil)}, "no gateway region"},
		{"invalid gateway region", []PoolConfig{pool("A", 1, []geo.Region{geo.Region(99)})}, "invalid region"},
		{"bad probability", []PoolConfig{
			{Name: "A", HashrateShare: 1, GatewayRegions: na, MultiVersionProb: 1.2},
		}, "outside [0,1]"},
		{"negative switch delay", []PoolConfig{
			{Name: "A", HashrateShare: 1, GatewayRegions: na, SwitchDelayMean: -1},
		}, "negative switch delay"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidatePools(tc.pools)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got: %v", tc.wantErr, err)
			}
		})
	}
}

// TestNextInjectionAt pins the sharded conductor's global-horizon
// contract: before Start and after the block limit drains there is no
// pending injection (sim.Never); while racing, the horizon is exactly
// the pending race timer's deadline, and it never reports a time in
// the engine's past.
func TestNextInjectionAt(t *testing.T) {
	engine := sim.NewEngine()
	rng := sim.NewRNG(7)
	cfg := DefaultConfig()
	cfg.BlockLimit = 5
	s, err := NewSimulator(engine, rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.NextInjectionAt(); got != sim.Never {
		t.Fatalf("horizon before Start: %d, want sim.Never", got)
	}
	s.Start()
	at, ok := s.raceTimer.When()
	if !ok {
		t.Fatal("race timer not pending after Start")
	}
	if got := s.NextInjectionAt(); got != at {
		t.Fatalf("horizon %d != pending race deadline %d", got, at)
	}
	races := 0
	s.cfg.OnBlock = func(BlockEvent) { races++ }
	for s.NextInjectionAt() != sim.Never {
		next := s.NextInjectionAt()
		if next < engine.Now() {
			t.Fatalf("horizon %d behind engine clock %d", next, engine.Now())
		}
		engine.RunUntil(next)
	}
	if s.Produced() != 5 {
		t.Fatalf("produced %d heights, want 5", s.Produced())
	}
	if got := s.NextInjectionAt(); got != sim.Never {
		t.Fatalf("horizon after limit: %d, want sim.Never", got)
	}
	s.Stop()
	engine.Run()
}
