// Package mining models Ethereum's mining-pool ecosystem as the paper
// found it: a handful of pools holding most hashrate, injecting blocks
// through geographically concentrated gateways, and exhibiting the
// selfish behaviors the study documents — empty-block mining
// (§III-C3) and one-miner forks (§III-C5).
//
// Block production is a Poisson race: the network-wide inter-block gap
// is exponential with mean 13.3 s (post-Constantinople) and each
// block's winner is drawn proportionally to hashrate. Forks emerge
// from per-pool visibility delays: a pool that has not yet seen the
// latest head mines on the previous one.
package mining

import (
	"errors"
	"fmt"

	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/types"
)

// PoolConfig describes one mining pool's power, geography and
// policies.
type PoolConfig struct {
	// Name is the pool label, e.g. "Ethermine".
	Name string
	// HashrateShare is the fraction of total network hashrate
	// (Fig. 3's parenthesized percentages).
	HashrateShare float64
	// GatewayRegions lists the regions where the pool operates block
	// gateways. Blocks are injected at one of these (uniformly).
	GatewayRegions []geo.Region
	// EmptyBlockProb is the per-block probability the pool mines an
	// empty block (Fig. 6 behavior).
	EmptyBlockProb float64
	// MultiVersionProb is the per-block probability the pool also
	// mines one or more extra versions of the same height
	// (the paper's one-miner forks).
	MultiVersionProb float64
	// MultiVersionSameTxProb is, given a multi-version event, the
	// probability the versions share the transaction set (the paper
	// measures 56%, §V).
	MultiVersionSameTxProb float64
	// SwitchDelayMean is the mean extra delay between the pool's
	// gateway seeing a new head and its distributed workers actually
	// mining on it (stratum round-trips + job distribution). This is
	// the dominant driver of Ethereum's ~7% uncle rate.
	SwitchDelayMean sim.Time
	// Withholder makes the pool run the §III-D block-withholding
	// strategy: mine privately and release the chain in a burst. No
	// paper pool is configured this way; the flag exists to validate
	// the withholding detector against a real attacker.
	Withholder bool
}

// Validate checks configuration sanity.
func (c PoolConfig) Validate() error {
	if c.Name == "" {
		return errors.New("mining: pool needs a name")
	}
	if c.HashrateShare < 0 || c.HashrateShare > 1 {
		return fmt.Errorf("mining: pool %s share %v outside [0,1]", c.Name, c.HashrateShare)
	}
	if len(c.GatewayRegions) == 0 {
		return fmt.Errorf("mining: pool %s has no gateway region", c.Name)
	}
	for _, r := range c.GatewayRegions {
		if !r.Valid() {
			return fmt.Errorf("mining: pool %s has invalid region %v", c.Name, r)
		}
	}
	for _, p := range []float64{c.EmptyBlockProb, c.MultiVersionProb, c.MultiVersionSameTxProb} {
		if p < 0 || p > 1 {
			return fmt.Errorf("mining: pool %s probability %v outside [0,1]", c.Name, p)
		}
	}
	if c.SwitchDelayMean < 0 {
		return fmt.Errorf("mining: pool %s negative switch delay", c.Name)
	}
	return nil
}

// Address returns the pool's coinbase address, derived from its name.
func (c PoolConfig) Address() types.Address {
	return types.AddressFromString(c.Name)
}

// DefaultSwitchDelay is the calibrated mean stratum switch delay
// (gateway sees a new head -> distributed workers mine on it) behind
// Ethereum's ~7% uncle rate. Shared by PaperPools, the registry's
// attacker specs and scenario-file pools so a recalibration moves
// every consumer together.
const DefaultSwitchDelay = 850 * sim.Millisecond

// PaperPools returns the 15 pools the paper analyzes plus a diffuse
// "Remaining" pseudo-pool, with the hashrate shares measured during
// the study (Fig. 3) and policy parameters calibrated so the
// reproduction lands on the paper's aggregates: ~1.45% empty blocks
// overall with Zhizhu above 25% (Fig. 6), Nanopool and Miningpoolhub1
// at zero, and ~0.9% of heights receiving a second same-miner version
// (§III-C5).
//
// Gateway placement follows the pools' documented operating bases:
// the large Chinese pools (Sparkpool, F2pool, HuoBi, Uupool, Zhizhu,
// MiningExpress, Xnpool, Miningpoolhub) gateway in Eastern Asia;
// Ethermine/Nanopool/DwarfPool/Hiveon and the smaller European pools
// in Western/Central Europe with some North American presence. The
// paper's Fig. 3 shows exactly this split driving first-observation
// asymmetry.
func PaperPools() []PoolConfig {
	const switchMean = DefaultSwitchDelay
	ea := []geo.Region{geo.EasternAsia}
	return []PoolConfig{
		{Name: "Ethermine", HashrateShare: 0.2532, GatewayRegions: []geo.Region{geo.WesternEurope, geo.CentralEurope}, EmptyBlockProb: 0.0234, MultiVersionProb: 0.013, MultiVersionSameTxProb: 0.56, SwitchDelayMean: switchMean},
		{Name: "Sparkpool", HashrateShare: 0.2288, GatewayRegions: ea, EmptyBlockProb: 0.013, MultiVersionProb: 0.012, MultiVersionSameTxProb: 0.56, SwitchDelayMean: switchMean},
		{Name: "F2pool2", HashrateShare: 0.1275, GatewayRegions: []geo.Region{geo.EasternAsia, geo.NorthAmerica}, EmptyBlockProb: 0.008, MultiVersionProb: 0.009, MultiVersionSameTxProb: 0.56, SwitchDelayMean: switchMean},
		{Name: "Nanopool", HashrateShare: 0.1210, GatewayRegions: []geo.Region{geo.WesternEurope, geo.NorthAmerica}, EmptyBlockProb: 0, MultiVersionProb: 0.006, MultiVersionSameTxProb: 0.56, SwitchDelayMean: switchMean},
		{Name: "Miningpoolhub1", HashrateShare: 0.0561, GatewayRegions: []geo.Region{geo.EasternAsia, geo.NorthAmerica}, EmptyBlockProb: 0, MultiVersionProb: 0.005, MultiVersionSameTxProb: 0.56, SwitchDelayMean: switchMean},
		{Name: "HuoBi.pro", HashrateShare: 0.0185, GatewayRegions: ea, EmptyBlockProb: 0.02, MultiVersionProb: 0.004, MultiVersionSameTxProb: 0.56, SwitchDelayMean: switchMean},
		{Name: "Pandapool", HashrateShare: 0.0182, GatewayRegions: []geo.Region{geo.EasternAsia, geo.NorthAmerica}, EmptyBlockProb: 0.015, MultiVersionProb: 0.004, MultiVersionSameTxProb: 0.56, SwitchDelayMean: switchMean},
		{Name: "DwarfPool1", HashrateShare: 0.0174, GatewayRegions: []geo.Region{geo.CentralEurope}, EmptyBlockProb: 0.01, MultiVersionProb: 0.003, MultiVersionSameTxProb: 0.56, SwitchDelayMean: switchMean},
		{Name: "Xnpool", HashrateShare: 0.0134, GatewayRegions: ea, EmptyBlockProb: 0.012, MultiVersionProb: 0.003, MultiVersionSameTxProb: 0.56, SwitchDelayMean: switchMean},
		{Name: "Uupool", HashrateShare: 0.0133, GatewayRegions: ea, EmptyBlockProb: 0.01, MultiVersionProb: 0.003, MultiVersionSameTxProb: 0.56, SwitchDelayMean: switchMean},
		{Name: "Minerall", HashrateShare: 0.0123, GatewayRegions: []geo.Region{geo.CentralEurope, geo.WesternEurope}, EmptyBlockProb: 0.008, MultiVersionProb: 0.002, MultiVersionSameTxProb: 0.56, SwitchDelayMean: switchMean},
		{Name: "Firepool", HashrateShare: 0.0122, GatewayRegions: []geo.Region{geo.WesternEurope}, EmptyBlockProb: 0.01, MultiVersionProb: 0.002, MultiVersionSameTxProb: 0.56, SwitchDelayMean: switchMean},
		{Name: "Zhizhu", HashrateShare: 0.0085, GatewayRegions: ea, EmptyBlockProb: 0.26, MultiVersionProb: 0.002, MultiVersionSameTxProb: 0.56, SwitchDelayMean: switchMean},
		{Name: "MiningExpress", HashrateShare: 0.0081, GatewayRegions: ea, EmptyBlockProb: 0.05, MultiVersionProb: 0.002, MultiVersionSameTxProb: 0.56, SwitchDelayMean: switchMean},
		{Name: "Hiveon", HashrateShare: 0.0077, GatewayRegions: []geo.Region{geo.CentralEurope}, EmptyBlockProb: 0.01, MultiVersionProb: 0.002, MultiVersionSameTxProb: 0.56, SwitchDelayMean: switchMean},
		{Name: "Remaining", HashrateShare: 0.0839, GatewayRegions: []geo.Region{geo.NorthAmerica, geo.WesternEurope, geo.CentralEurope, geo.EasternAsia, geo.SouthAmerica, geo.Oceania}, EmptyBlockProb: 0.01, MultiVersionProb: 0.001, MultiVersionSameTxProb: 0.56, SwitchDelayMean: switchMean},
	}
}

// ValidatePools checks a registry: each config valid, shares summing
// to ~1.
func ValidatePools(pools []PoolConfig) error {
	if len(pools) == 0 {
		return errors.New("mining: empty pool registry")
	}
	var total float64
	seen := make(map[string]bool, len(pools))
	for _, p := range pools {
		if err := p.Validate(); err != nil {
			return err
		}
		if seen[p.Name] {
			return fmt.Errorf("mining: duplicate pool %s", p.Name)
		}
		seen[p.Name] = true
		total += p.HashrateShare
	}
	if total < 0.999 || total > 1.001 {
		return fmt.Errorf("mining: hashrate shares sum to %v, want 1", total)
	}
	return nil
}
