// Package measure implements the paper's measurement infrastructure:
// instrumented client nodes that log every incoming network message
// with an NTP-synchronized local timestamp (§II), plus the JSONL
// dataset format the logs are stored in.
//
// A measurement node is a protocol-conformant peer — it relays blocks
// and transactions like any other client and is indistinguishable on
// the wire — with an observer hooked at message ingress, exactly where
// the original study added ~1,000 lines to Geth.
package measure

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/sim"
)

// RecordKind labels a log line.
type RecordKind string

// Record kinds, mirroring the message classes the study logs.
const (
	KindBlock        RecordKind = "block"
	KindAnnouncement RecordKind = "announce"
	KindTx           RecordKind = "tx"
)

// Record is one log line: a message observed by a measurement node.
// LocalMillis carries the node's NTP-skewed clock reading — the only
// timestamp the real study had. TrueMillis carries the simulation's
// ground truth, which the original infrastructure could not observe;
// analyses must not use it except for explicitly-labeled validation.
type Record struct {
	Node        string     `json:"node"`
	Region      string     `json:"region"`
	Kind        RecordKind `json:"kind"`
	LocalMillis int64      `json:"localMillis"`
	TrueMillis  int64      `json:"trueMillis"`
	FromPeer    int        `json:"fromPeer"`
	Hash        string     `json:"hash"`

	// Block fields (kind == block).
	Number     uint64   `json:"number,omitempty"`
	ParentHash string   `json:"parentHash,omitempty"`
	Miner      string   `json:"miner,omitempty"`
	TxCount    int      `json:"txCount,omitempty"`
	GasUsed    uint64   `json:"gasUsed,omitempty"`
	SizeBytes  int      `json:"sizeBytes,omitempty"`
	Uncles     []string `json:"uncles,omitempty"`
	TxHashes   []string `json:"txHashes,omitempty"`
	Extra      uint64   `json:"extra,omitempty"`

	// Transaction fields (kind == tx).
	Sender string `json:"sender,omitempty"`
	Nonce  uint64 `json:"nonce,omitempty"`
}

// LocalTime returns the local timestamp as virtual time.
func (r Record) LocalTime() sim.Time { return sim.Time(r.LocalMillis) }

// WriteJSONL streams records as one JSON object per line.
func WriteJSONL(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range records {
		if err := enc.Encode(&records[i]); err != nil {
			return fmt.Errorf("encode record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL record stream. Blank lines are skipped;
// malformed lines abort with an error naming the line.
func ReadJSONL(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scan: %w", err)
	}
	return out, nil
}

// ErrEmptyLog marks analyses attempted over empty logs.
var ErrEmptyLog = errors.New("measure: empty log")
