package measure

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/p2p"
	"repro/internal/sim"
	"repro/internal/types"
)

func buildNetwork(t *testing.T, seed uint64, nodes int) *p2p.Network {
	t.Helper()
	net := p2p.NewNetwork(sim.NewEngine(), sim.NewRNG(seed), geo.DefaultLatencyModel())
	placement, err := geo.PlaceNodes(nodes, geo.DefaultNodeShare)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range placement {
		if _, err := net.AddNode(r, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.WireRandom(6); err != nil {
		t.Fatal(err)
	}
	return net
}

func testBlock(n uint64, label string, txs []*types.Transaction) *types.Block {
	return types.NewBlock(types.Header{
		ParentHash: types.HashBytes([]byte("parent")),
		Number:     n,
		Miner:      types.AddressFromString(label),
		MinerLabel: label,
		Difficulty: 1000,
		GasLimit:   8_000_000,
		GasUsed:    uint64(len(txs)) * types.TxGas,
	}, txs, nil)
}

func TestAttachValidation(t *testing.T) {
	net := buildNetwork(t, 1, 10)
	if _, err := Attach(nil, Options{Name: "NA", Region: geo.NorthAmerica}, geo.PerfectClock()); err == nil {
		t.Error("nil network must fail")
	}
	if _, err := Attach(net, Options{Region: geo.NorthAmerica}, geo.PerfectClock()); err == nil {
		t.Error("missing name must fail")
	}
	if _, err := Attach(net, Options{Name: "X", Region: geo.Region(99)}, geo.PerfectClock()); err == nil {
		t.Error("bad region must fail")
	}
	m, err := Attach(net, Options{Name: "NA", Region: geo.NorthAmerica, Peers: 5}, geo.PerfectClock())
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "NA" || m.Region() != geo.NorthAmerica || m.Peer().PeerCount() != 5 {
		t.Fatal("attachment fields wrong")
	}
}

func TestObserveBlocksAndAnnouncements(t *testing.T) {
	net := buildNetwork(t, 2, 60)
	m, err := Attach(net, Options{Name: "WE", Region: geo.WesternEurope, Peers: 25}, geo.PerfectClock())
	if err != nil {
		t.Fatal(err)
	}
	blk := testBlock(1, "Ethermine", nil)
	net.Nodes()[0].InjectBlock(0, blk)
	net.Engine().Run()

	var blocks, announces int
	for _, r := range m.Records() {
		switch r.Kind {
		case KindBlock:
			blocks++
			if r.Miner != "Ethermine" || r.Number != 1 || r.Hash != blk.Hash().String() {
				t.Fatalf("bad block record: %+v", r)
			}
			if r.SizeBytes <= 0 {
				t.Fatal("block record missing size")
			}
		case KindAnnouncement:
			announces++
			if r.Hash != blk.Hash().String() {
				t.Fatal("bad announcement hash")
			}
		}
	}
	// With 25 peers the node must see several redundant deliveries
	// (Table II's phenomenon).
	if blocks+announces < 3 {
		t.Fatalf("too few receptions: %d blocks, %d announces", blocks, announces)
	}
	if m.Blocks()[blk.Hash()] == nil {
		t.Fatal("full block content not captured")
	}
}

func TestObserveTransactions(t *testing.T) {
	net := buildNetwork(t, 3, 40)
	m, err := Attach(net, Options{Name: "EA", Region: geo.EasternAsia, Peers: 10}, geo.PerfectClock())
	if err != nil {
		t.Fatal(err)
	}
	tx := &types.Transaction{
		Sender: types.AddressFromString("alice"),
		To:     types.AddressFromString("bob"),
		Nonce:  7, GasPrice: 5, Gas: types.TxGas,
	}
	net.Nodes()[0].InjectTx(0, tx)
	net.Engine().Run()
	found := false
	for _, r := range m.Records() {
		if r.Kind == KindTx {
			found = true
			if r.Nonce != 7 || r.Sender != tx.Sender.String() || r.Hash != tx.Hash().String() {
				t.Fatalf("bad tx record: %+v", r)
			}
		}
	}
	if !found {
		t.Fatal("no tx records")
	}
}

func TestClockSkewAppliedToLocalTime(t *testing.T) {
	net := buildNetwork(t, 4, 20)
	m, err := Attach(net, Options{Name: "CE", Region: geo.CentralEurope, Peers: 5}, geo.ClockWithOffset(42))
	if err != nil {
		t.Fatal(err)
	}
	net.Nodes()[0].InjectBlock(0, testBlock(1, "Sparkpool", nil))
	net.Engine().Run()
	if len(m.Records()) == 0 {
		t.Fatal("no records")
	}
	for _, r := range m.Records() {
		if r.LocalMillis-r.TrueMillis != 42 {
			t.Fatalf("skew not applied: local %d true %d", r.LocalMillis, r.TrueMillis)
		}
		if r.LocalTime() != sim.Time(r.LocalMillis) {
			t.Fatal("LocalTime helper broken")
		}
	}
}

func TestCaptureTxLinks(t *testing.T) {
	net := buildNetwork(t, 5, 20)
	withLinks, err := Attach(net, Options{Name: "A", Region: geo.NorthAmerica, Peers: 5, CaptureTxLinks: true}, geo.PerfectClock())
	if err != nil {
		t.Fatal(err)
	}
	withoutLinks, err := Attach(net, Options{Name: "B", Region: geo.NorthAmerica, Peers: 5}, geo.PerfectClock())
	if err != nil {
		t.Fatal(err)
	}
	txs := []*types.Transaction{{
		Sender: types.AddressFromString("alice"), To: types.AddressFromString("bob"),
		Nonce: 0, GasPrice: 1, Gas: types.TxGas,
	}}
	net.Nodes()[0].InjectBlock(0, testBlock(1, "F2pool2", txs))
	net.Engine().Run()
	check := func(m *Node, wantLinks bool) {
		t.Helper()
		for _, r := range m.Records() {
			if r.Kind != KindBlock {
				continue
			}
			if wantLinks && len(r.TxHashes) != 1 {
				t.Fatalf("%s: missing tx links", m.Name())
			}
			if !wantLinks && r.TxHashes != nil {
				t.Fatalf("%s: unexpected tx links", m.Name())
			}
			if r.TxCount != 1 {
				t.Fatalf("%s: tx count %d", m.Name(), r.TxCount)
			}
			return
		}
		t.Fatalf("%s: no block records", m.Name())
	}
	check(withLinks, true)
	check(withoutLinks, false)
}

func TestJSONLRoundTrip(t *testing.T) {
	records := []Record{
		{Node: "NA", Region: "NA", Kind: KindBlock, LocalMillis: 100, TrueMillis: 95,
			Hash: "0xabc", Number: 7, Miner: "Ethermine", TxCount: 3, Uncles: []string{"0xdef"}},
		{Node: "EA", Region: "EA", Kind: KindAnnouncement, LocalMillis: 50, Hash: "0xabc"},
		{Node: "WE", Region: "WE", Kind: KindTx, LocalMillis: 70, Hash: "0x123", Sender: "0xfeed", Nonce: 9},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, records); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Fatalf("lines: %d", lines)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("records: %d", len(back))
	}
	if back[0].Miner != "Ethermine" || back[0].Number != 7 || len(back[0].Uncles) != 1 {
		t.Fatalf("block record corrupted: %+v", back[0])
	}
	if back[2].Nonce != 9 || back[2].Kind != KindTx {
		t.Fatalf("tx record corrupted: %+v", back[2])
	}
}

func TestReadJSONLSkipsBlanksRejectsGarbage(t *testing.T) {
	got, err := ReadJSONL(strings.NewReader("\n\n{\"node\":\"NA\",\"kind\":\"block\"}\n\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("blank handling: %v, %d", err, len(got))
	}
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("garbage must error")
	}
	if !strings.Contains(err1(ReadJSONL(strings.NewReader("{}\nnope\n"))), "line 2") {
		t.Fatal("error should name the line")
	}
}

func err1(_ []Record, err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func TestMeasurementNodeIsProtocolConformant(t *testing.T) {
	// A measurement node must relay blocks like any peer: a network
	// where the only path runs through the measurement node still
	// floods fully.
	net := p2p.NewNetwork(sim.NewEngine(), sim.NewRNG(6), geo.DefaultLatencyModel())
	a, err := net.AddNode(geo.NorthAmerica, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.AddNode(geo.EasternAsia, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Attach(net, Options{Name: "MID", Region: geo.WesternEurope}, geo.PerfectClock())
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Connect(a, m.Peer()); err != nil {
		t.Fatal(err)
	}
	if err := net.Connect(m.Peer(), b); err != nil {
		t.Fatal(err)
	}
	blk := testBlock(1, "Nanopool", nil)
	a.InjectBlock(0, blk)
	net.Engine().Run()
	if !b.KnowsBlock(blk.Hash()) {
		t.Fatal("measurement node failed to relay")
	}
}
